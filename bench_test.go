// Benchmarks regenerating every table and figure of the paper's evaluation.
// One benchmark per artefact, in paper order; each runs the experiment over
// the reduced (quick) application subset so a full `go test -bench=.` sweep
// stays tractable, and reports the experiment's headline metric alongside
// ns/op. Run the full-catalog versions with `cmd/hpebench`.
//
// Additional ablation benches at the bottom quantify the design choices
// DESIGN.md calls out: HIR batching vs an ideal hit feed, dynamic adjustment
// on/off, page-set division on/off, and the extra baselines (FIFO, LFU).
package hpe_test

import (
	"runtime"
	"testing"

	"hpe"
	"hpe/internal/experiments"
)

func quickSuite() *experiments.Suite {
	return experiments.NewSuite(experiments.Options{Quick: true, Seed: 1})
}

// --- Concurrent suite runner ---------------------------------------------------

// figureIDs is the benchmark workload for the suite runner: the three
// headline figures, which together exercise the full comparison-policy grid.
var figureIDs = []string{"fig10", "fig11", "fig12"}

// BenchmarkSuiteReportsSerial and BenchmarkSuiteReportsParallel measure the
// wall-clock effect of sharding the run matrix across workers. The reports
// are byte-identical (TestParallelMatchesSerial); only time differs, and
// only when GOMAXPROCS > 1.
func BenchmarkSuiteReportsSerial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(experiments.Options{Quick: true, Seed: 1, Workers: 1})
		if _, err := s.Reports(figureIDs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSuiteReportsParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(experiments.Options{Quick: true, Seed: 1, Workers: runtime.GOMAXPROCS(0)})
		if _, err := s.Reports(figureIDs); err != nil {
			b.Fatal(err)
		}
	}
}

func reportMetric(b *testing.B, rep experiments.Report, key, unit string) {
	if v, ok := rep.Metrics[key]; ok {
		b.ReportMetric(v, unit)
	}
}

// --- Table I & II -------------------------------------------------------------

func BenchmarkTable1Config(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := quickSuite()
		rep := s.Table1()
		if i == b.N-1 {
			reportMetric(b, rep, "faultCycles", "fault-cycles")
		}
	}
}

func BenchmarkTable2Workloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := quickSuite()
		rep := s.Table2()
		if i == b.N-1 {
			reportMetric(b, rep, "meanMB", "mean-MB")
		}
	}
}

// --- Figures ------------------------------------------------------------------

func BenchmarkFig3EvictionsVsIdeal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := quickSuite()
		rep := s.Fig3()
		if i == b.N-1 {
			reportMetric(b, rep, "lru/mean", "lru-vs-ideal")
			reportMetric(b, rep, "rrip/mean", "rrip-vs-ideal")
		}
	}
}

func BenchmarkFig7PageSetSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := quickSuite()
		rep := s.Fig7()
		if i == b.N-1 {
			reportMetric(b, rep, "maxSpread", "max-spread")
		}
	}
}

func BenchmarkFig8IntervalLength(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := quickSuite()
		rep := s.Fig8()
		if i == b.N-1 {
			reportMetric(b, rep, "maxSpread", "max-spread")
		}
	}
}

func BenchmarkFig9Ratios(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := quickSuite()
		rep := s.Fig9()
		if i == b.N-1 {
			reportMetric(b, rep, "ratio1/KMN", "kmn-ratio1")
		}
	}
}

func BenchmarkFig10SpeedupVsLRU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := quickSuite()
		rep := s.Fig10()
		if i == b.N-1 {
			reportMetric(b, rep, "mean75", "speedup@75")
			reportMetric(b, rep, "mean50", "speedup@50")
		}
	}
}

func BenchmarkFig11EvictionsVsLRU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := quickSuite()
		rep := s.Fig11()
		if i == b.N-1 {
			reportMetric(b, rep, "mean75", "ev-ratio@75")
			reportMetric(b, rep, "mean50", "ev-ratio@50")
		}
	}
}

func BenchmarkFig12AllPolicies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := quickSuite()
		rep := s.Fig12()
		if i == b.N-1 {
			reportMetric(b, rep, "perf75/HPE", "hpe-vs-ideal@75")
			reportMetric(b, rep, "hpeSpeedup75/RRIP", "hpe-vs-rrip@75")
		}
	}
}

func BenchmarkFig13AdjustmentBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := quickSuite()
		rep := s.Fig13()
		if i == b.N-1 {
			reportMetric(b, rep, "switches75/BFS", "bfs-switches")
		}
	}
}

func BenchmarkFig14SearchOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := quickSuite()
		rep := s.Fig14()
		if i == b.N-1 {
			reportMetric(b, rep, "mean", "mean-comparisons")
		}
	}
}

func BenchmarkFig15HIREntries(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := quickSuite()
		rep := s.Fig15()
		if i == b.N-1 {
			reportMetric(b, rep, "mean/HSD", "hsd-entries")
		}
	}
}

// --- Section V-A / V-B / V-C ---------------------------------------------------

func BenchmarkTransferIntervalSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := quickSuite()
		rep := s.TransferInterval()
		if i == b.N-1 {
			reportMetric(b, rep, "norm/1", "ipc-at-interval-1")
		}
	}
}

func BenchmarkWalkLatencySensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := quickSuite()
		rep := s.WalkLatency()
		if i == b.N-1 {
			reportMetric(b, rep, "delta/HPE", "hpe-delta")
		}
	}
}

func BenchmarkOverheadAnalysis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := quickSuite()
		rep := s.Overheads()
		if i == b.N-1 {
			reportMetric(b, rep, "classifyUS", "classify-us")
			reportMetric(b, rep, "load75/HPE", "hpe-load@75")
		}
	}
}

// --- Ablations (DESIGN.md design-choice benches) --------------------------------

// thrashingSetup returns the Type II workload and memory the ablations use.
func thrashingSetup() (*hpe.Trace, int) {
	app, _ := hpe.WorkloadByAbbr("HSD")
	tr := app.Generate()
	return tr, tr.Footprint() * 3 / 4
}

// BenchmarkAblationHIRBatching compares full HPE (HIR, batched hits, transfer
// latency charged) against the ideal direct hit feed — the cost of the
// paper's hardware-frugal hit channel.
func BenchmarkAblationHIRBatching(b *testing.B) {
	tr, capacity := thrashingSetup()
	var batched, ideal uint64
	for i := 0; i < b.N; i++ {
		res := hpe.SimulateHPE(hpe.SystemConfig(capacity), tr, hpe.DefaultHPEConfig())
		batched = res.Faults
		cfg := hpe.DefaultHPEConfig()
		cfg.IdealHitFeed = true
		res = hpe.Simulate(hpe.SystemConfig(capacity), tr, hpe.NewHPE(cfg))
		ideal = res.Faults
	}
	b.ReportMetric(float64(batched), "faults-hir")
	b.ReportMetric(float64(ideal), "faults-idealfeed")
}

// BenchmarkAblationDynamicAdjustment quantifies Algorithm 1 on BFS, the
// paper's misclassification example: without adjustment BFS stays on LRU and
// thrashes.
func BenchmarkAblationDynamicAdjustment(b *testing.B) {
	app, _ := hpe.WorkloadByAbbr("BFS")
	tr := app.Generate()
	capacity := tr.Footprint() * 3 / 4
	var on, off uint64
	for i := 0; i < b.N; i++ {
		res := hpe.SimulateHPE(hpe.SystemConfig(capacity), tr, hpe.DefaultHPEConfig())
		on = res.Faults
		cfg := hpe.DefaultHPEConfig()
		cfg.DynamicAdjustment = false
		res = hpe.SimulateHPE(hpe.SystemConfig(capacity), tr, cfg)
		off = res.Faults
	}
	b.ReportMetric(float64(on), "faults-adjust-on")
	b.ReportMetric(float64(off), "faults-adjust-off")
}

// BenchmarkAblationDivision quantifies page-set division on NW, the paper's
// even/odd example.
func BenchmarkAblationDivision(b *testing.B) {
	app, _ := hpe.WorkloadByAbbr("NW")
	tr := app.Generate()
	capacity := tr.Footprint() / 2
	var on, off uint64
	for i := 0; i < b.N; i++ {
		res := hpe.SimulateHPE(hpe.SystemConfig(capacity), tr, hpe.DefaultHPEConfig())
		on = res.Faults
		cfg := hpe.DefaultHPEConfig()
		cfg.DisableDivision = true
		res = hpe.SimulateHPE(hpe.SystemConfig(capacity), tr, cfg)
		off = res.Faults
	}
	b.ReportMetric(float64(on), "faults-division-on")
	b.ReportMetric(float64(off), "faults-division-off")
}

// BenchmarkAblationExtraBaselines runs the baselines the paper mentions but
// does not plot (FIFO, LFU) on the thrashing workload.
func BenchmarkAblationExtraBaselines(b *testing.B) {
	tr, capacity := thrashingSetup()
	var fifo, lfu uint64
	for i := 0; i < b.N; i++ {
		fifo = hpe.Simulate(hpe.SystemConfig(capacity), tr, hpe.NewFIFO()).Faults
		lfu = hpe.Simulate(hpe.SystemConfig(capacity), tr, hpe.NewLFU()).Faults
	}
	b.ReportMetric(float64(fifo), "faults-fifo")
	b.ReportMetric(float64(lfu), "faults-lfu")
}

// --- Probe overhead --------------------------------------------------------------

// BenchmarkNilProbe is the overhead contract of the observability layer: a
// run with no probe attached must match the pre-probe fast path (every
// emission site is one nil check). Compare against BenchmarkMetricsProbe to
// price the instrumentation itself.
func BenchmarkNilProbe(b *testing.B) {
	tr, capacity := thrashingSetup()
	total := 0
	for i := 0; i < b.N; i++ {
		res := hpe.Simulate(hpe.SystemConfig(capacity), tr, hpe.NewLRU())
		total += int(res.Accesses)
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "accesses/s")
}

// BenchmarkMetricsProbe runs the same simulation with a Metrics probe
// attached — the cheapest real probe, priced per event.
func BenchmarkMetricsProbe(b *testing.B) {
	tr, capacity := thrashingSetup()
	total := 0
	for i := 0; i < b.N; i++ {
		m := hpe.NewMetricsProbe()
		res := hpe.Simulate(hpe.SystemConfig(capacity), tr, hpe.NewLRU(), hpe.WithProbe(m))
		total += int(res.Accesses)
		if res.Probe == nil || res.Probe.Events == 0 {
			b.Fatal("metrics probe observed nothing")
		}
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "accesses/s")
}

// BenchmarkSimulatorThroughput measures raw simulator speed (accesses per
// second of wall time) on the largest workload.
func BenchmarkSimulatorThroughput(b *testing.B) {
	app, _ := hpe.WorkloadByAbbr("KMN")
	tr := app.Generate()
	capacity := tr.Footprint() * 3 / 4
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		res := hpe.Simulate(hpe.SystemConfig(capacity), tr, hpe.NewLRU())
		total += int(res.Accesses)
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "accesses/s")
}

// --- Extension experiments -------------------------------------------------------

func BenchmarkExtExtendedPolicies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := quickSuite()
		rep := s.ExtendedPolicies()
		if i == b.N-1 {
			reportMetric(b, rep, "mean/HPE", "hpe-vs-ideal")
			reportMetric(b, rep, "mean/ARC", "arc-vs-ideal")
		}
	}
}

func BenchmarkExtOversubscriptionSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := quickSuite()
		rep := s.OversubscriptionSweep()
		if i == b.N-1 {
			reportMetric(b, rep, "speedup/90", "hpe-speedup@90")
			reportMetric(b, rep, "speedup/40", "hpe-speedup@40")
		}
	}
}

func BenchmarkExtDivisionStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := quickSuite()
		rep := s.DivisionStudy()
		if i == b.N-1 {
			reportMetric(b, rep, "faults50/NW/off", "nw-faults-div-off")
		}
	}
}

func BenchmarkExtChannelStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := quickSuite()
		rep := s.ChannelStudy()
		if i == b.N-1 {
			reportMetric(b, rep, "HPE/8", "hpe-8ch-speedup")
		}
	}
}

func BenchmarkExtTranslationStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := quickSuite()
		rep := s.TranslationStudy()
		if i == b.N-1 {
			reportMetric(b, rep, "geomean", "pwc-vs-l2tlb")
		}
	}
}

func BenchmarkExtPrefetchStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := quickSuite()
		rep := s.PrefetchStudy()
		if i == b.N-1 {
			reportMetric(b, rep, "LRU/15", "lru-pf15-speedup")
			reportMetric(b, rep, "HPE/15", "hpe-pf15-speedup")
		}
	}
}

// BenchmarkAblationSetGranularity separates HPE's two ingredients on the
// thrashing workload: page-level LRU vs set-level LRU (granularity only) vs
// full HPE (granularity + partitions + classification).
func BenchmarkAblationSetGranularity(b *testing.B) {
	tr, capacity := thrashingSetup()
	var page, set, full uint64
	for i := 0; i < b.N; i++ {
		page = hpe.Simulate(hpe.SystemConfig(capacity), tr, hpe.NewLRU()).Faults
		set = hpe.Simulate(hpe.SystemConfig(capacity), tr, hpe.NewSetLRU()).Faults
		full = hpe.SimulateHPE(hpe.SystemConfig(capacity), tr, hpe.DefaultHPEConfig()).Faults
	}
	b.ReportMetric(float64(page), "faults-page-lru")
	b.ReportMetric(float64(set), "faults-set-lru")
	b.ReportMetric(float64(full), "faults-hpe")
}

package hpe_test

import (
	"fmt"
	"strings"

	"hpe"
)

// ExampleSimulate reproduces the paper's headline comparison on hotspot3D:
// HPE versus LRU at 75% oversubscription.
func ExampleSimulate() {
	app, _ := hpe.WorkloadByAbbr("HSD")
	tr := app.Generate()
	capacity := tr.Footprint() * 75 / 100

	cfg := hpe.SystemConfig(capacity)
	lru := hpe.Simulate(cfg, tr, hpe.NewLRU())
	hp := hpe.SimulateHPE(cfg, tr, hpe.DefaultHPEConfig())

	fmt.Printf("LRU faults: %d\n", lru.Faults)
	fmt.Printf("HPE faults: %d\n", hp.Faults)
	fmt.Printf("speedup: %.2fx\n", hp.IPC/lru.IPC)
	// Output:
	// LRU faults: 13824
	// HPE faults: 5823
	// speedup: 2.37x
}

// ExampleReplay uses the timing-free replay to compare eviction counts —
// the fast path for policy studies that don't need the GPU timing model.
func ExampleReplay() {
	app, _ := hpe.WorkloadByAbbr("STN")
	tr := app.Generate()
	capacity := tr.Footprint() * 3 / 4

	lru := hpe.Replay(tr, hpe.NewLRU(), capacity)
	ideal := hpe.Replay(tr, hpe.NewIdeal(tr), capacity)

	fmt.Printf("LRU evicts %.1fx what Belady-MIN would\n",
		float64(lru.Evictions)/float64(ideal.Evictions))
	// Output:
	// LRU evicts 3.4x what Belady-MIN would
}

// ExampleNewPolicy builds policies by registry name — the API the experiment
// harness and both CLIs use. Options a policy does not understand are
// ignored, so one uniform option set serves the whole registry.
func ExampleNewPolicy() {
	pol, err := hpe.NewPolicy("clock-pro", hpe.WithCapacity(1024))
	if err != nil {
		panic(err)
	}
	fmt.Println(pol.Name())
	fmt.Println(strings.Join(hpe.PolicyNames(), " "))
	// Output:
	// CLOCK-Pro
	// lru random rrip clockpro ideal hpe fifo lfu clock nru arc setlru
}

// ExampleWithProbe attaches a metrics probe to a run. Probes observe the
// simulator's typed event stream without changing any result; the metrics
// snapshot surfaces on Result.Probe.
func ExampleWithProbe() {
	app, _ := hpe.WorkloadByAbbr("HSD")
	tr := app.Generate()
	cfg := hpe.SystemConfig(tr.Footprint() * 75 / 100)

	m := hpe.NewMetricsProbe()
	res := hpe.Simulate(cfg, tr, hpe.NewLRU(), hpe.WithProbe(m))

	fmt.Printf("faults: %d\n", res.Faults)
	fmt.Printf("probe fault_end events: %d\n", res.Probe.Count("fault_end"))
	// Output:
	// faults: 13824
	// probe fault_end events: 13824
}

// ExampleHPEStatsOf inspects HPE's classification of a workload.
func ExampleHPEStatsOf() {
	app, _ := hpe.WorkloadByAbbr("KMN") // kmeans: the paper's ratio1 outlier
	tr := app.Generate()
	res := hpe.SimulateHPE(hpe.SystemConfig(tr.Footprint()*3/4), tr, hpe.DefaultHPEConfig())

	if st, ok := hpe.HPEStatsOf(res); ok {
		fmt.Printf("category: %v\n", st.Category)
		fmt.Printf("strategy: %v\n", st.ActiveStrategy)
	}
	// Output:
	// category: irregular#2
	// strategy: LRU
}

// ExampleWorkloadsByPattern lists the Type II (thrashing) applications of
// Table II.
func ExampleWorkloadsByPattern() {
	for _, app := range hpe.WorkloadsByPattern(hpe.PatternThrashing) {
		fmt.Println(app.Abbr, app.Name)
	}
	// Output:
	// SRD srad_v2
	// HSD hotspot3D
	// MRQ mri-q
	// STN stencil
}

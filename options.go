package hpe

import (
	"context"
	"io"

	"hpe/internal/policy"
	"hpe/internal/probe"
	"hpe/internal/registry"
	"hpe/internal/runspec"
	"hpe/internal/trace"
)

// Observability vocabulary re-exported from internal/probe.
type (
	// Probe consumes the typed instrumentation event stream of a run.
	Probe = probe.Probe
	// ProbeEvent is one instrumentation event (see the probe package's
	// event taxonomy).
	ProbeEvent = probe.Event
	// ProbeKind enumerates the event taxonomy.
	ProbeKind = probe.Kind
	// ProbeSnapshot is the Metrics probe's aggregate summary, surfaced as
	// Result.Probe.
	ProbeSnapshot = probe.Snapshot
	// MetricsProbe aggregates per-event-kind latency and inter-arrival
	// histograms.
	MetricsProbe = probe.Metrics
	// ChromeTraceProbe streams Chrome trace_event JSON for
	// chrome://tracing / Perfetto.
	ChromeTraceProbe = probe.ChromeTrace
	// ChromeTraceConfig parameterises a ChromeTraceProbe.
	ChromeTraceConfig = probe.ChromeTraceConfig
)

// NewMetricsProbe returns an empty metrics-aggregating probe.
func NewMetricsProbe() *MetricsProbe { return probe.NewMetrics() }

// NewChromeTraceProbe returns a probe streaming Chrome trace_event JSON to w.
func NewChromeTraceProbe(w io.Writer, cfg ChromeTraceConfig) *ChromeTraceProbe {
	return probe.NewChromeTrace(w, cfg)
}

// MultiProbe fans one event stream out to several probes (nils dropped).
func MultiProbe(ps ...Probe) Probe { return probe.Multi(ps...) }

// ProbeEventNames lists every event-kind name in taxonomy order.
func ProbeEventNames() []string { return probe.KindNames() }

// runConfig collects the RunOption state for one Simulate/Replay call.
type runConfig struct {
	probes []probe.Probe
	seed   *int64
	useHIR bool
	ctx    context.Context
	env    runspec.Env
}

// RunOption customises one simulation or replay run. Options are run-scoped
// concerns (instrumentation, seeding) that do not belong in the simulated
// system's Config — future knobs extend this list instead of growing
// gpu.Config.
type RunOption func(*runConfig)

// WithProbe attaches an instrumentation probe to the run; repeating the
// option composes probes. The run flushes attached probes on completion.
// With no probe attached the simulator keeps its exact uninstrumented fast
// path (a single nil check per emission site).
func WithProbe(p Probe) RunOption {
	return func(rc *runConfig) {
		if p != nil {
			rc.probes = append(rc.probes, p)
		}
	}
}

// WithSeed re-seeds randomised policies (Random) for this run; policies
// without an RNG ignore it.
func WithSeed(seed int64) RunOption {
	return func(rc *runConfig) { s := seed; rc.seed = &s }
}

// WithHIR attaches the HIR cache to the run (cfg.HIR geometry), routing walk
// hits through it — the production HPE configuration. SimulateHPE implies it.
func WithHIR() RunOption {
	return func(rc *runConfig) { rc.useHIR = true }
}

// WithContext ties the run to ctx: the simulation polls for cancellation
// every few thousand events and stops early when ctx is done, marking the
// result Cancelled. This is how servers abort work for disconnected clients
// and how the CLIs honour Ctrl-C. A never-cancellable context (Background)
// keeps the exact unpolled fast path.
func WithContext(ctx context.Context) RunOption {
	return func(rc *runConfig) { rc.ctx = ctx }
}

// WithRunEnv supplies shared trace/future-index caches to Run and ReplaySpec,
// so long-lived callers (servers, sweeps) generate each workload's reference
// string once. Simulate and Replay — which take an explicit trace — ignore it.
func WithRunEnv(env RunEnv) RunOption {
	return func(rc *runConfig) { rc.env = runspec.Env(env) }
}

// apply folds the options and prepares the composed probe (nil when none).
func applyRunOptions(pol Policy, opts []RunOption) (runConfig, Probe) {
	var rc runConfig
	for _, opt := range opts {
		opt(&rc)
	}
	reseed(pol, rc.seed)
	return rc, probe.Multi(rc.probes...)
}

// reseed applies a WithSeed override to policies that carry an RNG.
func reseed(pol Policy, seed *int64) {
	if seed == nil {
		return
	}
	if r, ok := pol.(policy.Reseedable); ok {
		r.Reseed(*seed)
	}
}

// flushProbe finalises a run's probe; flush errors surface on the probe
// itself (e.g. ChromeTraceProbe.Err) rather than failing the run.
func flushProbe(p Probe) {
	if p != nil {
		_ = p.Flush()
	}
}

// PolicyOption customises registry policy construction (NewPolicy).
type PolicyOption = registry.Option

// PolicyInfo describes one registered policy.
type PolicyInfo = registry.Info

// WithPolicySeed seeds randomised policies at construction time.
func WithPolicySeed(seed int64) PolicyOption { return registry.WithSeed(seed) }

// WithCapacity supplies the device-memory capacity in pages (required by
// CLOCK-Pro and ARC).
func WithCapacity(pages int) PolicyOption { return registry.WithCapacity(pages) }

// WithTrace supplies the reference string for offline policies (Ideal).
func WithTrace(tr *Trace) PolicyOption { return registry.WithTrace(tr) }

// WithFutureIndex lazily supplies a prebuilt Belady future index to Ideal;
// fn runs only if the policy needs it.
func WithFutureIndex(fn func() *trace.FutureIndex) PolicyOption {
	return registry.WithFutureIndex(fn)
}

// WithRRIPConfig pins the RRIP configuration.
func WithRRIPConfig(cfg RRIPConfig) PolicyOption { return registry.WithRRIPConfig(cfg) }

// WithThrashingRRIP selects the Type-II RRIP preset (distant insertion,
// delay threshold 128); other policies ignore it.
func WithThrashingRRIP() PolicyOption { return registry.WithThrashingRRIP() }

// WithHPEConfig pins the HPE policy configuration.
func WithHPEConfig(cfg HPEConfig) PolicyOption { return registry.WithHPEConfig(cfg) }

// NewPolicy builds a fresh policy instance by registry name
// (case-insensitive; aliases like "clock-pro" and "belady" accepted). It
// errors on an unknown name or a missing required option — CLOCK-Pro and ARC
// need WithCapacity, Ideal needs WithTrace or WithFutureIndex.
func NewPolicy(name string, opts ...PolicyOption) (Policy, error) {
	return registry.New(name, opts...)
}

// PolicyNames lists the canonical registry policy names in paper order.
func PolicyNames() []string { return registry.Names() }

// Policies returns every registered policy's metadata in paper order.
func Policies() []PolicyInfo { return registry.Infos() }

// LookupPolicy returns the metadata of a policy name (canonical or alias).
func LookupPolicy(name string) (PolicyInfo, bool) { return registry.Lookup(name) }

// mustPolicy backs the legacy fixed constructors, which delegate to the
// registry with options that make construction infallible.
func mustPolicy(name string, opts ...PolicyOption) Policy {
	pol, err := registry.New(name, opts...)
	if err != nil {
		panic("hpe: " + err.Error())
	}
	return pol
}

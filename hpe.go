// Package hpe is a Go reproduction of "HPE: Hierarchical Page Eviction
// Policy for Unified Memory in GPUs" (Yu, Childers, Huang, Qian, Wang;
// IEEE TCAD 2019): a discrete-event GPU unified-memory simulator, the HPE
// eviction policy, the paper's comparison policies (LRU, Random, RRIP,
// CLOCK-Pro, Belady-MIN "Ideal", plus FIFO and LFU), synthetic generators
// for the 23 Table II workloads, and a harness that regenerates every table
// and figure of the evaluation.
//
// This package is the public facade. Quick start:
//
//	app, _ := hpe.WorkloadByAbbr("HSD")        // hotspot3D, Type II
//	tr := app.Generate()                       // canonical reference string
//	capacity := tr.Footprint() * 75 / 100      // 75% oversubscription
//
//	lru := hpe.Simulate(hpe.SystemConfig(capacity), tr, hpe.NewLRU())
//	hp := hpe.SimulateHPE(hpe.SystemConfig(capacity), tr, hpe.DefaultHPEConfig())
//	fmt.Printf("speedup %.2fx\n", hp.IPC/lru.IPC)
//
// The full evaluation (the run matrix shards across Workers goroutines;
// reports are byte-identical at any worker count, and Workers: 1 is the
// serial debugging path):
//
//	suite := hpe.NewSuite(hpe.SuiteOptions{Workers: runtime.GOMAXPROCS(0)})
//	for _, rep := range suite.All() { fmt.Println(rep) }
//
// Architecture (bottom-up): internal/sim (event engine), internal/addrspace
// (pages and page sets), internal/trace (reference strings + Belady oracle
// index), internal/workload (Fig. 2 pattern generators, Table II catalog),
// internal/tlb + internal/mem + internal/hir (GPU-side state), internal/uvm
// (host driver: fault queue, HIR drains), internal/policy (baselines),
// internal/hpe (the contribution), internal/gpu (the simulator),
// internal/experiments (the per-figure harness). See DESIGN.md.
package hpe

import (
	"context"

	"hpe/internal/addrspace"
	"hpe/internal/experiments"
	"hpe/internal/gpu"
	hpecore "hpe/internal/hpe"
	"hpe/internal/policy"
	"hpe/internal/probe"
	"hpe/internal/runspec"
	"hpe/internal/trace"
	"hpe/internal/workload"
)

// Core vocabulary re-exported from the internal packages.
type (
	// PageID identifies a 4-KB virtual page.
	PageID = addrspace.PageID
	// SetID identifies a page set (16 virtually contiguous pages by default).
	SetID = addrspace.SetID
	// Trace is a page-granularity reference string with kernel barriers.
	Trace = trace.Trace
	// App is one Table II application model.
	App = workload.App
	// PatternType is the Fig. 2 access-pattern taxonomy.
	PatternType = workload.PatternType
	// Config is the simulated-system configuration (Table I).
	Config = gpu.Config
	// Result summarises one simulation run.
	Result = gpu.Result
	// Policy is the eviction-policy contract of the UVM driver.
	Policy = policy.Policy
	// HPEConfig parameterises the HPE policy (Section IV).
	HPEConfig = hpecore.Config
	// HPEStats is HPE's internal bookkeeping snapshot.
	HPEStats = hpecore.Stats
	// RRIPConfig parameterises the enhanced RRIP baseline.
	RRIPConfig = policy.RRIPConfig
	// ReplayResult is a timing-free reference-string replay summary.
	ReplayResult = policy.ReplayResult
	// Suite runs the paper's experiments with shared caching. It is safe
	// for concurrent use; see the experiments package comment for the
	// concurrency contract.
	Suite = experiments.Suite
	// SuiteOptions scales the experiment suite. Workers sets the number of
	// concurrent simulation workers (0/1 = serial, identical output).
	SuiteOptions = experiments.Options
	// Report is one experiment's rendered output and headline metrics.
	Report = experiments.Report
	// RunSpec is the canonical, content-addressed description of one
	// simulation — the same identity the experiment suite, hped, and the
	// CLIs share. Build one, then hand it to Run. See DESIGN.md §12.
	RunSpec = runspec.Spec
	// RunTuning is the RunSpec's sensitivity-knob block (suite-internal
	// studies; the zero value is the paper configuration).
	RunTuning = runspec.Tuning
	// RunEnv supplies trace/future-index caches to Run; the zero value
	// generates everything on demand.
	RunEnv = runspec.Env
	// Scenario is a named workload-v2 preset: a temporal phase schedule or
	// a multi-tenant colocation, ready to drop into a RunSpec.
	Scenario = workload.Scenario
)

// Pattern type constants (Fig. 2).
const (
	PatternStreaming           = workload.PatternStreaming
	PatternThrashing           = workload.PatternThrashing
	PatternPartRepetitive      = workload.PatternPartRepetitive
	PatternMostRepetitive      = workload.PatternMostRepetitive
	PatternRepetitiveThrashing = workload.PatternRepetitiveThrashing
	PatternRegionMoving        = workload.PatternRegionMoving
	PatternTemporal            = workload.PatternTemporal
	PatternColocated           = workload.PatternColocated
)

// Workloads returns the 23 Table II application models.
func Workloads() []App { return workload.Catalog() }

// WorkloadByAbbr finds a catalog application by its paper abbreviation
// (e.g. "HSD", "BFS").
func WorkloadByAbbr(abbr string) (App, bool) { return workload.ByAbbr(abbr) }

// WorkloadsByPattern returns the catalog applications with the given
// Fig. 2 pattern type.
func WorkloadsByPattern(p PatternType) []App { return workload.ByPattern(p) }

// Scenarios returns the named workload-v2 presets (phase schedules and
// colocations), in catalog order.
func Scenarios() []Scenario { return workload.Scenarios() }

// ScenarioByName finds a workload-v2 preset by name (e.g. "diurnal").
func ScenarioByName(name string) (Scenario, bool) { return workload.ScenarioByName(name) }

// SystemConfig returns the paper's Table I system with the given
// device-memory capacity in pages. Spec-driven callers should prefer
// hpe.Run, which derives the config from the RunSpec; this constructor is
// for hand-assembled Simulate calls.
//
//lint:ignore hpelint/specsource public facade constructor for hand-assembled Simulate calls; spec-driven paths use runspec.Materialize
func SystemConfig(memoryPages int) Config { return gpu.DefaultConfig(memoryPages) }

// Simulate runs one trace under one policy on the Table I system. Run
// options attach instrumentation and tweak run-scoped knobs:
//
//	m := hpe.NewMetricsProbe()
//	r := hpe.Simulate(cfg, tr, hpe.NewLRU(), hpe.WithProbe(m))
//	fmt.Println(r.Probe.Count("fault_end"))
func Simulate(cfg Config, tr *Trace, pol Policy, opts ...RunOption) Result {
	rc, pr := applyRunOptions(pol, opts)
	if rc.useHIR {
		cfg.UseHIR = true
	}
	var gopts []gpu.Option
	if pr != nil {
		gopts = append(gopts, gpu.WithProbe(pr))
	}
	if rc.ctx != nil {
		gopts = append(gopts, gpu.WithContext(rc.ctx))
	}
	r := gpu.Run(cfg, tr, pol, gopts...)
	flushProbe(pr)
	return r
}

// SimulateHPE runs the full production HPE configuration (HIR cache attached,
// walk hits batched every 16th fault, dynamic adjustment on).
func SimulateHPE(cfg Config, tr *Trace, hpeCfg HPEConfig, opts ...RunOption) Result {
	opts = append(opts, WithHIR())
	return Simulate(cfg, tr, hpecore.New(hpeCfg), opts...)
}

// Run executes one canonical run description end to end: the spec is
// canonicalized, materialized into (workload, trace, system config, policy),
// and simulated. This is the entry point the CLIs and hped share — the same
// spec produces the same simulation everywhere, cached under Spec.ID():
//
//	r, err := hpe.Run(hpe.RunSpec{App: "HSD", Policy: "hpe", Rate: 75})
//
// WithRunEnv plugs in long-lived trace caches; WithProbe, WithContext and
// WithSeed work as in Simulate (WithSeed overrides the spec's seed for the
// policy instance only — the spec's identity is unchanged). WithHIR is
// ignored: the spec's canonicalized HIR field decides.
func Run(sp RunSpec, opts ...RunOption) (Result, error) {
	var rc runConfig
	for _, opt := range opts {
		opt(&rc)
	}
	m, err := sp.Materialize(rc.env)
	if err != nil {
		return Result{}, err
	}
	return runMaterialized(m, rc), nil
}

// runMaterialized drives the simulator from a materialized spec, honouring
// the run-scoped options (probes, reseed, context).
func runMaterialized(m runspec.Materialized, rc runConfig) Result {
	reseed(m.Policy, rc.seed)
	pr := probe.Multi(rc.probes...)
	var gopts []gpu.Option
	if pr != nil {
		gopts = append(gopts, gpu.WithProbe(pr))
	}
	if rc.ctx != nil {
		gopts = append(gopts, gpu.WithContext(rc.ctx))
	}
	r := gpu.Run(m.Config, m.Trace, m.Policy, gopts...)
	flushProbe(pr)
	return r
}

// ReplaySpec is the spec-backed replay path: the spec's workload, capacity
// and policy, replayed timing-free (no TLBs or latencies). Timing-only spec
// dimensions (design, datapath, max-cycles, tuning latencies) don't apply.
func ReplaySpec(sp RunSpec, opts ...RunOption) (ReplayResult, error) {
	var rc runConfig
	for _, opt := range opts {
		opt(&rc)
	}
	m, err := sp.Materialize(rc.env)
	if err != nil {
		return ReplayResult{}, err
	}
	reseed(m.Policy, rc.seed)
	pr := probe.Multi(rc.probes...)
	ctx := rc.ctx
	if ctx == nil {
		//lint:ignore hpelint/ctxflow omitting WithContext means "not cancellable" by documented contract; Background keeps the unpolled fast path
		ctx = context.Background()
	}
	r := policy.ReplayContext(ctx, m.Trace, m.Policy, m.Capacity, pr)
	flushProbe(pr)
	return r, nil
}

// Replay runs a timing-free reference-string replay: demand paging only, no
// TLBs or latencies — the right tool for quick eviction-count comparisons.
// WithProbe attaches instrumentation (events carry the trace position as
// their timestamp); WithHIR has no effect here.
func Replay(tr *Trace, pol Policy, capacityPages int, opts ...RunOption) ReplayResult {
	rc, pr := applyRunOptions(pol, opts)
	ctx := rc.ctx
	if ctx == nil {
		//lint:ignore hpelint/ctxflow omitting WithContext means "not cancellable" by documented contract; Background keeps the unpolled fast path
		ctx = context.Background()
	}
	r := policy.ReplayContext(ctx, tr, pol, capacityPages, pr)
	flushProbe(pr)
	return r
}

// DefaultHPEConfig returns the paper's published HPE parameters: 16-page
// sets, 64-fault intervals, ratio thresholds 0.3 and 2, FIFO depth 128,
// wrong-eviction threshold 16.
func DefaultHPEConfig() HPEConfig { return hpecore.DefaultConfig() }

// Fixed policy constructors. These are thin compatibility wrappers over the
// name-keyed registry (NewPolicy / PolicyNames), which is the primary API.

// NewHPE builds an HPE policy instance (one per simulation run).
func NewHPE(cfg HPEConfig) Policy { return mustPolicy("hpe", WithHPEConfig(cfg)) }

// NewLRU builds a page-level LRU policy.
func NewLRU() Policy { return mustPolicy("lru") }

// NewFIFO builds a FIFO policy.
func NewFIFO() Policy { return mustPolicy("fifo") }

// NewLFU builds a least-frequently-used policy.
func NewLFU() Policy { return mustPolicy("lfu") }

// NewRandom builds a random-eviction policy with a deterministic seed.
func NewRandom(seed int64) Policy { return mustPolicy("random", WithPolicySeed(seed)) }

// NewRRIP builds the paper's enhanced RRIP policy. Use
// policy-defaults via DefaultRRIPConfig / ThrashingRRIPConfig.
func NewRRIP(cfg RRIPConfig) Policy { return mustPolicy("rrip", WithRRIPConfig(cfg)) }

// DefaultRRIPConfig is the non-Type-II RRIP setup (long insertion, no delay).
func DefaultRRIPConfig() RRIPConfig { return policy.DefaultRRIPConfig() }

// ThrashingRRIPConfig is the Type-II RRIP setup (distant insertion,
// delay threshold 128).
func ThrashingRRIPConfig() RRIPConfig { return policy.ThrashingRRIPConfig() }

// NewClockPro builds CLOCK-Pro with the paper's fixed m_c = 128.
func NewClockPro(capacityPages int) Policy {
	return mustPolicy("clockpro", WithCapacity(capacityPages))
}

// NewIdeal builds the offline Belady-MIN oracle over the given trace.
func NewIdeal(tr *Trace) Policy { return mustPolicy("ideal", WithTrace(tr)) }

// NewSetLRU builds the set-granularity LRU ablation policy: HPE's eviction
// granularity with none of its partition or classification machinery.
func NewSetLRU() Policy { return mustPolicy("setlru") }

// NewClock builds the classic CLOCK second-chance policy.
func NewClock() Policy { return mustPolicy("clock") }

// NewNRU builds the not-recently-used policy.
func NewNRU() Policy { return mustPolicy("nru") }

// NewARC builds the Adaptive Replacement Cache for the given capacity.
func NewARC(capacityPages int) Policy { return mustPolicy("arc", WithCapacity(capacityPages)) }

// NewSuite builds the experiment harness over the full catalog (or the
// quick subset).
func NewSuite(opts SuiteOptions) *Suite { return experiments.NewSuite(opts) }

// ExperimentIDs lists the reproducible tables and figures in paper order.
func ExperimentIDs() []string { return experiments.IDs() }

// HPEStatsOf extracts the HPE bookkeeping from a result, when the run used
// HPE.
func HPEStatsOf(r Result) (HPEStats, bool) {
	if r.HPE == nil {
		return HPEStats{}, false
	}
	return *r.HPE, true
}

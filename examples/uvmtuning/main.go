// UVM tuning: the extension studies in one place — what a *runtime* (rather
// than a policy) can do about the fault wall. Sweeps fault-block prefetching
// and driver pipelining on one workload, under LRU and under HPE, showing
// that runtime-level and policy-level improvements compose.
package main

import (
	"fmt"
	"log"
	"os"

	"hpe"
)

func main() {
	abbr := "BFS"
	if len(os.Args) > 1 {
		abbr = os.Args[1]
	}
	app, ok := hpe.WorkloadByAbbr(abbr)
	if !ok {
		log.Fatalf("unknown workload %q", abbr)
	}
	tr := app.Generate()
	capacity := tr.Footprint() * 3 / 4
	fmt.Printf("%s at 75%% oversubscription (%d pages of %d resident)\n\n",
		app, capacity, tr.Footprint())

	base := run(tr, capacity, "lru", 0, 1)
	fmt.Printf("%-28s %12s %12s %10s\n", "configuration", "faults", "cycles", "speedup")
	for _, c := range []struct {
		name     string
		policy   string
		prefetch int
		channels int
	}{
		{"LRU (paper baseline)", "lru", 0, 1},
		{"LRU + prefetch 15", "lru", 15, 1},
		{"LRU + 4 channels", "lru", 0, 4},
		{"HPE (paper)", "hpe", 0, 1},
		{"HPE + prefetch 15", "hpe", 15, 1},
		{"HPE + 4 channels", "hpe", 0, 4},
		{"HPE + both", "hpe", 15, 4},
	} {
		res := run(tr, capacity, c.policy, c.prefetch, c.channels)
		fmt.Printf("%-28s %12d %12d %9.2fx\n",
			c.name, res.Faults, res.Cycles, float64(base.Cycles)/float64(res.Cycles))
	}
	fmt.Println("\nprefetching collapses the per-page fault storm (runtime-level);")
	fmt.Println("HPE reduces how many of those faults exist at all (policy-level);")
	fmt.Println("pipelined servicing hides queueing delay. The three compose.")
}

func run(tr *hpe.Trace, capacity int, policy string, prefetch, channels int) hpe.Result {
	cfg := hpe.SystemConfig(capacity)
	cfg.Driver.PrefetchPages = prefetch
	cfg.Driver.Channels = channels
	if policy == "hpe" {
		return hpe.SimulateHPE(cfg, tr, hpe.DefaultHPEConfig())
	}
	return hpe.Simulate(cfg, tr, hpe.NewLRU())
}

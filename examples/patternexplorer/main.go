// Pattern explorer: generates each Table II application, profiles its
// reference string, and shows what HPE's statistics classifier (Table III)
// concludes about it — the Fig. 2 / Fig. 9 story end to end.
package main

import (
	"fmt"

	"hpe"
	"hpe/internal/addrspace"
	"hpe/internal/trace"
)

func main() {
	fmt.Printf("%-9s %-4s %-11s %8s %7s %9s   %-11s %s\n",
		"pattern", "app", "suite", "pages", "MB", "refs", "category", "ratio1/ratio2")
	for _, pt := range []hpe.PatternType{
		hpe.PatternStreaming, hpe.PatternThrashing, hpe.PatternPartRepetitive,
		hpe.PatternMostRepetitive, hpe.PatternRepetitiveThrashing, hpe.PatternRegionMoving,
	} {
		for _, app := range hpe.WorkloadsByPattern(pt) {
			tr := app.Generate()
			p := trace.Profiler(tr, addrspace.DefaultGeometry())

			// Run the real simulator long enough for HPE to classify.
			capacity := tr.Footprint() * 3 / 4
			res := hpe.SimulateHPE(hpe.SystemConfig(capacity), tr, hpe.DefaultHPEConfig())

			cat, ratios := "never full", ""
			if st, ok := hpe.HPEStatsOf(res); ok && st.Classified {
				cat = st.Category.String()
				ratios = fmt.Sprintf("%.2f / %.2f", st.Ratios.Ratio1, st.Ratios.Ratio2)
			}
			fmt.Printf("%-9s %-4s %-11s %8d %7.1f %9d   %-11s %s\n",
				pt, app.Abbr, app.Suite, p.Footprint,
				float64(p.FootprintBytes)/(1<<20), p.Refs, cat, ratios)
		}
	}
	fmt.Println("\nregular apps start on MRU-C; irregular ones on LRU (Table III / §IV-D).")
	fmt.Println("compare with the paper's Fig. 9 scatter of ratio1/ratio2.")
}

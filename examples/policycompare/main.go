// Policy comparison: every policy head-to-head over every Fig. 2 access
// pattern using the fast timing-free replay (demand paging only), showing
// where each policy's weakness lives — LRU's thrashing cliff, RRIP's
// instant thrashing, CLOCK-Pro and Random losing Type VI's recency signal.
package main

import (
	"fmt"

	"hpe"
	"hpe/internal/addrspace"
	"hpe/internal/workload"
)

func main() {
	patterns := []struct {
		name string
		gen  func(b *workload.Builder)
	}{
		{"Type I  (streaming)", func(b *workload.Builder) { workload.Streaming(b, 100, 1) }},
		{"Type II (thrashing)", func(b *workload.Builder) { workload.Thrashing(b, 100, 4, 1) }},
		{"Type III (part rep.)", func(b *workload.Builder) { workload.PartRepetitive(b, 100, 0.3, 40, 1) }},
		{"Type IV (most rep.)", func(b *workload.Builder) { workload.MostRepetitive(b, 100, 25, 3, 1) }},
		{"Type V  (rep.thrash)", func(b *workload.Builder) {
			workload.RepetitiveThrashing(b, 100, 3, func(s int) int { return 1 + s%2 }, 1)
		}},
		{"Type VI (regions)", func(b *workload.Builder) { workload.RegionMoving(b, 100, 2, 3, 1) }},
	}

	fmt.Printf("%-22s %9s %9s %9s %9s %9s %9s %9s\n",
		"pattern (100 sets)", "Ideal", "LRU", "FIFO", "Random", "RRIP", "CLOCKPro", "HPE")
	for _, p := range patterns {
		b := workload.NewBuilder(addrspace.DefaultGeometry(), 0x8000, 42)
		p.gen(b)
		tr := b.Build(p.name)
		capacity := tr.Footprint() * 3 / 4

		fmt.Printf("%-22s", p.name)
		for _, pol := range []hpe.Policy{
			hpe.NewIdeal(tr), hpe.NewLRU(), hpe.NewFIFO(), hpe.NewRandom(7),
			hpe.NewRRIP(hpe.DefaultRRIPConfig()), hpe.NewClockPro(capacity),
		} {
			fmt.Printf(" %9d", hpe.Replay(tr, pol, capacity).Faults)
		}
		// HPE with the ideal hit feed (Replay has no HIR hardware).
		cfg := hpe.DefaultHPEConfig()
		cfg.IdealHitFeed = true
		fmt.Printf(" %9d\n", hpe.Replay(tr, hpe.NewHPE(cfg), capacity).Faults)
	}
	fmt.Println("\nfault counts at 75% oversubscription; every page is referenced at least")
	fmt.Println("once, so the floor is the footprint (compulsory misses).")
}

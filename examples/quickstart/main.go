// Quickstart: simulate one thrashing workload (hotspot3D, Type II) under
// LRU and under HPE at 75% oversubscription, and print the speedup — the
// paper's headline experiment in ~20 lines.
package main

import (
	"fmt"
	"log"

	"hpe"
)

func main() {
	app, ok := hpe.WorkloadByAbbr("HSD")
	if !ok {
		log.Fatal("HSD missing from the catalog")
	}
	tr := app.Generate()

	// 75% oversubscription: only three quarters of the footprint fits.
	capacity := tr.Footprint() * 75 / 100
	cfg := hpe.SystemConfig(capacity)

	lru := hpe.Simulate(cfg, tr, hpe.NewLRU())
	hp := hpe.SimulateHPE(cfg, tr, hpe.DefaultHPEConfig())

	fmt.Printf("workload: %s (%d pages, memory %d pages)\n", app, tr.Footprint(), capacity)
	fmt.Printf("LRU: %v\n", lru)
	fmt.Printf("HPE: %v\n", hp)
	fmt.Printf("HPE speedup over LRU: %.2fx (%.0f%% fewer evictions)\n",
		hp.IPC/lru.IPC, (1-float64(hp.Evictions)/float64(lru.Evictions))*100)

	if st, ok := hpe.HPEStatsOf(hp); ok {
		fmt.Printf("HPE classified the app as %v and used %v\n", st.Category, st.ActiveStrategy)
	}
}

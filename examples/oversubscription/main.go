// Oversubscription sweep: how each eviction policy degrades as the GPU
// memory shrinks from 100% of the footprint down to 40% — the motivating
// scenario of the paper's introduction (computing across datasets that
// exceed GPU memory capacity).
//
// Run with an optional workload abbreviation: `go run ./examples/oversubscription BFS`
package main

import (
	"fmt"
	"log"
	"os"

	"hpe"
)

func main() {
	abbr := "SRD"
	if len(os.Args) > 1 {
		abbr = os.Args[1]
	}
	app, ok := hpe.WorkloadByAbbr(abbr)
	if !ok {
		log.Fatalf("unknown workload %q", abbr)
	}
	tr := app.Generate()
	fmt.Printf("%s: %d pages footprint, %d references\n\n", app, tr.Footprint(), tr.Len())

	rates := []int{100, 90, 75, 60, 50, 40}
	fmt.Printf("%-6s", "rate")
	for _, name := range []string{"LRU", "Random", "CLOCK-Pro", "Ideal", "HPE"} {
		fmt.Printf("  %12s", name)
	}
	fmt.Println("   (faults; lower is better)")
	for _, rate := range rates {
		capacity := tr.Footprint() * rate / 100
		if capacity < 1 {
			capacity = 1
		}
		cfg := hpe.SystemConfig(capacity)
		fmt.Printf("%3d%%  ", rate)
		for _, pol := range []hpe.Policy{
			hpe.NewLRU(), hpe.NewRandom(1), hpe.NewClockPro(capacity), hpe.NewIdeal(tr),
		} {
			res := hpe.Simulate(cfg, tr, pol)
			fmt.Printf("  %12d", res.Faults)
		}
		res := hpe.SimulateHPE(cfg, tr, hpe.DefaultHPEConfig())
		fmt.Printf("  %12d\n", res.Faults)
	}
	fmt.Println("\nAt 100% everything faults exactly once per page (compulsory misses).")
	fmt.Println("Below that, the gap between a policy's column and Ideal's is pure")
	fmt.Println("eviction-decision quality; the paper's Fig. 10–12 quantify this gap.")
}

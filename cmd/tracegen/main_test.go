package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"hpe"
	"hpe/internal/trace"
)

// TestConflictingSourceFlags pins the rejection of contradictory trace
// sources: tracegen must refuse, not silently prefer one.
func TestConflictingSourceFlags(t *testing.T) {
	cases := [][]string{
		{"-in", "x.hpet", "-app", "HSD"},
		{"-in", "x.hpet", "-all"},
		{"-app", "HSD", "-all"},
		{"-app", "HSD", "-phases", "HOT:16,HSD:32"},
		{"-phases", "HOT:16", "-tenants", "HSD,BFS"},
		{"-scenario", "diurnal", "-in", "x.hpet"},
	}
	for _, args := range cases {
		err := run(args, io.Discard)
		if err == nil || !strings.Contains(err.Error(), "conflicting flags") {
			t.Errorf("run(%v) = %v, want conflicting-flags error", args, err)
		}
	}
	if err := run([]string{"-interleave", "256", "-app", "HSD"}, io.Discard); err == nil ||
		!strings.Contains(err.Error(), "-interleave") {
		t.Errorf("-interleave without -tenants: got %v, want interleave error", err)
	}
	if err := run(nil, io.Discard); err != errNoSource {
		t.Errorf("no source: got %v, want errNoSource", err)
	}
}

// TestWriteReloadRoundTrip writes a trace, reloads it, and pins that the
// reloaded profile is byte-identical to the generated one — for a v1
// catalog app and for both annotated (v2) scenario families — and that
// re-encoding the reloaded trace reproduces the file bytes exactly.
func TestWriteReloadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		name string
		args []string
	}{
		{"v1-app", []string{"-app", "HSD"}},
		{"v2-phases", []string{"-phases", "HOT:16,HSD:32,HOT:16"}},
		{"v2-tenants", []string{"-tenants", "HSD,BFS", "-interleave", "512"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(dir, tc.name+".hpet")

			var direct bytes.Buffer
			if err := run(tc.args, &direct); err != nil {
				t.Fatalf("generate: %v", err)
			}
			if err := run(append(tc.args, "-out", path), io.Discard); err != nil {
				t.Fatalf("write: %v", err)
			}

			var reloaded bytes.Buffer
			if err := run([]string{"-in", path}, &reloaded); err != nil {
				t.Fatalf("reload: %v", err)
			}
			if direct.String() != reloaded.String() {
				t.Errorf("reloaded profile differs from generated profile:\n--- generated\n%s--- reloaded\n%s",
					direct.String(), reloaded.String())
			}

			fileBytes, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			f, err := os.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			tr, err := trace.Read(f)
			f.Close()
			if err != nil {
				t.Fatalf("trace.Read: %v", err)
			}
			var reenc bytes.Buffer
			if err := tr.Write(&reenc); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(fileBytes, reenc.Bytes()) {
				t.Errorf("re-encoded trace differs from file bytes (%d vs %d bytes)",
					len(reenc.Bytes()), len(fileBytes))
			}
		})
	}
}

// TestCapturedTraceReplayReproducesFaults is the ISSUE acceptance check: a
// tracegen-captured v2 trace, read back from disk, replays through
// policy.Replay reproducing the originating run's fault count — including
// the per-tenant attribution.
func TestCapturedTraceReplayReproducesFaults(t *testing.T) {
	app, err := resolveApp("", "", "HSD,BFS", "", 512)
	if err != nil {
		t.Fatal(err)
	}
	tr := app.Generate()
	if !tr.Annotated() {
		t.Fatal("colocated trace should carry v2 annotations")
	}
	capacity := tr.Footprint() / 2
	origin := hpe.Replay(tr, hpe.NewLRU(), capacity)
	if origin.Faults == 0 {
		t.Fatal("originating run produced no faults")
	}
	if len(origin.Tenants) != 2 {
		t.Fatalf("originating run: %d tenant rows, want 2", len(origin.Tenants))
	}

	path := filepath.Join(t.TempDir(), "colo.hpet")
	if err := writeTrace(tr, path); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	captured, err := trace.Read(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}

	replayed := hpe.Replay(captured, hpe.NewLRU(), capacity)
	if replayed.Faults != origin.Faults {
		t.Fatalf("captured replay faults %d != originating %d", replayed.Faults, origin.Faults)
	}
	if !reflect.DeepEqual(replayed.Tenants, origin.Tenants) {
		t.Fatalf("captured replay tenants %+v != originating %+v", replayed.Tenants, origin.Tenants)
	}
}

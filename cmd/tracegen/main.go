// Command tracegen generates, inspects, and converts the synthetic workload
// traces.
//
// Usage:
//
//	tracegen -app HSD -out hsd.hpet          # write the binary trace
//	tracegen -app HSD -profile               # print the trace profile
//	tracegen -in hsd.hpet -profile           # profile an existing trace
//	tracegen -all -dir traces/               # dump the whole catalog
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"hpe"
	"hpe/internal/addrspace"
	"hpe/internal/trace"
)

func main() {
	appAbbr := flag.String("app", "", "workload abbreviation to generate")
	all := flag.Bool("all", false, "generate every catalog workload")
	out := flag.String("out", "", "output file for -app")
	dir := flag.String("dir", ".", "output directory for -all")
	in := flag.String("in", "", "existing trace file to load instead of generating")
	profile := flag.Bool("profile", false, "print the trace profile instead of writing")
	flag.Parse()

	switch {
	case *all:
		for _, a := range hpe.Workloads() {
			tr := a.Generate()
			name := strings.ReplaceAll(strings.ToLower(a.Abbr), "+", "p") + ".hpet"
			path := filepath.Join(*dir, name)
			if err := writeTrace(tr, path); err != nil {
				fatalf("%s: %v", a.Abbr, err)
			}
			fmt.Printf("wrote %-18s %s\n", path, trace.Profiler(tr, addrspace.DefaultGeometry()))
		}
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		tr, err := trace.Read(f)
		if err != nil {
			fatalf("%v", err)
		}
		describe(tr)
	case *appAbbr != "":
		a, ok := hpe.WorkloadByAbbr(*appAbbr)
		if !ok {
			fatalf("unknown workload %q", *appAbbr)
		}
		tr := a.Generate()
		if *profile || *out == "" {
			describe(tr)
		}
		if *out != "" {
			if err := writeTrace(tr, *out); err != nil {
				fatalf("%v", err)
			}
			fmt.Printf("wrote %s\n", *out)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func describe(tr *hpe.Trace) {
	p := trace.Profiler(tr, addrspace.DefaultGeometry())
	fmt.Println(p)
	fmt.Printf("barriers: %d kernel boundaries\n", len(tr.Barriers))
	reg, irr, small, large := p.CounterClasses(addrspace.DefaultSetSize)
	fmt.Printf("set counter census (capped at 64): regular=%d irregular=%d small=%d large=%d\n",
		reg, irr, small, large)
	d := trace.ReuseDistances(tr)
	if len(d) > 0 {
		fmt.Printf("reuse distances: %d reuses, median %d pages, p90 %d pages\n",
			len(d), d[len(d)/2], d[len(d)*9/10])
	} else {
		fmt.Println("reuse distances: none (pure streaming)")
	}
}

func writeTrace(tr *hpe.Trace, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracegen: "+format+"\n", args...)
	os.Exit(2)
}

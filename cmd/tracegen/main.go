// Command tracegen generates, inspects, and converts the synthetic workload
// traces.
//
// Usage:
//
//	tracegen -app HSD -out hsd.hpet              # write the binary trace
//	tracegen -app HSD -profile                   # print the trace profile
//	tracegen -in hsd.hpet -profile               # profile an existing trace
//	tracegen -all -dir traces/                   # dump the whole catalog
//	tracegen -phases "HOT:32,HSD:96" -out p.hpet # workload-v2 phase schedule
//	tracegen -tenants "HSD,BFS" -out colo.hpet   # workload-v2 colocation
//	tracegen -scenario diurnal -profile          # named workload-v2 preset
//	tracegen -scenarios                          # list the presets
//
// Annotated (phase/tenant) traces are written in the v2 container format;
// plain traces keep the v1 bytes. trace.Read accepts both.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"hpe"
	"hpe/internal/addrspace"
	"hpe/internal/trace"
	"hpe/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(2)
	}
}

// errNoSource asks main to print the flag usage before exiting.
var errNoSource = errors.New("no trace source: pass -app, -all, -in, -phases, -tenants or -scenario")

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	appAbbr := fs.String("app", "", "workload abbreviation to generate")
	all := fs.Bool("all", false, "generate every catalog workload")
	out := fs.String("out", "", "output file for a single generated trace")
	dir := fs.String("dir", ".", "output directory for -all")
	in := fs.String("in", "", "existing trace file to load instead of generating")
	profile := fs.Bool("profile", false, "print the trace profile instead of writing")
	phases := fs.String("phases", "", "phase schedule to generate (workload v2)")
	tenants := fs.String("tenants", "", "tenant colocation to generate (workload v2)")
	interleave := fs.Int("interleave", 0, "colocation scheduling quantum in references (with -tenants)")
	scenario := fs.String("scenario", "", "named workload-v2 preset to generate")
	scenarios := fs.Bool("scenarios", false, "list the workload-v2 presets and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *scenarios {
		for _, sc := range hpe.Scenarios() {
			src := "phases " + sc.Phases
			if sc.Tenants != "" {
				src = "tenants " + sc.Tenants
			}
			fmt.Fprintf(stdout, "%-12s %-28s %s\n", sc.Name, src, sc.Description)
		}
		return nil
	}

	// Exactly one trace source; a second one is a contradiction, not a
	// priority question.
	sources := 0
	for _, set := range []bool{*in != "", *all, *appAbbr != "", *phases != "", *tenants != "", *scenario != ""} {
		if set {
			sources++
		}
	}
	if sources > 1 {
		return errors.New("conflicting flags: -in, -all, -app, -phases, -tenants and -scenario each name a trace source; pick one")
	}
	if *interleave != 0 && *tenants == "" && *scenario == "" {
		return errors.New("-interleave only applies to a -tenants (or colocated -scenario) source")
	}

	switch {
	case *all:
		for _, a := range hpe.Workloads() {
			tr := a.Generate()
			name := strings.ReplaceAll(strings.ToLower(a.Abbr), "+", "p") + ".hpet"
			path := filepath.Join(*dir, name)
			if err := writeTrace(tr, path); err != nil {
				return fmt.Errorf("%s: %w", a.Abbr, err)
			}
			fmt.Fprintf(stdout, "wrote %-18s %s\n", path, trace.Profiler(tr, addrspace.DefaultGeometry()))
		}
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		tr, err := trace.Read(f)
		if err != nil {
			return err
		}
		describe(stdout, tr)
	case *appAbbr != "" || *phases != "" || *tenants != "" || *scenario != "":
		app, err := resolveApp(*appAbbr, *phases, *tenants, *scenario, *interleave)
		if err != nil {
			return err
		}
		tr := app.Generate()
		if *profile || *out == "" {
			describe(stdout, tr)
		}
		if *out != "" {
			if err := writeTrace(tr, *out); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "wrote %s\n", *out)
		}
	default:
		fs.Usage()
		return errNoSource
	}
	return nil
}

// resolveApp turns the single selected source flag into a workload.
func resolveApp(abbr, phases, tenants, scenario string, interleave int) (hpe.App, error) {
	if scenario != "" {
		sc, ok := hpe.ScenarioByName(scenario)
		if !ok {
			return hpe.App{}, fmt.Errorf("unknown scenario %q (tracegen -scenarios lists them)", scenario)
		}
		phases, tenants = sc.Phases, sc.Tenants
		if interleave == 0 {
			interleave = sc.Interleave
		}
	}
	switch {
	case phases != "":
		ps, err := workload.ParsePhases(phases)
		if err != nil {
			return hpe.App{}, err
		}
		return ps.App(), nil
	case tenants != "":
		co, err := workload.ParseTenants(tenants)
		if err != nil {
			return hpe.App{}, err
		}
		if interleave == 0 {
			interleave = workload.DefaultInterleave
		}
		if interleave < 0 || interleave > workload.MaxInterleave {
			return hpe.App{}, fmt.Errorf("interleave %d out of (0,%d]", interleave, workload.MaxInterleave)
		}
		return co.App(interleave), nil
	default:
		a, ok := hpe.WorkloadByAbbr(abbr)
		if !ok {
			return hpe.App{}, fmt.Errorf("unknown workload %q", abbr)
		}
		return a, nil
	}
}

func describe(w io.Writer, tr *hpe.Trace) {
	p := trace.Profiler(tr, addrspace.DefaultGeometry())
	fmt.Fprintln(w, p)
	fmt.Fprintf(w, "barriers: %d kernel boundaries\n", len(tr.Barriers))
	if tr.Annotated() {
		fmt.Fprintln(w, "container: v2 (annotated)")
	} else {
		fmt.Fprintln(w, "container: v1")
	}
	for i, seg := range tr.Segments {
		end := tr.Len()
		if i+1 < len(tr.Segments) {
			end = tr.Segments[i+1].Start
		}
		fmt.Fprintf(w, "segment %2d: phase %-3d refs [%d,%d) gap=%d\n", i, seg.Phase, seg.Start, end, seg.Gap)
	}
	for _, t := range tr.Tenants {
		fmt.Fprintf(w, "tenant %-8s pages [%d,%d)\n", t.Name, t.Lo, t.Hi)
	}
	reg, irr, small, large := p.CounterClasses(addrspace.DefaultSetSize)
	fmt.Fprintf(w, "set counter census (capped at 64): regular=%d irregular=%d small=%d large=%d\n",
		reg, irr, small, large)
	d := trace.ReuseDistances(tr)
	if len(d) > 0 {
		fmt.Fprintf(w, "reuse distances: %d reuses, median %d pages, p90 %d pages\n",
			len(d), d[len(d)/2], d[len(d)*9/10])
	} else {
		fmt.Fprintln(w, "reuse distances: none (pure streaming)")
	}
}

func writeTrace(tr *hpe.Trace, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

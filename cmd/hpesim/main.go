// Command hpesim runs one workload under one eviction policy at one
// oversubscription rate and prints the simulation metrics.
//
// Usage:
//
//	hpesim -app HSD -policy hpe -rate 75
//	hpesim -app BFS -policy lru,rrip,ideal,hpe -rate 50 -v
//	hpesim -trace dump.hpet -policy clockpro -rate 75   # pre-generated trace
//	hpesim -list                                        # list workloads
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/signal"
	"strings"

	"hpe"
	"hpe/internal/gpu"
	"hpe/internal/sim"
	"hpe/internal/trace"
	"hpe/internal/workload"
)

func loadTrace(r io.Reader) (*hpe.Trace, error) { return trace.Read(r) }

func main() {
	appAbbr := flag.String("app", "HSD", "workload abbreviation (see -list)")
	tracePath := flag.String("trace", "", "run a trace file instead of a catalog workload")
	policies := flag.String("policy", "hpe", "comma-separated policy names (see -policies)")
	rate := flag.Int("rate", 75, "oversubscription rate in percent (memory = rate% of footprint)")
	list := flag.Bool("list", false, "list catalog workloads and exit")
	listPolicies := flag.Bool("policies", false, "list registered eviction policies and exit")
	metrics := flag.Bool("metrics", false, "attach a metrics probe and print per-event histograms")
	verbose := flag.Bool("v", false, "print extended statistics")
	prefetch := flag.Int("prefetch", 0, "extra pages migrated per fault from the same 64-KB block")
	channels := flag.Int("channels", 1, "parallel fault-service channels in the driver")
	design := flag.String("design", "l2tlb", "address translation design: l2tlb or pwc")
	datapath := flag.Bool("datapath", false, "model the Table I data hierarchy (L1D/L2/GDDR5)")
	flag.Parse()

	if *list {
		for _, a := range hpe.Workloads() {
			fmt.Println(a)
		}
		return
	}
	if *listPolicies {
		for _, info := range hpe.Policies() {
			fmt.Printf("%-10s %-10s %s\n", info.Name, info.Display, info.Description)
		}
		return
	}
	if *rate <= 0 || *rate > 100 {
		fatalf("rate %d out of (0,100]", *rate)
	}

	var tr *hpe.Trace
	var app hpe.App
	haveApp := false
	if *tracePath != "" {
		f, err := os.Open(*tracePath)
		if err != nil {
			fatalf("open trace: %v", err)
		}
		defer f.Close()
		tr, err = loadTrace(f)
		if err != nil {
			fatalf("read trace: %v", err)
		}
	} else {
		var ok bool
		app, ok = hpe.WorkloadByAbbr(*appAbbr)
		if !ok {
			fatalf("unknown workload %q (use -list)", *appAbbr)
		}
		haveApp = true
		tr = app.Generate()
	}

	capacity := int(math.Ceil(float64(tr.Footprint()) * float64(*rate) / 100))
	fmt.Printf("workload %s: %d refs, %d pages footprint (%.1f MB), memory %d pages (%d%%)\n",
		tr.Name, tr.Len(), tr.Footprint(), float64(tr.FootprintBytes())/(1<<20), capacity, *rate)

	// Ctrl-C stops the current simulation at its next cancellation poll and
	// skips the remaining policies; a second Ctrl-C kills outright.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()

	for _, name := range strings.Split(*policies, ",") {
		name = strings.TrimSpace(strings.ToLower(name))
		cfg := hpe.SystemConfig(capacity)
		if haveApp && app.ComputeGap > 0 {
			cfg.ComputeGap = sim.Cycle(app.ComputeGap)
		}
		cfg.Driver.PrefetchPages = *prefetch
		cfg.Driver.Channels = *channels
		cfg.ModelDataPath = *datapath
		switch strings.ToLower(*design) {
		case "l2tlb":
		case "pwc":
			cfg.Translation = gpu.DesignPWC
		default:
			fatalf("unknown translation design %q (l2tlb or pwc)", *design)
		}
		popts := []hpe.PolicyOption{
			hpe.WithPolicySeed(1),
			hpe.WithCapacity(capacity),
			hpe.WithTrace(tr),
		}
		if haveApp && app.Pattern == workload.PatternThrashing {
			popts = append(popts, hpe.WithThrashingRRIP())
		}
		pol, err := hpe.NewPolicy(name, popts...)
		if err != nil {
			fatalf("%v", err)
		}
		ropts := []hpe.RunOption{hpe.WithContext(ctx)}
		if info, ok := hpe.LookupPolicy(name); ok && info.NeedsHIR {
			ropts = append(ropts, hpe.WithHIR())
		}
		var m *hpe.MetricsProbe
		if *metrics {
			m = hpe.NewMetricsProbe()
			ropts = append(ropts, hpe.WithProbe(m))
		}
		res := hpe.Simulate(cfg, tr, pol, ropts...)
		if res.Cancelled {
			fmt.Fprintln(os.Stderr, "hpesim: interrupted")
			os.Exit(130)
		}
		fmt.Println(res)
		if *verbose {
			printDetails(res)
		}
		if m != nil {
			fmt.Println("  probe: " + strings.ReplaceAll(m.Snapshot().String(), "\n", "\n  "))
		}
	}
}

func printDetails(r hpe.Result) {
	fmt.Printf("  cycles=%d instructions=%d runtime=%.2fms\n", r.Cycles, r.Instructions, r.Runtime(1400)*1e3)
	fmt.Printf("  L1 TLB %d/%d hits, L2 TLB %d/%d hits, walks=%d (merged %d), walk hits=%d\n",
		r.L1Hits, r.L1Hits+r.L1Misses, r.L2Hits, r.L2Hits+r.L2Misses, r.Walks, r.WalkMerges, r.WalkHits)
	fmt.Printf("  faults=%d (coalesced %d) evictions=%d barriers=%d queue depth max=%d\n",
		r.Faults, r.Coalesced, r.Evictions, r.BarriersCrossed, r.Driver.MaxQueueDepth)
	if r.DRAM != nil {
		fmt.Printf("  data: L1D %d/%d hits, L2D %d/%d hits, DRAM row-hit %.1f%%, queue wait %.1f cyc\n",
			r.DataL1Hits, r.DataL1Hits+r.DataL1Misses, r.DataL2Hits, r.DataL2Hits+r.DataL2Misses,
			r.DRAM.RowHitRate*100, r.DRAM.MeanQueueWait)
	}
	if r.HIR != nil {
		fmt.Printf("  HIR: %d hits recorded, %d drains, %.1f entries/transfer, %d conflicts, %d bytes over PCIe\n",
			r.HIR.HitsRecorded, r.HIR.Drains, r.HIR.MeanNonEmpty, r.HIR.Conflicts, r.Driver.HIRTransferBytes)
	}
	if st, ok := hpe.HPEStatsOf(r); ok && st.Classified {
		fmt.Printf("  HPE: %v (ratio1=%.3f ratio2=%.3f), strategy %v, %d switches, %d jumps, %d divisions\n",
			st.Category, st.Ratios.Ratio1, st.Ratios.Ratio2, st.ActiveStrategy, st.Switches, len(st.Jumps), st.Divisions)
		fmt.Printf("  HPE: %d MRU-C searches, %.1f comparisons avg, chain %d sets (%d/%d/%d old/mid/new)\n",
			st.Searches, st.MeanComparisons, st.ChainLen, st.ChainOld, st.ChainMiddle, st.ChainNew)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hpesim: "+format+"\n", args...)
	os.Exit(2)
}

// Command hpesim runs one workload under one eviction policy at one
// oversubscription rate and prints the simulation metrics.
//
// The catalog flags are the CLI surface of the canonical run spec
// (internal/runspec): flags build a Spec, the Spec is content-addressed and
// materialized exactly as the experiment suite and hped materialize it, and
// hpe.Run executes it — so an hpesim invocation, a POST /v1/runs body, and a
// suite cell describing the same run share one identity.
//
// Usage:
//
//	hpesim -app HSD -policy hpe -rate 75
//	hpesim -app BFS -policy lru,rrip,ideal,hpe -rate 50 -v
//	hpesim -trace dump.hpet -policy clockpro -rate 75   # pre-generated trace
//	hpesim -list                                        # list workloads
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"

	"hpe"
	"hpe/internal/gpu"
	"hpe/internal/runspec"
	"hpe/internal/sim"
	"hpe/internal/trace"
)

func loadTrace(r io.Reader) (*hpe.Trace, error) { return trace.Read(r) }

func main() {
	var fl runspec.Flags
	fl.Register(flag.CommandLine)
	tracePath := flag.String("trace", "", "run a trace file instead of a catalog workload")
	list := flag.Bool("list", false, "list catalog workloads and exit")
	listPolicies := flag.Bool("policies", false, "list registered eviction policies and exit")
	metrics := flag.Bool("metrics", false, "attach a metrics probe and print per-event histograms")
	verbose := flag.Bool("v", false, "print extended statistics")
	flag.Parse()

	if *list {
		for _, a := range hpe.Workloads() {
			fmt.Println(a)
		}
		return
	}
	if *listPolicies {
		for _, info := range hpe.Policies() {
			fmt.Printf("%-10s %-10s %s\n", info.Name, info.Display, info.Description)
		}
		return
	}

	// Ctrl-C stops the current simulation at its next cancellation poll and
	// skips the remaining policies; a second Ctrl-C kills outright.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()

	if *tracePath != "" {
		runTraceFile(ctx, fl, *tracePath, *metrics, *verbose)
		return
	}

	// Catalog mode: each -policy entry is one run spec; the shared env
	// generates the (scaled) workload's trace once across the policy list.
	specs := make([]hpe.RunSpec, 0, 4)
	for _, name := range strings.Split(fl.Policy, ",") {
		f := fl
		f.Policy = strings.TrimSpace(name)
		sp, err := f.Spec().Canonicalize()
		if err != nil {
			fatalf("%v", err)
		}
		specs = append(specs, sp)
	}
	traces := make(map[string]*hpe.Trace)
	futures := make(map[string]*trace.FutureIndex)
	env := hpe.RunEnv{
		Trace: func(a hpe.App) *hpe.Trace {
			key := fmt.Sprintf("%s/%d", a.Abbr, a.Sets)
			if tr, ok := traces[key]; ok {
				return tr
			}
			tr := a.Generate()
			tr.Footprint()
			traces[key] = tr
			return tr
		},
		Future: func(a hpe.App, tr *hpe.Trace) *trace.FutureIndex {
			key := fmt.Sprintf("%s/%d", a.Abbr, a.Sets)
			if fi, ok := futures[key]; ok {
				return fi
			}
			fi := trace.BuildFutureIndex(tr)
			futures[key] = fi
			return fi
		},
	}

	// Materializing the first spec resolves the workload source — a catalog
	// app, a phase schedule, a tenant colocation, or a trace file — and the
	// env memo shares its trace with the runs below.
	m0, err := specs[0].Materialize(env)
	if err != nil {
		fatalf("%v", err)
	}
	printBanner(m0.Trace, specs[0].Rate)

	for _, sp := range specs {
		ropts := []hpe.RunOption{hpe.WithContext(ctx), hpe.WithRunEnv(env)}
		var m *hpe.MetricsProbe
		if *metrics {
			m = hpe.NewMetricsProbe()
			ropts = append(ropts, hpe.WithProbe(m))
		}
		res, err := hpe.Run(sp, ropts...)
		if err != nil {
			fatalf("%v", err)
		}
		report(res, m, *verbose)
	}
}

// runTraceFile is the pre-generated-trace path: the reference string comes
// from a file instead of the workload catalog, so there is no spec identity —
// the run is assembled by hand on the same flag values.
func runTraceFile(ctx context.Context, fl runspec.Flags, path string, metrics, verbose bool) {
	f, err := os.Open(path)
	if err != nil {
		fatalf("open trace: %v", err)
	}
	defer f.Close()
	tr, err := loadTrace(f)
	if err != nil {
		fatalf("read trace: %v", err)
	}
	if fl.Rate <= 0 || fl.Rate > 100 {
		fatalf("rate %d out of (0,100]", fl.Rate)
	}
	capacity := runspec.CapacityFor(tr, fl.Rate)
	printBanner(tr, fl.Rate)
	for _, name := range strings.Split(fl.Policy, ",") {
		name = strings.TrimSpace(strings.ToLower(name))
		cfg := hpe.SystemConfig(capacity)
		cfg.Driver.PrefetchPages = fl.Prefetch
		cfg.Driver.Channels = fl.Channels
		cfg.ModelDataPath = fl.DataPath
		cfg.MaxCycles = sim.Cycle(fl.MaxCycles)
		switch strings.ToLower(fl.Design) {
		case "", "l2tlb":
		case "pwc":
			cfg.Translation = gpu.DesignPWC
		default:
			fatalf("unknown translation design %q (l2tlb or pwc)", fl.Design)
		}
		pol, err := hpe.NewPolicy(name,
			hpe.WithPolicySeed(fl.Seed),
			hpe.WithCapacity(capacity),
			hpe.WithTrace(tr))
		if err != nil {
			fatalf("%v", err)
		}
		ropts := []hpe.RunOption{hpe.WithContext(ctx)}
		if info, ok := hpe.LookupPolicy(name); ok && info.NeedsHIR && fl.HIR != "off" {
			ropts = append(ropts, hpe.WithHIR())
		}
		var m *hpe.MetricsProbe
		if metrics {
			m = hpe.NewMetricsProbe()
			ropts = append(ropts, hpe.WithProbe(m))
		}
		report(hpe.Simulate(cfg, tr, pol, ropts...), m, verbose)
	}
}

func printBanner(tr *hpe.Trace, rate int) {
	capacity := runspec.CapacityFor(tr, rate)
	fmt.Printf("workload %s: %d refs, %d pages footprint (%.1f MB), memory %d pages (%d%%)\n",
		tr.Name, tr.Len(), tr.Footprint(), float64(tr.FootprintBytes())/(1<<20), capacity, rate)
}

// report prints one run's result block, exiting 130 on interruption.
func report(res hpe.Result, m *hpe.MetricsProbe, verbose bool) {
	if res.Cancelled {
		fmt.Fprintln(os.Stderr, "hpesim: interrupted")
		os.Exit(130)
	}
	fmt.Println(res)
	if verbose {
		printDetails(res)
	}
	if m != nil {
		fmt.Println("  probe: " + strings.ReplaceAll(m.Snapshot().String(), "\n", "\n  "))
	}
}

func printDetails(r hpe.Result) {
	fmt.Printf("  cycles=%d instructions=%d runtime=%.2fms\n", r.Cycles, r.Instructions, r.Runtime(1400)*1e3)
	fmt.Printf("  L1 TLB %d/%d hits, L2 TLB %d/%d hits, walks=%d (merged %d), walk hits=%d\n",
		r.L1Hits, r.L1Hits+r.L1Misses, r.L2Hits, r.L2Hits+r.L2Misses, r.Walks, r.WalkMerges, r.WalkHits)
	fmt.Printf("  faults=%d (coalesced %d) evictions=%d barriers=%d queue depth max=%d\n",
		r.Faults, r.Coalesced, r.Evictions, r.BarriersCrossed, r.Driver.MaxQueueDepth)
	for _, ts := range r.Driver.Tenants {
		fmt.Printf("  tenant %-8s faults=%d evictions=%d cross-evictions=%d\n",
			ts.Name, ts.Faults, ts.Evictions, ts.CrossEvictions)
	}
	if r.DRAM != nil {
		fmt.Printf("  data: L1D %d/%d hits, L2D %d/%d hits, DRAM row-hit %.1f%%, queue wait %.1f cyc\n",
			r.DataL1Hits, r.DataL1Hits+r.DataL1Misses, r.DataL2Hits, r.DataL2Hits+r.DataL2Misses,
			r.DRAM.RowHitRate*100, r.DRAM.MeanQueueWait)
	}
	if r.HIR != nil {
		fmt.Printf("  HIR: %d hits recorded, %d drains, %.1f entries/transfer, %d conflicts, %d bytes over PCIe\n",
			r.HIR.HitsRecorded, r.HIR.Drains, r.HIR.MeanNonEmpty, r.HIR.Conflicts, r.Driver.HIRTransferBytes)
	}
	if st, ok := hpe.HPEStatsOf(r); ok && st.Classified {
		fmt.Printf("  HPE: %v (ratio1=%.3f ratio2=%.3f), strategy %v, %d switches, %d jumps, %d divisions\n",
			st.Category, st.Ratios.Ratio1, st.Ratios.Ratio2, st.ActiveStrategy, st.Switches, len(st.Jumps), st.Divisions)
		fmt.Printf("  HPE: %d MRU-C searches, %.1f comparisons avg, chain %d sets (%d/%d/%d old/mid/new)\n",
			st.Searches, st.MeanComparisons, st.ChainLen, st.ChainOld, st.ChainMiddle, st.ChainNew)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hpesim: "+format+"\n", args...)
	os.Exit(2)
}

package main

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// syncBuffer is a goroutine-safe bytes.Buffer: run() writes from the daemon
// goroutine while the test polls for the listening line.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestDaemonLifecycle drives a full daemon run in-process: boot on an
// ephemeral port, serve real requests, deliver a real SIGTERM, and assert
// the drain completes within the shutdown timeout with exit code 0.
func TestDaemonLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a full daemon")
	}
	var stdout, stderr syncBuffer
	exit := make(chan int, 1)
	go func() {
		exit <- run([]string{"-addr", "127.0.0.1:0", "-workers", "2",
			"-shutdown-timeout", "20s"}, &stdout, &stderr)
	}()

	// The listening line carries the resolved ephemeral address.
	var base string
	deadline := time.Now().Add(10 * time.Second)
	for base == "" {
		if time.Now().After(deadline) {
			t.Fatalf("daemon never announced its address; stderr:\n%s", stderr.String())
		}
		out := stdout.String()
		if i := strings.Index(out, "http://"); i >= 0 {
			if j := strings.IndexAny(out[i:], " \n"); j > 0 {
				base = out[i : i+j]
			}
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	resp, err = http.Post(base+"/v1/runs", "application/json",
		strings.NewReader(`{"app":"KMN","policy":"lru","rate":50}`))
	if err != nil {
		t.Fatalf("POST /v1/runs: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run: %d: %s", resp.StatusCode, body)
	}
	if !bytes.Contains(body, []byte(`"id":"run-`)) {
		t.Fatalf("run response lacks content address: %s", body)
	}

	// Real signal delivery: the daemon must drain and exit 0 well within
	// the shutdown timeout.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("exit code %d; stderr:\n%s", code, stderr.String())
		}
	case <-time.After(25 * time.Second):
		t.Fatalf("daemon did not exit after SIGTERM; stderr:\n%s", stderr.String())
	}
	logs := stderr.String()
	for _, want := range []string{"shutdown signal, draining", "cache:", "drained cleanly"} {
		if !strings.Contains(logs, want) {
			t.Errorf("shutdown log lacks %q:\n%s", want, logs)
		}
	}
	// After exit the port must be closed.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Errorf("daemon still serving after exit")
	}
}

// TestBadFlags exercises the flag-error path without booting anything.
func TestBadFlags(t *testing.T) {
	var stdout, stderr syncBuffer
	if code := run([]string{"-no-such-flag"}, &stdout, &stderr); code != 2 {
		t.Fatalf("bad flag: exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "flag") {
		t.Errorf("flag error not reported: %s", stderr.String())
	}
}

// Command hped is the simulation-as-a-service daemon: a long-running HTTP
// server exposing the full simulation surface with request coalescing, a
// content-addressed result cache, and cancellable runs. With -coordinator it
// instead fronts a set of hped backends, consistent-hashing each run's
// content address across them and serving the same /v1 surface.
//
// Usage:
//
//	hped                          # listen on 127.0.0.1:7770
//	hped -addr :8080 -workers 8   # public, 8 concurrent simulations
//	hped -cache-mb 1024           # 1 GiB result cache
//	hped -coordinator -backends http://10.0.0.1:7770,http://10.0.0.2:7770
//
// Quickstart:
//
//	curl -s localhost:7770/v1/apps | jq '.[0]'
//	curl -s -X POST localhost:7770/v1/runs \
//	     -d '{"app":"HSD","policy":"hpe","rate":75}' | jq .result.IPC
//	curl -s localhost:7770/metrics | grep hped_cache
//
// Identical concurrent submissions coalesce onto one simulation; repeated
// submissions hit the LRU result cache and return byte-identical bodies in
// microseconds. SIGINT/SIGTERM drains in-flight requests (bounded by
// -shutdown-timeout), cancels whatever remains, flushes the cache stats to
// stderr, and exits. Coordinator mode shares all of it: the same envelope
// vocabulary, the same run IDs, byte-identical sweep bodies (README has the
// cluster quickstart).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"hpe/internal/cluster"
	"hpe/internal/server"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment injected, so tests can drive a full
// daemon lifecycle — including real SIGTERM delivery — in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hped", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:7770", "listen address")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "concurrent simulations")
	queue := fs.Int("queue", 0, "admitted computations waiting beyond -workers before 429 (0 = 4x workers)")
	cacheMB := fs.Int64("cache-mb", 256, "result-cache budget in MiB")
	shutdownTimeout := fs.Duration("shutdown-timeout", 15*time.Second,
		"how long SIGTERM waits for in-flight requests before cancelling them")
	coordinator := fs.Bool("coordinator", false,
		"run as a cluster coordinator over -backends instead of simulating locally")
	backends := fs.String("backends", "",
		"comma-separated backend base URLs (coordinator mode, required)")
	healthInterval := fs.Duration("health-interval", 2*time.Second,
		"backend /healthz polling period (coordinator mode)")
	dispatchAttempts := fs.Int("dispatch-attempts", 4,
		"ring-walk rounds per shard before backend_unavailable (coordinator mode)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	logf := func(format string, a ...any) {
		fmt.Fprintf(stderr, format+"\n", a...)
	}

	if *coordinator {
		return runCoordinator(ctx, coordinatorConfig{
			addr:            *addr,
			backends:        *backends,
			cacheMB:         *cacheMB,
			healthInterval:  *healthInterval,
			maxAttempts:     *dispatchAttempts,
			shutdownTimeout: *shutdownTimeout,
		}, logf, stdout, stderr)
	}

	srv := server.New(server.Config{
		Workers:    *workers,
		QueueDepth: *queue,
		CacheBytes: *cacheMB << 20,
		Logf:       logf,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "hped: listen: %v\n", err)
		return 1
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	fmt.Fprintf(stdout, "hped listening on http://%s (workers=%d, cache=%dMiB)\n",
		ln.Addr(), *workers, *cacheMB)

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintf(stderr, "hped: serve: %v\n", err)
		srv.Close()
		return 1
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting, let in-flight requests finish
	// within the timeout, then cancel whatever is still simulating.
	fmt.Fprintf(stderr, "hped: shutdown signal, draining (timeout %v)\n", *shutdownTimeout)
	srv.Drain()
	dctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
	defer cancel()
	drainErr := httpSrv.Shutdown(dctx)
	fmt.Fprintf(stderr, "hped: %s\n", srv.Close())
	if drainErr != nil && !errors.Is(drainErr, http.ErrServerClosed) {
		fmt.Fprintf(stderr, "hped: drain: %v (in-flight simulations cancelled)\n", drainErr)
		return 1
	}
	fmt.Fprintln(stderr, "hped: drained cleanly")
	return 0
}

// coordinatorConfig carries the coordinator-mode flag values.
type coordinatorConfig struct {
	addr            string
	backends        string
	cacheMB         int64
	healthInterval  time.Duration
	maxAttempts     int
	shutdownTimeout time.Duration
}

// runCoordinator is the -coordinator serving loop: same lifecycle shape as
// the backend path (listen, serve, drain on signal), with the cluster
// coordinator behind the handler instead of the local simulator.
func runCoordinator(ctx context.Context, cfg coordinatorConfig,
	logf func(string, ...any), stdout, stderr io.Writer) int {
	var urls []string
	for _, b := range strings.Split(cfg.backends, ",") {
		if b = strings.TrimSpace(b); b != "" {
			urls = append(urls, strings.TrimRight(b, "/"))
		}
	}
	coord, err := cluster.New(cluster.Config{
		Backends:       urls,
		HealthInterval: cfg.healthInterval,
		MaxAttempts:    cfg.maxAttempts,
		CacheBytes:     cfg.cacheMB << 20,
		Logf:           logf,
	})
	if err != nil {
		fmt.Fprintf(stderr, "hped: %v\n", err)
		return 2
	}
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		fmt.Fprintf(stderr, "hped: listen: %v\n", err)
		coord.Close()
		return 1
	}
	httpSrv := &http.Server{Handler: coord.Handler()}
	fmt.Fprintf(stdout, "hped coordinator listening on http://%s (%d backends, cache=%dMiB)\n",
		ln.Addr(), len(urls), cfg.cacheMB)

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintf(stderr, "hped: serve: %v\n", err)
		coord.Close()
		return 1
	case <-ctx.Done():
	}

	fmt.Fprintf(stderr, "hped: shutdown signal, draining (timeout %v)\n", cfg.shutdownTimeout)
	coord.Drain()
	//lint:ignore hpelint/ctxflow the caller's ctx has already fired (that is why we are draining); the drain deadline must outlive it
	dctx, cancel := context.WithTimeout(context.Background(), cfg.shutdownTimeout)
	defer cancel()
	drainErr := httpSrv.Shutdown(dctx)
	fmt.Fprintf(stderr, "hped: %s\n", coord.Close())
	if drainErr != nil && !errors.Is(drainErr, http.ErrServerClosed) {
		fmt.Fprintf(stderr, "hped: drain: %v (in-flight dispatches cancelled)\n", drainErr)
		return 1
	}
	fmt.Fprintln(stderr, "hped: drained cleanly")
	return 0
}

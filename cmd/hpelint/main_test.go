package main

import "testing"

// TestListExitsClean pins -list as a zero-cost smoke of the CLI wiring.
func TestListExitsClean(t *testing.T) {
	if code := run([]string{"-list"}); code != 0 {
		t.Errorf("hpelint -list exited %d, want 0", code)
	}
}

// TestUnknownAnalyzerIsUsageError pins exit code 2 for bad -only input.
func TestUnknownAnalyzerIsUsageError(t *testing.T) {
	if code := run([]string{"-only", "bogus"}); code != 2 {
		t.Errorf("hpelint -only bogus exited %d, want 2", code)
	}
}

// TestSelfCheckProbePackage runs the real driver over a burned-down
// package: exit 0, no findings.
func TestSelfCheckProbePackage(t *testing.T) {
	if code := run([]string{"../../internal/probe/"}); code != 0 {
		t.Errorf("hpelint ../../internal/probe/ exited %d, want 0", code)
	}
}

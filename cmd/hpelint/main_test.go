package main

import "testing"

// TestListExitsClean pins -list as a zero-cost smoke of the CLI wiring.
func TestListExitsClean(t *testing.T) {
	if code := run([]string{"-list"}); code != 0 {
		t.Errorf("hpelint -list exited %d, want 0", code)
	}
}

// TestUnknownAnalyzerIsUsageError pins exit code 2 for bad -only input.
func TestUnknownAnalyzerIsUsageError(t *testing.T) {
	if code := run([]string{"-only", "bogus"}); code != 2 {
		t.Errorf("hpelint -only bogus exited %d, want 2", code)
	}
}

// TestSelfCheckProbePackage runs the real driver over a burned-down
// package: exit 0, no findings.
func TestSelfCheckProbePackage(t *testing.T) {
	if code := run([]string{"../../internal/probe/"}); code != 0 {
		t.Errorf("hpelint ../../internal/probe/ exited %d, want 0", code)
	}
}

// TestPkgsFlagScopesRun pins the -pkgs comma-separated form that
// scripts/precommit.sh uses for commit-scoped linting.
func TestPkgsFlagScopesRun(t *testing.T) {
	if code := run([]string{"-pkgs", "../../internal/probe/, ../../internal/promtext/"}); code != 0 {
		t.Errorf("hpelint -pkgs exited %d, want 0", code)
	}
}

// TestPkgsFlagRejectsPositionalMix pins -pkgs + positional packages as a
// usage error rather than a silent union.
func TestPkgsFlagRejectsPositionalMix(t *testing.T) {
	if code := run([]string{"-pkgs", "../../internal/probe/", "../../internal/promtext/"}); code != 2 {
		t.Errorf("hpelint -pkgs with positional args exited %d, want 2", code)
	}
	if code := run([]string{"-pkgs", " ,, "}); code != 2 {
		t.Errorf("hpelint -pkgs with empty list exited %d, want 2", code)
	}
}

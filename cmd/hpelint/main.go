// Command hpelint machine-checks the invariants this repository's serving
// and caching layers depend on: byte-reproducible simulation output,
// nil-guarded probe emission sites, end-to-end context threading,
// documented lock discipline, allocation-free simulator hot paths,
// deadlock-free lock acquisition order, and the closed /v1 error-envelope
// vocabulary. It is a hand-rolled, stdlib-only multichecker (go/ast +
// go/parser + go/types; go.mod keeps zero external requirements); the
// whole-program analyzers (hotalloc, lockorder, envelope) share one
// cross-package call graph per invocation (DESIGN.md §10).
//
// Usage:
//
//	hpelint [-json] [-only name,name] [-pkgs pat,pat] [-list] [packages...]
//
// With no packages, ./... is checked. -pkgs takes the same patterns as the
// positional form but comma-separated, so callers that compute a scoped
// package list (scripts/precommit.sh lints only the packages a commit
// touches) can pass it as one shell word. Exit codes are CI-friendly:
//
//	0  no findings
//	1  at least one diagnostic
//	2  usage, load or type-check failure
//
// Deliberate exceptions are annotated in source, one line above the
// finding, with a mandatory reason:
//
//	//lint:ignore hpelint/<analyzer> reason
//
// The -json schema is documented in DESIGN.md §10 (the daemon's repo-health
// endpoint consumes it): {"version":1,"analyzers":[...],"count":N,
// "diagnostics":[{"analyzer","file","line","col","message"}]}.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"hpe/internal/lint"
)

// jsonReport is the versioned -json output envelope.
type jsonReport struct {
	Version     int              `json:"version"`
	Analyzers   []string         `json:"analyzers"`
	Count       int              `json:"count"`
	Diagnostics []jsonDiagnostic `json:"diagnostics"`
}

// jsonDiagnostic is one finding in -json output.
type jsonDiagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("hpelint", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit diagnostics as JSON (schema in DESIGN.md §10)")
	only := fs.String("only", "", "comma-separated analyzer subset to run")
	pkgs := fs.String("pkgs", "", "comma-separated package patterns to check (alternative to positional packages)")
	list := fs.Bool("list", false, "list analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.All()
	if *only != "" {
		var err error
		analyzers, err = lint.ByName(strings.Split(*only, ","))
		if err != nil {
			fmt.Fprintln(os.Stderr, "hpelint:", err)
			return 2
		}
	}
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	patterns := fs.Args()
	if *pkgs != "" {
		if len(patterns) > 0 {
			fmt.Fprintln(os.Stderr, "hpelint: -pkgs and positional packages are mutually exclusive")
			return 2
		}
		for _, p := range strings.Split(*pkgs, ",") {
			if p = strings.TrimSpace(p); p != "" {
				patterns = append(patterns, p)
			}
		}
		if len(patterns) == 0 {
			fmt.Fprintln(os.Stderr, "hpelint: -pkgs given but empty after splitting")
			return 2
		}
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "hpelint:", err)
		return 2
	}
	diags, err := lint.Run(wd, patterns, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hpelint:", err)
		return 2
	}

	if *jsonOut {
		rep := jsonReport{
			Version:     1,
			Analyzers:   names(analyzers),
			Count:       len(diags),
			Diagnostics: []jsonDiagnostic{},
		}
		for _, d := range diags {
			rep.Diagnostics = append(rep.Diagnostics, jsonDiagnostic{
				Analyzer: d.Analyzer,
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "hpelint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Println(d.String())
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// names projects the analyzer list to its name column.
func names(as []*lint.Analyzer) []string {
	out := make([]string, 0, len(as))
	for _, a := range as {
		out = append(out, a.Name)
	}
	return out
}

package main

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"

	"hpe/internal/experiments"
	"hpe/internal/runspec"
)

func TestEncodeReportsClampsNonFinite(t *testing.T) {
	reports := []experiments.Report{{
		ID:    "r",
		Title: "T",
		Metrics: map[string]float64{
			"ok":      1.5,
			"posinf":  math.Inf(1),
			"neginf":  math.Inf(-1),
			"notanum": math.NaN(),
		},
	}}
	out := encodeReports(reports)
	if len(out) != 1 {
		t.Fatalf("encoded %d reports", len(out))
	}
	r := out[0]
	if r.ID != "r" || r.Title != "T" {
		t.Fatalf("identity lost: %+v", r)
	}
	if r.Metrics["ok"] != 1.5 {
		t.Fatalf("finite metric rewritten: %v", r.Metrics["ok"])
	}
	if r.Metrics["posinf"] != math.MaxFloat64 || r.Metrics["neginf"] != -math.MaxFloat64 {
		t.Fatalf("infinities not clamped: %v, %v", r.Metrics["posinf"], r.Metrics["neginf"])
	}
	if _, ok := r.Metrics["notanum"]; ok {
		t.Fatal("NaN metric not dropped")
	}
	// Every rewritten key is recorded, with the reason.
	want := map[string]string{
		"posinf":  "+Inf: clamped to +MaxFloat64",
		"neginf":  "-Inf: clamped to -MaxFloat64",
		"notanum": "NaN: dropped",
	}
	if len(r.Clamped) != len(want) {
		t.Fatalf("clamped = %v", r.Clamped)
	}
	for k, v := range want {
		if r.Clamped[k] != v {
			t.Errorf("clamped[%q] = %q, want %q", k, r.Clamped[k], v)
		}
	}
	if _, ok := r.Clamped["ok"]; ok {
		t.Fatal("finite metric recorded as clamped")
	}
}

func TestEncodeReportsOmitsEmptyClamped(t *testing.T) {
	out := encodeReports([]experiments.Report{{ID: "r", Metrics: map[string]float64{"a": 1}}})
	if out[0].Clamped != nil {
		t.Fatalf("clamped should stay nil for finite metrics: %v", out[0].Clamped)
	}
	raw, err := json.Marshal(out[0])
	if err != nil {
		t.Fatal(err)
	}
	var asMap map[string]json.RawMessage
	if err := json.Unmarshal(raw, &asMap); err != nil {
		t.Fatal(err)
	}
	if _, ok := asMap["clamped"]; ok {
		t.Fatal("empty clamped field serialised")
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	reports := []experiments.Report{{
		ID: "x", Title: "X",
		Metrics: map[string]float64{"v": 2, "inf": math.Inf(1)},
	}}
	if err := writeJSON(path, reports); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got []jsonReport
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, raw)
	}
	if len(got) != 1 || got[0].ID != "x" || got[0].Metrics["v"] != 2 {
		t.Fatalf("round-trip = %+v", got)
	}
	if got[0].Metrics["inf"] != math.MaxFloat64 || got[0].Clamped["inf"] == "" {
		t.Fatalf("clamping lost in round-trip: %+v", got[0])
	}
}

func TestWriteJSONBadPath(t *testing.T) {
	err := writeJSON(filepath.Join(t.TempDir(), "no", "such", "dir", "x.json"), nil)
	if err == nil {
		t.Fatal("unwritable path accepted")
	}
}

func TestRunLabel(t *testing.T) {
	cases := []struct {
		spec runspec.Spec
		want string
	}{
		{runspec.Spec{App: "HSD", Policy: "lru", Rate: 75}, "HSD_lru_75"},
		{runspec.Spec{App: "B+T", Policy: "hpe", Rate: 50,
			Tuning: runspec.Tuning{WalkLatency: 20}}, "B-T_hpe_50_walk20"},
		{runspec.Spec{App: "SAD", Policy: "clock-pro", Rate: 100, Channels: 4}, "SAD_clockpro_100_ch4"},
	}
	for _, c := range cases {
		if got := runLabel(experiments.RunInfo{Spec: c.spec}); got != c.want {
			t.Errorf("runLabel(%+v) = %q, want %q", c.spec, got, c.want)
		}
	}
}

func TestBuildProbeFactoryOffByDefault(t *testing.T) {
	if buildProbeFactory("", false) != nil {
		t.Fatal("factory should be nil with -trace and -metrics off (fast path)")
	}
}

func TestBuildProbeFactoryTrace(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "traces")
	factory := buildProbeFactory(dir, false)
	if factory == nil {
		t.Fatal("nil factory with -trace set")
	}
	p := factory(experiments.RunInfo{Spec: runspec.Spec{App: "HSD", Policy: "lru", Rate: 75}})
	if p == nil {
		t.Fatal("factory returned no probe")
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "HSD_lru_75.trace.json"))
	if err != nil {
		t.Fatalf("trace file missing: %v", err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty trace document (lane metadata expected)")
	}
}

// Command hpebench regenerates the paper's evaluation: every table and
// figure of Section V, over the 23 synthetic Table II workloads.
//
// Usage:
//
//	hpebench                  # run everything, one worker per core
//	hpebench -only fig10      # one experiment (comma-separate for several)
//	hpebench -quick           # 10-app subset
//	hpebench -workers 1       # serial run (debugging; output is identical)
//	hpebench -v               # per-simulation progress lines
//	hpebench -list            # list experiment IDs
//
// The run matrix is sharded across -workers goroutines (default: GOMAXPROCS).
// Every simulation is deterministic and results are aggregated in canonical
// order, so the reports are byte-identical at any worker count.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"strings"
	"time"

	"hpe/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "run the reduced application subset")
	verbose := flag.Bool("v", false, "print per-simulation progress")
	only := flag.String("only", "", "comma-separated experiment IDs (default: all)")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent simulation workers (1 = serial)")
	jsonOut := flag.String("json", "", "also write report metrics as JSON to this file")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	opts := experiments.Options{Quick: *quick, Seed: 1, Workers: *workers}
	if *verbose {
		opts.Progress = func(line string) { fmt.Fprintln(os.Stderr, line) }
	}
	suite := experiments.NewSuite(opts)

	ids := experiments.IDs()
	if *only != "" {
		ids = strings.Split(*only, ",")
		for i, id := range ids {
			ids[i] = strings.TrimSpace(id)
		}
	}
	start := time.Now()
	reports, err := suite.Reports(ids)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v (use -list)\n", err)
		os.Exit(2)
	}
	for _, rep := range reports {
		fmt.Println(rep.String())
	}
	fmt.Printf("completed %d experiment(s) in %v (%d workers)\n",
		len(ids), time.Since(start).Round(time.Millisecond), *workers)
	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, reports); err != nil {
			fmt.Fprintf(os.Stderr, "hpebench: write json: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonOut)
	}
}

// jsonReport is the machine-readable form of a report (text omitted).
type jsonReport struct {
	ID      string             `json:"id"`
	Title   string             `json:"title"`
	Metrics map[string]float64 `json:"metrics"`
}

func writeJSON(path string, reports []experiments.Report) error {
	out := make([]jsonReport, len(reports))
	for i, r := range reports {
		// JSON has no ±Inf/NaN (e.g. MVT's ratio1 is +Inf): clamp infinities
		// to the float64 extremes and drop NaNs.
		metrics := make(map[string]float64, len(r.Metrics))
		for k, v := range r.Metrics {
			switch {
			case math.IsNaN(v):
				continue
			case math.IsInf(v, 1):
				v = math.MaxFloat64
			case math.IsInf(v, -1):
				v = -math.MaxFloat64
			}
			metrics[k] = v
		}
		out[i] = jsonReport{ID: r.ID, Title: r.Title, Metrics: metrics}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

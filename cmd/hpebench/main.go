// Command hpebench regenerates the paper's evaluation: every table and
// figure of Section V, over the 23 synthetic Table II workloads.
//
// Usage:
//
//	hpebench                  # run everything, one worker per core
//	hpebench -only fig10      # one experiment (comma-separate for several)
//	hpebench -quick           # 10-app subset
//	hpebench -workers 1       # serial run (debugging; output is identical)
//	hpebench -v               # per-simulation progress lines
//	hpebench -list            # list experiment IDs
//	hpebench -policies        # list registered eviction policies
//	hpebench -trace DIR       # stream a Chrome trace per simulation into DIR
//	hpebench -metrics         # per-simulation event histograms on stderr
//	hpebench -json -          # report metrics as JSON on stdout
//
// The run matrix is sharded across -workers goroutines (default: GOMAXPROCS).
// Every simulation is deterministic and results are aggregated in canonical
// order, so the reports are byte-identical at any worker count — with or
// without probes attached (probes observe, they never steer).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"hpe"
	"hpe/internal/experiments"
	"hpe/internal/probe"
)

func main() {
	quick := flag.Bool("quick", false, "run the reduced application subset")
	verbose := flag.Bool("v", false, "print per-simulation progress")
	only := flag.String("only", "", "comma-separated experiment IDs (default: all)")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	listPolicies := flag.Bool("policies", false, "list registered eviction policies and exit")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent simulation workers (1 = serial)")
	jsonOut := flag.String("json", "", "also write report metrics as JSON to this file (\"-\" = stdout)")
	traceDir := flag.String("trace", "", "write a Chrome trace_event JSON file per simulation into this directory")
	metrics := flag.Bool("metrics", false, "print per-simulation event histograms to stderr")
	benchJSON := flag.String("bench-json", "", "run the performance-trajectory harness and write BENCH_<n>.json to this path")
	benchIters := flag.Int("bench-iters", 2000, "microbenchmark repetitions for -bench-json")
	flag.Parse()

	if *benchJSON != "" {
		if err := runBenchJSON(*benchJSON, *benchIters, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "hpebench: bench-json: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *benchJSON)
		return
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	if *listPolicies {
		for _, info := range hpe.Policies() {
			needs := ""
			if info.NeedsCapacity {
				needs += " [needs capacity]"
			}
			if info.NeedsTrace {
				needs += " [needs trace]"
			}
			if info.NeedsHIR {
				needs += " [uses HIR]"
			}
			fmt.Printf("%-10s %-10s %s%s\n", info.Name, info.Display, info.Description, needs)
		}
		return
	}

	// Ctrl-C stops the sweep at the next cancellation poll instead of
	// leaving workers churning; a second Ctrl-C kills the process outright.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		<-ctx.Done()
		stop() // restore default handling: a second Ctrl-C kills outright
	}()

	opts := experiments.Options{Quick: *quick, Seed: 1, Workers: *workers, Context: ctx}
	if *verbose {
		opts.Progress = func(line string) { fmt.Fprintln(os.Stderr, line) }
	}
	opts.Probe = buildProbeFactory(*traceDir, *metrics)
	suite := experiments.NewSuite(opts)

	ids := experiments.IDs()
	if *only != "" {
		ids = strings.Split(*only, ",")
		for i, id := range ids {
			ids[i] = strings.TrimSpace(id)
		}
	}
	start := time.Now()
	reports, err := suite.Reports(ids)
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "hpebench: interrupted")
		os.Exit(130)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v (use -list)\n", err)
		os.Exit(2)
	}
	// With -json - the JSON document owns stdout; the rendered reports move
	// to stderr so the output stays pipeable.
	text := io.Writer(os.Stdout)
	if *jsonOut == "-" {
		text = os.Stderr
	}
	for _, rep := range reports {
		fmt.Fprintln(text, rep.String())
	}
	fmt.Fprintf(text, "completed %d experiment(s) in %v (%d workers)\n",
		len(ids), time.Since(start).Round(time.Millisecond), *workers)
	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, reports); err != nil {
			fmt.Fprintf(os.Stderr, "hpebench: write json: %v\n", err)
			os.Exit(1)
		}
		if *jsonOut != "-" {
			fmt.Printf("wrote %s\n", *jsonOut)
		}
	}
}

// buildProbeFactory assembles the per-run probe factory for -trace/-metrics;
// it returns nil (no instrumentation, exact fast path) when both are off.
func buildProbeFactory(traceDir string, metrics bool) func(experiments.RunInfo) probe.Probe {
	if traceDir == "" && !metrics {
		return nil
	}
	if traceDir != "" {
		if err := os.MkdirAll(traceDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "hpebench: -trace: %v\n", err)
			os.Exit(1)
		}
	}
	var mu sync.Mutex // serialises -metrics stderr blocks across workers
	return func(info experiments.RunInfo) probe.Probe {
		label := runLabel(info)
		var probes []probe.Probe
		if traceDir != "" {
			path := filepath.Join(traceDir, label+".trace.json")
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "hpebench: -trace %s: %v\n", path, err)
			} else {
				probes = append(probes, probe.NewChromeTrace(f,
					probe.ChromeTraceConfig{Process: label, CloseOnFlush: true}))
			}
		}
		if metrics {
			probes = append(probes, &metricsReporter{
				Metrics: probe.NewMetrics(), label: label, mu: &mu, w: os.Stderr})
		}
		return probe.Multi(probes...)
	}
}

// runLabel renders a RunInfo as a filesystem-safe run name — the spec's
// canonical slug, so trace files are named consistently with every other
// layer's run identity.
func runLabel(info experiments.RunInfo) string {
	return info.Spec.Slug()
}

// metricsReporter prints the metrics snapshot when the run completes. Under
// -workers > 1 blocks arrive in completion order (like -v progress lines),
// serialised by mu.
type metricsReporter struct {
	*probe.Metrics
	label string
	mu    *sync.Mutex
	w     io.Writer
}

func (m *metricsReporter) Flush() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, err := fmt.Fprintf(m.w, "metrics %s: %s\n", m.label, m.Snapshot())
	return err
}

// jsonReport is the machine-readable form of a report (text omitted).
type jsonReport struct {
	ID      string             `json:"id"`
	Title   string             `json:"title"`
	Metrics map[string]float64 `json:"metrics"`
	// Clamped records the metrics whose values JSON cannot carry: ±Inf
	// (clamped to ±MaxFloat64 in Metrics) and NaN (dropped from Metrics).
	Clamped map[string]string `json:"clamped,omitempty"`
}

// encodeReports converts reports to their JSON form. JSON has no ±Inf/NaN
// (e.g. MVT's ratio1 is +Inf): infinities are clamped to the float64
// extremes and NaNs dropped, and every such key is recorded in Clamped so
// the output says what happened instead of silently rewriting values.
func encodeReports(reports []experiments.Report) []jsonReport {
	out := make([]jsonReport, len(reports))
	for i, r := range reports {
		metrics := make(map[string]float64, len(r.Metrics))
		var clamped map[string]string
		note := func(k, why string) {
			if clamped == nil {
				clamped = make(map[string]string)
			}
			clamped[k] = why
		}
		for k, v := range r.Metrics {
			switch {
			case math.IsNaN(v):
				note(k, "NaN: dropped")
				continue
			case math.IsInf(v, 1):
				note(k, "+Inf: clamped to +MaxFloat64")
				v = math.MaxFloat64
			case math.IsInf(v, -1):
				note(k, "-Inf: clamped to -MaxFloat64")
				v = -math.MaxFloat64
			}
			metrics[k] = v
		}
		out[i] = jsonReport{ID: r.ID, Title: r.Title, Metrics: metrics, Clamped: clamped}
	}
	return out
}

// writeJSON writes the reports' metrics to path ("-" = stdout).
func writeJSON(path string, reports []experiments.Report) error {
	out := encodeReports(reports)
	if path == "-" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

package main

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// repoRoot is where the committed BENCH_<n>.json trajectory files live.
const repoRoot = "../.."

// loadBenchReport parses one trajectory file.
func loadBenchReport(t *testing.T, path string) benchReport {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	var r benchReport
	if err := json.Unmarshal(raw, &r); err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	return r
}

// TestCommittedBenchFilesAreSchemaValid re-validates every committed
// BENCH_<n>.json: schema id, required benchmark keys, finite values, serial
// sweep, and numbering that is exactly 1..k with each file's n matching its
// name. A hand-edited or truncated trajectory file fails `go test` here.
func TestCommittedBenchFilesAreSchemaValid(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join(repoRoot, "BENCH_*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no BENCH_<n>.json committed at the repo root; run `make bench-json`")
	}
	var ns []int
	for _, path := range paths {
		n, err := benchNumber(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		r := loadBenchReport(t, path)
		if err := validateBenchReport(r); err != nil {
			t.Errorf("%s: %v", path, err)
		}
		if r.N != n {
			t.Errorf("%s: n field = %d, filename says %d", path, r.N, n)
		}
		ns = append(ns, n)
	}
	sort.Ints(ns)
	for i, n := range ns {
		if n != i+1 {
			t.Fatalf("trajectory numbering not monotonic from 1: got %v", ns)
		}
	}
}

// TestBenchOnePinsPRSpeedups pins this PR's acceptance numbers into the
// committed BENCH_1.json: the engine microbenchmark at ≥ 2x and the serial
// full sweep at ≥ 30% faster (≥ 1/0.7 x) than the pre-PR baseline recorded
// in the same file.
func TestBenchOnePinsPRSpeedups(t *testing.T) {
	r := loadBenchReport(t, filepath.Join(repoRoot, "BENCH_1.json"))
	if got := r.Speedup["engine"]; got < 2 {
		t.Errorf("speedup.engine = %.2f, want >= 2 (vs in-run reference engine)", got)
	}
	if got := r.Speedup["full_sweep"]; got < 1/0.7 {
		t.Errorf("speedup.full_sweep = %.2f, want >= %.2f (>= 30%% faster)", got, 1/0.7)
	}
	if r.FullSweep.Quick {
		t.Error("BENCH_1.json recorded a -quick sweep; trajectory files must use the full sweep")
	}
}

// validReport builds a minimal report that passes validation, for the
// rejection tests to corrupt.
func validReport() benchReport {
	bench := benchResult{NsPerOp: 100, AllocsPerOp: 1, BytesPerOp: 8}
	return benchReport{
		Schema: benchSchema,
		N:      1,
		Iters:  1,
		Benchmarks: map[string]benchResult{
			"engine_closure":   bench,
			"engine_handler":   bench,
			"engine_cascade":   bench,
			"reference_engine": bench,
		},
		FullSweep: fullSweep{Seconds: 1, Workers: 1, Experiments: 23},
		PrePR:     prePRBaseline,
		Speedup:   map[string]float64{"engine": 2},
	}
}

// TestValidateBenchReportRejections drives every schema rule: NaN and Inf
// values, missing benchmark keys, bad numbering, and parallel sweeps must
// all be refused before a file is written.
func TestValidateBenchReportRejections(t *testing.T) {
	if err := validateBenchReport(validReport()); err != nil {
		t.Fatalf("baseline report invalid: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*benchReport)
	}{
		{"wrong schema", func(r *benchReport) { r.Schema = "hpe-bench/v0" }},
		{"zero n", func(r *benchReport) { r.N = 0 }},
		{"zero iters", func(r *benchReport) { r.Iters = 0 }},
		{"missing benchmark", func(r *benchReport) { delete(r.Benchmarks, "engine_handler") }},
		{"NaN ns_per_op", func(r *benchReport) {
			r.Benchmarks["engine_handler"] = benchResult{NsPerOp: math.NaN()}
		}},
		{"Inf bytes_per_op", func(r *benchReport) {
			r.Benchmarks["engine_cascade"] = benchResult{NsPerOp: 1, BytesPerOp: math.Inf(1)}
		}},
		{"zero ns_per_op", func(r *benchReport) {
			r.Benchmarks["engine_closure"] = benchResult{NsPerOp: 0}
		}},
		{"zero sweep seconds", func(r *benchReport) { r.FullSweep.Seconds = 0 }},
		{"NaN sweep seconds", func(r *benchReport) { r.FullSweep.Seconds = math.NaN() }},
		{"parallel sweep", func(r *benchReport) { r.FullSweep.Workers = 8 }},
		{"missing engine speedup", func(r *benchReport) { delete(r.Speedup, "engine") }},
		{"Inf speedup", func(r *benchReport) { r.Speedup["full_sweep"] = math.Inf(1) }},
		{"negative speedup", func(r *benchReport) { r.Speedup["engine"] = -1 }},
	}
	for _, c := range cases {
		r := validReport()
		c.mutate(&r)
		if err := validateBenchReport(r); err == nil {
			t.Errorf("%s: validation passed, want error", c.name)
		}
	}
}

// TestBenchNumber pins the BENCH_<n>.json filename contract.
func TestBenchNumber(t *testing.T) {
	if n, err := benchNumber("/some/dir/BENCH_12.json"); err != nil || n != 12 {
		t.Fatalf("benchNumber = %d, %v", n, err)
	}
	for _, bad := range []string{"BENCH_.json", "bench_1.json", "BENCH_1.txt", "RESULTS.json"} {
		if _, err := benchNumber(bad); err == nil {
			t.Errorf("benchNumber(%q) accepted, want error", bad)
		}
	}
}

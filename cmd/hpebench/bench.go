package main

// Performance-trajectory harness (-bench-json): every optimisation PR runs
// `make bench-json`, which appends a numbered BENCH_<n>.json at the repo
// root. Each file records the engine microbenchmarks (the same schedule
// shapes as internal/sim's Benchmark* functions), the retained container/heap
// Reference engine as an in-run baseline, and the wall-clock of a full
// serial experiment sweep — so the repo's perf history is a series of
// schema-stable, diffable artifacts rather than numbers in commit messages.
// The file is validated against the schema before it is written; `make
// check` runs a 1-iteration smoke of this mode, and cmd/hpebench's tests
// re-validate the committed BENCH_<n>.json files.

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"strconv"
	"time"

	"hpe/internal/experiments"
	"hpe/internal/sim"
)

// benchSchema identifies the report format; bump on breaking changes.
const benchSchema = "hpe-bench/v1"

// prePRBaseline is the pre-rewrite performance recorded before the engine /
// TLB hot-path work, measured on the development host (Xeon @ 2.10 GHz,
// go1.x, serial): the old *Event container/heap engine's schedule-1000-drain
// microbenchmark and the full 23-app serial sweep. Cross-host comparisons
// should prefer the in-run reference_engine baseline, which reruns the old
// engine on the same machine as the optimized one.
var prePRBaseline = prePR{
	EngineNsPerOp:    222069,
	FullSweepSeconds: 25.26,
	HostNote:         "Intel Xeon @ 2.10GHz, serial, pre hot-path rewrite (PR 6)",
}

type benchResult struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

type fullSweep struct {
	Seconds     float64 `json:"seconds"`
	Workers     int     `json:"workers"`
	Experiments int     `json:"experiments"`
	Quick       bool    `json:"quick"`
}

type prePR struct {
	EngineNsPerOp    float64 `json:"engine_ns_per_op"`
	FullSweepSeconds float64 `json:"full_sweep_seconds"`
	HostNote         string  `json:"host_note"`
}

type benchReport struct {
	Schema     string                 `json:"schema"`
	N          int                    `json:"n"`
	Iters      int                    `json:"iters"`
	Benchmarks map[string]benchResult `json:"benchmarks"`
	FullSweep  fullSweep              `json:"full_sweep"`
	PrePR      prePR                  `json:"pre_pr"`
	// Speedup holds derived ratios (>1 = faster than the baseline):
	//   engine            — reference_engine vs engine_handler, same run/host
	//   engine_vs_pre_pr  — recorded pre-PR engine ns/op vs engine_handler
	//   full_sweep        — recorded pre-PR sweep vs this run (full runs only)
	Speedup map[string]float64 `json:"speedup"`
}

// requiredBenchmarks are the keys every report must carry.
var requiredBenchmarks = []string{
	"engine_closure", "engine_handler", "engine_cascade", "reference_engine",
}

var benchFileRe = regexp.MustCompile(`^BENCH_([0-9]+)\.json$`)

// benchNumber extracts n from a BENCH_<n>.json path.
func benchNumber(path string) (int, error) {
	m := benchFileRe.FindStringSubmatch(filepath.Base(path))
	if m == nil {
		return 0, fmt.Errorf("bench output must be named BENCH_<n>.json, got %q", filepath.Base(path))
	}
	return strconv.Atoi(m[1])
}

// validateBenchReport enforces the schema: all required keys present, every
// number finite, n positive. The emitter refuses to write a violating
// report, and the package tests re-validate the committed files.
func validateBenchReport(r benchReport) error {
	if r.Schema != benchSchema {
		return fmt.Errorf("schema = %q, want %q", r.Schema, benchSchema)
	}
	if r.N <= 0 {
		return fmt.Errorf("n = %d, want >= 1", r.N)
	}
	if r.Iters <= 0 {
		return fmt.Errorf("iters = %d, want >= 1", r.Iters)
	}
	finite := func(name string, v float64) error {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%s = %v, want finite", name, v)
		}
		return nil
	}
	for _, name := range requiredBenchmarks {
		b, ok := r.Benchmarks[name]
		if !ok {
			return fmt.Errorf("missing benchmark %q", name)
		}
		if b.NsPerOp <= 0 {
			return fmt.Errorf("benchmark %s: ns_per_op = %v, want > 0", name, b.NsPerOp)
		}
		for _, f := range []struct {
			k string
			v float64
		}{{"ns_per_op", b.NsPerOp}, {"allocs_per_op", b.AllocsPerOp}, {"bytes_per_op", b.BytesPerOp}} {
			if err := finite(name+"."+f.k, f.v); err != nil {
				return err
			}
		}
	}
	if r.FullSweep.Seconds <= 0 {
		return fmt.Errorf("full_sweep.seconds = %v, want > 0", r.FullSweep.Seconds)
	}
	if err := finite("full_sweep.seconds", r.FullSweep.Seconds); err != nil {
		return err
	}
	if r.FullSweep.Workers != 1 {
		return fmt.Errorf("full_sweep.workers = %d, want 1 (trajectory numbers are serial)", r.FullSweep.Workers)
	}
	if _, ok := r.Speedup["engine"]; !ok {
		return fmt.Errorf("missing speedup.engine")
	}
	for k, v := range r.Speedup {
		if err := finite("speedup."+k, v); err != nil {
			return err
		}
		if v <= 0 {
			return fmt.Errorf("speedup.%s = %v, want > 0", k, v)
		}
	}
	return nil
}

// benchLoop times iters repetitions of inner, reporting per-repetition
// nanoseconds and allocation deltas. Alloc counters are process-global, so
// bench mode runs strictly serially.
func benchLoop(iters int, inner func()) benchResult {
	inner() // warm up: grow engine arrays once so steady state is measured
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < iters; i++ {
		inner()
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return benchResult{
		NsPerOp:     float64(elapsed.Nanoseconds()) / float64(iters),
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(iters),
		BytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / float64(iters),
	}
}

// The microbenchmark shapes mirror internal/sim/bench_test.go: 1000 events
// across 97 distinct cycles, scheduled up front and drained, so `go test
// -bench` numbers and BENCH_<n>.json entries are directly comparable.

func benchEngineClosure(iters int) benchResult {
	return benchLoop(iters, func() {
		e := sim.NewEngine()
		for j := 0; j < 1000; j++ {
			e.At(sim.Cycle(j%97), func() {})
		}
		e.Run()
	})
}

type benchNoop struct{ n int }

func (h *benchNoop) OnEvent(a0, a1 uint64) { h.n++ }

func benchEngineHandler(iters int) benchResult {
	h := &benchNoop{}
	return benchLoop(iters, func() {
		e := sim.NewEngine()
		hid := e.Register(h)
		for j := 0; j < 1000; j++ {
			e.Schedule(sim.Cycle(j%97), hid, uint64(j), 0)
		}
		e.Run()
	})
}

type benchCascade struct {
	e         *sim.Engine
	id        sim.HandlerID
	remaining int
}

func (h *benchCascade) OnEvent(a0, a1 uint64) {
	h.remaining--
	if h.remaining > 0 {
		h.e.ScheduleAfter(3, h.id, 0, 0)
	}
}

func benchEngineCascade(iters int) benchResult {
	return benchLoop(iters, func() {
		e := sim.NewEngine()
		h := &benchCascade{e: e, remaining: 1000}
		h.id = e.Register(h)
		e.Schedule(0, h.id, 0, 0)
		e.Run()
	})
}

func benchReference(iters int) benchResult {
	return benchLoop(iters, func() {
		e := sim.NewReference()
		for j := 0; j < 1000; j++ {
			e.At(sim.Cycle(j%97), func() {})
		}
		e.Run()
	})
}

// runBenchJSON executes the trajectory harness and writes path, which must
// be named BENCH_<n>.json. quick reduces the sweep to the 10-app subset
// (used by the `make check` smoke; committed trajectory files use the full
// sweep).
func runBenchJSON(path string, iters int, quick bool) error {
	n, err := benchNumber(path)
	if err != nil {
		return err
	}
	report := benchReport{
		Schema: benchSchema,
		N:      n,
		Iters:  iters,
		Benchmarks: map[string]benchResult{
			"engine_closure":   benchEngineClosure(iters),
			"engine_handler":   benchEngineHandler(iters),
			"engine_cascade":   benchEngineCascade(iters),
			"reference_engine": benchReference(iters),
		},
		PrePR:   prePRBaseline,
		Speedup: map[string]float64{},
	}

	// Full-sweep wall-clock, strictly serial so trajectory numbers are
	// comparable across machines with different core counts.
	suite := experiments.NewSuite(experiments.Options{Quick: quick, Seed: 1, Workers: 1})
	ids := experiments.IDs()
	start := time.Now()
	if _, err := suite.Reports(ids); err != nil {
		return fmt.Errorf("bench sweep: %w", err)
	}
	report.FullSweep = fullSweep{
		Seconds:     time.Since(start).Seconds(),
		Workers:     1,
		Experiments: len(ids),
		Quick:       quick,
	}

	handler := report.Benchmarks["engine_handler"].NsPerOp
	report.Speedup["engine"] = report.Benchmarks["reference_engine"].NsPerOp / handler
	report.Speedup["engine_vs_pre_pr"] = report.PrePR.EngineNsPerOp / handler
	if !quick {
		report.Speedup["full_sweep"] = report.PrePR.FullSweepSeconds / report.FullSweep.Seconds
	}

	if err := validateBenchReport(report); err != nil {
		return fmt.Errorf("refusing to write %s: %w", path, err)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

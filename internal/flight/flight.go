// Package flight deduplicates identical in-flight computations for the
// serving layers: when N clients submit the same content-addressed ID
// concurrently, one computation runs and all N receive its bytes. The hped
// backend coalesces simulations with it; the cluster coordinator coalesces
// merged suite sweeps. The computation executes on its own goroutine under a
// context that stays alive while at least one waiter is listening (or the
// owning server is running), so a leader that disconnects does not kill work
// other clients still want — and when the last waiter goes away the
// computation is cancelled mid-flight instead of burning cycles for nobody.
package flight

import (
	"context"
	"sort"
	"sync"
)

// Group owns a set of keyed in-flight computations.
type Group struct {
	mu        sync.Mutex
	calls     map[string]*call // guarded by mu
	coalesced uint64           // guarded by mu
}

// call is one in-flight computation.
type call struct {
	done    chan struct{} // closed when body/err are final
	body    []byte
	err     error
	waiters int
	cancel  context.CancelFunc // cancels the computation's context
}

// NewGroup builds an empty Group.
func NewGroup() *Group {
	return &Group{calls: make(map[string]*call)}
}

// Do returns the computation's result for id, starting compute at most once
// across concurrent callers. base bounds the computation's lifetime (server
// shutdown); ctx is this caller's interest (client disconnect, timeout).
// The returned bool reports whether this caller coalesced onto an existing
// flight rather than starting one.
func (c *Group) Do(ctx, base context.Context, id string,
	compute func(context.Context) ([]byte, error)) ([]byte, bool, error) {
	c.mu.Lock()
	if cl, ok := c.calls[id]; ok {
		cl.waiters++
		c.coalesced++
		c.mu.Unlock()
		return c.wait(ctx, cl, true)
	}
	runCtx, cancel := context.WithCancel(base)
	cl := &call{done: make(chan struct{}), waiters: 1, cancel: cancel}
	c.calls[id] = cl
	c.mu.Unlock()

	go func() {
		defer cancel()
		body, err := computeSafely(runCtx, compute)
		c.mu.Lock()
		cl.body, cl.err = body, err
		delete(c.calls, id)
		c.mu.Unlock()
		close(cl.done)
	}()
	return c.wait(ctx, cl, false)
}

// computeSafely converts a panicking computation into an error so a bad run
// cannot take the daemon down from a detached goroutine.
func computeSafely(ctx context.Context, compute func(context.Context) ([]byte, error)) (body []byte, err error) {
	defer func() {
		if p := recover(); p != nil {
			body, err = nil, &panicError{val: p}
		}
	}()
	return compute(ctx)
}

// panicError wraps a recovered panic value.
type panicError struct{ val any }

func (e *panicError) Error() string { return "computation panicked" }

// wait blocks until the call completes or the caller loses interest. The
// last departing waiter cancels the computation.
func (c *Group) wait(ctx context.Context, cl *call, coalesced bool) ([]byte, bool, error) {
	select {
	case <-cl.done:
		return cl.body, coalesced, cl.err
	case <-ctx.Done():
		c.mu.Lock()
		cl.waiters--
		abandoned := cl.waiters == 0
		c.mu.Unlock()
		if abandoned {
			cl.cancel()
		}
		return nil, coalesced, ctx.Err()
	}
}

// Inflight reports whether id is currently being computed and for how many
// waiters (GET /v1/runs/{id} status).
func (c *Group) Inflight(id string) (waiters int, running bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cl, ok := c.calls[id]
	if !ok {
		return 0, false
	}
	return cl.waiters, true
}

// InflightIDs returns every in-flight computation's ID in canonical
// (lexicographic) order — the enumeration order GET /v1/runs paginates in.
func (c *Group) InflightIDs() []string {
	c.mu.Lock()
	ids := make([]string, 0, len(c.calls))
	for id := range c.calls {
		ids = append(ids, id)
	}
	c.mu.Unlock()
	sort.Strings(ids)
	return ids
}

// Coalesced returns the number of requests that joined an existing flight.
func (c *Group) Coalesced() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.coalesced
}

// Package respcache is the content-addressed response cache shared by the
// hped backend and the cluster coordinator: an LRU over rendered response
// bodies keyed by run ID, bounded by a byte budget rather than an entry
// count (a suite sweep's body is thousands of times larger than a single
// run's). Because IDs are content addresses of canonicalized requests and
// every simulation is deterministic, a hit is byte-identical to what a fresh
// simulation would render — the cache can never serve a stale or wrong body,
// only save the minutes it would take to recompute one.
package respcache

import (
	"container/list"
	"sort"
	"sync"
)

// Cache is the byte-budget LRU. Construct with New; safe for concurrent use.
type Cache struct {
	mu     sync.Mutex
	budget int64                    // immutable after construction
	bytes  int64                    // guarded by mu
	ll     *list.List               // guarded by mu; front = most recently used
	items  map[string]*list.Element // guarded by mu

	hits, misses, evictions uint64 // guarded by mu
}

type cacheEntry struct {
	id   string
	body []byte
}

// New builds a cache with the given byte budget. A budget <= 0 disables
// caching (every Get misses, Put is a no-op).
func New(budget int64) *Cache {
	return &Cache{
		budget: budget,
		ll:     list.New(),
		items:  make(map[string]*list.Element),
	}
}

// Get returns the cached body for id, marking it most recently used.
func (c *Cache) Get(id string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[id]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// Put inserts body under id, evicting least-recently-used entries until the
// byte budget holds. A body larger than the whole budget is not cached.
// Callers must not mutate body after handing it over.
func (c *Cache) Put(id string, body []byte) {
	if int64(len(body)) > c.budget {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[id]; ok {
		// Deterministic results make re-insertion a no-op byte-wise; just
		// refresh recency.
		c.ll.MoveToFront(el)
		return
	}
	c.ll.PushFront(&cacheEntry{id: id, body: body})
	c.items[id] = c.ll.Front()
	c.bytes += int64(len(body))
	for c.bytes > c.budget {
		oldest := c.ll.Back()
		if oldest == nil {
			break
		}
		ent := oldest.Value.(*cacheEntry)
		c.ll.Remove(oldest)
		delete(c.items, ent.id)
		c.bytes -= int64(len(ent.body))
		c.evictions++
	}
}

// IDs returns every cached ID in canonical (lexicographic) order — the
// enumeration order GET /v1/runs paginates in.
func (c *Cache) IDs() []string {
	c.mu.Lock()
	ids := make([]string, 0, len(c.items))
	for id := range c.items {
		ids = append(ids, id)
	}
	c.mu.Unlock()
	sort.Strings(ids)
	return ids
}

// Stats is a point-in-time snapshot for /metrics and shutdown logging.
type Stats struct {
	Entries   int
	Bytes     int64
	Budget    int64
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// Snapshot reads the cache counters.
func (c *Cache) Snapshot() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Entries:   len(c.items),
		Bytes:     c.bytes,
		Budget:    c.budget,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}

package respcache

import (
	"reflect"
	"testing"
)

func TestLRUEviction(t *testing.T) {
	c := New(10)
	c.Put("a", []byte("aaaa")) // 4 bytes
	c.Put("b", []byte("bbbb")) // 8 bytes
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing before budget pressure")
	}
	// a is now most recently used; inserting 4 more bytes must evict b.
	c.Put("c", []byte("cccc"))
	if _, ok := c.Get("b"); ok {
		t.Error("b survived eviction despite being least recently used")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a evicted despite being most recently used")
	}
	if _, ok := c.Get("c"); !ok {
		t.Error("c missing right after insertion")
	}
	st := c.Snapshot()
	if st.Evictions != 1 || st.Entries != 2 || st.Bytes != 8 {
		t.Errorf("stats after eviction: %+v", st)
	}
}

func TestOversizedBodySkipped(t *testing.T) {
	c := New(4)
	c.Put("big", []byte("too large"))
	if _, ok := c.Get("big"); ok {
		t.Error("body larger than the whole budget was cached")
	}
	if st := c.Snapshot(); st.Bytes != 0 || st.Entries != 0 {
		t.Errorf("oversized Put leaked accounting: %+v", st)
	}
}

func TestReinsertRefreshesRecency(t *testing.T) {
	c := New(8)
	c.Put("a", []byte("aaaa"))
	c.Put("b", []byte("bbbb"))
	c.Put("a", []byte("aaaa")) // refresh, not duplicate
	c.Put("c", []byte("cccc")) // must evict b, not a
	if _, ok := c.Get("a"); !ok {
		t.Error("re-inserted entry was evicted")
	}
	if _, ok := c.Get("b"); ok {
		t.Error("stale entry survived")
	}
}

func TestDisabled(t *testing.T) {
	c := New(-1)
	c.Put("a", []byte("aaaa"))
	if _, ok := c.Get("a"); ok {
		t.Error("negative budget should disable caching")
	}
}

func TestIDsCanonicalOrder(t *testing.T) {
	c := New(1 << 20)
	for _, id := range []string{"run-v2-zz", "run-v2-aa", "suite-00", "run-v2-mm"} {
		c.Put(id, []byte("x"))
	}
	want := []string{"run-v2-aa", "run-v2-mm", "run-v2-zz", "suite-00"}
	if got := c.IDs(); !reflect.DeepEqual(got, want) {
		t.Errorf("IDs() = %v, want canonical order %v", got, want)
	}
}

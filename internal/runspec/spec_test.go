package runspec

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestCanonicalizeDefaultsExplicit pins the canonicalization rules: aliases
// resolve, defaults become explicit, and the result is idempotent.
func TestCanonicalizeDefaultsExplicit(t *testing.T) {
	c, err := Spec{App: " hsd ", Policy: "clock-pro", Rate: 75}.Canonicalize()
	if err != nil {
		t.Fatalf("canonicalize: %v", err)
	}
	want := Spec{App: "HSD", Policy: "clockpro", Rate: 75, Seed: 1,
		Design: "l2tlb", Channels: 1, HIR: "off", Scale: 1}
	if c != want {
		t.Errorf("canonical form = %+v, want %+v", c, want)
	}
	again, err := c.Canonicalize()
	if err != nil {
		t.Fatalf("re-canonicalize: %v", err)
	}
	if again != c {
		t.Errorf("canonicalization not idempotent: %+v vs %+v", again, c)
	}
}

// TestOmittedAndExplicitDefaultsShareID is the cache-key hazard test at the
// spec level: a spec with everything omitted and one with every default
// spelled out (including tuning values equal to the paper defaults) must
// canonicalize to one form and one ID. The cross-layer version of this test
// (suite/server/CLI) lives in internal/server.
func TestOmittedAndExplicitDefaultsShareID(t *testing.T) {
	bare := Spec{App: "HSD", Policy: "hpe", Rate: 75}
	spelled := Spec{App: "hsd", Policy: "HPE", Rate: 75, Seed: 1,
		Design: "L2TLB", Channels: 1, HIR: "auto", Scale: 1,
		Tuning: Tuning{WalkLatency: 8, TransferInterval: 16, HIREntries: 1024,
			SetSizeShift: 4, HPEInterval: 64}}
	if bare.ID() != spelled.ID() {
		t.Errorf("omitted vs explicit defaults hashed differently:\n %s\n %s",
			bare.ID(), spelled.ID())
	}
	cb, _ := bare.Canonicalize()
	cs, _ := spelled.Canonicalize()
	if cb != cs {
		t.Errorf("canonical forms differ: %+v vs %+v", cb, cs)
	}
	if !cs.Tuning.isZero() {
		t.Errorf("explicit tuning defaults not folded to zero: %+v", cs.Tuning)
	}
}

// TestCanonicalJSONOmitsZeroTuning pins the canonical wire layout: the tuning
// block is absent for a paper-default run, so adding tuning dimensions never
// perturbs existing IDs.
func TestCanonicalJSONOmitsZeroTuning(t *testing.T) {
	b, err := Spec{App: "KMN", Policy: "lru", Rate: 50}.CanonicalJSON()
	if err != nil {
		t.Fatalf("canonical json: %v", err)
	}
	if strings.Contains(string(b), "tuning") {
		t.Errorf("zero tuning serialized: %s", b)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatalf("canonical json not json: %v", err)
	}
	b2, err := Spec{App: "KMN", Policy: "lru", Rate: 50,
		Tuning: Tuning{WalkLatency: 20}}.CanonicalJSON()
	if err != nil {
		t.Fatalf("canonical json with tuning: %v", err)
	}
	if !strings.Contains(string(b2), `"walk_latency":20`) {
		t.Errorf("tuning deviation missing from canonical json: %s", b2)
	}
}

// TestHIRResolution pins the auto rule: HPE needs the HIR, baselines do not,
// and the sensitivity methodology bypasses it.
func TestHIRResolution(t *testing.T) {
	cases := []struct {
		spec Spec
		want string
	}{
		{Spec{App: "HSD", Policy: "hpe", Rate: 75}, "on"},
		{Spec{App: "HSD", Policy: "hpe", Rate: 75, HIR: "auto"}, "on"},
		{Spec{App: "HSD", Policy: "hpe", Rate: 75, HIR: "off"}, "off"},
		{Spec{App: "HSD", Policy: "lru", Rate: 75}, "off"},
		{Spec{App: "HSD", Policy: "lru", Rate: 75, HIR: "on"}, "on"},
		{Spec{App: "HSD", Policy: "hpe", Rate: 75,
			Tuning: Tuning{SensitivityHPE: true}}, "off"},
	}
	for _, tc := range cases {
		c, err := tc.spec.Canonicalize()
		if err != nil {
			t.Errorf("%+v: %v", tc.spec, err)
			continue
		}
		if c.HIR != tc.want {
			t.Errorf("%s/%s hir=%q resolved to %q, want %q",
				tc.spec.Policy, tc.spec.HIR, tc.spec.HIR, c.HIR, tc.want)
		}
	}
	bad := Spec{App: "HSD", Policy: "hpe", Rate: 75, HIR: "on",
		Tuning: Tuning{SensitivityHPE: true}}
	if _, err := bad.Canonicalize(); err == nil {
		t.Error("hir on + sensitivity_hpe accepted")
	}
}

// TestCanonicalizeRejectsInvalid walks the validation error table.
func TestCanonicalizeRejectsInvalid(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
	}{
		{"unknown app", Spec{App: "NOPE", Policy: "lru", Rate: 50}},
		{"unknown policy", Spec{App: "HSD", Policy: "magic", Rate: 50}},
		{"rate zero", Spec{App: "HSD", Policy: "lru", Rate: 0}},
		{"rate over 100", Spec{App: "HSD", Policy: "lru", Rate: 101}},
		{"negative prefetch", Spec{App: "HSD", Policy: "lru", Rate: 50, Prefetch: -1}},
		{"bad design", Spec{App: "HSD", Policy: "lru", Rate: 50, Design: "tlbless"}},
		{"bad hir", Spec{App: "HSD", Policy: "lru", Rate: 50, HIR: "maybe"}},
		{"scale too large", Spec{App: "HSD", Policy: "lru", Rate: 50, Scale: 65}},
		{"negative scale", Spec{App: "HSD", Policy: "lru", Rate: 50, Scale: -2}},
		{"negative tuning", Spec{App: "HSD", Policy: "lru", Rate: 50,
			Tuning: Tuning{WalkLatency: -1}}},
		{"hpe knob on baseline", Spec{App: "HSD", Policy: "lru", Rate: 50,
			Tuning: Tuning{HPEInterval: 32}}},
		{"sensitivity on baseline", Spec{App: "HSD", Policy: "lru", Rate: 50,
			Tuning: Tuning{SensitivityHPE: true}}},
	}
	for _, tc := range cases {
		if _, err := tc.spec.Canonicalize(); err == nil {
			t.Errorf("%s: accepted %+v", tc.name, tc.spec)
		}
	}
}

// TestIDVersioned pins the ID schema prefix; bumping IDVersion must be a
// deliberate act (see the const's comment).
func TestIDVersioned(t *testing.T) {
	id := Spec{App: "HSD", Policy: "lru", Rate: 75}.ID()
	if !strings.HasPrefix(id, "run-v2-") {
		t.Errorf("ID %q lacks the run-v2- prefix", id)
	}
	if len(id) != len("run-v2-")+32 {
		t.Errorf("ID %q is not 16 hash bytes hex-encoded", id)
	}
}

// TestDecodeRejectsUnknownFields: a typoed knob must fail loudly, not alias
// two different runs onto one content address.
func TestDecodeRejectsUnknownFields(t *testing.T) {
	if _, err := Decode(strings.NewReader(`{"app":"HSD","policy":"lru","rate":50,"prefetch":2}`)); err == nil {
		t.Error("unknown field accepted")
	}
	sp, err := Decode(strings.NewReader(`{"app":"hsd","policy":"clock-pro","rate":50}`))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if sp.Policy != "clockpro" || sp.Seed != 1 {
		t.Errorf("decode did not canonicalize: %+v", sp)
	}
}

// TestVariantLabelAndSlug pins the display vocabulary used by progress lines
// and trace file names.
func TestVariantLabelAndSlug(t *testing.T) {
	cases := []struct {
		spec  Spec
		label string
		slug  string
	}{
		{Spec{App: "HSD", Policy: "lru", Rate: 75}, "", "HSD_lru_75"},
		{Spec{App: "B+T", Policy: "hpe", Rate: 50, Tuning: Tuning{WalkLatency: 20}},
			"walk20", "B-T_hpe_50_walk20"},
		{Spec{App: "SAD", Policy: "clock-pro", Rate: 100, Channels: 4},
			"ch4", "SAD_clockpro_100_ch4"},
		{Spec{App: "HSD", Policy: "hpe", Rate: 75, HIR: "off"}, "nohir", "HSD_hpe_75_nohir"},
		{Spec{App: "HSD", Policy: "hpe", Rate: 75,
			Tuning: Tuning{SensitivityHPE: true, SetSizeShift: 3}},
			"sens-setsize8", "HSD_hpe_75_sens-setsize8"},
		{Spec{App: "GEM", Policy: "lru", Rate: 100, Design: "pwc",
			Tuning: Tuning{Prepopulate: true}}, "prepop-pwc", "GEM_lru_100_prepop-pwc"},
	}
	for _, tc := range cases {
		if got := tc.spec.VariantLabel(); got != tc.label {
			t.Errorf("%+v VariantLabel = %q, want %q", tc.spec, got, tc.label)
		}
		if got := tc.spec.Slug(); got != tc.slug {
			t.Errorf("%+v Slug = %q, want %q", tc.spec, got, tc.slug)
		}
	}
}

// Package runspec defines the canonical, content-addressed description of
// one simulation run. A Spec is the single vocabulary every layer speaks:
// the experiment suite keys its memo caches on Spec IDs, hped decodes POST
// /v1/runs bodies straight into Specs, the CLIs build Specs from flags, and
// the facade's hpe.Run(spec) entry point materializes a Spec into the
// (gpu.Config, Trace, Policy) triple the simulator consumes.
//
// The lifecycle is: build a Spec (by hand, from flags, or from JSON) →
// Canonicalize (defaults made explicit, aliases resolved, invalid fields
// rejected) → ID (sha256 of the canonical JSON, versioned) → Materialize.
// Because canonicalization is the only place defaults are applied, an
// omitted field and its explicit default always produce the same ID — the
// property consistent-hash sharding and result caching depend on.
//
// DESIGN.md §12 documents the fields, the canonicalization rules, and how to
// add a dimension without perturbing existing IDs.
package runspec

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"hpe/internal/registry"
	"hpe/internal/workload"
)

// IDVersion is the run-ID schema version, embedded in every ID ("run-v2-…").
// Bump it when a canonicalization rule or the canonical JSON layout changes
// meaning: old and new servers then disagree loudly (distinct cache
// namespaces) instead of silently serving each other's results.
const IDVersion = "v2"

// Spec is the complete typed description of one simulation run. The zero
// value of every field means "paper default"; Canonicalize makes defaults
// explicit. A canonical Spec is comparable (usable as a map key) and
// marshals to a deterministic canonical JSON form.
type Spec struct {
	// App is the workload abbreviation ("HSD"); case-insensitive on input,
	// canonicalized to the catalog spelling.
	App string `json:"app"`
	// Policy is a registry policy name or alias ("clock-pro"); canonicalized
	// to the registry key ("clockpro").
	Policy string `json:"policy"`
	// Rate is the oversubscription rate in percent: device memory holds
	// rate% of the workload footprint. Must be in (0, 100].
	Rate int `json:"rate"`
	// Seed feeds randomised policies; 0 means the default seed 1.
	Seed int64 `json:"seed"`
	// Design selects the translation design: "l2tlb" (default) or "pwc".
	Design string `json:"design"`
	// Prefetch is the number of extra pages migrated per fault from the
	// same 64-KB block.
	Prefetch int `json:"prefetch_pages"`
	// Channels is the number of parallel fault-service channels; 0 means
	// the paper's serial driver (1).
	Channels int `json:"channels"`
	// DataPath turns on the Table I data-hierarchy model.
	DataPath bool `json:"datapath"`
	// HIR attaches the hit-information cache: "on", "off", or "" / "auto"
	// (resolve from the policy — HPE needs it, the baselines do not).
	HIR string `json:"hir"`
	// Scale multiplies the workload footprint (page sets) for scale studies
	// beyond the Table II geometries; 0 means the paper's geometry (1).
	Scale int `json:"scale"`
	// MaxCycles aborts a runaway simulation; 0 means unlimited.
	MaxCycles uint64 `json:"max_cycles"`
	// Phases selects a temporal phase-schedule workload instead of App: a
	// workload.ParsePhases string ("HOT:32,HSD:96,HOT:32"), canonicalized.
	// App, Phases, and Tenants are mutually exclusive workload sources; all
	// three are omitted from the canonical JSON when empty, so stationary
	// (v1) specs keep their pre-scenario IDs.
	Phases string `json:"phases,omitempty"`
	// Tenants selects a multi-tenant colocation workload instead of App: a
	// workload.ParseTenants string ("HSD,BFS"), canonicalized.
	Tenants string `json:"tenants,omitempty"`
	// Interleave is the colocation scheduling quantum in references.
	// Requires Tenants; 0 means the 1024 default (made explicit, so an
	// omitted quantum and a spelled-out default share one ID).
	Interleave int `json:"interleave,omitempty"`
	// Tuning holds the rarely-used experiment knobs. The zero value is the
	// paper configuration and is omitted from the canonical JSON, so adding
	// a Tuning dimension never changes the ID of any existing run.
	Tuning Tuning `json:"tuning,omitzero"`
}

// Tuning collects the low-level knobs the sensitivity and extension studies
// sweep. Zero always means the paper default (Canonicalize folds explicit
// defaults back to zero), so Tuning's canonical JSON only carries deviations.
type Tuning struct {
	// WalkLatency overrides the page-table-walk latency in cycles
	// (default 8; the §V-B study uses 20).
	WalkLatency int `json:"walk_latency,omitempty"`
	// TransferInterval overrides the HIR drain interval in faults
	// (default 16).
	TransferInterval int `json:"transfer_interval,omitempty"`
	// Prepopulate maps the footprint before the first access (translation
	// and data-path studies: no demand-paging faults).
	Prepopulate bool `json:"prepopulate,omitempty"`
	// HIREntries overrides the HIR cache capacity (default 1024).
	HIREntries int `json:"hir_entries,omitempty"`
	// SetSizeShift overrides HPE's page-set size as a power of two
	// (default 4 → 16 pages). Requires policy "hpe".
	SetSizeShift uint `json:"set_size_shift,omitempty"`
	// HPEInterval overrides HPE's classification interval in faults
	// (default 64). Requires policy "hpe".
	HPEInterval int `json:"hpe_interval,omitempty"`
	// HPEDivisionThreshold overrides the page-set division counter
	// threshold (0 = the counter cap, the paper's rule). Requires "hpe".
	HPEDivisionThreshold int `json:"hpe_division_threshold,omitempty"`
	// HPEDisableDivision turns off page-set division (§IV-C ablation).
	// Requires policy "hpe".
	HPEDisableDivision bool `json:"hpe_disable_division,omitempty"`
	// SensitivityHPE selects the Figs. 7–8 methodology: dynamic adjustment
	// off, per-app manual strategy, ideal (HIR-free) hit feed. Implies
	// HIR "off". Requires policy "hpe".
	SensitivityHPE bool `json:"sensitivity_hpe,omitempty"`
}

// isZero reports whether t is the paper-default configuration.
func (t Tuning) isZero() bool { return t == Tuning{} }

// Canonicalize returns the spec with aliases resolved, defaults explicit,
// and tuning defaults folded to zero — or an error naming the first invalid
// field. Canonicalization is idempotent, and it is the ONLY place defaults
// are applied: an omitted field and an explicitly-spelled default always
// canonicalize identically, so they share one ID (and one cache entry).
func (s Spec) Canonicalize() (Spec, error) {
	s.App = strings.TrimSpace(s.App)
	s.Phases = strings.TrimSpace(s.Phases)
	s.Tenants = strings.TrimSpace(s.Tenants)
	sources := 0
	for _, src := range []string{s.App, s.Phases, s.Tenants} {
		if src != "" {
			sources++
		}
	}
	switch {
	case sources == 0:
		return Spec{}, fmt.Errorf("runspec: no workload source (app, phases, or tenants)")
	case sources > 1:
		return Spec{}, fmt.Errorf("runspec: app, phases, and tenants are mutually exclusive workload sources")
	case s.Phases != "":
		ps, err := workload.ParsePhases(s.Phases)
		if err != nil {
			return Spec{}, err
		}
		s.Phases = ps.Canonical()
	case s.Tenants != "":
		co, err := workload.ParseTenants(s.Tenants)
		if err != nil {
			return Spec{}, err
		}
		s.Tenants = co.Canonical()
		if s.Interleave == 0 {
			s.Interleave = workload.DefaultInterleave
		}
		if s.Interleave < 1 || s.Interleave > workload.MaxInterleave {
			return Spec{}, fmt.Errorf("runspec: interleave %d out of [1,%d]", s.Interleave, workload.MaxInterleave)
		}
	case strings.HasPrefix(s.App, "trace:"):
		// A captured-trace source: the path after the prefix is the identity,
		// verbatim — no case folding, no catalog lookup.
		if strings.TrimSpace(s.App[len("trace:"):]) == "" {
			return Spec{}, fmt.Errorf("runspec: trace app source needs a path (\"trace:<path>\")")
		}
	default:
		app, ok := workload.ByAbbr(strings.ToUpper(s.App))
		if !ok {
			return Spec{}, fmt.Errorf("runspec: unknown workload %q", s.App)
		}
		s.App = app.Abbr
	}
	if s.Interleave != 0 && s.Tenants == "" {
		return Spec{}, fmt.Errorf("runspec: interleave requires tenants")
	}
	info, ok := registry.Lookup(strings.TrimSpace(s.Policy))
	if !ok {
		return Spec{}, fmt.Errorf("runspec: unknown policy %q", s.Policy)
	}
	s.Policy = info.Name
	if s.Rate <= 0 || s.Rate > 100 {
		return Spec{}, fmt.Errorf("runspec: rate %d out of (0,100]", s.Rate)
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	switch strings.ToLower(strings.TrimSpace(s.Design)) {
	case "", "l2tlb":
		s.Design = "l2tlb"
	case "pwc":
		s.Design = "pwc"
	default:
		return Spec{}, fmt.Errorf("runspec: unknown translation design %q (l2tlb or pwc)", s.Design)
	}
	if s.Prefetch < 0 {
		return Spec{}, fmt.Errorf("runspec: prefetch_pages %d must be non-negative", s.Prefetch)
	}
	if s.Channels <= 0 {
		s.Channels = 1
	}
	if s.Scale == 0 {
		s.Scale = 1
	}
	if s.Scale < 1 || s.Scale > 64 {
		return Spec{}, fmt.Errorf("runspec: scale %d out of [1,64]", s.Scale)
	}
	if strings.HasPrefix(s.App, "trace:") && s.Scale > 1 {
		return Spec{}, fmt.Errorf("runspec: a replayed trace cannot scale (scale %d)", s.Scale)
	}
	switch strings.ToLower(strings.TrimSpace(s.HIR)) {
	case "", "auto":
		if info.NeedsHIR && !s.Tuning.SensitivityHPE {
			s.HIR = "on"
		} else {
			s.HIR = "off"
		}
	case "on":
		if s.Tuning.SensitivityHPE {
			return Spec{}, fmt.Errorf("runspec: hir \"on\" contradicts sensitivity_hpe (ideal hit feed bypasses the HIR)")
		}
		s.HIR = "on"
	case "off":
		s.HIR = "off"
	default:
		return Spec{}, fmt.Errorf("runspec: hir %q must be on, off, or auto", s.HIR)
	}
	t, err := s.Tuning.canonicalize(s.Policy)
	if err != nil {
		return Spec{}, err
	}
	s.Tuning = t
	return s, nil
}

// canonicalize folds explicit tuning defaults to zero and validates the
// policy-scoped knobs.
func (t Tuning) canonicalize(policy string) (Tuning, error) {
	if t.WalkLatency < 0 || t.TransferInterval < 0 || t.HIREntries < 0 ||
		t.HPEInterval < 0 || t.HPEDivisionThreshold < 0 {
		return Tuning{}, fmt.Errorf("runspec: tuning values must be non-negative: %+v", t)
	}
	// Explicit paper defaults fold back to the zero value, so "the default,
	// spelled out" and "the default, omitted" share one canonical form.
	if t.WalkLatency == 8 {
		t.WalkLatency = 0
	}
	if t.TransferInterval == 16 {
		t.TransferInterval = 0
	}
	if t.HIREntries == 1024 {
		t.HIREntries = 0
	}
	if t.SetSizeShift == 4 {
		t.SetSizeShift = 0
	}
	if t.HPEInterval == 64 {
		t.HPEInterval = 0
	}
	if policy != "hpe" {
		if t.SetSizeShift != 0 || t.HPEInterval != 0 || t.HPEDivisionThreshold != 0 ||
			t.HPEDisableDivision || t.SensitivityHPE {
			return Tuning{}, fmt.Errorf("runspec: HPE tuning fields require policy \"hpe\", not %q", policy)
		}
	}
	return t, nil
}

// CanonicalJSON returns the deterministic canonical encoding: the
// canonicalized spec marshaled with fixed field order and zero-value tuning
// omitted. Two specs meaning the same run always render identical bytes.
func (s Spec) CanonicalJSON() ([]byte, error) {
	c, err := s.Canonicalize()
	if err != nil {
		return nil, err
	}
	b, err := json.Marshal(c)
	if err != nil {
		return nil, fmt.Errorf("runspec: canonical spec not marshalable: %w", err)
	}
	return b, nil
}

// ID returns the content address of the run: "run-v2-" plus the first 16
// bytes of the SHA-256 of the canonical JSON, hex-encoded. Identical runs —
// across processes, replicas, and releases sharing this schema — share one
// ID. ID panics on a spec that fails Canonicalize; validate first when the
// spec came from untrusted input (Decode does).
func (s Spec) ID() string {
	b, err := s.CanonicalJSON()
	if err != nil {
		panic(err.Error())
	}
	sum := sha256.Sum256(b)
	return "run-" + IDVersion + "-" + hex.EncodeToString(sum[:16])
}

// Decode reads one JSON-encoded Spec from r — unknown fields rejected, so a
// typoed knob cannot silently alias two different runs onto one ID — and
// returns its canonical form.
func Decode(r io.Reader) (Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("decode run spec: %w", err)
	}
	return s.Canonicalize()
}

// VariantLabel renders the spec's deviations from the plain (app, policy,
// rate) run as a compact dash-joined token list ("walk20", "prepop-pwc"),
// or "" for a default-configured run. It is display vocabulary — progress
// lines, file names — never an identity: the ID is the identity.
func (s Spec) VariantLabel() string {
	c, err := s.Canonicalize()
	if err != nil {
		return "invalid"
	}
	var parts []string
	add := func(tok string) { parts = append(parts, tok) }
	if c.Tuning.Prepopulate {
		add("prepop")
	}
	if c.Design == "pwc" {
		add("pwc")
	}
	if c.DataPath {
		add("datapath")
	}
	if c.Prefetch > 0 {
		add(fmt.Sprintf("pf%d", c.Prefetch))
	}
	if c.Channels > 1 {
		add(fmt.Sprintf("ch%d", c.Channels))
	}
	if c.Scale > 1 {
		add(fmt.Sprintf("x%d", c.Scale))
	}
	if c.MaxCycles > 0 {
		add(fmt.Sprintf("max%d", c.MaxCycles))
	}
	if c.Interleave != 0 && c.Interleave != workload.DefaultInterleave {
		add(fmt.Sprintf("iv%d", c.Interleave))
	}
	if c.HIR == "off" && registry.NeedsHIR(c.Policy) && !c.Tuning.SensitivityHPE {
		add("nohir")
	}
	if c.HIR == "on" && !registry.NeedsHIR(c.Policy) {
		add("hir")
	}
	if c.Tuning.WalkLatency != 0 {
		add(fmt.Sprintf("walk%d", c.Tuning.WalkLatency))
	}
	if c.Tuning.TransferInterval != 0 {
		add(fmt.Sprintf("transfer%d", c.Tuning.TransferInterval))
	}
	if c.Tuning.HIREntries != 0 {
		add(fmt.Sprintf("hir%d", c.Tuning.HIREntries))
	}
	if c.Tuning.SensitivityHPE {
		add("sens")
	}
	if c.Tuning.SetSizeShift != 0 {
		add(fmt.Sprintf("setsize%d", 1<<c.Tuning.SetSizeShift))
	}
	if c.Tuning.HPEInterval != 0 {
		add(fmt.Sprintf("interval%d", c.Tuning.HPEInterval))
	}
	if c.Tuning.HPEDivisionThreshold != 0 {
		add(fmt.Sprintf("div%d", c.Tuning.HPEDivisionThreshold))
	}
	if c.Tuning.HPEDisableDivision {
		add("divoff")
	}
	return strings.Join(parts, "-")
}

// Slug renders a filesystem-safe run name: App_policy_rate plus the variant
// label when the run deviates from the defaults.
func (s Spec) Slug() string {
	c, err := s.Canonicalize()
	if err != nil {
		return "invalid-spec"
	}
	src := c.App
	switch {
	case c.Phases != "":
		src = "phases-" + c.Phases
	case c.Tenants != "":
		src = "tenants-" + c.Tenants
	}
	label := fmt.Sprintf("%s_%s_%d", src, c.Policy, c.Rate)
	if v := c.VariantLabel(); v != "" {
		label += "_" + v
	}
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '_', r == '-', r == '.':
			return r
		default:
			return '-'
		}
	}, label)
}

package runspec

import (
	"fmt"
	"math"
	"os"
	"strings"

	"hpe/internal/addrspace"
	"hpe/internal/gpu"
	"hpe/internal/hpe"
	"hpe/internal/policy"
	"hpe/internal/registry"
	"hpe/internal/sim"
	"hpe/internal/trace"
	"hpe/internal/workload"
)

// Env supplies the environment a materialization draws on. Both hooks are
// optional: the zero Env generates traces on demand and lets offline
// policies build their own future index. Long-lived callers (the experiment
// suite, hped) plug their memo caches in here so repeated materializations
// of the same workload share one trace generation.
type Env struct {
	// Trace returns the canonical trace of app (already scaled). When nil,
	// the trace is generated fresh with its lazy footprint primed.
	Trace func(app workload.App) *trace.Trace
	// Future returns a Belady future index over the app's trace, for the
	// offline Ideal policy. When nil, Ideal builds the index itself.
	Future func(app workload.App, tr *trace.Trace) *trace.FutureIndex
	// ReadTrace resolves a "trace:<path>" app source to its captured trace.
	// When nil, the path is opened as a local .hpet file — servers that must
	// not touch the filesystem install a hook that rejects or redirects.
	ReadTrace func(path string) (*trace.Trace, error)
}

// readTrace resolves a trace: source through the env hook or the filesystem.
func (e Env) readTrace(path string) (*trace.Trace, error) {
	if e.ReadTrace != nil {
		return e.ReadTrace(path)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.Read(f)
}

// Materialized is everything the simulator needs for one run, derived from
// one canonical Spec: the Spec → (gpu.Config, Trace, Policy) materializer
// that replaces the per-layer knob-plumbing the suite, server, and CLIs
// used to duplicate.
type Materialized struct {
	// App is the (scaled) workload the run simulates.
	App workload.App
	// Trace is the reference string.
	Trace *trace.Trace
	// Capacity is the device-memory size in pages implied by Rate.
	Capacity int
	// Config is the fully-knobbed Table I system configuration.
	Config gpu.Config
	// Policy is a fresh policy instance for this run.
	Policy policy.Policy
}

// CapacityFor translates an oversubscription rate into a device-memory size:
// a rate of 75% means 75% of the trace footprint fits. Never below one page.
func CapacityFor(tr *trace.Trace, ratePct int) int {
	c := int(math.Ceil(float64(tr.Footprint()) * float64(ratePct) / 100))
	if c < 1 {
		c = 1
	}
	return c
}

// Materialize canonicalizes the spec and builds the run's workload, trace,
// system configuration, and policy instance. Every layer — suite, server,
// CLIs, replay — materializes specs through here, so a knob exists exactly
// once.
func (s Spec) Materialize(env Env) (Materialized, error) {
	c, err := s.Canonicalize()
	if err != nil {
		return Materialized{}, err
	}
	app, err := c.sourceApp(env)
	if err != nil {
		return Materialized{}, err
	}
	app = app.Scaled(c.Scale)
	var tr *trace.Trace
	if env.Trace != nil {
		tr = env.Trace(app)
	} else {
		tr = app.Generate()
		tr.Footprint() // prime the lazy footprint before the trace is shared
	}
	capacity := CapacityFor(tr, c.Rate)

	cfg := gpu.DefaultConfig(capacity)
	cfg.ComputeGap = sim.Cycle(max(0, app.ComputeGap))
	cfg.Driver.PrefetchPages = c.Prefetch
	cfg.Driver.Channels = c.Channels
	cfg.ModelDataPath = c.DataPath
	cfg.MaxCycles = sim.Cycle(c.MaxCycles)
	if c.Design == "pwc" {
		cfg.Translation = gpu.DesignPWC
	}
	cfg.UseHIR = c.HIR == "on"
	cfg.Prepopulate = c.Tuning.Prepopulate
	if c.Tuning.WalkLatency != 0 {
		cfg.WalkLatency = sim.Cycle(c.Tuning.WalkLatency)
	}
	if c.Tuning.TransferInterval != 0 {
		cfg.Driver.TransferInterval = c.Tuning.TransferInterval
	}
	if c.Tuning.HIREntries != 0 {
		cfg.HIR.Entries = c.Tuning.HIREntries
	}

	popts := []registry.Option{
		registry.WithSeed(c.Seed),
		registry.WithCapacity(capacity),
	}
	if env.Future != nil {
		appC, trC := app, tr
		popts = append(popts, registry.WithFutureIndex(func() *trace.FutureIndex {
			return env.Future(appC, trC)
		}))
	} else {
		popts = append(popts, registry.WithTrace(tr))
	}
	if app.Pattern == workload.PatternThrashing {
		popts = append(popts, registry.WithThrashingRRIP())
	}
	if c.Policy == "hpe" {
		popts = append(popts, registry.WithHPEConfig(hpeConfigFor(app, c.Tuning)))
	}
	pol, err := registry.New(c.Policy, popts...)
	if err != nil {
		return Materialized{}, err
	}
	return Materialized{App: app, Trace: tr, Capacity: capacity, Config: cfg, Policy: pol}, nil
}

// sourceApp resolves the canonical spec's workload source — catalog
// abbreviation, phase schedule, tenant colocation, or captured trace — to the
// App the run simulates. The spec is already canonical, so the scenario
// strings re-parse without error; only trace loading can fail.
func (c Spec) sourceApp(env Env) (workload.App, error) {
	switch {
	case c.Phases != "":
		ps, err := workload.ParsePhases(c.Phases)
		if err != nil {
			return workload.App{}, err
		}
		return ps.App(), nil
	case c.Tenants != "":
		co, err := workload.ParseTenants(c.Tenants)
		if err != nil {
			return workload.App{}, err
		}
		return co.App(c.Interleave), nil
	case strings.HasPrefix(c.App, "trace:"):
		path := c.App[len("trace:"):]
		tr, err := env.readTrace(path)
		if err != nil {
			return workload.App{}, fmt.Errorf("runspec: load trace source %q: %w", path, err)
		}
		return workload.FromTrace(path, tr), nil
	default:
		app, _ := workload.ByAbbr(c.App) // canonical spec: lookup cannot fail
		return app, nil
	}
}

// hpeConfigFor derives the HPE policy configuration from the tuning knobs;
// the zero Tuning yields exactly hpe.DefaultConfig().
func hpeConfigFor(app workload.App, t Tuning) hpe.Config {
	shift := uint(4)
	if t.SetSizeShift != 0 {
		shift = t.SetSizeShift
	}
	interval := 64
	if t.HPEInterval != 0 {
		interval = t.HPEInterval
	}
	hc := hpe.ConfigForGeometry(addrspace.NewGeometry(shift), interval)
	if t.SensitivityHPE {
		hc.DynamicAdjustment = false
		hc.IdealHitFeed = true
		strat := ManualStrategy(app)
		hc.ManualStrategy = &strat
	}
	hc.DivisionCounterThreshold = t.HPEDivisionThreshold
	hc.DisableDivision = t.HPEDisableDivision
	return hc
}

// ManualStrategy returns the per-application strategy the paper's
// sensitivity methodology (Figs. 7–8) assigns manually: MRU-C for the
// regular applications (Types I–III except the KMN/SAD outliers, plus SGM),
// LRU for the rest.
func ManualStrategy(app workload.App) hpe.Strategy {
	switch app.Pattern {
	case workload.PatternStreaming, workload.PatternThrashing:
		return hpe.StrategyMRUC
	case workload.PatternPartRepetitive:
		if app.Abbr == "KMN" || app.Abbr == "SAD" {
			return hpe.StrategyLRU
		}
		return hpe.StrategyMRUC
	default:
		if app.Abbr == "SGM" {
			return hpe.StrategyMRUC
		}
		return hpe.StrategyLRU
	}
}

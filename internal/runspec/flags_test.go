package runspec

import (
	"flag"
	"io"
	"math/rand"
	"strings"
	"testing"
)

// parseArgs runs args through a fresh flag set, as a CLI would.
func parseArgs(t *testing.T, args []string) Spec {
	t.Helper()
	var f Flags
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	f.Register(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatalf("parse %v: %v", args, err)
	}
	return f.Spec()
}

// TestFlagsDefaultsMatchSpecDefaults: an hpesim invocation with no flags at
// all must mean the same run as the registered flag defaults re-rendered —
// i.e. the flag defaults ARE canonical spec defaults.
func TestFlagsDefaultsMatchSpecDefaults(t *testing.T) {
	sp := parseArgs(t, nil)
	c, err := sp.Canonicalize()
	if err != nil {
		t.Fatalf("default flags canonicalize: %v", err)
	}
	want := Spec{App: "HSD", Policy: "hpe", Rate: 75, Seed: 1,
		Design: "l2tlb", Channels: 1, HIR: "on", Scale: 1}
	if c != want {
		t.Errorf("default flags = %+v, want %+v", c, want)
	}
}

// TestFlagsRoundTripProperty is the lossless-round-trip property over a
// deterministic sample of the core spec dimensions: spec → FlagsFromSpec →
// Args → re-parse → same canonical spec and same ID. Tuning is excluded by
// design — it has no flag surface.
func TestFlagsRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7)) // fixed seed: reproducible sample
	apps := []string{"HSD", "KMN", "BFS", "B+T", "SAD", "GEM"}
	policies := []string{"lru", "random", "rrip", "clockpro", "ideal", "hpe",
		"fifo", "lfu", "clock", "nru", "arc", "setlru"}
	designs := []string{"", "l2tlb", "pwc"}
	hirs := []string{"", "auto", "on", "off"}
	for i := 0; i < 500; i++ {
		sp := Spec{
			App:      apps[rng.Intn(len(apps))],
			Policy:   policies[rng.Intn(len(policies))],
			Rate:     1 + rng.Intn(100),
			Seed:     int64(rng.Intn(3)),
			Design:   designs[rng.Intn(len(designs))],
			Prefetch: rng.Intn(4),
			Channels: rng.Intn(5),
			DataPath: rng.Intn(2) == 1,
			HIR:      hirs[rng.Intn(len(hirs))],
			Scale:    rng.Intn(5),
			MaxCycles: map[bool]uint64{false: 0,
				true: uint64(1 + rng.Intn(1000000))}[rng.Intn(4) == 0],
		}
		c, err := sp.Canonicalize()
		if err != nil {
			// hir "on" + sensitivity is the only invalid combination above,
			// and Tuning is zero here, so every sample must canonicalize.
			t.Fatalf("sample %d %+v: %v", i, sp, err)
		}
		reparsed := parseArgs(t, FlagsFromSpec(c).Args())
		rc, err := reparsed.Canonicalize()
		if err != nil {
			t.Fatalf("sample %d re-parse %v: %v", i, FlagsFromSpec(c).Args(), err)
		}
		if rc != c {
			t.Fatalf("sample %d round trip lost information:\n spec  %+v\n flags %v\n back  %+v",
				i, c, FlagsFromSpec(c).Args(), rc)
		}
		if rc.ID() != c.ID() {
			t.Fatalf("sample %d IDs diverged across the flag round trip", i)
		}
	}
}

// TestScenarioFlagsRoundTrip: the workload-v2 flags survive the spec → flags
// → args → spec round trip, and -phases / -tenants supersede the -app default
// so the spec carries exactly one workload source.
func TestScenarioFlagsRoundTrip(t *testing.T) {
	for _, args := range [][]string{
		{"-phases", "hot:32,hsd:96,hot:32", "-policy", "hpe", "-rate", "75"},
		{"-tenants", "hsd,bfs", "-interleave", "512", "-policy", "lru", "-rate", "50"},
		{"-tenants", "HSD,BFS", "-policy", "lru", "-rate", "50"},
		{"-app", "trace:runs/colo.hpet", "-policy", "lru", "-rate", "50"},
	} {
		c, err := parseArgs(t, args).Canonicalize()
		if err != nil {
			t.Fatalf("flags %v: %v", args, err)
		}
		rc, err := parseArgs(t, FlagsFromSpec(c).Args()).Canonicalize()
		if err != nil {
			t.Fatalf("re-parse %v: %v", FlagsFromSpec(c).Args(), err)
		}
		if rc != c || rc.ID() != c.ID() {
			t.Errorf("scenario flags round trip lost information:\n spec  %+v\n back  %+v", c, rc)
		}
		if (c.Phases != "" || c.Tenants != "") && c.App != "" {
			t.Errorf("scenario flags left the -app default in place: %+v", c)
		}
	}
}

// TestWireBodyMatchesFlags: for every sampled run, a minimal POST /v1/runs
// body (defaults omitted) and the fully-spelled CLI flag rendering decode to
// the same content address — the satellite contract tying the server's wire
// form to the CLI surface.
func TestWireBodyMatchesFlags(t *testing.T) {
	cases := []struct {
		body string
		args []string
	}{
		{`{"app":"HSD","policy":"hpe","rate":75}`,
			[]string{"-app", "hsd", "-policy", "HPE", "-rate", "75"}},
		{`{"app":"KMN","policy":"clock-pro","rate":50,"scale":4}`,
			[]string{"-app", "KMN", "-policy", "clockpro", "-rate", "50",
				"-scale", "4", "-seed", "1", "-design", "l2tlb"}},
		{`{"app":"BFS","policy":"lru","rate":100,"datapath":true,"channels":2}`,
			[]string{"-app", "BFS", "-policy", "lru", "-rate", "100",
				"-datapath", "-channels", "2", "-hir", "auto"}},
	}
	for _, tc := range cases {
		wire, err := Decode(strings.NewReader(tc.body))
		if err != nil {
			t.Fatalf("decode %s: %v", tc.body, err)
		}
		cli, err := parseArgs(t, tc.args).Canonicalize()
		if err != nil {
			t.Fatalf("flags %v: %v", tc.args, err)
		}
		if wire.ID() != cli.ID() {
			t.Errorf("wire body and CLI flags disagree:\n body  %s → %s\n flags %v → %s",
				tc.body, wire.ID(), tc.args, cli.ID())
		}
	}
}

package runspec

import (
	"flag"
	"fmt"
	"strconv"
)

// Flags binds the spec fields to a flag.FlagSet so every CLI parses the
// same vocabulary. The flow is Register → fs.Parse → Spec(); FlagsFromSpec
// and Args invert it (spec → re-rendered command line), and the round trip
// is lossless up to canonicalization — the property the flag tests pin.
type Flags struct {
	// App, Policy, Rate, Seed, Design, Prefetch, Channels, DataPath, HIR,
	// Scale, MaxCycles mirror the Spec fields one-for-one.
	App       string
	Policy    string
	Rate      int
	Seed      int64
	Design    string
	Prefetch  int
	Channels  int
	DataPath  bool
	HIR       string
	Scale     int
	MaxCycles uint64
	// Phases, Tenants, Interleave mirror the workload-v2 scenario fields.
	// Setting -phases or -tenants supersedes the -app default: the scenario
	// is the run's workload source.
	Phases     string
	Tenants    string
	Interleave int
}

// Register installs the spec flags on fs with the paper defaults. Callers
// may register additional tool-specific flags on the same set.
func (f *Flags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.App, "app", "HSD", "workload abbreviation (see -list)")
	fs.StringVar(&f.Policy, "policy", "hpe", "policy name, comma-separated for several (see -policies)")
	fs.IntVar(&f.Rate, "rate", 75, "oversubscription rate in percent (memory = rate% of footprint)")
	fs.Int64Var(&f.Seed, "seed", 1, "seed for randomised policies")
	fs.StringVar(&f.Design, "design", "l2tlb", "address translation design: l2tlb or pwc")
	fs.IntVar(&f.Prefetch, "prefetch", 0, "extra pages migrated per fault from the same 64-KB block")
	fs.IntVar(&f.Channels, "channels", 1, "parallel fault-service channels in the driver")
	fs.BoolVar(&f.DataPath, "datapath", false, "model the Table I data hierarchy (L1D/L2/GDDR5)")
	fs.StringVar(&f.HIR, "hir", "auto", "HIR cache: on, off, or auto (policy decides)")
	fs.IntVar(&f.Scale, "scale", 1, "footprint scale multiplier [1,64]")
	fs.Uint64Var(&f.MaxCycles, "max-cycles", 0, "abort a runaway simulation after this many cycles (0 = unlimited)")
	fs.StringVar(&f.Phases, "phases", "", "phase-schedule workload, e.g. HOT:32,HSD:96,HOT:32 (supersedes -app)")
	fs.StringVar(&f.Tenants, "tenants", "", "colocated tenant workload, e.g. HSD,BFS (supersedes -app)")
	fs.IntVar(&f.Interleave, "interleave", 0, "tenant scheduling quantum in references (0 = default 1024; requires -tenants)")
}

// Spec assembles the parsed flags into a Spec (not yet canonicalized, so
// invalid values surface through Canonicalize's errors, same as every other
// input path).
func (f Flags) Spec() Spec {
	app := f.App
	if f.Phases != "" || f.Tenants != "" {
		// A scenario flag supersedes the -app default: the spec carries
		// exactly one workload source.
		app = ""
	}
	return Spec{
		App:        app,
		Policy:     f.Policy,
		Rate:       f.Rate,
		Seed:       f.Seed,
		Design:     f.Design,
		Prefetch:   f.Prefetch,
		Channels:   f.Channels,
		DataPath:   f.DataPath,
		HIR:        f.HIR,
		Scale:      f.Scale,
		MaxCycles:  f.MaxCycles,
		Phases:     f.Phases,
		Tenants:    f.Tenants,
		Interleave: f.Interleave,
	}
}

// FlagsFromSpec renders a spec back into its flag form. Tuning has no flag
// surface (the sensitivity knobs are suite-internal), so only the core
// dimensions round-trip; specs with non-zero Tuning are not expressible as
// CLI invocations.
func FlagsFromSpec(s Spec) Flags {
	return Flags{
		App:        s.App,
		Policy:     s.Policy,
		Rate:       s.Rate,
		Seed:       s.Seed,
		Design:     s.Design,
		Prefetch:   s.Prefetch,
		Channels:   s.Channels,
		DataPath:   s.DataPath,
		HIR:        s.HIR,
		Scale:      s.Scale,
		MaxCycles:  s.MaxCycles,
		Phases:     s.Phases,
		Tenants:    s.Tenants,
		Interleave: s.Interleave,
	}
}

// Args renders the flags as a command line that re-parses to the same spec.
func (f Flags) Args() []string {
	args := []string{
		"-app", f.App,
		"-policy", f.Policy,
		"-rate", strconv.Itoa(f.Rate),
		"-seed", strconv.FormatInt(f.Seed, 10),
		"-design", f.Design,
		"-prefetch", strconv.Itoa(f.Prefetch),
		"-channels", strconv.Itoa(f.Channels),
		"-hir", f.HIR,
		"-scale", strconv.Itoa(f.Scale),
		"-max-cycles", strconv.FormatUint(f.MaxCycles, 10),
	}
	if f.DataPath {
		args = append(args, "-datapath")
	}
	if f.Phases != "" {
		args = append(args, "-phases", f.Phases)
	}
	if f.Tenants != "" {
		args = append(args, "-tenants", f.Tenants)
	}
	if f.Interleave != 0 {
		args = append(args, "-interleave", strconv.Itoa(f.Interleave))
	}
	return args
}

// String renders the flags for error messages.
func (f Flags) String() string { return fmt.Sprintf("%v", f.Args()) }

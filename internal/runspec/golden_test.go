package runspec

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"hpe/internal/registry"
)

var updateGoldens = flag.Bool("update-spec-goldens", false,
	"rewrite testdata/spec_goldens.json from the current canonicalization rules")

// specGolden is one committed fixture: a raw spec, its canonical JSON, and
// its content address. The fixtures freeze the ID schema — any change to the
// canonical layout or the canonicalization rules fails TestSpecGoldens, which
// is the cue to bump IDVersion (see that const's comment), not to regenerate
// silently.
type specGolden struct {
	Name string `json:"name"`
	Spec Spec   `json:"spec"`
	// Canonical is the canonical JSON as a string, so the fixture file's own
	// indentation cannot perturb the byte-exact comparison.
	Canonical string `json:"canonical"`
	ID        string `json:"id"`
}

const goldensPath = "testdata/spec_goldens.json"

// goldenInputs enumerates the fixture specs: every registered policy at the
// paper defaults, both translation designs, and the HIR / datapath / scale /
// tuning variants the suite sweeps.
func goldenInputs() []struct {
	name string
	spec Spec
} {
	var in []struct {
		name string
		spec Spec
	}
	add := func(name string, spec Spec) {
		in = append(in, struct {
			name string
			spec Spec
		}{name, spec})
	}
	// Every policy in registry order, defaults otherwise.
	for _, name := range registry.Names() {
		add("policy-"+name, Spec{App: "HSD", Policy: name, Rate: 75})
	}
	// Both translation designs.
	add("design-l2tlb", Spec{App: "GEM", Policy: "lru", Rate: 100, Design: "l2tlb"})
	add("design-pwc", Spec{App: "GEM", Policy: "lru", Rate: 100, Design: "pwc"})
	add("design-pwc-hpe", Spec{App: "GEM", Policy: "hpe", Rate: 75, Design: "pwc"})
	// HIR variants.
	add("hir-off-hpe", Spec{App: "HSD", Policy: "hpe", Rate: 75, HIR: "off"})
	add("hir-on-lru", Spec{App: "HSD", Policy: "lru", Rate: 75, HIR: "on"})
	// Datapath and scale variants.
	add("datapath-hpe", Spec{App: "STN", Policy: "hpe", Rate: 75, DataPath: true})
	add("scale4-hpe", Spec{App: "BFS", Policy: "hpe", Rate: 50, Scale: 4})
	add("scale16-lru", Spec{App: "BFS", Policy: "lru", Rate: 50, Scale: 16})
	// Driver and run-bound knobs.
	add("prefetch2-ch4", Spec{App: "KMN", Policy: "hpe", Rate: 50, Prefetch: 2, Channels: 4})
	add("max-cycles", Spec{App: "KMN", Policy: "lru", Rate: 50, MaxCycles: 1 << 20})
	add("seed7-random", Spec{App: "HSD", Policy: "random", Rate: 75, Seed: 7})
	// Tuning deviations.
	add("walk20-lru", Spec{App: "HSD", Policy: "lru", Rate: 75,
		Tuning: Tuning{WalkLatency: 20}})
	add("prepop-pwc", Spec{App: "GEM", Policy: "lru", Rate: 100, Design: "pwc",
		Tuning: Tuning{Prepopulate: true}})
	add("sensitivity-hpe", Spec{App: "HSD", Policy: "hpe", Rate: 75,
		Tuning: Tuning{SensitivityHPE: true, SetSizeShift: 3, HPEInterval: 32}})
	add("division-off-hpe", Spec{App: "HSD", Policy: "hpe", Rate: 75,
		Tuning: Tuning{HPEDisableDivision: true}})
	// Workload-v2 scenario sources (appended, so the stationary fixtures above
	// keep their positions and their pre-scenario IDs).
	add("phases-diurnal", Spec{Phases: "HOT:32,HOT:64,HOT:96,HOT,HOT:96,HOT:64,HOT:32",
		Policy: "hpe", Rate: 75})
	add("phases-burst-lru", Spec{Phases: "PAT:48,HSD:96,PAT:48", Policy: "lru", Rate: 50})
	add("tenants-default-interleave", Spec{Tenants: "HSD,BFS", Policy: "hpe", Rate: 75})
	add("tenants-interleave256", Spec{Tenants: "hsd, bfs", Policy: "hpe", Rate: 75, Interleave: 256})
	add("trace-source", Spec{App: "trace:runs/colo.hpet", Policy: "lru", Rate: 50})
	return in
}

// TestSpecGoldens enforces the committed canonical-JSON + ID fixtures.
// Regenerate deliberately with:
//
//	go test ./internal/runspec/ -run SpecGoldens -update-spec-goldens
func TestSpecGoldens(t *testing.T) {
	current := make([]specGolden, 0, len(goldenInputs()))
	for _, in := range goldenInputs() {
		canon, err := in.spec.CanonicalJSON()
		if err != nil {
			t.Fatalf("%s: %v", in.name, err)
		}
		current = append(current, specGolden{
			Name: in.name, Spec: in.spec, Canonical: string(canon), ID: in.spec.ID()})
	}

	if *updateGoldens {
		body, err := json.MarshalIndent(current, "", "  ")
		if err != nil {
			t.Fatalf("marshal goldens: %v", err)
		}
		if err := os.MkdirAll(filepath.Dir(goldensPath), 0o755); err != nil {
			t.Fatalf("mkdir testdata: %v", err)
		}
		if err := os.WriteFile(goldensPath, append(body, '\n'), 0o644); err != nil {
			t.Fatalf("write goldens: %v", err)
		}
		t.Logf("rewrote %s with %d fixtures", goldensPath, len(current))
		return
	}

	raw, err := os.ReadFile(goldensPath)
	if err != nil {
		t.Fatalf("read goldens (regenerate with -update-spec-goldens): %v", err)
	}
	var want []specGolden
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatalf("decode goldens: %v", err)
	}
	if len(want) != len(current) {
		t.Fatalf("fixture count drifted: committed %d, current %d — "+
			"update deliberately with -update-spec-goldens", len(want), len(current))
	}
	for i, w := range want {
		got := current[i]
		if got.Name != w.Name {
			t.Errorf("fixture %d renamed: %s → %s", i, w.Name, got.Name)
			continue
		}
		if got.Canonical != w.Canonical {
			t.Errorf("%s: canonical JSON drifted\n committed %s\n current   %s\n"+
				"(a deliberate schema change must bump IDVersion)",
				w.Name, w.Canonical, got.Canonical)
		}
		if got.ID != w.ID {
			t.Errorf("%s: ID drifted %s → %s (bump IDVersion on deliberate changes)",
				w.Name, w.ID, got.ID)
		}
	}
}

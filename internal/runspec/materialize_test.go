package runspec

import (
	"testing"

	"hpe/internal/gpu"
	"hpe/internal/trace"
	"hpe/internal/workload"
)

// TestMaterializeConfig pins the Spec → gpu.Config mapping: one knob, one
// spec dimension, materialized identically everywhere.
func TestMaterializeConfig(t *testing.T) {
	m, err := Spec{App: "HSD", Policy: "hpe", Rate: 75, Design: "pwc",
		Prefetch: 2, Channels: 4, DataPath: true, MaxCycles: 1 << 20,
		Tuning: Tuning{WalkLatency: 20}}.Materialize(Env{})
	if err != nil {
		t.Fatalf("materialize: %v", err)
	}
	cfg := m.Config
	if cfg.Translation != gpu.DesignPWC {
		t.Errorf("design pwc not materialized: %v", cfg.Translation)
	}
	if cfg.Driver.PrefetchPages != 2 || cfg.Driver.Channels != 4 {
		t.Errorf("driver knobs: prefetch=%d channels=%d", cfg.Driver.PrefetchPages, cfg.Driver.Channels)
	}
	if !cfg.ModelDataPath || cfg.MaxCycles != 1<<20 {
		t.Errorf("datapath=%v maxcycles=%d", cfg.ModelDataPath, cfg.MaxCycles)
	}
	if cfg.WalkLatency != 20 {
		t.Errorf("walk latency override lost: %d", cfg.WalkLatency)
	}
	if !cfg.UseHIR {
		t.Error("HPE run materialized without the HIR")
	}
	if m.Capacity != cfg.MemoryPages {
		t.Errorf("capacity %d disagrees with config memory %d", m.Capacity, cfg.MemoryPages)
	}
	want := CapacityFor(m.Trace, 75)
	if m.Capacity != want {
		t.Errorf("capacity %d, want %d (75%% of footprint)", m.Capacity, want)
	}
}

// TestMaterializeDefaultFoldEquivalence: a tuning value spelled at the paper
// default materializes the identical configuration as the plain run — the
// property the suite's variant-cell dedup relies on.
func TestMaterializeDefaultFoldEquivalence(t *testing.T) {
	env := Env{}
	plain, err := Spec{App: "KMN", Policy: "lru", Rate: 50}.Materialize(env)
	if err != nil {
		t.Fatalf("plain: %v", err)
	}
	spelled, err := Spec{App: "KMN", Policy: "lru", Rate: 50,
		Tuning: Tuning{TransferInterval: 16, WalkLatency: 8, HIREntries: 1024}}.Materialize(env)
	if err != nil {
		t.Fatalf("spelled: %v", err)
	}
	if plain.Config != spelled.Config {
		t.Errorf("explicit defaults materialized a different config:\n %+v\n %+v",
			plain.Config, spelled.Config)
	}
}

// TestMaterializeEnvTraceShared: the env hook supplies the trace, so a caller
// cache is actually consulted (and the scaled app is what gets asked for).
func TestMaterializeEnvTraceShared(t *testing.T) {
	calls := 0
	var asked workload.App
	env := Env{Trace: func(app workload.App) *trace.Trace {
		calls++
		asked = app
		tr := app.Generate()
		tr.Footprint()
		return tr
	}}
	m, err := Spec{App: "BFS", Policy: "lru", Rate: 50, Scale: 4}.Materialize(env)
	if err != nil {
		t.Fatalf("materialize: %v", err)
	}
	if calls != 1 {
		t.Errorf("env.Trace called %d times, want 1", calls)
	}
	base, _ := workload.ByAbbr("BFS")
	if asked.Sets != base.Sets*4 {
		t.Errorf("env.Trace asked for %d sets, want the scaled %d", asked.Sets, base.Sets*4)
	}
	if m.Trace == nil || m.Policy == nil {
		t.Error("materialized run incomplete")
	}
}

package runspec

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"hpe/internal/workload"
)

// TestScenarioCanonicalize pins the workload-v2 source rules: scenario strings
// canonicalize through the workload parsers, the colocation interleave default
// becomes explicit, and exactly one workload source is accepted.
func TestScenarioCanonicalize(t *testing.T) {
	c, err := Spec{Phases: " hot:32 , hsd:96 , hot:32 ", Policy: "hpe", Rate: 75}.Canonicalize()
	if err != nil {
		t.Fatalf("phases canonicalize: %v", err)
	}
	if c.Phases != "HOT:32,HSD:96,HOT:32" || c.App != "" {
		t.Errorf("canonical phases spec = %+v", c)
	}

	c, err = Spec{Tenants: "hsd,bfs", Policy: "hpe", Rate: 75}.Canonicalize()
	if err != nil {
		t.Fatalf("tenants canonicalize: %v", err)
	}
	if c.Tenants != "HSD,BFS" || c.Interleave != workload.DefaultInterleave {
		t.Errorf("canonical tenants spec = %+v (interleave default not explicit)", c)
	}

	// Omitted interleave and the spelled-out default share one ID; a different
	// quantum gets its own.
	bare := Spec{Tenants: "HSD,BFS", Policy: "hpe", Rate: 75}
	spelled := Spec{Tenants: "HSD,BFS", Policy: "hpe", Rate: 75, Interleave: workload.DefaultInterleave}
	if bare.ID() != spelled.ID() {
		t.Errorf("omitted vs explicit default interleave hashed differently:\n %s\n %s",
			bare.ID(), spelled.ID())
	}
	if other := (Spec{Tenants: "HSD,BFS", Policy: "hpe", Rate: 75, Interleave: 256}); other.ID() == bare.ID() {
		t.Error("interleave quantum not part of the run identity")
	}

	// Non-canonical and canonical phase strings share one ID.
	folded := Spec{Phases: "HOT:128:4,hsd", Policy: "lru", Rate: 50}
	canon := Spec{Phases: "HOT,HSD", Policy: "lru", Rate: 50}
	if folded.ID() != canon.ID() {
		t.Errorf("equivalent phase schedules hashed differently:\n %s\n %s",
			folded.ID(), canon.ID())
	}

	// A trace source keeps its path verbatim — no case folding.
	c, err = Spec{App: "trace:runs/Colo.hpet", Policy: "lru", Rate: 50}.Canonicalize()
	if err != nil {
		t.Fatalf("trace canonicalize: %v", err)
	}
	if c.App != "trace:runs/Colo.hpet" {
		t.Errorf("trace source mangled: %q", c.App)
	}
}

// TestScenarioCanonicalizeRejects walks the workload-v2 validation table.
func TestScenarioCanonicalizeRejects(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
	}{
		{"no source", Spec{Policy: "lru", Rate: 50}},
		{"app and phases", Spec{App: "HSD", Phases: "HOT:32,HSD:96", Policy: "lru", Rate: 50}},
		{"app and tenants", Spec{App: "HSD", Tenants: "HSD,BFS", Policy: "lru", Rate: 50}},
		{"phases and tenants", Spec{Phases: "HOT:32", Tenants: "HSD,BFS", Policy: "lru", Rate: 50}},
		{"bad phases", Spec{Phases: "NOPE:32", Policy: "lru", Rate: 50}},
		{"bad tenants", Spec{Tenants: "HSD", Policy: "lru", Rate: 50}},
		{"interleave without tenants", Spec{App: "HSD", Interleave: 256, Policy: "lru", Rate: 50}},
		{"interleave too large", Spec{Tenants: "HSD,BFS", Interleave: workload.MaxInterleave + 1, Policy: "lru", Rate: 50}},
		{"negative interleave", Spec{Tenants: "HSD,BFS", Interleave: -1, Policy: "lru", Rate: 50}},
		{"empty trace path", Spec{App: "trace: ", Policy: "lru", Rate: 50}},
		{"scaled trace", Spec{App: "trace:runs/x.hpet", Scale: 2, Policy: "lru", Rate: 50}},
	}
	for _, tc := range cases {
		if _, err := tc.spec.Canonicalize(); err == nil {
			t.Errorf("%s: accepted %+v", tc.name, tc.spec)
		}
	}
}

// TestScenarioMaterialize runs the two scenario families through Materialize:
// the synthesized apps arrive annotated, and the capacity follows the
// composed footprint.
func TestScenarioMaterialize(t *testing.T) {
	m, err := Spec{Phases: "HOT:16,HSD:32,HOT:16", Policy: "hpe", Rate: 75}.Materialize(Env{})
	if err != nil {
		t.Fatalf("phases materialize: %v", err)
	}
	if len(m.Trace.Segments) != 3 || len(m.Trace.Tenants) != 0 {
		t.Errorf("phase trace has %d segments / %d tenants", len(m.Trace.Segments), len(m.Trace.Tenants))
	}
	if m.App.Pattern != workload.PatternTemporal {
		t.Errorf("phase app pattern = %v", m.App.Pattern)
	}

	m, err = Spec{Tenants: "HSD,BFS", Policy: "lru", Rate: 50, Interleave: 512}.Materialize(Env{})
	if err != nil {
		t.Fatalf("tenants materialize: %v", err)
	}
	if len(m.Trace.Tenants) != 2 {
		t.Errorf("colocated trace has %d tenant ranges, want 2", len(m.Trace.Tenants))
	}
	if m.App.Pattern != workload.PatternColocated {
		t.Errorf("colocated app pattern = %v", m.App.Pattern)
	}
}

// TestTraceSourceMaterialize captures a trace to disk and replays it through
// a "trace:<path>" spec: the materialized trace must be the file's, refs and
// annotations intact.
func TestTraceSourceMaterialize(t *testing.T) {
	src, err := Spec{Tenants: "HSD,BFS", Policy: "lru", Rate: 50}.Materialize(Env{})
	if err != nil {
		t.Fatalf("source materialize: %v", err)
	}
	var buf bytes.Buffer
	if err := src.Trace.Write(&buf); err != nil {
		t.Fatalf("write trace: %v", err)
	}
	path := filepath.Join(t.TempDir(), "colo.hpet")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	m, err := Spec{App: "trace:" + path, Policy: "lru", Rate: 50}.Materialize(Env{})
	if err != nil {
		t.Fatalf("trace materialize: %v", err)
	}
	if !reflect.DeepEqual(m.Trace.Refs, src.Trace.Refs) {
		t.Fatal("replayed trace refs differ from the captured run")
	}
	if !reflect.DeepEqual(m.Trace.Tenants, src.Trace.Tenants) {
		t.Fatal("tenant annotations lost in the capture round trip")
	}
	if m.Capacity != src.Capacity {
		t.Errorf("capacity drifted: %d vs %d", m.Capacity, src.Capacity)
	}

	if _, err := (Spec{App: "trace:" + path + ".missing", Policy: "lru", Rate: 50}).Materialize(Env{}); err == nil {
		t.Error("missing trace file accepted")
	}
}

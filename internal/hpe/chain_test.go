package hpe

import (
	"testing"

	"hpe/internal/addrspace"
)

func testChain() *setChain {
	return newSetChain(addrspace.DefaultGeometry(), 64)
}

func keys(c *setChain) []entryKey {
	var out []entryKey
	for e := c.head; e != nil; e = e.next {
		out = append(out, e.key)
	}
	return out
}

func TestTouchInsertsAtNewPartitionMRU(t *testing.T) {
	c := testChain()
	c.touch(entryKey{set: 1}, 1, 0)
	c.touch(entryKey{set: 2}, 1, 0)
	got := keys(c)
	if len(got) != 2 || got[0].set != 1 || got[1].set != 2 {
		t.Fatalf("chain order = %v", got)
	}
	for e := c.head; e != nil; e = e.next {
		if c.partitionOf(e) != PartitionNew {
			t.Fatalf("%v in %v, want new", e.key, c.partitionOf(e))
		}
	}
}

func TestPartitionsAfterRollovers(t *testing.T) {
	c := testChain()
	c.touch(entryKey{set: 1}, 1, 0) // interval 0
	c.rollover()
	c.touch(entryKey{set: 2}, 1, 0) // interval 1
	c.rollover()
	c.touch(entryKey{set: 3}, 1, 0) // interval 2
	e1, e2, e3 := c.get(entryKey{set: 1}), c.get(entryKey{set: 2}), c.get(entryKey{set: 3})
	if c.partitionOf(e1) != PartitionOld {
		t.Errorf("set 1 in %v, want old", c.partitionOf(e1))
	}
	if c.partitionOf(e2) != PartitionMiddle {
		t.Errorf("set 2 in %v, want middle", c.partitionOf(e2))
	}
	if c.partitionOf(e3) != PartitionNew {
		t.Errorf("set 3 in %v, want new", c.partitionOf(e3))
	}
	old, mid, neu := c.partitionLens()
	if old != 1 || mid != 1 || neu != 1 {
		t.Fatalf("partition lens = %d/%d/%d", old, mid, neu)
	}
}

func TestTouchMovesOldEntryToNewMRU(t *testing.T) {
	c := testChain()
	c.touch(entryKey{set: 1}, 1, 0)
	c.touch(entryKey{set: 2}, 1, 0)
	c.rollover()
	c.rollover()
	// Both are old now. Touch set 1: it must move to the tail (new MRU).
	c.touch(entryKey{set: 1}, 1, 1)
	got := keys(c)
	if got[0].set != 2 || got[1].set != 1 {
		t.Fatalf("chain order after move = %v", got)
	}
	if c.partitionOf(c.get(entryKey{set: 1})) != PartitionNew {
		t.Fatal("moved entry not in new partition")
	}
}

func TestNoMovementWithinInterval(t *testing.T) {
	c := testChain()
	c.touch(entryKey{set: 1}, 1, 0)
	c.touch(entryKey{set: 2}, 1, 0)
	// Set 1 is already in the new partition: touching it again must not
	// reorder the chain (the paper's movement-pinning rule).
	c.touch(entryKey{set: 1}, 1, 1)
	got := keys(c)
	if got[0].set != 1 || got[1].set != 2 {
		t.Fatalf("pinned entry moved: %v", got)
	}
}

func TestCounterSaturatesAtCap(t *testing.T) {
	c := testChain()
	e := c.touch(entryKey{set: 1}, 100, 0)
	if e.counter != 64 {
		t.Fatalf("counter = %d, want cap 64", e.counter)
	}
	c.touch(entryKey{set: 1}, 5, 1)
	if e.counter != 64 {
		t.Fatalf("counter after more touches = %d, want 64", e.counter)
	}
}

func TestBitVectorOnlyOnFaults(t *testing.T) {
	c := testChain()
	e := c.touch(entryKey{set: 1}, 1, 3) // fault at offset 3
	c.touch(entryKey{set: 1}, 1, -1)     // hit-style update
	if e.bitVector != 1<<3 {
		t.Fatalf("bitVector = %b, want only bit 3", e.bitVector)
	}
}

func TestUpdateExistingDropsUnknownSets(t *testing.T) {
	c := testChain()
	if got := c.updateExisting(entryKey{set: 9}, 2); got != nil {
		t.Fatal("updateExisting created an entry")
	}
	c.touch(entryKey{set: 9}, 1, 0)
	if got := c.updateExisting(entryKey{set: 9}, 2); got == nil || got.counter != 3 {
		t.Fatalf("updateExisting on existing entry = %+v", got)
	}
}

func TestOldMRUFindsBoundary(t *testing.T) {
	c := testChain()
	for i := 1; i <= 3; i++ {
		c.touch(entryKey{set: addrspace.SetID(i)}, 1, 0)
	}
	c.rollover()
	c.touch(entryKey{set: 4}, 1, 0)
	c.rollover()
	c.touch(entryKey{set: 5}, 1, 0)
	// Old partition: sets 1,2,3 (MRU of old = 3). Middle: 4. New: 5.
	if got := c.oldMRU(); got == nil || got.key.set != 3 {
		t.Fatalf("oldMRU = %v, want set 3", got)
	}
}

func TestOldMRUEmptyOldPartition(t *testing.T) {
	c := testChain()
	c.touch(entryKey{set: 1}, 1, 0)
	if c.oldMRU() != nil {
		t.Fatal("oldMRU found an entry with no old partition")
	}
	c.rollover()
	if c.oldMRU() != nil {
		t.Fatal("middle-partition entry reported as old")
	}
}

func TestRemoveMaintainsLinks(t *testing.T) {
	c := testChain()
	for i := 1; i <= 3; i++ {
		c.touch(entryKey{set: addrspace.SetID(i)}, 1, 0)
	}
	c.remove(c.get(entryKey{set: 2}))
	got := keys(c)
	if len(got) != 2 || got[0].set != 1 || got[1].set != 3 {
		t.Fatalf("after middle removal: %v", got)
	}
	c.remove(c.get(entryKey{set: 1}))
	c.remove(c.get(entryKey{set: 3}))
	if c.head != nil || c.tail != nil || c.Len() != 0 {
		t.Fatal("chain not empty after removing everything")
	}
}

func TestStampOrderingInvariant(t *testing.T) {
	// After arbitrary touches and rollovers the chain must stay sorted by
	// movedInterval — the property the partition derivation relies on.
	c := testChain()
	for step := 0; step < 500; step++ {
		set := addrspace.SetID(step * 7 % 23)
		c.touch(entryKey{set: set}, 1, step%16)
		if step%13 == 0 {
			c.rollover()
		}
		prev := uint64(0)
		for e := c.head; e != nil; e = e.next {
			if e.movedInterval < prev {
				t.Fatalf("step %d: chain not stamp-sorted", step)
			}
			prev = e.movedInterval
		}
	}
}

func TestEntryHelpers(t *testing.T) {
	e := &chainEntry{}
	if e.evictable() || e.lowestResident() != -1 {
		t.Fatal("empty entry reported evictable")
	}
	e.residentMask = 0b1010
	if !e.evictable() || e.lowestResident() != 1 {
		t.Fatalf("lowestResident = %d, want 1", e.lowestResident())
	}
	e.bitVector = 0xFFFF
	if !e.populated(16) {
		t.Fatal("full bit vector not populated")
	}
	e.bitVector = 0x5555
	if e.populated(16) {
		t.Fatal("half bit vector reported populated")
	}
}

func TestSecondaryKeysAreDistinct(t *testing.T) {
	c := testChain()
	c.touch(entryKey{set: 1}, 1, 0)
	c.touch(entryKey{set: 1, secondary: true}, 1, 1)
	if c.Len() != 2 {
		t.Fatalf("chain len = %d, want 2 (primary + secondary)", c.Len())
	}
}

package hpe

import (
	"testing"
	"testing/quick"

	"hpe/internal/addrspace"
	"hpe/internal/hir"
	"hpe/internal/policy"
	"hpe/internal/trace"
)

// The compile-time check that HPE satisfies the driver contract.
var _ policy.Policy = (*HPE)(nil)

func idealFeedConfig() Config {
	cfg := DefaultConfig()
	cfg.IdealHitFeed = true
	return cfg
}

func pageOf(set addrspace.SetID, off int) addrspace.PageID {
	return addrspace.DefaultGeometry().PageAt(set, off)
}

// faultSet faults and maps every page of a set once.
func faultSet(h *HPE, set addrspace.SetID, seq int) {
	for off := 0; off < 16; off++ {
		p := pageOf(set, off)
		h.OnFault(p, seq)
		h.OnMapped(p, seq)
	}
}

func TestHPEVictimPagesInAddressOrder(t *testing.T) {
	h := New(idealFeedConfig())
	faultSet(h, 1, 0)
	faultSet(h, 2, 16)
	// Force classification and eviction. Both sets have counter 16.
	var prev addrspace.PageID
	for i := 0; i < 16; i++ {
		v := h.SelectVictim()
		if i > 0 && v <= prev {
			t.Fatalf("victims out of address order: %v after %v", v, prev)
		}
		if addrspace.DefaultGeometry().SetOf(v) == addrspace.DefaultGeometry().SetOf(prev) || i == 0 {
			prev = v
		}
		h.OnEvicted(v)
	}
	// After draining a whole set, its entry must leave the chain.
	if h.chain.Len() != 1 {
		t.Fatalf("chain len = %d after draining one set, want 1", h.chain.Len())
	}
}

func TestHPEClassifiesOnFirstVictim(t *testing.T) {
	h := New(idealFeedConfig())
	faultSet(h, 1, 0)
	if h.Stats().Classified {
		t.Fatal("classified before first SelectVictim")
	}
	h.SelectVictim()
	st := h.Stats()
	if !st.Classified {
		t.Fatal("not classified after SelectVictim")
	}
	// One set, counter 16 → small and regular → regular → MRU-C.
	if st.Category != CategoryRegular || st.ActiveStrategy != StrategyMRUC {
		t.Fatalf("category=%v strategy=%v", st.Category, st.ActiveStrategy)
	}
}

func TestHPEManualStrategyOverride(t *testing.T) {
	cfg := idealFeedConfig()
	s := StrategyLRU
	cfg.ManualStrategy = &s
	h := New(cfg)
	faultSet(h, 1, 0)
	h.SelectVictim()
	if h.Stats().ActiveStrategy != StrategyLRU {
		t.Fatal("manual strategy not honoured")
	}
}

func TestHPEIrregularClassification(t *testing.T) {
	h := New(idealFeedConfig())
	// Create many sets with irregular counters: touch 3 pages per set.
	for s := 0; s < 20; s++ {
		for off := 0; off < 3; off++ {
			p := pageOf(addrspace.SetID(s), off)
			h.OnFault(p, 0)
			h.OnMapped(p, 0)
		}
	}
	h.SelectVictim()
	st := h.Stats()
	if st.Category != CategoryIrregular2 {
		t.Fatalf("category = %v, want irregular#2 (counters all 3)", st.Category)
	}
	if st.ActiveStrategy != StrategyLRU {
		t.Fatalf("strategy = %v, want LRU", st.ActiveStrategy)
	}
}

func TestHPEMRUCPrefersCounterEqualSetSize(t *testing.T) {
	h := New(idealFeedConfig()) // interval 64: no rollover during setup
	faultSet(h, 1, 0)           // counter 16
	faultSet(h, 2, 16)          // counter 16, boosted below
	for i := 0; i < 16; i++ {   // counter 32
		h.OnWalkHit(pageOf(2, i%16), 32)
	}
	// Push both sets into the old partition.
	h.chain.rollover()
	h.chain.rollover()
	// MRU of old = set 2 (counter 32). MRU-C must skip it and pick set 1
	// (counter == page-set size).
	v := h.SelectVictim()
	if got := addrspace.DefaultGeometry().SetOf(v); got != 1 {
		t.Fatalf("victim from set %v, want 1 (counter == set size)", got)
	}
}

func TestHPEMRUCFallsBackToMinCounter(t *testing.T) {
	h := New(idealFeedConfig())
	faultSet(h, 1, 0)
	for i := 0; i < 32; i++ { // counter 16 + 32 hits = 48
		h.OnWalkHit(pageOf(1, i%16), 1)
	}
	faultSet(h, 2, 16)
	for i := 0; i < 16; i++ { // counter 16 + 16 = 32
		h.OnWalkHit(pageOf(2, i%16), 17)
	}
	h.chain.rollover()
	h.chain.rollover()
	// Old partition: set 1 (48), set 2 (32). No counter == 16 → min = set 2.
	v := h.SelectVictim()
	if got := addrspace.DefaultGeometry().SetOf(v); got != 2 {
		t.Fatalf("victim from set %v, want 2 (minimum counter)", got)
	}
	st := h.Stats()
	if st.Searches != 1 || st.Comparisons == 0 {
		t.Fatalf("search stats = %d searches / %d comparisons", st.Searches, st.Comparisons)
	}
}

func TestHPELRUFallbackWhenOldEmpty(t *testing.T) {
	h := New(idealFeedConfig())
	faultSet(h, 1, 0)
	faultSet(h, 2, 16)
	// No rollovers: everything is in the new partition; MRU-C must fall back
	// to LRU and take the chain head (set 1).
	v := h.SelectVictim()
	if got := addrspace.DefaultGeometry().SetOf(v); got != 1 {
		t.Fatalf("victim from set %v, want 1 (LRU fallback)", got)
	}
	if h.Stats().LRUFallbacks != 1 {
		t.Fatalf("LRUFallbacks = %d, want 1", h.Stats().LRUFallbacks)
	}
	if h.Stats().MiddleOrNewEvictions != 1 {
		t.Fatalf("MiddleOrNewEvictions = %d, want 1", h.Stats().MiddleOrNewEvictions)
	}
}

func TestHPEDivisionOnEvenOddSet(t *testing.T) {
	h := New(idealFeedConfig())
	// Touch only even pages of set 5 until the counter caps at 64:
	// 8 faults + 56 hits.
	for off := 0; off < 16; off += 2 {
		p := pageOf(5, off)
		h.OnFault(p, 0)
		h.OnMapped(p, 0)
	}
	for i := 0; i < 56; i++ {
		h.OnWalkHit(pageOf(5, (i%8)*2), 1)
	}
	st := h.Stats()
	if st.Divisions != 1 {
		t.Fatalf("divisions = %d, want 1", st.Divisions)
	}
	// Odd pages must now route to the secondary entry.
	h.OnFault(pageOf(5, 1), 100)
	h.OnMapped(pageOf(5, 1), 100)
	if h.chain.get(entryKey{set: 5, secondary: true}) == nil {
		t.Fatal("odd page did not create the secondary entry")
	}
	// Even pages still route to the primary.
	k, _ := h.route(pageOf(5, 2))
	if k.secondary {
		t.Fatal("even page routed to secondary")
	}
}

func TestHPEFullyPopulatedSetNeverDivides(t *testing.T) {
	h := New(idealFeedConfig())
	faultSet(h, 7, 0) // all 16 bits set
	for i := 0; i < 48; i++ {
		h.OnWalkHit(pageOf(7, i%16), 1) // counter reaches 64
	}
	if h.Stats().Divisions != 0 {
		t.Fatalf("divisions = %d, want 0 for fully populated set", h.Stats().Divisions)
	}
}

func TestHPEDivisionHistoryReused(t *testing.T) {
	h := New(idealFeedConfig())
	// Divide set 5 with evens.
	for off := 0; off < 16; off += 2 {
		p := pageOf(5, off)
		h.OnFault(p, 0)
		h.OnMapped(p, 0)
	}
	for i := 0; i < 56; i++ {
		h.OnWalkHit(pageOf(5, (i%8)*2), 1)
	}
	// Evict every resident page; the primary entry leaves the chain.
	for off := 0; off < 16; off += 2 {
		h.OnEvicted(pageOf(5, off))
	}
	if h.chain.Len() != 0 {
		t.Fatalf("chain len = %d after draining", h.chain.Len())
	}
	// Refault an even page: history routes it to the primary tag again.
	k, _ := h.route(pageOf(5, 0))
	if k.secondary {
		t.Fatal("history lost: even page routed to secondary")
	}
	k, _ = h.route(pageOf(5, 3))
	if !k.secondary {
		t.Fatal("history lost: odd page routed to primary")
	}
	if h.Stats().Divisions != 1 {
		t.Fatalf("division count changed: %d", h.Stats().Divisions)
	}
}

func TestHPEOnHitBatch(t *testing.T) {
	cfg := DefaultConfig() // production config: hits only via batches
	h := New(cfg)
	faultSet(h, 3, 0)
	e := h.chain.get(entryKey{set: 3})
	if e.counter != 16 {
		t.Fatalf("counter = %d", e.counter)
	}
	counts := make([]uint8, 16)
	counts[0], counts[5] = 3, 2
	h.OnHitBatch([]hir.Record{{Set: 3, Counts: counts}})
	if e.counter != 21 {
		t.Fatalf("counter after batch = %d, want 21", e.counter)
	}
	// Batch for an unknown set is dropped.
	h.OnHitBatch([]hir.Record{{Set: 99, Counts: counts}})
	st := h.Stats()
	if st.HitBatches != 2 || st.HitBatchDrops != 1 {
		t.Fatalf("batch stats = %d/%d", st.HitBatches, st.HitBatchDrops)
	}
	if h.chain.get(entryKey{set: 99}) != nil {
		t.Fatal("batch created an entry for an evicted set")
	}
}

func TestHPEWalkHitIgnoredWithoutIdealFeed(t *testing.T) {
	h := New(DefaultConfig())
	faultSet(h, 3, 0)
	e := h.chain.get(entryKey{set: 3})
	h.OnWalkHit(pageOf(3, 0), 1)
	if e.counter != 16 {
		t.Fatalf("walk hit leaked into chain: counter = %d", e.counter)
	}
}

func TestHPEIntervalRollover(t *testing.T) {
	cfg := idealFeedConfig()
	cfg.IntervalFaults = 4
	h := New(cfg)
	for i := 0; i < 8; i++ {
		p := pageOf(addrspace.SetID(i), 0)
		h.OnFault(p, i)
		h.OnMapped(p, i)
	}
	if got := h.Stats().Intervals; got != 2 {
		t.Fatalf("intervals = %d after 8 faults with interval 4, want 2", got)
	}
}

func TestHPEDynamicSwitchOnWrongEvictions(t *testing.T) {
	cfg := idealFeedConfig()
	cfg.IntervalFaults = 64
	cfg.WrongEvictionThreshold = 4
	h := New(cfg)
	// Force irregular#2: sets with 3 touched pages.
	for s := 0; s < 30; s++ {
		for off := 0; off < 3; off++ {
			p := pageOf(addrspace.SetID(s), off)
			h.OnFault(p, 0)
			h.OnMapped(p, 0)
		}
	}
	h.SelectVictim() // classify: irregular#2 → LRU
	if h.Stats().ActiveStrategy != StrategyLRU {
		t.Fatal("expected LRU start")
	}
	// Evict pages and refault them immediately: wrong evictions for LRU.
	// The threshold is 4, so the fourth refault triggers the switch. (More
	// forced wrong evictions would eventually fail MRU-C too and ping-pong
	// back — the hysteresis only helps when one strategy actually works.)
	for i := 0; i < 4; i++ {
		v := h.SelectVictim()
		h.OnEvicted(v)
		h.OnFault(v, 0) // refault: hits the LRU FIFO
		h.OnMapped(v, 0)
	}
	st := h.Stats()
	if st.ActiveStrategy != StrategyMRUC {
		t.Fatalf("strategy = %v after thrashing, want switch to MRU-C", st.ActiveStrategy)
	}
	if st.Switches != 1 {
		t.Fatalf("switches = %d, want 1", st.Switches)
	}
	if st.WrongEvictions[StrategyLRU] < 4 {
		t.Fatalf("wrong evictions = %v", st.WrongEvictions)
	}
	// Timeline must show an LRU span followed by the MRU-C span.
	tl := st.Timeline
	if len(tl) != 2 || tl[0].Strategy != StrategyLRU || tl[1].Strategy != StrategyMRUC {
		t.Fatalf("timeline = %+v", tl)
	}
}

func TestHPERegularJumpGatedByFootprint(t *testing.T) {
	cfg := idealFeedConfig()
	cfg.IntervalFaults = 16
	cfg.WrongEvictionThreshold = 2
	cfg.MinOldSetsForJump = 2 // tiny so the jump is allowed
	h := New(cfg)
	for s := 1; s <= 4; s++ {
		faultSet(h, addrspace.SetID(s), 0)
	}
	h.SelectVictim() // classify regular (all counters 16), old partition = 2 sets
	st := h.Stats()
	if st.Category != CategoryRegular {
		t.Fatalf("category = %v", st.Category)
	}
	// Wrong evictions: evict then refault.
	for i := 0; i < 4; i++ {
		v := h.SelectVictim()
		h.OnEvicted(v)
		h.OnFault(v, 0)
		h.OnMapped(v, 0)
	}
	st = h.Stats()
	if st.SearchJump == 0 || len(st.Jumps) == 0 {
		t.Fatalf("regular app did not jump: %+v", st)
	}
	if st.ActiveStrategy != StrategyMRUC {
		t.Fatal("regular app must stay on MRU-C")
	}

	// Same scenario with a high footprint floor: no jump.
	cfg.MinOldSetsForJump = 1000
	h2 := New(cfg)
	for s := 1; s <= 4; s++ {
		faultSet(h2, addrspace.SetID(s), 0)
	}
	h2.SelectVictim()
	for i := 0; i < 4; i++ {
		v := h2.SelectVictim()
		h2.OnEvicted(v)
		h2.OnFault(v, 0)
		h2.OnMapped(v, 0)
	}
	if h2.Stats().SearchJump != 0 {
		t.Fatal("small-footprint regular app jumped")
	}
}

func TestHPEAdjustmentDisabled(t *testing.T) {
	cfg := idealFeedConfig()
	cfg.DynamicAdjustment = false
	cfg.WrongEvictionThreshold = 1
	h := New(cfg)
	for s := 0; s < 30; s++ {
		for off := 0; off < 3; off++ {
			p := pageOf(addrspace.SetID(s), off)
			h.OnFault(p, 0)
			h.OnMapped(p, 0)
		}
	}
	h.SelectVictim()
	for i := 0; i < 8; i++ {
		v := h.SelectVictim()
		h.OnEvicted(v)
		h.OnFault(v, 0)
		h.OnMapped(v, 0)
	}
	if h.Stats().Switches != 0 {
		t.Fatal("adjustment ran while disabled")
	}
}

func TestHPEBeatsLRUOnThrashing(t *testing.T) {
	// End-to-end behaviour check via the timing-free replay: a cyclic
	// pattern over 40 sets with memory for 30 sets. HPE (ideal hit feed)
	// must fault far less than LRU.
	g := addrspace.DefaultGeometry()
	var refs []addrspace.PageID
	for pass := 0; pass < 6; pass++ {
		for s := 0; s < 40; s++ {
			for off := 0; off < 16; off++ {
				refs = append(refs, g.PageAt(addrspace.SetID(s), off))
			}
		}
	}
	tr := trace.New("thrash", refs)
	capacity := 30 * 16
	lru := policy.Replay(tr, policy.NewLRU(), capacity)
	hpe := policy.Replay(tr, New(idealFeedConfig()), capacity)
	if lru.Faults != uint64(tr.Len()) {
		t.Fatalf("LRU faults = %d, want total thrash %d", lru.Faults, tr.Len())
	}
	if hpe.Faults*10 > lru.Faults*6 {
		t.Fatalf("HPE faults = %d, want < 60%% of LRU's %d", hpe.Faults, lru.Faults)
	}
}

func TestHPEMatchesLRUOnStreaming(t *testing.T) {
	g := addrspace.DefaultGeometry()
	var refs []addrspace.PageID
	for s := 0; s < 60; s++ {
		for off := 0; off < 16; off++ {
			refs = append(refs, g.PageAt(addrspace.SetID(s), off))
		}
	}
	tr := trace.New("stream", refs)
	capacity := 45 * 16
	lru := policy.Replay(tr, policy.NewLRU(), capacity)
	hpe := policy.Replay(tr, New(idealFeedConfig()), capacity)
	if hpe.Faults != lru.Faults {
		t.Fatalf("streaming: HPE %d faults vs LRU %d (both should be compulsory only)",
			hpe.Faults, lru.Faults)
	}
}

func TestHPEConfigValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.IntervalFaults = 0
	defer func() {
		if recover() == nil {
			t.Error("invalid config did not panic")
		}
	}()
	New(bad)
}

func TestConfigForGeometryScaling(t *testing.T) {
	g := addrspace.NewGeometry(5) // 32-page sets
	cfg := ConfigForGeometry(g, 128)
	if cfg.CounterCap != 128 || cfg.FIFODepth != 256 ||
		cfg.WrongEvictionThreshold != 32 || cfg.MinOldSetsForJump != 128 {
		t.Fatalf("derived config = %+v", cfg)
	}
}

func TestEvictionFIFO(t *testing.T) {
	f := newEvictionFIFO(3)
	f.push(1)
	f.push(2)
	f.push(3)
	if !f.contains(1) || !f.contains(3) || f.len() != 3 {
		t.Fatal("FIFO membership wrong")
	}
	f.push(4) // evicts 1
	if f.contains(1) || !f.contains(4) {
		t.Fatal("FIFO did not evict oldest")
	}
	// Duplicates: push 4 again, then push twice more; one 4 remains.
	f.push(4)
	f.push(5)
	f.push(6) // buffer: 4,5,6 — the older 4 slid out but a newer one was pushed...
	if !f.contains(4) {
		t.Fatal("duplicate handling lost a live entry")
	}
	f.push(7)
	f.push(8) // buffer: 6,7,8
	if f.contains(4) || f.contains(5) {
		t.Fatal("stale entries retained")
	}
}

func TestStrategyShare(t *testing.T) {
	s := Stats{
		Faults: 100,
		Timeline: []StrategySpan{
			{Strategy: StrategyLRU, FromFault: 0, ToFault: 25},
			{Strategy: StrategyMRUC, FromFault: 25, ToFault: 100},
		},
	}
	if got := s.StrategyShare(StrategyLRU); got != 0.25 {
		t.Fatalf("LRU share = %f", got)
	}
	if got := s.StrategyShare(StrategyMRUC); got != 0.75 {
		t.Fatalf("MRU-C share = %f", got)
	}
}

func BenchmarkHPEReplayThrashing(b *testing.B) {
	g := addrspace.DefaultGeometry()
	var refs []addrspace.PageID
	for pass := 0; pass < 4; pass++ {
		for s := 0; s < 100; s++ {
			for off := 0; off < 16; off++ {
				refs = append(refs, g.PageAt(addrspace.SetID(s), off))
			}
		}
	}
	tr := trace.New("bench", refs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		policy.Replay(tr, New(idealFeedConfig()), 75*16)
	}
}

// Property: the wrong-eviction FIFO matches a sliding-window model — a page
// is reported contained iff it is among the last `depth` pushes.
func TestEvictionFIFOModelProperty(t *testing.T) {
	f := func(pushes []uint8, depthSeed uint8) bool {
		depth := 1 + int(depthSeed%32)
		fifo := newEvictionFIFO(depth)
		var window []addrspace.PageID
		for _, raw := range pushes {
			p := addrspace.PageID(raw % 24)
			fifo.push(p)
			window = append(window, p)
			if len(window) > depth {
				window = window[1:]
			}
			if fifo.len() != len(window) {
				return false
			}
			// Membership must match the window exactly.
			inWindow := map[addrspace.PageID]bool{}
			for _, q := range window {
				inWindow[q] = true
			}
			for probe := addrspace.PageID(0); probe < 24; probe++ {
				if fifo.contains(probe) != inWindow[probe] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

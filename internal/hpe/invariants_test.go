package hpe

import (
	"math/bits"
	"math/rand"
	"testing"

	"hpe/internal/addrspace"
	"hpe/internal/policy"
	"hpe/internal/trace"
)

// checkChainInvariants validates the structural invariants the HPE design
// relies on:
//  1. the chain is sorted by movedInterval (partition derivation),
//  2. every entry is reachable from the index and vice versa,
//  3. resident pages imply bit-vector pages for primaries (a page must fault
//     before it can be resident),
//  4. counters are within [0, cap],
//  5. divided entries' masks agree with the division history.
func checkChainInvariants(t *testing.T, h *HPE) {
	t.Helper()
	c := h.chain
	prev := uint64(0)
	count := 0
	for e := c.head; e != nil; e = e.next {
		count++
		if e.movedInterval < prev {
			t.Fatal("chain not stamp-sorted")
		}
		prev = e.movedInterval
		if c.index[e.key.packed()] != e {
			t.Fatalf("entry %v not indexed", e.key)
		}
		if e.counter < 0 || e.counter > h.cfg.CounterCap {
			t.Fatalf("counter %d out of range", e.counter)
		}
		if !e.key.secondary && e.residentMask&^e.bitVector != 0 {
			t.Fatalf("entry %v resident pages %b outside faulted set %b",
				e.key, e.residentMask, e.bitVector)
		}
		if d := h.divisions[e.key.set]; d.divided {
			setMask := uint32(1<<uint(h.cfg.Geometry.SetSize())) - 1
			if e.key.secondary && e.residentMask&d.primaryMask != 0 {
				t.Fatalf("secondary %v holds primary pages", e.key)
			}
			if !e.key.secondary && e.residentMask&^d.primaryMask&setMask != 0 {
				t.Fatalf("primary %v holds secondary pages", e.key)
			}
		}
	}
	if count != len(c.index) {
		t.Fatalf("chain length %d != index size %d", count, len(c.index))
	}
}

// TestHPEInvariantsUnderRandomReplay replays randomized workloads through
// HPE and validates the chain after every phase.
func TestHPEInvariantsUnderRandomReplay(t *testing.T) {
	g := addrspace.DefaultGeometry()
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 10; trial++ {
		// Mixed pattern: streams, partial sets, revisits.
		var refs []addrspace.PageID
		sets := 20 + rng.Intn(40)
		for i := 0; i < 4000; i++ {
			s := addrspace.SetID(rng.Intn(sets))
			off := rng.Intn(16)
			if rng.Intn(3) == 0 {
				off = rng.Intn(8) * 2 // even-biased: exercises division
			}
			refs = append(refs, g.PageAt(s, off))
		}
		cfg := DefaultConfig()
		cfg.IdealHitFeed = true
		cfg.IntervalFaults = 16 + rng.Intn(64)
		cfg.WrongEvictionThreshold = 4 + rng.Intn(16)
		h := New(cfg)
		capacity := 1 + sets*16*(40+rng.Intn(40))/100
		res := policy.Replay(trace.New("rnd", refs), h, capacity)
		if res.Faults == 0 {
			t.Fatalf("trial %d: no faults", trial)
		}
		checkChainInvariants(t, h)
		st := h.Stats()
		if st.Faults != res.Faults {
			t.Fatalf("trial %d: HPE counted %d faults, driver %d", trial, st.Faults, res.Faults)
		}
	}
}

// TestHPEResidencyMatchesDriver cross-checks HPE's per-entry residency
// bookkeeping against the replay's ground truth.
func TestHPEResidencyMatchesDriver(t *testing.T) {
	g := addrspace.DefaultGeometry()
	var refs []addrspace.PageID
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 6000; i++ {
		refs = append(refs, g.PageAt(addrspace.SetID(rng.Intn(30)), rng.Intn(16)))
	}
	cfg := DefaultConfig()
	cfg.IdealHitFeed = true
	h := New(cfg)
	tr := trace.New("resi", refs)
	capacity := 300

	resident := make(map[addrspace.PageID]struct{})
	for seq, page := range tr.Refs {
		if _, ok := resident[page]; ok {
			h.OnWalkHit(page, seq)
			continue
		}
		h.OnFault(page, seq)
		if len(resident) >= capacity {
			v := h.SelectVictim()
			if _, ok := resident[v]; !ok {
				t.Fatalf("victim %v not resident", v)
			}
			delete(resident, v)
			h.OnEvicted(v)
		}
		resident[page] = struct{}{}
		h.OnMapped(page, seq)
	}
	// Sum of resident bits across entries == ground-truth residency.
	total := 0
	for e := h.chain.head; e != nil; e = e.next {
		total += bits.OnesCount32(e.residentMask)
	}
	if total != len(resident) {
		t.Fatalf("chain tracks %d resident pages, ground truth %d", total, len(resident))
	}
	checkChainInvariants(t, h)
}

// TestHPEDivisionThresholdRelaxation: a lower division threshold divides at
// least as many sets (the §V-B relaxation), never fewer.
func TestHPEDivisionThresholdRelaxation(t *testing.T) {
	g := addrspace.DefaultGeometry()
	build := func(threshold int) int {
		cfg := DefaultConfig()
		cfg.IdealHitFeed = true
		cfg.DivisionCounterThreshold = threshold
		h := New(cfg)
		// Touch even pages of 10 sets, 6 rounds: counters reach 48.
		for round := 0; round < 6; round++ {
			for s := 0; s < 10; s++ {
				for off := 0; off < 16; off += 2 {
					p := g.PageAt(addrspace.SetID(s), off)
					if round == 0 {
						h.OnFault(p, 0)
						h.OnMapped(p, 0)
					} else {
						h.OnWalkHit(p, 0)
					}
				}
			}
		}
		return h.Stats().Divisions
	}
	at64 := build(0)  // cap: counters stop at 48 → no divisions
	at48 := build(48) // relaxed: all 10 divide
	at32 := build(32)
	if at64 != 0 {
		t.Fatalf("threshold 64: %d divisions, want 0 (counters reach only 48)", at64)
	}
	if at48 != 10 || at32 != 10 {
		t.Fatalf("relaxed thresholds divided %d/%d sets, want 10/10", at48, at32)
	}
}

func TestHPEInvalidDivisionThresholdPanics(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DivisionCounterThreshold = 100 // above cap 64
	defer func() {
		if recover() == nil {
			t.Error("threshold above cap accepted")
		}
	}()
	New(cfg)
}

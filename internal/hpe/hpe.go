package hpe

import (
	"math/bits"

	"hpe/internal/addrspace"
	"hpe/internal/hir"
)

// divisionInfo is the persistent per-set division record. It doubles as the
// paper's history buffer: it survives the primary's removal from the chain,
// and because the first division's result is reused for every later life of
// the set, the recorded mask is immutable once set.
type divisionInfo struct {
	divided     bool
	primaryMask uint32 // offsets that belong to the primary page set
}

// HPE is the hierarchical page eviction policy (Section IV). It implements
// policy.Policy; the UVM driver additionally feeds it HIR drains through
// OnHitBatch.
type HPE struct {
	cfg       Config
	chain     *setChain
	divisions map[addrspace.SetID]divisionInfo
	adj       *adjuster

	classified bool
	ratios     RatioStats
	faultCount uint64

	// Stats.
	searches      uint64
	comparisons   uint64
	divisionCount int
	lruFallbacks  uint64
	middleOrNewEv uint64
	hitBatchCount uint64
	hitBatchDrops uint64
}

// New returns an HPE policy instance. It panics on an invalid config, since
// configs are build-time constants in every caller.
func New(cfg Config) *HPE {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	return &HPE{
		cfg:       cfg,
		chain:     newSetChain(cfg.Geometry, cfg.CounterCap),
		divisions: make(map[addrspace.SetID]divisionInfo),
		adj:       newAdjuster(cfg),
	}
}

// Name implements policy.Policy.
func (h *HPE) Name() string { return "HPE" }

// Config returns the policy's configuration.
func (h *HPE) Config() Config { return h.cfg }

// route resolves a page to its chain entry key, consulting the division
// history (Fig. 6): pages of an undivided set, and divided-set pages inside
// the recorded primary mask, use the primary tag; the rest use the secondary
// tag.
func (h *HPE) route(p addrspace.PageID) (entryKey, int) {
	set := h.cfg.Geometry.SetOf(p)
	off := h.cfg.Geometry.Offset(p)
	d := h.divisions[set]
	if d.divided && d.primaryMask&(1<<uint(off)) == 0 {
		return entryKey{set: set, secondary: true}, off
	}
	return entryKey{set: set, secondary: false}, off
}

// checkDivision applies §IV-C: the first time an undivided primary's counter
// reaches the cap with an incomplete bit vector, the set is divided and the
// bit vector becomes the immutable primary mask.
func (h *HPE) checkDivision(e *chainEntry) {
	if h.cfg.DisableDivision || e.key.secondary || e.divided ||
		e.counter < h.cfg.divisionThreshold() {
		return
	}
	d := h.divisions[e.key.set]
	if d.divided {
		e.divided = true // first-division result reused
		return
	}
	e.divided = true // the check runs once per entry life
	// The primary keeps the pages that have been touched — plus any page the
	// driver migrated speculatively (prefetch): those are resident under this
	// entry and must not route to a secondary that doesn't track them.
	mask := e.bitVector | e.residentMask
	if bits.OnesCount32(mask) >= h.cfg.Geometry.SetSize() {
		return // fully populated: stays one page set
	}
	h.divisions[e.key.set] = divisionInfo{divided: true, primaryMask: mask}
	h.divisionCount++
}

// OnWalkHit implements policy.Policy. In the production configuration HPE
// never sees walk hits directly (they arrive batched via OnHitBatch); with
// IdealHitFeed the hit updates the chain immediately.
func (h *HPE) OnWalkHit(p addrspace.PageID, seq int) {
	if !h.cfg.IdealHitFeed {
		return
	}
	k, _ := h.route(p)
	if e := h.chain.updateExisting(k, 1); e != nil {
		h.checkDivision(e)
	}
}

// OnHitBatch consumes one HIR drain: each record's counts are split between
// the set's primary and secondary entries per the division history, and the
// per-entry sums update counters and recency. Records for sets whose entries
// have left the chain are dropped (their information is lost, as the paper
// accepts for its lossy HIR channel).
func (h *HPE) OnHitBatch(recs []hir.Record) {
	h.hitBatchCount++
	for _, r := range recs {
		d := h.divisions[r.Set]
		var primarySum, secondarySum int
		for off, c := range r.Counts {
			if c == 0 {
				continue
			}
			if d.divided && d.primaryMask&(1<<uint(off)) == 0 {
				secondarySum += int(c)
			} else {
				primarySum += int(c)
			}
		}
		if primarySum > 0 {
			if e := h.chain.updateExisting(entryKey{set: r.Set}, primarySum); e != nil {
				h.checkDivision(e)
			} else {
				h.hitBatchDrops++
			}
		}
		if secondarySum > 0 {
			if e := h.chain.updateExisting(entryKey{set: r.Set, secondary: true}, secondarySum); e == nil {
				h.hitBatchDrops++
			}
		}
	}
}

// OnFault implements policy.Policy: check the wrong-eviction buffers, update
// the chain (counter + bit vector + movement), run the division check, and
// handle interval rollover.
func (h *HPE) OnFault(p addrspace.PageID, seq int) {
	if h.adj.onFault(p) && h.classified {
		h.adj.maybeAdjust(h.chain.curInterval, h.faultCount)
	}
	h.faultCount++
	k, off := h.route(p)
	e := h.chain.touch(k, 1, off)
	h.checkDivision(e)
	if h.faultCount%uint64(h.cfg.IntervalFaults) == 0 {
		h.adj.onIntervalEnd()
		h.chain.rollover()
	}
}

// OnMapped implements policy.Policy: mark the page resident in its entry.
func (h *HPE) OnMapped(p addrspace.PageID, seq int) {
	k, off := h.route(p)
	e := h.chain.get(k)
	if e == nil {
		// Defensive: the entry vanished between fault and map (only possible
		// if the driver evicted the whole set in between).
		e = h.chain.touch(k, 0, off)
	}
	e.residentMask |= 1 << uint(off)
}

// classify runs the one-time statistics classification at the first
// memory-full moment (the first SelectVictim call).
func (h *HPE) classify() {
	h.ratios = computeRatios(h.chain)
	cat := Classify(h.ratios, h.cfg.Ratio1Threshold, h.cfg.Ratio2Threshold)
	strat := initialStrategy(cat)
	if h.cfg.ManualStrategy != nil {
		strat = *h.cfg.ManualStrategy
	}
	oldLen, _, _ := h.chain.partitionLens()
	h.adj.start(cat, strat, oldLen, h.chain.curInterval, h.faultCount)
	h.classified = true
}

// SelectVictim implements policy.Policy: pick a victim page set per the
// global mechanism (§IV-D), then evict its lowest-addressed resident page.
func (h *HPE) SelectVictim() addrspace.PageID {
	if !h.classified {
		h.classify()
	}
	var e *chainEntry
	if h.adj.active == StrategyMRUC {
		e = h.selectMRUC()
	}
	if e == nil {
		e = h.selectLRU()
	}
	if e == nil {
		panic("hpe: SelectVictim found no evictable page set")
	}
	if h.chain.partitionOf(e) != PartitionOld {
		h.middleOrNewEv++
	}
	off := e.lowestResident()
	return h.cfg.Geometry.PageAt(e.key.set, off)
}

// selectLRU walks from the chain head (globally least recent) to the first
// entry with a resident page. Selecting from the old partition first is
// automatic: the head is in the oldest non-empty partition.
func (h *HPE) selectLRU() *chainEntry {
	for e := h.chain.head; e != nil; e = e.next {
		if e.evictable() {
			return e
		}
	}
	return nil
}

// selectMRUC implements the MRU-C strategy: starting from the MRU end of
// the old partition (pushed toward LRU by the accumulated search jump),
// find a page set whose counter equals the page-set size; if none exists,
// take the minimum-counter set. Returns nil when the old partition has no
// evictable entry, in which case the caller falls back to LRU over the
// middle/new partitions.
func (h *HPE) selectMRUC() *chainEntry {
	start := h.chain.oldMRU()
	if start == nil {
		h.lruFallbacks++
		return nil
	}
	for i := 0; i < h.adj.searchJump && start.prev != nil; i++ {
		start = start.prev
	}
	h.searches++
	setSize := h.cfg.Geometry.SetSize()
	// Pass 1: a set whose counter equals the page-set size.
	for e := start; e != nil; e = e.prev {
		h.comparisons++
		if e.counter == setSize && e.evictable() {
			return e
		}
	}
	// Pass 2: the minimum-counter set (ties resolved toward the MRU side).
	var best *chainEntry
	for e := start; e != nil; e = e.prev {
		h.comparisons++
		if !e.evictable() {
			continue
		}
		if best == nil || e.counter < best.counter {
			best = e
		}
	}
	if best == nil {
		h.lruFallbacks++
	}
	return best
}

// OnEvicted implements policy.Policy: clear residency, record the eviction
// in the active strategy's FIFO, and drop the entry from the chain once all
// of its pages are gone.
func (h *HPE) OnEvicted(p addrspace.PageID) {
	h.adj.recordEviction(p)
	k, off := h.route(p)
	e := h.chain.get(k)
	if e == nil {
		return
	}
	e.residentMask &^= 1 << uint(off)
	if e.residentMask == 0 {
		h.chain.remove(e)
	}
}

package hpe

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"hpe/internal/addrspace"
)

func TestClassifyTableIII(t *testing.T) {
	cases := []struct {
		name   string
		ratio1 float64
		ratio2 float64
		want   Category
	}{
		{"small regular counters", 0.1, 0.5, CategoryRegular},
		{"ratio1 at threshold", 0.3, 1.9, CategoryRegular},
		{"large regular counters", 0.2, 2.0, CategoryIrregular1},
		{"ratio2 well above", 0.0, 10, CategoryIrregular1},
		{"irregular counters", 0.31, 0, CategoryIrregular2},
		{"irregular dominates ratio2", 5, 100, CategoryIrregular2},
		{"infinite ratio1", math.Inf(1), 0, CategoryIrregular2},
		{"infinite ratio2", 0.1, math.Inf(1), CategoryIrregular1},
	}
	for _, c := range cases {
		got := Classify(RatioStats{Ratio1: c.ratio1, Ratio2: c.ratio2}, 0.3, 2.0)
		if got != c.want {
			t.Errorf("%s: Classify = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestComputeRatiosCensus(t *testing.T) {
	c := testChain()
	// Counters: 16 (small reg), 32 (small reg), 48 (large reg), 64 (large
	// reg), 5 (irregular), 20 (irregular: not divisible by 16).
	for i, cnt := range []int{16, 32, 48, 64, 5, 20} {
		c.touch(entryKey{set: addrspace.SetID(i)}, cnt, 0)
	}
	s := computeRatios(c)
	if s.Regular != 4 || s.Irregular != 2 {
		t.Fatalf("regular=%d irregular=%d", s.Regular, s.Irregular)
	}
	if s.SmallRegular != 2 || s.LargeRegular != 2 {
		t.Fatalf("small=%d large=%d", s.SmallRegular, s.LargeRegular)
	}
	if s.Ratio1 != 0.5 || s.Ratio2 != 1.0 {
		t.Fatalf("ratio1=%f ratio2=%f", s.Ratio1, s.Ratio2)
	}
}

func TestComputeRatiosEmptyChain(t *testing.T) {
	s := computeRatios(testChain())
	if s.Ratio1 != 0 || s.Ratio2 != 0 {
		t.Fatalf("empty chain ratios = %f, %f", s.Ratio1, s.Ratio2)
	}
	if Classify(s, 0.3, 2) != CategoryRegular {
		t.Fatal("empty chain should classify regular (degenerate)")
	}
}

func TestComputeRatiosAllIrregular(t *testing.T) {
	c := testChain()
	c.touch(entryKey{set: 1}, 7, 0)
	s := computeRatios(c)
	if !math.IsInf(s.Ratio1, 1) {
		t.Fatalf("ratio1 = %f, want +Inf", s.Ratio1)
	}
	if Classify(s, 0.3, 2) != CategoryIrregular2 {
		t.Fatal("all-irregular should classify irregular#2")
	}
}

func TestInitialStrategy(t *testing.T) {
	if initialStrategy(CategoryRegular) != StrategyMRUC {
		t.Fatal("regular should start with MRU-C")
	}
	if initialStrategy(CategoryIrregular1) != StrategyLRU ||
		initialStrategy(CategoryIrregular2) != StrategyLRU {
		t.Fatal("irregular categories should start with LRU")
	}
}

func TestStringers(t *testing.T) {
	for _, s := range []string{
		StrategyLRU.String(), StrategyMRUC.String(),
		CategoryRegular.String(), CategoryIrregular1.String(),
		CategoryIrregular2.String(), CategoryUnknown.String(),
		PartitionOld.String(), PartitionMiddle.String(), PartitionNew.String(),
	} {
		if s == "" {
			t.Fatal("empty stringer output")
		}
	}
	if StrategyMRUC.String() != "MRU-C" || CategoryIrregular1.String() != "irregular#1" {
		t.Fatal("paper names not used")
	}
}

// TestRatioStatsWireRoundTrip pins the wire-safe ratio encoding: +Inf —
// which encoding/json rejects as a plain float — must survive a marshal /
// unmarshal cycle exactly, and finite ratios must stay plain JSON numbers.
func TestRatioStatsWireRoundTrip(t *testing.T) {
	in := RatioStats{Regular: 3, Irregular: 1, SmallRegular: 0, LargeRegular: 2,
		Ratio1: 1.0 / 3.0, Ratio2: math.Inf(1)}
	raw, err := json.Marshal(in)
	if err != nil {
		t.Fatalf("marshal with +Inf ratio: %v", err)
	}
	if !strings.Contains(string(raw), `"Ratio2":"+Inf"`) {
		t.Fatalf("non-finite ratio not encoded as sentinel: %s", raw)
	}
	if strings.Contains(string(raw), `"Ratio1":"`) {
		t.Fatalf("finite ratio left the plain-number encoding: %s", raw)
	}
	var out RatioStats
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if out != in {
		t.Fatalf("round trip: got %+v, want %+v", out, in)
	}
	if err := json.Unmarshal([]byte(`{"Ratio1":"bogus"}`), &out); err == nil {
		t.Fatal("unknown ratio sentinel accepted")
	}
}

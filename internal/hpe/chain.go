package hpe

import (
	"fmt"
	"math/bits"

	"hpe/internal/addrspace"
)

// Partition identifies one of the page-set chain's three recency partitions
// (Fig. 5).
type Partition int

const (
	// PartitionOld holds sets not referenced in the last or current interval.
	PartitionOld Partition = iota
	// PartitionMiddle holds sets referenced in the last interval.
	PartitionMiddle
	// PartitionNew holds sets referenced in the current interval.
	PartitionNew
)

// String names the partition.
func (p Partition) String() string {
	switch p {
	case PartitionOld:
		return "old"
	case PartitionMiddle:
		return "middle"
	case PartitionNew:
		return "new"
	default:
		return fmt.Sprintf("Partition(%d)", int(p))
	}
}

// entryKey identifies a chain entry: the page-set address plus whether this
// is the secondary half of a divided set (primary and secondary "have
// different tags", §IV-C).
type entryKey struct {
	set       addrspace.SetID
	secondary bool
}

// packed interns the key into one word (set<<1 | secondary) so the chain
// index uses the runtime's uint64 fast path instead of hashing a struct.
func (k entryKey) packed() uint64 {
	v := uint64(k.set) << 1
	if k.secondary {
		v |= 1
	}
	return v
}

func (k entryKey) String() string {
	if k.secondary {
		return fmt.Sprintf("%v/secondary", k.set)
	}
	return k.set.String()
}

// chainEntry is one page-set chain entry: tag, saturating counter, bit
// vector, divided flag (Fig. 5), plus the residency mask HPE needs to drain
// victims page by page and the interval stamp that encodes partition
// membership.
type chainEntry struct {
	key          entryKey
	counter      int
	bitVector    uint32 // offsets that have page-faulted (faults only, §IV-C)
	residentMask uint32 // offsets currently resident in device memory
	divided      bool

	// movedInterval is the interval in which the entry was last inserted or
	// moved into the new partition. Because every (re)insertion appends at
	// the tail with the then-current interval number, the chain is always
	// ordered by this stamp — so the paper's P1/P2 partition pointers are
	// equivalent to stamp thresholds, which is how we implement them.
	movedInterval uint64

	prev, next *chainEntry
}

// setChain is the page-set chain of Fig. 5: a doubly-linked list ordered
// head = LRU ... tail = MRU, with the three partitions derived from interval
// stamps.
type setChain struct {
	geometry    addrspace.Geometry
	counterCap  int
	head, tail  *chainEntry
	index       map[uint64]*chainEntry // packed entryKey → entry
	curInterval uint64
}

func newSetChain(g addrspace.Geometry, counterCap int) *setChain {
	return &setChain{
		geometry:   g,
		counterCap: counterCap,
		index:      make(map[uint64]*chainEntry),
	}
}

// Len returns the number of chain entries.
func (c *setChain) Len() int { return len(c.index) }

// partitionOf derives the entry's partition from its stamp.
func (c *setChain) partitionOf(e *chainEntry) Partition {
	switch {
	case e.movedInterval == c.curInterval:
		return PartitionNew
	case e.movedInterval+1 == c.curInterval:
		return PartitionMiddle
	default:
		return PartitionOld
	}
}

// rollover advances the interval: the new partition becomes the middle, the
// middle joins the old (the paper's P1 ← P2, P2 ← tail pointer update).
func (c *setChain) rollover() { c.curInterval++ }

func (c *setChain) get(k entryKey) *chainEntry { return c.index[k.packed()] }

// appendTail links e at the MRU position.
func (c *setChain) appendTail(e *chainEntry) {
	e.prev, e.next = c.tail, nil
	if c.tail != nil {
		c.tail.next = e
	} else {
		c.head = e
	}
	c.tail = e
}

func (c *setChain) unlink(e *chainEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// remove deletes the entry from the chain entirely (all its pages evicted).
func (c *setChain) remove(e *chainEntry) {
	c.unlink(e)
	delete(c.index, e.key.packed())
}

// touch applies one reference event to the chain (Fig. 6): find or create
// the entry for k, bump its counter by inc (saturating), set the bit vector
// on faults, and move the entry to the MRU position of the new partition —
// unless it is already in the new partition, in which case it stays put
// ("within an interval, once a page set has been placed into the new
// partition ... following touches will not trigger its movement").
// faultOffset is the faulting page's offset within the set, or -1 for a
// hit-batch update. Returns the entry.
func (c *setChain) touch(k entryKey, inc, faultOffset int) *chainEntry {
	pk := k.packed()
	e := c.index[pk]
	if e == nil {
		e = &chainEntry{key: k, movedInterval: c.curInterval}
		c.index[pk] = e
		c.appendTail(e)
	} else if c.partitionOf(e) != PartitionNew {
		c.unlink(e)
		e.movedInterval = c.curInterval
		c.appendTail(e)
	}
	e.counter += inc
	if e.counter > c.counterCap {
		e.counter = c.counterCap
	}
	if faultOffset >= 0 {
		e.bitVector |= 1 << uint(faultOffset)
	}
	return e
}

// updateExisting is the hit-batch variant of touch: it updates and moves the
// entry only if it already exists (hit information for sets evicted before
// the drain is dropped, mirroring the HIR's lossy nature).
func (c *setChain) updateExisting(k entryKey, inc int) *chainEntry {
	if c.index[k.packed()] == nil {
		return nil
	}
	return c.touch(k, inc, -1)
}

// oldMRU returns the MRU-most entry of the old partition, or nil when the
// old partition is empty. Because the chain is stamp-ordered, this is found
// by walking backward from the tail past the new and middle partitions.
func (c *setChain) oldMRU() *chainEntry {
	for e := c.tail; e != nil; e = e.prev {
		if c.partitionOf(e) == PartitionOld {
			return e
		}
	}
	return nil
}

// partitionLens counts entries per partition (O(n); used for stats and the
// first-full old-partition census).
func (c *setChain) partitionLens() (old, middle, new int) {
	for e := c.head; e != nil; e = e.next {
		switch c.partitionOf(e) {
		case PartitionOld:
			old++
		case PartitionMiddle:
			middle++
		default:
			new++
		}
	}
	return
}

// evictable reports whether the entry has at least one resident page.
func (e *chainEntry) evictable() bool { return e.residentMask != 0 }

// lowestResident returns the lowest offset with a resident page; the paper
// drains a victim set's pages in address order.
func (e *chainEntry) lowestResident() int {
	if e.residentMask == 0 {
		return -1
	}
	return bits.TrailingZeros32(e.residentMask)
}

// populated reports whether every page of the set has faulted at least once.
func (e *chainEntry) populated(setSize int) bool {
	return bits.OnesCount32(e.bitVector) >= setSize
}

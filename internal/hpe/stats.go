package hpe

// Stats is a snapshot of HPE's internal bookkeeping, feeding the paper's
// overhead and adjustment analyses (Figs. 9, 13, 14 and §V-C).
type Stats struct {
	// Classified reports whether the one-time classification has run (it
	// runs when the GPU memory first fills; tiny workloads may finish
	// without it).
	Classified bool
	// Category is the classification outcome.
	Category Category
	// Ratios carries ratio₁/ratio₂ and the underlying counter census
	// (Fig. 9 data).
	Ratios RatioStats
	// ActiveStrategy is the strategy in force at snapshot time.
	ActiveStrategy Strategy
	// Faults is the number of page faults observed.
	Faults uint64
	// Intervals is the number of completed intervals.
	Intervals uint64

	// Searches and Comparisons cover MRU-C victim searches only; their
	// ratio MeanComparisons is the Fig. 14 metric.
	Searches        uint64
	Comparisons     uint64
	MeanComparisons float64

	// Divisions counts page sets divided (§IV-C); NW and MVT are the only
	// catalog applications expected to divide.
	Divisions int
	// Switches counts strategy switches; Jumps lists the fault numbers at
	// which the MRU-C search point jumped (Fig. 13 events).
	Switches int
	Jumps    []uint64
	// SearchJump is the accumulated search-point offset.
	SearchJump int
	// Timeline is the per-strategy execution breakdown (Fig. 13).
	Timeline []StrategySpan
	// WrongEvictions is the cumulative wrong-eviction count per strategy,
	// indexed by Strategy.
	WrongEvictions [2]int
	// OldSetsAtFirstFull is the old-partition census that gates the
	// regular-application jump.
	OldSetsAtFirstFull int

	// ChainLen is the current page-set chain length; ChainOld/Middle/New
	// split it by partition.
	ChainLen                        int
	ChainOld, ChainMiddle, ChainNew int

	// LRUFallbacks counts MRU-C selections that fell back to LRU because the
	// old partition was empty; MiddleOrNewEvictions counts victims taken
	// outside the old partition.
	LRUFallbacks         uint64
	MiddleOrNewEvictions uint64

	// HitBatches and HitBatchDrops count OnHitBatch calls and records
	// dropped because their set had left the chain.
	HitBatches    uint64
	HitBatchDrops uint64
}

// StrategyShare returns the fraction of strategy-managed time (faults after
// the one-time classification) spent under the given strategy — the Fig. 13
// horizontal bars. Shares over the active strategies sum to 1.
func (s Stats) StrategyShare(strat Strategy) float64 {
	var covered, total uint64
	for _, span := range s.Timeline {
		if span.ToFault <= span.FromFault {
			continue
		}
		length := span.ToFault - span.FromFault
		total += length
		if span.Strategy == strat {
			covered += length
		}
	}
	if total == 0 {
		return 0
	}
	return float64(covered) / float64(total)
}

// Stats captures a snapshot.
func (h *HPE) Stats() Stats {
	old, middle, neu := h.chain.partitionLens()
	s := Stats{
		Classified:           h.classified,
		Category:             h.adj.category,
		Ratios:               h.ratios,
		ActiveStrategy:       h.adj.active,
		Faults:               h.faultCount,
		Intervals:            h.chain.curInterval,
		Searches:             h.searches,
		Comparisons:          h.comparisons,
		Divisions:            h.divisionCount,
		Switches:             h.adj.switches,
		Jumps:                append([]uint64(nil), h.adj.jumps...),
		SearchJump:           h.adj.searchJump,
		Timeline:             h.adj.timeline(h.faultCount),
		WrongEvictions:       h.adj.wrongTotal,
		OldSetsAtFirstFull:   h.adj.oldSetsAtFirstFull,
		ChainLen:             h.chain.Len(),
		ChainOld:             old,
		ChainMiddle:          middle,
		ChainNew:             neu,
		LRUFallbacks:         h.lruFallbacks,
		MiddleOrNewEvictions: h.middleOrNewEv,
		HitBatches:           h.hitBatchCount,
		HitBatchDrops:        h.hitBatchDrops,
	}
	if !h.classified {
		s.Category = CategoryUnknown
	}
	if h.searches > 0 {
		s.MeanComparisons = float64(h.comparisons) / float64(h.searches)
	}
	return s
}

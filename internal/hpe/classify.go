package hpe

import "math"

// RatioStats carries the classification statistics of §IV-D, computed over
// the page-set chain when the GPU memory first fills.
type RatioStats struct {
	// Regular / Irregular / SmallRegular / LargeRegular count page sets by
	// counter type (definitions 1–4 of §IV-D).
	Regular      int
	Irregular    int
	SmallRegular int
	LargeRegular int
	// Ratio1 = irregular / regular; Ratio2 = large-and-regular /
	// small-and-regular. A zero denominator with a non-zero numerator yields
	// +Inf; 0/0 yields 0.
	Ratio1 float64
	Ratio2 float64
}

func ratio(num, den int) float64 {
	if den == 0 {
		if num == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return float64(num) / float64(den)
}

// computeRatios traverses the chain and buckets every entry's counter:
// regular counters are divisible by the page-set size; small-and-regular
// equal 1× or 2× the set size; large-and-regular equal 3× or 4×.
func computeRatios(c *setChain) RatioStats {
	setSize := c.geometry.SetSize()
	var s RatioStats
	for e := c.head; e != nil; e = e.next {
		cnt := e.counter
		if cnt%setSize == 0 && cnt > 0 {
			s.Regular++
			switch cnt {
			case setSize, 2 * setSize:
				s.SmallRegular++
			case 3 * setSize, 4 * setSize:
				s.LargeRegular++
			}
		} else {
			s.Irregular++
		}
	}
	s.Ratio1 = ratio(s.Irregular, s.Regular)
	s.Ratio2 = ratio(s.LargeRegular, s.SmallRegular)
	return s
}

// Classify applies Table III to the ratio statistics:
//
//	regular      ratio₁ ≤ threshold, ratio₂ < 2
//	irregular#1  ratio₁ ≤ threshold, ratio₂ ≥ 2
//	irregular#2  ratio₁ > threshold
func Classify(s RatioStats, ratio1Threshold, ratio2Threshold float64) Category {
	if s.Ratio1 > ratio1Threshold {
		return CategoryIrregular2
	}
	if s.Ratio2 >= ratio2Threshold {
		return CategoryIrregular1
	}
	return CategoryRegular
}

// initialStrategy returns the eviction strategy each category starts with
// (§IV-D): MRU-C for regular applications, LRU for both irregular classes.
func initialStrategy(c Category) Strategy {
	if c == CategoryRegular {
		return StrategyMRUC
	}
	return StrategyLRU
}

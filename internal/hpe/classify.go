package hpe

import (
	"encoding/json"
	"fmt"
	"math"
)

// RatioStats carries the classification statistics of §IV-D, computed over
// the page-set chain when the GPU memory first fills.
type RatioStats struct {
	// Regular / Irregular / SmallRegular / LargeRegular count page sets by
	// counter type (definitions 1–4 of §IV-D).
	Regular      int
	Irregular    int
	SmallRegular int
	LargeRegular int
	// Ratio1 = irregular / regular; Ratio2 = large-and-regular /
	// small-and-regular. A zero denominator with a non-zero numerator yields
	// +Inf; 0/0 yields 0.
	Ratio1 float64
	Ratio2 float64
}

// wireRatio is the JSON form of a classification ratio. Ratio2 is +Inf for
// any workload with large-regular but no small-regular sets (NW at low
// rates, for one), and encoding/json rejects non-finite numbers outright —
// without this wrapper such a result cannot travel over /v1/runs at all.
// Non-finite values encode as the strings "+Inf"/"-Inf"/"NaN"; finite values
// stay plain numbers, so the wire form is unchanged wherever it worked
// before.
type wireRatio float64

func (r wireRatio) MarshalJSON() ([]byte, error) {
	f := float64(r)
	switch {
	case math.IsInf(f, 1):
		return []byte(`"+Inf"`), nil
	case math.IsInf(f, -1):
		return []byte(`"-Inf"`), nil
	case math.IsNaN(f):
		return []byte(`"NaN"`), nil
	}
	return json.Marshal(f)
}

func (r *wireRatio) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		switch s {
		case "+Inf":
			*r = wireRatio(math.Inf(1))
		case "-Inf":
			*r = wireRatio(math.Inf(-1))
		case "NaN":
			*r = wireRatio(math.NaN())
		default:
			return fmt.Errorf("hpe: unknown ratio sentinel %q", s)
		}
		return nil
	}
	var f float64
	if err := json.Unmarshal(b, &f); err != nil {
		return err
	}
	*r = wireRatio(f)
	return nil
}

// wireRatioStats mirrors RatioStats field for field with wire-safe ratios.
type wireRatioStats struct {
	Regular      int
	Irregular    int
	SmallRegular int
	LargeRegular int
	Ratio1       wireRatio
	Ratio2       wireRatio
}

// MarshalJSON encodes the ratios wire-safely (see wireRatio).
func (s RatioStats) MarshalJSON() ([]byte, error) {
	return json.Marshal(wireRatioStats{
		Regular: s.Regular, Irregular: s.Irregular,
		SmallRegular: s.SmallRegular, LargeRegular: s.LargeRegular,
		Ratio1: wireRatio(s.Ratio1), Ratio2: wireRatio(s.Ratio2),
	})
}

// UnmarshalJSON is the inverse of MarshalJSON, accepting both the sentinel
// strings and plain numbers.
func (s *RatioStats) UnmarshalJSON(b []byte) error {
	var w wireRatioStats
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	*s = RatioStats{
		Regular: w.Regular, Irregular: w.Irregular,
		SmallRegular: w.SmallRegular, LargeRegular: w.LargeRegular,
		Ratio1: float64(w.Ratio1), Ratio2: float64(w.Ratio2),
	}
	return nil
}

func ratio(num, den int) float64 {
	if den == 0 {
		if num == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return float64(num) / float64(den)
}

// computeRatios traverses the chain and buckets every entry's counter:
// regular counters are divisible by the page-set size; small-and-regular
// equal 1× or 2× the set size; large-and-regular equal 3× or 4×.
func computeRatios(c *setChain) RatioStats {
	setSize := c.geometry.SetSize()
	var s RatioStats
	for e := c.head; e != nil; e = e.next {
		cnt := e.counter
		if cnt%setSize == 0 && cnt > 0 {
			s.Regular++
			switch cnt {
			case setSize, 2 * setSize:
				s.SmallRegular++
			case 3 * setSize, 4 * setSize:
				s.LargeRegular++
			}
		} else {
			s.Irregular++
		}
	}
	s.Ratio1 = ratio(s.Irregular, s.Regular)
	s.Ratio2 = ratio(s.LargeRegular, s.SmallRegular)
	return s
}

// Classify applies Table III to the ratio statistics:
//
//	regular      ratio₁ ≤ threshold, ratio₂ < 2
//	irregular#1  ratio₁ ≤ threshold, ratio₂ ≥ 2
//	irregular#2  ratio₁ > threshold
func Classify(s RatioStats, ratio1Threshold, ratio2Threshold float64) Category {
	if s.Ratio1 > ratio1Threshold {
		return CategoryIrregular2
	}
	if s.Ratio2 >= ratio2Threshold {
		return CategoryIrregular1
	}
	return CategoryRegular
}

// initialStrategy returns the eviction strategy each category starts with
// (§IV-D): MRU-C for regular applications, LRU for both irregular classes.
func initialStrategy(c Category) Strategy {
	if c == CategoryRegular {
		return StrategyMRUC
	}
	return StrategyLRU
}

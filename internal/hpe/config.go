// Package hpe implements the paper's contribution: the Hierarchical Page
// Eviction policy (Section IV). HPE manages a software page-set chain with
// three recency partitions (old / middle / new), classifies the running
// application from page-set counter statistics, selects an eviction strategy
// per category (MRU-C for regular applications, LRU otherwise), and adjusts
// the strategy dynamically when wrong evictions accumulate. Page-walk hit
// information reaches it in batches drained from the HIR cache.
package hpe

import (
	"fmt"

	"hpe/internal/addrspace"
)

// Strategy names an eviction strategy within HPE.
type Strategy int

const (
	// StrategyLRU selects the least-recently-used page set (the chain head).
	StrategyLRU Strategy = iota
	// StrategyMRUC is MRU-counter-based selection: search from the MRU end
	// of the old partition for a set whose counter equals the page-set size,
	// falling back to the minimum-counter set.
	StrategyMRUC
)

// String returns the paper's name for the strategy.
func (s Strategy) String() string {
	switch s {
	case StrategyLRU:
		return "LRU"
	case StrategyMRUC:
		return "MRU-C"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Category is the statistics-based application classification (Table III).
type Category int

const (
	// CategoryUnknown means classification has not happened yet (it runs
	// once, when the GPU memory first fills).
	CategoryUnknown Category = iota
	// CategoryRegular: most page sets have a small and regular counter.
	CategoryRegular
	// CategoryIrregular1: most page sets have a large and regular counter.
	CategoryIrregular1
	// CategoryIrregular2: most page sets have an irregular counter.
	CategoryIrregular2
)

// String returns the paper's name for the category.
func (c Category) String() string {
	switch c {
	case CategoryUnknown:
		return "unknown"
	case CategoryRegular:
		return "regular"
	case CategoryIrregular1:
		return "irregular#1"
	case CategoryIrregular2:
		return "irregular#2"
	default:
		return fmt.Sprintf("Category(%d)", int(c))
	}
}

// Config parameterises HPE. DefaultConfig returns the paper's defaults; the
// sensitivity studies (Figs. 7–8, §V-A) vary individual fields.
type Config struct {
	// Geometry defines the page-set size (default 16 pages).
	Geometry addrspace.Geometry
	// IntervalFaults is the interval length in page faults (default 64).
	IntervalFaults int
	// CounterCap is the page-set saturating counter limit (default 64,
	// i.e. 4× the page-set size).
	CounterCap int
	// Ratio1Threshold is the classification threshold on ratio₁ (default 0.3).
	Ratio1Threshold float64
	// Ratio2Threshold is the classification threshold on ratio₂ (default 2).
	Ratio2Threshold float64
	// FIFODepth is the per-strategy wrong-eviction buffer depth (default
	// 128 = two intervals of evictions).
	FIFODepth int
	// WrongEvictionThreshold triggers dynamic adjustment (default 16 = the
	// page-set size).
	WrongEvictionThreshold int
	// SearchJumpDistance is how far the MRU-C search point jumps on a
	// regular-application adjustment (default 16 page sets).
	SearchJumpDistance int
	// MinOldSetsForJump: regular applications whose old partition held fewer
	// sets than this when memory first filled never jump (default 64 = 4×
	// the page-set size).
	MinOldSetsForJump int
	// DynamicAdjustment enables Algorithm 1 (default true; the sensitivity
	// studies of Figs. 7–8 run with it off).
	DynamicAdjustment bool
	// ManualStrategy, when non-nil, bypasses classification entirely and
	// pins the eviction strategy — the paper's sensitivity-test methodology
	// ("we turned off dynamic adjustment and selected an appropriate
	// eviction strategy for each application manually").
	ManualStrategy *Strategy
	// DisableDivision turns off page-set division (§IV-C) for ablation: the
	// NW-style even/odd sets stay whole and are evicted as one unit.
	DisableDivision bool
	// DivisionCounterThreshold is the saturating-counter value at which the
	// division check runs. 0 means the counter cap (the paper's default).
	// Lower values implement the paper's "relaxing the division requirement"
	// remark (§V-B): more sets divide, which the paper notes improves NW.
	DivisionCounterThreshold int
	// IdealHitFeed routes page-walk hits into the chain directly, without
	// HIR batching — the "ideal model where page walk hit information is
	// transferred to the GPU driver directly" used for the Figs. 7–8
	// sensitivity tests. The production configuration leaves this false and
	// feeds hits through OnHitBatch.
	IdealHitFeed bool
}

// DefaultConfig returns the paper's published parameter set (§V-A summary):
// page-set size 16, interval 64, ratio₁ threshold 0.3, FIFO depth 128,
// wrong-eviction threshold 16.
func DefaultConfig() Config {
	return ConfigForGeometry(addrspace.DefaultGeometry(), 64)
}

// ConfigForGeometry derives a config from a page-set geometry and interval
// length, scaling the dependent parameters the way the paper derives them:
// counter cap = 4× set size, FIFO depth = 2× interval, wrong-eviction
// threshold = set size, jump distance = 16, jump floor = 4× set size.
func ConfigForGeometry(g addrspace.Geometry, intervalFaults int) Config {
	setSize := g.SetSize()
	return Config{
		Geometry:               g,
		IntervalFaults:         intervalFaults,
		CounterCap:             4 * setSize,
		Ratio1Threshold:        0.3,
		Ratio2Threshold:        2.0,
		FIFODepth:              2 * intervalFaults,
		WrongEvictionThreshold: setSize,
		SearchJumpDistance:     16,
		MinOldSetsForJump:      4 * setSize,
		DynamicAdjustment:      true,
	}
}

func (c Config) validate() error {
	if c.IntervalFaults <= 0 {
		return fmt.Errorf("hpe: interval length %d must be positive", c.IntervalFaults)
	}
	if c.CounterCap < c.Geometry.SetSize() {
		return fmt.Errorf("hpe: counter cap %d below set size %d", c.CounterCap, c.Geometry.SetSize())
	}
	if c.FIFODepth <= 0 || c.WrongEvictionThreshold <= 0 {
		return fmt.Errorf("hpe: FIFO depth %d and wrong-eviction threshold %d must be positive",
			c.FIFODepth, c.WrongEvictionThreshold)
	}
	if c.SearchJumpDistance < 0 || c.MinOldSetsForJump < 0 {
		return fmt.Errorf("hpe: negative jump parameters")
	}
	if c.DivisionCounterThreshold < 0 || c.DivisionCounterThreshold > c.CounterCap {
		return fmt.Errorf("hpe: division threshold %d out of [0, %d]",
			c.DivisionCounterThreshold, c.CounterCap)
	}
	return nil
}

// divisionThreshold resolves the effective division-check counter value.
func (c Config) divisionThreshold() int {
	if c.DivisionCounterThreshold > 0 {
		return c.DivisionCounterThreshold
	}
	return c.CounterCap
}

package hpe

import (
	"math"

	"hpe/internal/addrspace"
)

// evictionFIFO is one of the per-strategy FIFO buffers of §IV-E: it holds
// the virtual page addresses evicted by that strategy over (at most) the
// last two intervals; a page fault that hits the buffer is a wrong eviction.
type evictionFIFO struct {
	depth   int
	buf     []addrspace.PageID
	next    int
	full    bool
	members map[addrspace.PageID]int // page → occurrences in buf
}

func newEvictionFIFO(depth int) *evictionFIFO {
	return &evictionFIFO{
		depth:   depth,
		buf:     make([]addrspace.PageID, depth),
		members: make(map[addrspace.PageID]int),
	}
}

func (f *evictionFIFO) push(p addrspace.PageID) {
	if f.full {
		old := f.buf[f.next]
		if n := f.members[old]; n <= 1 {
			delete(f.members, old)
		} else {
			f.members[old] = n - 1
		}
	}
	f.buf[f.next] = p
	f.members[p]++
	f.next++
	if f.next == f.depth {
		f.next = 0
		f.full = true
	}
}

func (f *evictionFIFO) contains(p addrspace.PageID) bool { return f.members[p] > 0 }

func (f *evictionFIFO) len() int {
	if f.full {
		return f.depth
	}
	return f.next
}

// StrategySpan records one stretch of execution under a single strategy,
// measured in page faults — the Fig. 13 breakdown data.
type StrategySpan struct {
	Strategy  Strategy
	FromFault uint64 // inclusive
	ToFault   uint64 // exclusive; the final span is closed at run end
}

// adjuster owns the dynamic-adjustment machinery (Algorithm 1): the active
// strategy, the wrong-eviction FIFOs and counters, the search-point jump
// state for regular applications, and the switching heuristic for irregular
// ones.
type adjuster struct {
	cfg      Config
	category Category
	active   Strategy

	fifos      [2]*evictionFIFO
	wrong      [2]int
	wrongTotal [2]int
	// failRun[s] is the length, in intervals, of strategy s's last run
	// before a wrong-eviction trigger; +Inf when s has never failed. The
	// paper's longer_interval(LRU, MRU-C) selects the strategy with the
	// longer run (DESIGN.md §4.5 records this interpretation).
	failRun  [2]float64
	runStart uint64 // interval at which the active strategy was activated

	// Regular-application state.
	searchJump         int
	oldSetsAtFirstFull int
	jumpAllowed        bool

	// Bookkeeping for Fig. 13.
	spans     []StrategySpan
	spanStart uint64 // fault number at which the active span began
	jumps     []uint64
	switches  int
}

func newAdjuster(cfg Config) *adjuster {
	a := &adjuster{cfg: cfg}
	a.fifos[StrategyLRU] = newEvictionFIFO(cfg.FIFODepth)
	a.fifos[StrategyMRUC] = newEvictionFIFO(cfg.FIFODepth)
	a.failRun[StrategyLRU] = math.Inf(1)
	a.failRun[StrategyMRUC] = math.Inf(1)
	return a
}

// start installs the classification outcome and the initial strategy.
// oldSets is the old-partition length at first memory-full, which gates the
// regular-application search-point jump (Algorithm 1 / §IV-E).
func (a *adjuster) start(cat Category, strat Strategy, oldSets int, interval, fault uint64) {
	a.category = cat
	a.active = strat
	a.oldSetsAtFirstFull = oldSets
	a.jumpAllowed = oldSets >= a.cfg.MinOldSetsForJump
	a.runStart = interval
	a.spanStart = fault
}

// recordEviction notes a page evicted by the active strategy.
func (a *adjuster) recordEviction(p addrspace.PageID) {
	a.fifos[a.active].push(p)
}

// onFault checks the fault against both strategies' FIFO buffers and charges
// a wrong eviction to the owning strategy. It returns true when the active
// strategy's counter reached the trigger threshold (the caller then invokes
// maybeAdjust).
func (a *adjuster) onFault(p addrspace.PageID) bool {
	triggered := false
	for _, s := range []Strategy{StrategyLRU, StrategyMRUC} {
		if a.fifos[s].contains(p) {
			a.wrong[s]++
			a.wrongTotal[s]++
			if s == a.active && a.wrong[s] >= a.cfg.WrongEvictionThreshold {
				triggered = true
			}
		}
	}
	return triggered
}

// onIntervalEnd resets the wrong-eviction counters ("the counter is reset
// periodically at the end of each interval").
func (a *adjuster) onIntervalEnd() {
	a.wrong[StrategyLRU] = 0
	a.wrong[StrategyMRUC] = 0
}

// maybeAdjust runs Algorithm 1 when the active strategy's wrong-eviction
// counter hit the threshold. interval and fault locate the event for the
// bookkeeping. It returns true when anything changed.
func (a *adjuster) maybeAdjust(interval, fault uint64) bool {
	if !a.cfg.DynamicAdjustment {
		return false
	}
	triggered := a.active
	defer func() { a.wrong[triggered] = 0 }()
	switch a.category {
	case CategoryRegular:
		// Regular applications stay on MRU-C; with a large enough footprint
		// the search point jumps forward to select colder page sets.
		if !a.jumpAllowed {
			return false
		}
		// The jump distance is fixed ("jumps the search point forward by
		// 16"); repeated triggers re-confirm it rather than compounding.
		a.searchJump = a.cfg.SearchJumpDistance
		a.jumps = append(a.jumps, fault)
		return true
	default:
		// Irregular applications switch to longer_interval(LRU, MRU-C):
		// record the failed run, then adopt the strategy with the longer
		// expected failure-free run.
		run := float64(interval - a.runStart)
		a.failRun[a.active] = run
		other := StrategyLRU
		if a.active == StrategyLRU {
			other = StrategyMRUC
		}
		choice := a.active
		if a.failRun[other] >= a.failRun[a.active] {
			choice = other
		}
		if choice == a.active {
			return false
		}
		a.spans = append(a.spans, StrategySpan{Strategy: a.active, FromFault: a.spanStart, ToFault: fault})
		a.active = choice
		a.runStart = interval
		a.spanStart = fault
		a.switches++
		return true
	}
}

// timeline closes and returns the strategy spans up to endFault.
func (a *adjuster) timeline(endFault uint64) []StrategySpan {
	out := make([]StrategySpan, len(a.spans), len(a.spans)+1)
	copy(out, a.spans)
	if endFault > a.spanStart || len(out) == 0 {
		out = append(out, StrategySpan{Strategy: a.active, FromFault: a.spanStart, ToFault: endFault})
	}
	return out
}

package tlb

import (
	"testing"
	"testing/quick"

	"hpe/internal/addrspace"
)

func TestLookupMissThenHit(t *testing.T) {
	tl := New("l1", 8, 2)
	if tl.Lookup(5) {
		t.Fatal("hit on empty TLB")
	}
	tl.Fill(5)
	if !tl.Lookup(5) {
		t.Fatal("miss after fill")
	}
	hits, misses, fills, _ := tl.Stats()
	if hits != 1 || misses != 1 || fills != 1 {
		t.Fatalf("stats = %d/%d/%d", hits, misses, fills)
	}
	if tl.HitRate() != 0.5 {
		t.Fatalf("hit rate = %f", tl.HitRate())
	}
}

func TestLRUReplacementWithinSet(t *testing.T) {
	// 4 entries, 2 ways → 2 sets. Pages 0,2,4 map to set 0.
	tl := New("t", 4, 2)
	tl.Fill(0)
	tl.Fill(2)
	tl.Lookup(0) // refresh 0; LRU of set 0 is now 2
	tl.Fill(4)   // evicts 2
	if !tl.Lookup(0) {
		t.Fatal("page 0 was evicted despite being MRU")
	}
	if tl.Lookup(2) {
		t.Fatal("page 2 should have been the LRU victim")
	}
	if !tl.Lookup(4) {
		t.Fatal("page 4 missing after fill")
	}
}

func TestFillExistingRefreshes(t *testing.T) {
	tl := New("t", 2, 2)
	tl.Fill(0)
	tl.Fill(1)
	tl.Fill(0) // refresh, no new fill slot needed
	tl.Fill(3) // pages 0..3 all map to the single set; victim should be 1
	if !tl.Lookup(0) || tl.Lookup(1) || !tl.Lookup(3) {
		t.Fatal("refresh-on-fill did not update LRU order")
	}
}

func TestInvalidate(t *testing.T) {
	tl := New("t", 4, 4)
	tl.Fill(7)
	if !tl.Invalidate(7) {
		t.Fatal("Invalidate missed a present page")
	}
	if tl.Invalidate(7) {
		t.Fatal("Invalidate found an already-invalid page")
	}
	if tl.Lookup(7) {
		t.Fatal("hit after invalidate")
	}
}

func TestFlush(t *testing.T) {
	tl := New("t", 8, 4)
	for i := 0; i < 8; i++ {
		tl.Fill(addrspace.PageID(i))
	}
	if tl.Occupancy() != 8 {
		t.Fatalf("occupancy = %d", tl.Occupancy())
	}
	tl.Flush()
	if tl.Occupancy() != 0 {
		t.Fatalf("occupancy after flush = %d", tl.Occupancy())
	}
}

func TestFullyAssociative(t *testing.T) {
	tl := New("fa", 4, 4)
	for i := 0; i < 4; i++ {
		tl.Fill(addrspace.PageID(i * 100))
	}
	for i := 0; i < 4; i++ {
		if !tl.Lookup(addrspace.PageID(i * 100)) {
			t.Fatalf("page %d missing in fully associative TLB", i*100)
		}
	}
	tl.Fill(999) // evicts LRU = page 0 (refreshed lookups happened in order)
	if tl.Lookup(0) {
		t.Fatal("LRU page survived in full FA TLB")
	}
}

func TestBadGeometryPanics(t *testing.T) {
	for _, c := range []struct{ e, w int }{{0, 1}, {4, 0}, {5, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", c.e, c.w)
				}
			}()
			New("bad", c.e, c.w)
		}()
	}
}

func TestPaperGeometries(t *testing.T) {
	l1 := New("l1", 128, 128) // per-SM L1: 128-entry
	l2 := New("l2", 512, 16)  // shared L2: 512-entry, 16-way
	if l1.Entries() != 128 || l1.Ways() != 128 {
		t.Fatal("L1 geometry")
	}
	if l2.Entries() != 512 || l2.Ways() != 16 {
		t.Fatal("L2 geometry")
	}
}

// Property: occupancy never exceeds capacity, and a filled page is always a
// hit immediately afterwards.
func TestFillThenHitProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		tl := New("p", 32, 4)
		for _, r := range raw {
			p := addrspace.PageID(r)
			tl.Fill(p)
			if !tl.Lookup(p) {
				return false
			}
			if tl.Occupancy() > 32 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a TLB of capacity C holding references to C distinct pages that
// all map to distinct sets never evicts anything.
func TestNoConflictNoEviction(t *testing.T) {
	tl := New("p", 16, 1) // direct mapped, 16 sets
	for i := 0; i < 16; i++ {
		tl.Fill(addrspace.PageID(i))
	}
	for i := 0; i < 16; i++ {
		if !tl.Lookup(addrspace.PageID(i)) {
			t.Fatalf("page %d evicted without conflict", i)
		}
	}
}

func BenchmarkLookupFill(b *testing.B) {
	tl := New("bench", 512, 16)
	for i := 0; i < b.N; i++ {
		p := addrspace.PageID(i % 2048)
		if !tl.Lookup(p) {
			tl.Fill(p)
		}
	}
}

package tlb

import (
	"math/rand"
	"testing"

	"hpe/internal/addrspace"
)

// referenceTLB is the original timestamp-LRU implementation (whole-set scans,
// one tick per operation), retained verbatim as the differential oracle for
// the O(1) list-based rewrite.
type referenceTLB struct {
	sets    int
	ways    int
	entries []refEntry
	tick    uint64

	hits, misses, fills, invalides uint64
}

type refEntry struct {
	valid bool
	page  addrspace.PageID
	used  uint64
}

func newReferenceTLB(entries, ways int) *referenceTLB {
	return &referenceTLB{sets: entries / ways, ways: ways, entries: make([]refEntry, entries)}
}

func (t *referenceTLB) row(p addrspace.PageID) []refEntry {
	idx := int(uint64(p) % uint64(t.sets))
	return t.entries[idx*t.ways : (idx+1)*t.ways]
}

func (t *referenceTLB) Lookup(p addrspace.PageID) bool {
	t.tick++
	row := t.row(p)
	for i := range row {
		if row[i].valid && row[i].page == p {
			row[i].used = t.tick
			t.hits++
			return true
		}
	}
	t.misses++
	return false
}

// Fill is the original algorithm with one repair: the original interleaved
// the presence check with the victim scan and broke out at the first invalid
// way, so Fill(p) with p already resident *after* an invalid way installed a
// duplicate entry (see TestOriginalFillDuplicateQuirk). The rewrite cannot
// duplicate (one map slot per page), and the root golden tests confirm the
// quirk never reaches observable results in the paper's workloads, so the
// oracle here checks presence first — otherwise identical.
func (t *referenceTLB) Fill(p addrspace.PageID) {
	t.tick++
	row := t.row(p)
	for i := range row {
		if row[i].valid && row[i].page == p {
			row[i].used = t.tick
			return
		}
	}
	victim := 0
	for i := range row {
		if !row[i].valid {
			victim = i
			break
		}
		if row[i].used < row[victim].used {
			victim = i
		}
	}
	row[victim] = refEntry{valid: true, page: p, used: t.tick}
	t.fills++
}

func (t *referenceTLB) Invalidate(p addrspace.PageID) bool {
	row := t.row(p)
	for i := range row {
		if row[i].valid && row[i].page == p {
			row[i].valid = false
			t.invalides++
			return true
		}
	}
	return false
}

func (t *referenceTLB) Flush() {
	for i := range t.entries {
		t.entries[i].valid = false
	}
}

func (t *referenceTLB) Occupancy() int {
	n := 0
	for i := range t.entries {
		if t.entries[i].valid {
			n++
		}
	}
	return n
}

// TestDifferentialAgainstTimestampLRU drives the list-based TLB and the
// original timestamp implementation with identical randomized operation
// streams across the paper's geometries and asserts identical observable
// behaviour: every Lookup result, every Invalidate result, occupancy, and
// all stats counters. Unique timestamps mean the reference has no LRU ties,
// so any divergence is a real behaviour change in the rewrite.
func TestDifferentialAgainstTimestampLRU(t *testing.T) {
	geometries := []struct{ entries, ways int }{
		{128, 128}, // paper L1: fully associative
		{512, 16},  // paper L2: 16-way
		{16, 1},    // direct mapped
		{8, 2},     // tiny, high conflict
	}
	for _, g := range geometries {
		rng := rand.New(rand.NewSource(int64(g.entries*31 + g.ways)))
		fast := New("fast", g.entries, g.ways)
		ref := newReferenceTLB(g.entries, g.ways)
		// Small page universe forces heavy set conflict and reuse.
		universe := g.entries * 3
		for op := 0; op < 20000; op++ {
			p := addrspace.PageID(rng.Intn(universe))
			switch rng.Intn(10) {
			case 0, 1, 2, 3: // 40% lookups
				if fast.Lookup(p) != ref.Lookup(p) {
					t.Fatalf("%dx%d op %d: Lookup(%d) diverges", g.entries, g.ways, op, p)
				}
			case 4, 5, 6, 7: // 40% fills
				fast.Fill(p)
				ref.Fill(p)
			case 8: // 10% shootdowns
				if fast.Invalidate(p) != ref.Invalidate(p) {
					t.Fatalf("%dx%d op %d: Invalidate(%d) diverges", g.entries, g.ways, op, p)
				}
			default: // rare flush
				if rng.Intn(50) == 0 {
					fast.Flush()
					ref.Flush()
				}
			}
			if fast.Occupancy() != ref.Occupancy() {
				t.Fatalf("%dx%d op %d: occupancy diverges: %d vs %d",
					g.entries, g.ways, op, fast.Occupancy(), ref.Occupancy())
			}
		}
		h, m, f, inv := fast.Stats()
		if h != ref.hits || m != ref.misses || f != ref.fills || inv != ref.invalides {
			t.Fatalf("%dx%d stats diverge: fast %d/%d/%d/%d, ref %d/%d/%d/%d",
				g.entries, g.ways, h, m, f, inv, ref.hits, ref.misses, ref.fills, ref.invalides)
		}
	}
}

// TestOriginalFillDuplicateQuirk pins the one intentional behaviour change
// of the O(1) rewrite: re-filling a resident page whose row has an earlier
// invalid way no longer creates a duplicate entry. The original scan broke
// at the first invalid way before discovering the page was already resident,
// leaving two copies — and after a shootdown of the first copy, the stale
// second copy could still hit. The rewrite keeps exactly one entry per page.
func TestOriginalFillDuplicateQuirk(t *testing.T) {
	tl := New("t", 4, 4)
	tl.Fill(0)
	tl.Fill(1)
	tl.Invalidate(0) // way 0 invalid, page 1 still resident at way 1
	tl.Fill(1)       // original duplicated page 1 into way 0; rewrite refreshes
	if got := tl.Occupancy(); got != 1 {
		t.Fatalf("occupancy after re-fill = %d, want 1 (no duplicate)", got)
	}
	if !tl.Invalidate(1) {
		t.Fatal("page 1 missing")
	}
	if tl.Lookup(1) {
		t.Fatal("stale duplicate of page 1 survived its shootdown")
	}
	_, _, fills, _ := tl.Stats()
	if fills != 2 {
		t.Fatalf("fills = %d, want 2 (re-fill of a resident page is a refresh)", fills)
	}
}

// BenchmarkInvalidateShootdown measures the eviction-shootdown pattern that
// dominated pre-rewrite profiles: probing for pages mostly absent from the
// TLB (an eviction invalidates one L2 and all 15 SM L1s, and most L1s do not
// hold the page).
func BenchmarkInvalidateShootdown(b *testing.B) {
	tl := New("bench", 128, 128)
	for i := 0; i < 64; i++ {
		tl.Fill(addrspace.PageID(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := addrspace.PageID(i % 4096)
		if tl.Invalidate(p) {
			tl.Fill(p)
		}
	}
}

package tlb

import (
	"math/rand"
	"testing"

	"hpe/internal/addrspace"
)

// TestPageMapAgainstGoMap churns a pageMap with randomized put/del/get
// against a builtin map oracle, using a small key universe so probe chains
// collide, wrap, and exercise backward-shift deletion.
func TestPageMapAgainstGoMap(t *testing.T) {
	for _, capacity := range []int{1, 4, 128, 512} {
		m := newPageMap(capacity)
		oracle := make(map[addrspace.PageID]int32)
		rng := rand.New(rand.NewSource(int64(capacity)))
		for op := 0; op < 50000; op++ {
			p := addrspace.PageID(rng.Intn(capacity * 4))
			switch rng.Intn(3) {
			case 0:
				if len(oracle) < capacity { // respect the fixed-capacity contract
					v := int32(rng.Intn(1 << 20))
					m.put(p, v)
					oracle[p] = v
				}
			case 1:
				m.del(p)
				delete(oracle, p)
			default:
				want, ok := oracle[p]
				got := m.get(p)
				if ok && got != want {
					t.Fatalf("cap %d op %d: get(%d) = %d, want %d", capacity, op, p, got, want)
				}
				if !ok && got != -1 {
					t.Fatalf("cap %d op %d: get(%d) = %d, want -1", capacity, op, p, got)
				}
			}
			if m.len() != len(oracle) {
				t.Fatalf("cap %d op %d: len %d, oracle %d", capacity, op, m.len(), len(oracle))
			}
		}
		m.clear()
		if m.len() != 0 {
			t.Fatalf("cap %d: len %d after clear", capacity, m.len())
		}
		for p := range oracle {
			if m.get(p) != -1 {
				t.Fatalf("cap %d: key %d survived clear", capacity, p)
			}
		}
	}
}

// TestPageMapUpdateInPlace checks that put on an existing key overwrites
// without growing.
func TestPageMapUpdateInPlace(t *testing.T) {
	m := newPageMap(8)
	m.put(42, 1)
	m.put(42, 7)
	if m.len() != 1 {
		t.Fatalf("len = %d after duplicate put, want 1", m.len())
	}
	if m.get(42) != 7 {
		t.Fatalf("get = %d, want 7", m.get(42))
	}
}

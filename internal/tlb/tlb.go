// Package tlb implements the set-associative translation lookaside buffers
// of the paper's baseline architecture (Fig. 1 / Table I): per-SM private L1
// TLBs backed by a shared L2 TLB, both LRU-replaced, with invalidation on
// page eviction.
//
// The TLB stores only page-number tags; the simulator does not need the
// physical translation itself, just hit/miss behaviour, because policy
// visibility (which references reach the page walker) is what the paper's
// mechanisms key off.
package tlb

import (
	"fmt"

	"hpe/internal/addrspace"
)

// TLB is a set-associative, LRU-replaced translation cache.
type TLB struct {
	name    string
	sets    int
	ways    int
	entries []entry // sets × ways, row-major
	tick    uint64

	hits      uint64
	misses    uint64
	fills     uint64
	invalides uint64
}

type entry struct {
	valid bool
	page  addrspace.PageID
	used  uint64 // LRU timestamp
}

// New returns a TLB with the given total entry count and associativity.
// entries must be divisible by ways; ways == entries gives a fully
// associative TLB.
func New(name string, entries, ways int) *TLB {
	if entries <= 0 || ways <= 0 || entries%ways != 0 {
		panic(fmt.Sprintf("tlb: bad geometry entries=%d ways=%d", entries, ways))
	}
	return &TLB{
		name:    name,
		sets:    entries / ways,
		ways:    ways,
		entries: make([]entry, entries),
	}
}

// Name returns the TLB's label (for stats reporting).
func (t *TLB) Name() string { return t.name }

// Entries returns the total capacity.
func (t *TLB) Entries() int { return len(t.entries) }

// Ways returns the associativity.
func (t *TLB) Ways() int { return t.ways }

func (t *TLB) row(p addrspace.PageID) []entry {
	idx := int(uint64(p) % uint64(t.sets))
	return t.entries[idx*t.ways : (idx+1)*t.ways]
}

// Lookup probes the TLB. A hit refreshes the entry's LRU state.
func (t *TLB) Lookup(p addrspace.PageID) bool {
	t.tick++
	row := t.row(p)
	for i := range row {
		if row[i].valid && row[i].page == p {
			row[i].used = t.tick
			t.hits++
			return true
		}
	}
	t.misses++
	return false
}

// Fill installs a translation, evicting the LRU way of the set if needed.
// Filling an already-present page just refreshes it.
func (t *TLB) Fill(p addrspace.PageID) {
	t.tick++
	row := t.row(p)
	victim := 0
	for i := range row {
		if row[i].valid && row[i].page == p {
			row[i].used = t.tick
			return
		}
		if !row[i].valid {
			victim = i
			break
		}
		if row[i].used < row[victim].used {
			victim = i
		}
	}
	row[victim] = entry{valid: true, page: p, used: t.tick}
	t.fills++
}

// Invalidate removes a translation if present (page eviction shootdown).
func (t *TLB) Invalidate(p addrspace.PageID) bool {
	row := t.row(p)
	for i := range row {
		if row[i].valid && row[i].page == p {
			row[i].valid = false
			t.invalides++
			return true
		}
	}
	return false
}

// Flush invalidates every entry.
func (t *TLB) Flush() {
	for i := range t.entries {
		t.entries[i].valid = false
	}
}

// Stats returns cumulative hit/miss/fill/invalidate counts.
func (t *TLB) Stats() (hits, misses, fills, invalidates uint64) {
	return t.hits, t.misses, t.fills, t.invalides
}

// HitRate returns hits / (hits+misses), or 0 for an unused TLB.
func (t *TLB) HitRate() float64 {
	total := t.hits + t.misses
	if total == 0 {
		return 0
	}
	return float64(t.hits) / float64(total)
}

// Occupancy returns the number of valid entries.
func (t *TLB) Occupancy() int {
	n := 0
	for i := range t.entries {
		if t.entries[i].valid {
			n++
		}
	}
	return n
}

// Package tlb implements the set-associative translation lookaside buffers
// of the paper's baseline architecture (Fig. 1 / Table I): per-SM private L1
// TLBs backed by a shared L2 TLB, both LRU-replaced, with invalidation on
// page eviction.
//
// The TLB stores only page-number tags; the simulator does not need the
// physical translation itself, just hit/miss behaviour, because policy
// visibility (which references reach the page walker) is what the paper's
// mechanisms key off.
//
// Every operation is O(1): a page → entry index map answers presence, and
// each set maintains an intrusive doubly-linked list ordered LRU → MRU with
// invalid entries parked at the LRU end. This replaces the original
// timestamp-per-entry scheme, which scanned the whole set on every Lookup,
// Fill, and Invalidate — the dominant cost of eviction shootdowns, which
// probe one L2 and every SM's L1. Because timestamps were unique (one tick
// per operation), list order reproduces timestamp order exactly and victim
// selection is behaviourally identical; the list invariant (invalid entries
// always form a prefix at the LRU end, valid entries follow in LRU → MRU
// refresh order) is checked by the differential test against the retained
// reference implementation. One latent quirk of the original is repaired
// rather than reproduced: re-filling a resident page behind an invalid way
// no longer installs a duplicate entry (TestOriginalFillDuplicateQuirk);
// the root golden tests confirm headline results are unchanged.
package tlb

import (
	"fmt"

	"hpe/internal/addrspace"
)

// TLB is a set-associative, LRU-replaced translation cache.
type TLB struct {
	name    string
	sets    int
	ways    int
	entries []entry  // sets × ways, row-major
	head    []int32  // per-set list head: invalid-first, then LRU
	tail    []int32  // per-set list tail: MRU
	index   *pageMap // valid pages → entry index

	hits      uint64
	misses    uint64
	fills     uint64
	invalides uint64
}

type entry struct {
	page       addrspace.PageID
	prev, next int32 // intrusive per-set LRU list, -1 terminated
	valid      bool
}

// New returns a TLB with the given total entry count and associativity.
// entries must be divisible by ways; ways == entries gives a fully
// associative TLB.
func New(name string, entries, ways int) *TLB {
	if entries <= 0 || ways <= 0 || entries%ways != 0 {
		panic(fmt.Sprintf("tlb: bad geometry entries=%d ways=%d", entries, ways))
	}
	t := &TLB{
		name:    name,
		sets:    entries / ways,
		ways:    ways,
		entries: make([]entry, entries),
		head:    make([]int32, entries/ways),
		tail:    make([]int32, entries/ways),
		index:   newPageMap(entries),
	}
	t.resetLists()
	return t
}

// resetLists chains each set's entries in row order, all invalid.
func (t *TLB) resetLists() {
	for s := 0; s < t.sets; s++ {
		first := int32(s * t.ways)
		last := first + int32(t.ways) - 1
		t.head[s] = first
		t.tail[s] = last
		for i := first; i <= last; i++ {
			t.entries[i] = entry{prev: i - 1, next: i + 1}
		}
		t.entries[first].prev = -1
		t.entries[last].next = -1
	}
}

// Name returns the TLB's label (for stats reporting).
func (t *TLB) Name() string { return t.name }

// Entries returns the total capacity.
func (t *TLB) Entries() int { return len(t.entries) }

// Ways returns the associativity.
func (t *TLB) Ways() int { return t.ways }

func (t *TLB) set(p addrspace.PageID) int {
	return int(uint64(p) % uint64(t.sets))
}

// unlink removes entry i from its set's list.
func (t *TLB) unlink(s int, i int32) {
	e := &t.entries[i]
	if e.prev >= 0 {
		t.entries[e.prev].next = e.next
	} else {
		t.head[s] = e.next
	}
	if e.next >= 0 {
		t.entries[e.next].prev = e.prev
	} else {
		t.tail[s] = e.prev
	}
}

// moveToTail marks entry i most-recently-used.
func (t *TLB) moveToTail(s int, i int32) {
	if t.tail[s] == i {
		return
	}
	t.unlink(s, i)
	e := &t.entries[i]
	e.prev = t.tail[s]
	e.next = -1
	t.entries[t.tail[s]].next = i
	t.tail[s] = i
}

// moveToHead parks entry i at the reuse-first end.
func (t *TLB) moveToHead(s int, i int32) {
	if t.head[s] == i {
		return
	}
	t.unlink(s, i)
	e := &t.entries[i]
	e.next = t.head[s]
	e.prev = -1
	t.entries[t.head[s]].prev = i
	t.head[s] = i
}

// Lookup probes the TLB. A hit refreshes the entry's LRU state.
func (t *TLB) Lookup(p addrspace.PageID) bool {
	if i := t.index.get(p); i >= 0 {
		t.moveToTail(t.set(p), i)
		t.hits++
		return true
	}
	t.misses++
	return false
}

// Fill installs a translation, evicting the LRU way of the set if needed.
// Filling an already-present page just refreshes it.
func (t *TLB) Fill(p addrspace.PageID) {
	if i := t.index.get(p); i >= 0 {
		t.moveToTail(t.set(p), i)
		return
	}
	s := t.set(p)
	v := t.head[s] // invalid entry if any exists, else the LRU way
	e := &t.entries[v]
	if e.valid {
		t.index.del(e.page)
	}
	e.page = p
	e.valid = true
	t.index.put(p, v)
	t.moveToTail(s, v)
	t.fills++
}

// Invalidate removes a translation if present (page eviction shootdown).
func (t *TLB) Invalidate(p addrspace.PageID) bool {
	i := t.index.get(p)
	if i < 0 {
		return false
	}
	t.index.del(p)
	t.entries[i].valid = false
	t.moveToHead(t.set(p), i)
	t.invalides++
	return true
}

// Flush invalidates every entry.
func (t *TLB) Flush() {
	t.resetLists()
	t.index.clear()
}

// Stats returns cumulative hit/miss/fill/invalidate counts.
func (t *TLB) Stats() (hits, misses, fills, invalidates uint64) {
	return t.hits, t.misses, t.fills, t.invalides
}

// HitRate returns hits / (hits+misses), or 0 for an unused TLB.
func (t *TLB) HitRate() float64 {
	total := t.hits + t.misses
	if total == 0 {
		return 0
	}
	return float64(t.hits) / float64(total)
}

// Occupancy returns the number of valid entries.
func (t *TLB) Occupancy() int {
	return t.index.len()
}

package tlb

import (
	"testing"

	"hpe/internal/addrspace"
)

// TestLookupFillSteadyStateZeroAlloc pins the hotalloc root tlb.TLB.Lookup
// (and the Fill/Invalidate churn around it) with a runtime measurement:
// the pageMap is sized once at construction and never grows, so hits,
// misses and replacement fills are all allocation-free. The working set is
// twice the capacity, so the loop exercises eviction and backward-shift
// deletion, not just warm hits.
func TestLookupFillSteadyStateZeroAlloc(t *testing.T) {
	tl := New("l1", 64, 4)
	for p := 0; p < 128; p++ {
		tl.Fill(addrspace.PageID(p))
	}

	var p addrspace.PageID
	avg := testing.AllocsPerRun(1000, func() {
		if !tl.Lookup(p%64) && !tl.Lookup(p%128) {
			tl.Fill(p % 128)
		}
		tl.Invalidate((p + 7) % 128)
		p++
	})
	if avg != 0 {
		t.Errorf("Lookup/Fill/Invalidate allocated %.2f objects per access in steady state, want 0", avg)
	}
}

package tlb

import "hpe/internal/addrspace"

// pageMap is a fixed-capacity open-addressing hash table from PageID to
// entry index. A TLB never holds more than its entry count of distinct
// pages, so the table is sized once at construction (2× capacity rounded up
// to a power of two, ≤ 50% load) and never grows. Linear probing with
// backward-shift deletion keeps probe chains tombstone-free under the
// fill/invalidate churn of eviction shootdowns. Replacing the runtime map
// removes hashing and bucket overhead from the per-access Lookup path, which
// profiles showed dominating once the set scans were gone.
type pageMap struct {
	slots []pageSlot
	shift uint // 64 - log2(len(slots)), for Fibonacci hashing
	n     int
}

type pageSlot struct {
	page addrspace.PageID
	idx  int32 // -1 = empty
}

func newPageMap(capacity int) *pageMap {
	size := 8
	for size < capacity*2 {
		size <<= 1
	}
	m := &pageMap{slots: make([]pageSlot, size)}
	s := uint(64)
	for v := size; v > 1; v >>= 1 {
		s--
	}
	m.shift = s
	for i := range m.slots {
		m.slots[i].idx = -1
	}
	return m
}

func (m *pageMap) hash(p addrspace.PageID) uint64 {
	return (uint64(p) * 0x9E3779B97F4A7C15) >> m.shift
}

func (m *pageMap) mask() uint64 { return uint64(len(m.slots) - 1) }

// get returns the entry index for p, or -1.
func (m *pageMap) get(p addrspace.PageID) int32 {
	mask := m.mask()
	for i := m.hash(p); ; i = (i + 1) & mask {
		s := &m.slots[i]
		if s.idx < 0 {
			return -1
		}
		if s.page == p {
			return s.idx
		}
	}
}

// put inserts or updates p → idx. The caller guarantees the table never
// exceeds its construction capacity, so probing always finds a slot.
func (m *pageMap) put(p addrspace.PageID, idx int32) {
	mask := m.mask()
	for i := m.hash(p); ; i = (i + 1) & mask {
		s := &m.slots[i]
		if s.idx < 0 {
			s.page = p
			s.idx = idx
			m.n++
			return
		}
		if s.page == p {
			s.idx = idx
			return
		}
	}
}

// del removes p if present, backward-shifting the probe chain so no
// tombstones accumulate (Knuth 6.4 algorithm R).
func (m *pageMap) del(p addrspace.PageID) {
	mask := m.mask()
	i := m.hash(p)
	for {
		s := &m.slots[i]
		if s.idx < 0 {
			return
		}
		if s.page == p {
			break
		}
		i = (i + 1) & mask
	}
	m.n--
	for {
		m.slots[i].idx = -1
		j := i
		for {
			j = (j + 1) & mask
			s := &m.slots[j]
			if s.idx < 0 {
				return
			}
			h := m.hash(s.page)
			// Shift s back to the hole unless its home position lies
			// cyclically within (i, j] — moving it would overshoot its chain.
			if (j-h)&mask >= (j-i)&mask {
				m.slots[i] = *s
				break
			}
		}
		i = j
	}
}

// clear empties the table.
func (m *pageMap) clear() {
	for i := range m.slots {
		m.slots[i].idx = -1
	}
	m.n = 0
}

// len returns the number of live entries.
func (m *pageMap) len() int { return m.n }

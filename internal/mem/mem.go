// Package mem models the GPU device memory as seen by the unified-memory
// runtime: a fixed pool of physical frames and a single-level page table
// mapping resident virtual pages to frames.
//
// The paper simplifies the page table to a single level with a fixed walk
// latency; the walk latency itself is modelled by package walker. This
// package is purely the residency/occupancy state plus accounting.
package mem

import (
	"errors"
	"fmt"

	"hpe/internal/addrspace"
)

// ErrFull is returned by Insert when no free frame exists; the caller (the
// UVM driver) must evict first.
var ErrFull = errors.New("mem: device memory full")

// ErrNotResident is returned by Evict for a page that is not mapped.
var ErrNotResident = errors.New("mem: page not resident")

// FrameID identifies a physical frame in device memory.
type FrameID uint32

// DeviceMemory is the GPU-resident frame pool plus page table.
type DeviceMemory struct {
	capacity int
	table    map[addrspace.PageID]FrameID
	free     []FrameID

	// Stats
	inserts uint64
	evicts  uint64
	peak    int
}

// NewDeviceMemory returns a memory with the given capacity in frames
// (pages). Capacity must be positive.
func NewDeviceMemory(capacityFrames int) *DeviceMemory {
	if capacityFrames <= 0 {
		panic(fmt.Sprintf("mem: capacity %d must be positive", capacityFrames))
	}
	free := make([]FrameID, capacityFrames)
	for i := range free {
		// Hand out frames in ascending order: free list is a stack, so push
		// descending.
		free[i] = FrameID(capacityFrames - 1 - i)
	}
	return &DeviceMemory{
		capacity: capacityFrames,
		table:    make(map[addrspace.PageID]FrameID, capacityFrames),
		free:     free,
	}
}

// Capacity returns the total number of frames.
func (m *DeviceMemory) Capacity() int { return m.capacity }

// Len returns the number of resident pages.
func (m *DeviceMemory) Len() int { return len(m.table) }

// Full reports whether no free frame remains.
func (m *DeviceMemory) Full() bool { return len(m.free) == 0 }

// Resident reports whether the page is mapped.
func (m *DeviceMemory) Resident(p addrspace.PageID) bool {
	_, ok := m.table[p]
	return ok
}

// Frame returns the frame backing a resident page.
func (m *DeviceMemory) Frame(p addrspace.PageID) (FrameID, bool) {
	f, ok := m.table[p]
	return f, ok
}

// Insert maps a page to a free frame. It returns ErrFull when the memory is
// at capacity and the frame it assigned otherwise. Inserting an
// already-resident page is a programming error and panics: the UVM driver
// must never double-map.
func (m *DeviceMemory) Insert(p addrspace.PageID) (FrameID, error) {
	if _, ok := m.table[p]; ok {
		panic(fmt.Sprintf("mem: double map of %v", p))
	}
	if len(m.free) == 0 {
		return 0, ErrFull
	}
	f := m.free[len(m.free)-1]
	m.free = m.free[:len(m.free)-1]
	m.table[p] = f
	m.inserts++
	if len(m.table) > m.peak {
		m.peak = len(m.table)
	}
	return f, nil
}

// Evict unmaps a resident page, returning its frame to the free pool.
func (m *DeviceMemory) Evict(p addrspace.PageID) error {
	f, ok := m.table[p]
	if !ok {
		return ErrNotResident
	}
	delete(m.table, p)
	m.free = append(m.free, f)
	m.evicts++
	return nil
}

// Stats reports cumulative insert/evict counts and the peak occupancy.
func (m *DeviceMemory) Stats() (inserts, evicts uint64, peak int) {
	return m.inserts, m.evicts, m.peak
}

// ResidentPages returns the number of resident pages belonging to the given
// page set under geometry g. The HPE policy uses this when draining a victim
// set.
func (m *DeviceMemory) ResidentPages(g addrspace.Geometry, s addrspace.SetID) []addrspace.PageID {
	var out []addrspace.PageID
	for off := 0; off < g.SetSize(); off++ {
		p := g.PageAt(s, off)
		if m.Resident(p) {
			out = append(out, p)
		}
	}
	return out
}

package mem

import (
	"errors"
	"testing"
	"testing/quick"

	"hpe/internal/addrspace"
)

func TestInsertEvictLifecycle(t *testing.T) {
	m := NewDeviceMemory(2)
	if m.Capacity() != 2 || m.Len() != 0 || m.Full() {
		t.Fatalf("fresh memory state wrong: cap=%d len=%d full=%v", m.Capacity(), m.Len(), m.Full())
	}
	f1, err := m.Insert(10)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := m.Insert(20)
	if err != nil {
		t.Fatal(err)
	}
	if f1 == f2 {
		t.Fatal("two pages share a frame")
	}
	if !m.Full() || m.Len() != 2 {
		t.Fatalf("after two inserts: full=%v len=%d", m.Full(), m.Len())
	}
	if _, err := m.Insert(30); !errors.Is(err, ErrFull) {
		t.Fatalf("Insert into full memory: err = %v, want ErrFull", err)
	}
	if err := m.Evict(10); err != nil {
		t.Fatal(err)
	}
	if m.Resident(10) || !m.Resident(20) {
		t.Fatal("residency wrong after evict")
	}
	f3, err := m.Insert(30)
	if err != nil {
		t.Fatal(err)
	}
	if f3 != f1 {
		t.Fatalf("freed frame not reused: got %d, want %d", f3, f1)
	}
}

func TestEvictNotResident(t *testing.T) {
	m := NewDeviceMemory(1)
	if err := m.Evict(99); !errors.Is(err, ErrNotResident) {
		t.Fatalf("err = %v, want ErrNotResident", err)
	}
}

func TestDoubleMapPanics(t *testing.T) {
	m := NewDeviceMemory(4)
	m.Insert(1)
	defer func() {
		if recover() == nil {
			t.Error("double map did not panic")
		}
	}()
	m.Insert(1)
}

func TestZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewDeviceMemory(0) did not panic")
		}
	}()
	NewDeviceMemory(0)
}

func TestFrameLookup(t *testing.T) {
	m := NewDeviceMemory(4)
	f, _ := m.Insert(42)
	got, ok := m.Frame(42)
	if !ok || got != f {
		t.Fatalf("Frame(42) = %d,%v, want %d,true", got, ok, f)
	}
	if _, ok := m.Frame(43); ok {
		t.Fatal("Frame(43) found a mapping")
	}
}

func TestStatsAndPeak(t *testing.T) {
	m := NewDeviceMemory(3)
	m.Insert(1)
	m.Insert(2)
	m.Evict(1)
	m.Insert(3)
	ins, ev, peak := m.Stats()
	if ins != 3 || ev != 1 || peak != 2 {
		t.Fatalf("stats = %d,%d,%d, want 3,1,2", ins, ev, peak)
	}
}

func TestResidentPagesOfSet(t *testing.T) {
	g := addrspace.DefaultGeometry()
	m := NewDeviceMemory(64)
	s := addrspace.SetID(5)
	// Map offsets 0, 3, 15.
	for _, off := range []int{0, 3, 15} {
		if _, err := m.Insert(g.PageAt(s, off)); err != nil {
			t.Fatal(err)
		}
	}
	m.Insert(g.PageAt(6, 0)) // other set, must not appear
	got := m.ResidentPages(g, s)
	if len(got) != 3 {
		t.Fatalf("ResidentPages = %v", got)
	}
	// Address order.
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("ResidentPages not sorted: %v", got)
		}
	}
}

// Property: after any sequence of inserts and evicts, Len + free == Capacity
// and no two resident pages share a frame.
func TestFrameConservationProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		m := NewDeviceMemory(8)
		resident := map[addrspace.PageID]bool{}
		for _, op := range ops {
			p := addrspace.PageID(op % 16)
			if resident[p] {
				if err := m.Evict(p); err != nil {
					return false
				}
				delete(resident, p)
			} else {
				_, err := m.Insert(p)
				if errors.Is(err, ErrFull) {
					if m.Len() != 8 {
						return false
					}
					continue
				}
				if err != nil {
					return false
				}
				resident[p] = true
			}
		}
		if m.Len() != len(resident) {
			return false
		}
		frames := map[FrameID]bool{}
		for p := range resident {
			fr, ok := m.Frame(p)
			if !ok || frames[fr] {
				return false
			}
			frames[fr] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Package promtext renders the Prometheus text exposition format
// (version 0.0.4) without any external dependency: counters, gauges, and
// histograms backed by internal/stats power-of-two histograms. It is shared
// by the hped backend's /metrics and the cluster coordinator's /metrics.
// Families render in the order they are emitted; labelled series within a
// family are sorted, so the output is deterministic for deterministic inputs.
package promtext

import (
	"fmt"
	"io"
	"sort"
	"strconv"

	"hpe/internal/stats"
)

// ContentType is the exposition content type for the /metrics response.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Writer emits one exposition document to w.
type Writer struct {
	w io.Writer
}

// New returns a Writer over w.
func New(w io.Writer) *Writer { return &Writer{w: w} }

// Label is one name="value" pair.
type Label struct{ Name, Value string }

func (p *Writer) header(name, kind, help string) {
	fmt.Fprintf(p.w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, kind)
}

func (p *Writer) series(name string, labels []Label, value string) {
	if len(labels) == 0 {
		fmt.Fprintf(p.w, "%s %s\n", name, value)
		return
	}
	fmt.Fprintf(p.w, "%s{", name)
	for i, l := range labels {
		if i > 0 {
			io.WriteString(p.w, ",")
		}
		fmt.Fprintf(p.w, "%s=%q", l.Name, l.Value)
	}
	fmt.Fprintf(p.w, "} %s\n", value)
}

// Counter emits a single-series counter family.
func (p *Writer) Counter(name, help string, v uint64) {
	p.header(name, "counter", help)
	p.series(name, nil, strconv.FormatUint(v, 10))
}

// LabelledCounter emits a counter family with one series per entry, sorted
// by the rendered label set for deterministic output.
func (p *Writer) LabelledCounter(name, help string, series map[string]uint64, labelName string) {
	p.header(name, "counter", help)
	keys := make([]string, 0, len(series))
	for k := range series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		p.series(name, []Label{{labelName, k}}, strconv.FormatUint(series[k], 10))
	}
}

// Gauge emits a single-series gauge family.
func (p *Writer) Gauge(name, help string, v float64) {
	p.header(name, "gauge", help)
	p.series(name, nil, strconv.FormatFloat(v, 'g', -1, 64))
}

// LabelledGauge emits a gauge family with one series per entry, sorted by
// label value for deterministic output.
func (p *Writer) LabelledGauge(name, help string, series map[string]float64, labelName string) {
	p.header(name, "gauge", help)
	keys := make([]string, 0, len(series))
	for k := range series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		p.series(name, []Label{{labelName, k}}, strconv.FormatFloat(series[k], 'g', -1, 64))
	}
}

// Histogram emits h as a cumulative Prometheus histogram. Samples were
// observed in integer units (e.g. microseconds); scale converts one sample
// unit into the exported unit (e.g. 1e-6 for seconds). Bucket bounds are the
// histogram's power-of-two upper bounds — sparse `le` lists are legal as
// long as counts are cumulative and +Inf is present.
func (p *Writer) Histogram(name, help string, h *stats.Histogram, scale float64) {
	p.header(name, "histogram", help)
	var cum uint64
	h.Buckets(func(upper, count uint64) {
		cum += count
		p.series(name+"_bucket", []Label{{"le", strconv.FormatFloat(float64(upper)*scale, 'g', -1, 64)}},
			strconv.FormatUint(cum, 10))
	})
	p.series(name+"_bucket", []Label{{"le", "+Inf"}}, strconv.FormatUint(h.Count(), 10))
	p.series(name+"_sum", nil, strconv.FormatFloat(float64(h.Sum())*scale, 'g', -1, 64))
	p.series(name+"_count", nil, strconv.FormatUint(h.Count(), 10))
}

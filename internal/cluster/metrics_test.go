package cluster

import (
	"strings"
	"sync"
	"testing"
	"time"

	"hpe/internal/respcache"
)

// lockProbeWriter observes, at every Write, whether the metrics mutex is
// held. render must have released it before the first byte heads for the
// response writer — a slow scraper must not stall shard bookkeeping
// (hpelint/lockorder).
type lockProbeWriter struct {
	mu       *sync.Mutex
	out      strings.Builder
	wrote    bool
	heldLock bool
}

func (p *lockProbeWriter) Write(b []byte) (int, error) {
	p.wrote = true
	if p.mu.TryLock() {
		p.mu.Unlock()
	} else {
		p.heldLock = true
	}
	return p.out.Write(b)
}

func TestClusterRenderReleasesLockBeforeWriting(t *testing.T) {
	m := newClusterMetrics()
	m.observeRequest("run_submit", 200)
	m.shardDone("b1", 5*time.Millisecond)
	m.redispatch()

	pw := &lockProbeWriter{mu: &m.mu}
	m.render(pw, nil, Saturation{}, respcache.Stats{Hits: 2}, 1)

	if !pw.wrote {
		t.Fatal("render wrote nothing")
	}
	if pw.heldLock {
		t.Error("render held clusterMetrics.mu during a response write; snapshot state and render outside the lock")
	}
	for _, want := range []string{
		`hped_cluster_requests_total{route_code="run_submit 200"} 1`,
		`hped_cluster_shards_total{backend="b1"} 1`,
		"hped_cluster_redispatched_total 1",
		"hped_cluster_cache_hits_total 2",
	} {
		if !strings.Contains(pw.out.String(), want) {
			t.Errorf("render output missing %q", want)
		}
	}
}

package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"hpe"
	"hpe/internal/server"
)

// Shard dispatch: one run spec travels to the backend owning its content
// address, with bounded retry and re-dispatch when the owner is dead, broken,
// or saturated. The walk order is the ring's preference sequence, filtered to
// usable backends at attempt time — so "handle backend loss" is not a special
// code path: a dead owner is simply skipped and the shard lands on the next
// backend clockwise, exactly where consistent hashing says it belongs.

// errNoBackends reports a shard that exhausted every attempt without finding
// a backend able to run it.
var errNoBackends = errors.New("no usable backend")

// permanentError wraps a backend rejection that retrying cannot fix (a 4xx:
// the request itself is wrong). The coordinator surfaces the backend's own
// envelope verbatim.
type permanentError struct {
	status int
	body   server.ErrorBody
}

func (e *permanentError) Error() string {
	return fmt.Sprintf("backend rejected shard: %s (%s)", e.body.Message, e.body.Code)
}

// dispatchRun executes one run spec on the cluster and returns the owning
// backend's response body verbatim (a server.RunResponse). Determinism makes
// any backend's bytes THE bytes, so the coordinator can cache and serve them
// unmodified.
func (c *Coordinator) dispatchRun(ctx context.Context, sp hpe.RunSpec, id string) ([]byte, error) {
	specBody, err := json.Marshal(sp)
	if err != nil {
		return nil, fmt.Errorf("encode spec: %w", err)
	}
	seq := c.ring.sequence(id)
	backoff := c.cfg.BackoffBase
	var lastErr error
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			// Deterministic exponential backoff between rounds; per-backend
			// windows already smear concurrent shards, so no jitter source
			// (and no RNG) is needed.
			if err := sleepCtx(ctx, backoff); err != nil {
				return nil, err
			}
			if backoff *= 2; backoff > c.cfg.BackoffMax {
				backoff = c.cfg.BackoffMax
			}
		}
		tried := 0
		for ownerIdx, name := range seq {
			b := c.backends[name]
			if !b.usable(time.Now(), c.cfg.BreakerThreshold) {
				continue
			}
			tried++
			if ownerIdx > 0 || attempt > 0 {
				c.met.redispatch()
			}
			body, retryAfter, err := c.tryBackend(ctx, b, specBody, id)
			if err == nil {
				return body, nil
			}
			var perm *permanentError
			if errors.As(err, &perm) {
				return nil, err
			}
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			lastErr = fmt.Errorf("%s: %w", b.name, err)
			if retryAfter > 0 {
				// Backpressure, not death: the backend asked us to pace.
				// Honor its hint (bounded) before the next attempt instead
				// of hammering the rest of the ring with a shard that will
				// queue anyway.
				if retryAfter > c.cfg.BackoffMax {
					retryAfter = c.cfg.BackoffMax
				}
				if err := sleepCtx(ctx, retryAfter); err != nil {
					return nil, err
				}
			}
		}
		if tried == 0 {
			lastErr = errNoBackends
		}
	}
	if lastErr == nil {
		lastErr = errNoBackends
	}
	return nil, fmt.Errorf("shard %s: %w", id, lastErr)
}

// tryBackend runs one attempt against one backend. A positive retryAfter
// reports backpressure (429/503 with a Retry-After hint); err then describes
// the rejection. Transport failures and 5xx responses are charged to the
// breaker; backpressure and 4xx rejections are not (the backend is healthy —
// it is full, or the request is wrong).
func (c *Coordinator) tryBackend(ctx context.Context, b *backend, specBody []byte, id string) (body []byte, retryAfter time.Duration, err error) {
	release, err := b.acquire(ctx)
	if err != nil {
		return nil, 0, err
	}
	defer release()

	// A dispatch bound only by the caller's context would hang forever on a
	// backend that stops answering without closing connections (paused
	// process): tie this attempt to the backend's liveness, so the next
	// failed health probe abandons it and the ring walk takes over.
	rctx, rcancel := context.WithCancel(ctx)
	defer rcancel()
	defer b.watchDeath(rcancel)()

	req, err := http.NewRequestWithContext(rctx, http.MethodPost, b.name+"/v1/runs", bytes.NewReader(specBody))
	if err != nil {
		return nil, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	start := time.Now()
	resp, err := c.client.Do(req)
	if err != nil {
		b.recordFailure(time.Now(), c.cfg.BreakerThreshold, c.cfg.BreakerCooldown)
		return nil, 0, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
	if err != nil {
		b.recordFailure(time.Now(), c.cfg.BreakerThreshold, c.cfg.BreakerCooldown)
		return nil, 0, err
	}

	switch {
	case resp.StatusCode == http.StatusOK:
		var rr server.RunResponse
		if err := json.Unmarshal(raw, &rr); err != nil {
			b.recordFailure(time.Now(), c.cfg.BreakerThreshold, c.cfg.BreakerCooldown)
			return nil, 0, fmt.Errorf("malformed run response: %w", err)
		}
		if rr.ID != id {
			b.recordFailure(time.Now(), c.cfg.BreakerThreshold, c.cfg.BreakerCooldown)
			return nil, 0, fmt.Errorf("backend answered run %s for shard %s", rr.ID, id)
		}
		d := time.Since(start)
		b.recordSuccess(d)
		c.met.shardDone(b.name, d)
		return raw, 0, nil

	case resp.StatusCode == http.StatusTooManyRequests ||
		resp.StatusCode == http.StatusServiceUnavailable:
		hint := time.Second
		if s, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && s > 0 {
			hint = time.Duration(s) * time.Second
		}
		return nil, hint, fmt.Errorf("backend backpressure (%d)", resp.StatusCode)

	case resp.StatusCode >= 400 && resp.StatusCode < 500:
		eb, ok := server.DecodeError(raw)
		if !ok {
			eb = server.ErrorBody{Code: server.ErrInternal, Message: string(raw)}
		}
		return nil, 0, &permanentError{status: resp.StatusCode, body: eb}

	default:
		b.recordFailure(time.Now(), c.cfg.BreakerThreshold, c.cfg.BreakerCooldown)
		return nil, 0, fmt.Errorf("backend status %d: %s", resp.StatusCode, bytes.TrimSpace(raw))
	}
}

// maxResponseBytes bounds one backend response read (a full-catalog suite
// body is ~1 MiB; run bodies are a few KiB).
const maxResponseBytes = 64 << 20

// readAllLimited drains one bounded backend response body.
func readAllLimited(r io.Reader) ([]byte, error) {
	return io.ReadAll(io.LimitReader(r, maxResponseBytes))
}

// sleepCtx sleeps d or returns early with the context's error.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hpe/internal/server"
)

// --- chaos harness -------------------------------------------------------
//
// Each test backend is a real server.Server behind a chaos gate that can
// simulate the two loss modes the coordinator must survive: a kill
// (connections reset, every new connection refused — a crashed process) and
// a pause (every request, including /healthz, blocks — a SIGSTOPped process
// or dead NIC). The coordinator under test talks to the gates over real
// HTTP, so what the tests exercise is the exact production path: transport
// errors, health-probe timeouts, death-watch cancellation, ring-walk
// re-dispatch.

type chaosBackend struct {
	srv  *server.Server
	ts   *httptest.Server
	gate *chaosGate
}

type chaosGate struct {
	inner http.Handler

	killed atomic.Bool
	paused atomic.Pointer[chan struct{}] // non-nil while paused; closed to resume

	runPosts atomic.Int64 // POST /v1/runs requests seen
	// killAt / pauseAt, when positive, trigger the matching failure upon
	// seeing that many run POSTs — a deterministic mid-sweep crash or hang.
	killAt   atomic.Int64
	pauseAt  atomic.Int64
	killrun  func()
	pauserun func()
}

func (g *chaosGate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost && r.URL.Path == "/v1/runs" {
		n := g.runPosts.Add(1)
		if at := g.killAt.Load(); at > 0 && n == at {
			g.killrun()
		}
		if at := g.pauseAt.Load(); at > 0 && n == at {
			g.pauserun()
		}
	}
	if g.killed.Load() {
		// A crashed process does not write an HTTP response: drop the
		// connection on the floor.
		if hj, ok := w.(http.Hijacker); ok {
			if conn, _, err := hj.Hijack(); err == nil {
				conn.Close()
				return
			}
		}
		panic(http.ErrAbortHandler)
	}
	if ch := g.paused.Load(); ch != nil {
		<-*ch // blocked until resumed; health probes time out meanwhile
		if g.killed.Load() {
			panic(http.ErrAbortHandler)
		}
	}
	g.inner.ServeHTTP(w, r)
}

func newChaosBackend(t *testing.T, workers int) *chaosBackend {
	t.Helper()
	srv := server.New(server.Config{Workers: workers})
	gate := &chaosGate{inner: srv.Handler()}
	ts := httptest.NewServer(gate)
	cb := &chaosBackend{srv: srv, ts: ts, gate: gate}
	gate.killrun = cb.kill
	gate.pauserun = cb.pause
	t.Cleanup(func() {
		cb.resume() // never leave handler goroutines blocked on the pause gate
		cb.ts.Close()
		cb.srv.Close()
	})
	return cb
}

// kill simulates a crash: future connections are dropped and in-flight ones
// reset mid-body.
func (cb *chaosBackend) kill() {
	cb.gate.killed.Store(true)
	go cb.ts.CloseClientConnections()
}

// pause simulates a hung process: every request blocks until resume.
func (cb *chaosBackend) pause() {
	ch := make(chan struct{})
	cb.gate.paused.Store(&ch)
}

func (cb *chaosBackend) resume() {
	if ch := cb.gate.paused.Swap(nil); ch != nil {
		close(*ch)
	}
}

// testCluster is N chaos backends plus a coordinator over them.
type testCluster struct {
	backends []*chaosBackend
	coord    *Coordinator
	front    *httptest.Server
}

func newTestCluster(t *testing.T, n int) *testCluster {
	t.Helper()
	tc := &testCluster{}
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		cb := newChaosBackend(t, 2)
		tc.backends = append(tc.backends, cb)
		urls[i] = cb.ts.URL
	}
	// HealthTimeout must tolerate scheduler starvation: on a small machine
	// the backends' CPU-bound simulations share cores with the /healthz
	// handlers, and a too-tight probe deadline declares healthy-but-busy
	// backends dead mid-sweep. 2s is far past any plausible handler delay
	// while still making the pause tests finish quickly.
	coord, err := New(Config{
		Backends:         urls,
		HealthInterval:   100 * time.Millisecond,
		HealthTimeout:    2 * time.Second,
		MaxAttempts:      5,
		BackoffBase:      10 * time.Millisecond,
		BackoffMax:       100 * time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	tc.coord = coord
	tc.front = httptest.NewServer(coord.Handler())
	t.Cleanup(func() {
		tc.front.Close()
		coord.Close()
	})
	return tc
}

// --- HTTP helpers --------------------------------------------------------

func post(t *testing.T, base, path, body string) (int, []byte, http.Header) {
	t.Helper()
	resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("POST %s: read body: %v", path, err)
	}
	return resp.StatusCode, b, resp.Header
}

func get(t *testing.T, base, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", path, err)
	}
	return resp.StatusCode, b
}

// quickSuiteBody sweeps the deterministic figure experiments over the quick
// subset. The overhead experiment is excluded on purpose: it embeds host
// wall-clock measurements, so no two executions are byte-identical anywhere
// — single node included.
const quickSuiteBody = `{"ids":["fig10","fig12"],"quick":true,"seed":1}`

// singleNodeSuiteGolden computes the sweep on one undamaged backend directly
// — the single-node truth the coordinator's merged body must equal.
func singleNodeSuiteGolden(t *testing.T, cb *chaosBackend) []byte {
	t.Helper()
	code, body, _ := post(t, cb.ts.URL, "/v1/suite", quickSuiteBody)
	if code != http.StatusOK {
		t.Fatalf("single-node suite: status %d: %s", code, body)
	}
	return body
}

// --- byte-identity -------------------------------------------------------

// TestClusterSweepByteIdentical is the tentpole contract: a 3-backend
// coordinator sweep must render byte-for-byte the body a single hped
// renders for the same request.
func TestClusterSweepByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick-subset sweep skipped in -short mode")
	}
	tc := newTestCluster(t, 3)
	code, merged, _ := post(t, tc.front.URL, "/v1/suite", quickSuiteBody)
	if code != http.StatusOK {
		t.Fatalf("coordinator suite: status %d: %s", code, merged)
	}
	golden := singleNodeSuiteGolden(t, tc.backends[0])
	if !bytes.Equal(merged, golden) {
		t.Fatalf("merged sweep differs from single-node run:\nmerged %d bytes, single %d bytes",
			len(merged), len(golden))
	}
	// Every backend took a share of the matrix: the coordinator sharded, it
	// did not just proxy the whole sweep to one node.
	shared := 0
	for i, cb := range tc.backends {
		if n := cb.gate.runPosts.Load(); n > 0 {
			shared++
		} else {
			t.Logf("backend %d received no shards", i)
		}
	}
	if shared < 2 {
		t.Fatalf("only %d backends received shards; consistent hashing should spread the matrix", shared)
	}
	// The merged body is cached: a re-POST is a coordinator cache hit.
	code, again, _ := post(t, tc.front.URL, "/v1/suite", quickSuiteBody)
	if code != http.StatusOK || !bytes.Equal(again, merged) {
		t.Fatalf("cached re-sweep: status %d, bytes equal %t", code, bytes.Equal(again, merged))
	}
}

// TestClusterRunByteIdentical checks the single-run path: the coordinator
// relays the owning backend's RunResponse verbatim, so the bytes equal a
// direct single-node submission's.
func TestClusterRunByteIdentical(t *testing.T) {
	tc := newTestCluster(t, 3)
	const spec = `{"app":"HOT","policy":"hpe","rate":75}`
	code, viaCluster, _ := post(t, tc.front.URL, "/v1/runs", spec)
	if code != http.StatusOK {
		t.Fatalf("coordinator run: status %d: %s", code, viaCluster)
	}
	code, direct, _ := post(t, tc.backends[1].ts.URL, "/v1/runs", spec)
	if code != http.StatusOK {
		t.Fatalf("direct run: status %d", code)
	}
	if !bytes.Equal(viaCluster, direct) {
		t.Fatal("coordinator run body differs from single-node body")
	}
	var rr server.RunResponse
	if err := json.Unmarshal(viaCluster, &rr); err != nil {
		t.Fatalf("decode run response: %v", err)
	}
	if rr.ID == "" || rr.Result.Accesses == 0 {
		t.Fatalf("suspicious run response: %+v", rr)
	}
	// GET /v1/runs/{id} resolves cluster-wide (coordinator cache here).
	code, fetched := get(t, tc.front.URL, "/v1/runs/"+rr.ID)
	if code != http.StatusOK || !bytes.Equal(fetched, viaCluster) {
		t.Fatalf("GET by id: status %d, bytes equal %t", code, bytes.Equal(fetched, viaCluster))
	}
}

// TestClusterScenarioRunByteIdentical checks workload-v2 specs ride the same
// relay: a phase-schedule run and a colocated two-tenant run each produce
// byte-identical bodies through the coordinator and a direct single-node
// submission, and the colocated body carries per-tenant attribution.
func TestClusterScenarioRunByteIdentical(t *testing.T) {
	tc := newTestCluster(t, 3)
	specs := []string{
		`{"phases":"HOT:16,HSD:32,HOT:16","policy":"lru","rate":75}`,
		`{"tenants":"HSD,BFS","interleave":512,"policy":"hpe","rate":75}`,
	}
	for _, spec := range specs {
		code, viaCluster, _ := post(t, tc.front.URL, "/v1/runs", spec)
		if code != http.StatusOK {
			t.Fatalf("coordinator scenario run: status %d: %s", code, viaCluster)
		}
		code, direct, _ := post(t, tc.backends[0].ts.URL, "/v1/runs", spec)
		if code != http.StatusOK {
			t.Fatalf("direct scenario run: status %d", code)
		}
		if !bytes.Equal(viaCluster, direct) {
			t.Fatalf("scenario %s: coordinator body differs from single-node body", spec)
		}
	}
	var rr server.RunResponse
	code, body, _ := post(t, tc.front.URL, "/v1/runs", specs[1])
	if code != http.StatusOK {
		t.Fatalf("cached scenario re-run: status %d", code)
	}
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatalf("decode run response: %v", err)
	}
	if len(rr.Result.Driver.Tenants) != 2 {
		t.Fatalf("colocated run body lacks per-tenant stats: %+v", rr.Result.Driver.Tenants)
	}
}

// --- chaos ---------------------------------------------------------------

// TestBackendKilledMidSweep crashes one backend partway through a sweep: its
// connections reset, the health loop marks it dead, and its shards
// re-dispatch around the ring. The merged body must still be byte-identical
// to a single-node run.
func TestBackendKilledMidSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep skipped in -short mode")
	}
	tc := newTestCluster(t, 3)
	// Crash backend 2 at its 3rd shard — deterministically mid-sweep.
	tc.backends[2].gate.killAt.Store(3)

	code, merged, _ := post(t, tc.front.URL, "/v1/suite", quickSuiteBody)
	if code != http.StatusOK {
		t.Fatalf("sweep with mid-flight crash: status %d: %s", code, merged)
	}
	if n := tc.backends[2].gate.runPosts.Load(); n < 3 {
		t.Fatalf("backend 2 saw %d run posts; the crash never happened mid-sweep", n)
	}
	if got := tc.coord.met.redispatchCount(); got == 0 {
		t.Fatal("no re-dispatches recorded despite a crashed backend")
	}
	golden := singleNodeSuiteGolden(t, tc.backends[0])
	if !bytes.Equal(merged, golden) {
		t.Fatal("post-crash merged sweep differs from single-node run")
	}
}

// TestBackendPausedPastHealthDeadline hangs one backend without closing its
// connections — the nastier failure: in-flight shards block silently. The
// death watch must abandon them once the health probe times out, and the
// sweep must complete byte-identical on the survivors.
func TestBackendPausedPastHealthDeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep skipped in -short mode")
	}
	tc := newTestCluster(t, 3)
	// Hang backend 1 on its 3rd shard — deterministically mid-sweep. The
	// triggering request itself blocks inside the gate, exactly like a
	// process that stops scheduling with a request half-served.
	tc.backends[1].gate.pauseAt.Store(3)

	code, merged, _ := post(t, tc.front.URL, "/v1/suite", quickSuiteBody)
	if code != http.StatusOK {
		t.Fatalf("sweep with paused backend: status %d: %s", code, merged)
	}
	if tc.backends[1].gate.paused.Load() == nil {
		t.Fatal("pause never triggered; the chaos never happened")
	}
	if got := tc.coord.met.redispatchCount(); got == 0 {
		t.Fatal("no re-dispatches recorded despite a paused backend")
	}
	golden := singleNodeSuiteGolden(t, tc.backends[0])
	if !bytes.Equal(merged, golden) {
		t.Fatal("post-pause merged sweep differs from single-node run")
	}
}

// TestAllBackendsDead pins the exhaustion envelope: with every backend gone,
// a run submission fails with 503 backend_unavailable — the coordinator's
// one addition to the shared error vocabulary.
func TestAllBackendsDead(t *testing.T) {
	tc := newTestCluster(t, 2)
	for _, cb := range tc.backends {
		cb.kill()
	}
	tc.coord.CheckHealth(tc.coord.baseCtx)

	code, body, hdr := post(t, tc.front.URL, "/v1/runs", `{"app":"HOT","policy":"lru","rate":75}`)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503; body %s", code, body)
	}
	eb, ok := server.DecodeError(body)
	if !ok || eb.Code != server.ErrBackendUnavailable {
		t.Fatalf("error envelope = %+v (ok=%t), want code backend_unavailable", eb, ok)
	}
	if eb.RunID == "" {
		t.Fatal("envelope missing the run id the request resolved to")
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After hint")
	}
	// The coordinator's own health now fails too.
	code, body = get(t, tc.front.URL, "/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("healthz with no live backends: status %d: %s", code, body)
	}
}

// TestBackendRecovery kills a backend, then resurrects it (same address) and
// checks the health loop brings it back into rotation — the consistent-hash
// ring needs no rebuild.
func TestBackendRecovery(t *testing.T) {
	tc := newTestCluster(t, 2)
	cb := tc.backends[0]
	cb.kill()
	tc.coord.CheckHealth(tc.coord.baseCtx)
	if tc.coord.backends[cb.ts.URL].isAlive() {
		t.Fatal("killed backend still marked alive after a health round")
	}
	// Resurrect: clear the kill flag (the gate answers again).
	cb.gate.killed.Store(false)
	tc.coord.CheckHealth(tc.coord.baseCtx)
	if !tc.coord.backends[cb.ts.URL].isAlive() {
		t.Fatal("recovered backend not marked alive after a health round")
	}
	code, body, _ := post(t, tc.front.URL, "/v1/runs", `{"app":"STN","policy":"lru","rate":75}`)
	if code != http.StatusOK {
		t.Fatalf("run after recovery: status %d: %s", code, body)
	}
}

// --- enumeration ---------------------------------------------------------

func TestMergedEnumeration(t *testing.T) {
	tc := newTestCluster(t, 3)
	specs := []string{
		`{"app":"HOT","policy":"lru","rate":75}`,
		`{"app":"STN","policy":"lru","rate":75}`,
		`{"app":"SGM","policy":"lru","rate":50}`,
		`{"app":"NW","policy":"hpe","rate":50}`,
	}
	var ids []string
	for _, sp := range specs {
		code, body, _ := post(t, tc.front.URL, "/v1/runs", sp)
		if code != http.StatusOK {
			t.Fatalf("run: status %d: %s", code, body)
		}
		var rr server.RunResponse
		if err := json.Unmarshal(body, &rr); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, rr.ID)
	}

	code, body := get(t, tc.front.URL, "/v1/runs")
	if code != http.StatusOK {
		t.Fatalf("list: status %d: %s", code, body)
	}
	var list server.RunListResponse
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	got := map[string]server.RunListEntry{}
	for i, e := range list.Runs {
		got[e.ID] = e
		if i > 0 && list.Runs[i-1].ID >= e.ID {
			t.Fatalf("listing out of canonical order: %q before %q", list.Runs[i-1].ID, e.ID)
		}
	}
	for _, id := range ids {
		e, ok := got[id]
		if !ok {
			t.Fatalf("run %s missing from merged enumeration", id)
		}
		if e.Status != "cached" || e.Kind != "run" || e.Summary == "" {
			t.Fatalf("entry %+v: want cached run with a summary", e)
		}
	}

	// Pagination walks the same set.
	var paged []string
	after := ""
	for {
		path := "/v1/runs?limit=2"
		if after != "" {
			path += "&after=" + after
		}
		code, body := get(t, tc.front.URL, path)
		if code != http.StatusOK {
			t.Fatalf("paged list: status %d", code)
		}
		var page server.RunListResponse
		if err := json.Unmarshal(body, &page); err != nil {
			t.Fatal(err)
		}
		if len(page.Runs) > 2 {
			t.Fatalf("page holds %d entries, limit was 2", len(page.Runs))
		}
		for _, e := range page.Runs {
			paged = append(paged, e.ID)
		}
		if !page.Truncated {
			break
		}
		after = page.Runs[len(page.Runs)-1].ID
	}
	if len(paged) != len(list.Runs) {
		t.Fatalf("pagination yielded %d entries, full listing %d", len(paged), len(list.Runs))
	}
	for i, e := range list.Runs {
		if paged[i] != e.ID {
			t.Fatalf("pagination order diverges at %d: %q vs %q", i, paged[i], e.ID)
		}
	}
}

// --- surface parity ------------------------------------------------------

func TestCatalogParity(t *testing.T) {
	tc := newTestCluster(t, 1)
	for _, path := range []string{"/v1/policies", "/v1/apps", "/v1/scenarios"} {
		code, viaCoord := get(t, tc.front.URL, path)
		if code != http.StatusOK {
			t.Fatalf("coordinator %s: status %d", path, code)
		}
		code, direct := get(t, tc.backends[0].ts.URL, path)
		if code != http.StatusOK {
			t.Fatalf("backend %s: status %d", path, code)
		}
		if !bytes.Equal(viaCoord, direct) {
			t.Fatalf("%s differs between coordinator and backend", path)
		}
	}
}

func TestBadSpecEnvelopeParity(t *testing.T) {
	tc := newTestCluster(t, 1)
	const bad = `{"app":"NOPE","policy":"lru","rate":75}`
	code, viaCoord, _ := post(t, tc.front.URL, "/v1/runs", bad)
	code2, direct, _ := post(t, tc.backends[0].ts.URL, "/v1/runs", bad)
	if code != http.StatusBadRequest || code2 != http.StatusBadRequest {
		t.Fatalf("statuses %d/%d, want 400/400", code, code2)
	}
	ec, ok1 := server.DecodeError(viaCoord)
	ed, ok2 := server.DecodeError(direct)
	if !ok1 || !ok2 || ec.Code != server.ErrBadSpec || ed.Code != server.ErrBadSpec {
		t.Fatalf("envelopes %+v / %+v, want bad_spec on both layers", ec, ed)
	}
}

func TestClusterMetricsExposition(t *testing.T) {
	tc := newTestCluster(t, 2)
	code, body, _ := post(t, tc.front.URL, "/v1/runs", `{"app":"HOT","policy":"lru","rate":75}`)
	if code != http.StatusOK {
		t.Fatalf("run: status %d: %s", code, body)
	}
	code, metrics := get(t, tc.front.URL, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	text := string(metrics)
	for _, want := range []string{
		"hped_cluster_shards_total",
		"hped_cluster_redispatched_total",
		"hped_cluster_backend_up",
		"hped_cluster_backend_capacity_rps",
		"hped_cluster_capacity_rps",
		"hped_cluster_backends_live 2",
		"hped_cluster_shard_latency_seconds_count 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	// One shard completed: the saturation analyzer has an estimate now.
	sat := tc.coord.Saturation()
	if sat.Live != 2 || sat.ClusterRPS <= 0 {
		t.Fatalf("saturation after one shard: %+v", sat)
	}
}

// --- soak ----------------------------------------------------------------

// TestCoordinatorSoak hammers the coordinator's full surface concurrently;
// run under -race it is the cluster's data-race canary.
func TestCoordinatorSoak(t *testing.T) {
	tc := newTestCluster(t, 3)
	specs := []string{
		`{"app":"HOT","policy":"lru","rate":75}`,
		`{"app":"STN","policy":"lru","rate":75}`,
		`{"app":"HOT","policy":"hpe","rate":50}`,
		`{"app":"SGM","policy":"clockpro","rate":75}`,
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				switch (g + i) % 4 {
				case 0, 1:
					code, body, _ := post(t, tc.front.URL, "/v1/runs", specs[(g+i)%len(specs)])
					if code != http.StatusOK {
						errs <- fmt.Errorf("run status %d: %s", code, body)
					}
				case 2:
					if code, _ := get(t, tc.front.URL, "/v1/runs?limit=10"); code != http.StatusOK {
						errs <- fmt.Errorf("list status %d", code)
					}
				case 3:
					if code, _ := get(t, tc.front.URL, "/metrics"); code != http.StatusOK {
						errs <- fmt.Errorf("metrics status %d", code)
					}
				}
			}
		}(g)
	}
	// Meanwhile the health loop keeps probing and one backend flaps.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			tc.backends[2].pause()
			time.Sleep(120 * time.Millisecond)
			tc.backends[2].resume()
			time.Sleep(120 * time.Millisecond)
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

package cluster

import (
	"io"
	"sync"
	"time"

	"hpe/internal/promtext"
	"hpe/internal/respcache"
	"hpe/internal/stats"
)

// clusterMetrics aggregates the coordinator's operational counters: HTTP
// responses, shard dispatch outcomes per backend, re-dispatches, and the
// shard service-latency histogram the saturation analyzer cross-checks.
type clusterMetrics struct {
	mu sync.Mutex

	requests map[string]uint64 // guarded by mu; "route code" → count
	shards   map[string]uint64 // guarded by mu; backend → shards completed

	redispatched uint64          // guarded by mu; shards tried off their primary owner or re-tried
	shardLat     stats.Histogram // guarded by mu; shard round-trip, µs
}

func newClusterMetrics() *clusterMetrics {
	return &clusterMetrics{
		requests: make(map[string]uint64),
		shards:   make(map[string]uint64),
	}
}

func (m *clusterMetrics) observeRequest(route string, code int) {
	m.mu.Lock()
	m.requests[route+" "+itoa(code)]++
	m.mu.Unlock()
}

func itoa(code int) string {
	// Status codes are three digits; avoid strconv on the request path.
	return string([]byte{byte('0' + code/100), byte('0' + code/10%10), byte('0' + code%10)})
}

// shardDone records one shard served by the named backend.
func (m *clusterMetrics) shardDone(backend string, d time.Duration) {
	m.mu.Lock()
	m.shards[backend]++
	m.shardLat.Observe(uint64(d.Microseconds()))
	m.mu.Unlock()
}

// redispatch counts one shard attempt landing somewhere other than its
// first-choice owner on the first try — the ring-walk fallback in action.
func (m *clusterMetrics) redispatch() {
	m.mu.Lock()
	m.redispatched++
	m.mu.Unlock()
}

// redispatchCount returns the redispatch counter (tests).
func (m *clusterMetrics) redispatchCount() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.redispatched
}

// render writes the full Prometheus exposition: the metrics' own counters
// plus the point-in-time backend, saturation, cache, and coalescer figures
// the Coordinator passes in.
func (m *clusterMetrics) render(w io.Writer, snaps []backendSnapshot, sat Saturation,
	cs respcache.Stats, coalesced uint64) {
	// Snapshot under the lock, render outside it: w is an HTTP response, and
	// a slow scraper must not stall shard-dispatch bookkeeping behind the
	// socket write (hpelint/lockorder).
	m.mu.Lock()
	requests := copyCounts(m.requests)
	shards := copyCounts(m.shards)
	redispatched := m.redispatched
	shardLat := m.shardLat
	m.mu.Unlock()
	p := promtext.New(w)

	p.LabelledCounter("hped_cluster_requests_total",
		"Coordinator HTTP responses by route and status code.", requests, "route_code")
	p.LabelledCounter("hped_cluster_shards_total",
		"Shards completed, by owning backend.", shards, "backend")
	p.Counter("hped_cluster_redispatched_total",
		"Shard attempts routed past their primary owner (dead, broken, or saturated).",
		redispatched)
	p.Counter("hped_cluster_coalesced_total",
		"Coordinator requests served by joining an identical in-flight computation.", coalesced)

	up := make(map[string]float64, len(snaps))
	open := make(map[string]float64, len(snaps))
	workers := make(map[string]float64, len(snaps))
	inflight := make(map[string]float64, len(snaps))
	dispatched := make(map[string]uint64, len(snaps))
	failures := make(map[string]uint64, len(snaps))
	breakerOpens := make(map[string]uint64, len(snaps))
	capacity := make(map[string]float64, len(snaps))
	for _, s := range snaps {
		up[s.Name] = b2f(s.Alive)
		open[s.Name] = b2f(s.BreakerOpen)
		workers[s.Name] = float64(s.Workers)
		inflight[s.Name] = float64(s.Inflight)
		dispatched[s.Name] = s.Dispatched
		failures[s.Name] = s.Failures
		breakerOpens[s.Name] = s.BreakerOpens
		capacity[s.Name] = s.CapacityRPS
	}
	p.LabelledGauge("hped_cluster_backend_up",
		"1 when the backend's last health probe succeeded.", up, "backend")
	p.LabelledGauge("hped_cluster_backend_breaker_open",
		"1 while the backend's circuit breaker refuses shards.", open, "backend")
	p.LabelledGauge("hped_cluster_backend_workers",
		"Simulation workers the backend reported on /healthz.", workers, "backend")
	p.LabelledGauge("hped_cluster_backend_inflight_shards",
		"Shards currently dispatched to the backend.", inflight, "backend")
	p.LabelledCounter("hped_cluster_backend_dispatch_failures_total",
		"Dispatch failures charged to the backend's breaker.", failures, "backend")
	p.LabelledCounter("hped_cluster_backend_breaker_opens_total",
		"Closed-to-open breaker transitions per backend.", breakerOpens, "backend")
	p.LabelledCounter("hped_cluster_backend_shards_done_total",
		"Shards the backend completed (breaker-level view).", dispatched, "backend")

	// The saturation analyzer's output: per-backend and whole-cluster max
	// sustainable request rate, from observed service times and reported
	// worker counts.
	p.LabelledGauge("hped_cluster_backend_capacity_rps",
		"Estimated max sustainable shard rate of the backend (workers / EWMA service seconds).",
		capacity, "backend")
	p.Gauge("hped_cluster_capacity_rps",
		"Estimated max sustainable shard rate of the whole cluster (sum over live backends).",
		sat.ClusterRPS)
	p.Gauge("hped_cluster_backends_live",
		"Backends whose last health probe succeeded.", float64(sat.Live))

	p.Counter("hped_cluster_cache_hits_total", "Coordinator result-cache hits.", cs.Hits)
	p.Counter("hped_cluster_cache_misses_total", "Coordinator result-cache misses.", cs.Misses)
	p.Gauge("hped_cluster_cache_bytes",
		"Bytes of response bodies held by the coordinator's result cache.", float64(cs.Bytes))
	p.Gauge("hped_cluster_cache_entries",
		"Entries held by the coordinator's result cache.", float64(cs.Entries))

	p.Histogram("hped_cluster_shard_latency_seconds",
		"Round-trip latency of one shard dispatched to a backend.", &shardLat, 1e-6)
}

// copyCounts duplicates a counter map so render can release the metrics
// lock before any byte reaches the response writer.
func copyCounts(src map[string]uint64) map[string]uint64 {
	out := make(map[string]uint64, len(src))
	for k, v := range src {
		out[k] = v
	}
	return out
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// Consistent-hash ring with virtual nodes. Every backend is hashed onto the
// ring at VNodes points; a shard (a run's content address) is owned by the
// first backend clockwise of its own hash. Virtual nodes smooth the
// partition: with ~64 points per backend the load imbalance across backends
// stays within a few percent, and adding or removing one backend moves only
// ~1/N of the shards (the classic consistent-hashing property — a restarted
// backend re-owns exactly the shards it owned before).
//
// The ring is immutable after construction: liveness is NOT baked into the
// ring. sequence(key) yields every backend in clockwise walk order, and the
// dispatcher takes the first usable one — so a dead backend's shards fall
// through to the next backend on the ring (re-dispatch) and return home
// automatically when it recovers, with no ring rebuild and no coordination.

// ring maps shard keys to an ordered backend preference list.
type ring struct {
	points []ringPoint // sorted by hash
	names  []string    // distinct backends, construction order
}

type ringPoint struct {
	hash uint64
	name string
}

// hashKey is the ring's hash: the first 8 bytes of SHA-256, the same family
// as the run content addresses themselves, so placement is uniform even for
// adversarially similar keys.
func hashKey(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// newRing builds the ring with vnodes virtual points per backend.
func newRing(names []string, vnodes int) *ring {
	if vnodes < 1 {
		vnodes = 1
	}
	r := &ring{names: names}
	r.points = make([]ringPoint, 0, len(names)*vnodes)
	for _, name := range names {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash: hashKey(name + "#" + strconv.Itoa(v)),
				name: name,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return a.name < b.name // total order even on (astronomically unlikely) hash ties
	})
	return r
}

// owner returns the backend owning key: the first point clockwise of the
// key's hash.
func (r *ring) owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap past the top of the ring
	}
	return r.points[i].name
}

// sequence returns every distinct backend in clockwise walk order from key's
// position — the shard's full preference list. sequence(key)[0] == owner(key);
// the dispatcher walks the tail when earlier entries are dead or broken.
func (r *ring) sequence(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	h := hashKey(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make(map[string]bool, len(r.names))
	out := make([]string, 0, len(r.names))
	for i := 0; i < len(r.points) && len(out) < len(r.names); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.name] {
			seen[p.name] = true
			out = append(out, p.name)
		}
	}
	return out
}

package cluster

import (
	"context"
	"sync"
	"time"
)

// backend is the coordinator's view of one hped instance: liveness and
// capacity learned from /healthz, a circuit breaker fed by dispatch
// outcomes, a dispatch window bounding in-flight shards, and the EWMA
// service-time estimate the saturation analyzer builds on. All mutable state
// sits behind one mutex; every hold is a few loads and stores, never I/O.
type backend struct {
	name string // base URL, immutable

	mu      sync.Mutex
	alive   bool // guarded by mu; last health probe succeeded
	workers int  // guarded by mu; backend-reported simulation workers
	queue   int  // guarded by mu; backend-reported admission queue depth

	// sem is the dispatch window: one slot per shard the backend can hold
	// without rejecting (workers + queue, learned from /healthz). Slots are
	// acquired by sending and released by receiving from the captured
	// channel, so a window resize (rare) strands at most the old channel.
	sem chan struct{} // guarded by mu; replaced when the reported window changes

	fails     int       // guarded by mu; consecutive dispatch failures
	openUntil time.Time // guarded by mu; breaker open until this instant

	// ewmaService is the exponentially-weighted mean observed service time
	// of one shard on this backend, in seconds; 0 before any observation.
	ewmaService float64 // guarded by mu

	dispatched   uint64 // guarded by mu; shards completed here
	failures     uint64 // guarded by mu; dispatch failures charged here
	breakerOpens uint64 // guarded by mu; closed→open transitions

	// watchers are the cancel functions of in-flight dispatches to this
	// backend; all fire when a health probe marks it dead, so a shard POSTed
	// to a backend that silently hangs (paused process, dead NIC) is
	// abandoned and re-dispatched instead of blocking its sweep forever.
	watchers  map[int]context.CancelFunc // guarded by mu
	nextWatch int                        // guarded by mu
}

const (
	// defaultWindow bounds in-flight shards per backend before the first
	// successful health probe reports the real workers+queue figure.
	defaultWindow = 4
	// ewmaAlpha weighs the newest service-time observation; ~0.2 settles in
	// a handful of shards without whiplashing on one outlier.
	ewmaAlpha = 0.2
)

func newBackend(name string) *backend {
	return &backend{
		name:     name,
		sem:      make(chan struct{}, defaultWindow),
		watchers: make(map[int]context.CancelFunc),
	}
}

// watchDeath registers cancel to fire if the backend is marked dead while
// the caller's dispatch is in flight. The returned unwatch deregisters it.
func (b *backend) watchDeath(cancel context.CancelFunc) (unwatch func()) {
	b.mu.Lock()
	id := b.nextWatch
	b.nextWatch++
	b.watchers[id] = cancel
	b.mu.Unlock()
	return func() {
		b.mu.Lock()
		delete(b.watchers, id)
		b.mu.Unlock()
	}
}

// setHealth applies one health-probe outcome. A dead verdict abandons every
// in-flight dispatch (their shards re-dispatch elsewhere); a live one
// resizes the dispatch window to the reported workers+queue.
func (b *backend) setHealth(ok bool, workers, queue int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.alive = ok
	if !ok {
		for id, cancel := range b.watchers {
			cancel()
			delete(b.watchers, id)
		}
		return
	}
	b.workers, b.queue = workers, queue
	if want := workers + queue; want > 0 && want != cap(b.sem) {
		b.sem = make(chan struct{}, want)
	}
	// A live probe is evidence the instance is back: give the breaker a
	// fresh start so the next shard can try it.
	b.fails = 0
	b.openUntil = time.Time{}
}

// isAlive reports whether the last health probe succeeded.
func (b *backend) isAlive() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.alive
}

// usable reports whether the dispatcher may try this backend now: last
// health probe succeeded and the breaker is not open. An expired breaker
// deadline is the half-open state — the next shard probes the backend, and
// its outcome re-closes or re-opens the breaker.
func (b *backend) usable(now time.Time, breakerThreshold int) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.alive {
		return false
	}
	return b.fails < breakerThreshold || now.After(b.openUntil)
}

// acquire takes one dispatch-window slot, blocking until a slot frees, the
// context is cancelled, or the coordinator shuts down. The release closure
// returns the slot to the window the acquisition came from, so a concurrent
// resize cannot double-fill the new window.
func (b *backend) acquire(ctx context.Context) (release func(), err error) {
	b.mu.Lock()
	sem := b.sem
	b.mu.Unlock()
	select {
	case sem <- struct{}{}:
		return func() { <-sem }, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// recordSuccess folds one completed shard into the breaker (reset) and the
// saturation model (EWMA service time).
func (b *backend) recordSuccess(d time.Duration) {
	sec := d.Seconds()
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
	b.openUntil = time.Time{}
	b.dispatched++
	if b.ewmaService == 0 {
		b.ewmaService = sec
	} else {
		b.ewmaService = ewmaAlpha*sec + (1-ewmaAlpha)*b.ewmaService
	}
}

// recordFailure charges one dispatch failure; crossing the threshold opens
// the breaker for cooldown.
func (b *backend) recordFailure(now time.Time, threshold int, cooldown time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures++
	b.fails++
	if b.fails == threshold {
		b.openUntil = now.Add(cooldown)
		b.breakerOpens++
	} else if b.fails > threshold {
		// Half-open probe failed: re-open for another cooldown.
		b.openUntil = now.Add(cooldown)
	}
}

// backendSnapshot is the point-in-time view /metrics and the saturation
// analyzer render from.
type backendSnapshot struct {
	Name         string
	Alive        bool
	BreakerOpen  bool
	Workers      int
	Queue        int
	Inflight     int
	EWMAService  float64 // seconds per shard; 0 before any observation
	CapacityRPS  float64 // workers / EWMAService; 0 while unknown
	Dispatched   uint64
	Failures     uint64
	BreakerOpens uint64
}

// snapshot captures the backend's state at one instant.
func (b *backend) snapshot(now time.Time, breakerThreshold int) backendSnapshot {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := backendSnapshot{
		Name:         b.name,
		Alive:        b.alive,
		BreakerOpen:  b.fails >= breakerThreshold && now.Before(b.openUntil),
		Workers:      b.workers,
		Queue:        b.queue,
		Inflight:     len(b.sem),
		EWMAService:  b.ewmaService,
		Dispatched:   b.dispatched,
		Failures:     b.failures,
		BreakerOpens: b.breakerOpens,
	}
	if b.ewmaService > 0 && b.workers > 0 {
		s.CapacityRPS = float64(b.workers) / b.ewmaService
	}
	return s
}

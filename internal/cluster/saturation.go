package cluster

import "time"

// The saturation analyzer estimates each deployment's maximum sustainable
// request rate without load-testing it: every completed shard contributes an
// observed service time to its backend's EWMA, and a backend that reports W
// workers with a mean service time of s seconds can sustain ~W/s shards per
// second before its admission queue grows without bound. The cluster-wide
// figure is the sum over live backends — the rate at which the coordinator
// can accept work indefinitely. Both are exported on /metrics
// (hped_cluster_backend_capacity_rps, hped_cluster_capacity_rps) so capacity
// planning reads straight off the dashboard; a backend with no completed
// shard yet contributes 0 (unknown), making the estimate conservative during
// warm-up.

// Saturation is the analyzer's cluster-level output.
type Saturation struct {
	// PerBackend maps backend name to its estimated max sustainable shard
	// rate in runs/second; 0 while unknown (no shard observed yet).
	PerBackend map[string]float64
	// ClusterRPS is the sum over live backends.
	ClusterRPS float64
	// Live counts backends whose last health probe succeeded.
	Live int
}

// Saturation computes the current capacity estimate.
func (c *Coordinator) Saturation() Saturation {
	now := time.Now()
	sat := Saturation{PerBackend: make(map[string]float64, len(c.order))}
	for _, name := range c.order {
		s := c.backends[name].snapshot(now, c.cfg.BreakerThreshold)
		sat.PerBackend[name] = s.CapacityRPS
		if s.Alive {
			sat.Live++
			sat.ClusterRPS += s.CapacityRPS
		}
	}
	return sat
}

// snapshots captures every backend's state in configuration order.
func (c *Coordinator) snapshots() []backendSnapshot {
	now := time.Now()
	out := make([]backendSnapshot, 0, len(c.order))
	for _, name := range c.order {
		out = append(out, c.backends[name].snapshot(now, c.cfg.BreakerThreshold))
	}
	return out
}

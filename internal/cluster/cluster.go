// Package cluster implements hped's coordinator: one process that owns the
// public /v1 surface and partitions work across N hped backends by
// consistent-hashing each run's content address. The coordinator is not a
// dumb proxy — it runs the experiment harness locally (aggregation, report
// rendering, canonical ordering) and delegates only the simulations, each
// shard travelling to the backend owning its Spec.ID() over the exact wire
// forms a single hped speaks. Determinism is what makes the architecture
// sound: any backend's answer for a shard is THE answer, so a merged sweep
// is byte-identical to a single-node run, a restarted backend re-owns its
// old shards, and a dead backend's shards fall through to the next backend
// on the ring with no reconciliation protocol.
//
// The coordinator serves the same /v1 endpoints as a backend (runs, suite,
// policies, apps, healthz, metrics, enumeration), shares the backend's error
// envelope vocabulary verbatim, and adds cluster-level /metrics: per-backend
// liveness, breaker state, shard and re-dispatch counters, and the
// saturation analyzer's max-sustainable-rate estimates. See DESIGN.md §13.
package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"hpe"
	"hpe/internal/flight"
	"hpe/internal/promtext"
	"hpe/internal/respcache"
	"hpe/internal/runspec"
	"hpe/internal/server"
)

// Config sizes the coordinator.
type Config struct {
	// Backends are the base URLs of the hped instances to shard across
	// (e.g. "http://10.0.0.1:8080"). Required, at least one.
	Backends []string
	// VNodes is the number of virtual ring points per backend; defaults
	// to 64.
	VNodes int
	// HealthInterval is the /healthz polling period; defaults to 2s.
	HealthInterval time.Duration
	// HealthTimeout bounds one health probe; defaults to 1s.
	HealthTimeout time.Duration
	// MaxAttempts is how many ring-walk rounds one shard gets before the
	// coordinator gives up with backend_unavailable; defaults to 4.
	MaxAttempts int
	// BackoffBase/BackoffMax bound the deterministic exponential backoff
	// between dispatch rounds; default 100ms / 2s.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// BreakerThreshold is the consecutive-failure count that opens a
	// backend's circuit breaker; defaults to 3.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker refuses shards before one
	// half-open probe is allowed; defaults to 5s.
	BreakerCooldown time.Duration
	// CacheBytes is the coordinator's merged-result cache budget; defaults
	// to 256 MiB. Negative disables caching.
	CacheBytes int64
	// SuiteWorkers caps one sweep's concurrent shards; 0 means adaptive
	// (the live backends' summed workers+queue, so every backend's window
	// stays full without queueing rejections).
	SuiteWorkers int
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

func (c *Config) fillDefaults() {
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = 2 * time.Second
	}
	if c.HealthTimeout <= 0 {
		c.HealthTimeout = time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 100 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 2 * time.Second
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 256 << 20
	}
}

// Coordinator fronts a set of hped backends. Construct with New; it is safe
// for concurrent use and is wired into an http.Server via Handler.
type Coordinator struct {
	cfg        Config
	baseCtx    context.Context
	baseCancel context.CancelFunc
	ring       *ring
	order      []string            // backend names, configuration order (immutable)
	backends   map[string]*backend // immutable map; each backend locks itself
	client     *http.Client
	cache      *respcache.Cache
	co         *flight.Group
	met        *clusterMetrics
	mux        *http.ServeMux
	draining   chan struct{} // closed by Drain
	drainOnce  sync.Once
	healthDone chan struct{} // closed when the health loop exits

	sumMu     sync.Mutex
	summaries map[string]listMeta // guarded by sumMu; id → enumeration summary
}

// listMeta is the enumeration metadata the coordinator records at submission.
type listMeta struct {
	kind    string
	summary string
}

// New builds a Coordinator, performs one synchronous health round (so the
// first request sees real liveness, not a cold default), and starts the
// background health loop.
func New(cfg Config) (*Coordinator, error) {
	cfg.fillDefaults()
	if len(cfg.Backends) == 0 {
		return nil, errors.New("cluster: no backends configured")
	}
	seen := make(map[string]bool, len(cfg.Backends))
	for _, b := range cfg.Backends {
		if b == "" || seen[b] {
			return nil, fmt.Errorf("cluster: empty or duplicate backend %q", b)
		}
		seen[b] = true
	}
	//lint:ignore hpelint/ctxflow the coordinator owns its lifecycle root; Close cancels it, and the health loop and orphaned-shard computations derive from it
	ctx, cancel := context.WithCancel(context.Background())
	c := &Coordinator{
		cfg:        cfg,
		baseCtx:    ctx,
		baseCancel: cancel,
		ring:       newRing(cfg.Backends, cfg.VNodes),
		order:      cfg.Backends,
		backends:   make(map[string]*backend, len(cfg.Backends)),
		client:     &http.Client{},
		cache:      respcache.New(cfg.CacheBytes),
		co:         flight.NewGroup(),
		met:        newClusterMetrics(),
		draining:   make(chan struct{}),
		healthDone: make(chan struct{}),
		summaries:  make(map[string]listMeta),
	}
	for _, name := range cfg.Backends {
		c.backends[name] = newBackend(name)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", c.handleSubmitRun)
	mux.HandleFunc("GET /v1/runs", c.handleListRuns)
	mux.HandleFunc("GET /v1/runs/{id}", c.handleGetRun)
	mux.HandleFunc("POST /v1/suite", c.handleSuite)
	mux.HandleFunc("GET /v1/policies", c.handlePolicies)
	mux.HandleFunc("GET /v1/apps", c.handleApps)
	mux.HandleFunc("GET /v1/scenarios", c.handleScenarios)
	mux.HandleFunc("GET /healthz", c.handleHealthz)
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	c.mux = mux

	c.CheckHealth(ctx)
	go c.healthLoop()
	return c, nil
}

// Handler returns the HTTP handler tree.
func (c *Coordinator) Handler() http.Handler { return c.mux }

// Drain refuses new submissions with 503 while in-flight work completes.
func (c *Coordinator) Drain() { c.drainOnce.Do(func() { close(c.draining) }) }

func (c *Coordinator) isDraining() bool {
	select {
	case <-c.draining:
		return true
	default:
		return false
	}
}

// Close drains, stops the health loop, cancels in-flight dispatches, and
// returns a final stats line for logging.
func (c *Coordinator) Close() string {
	c.Drain()
	c.baseCancel()
	<-c.healthDone
	cs := c.cache.Snapshot()
	sat := c.Saturation()
	return fmt.Sprintf("cluster: %d/%d backends live, %.2f rps capacity; cache: %d entries, %d bytes; coalesced %d, redispatched %d",
		sat.Live, len(c.order), sat.ClusterRPS, cs.Entries, cs.Bytes,
		c.co.Coalesced(), c.met.redispatchCount())
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// --- health checking -----------------------------------------------------

// healthLoop polls every backend until Close.
func (c *Coordinator) healthLoop() {
	defer close(c.healthDone)
	t := time.NewTicker(c.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-c.baseCtx.Done():
			return
		case <-t.C:
			c.CheckHealth(c.baseCtx)
		}
	}
}

// CheckHealth performs one synchronous health round over all backends,
// updating liveness and capacity. Exported so tests (and the coordinator's
// own startup) can force a round instead of waiting out the interval.
func (c *Coordinator) CheckHealth(ctx context.Context) {
	var wg sync.WaitGroup
	for _, name := range c.order {
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			c.probeBackend(ctx, b)
		}(c.backends[name])
	}
	wg.Wait()
}

// probeBackend runs one GET /healthz against one backend.
func (c *Coordinator) probeBackend(ctx context.Context, b *backend) {
	pctx, cancel := context.WithTimeout(ctx, c.cfg.HealthTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, b.name+"/healthz", nil)
	if err != nil {
		b.setHealth(false, 0, 0)
		return
	}
	resp, err := c.client.Do(req)
	if err != nil {
		b.setHealth(false, 0, 0)
		return
	}
	defer resp.Body.Close()
	var hb server.HealthBody
	if resp.StatusCode != http.StatusOK ||
		json.NewDecoder(resp.Body).Decode(&hb) != nil || hb.Status != "ok" {
		b.setHealth(false, 0, 0)
		return
	}
	b.setHealth(true, hb.Workers, hb.Queue)
}

// liveBackends returns the names of backends whose last probe succeeded, in
// configuration order.
func (c *Coordinator) liveBackends() []string {
	out := make([]string, 0, len(c.order))
	for _, name := range c.order {
		if c.backends[name].isAlive() {
			out = append(out, name)
		}
	}
	return out
}

// --- response plumbing ---------------------------------------------------

func (c *Coordinator) writeBody(w http.ResponseWriter, route string, code int, source string, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	if source != "" {
		w.Header().Set("X-Hped-Source", source)
	}
	w.WriteHeader(code)
	w.Write(body)
	c.met.observeRequest(route, code)
}

// writeError emits one typed error envelope — the identical envelope the
// backends emit (server.WriteError), so clients branch on one vocabulary.
// 429/503 carry a Retry-After hint like the backend's.
func (c *Coordinator) writeError(w http.ResponseWriter, route string, status int, code server.ErrorCode, msg, runID string) {
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", strconv.Itoa(c.retryAfterSeconds()))
	}
	server.WriteError(w, status, code, msg, runID)
	c.met.observeRequest(route, status)
}

// retryAfterSeconds prices the cluster's backlog: total in-flight shards
// across backends, divided by the cluster's estimated capacity. Clamped to
// [1, 300] like the backend's own hint.
func (c *Coordinator) retryAfterSeconds() int {
	sat := c.Saturation()
	inflight := 0
	for _, s := range c.snapshots() {
		inflight += s.Inflight
	}
	if sat.ClusterRPS <= 0 {
		return 1
	}
	est := float64(inflight+1) / sat.ClusterRPS
	switch {
	case est < 1:
		return 1
	case est > 300:
		return 300
	}
	return int(est)
}

// recordSummary indexes id for GET /v1/runs enumeration.
func (c *Coordinator) recordSummary(id string, m listMeta) {
	c.sumMu.Lock()
	c.summaries[id] = m
	c.sumMu.Unlock()
}

// summaryOf looks up the recorded enumeration metadata for id.
func (c *Coordinator) summaryOf(id string) (listMeta, bool) {
	c.sumMu.Lock()
	defer c.sumMu.Unlock()
	m, ok := c.summaries[id]
	return m, ok
}

// --- /v1/runs: submission ------------------------------------------------

func (c *Coordinator) handleSubmitRun(w http.ResponseWriter, r *http.Request) {
	const route = "run_submit"
	if c.isDraining() {
		c.writeError(w, route, http.StatusServiceUnavailable, server.ErrDraining, "coordinator draining", "")
		return
	}
	sp, err := runspec.Decode(http.MaxBytesReader(nil, r.Body, 1<<20))
	if err != nil {
		c.writeError(w, route, http.StatusBadRequest, server.ErrBadSpec, "bad request body: "+err.Error(), "")
		return
	}
	id := sp.ID()
	c.recordSummary(id, listMeta{kind: "run", summary: runSummaryLine(sp)})
	c.serveComputed(w, r, route, id, func(ctx context.Context) ([]byte, error) {
		return c.dispatchRun(ctx, sp, id)
	})
}

// runSummaryLine renders the spec sketch shown by GET /v1/runs.
func runSummaryLine(sp hpe.RunSpec) string {
	out := fmt.Sprintf("%s %s @%d%%", sp.App, sp.Policy, sp.Rate)
	if v := sp.VariantLabel(); v != "" {
		out += " [" + v + "]"
	}
	return out
}

// serveComputed is the coordinator's cache → coalesce → compute path. There
// is no admission queue here — concurrency is bounded per backend by the
// dispatch windows — so the error mapping is smaller than the backend's.
func (c *Coordinator) serveComputed(w http.ResponseWriter, r *http.Request, route, id string,
	compute func(context.Context) ([]byte, error)) {
	if body, ok := c.cache.Get(id); ok {
		c.writeBody(w, route, http.StatusOK, "cache", body)
		return
	}
	body, coalesced, err := c.co.Do(r.Context(), c.baseCtx, id, func(ctx context.Context) ([]byte, error) {
		body, err := compute(ctx)
		if err != nil {
			return nil, err
		}
		c.cache.Put(id, body)
		return body, nil
	})
	source := "dispatch"
	if coalesced {
		source = "coalesce"
	}
	var perm *permanentError
	switch {
	case err == nil:
		c.writeBody(w, route, http.StatusOK, source, body)
	case errors.As(err, &perm):
		// The backend rejected the request itself: relay its envelope and
		// status verbatim — the coordinator adds no vocabulary of its own.
		c.met.observeRequest(route, perm.status)
		server.WriteError(w, perm.status, perm.body.Code, perm.body.Message, perm.body.RunID)
	case r.Context().Err() != nil:
		c.writeError(w, route, 499, server.ErrClientGone, "client disconnected", id)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		c.writeError(w, route, http.StatusServiceUnavailable, server.ErrCancelled,
			"computation cancelled: "+err.Error(), id)
	default:
		c.logf("coordinator: %s %s failed: %v", route, id, err)
		c.writeError(w, route, http.StatusServiceUnavailable, server.ErrBackendUnavailable,
			"no backend could run this shard: "+err.Error(), id)
	}
}

// --- /v1/runs/{id}: status and fetch -------------------------------------

func (c *Coordinator) handleGetRun(w http.ResponseWriter, r *http.Request) {
	const route = "run_get"
	id := r.PathValue("id")
	if body, ok := c.cache.Get(id); ok {
		c.writeBody(w, route, http.StatusOK, "cache", body)
		return
	}
	if waiters, running := c.co.Inflight(id); running {
		body, _ := json.Marshal(map[string]any{"id": id, "status": "running", "waiters": waiters})
		c.writeBody(w, route, http.StatusAccepted, "", append(body, '\n'))
		return
	}
	// Not held locally: walk the shard's preference sequence, then any other
	// live backend (the id may predate a ring change). First cached or
	// in-flight answer wins.
	tried := make(map[string]bool)
	for _, name := range append(c.ring.sequence(id), c.liveBackends()...) {
		if tried[name] {
			continue
		}
		tried[name] = true
		b := c.backends[name]
		if !b.usable(time.Now(), c.cfg.BreakerThreshold) {
			continue
		}
		status, body, err := c.proxyGet(r.Context(), name, "/v1/runs/"+id)
		if err != nil || status == http.StatusNotFound {
			continue
		}
		if status == http.StatusOK {
			c.cache.Put(id, body)
		}
		c.writeBody(w, route, status, name, body)
		return
	}
	c.writeError(w, route, http.StatusNotFound, server.ErrNotFound,
		"no backend holds this run (results live in LRU caches; re-POST the request to recompute)", id)
}

// proxyGet performs one GET against one backend and returns status + body.
func (c *Coordinator) proxyGet(ctx context.Context, name, path string) (int, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, name+path, nil)
	if err != nil {
		return 0, nil, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := readAllLimited(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, body, nil
}

// --- /v1/suite: sharded sweep --------------------------------------------

func (c *Coordinator) handleSuite(w http.ResponseWriter, r *http.Request) {
	const route = "suite_submit"
	if c.isDraining() {
		c.writeError(w, route, http.StatusServiceUnavailable, server.ErrDraining, "coordinator draining", "")
		return
	}
	var req server.SuiteRequest
	if err := decodeJSON(r, &req); err != nil {
		c.writeError(w, route, http.StatusBadRequest, server.ErrBadSpec, "bad request body: "+err.Error(), "")
		return
	}
	// The identical normalization (and therefore the identical content
	// address) as a single backend: a sweep submitted to the coordinator or
	// straight to a backend is the same sweep.
	id, err := server.NormalizeSuite(&req)
	if err != nil {
		c.writeError(w, route, http.StatusBadRequest, server.ErrBadSpec, err.Error(), "")
		return
	}
	req.Workers = 0 // scheduling is the coordinator's, not the client's
	c.recordSummary(id, listMeta{kind: "suite",
		summary: fmt.Sprintf("%d experiments, quick=%t, seed=%d", len(req.IDs), req.Quick, req.Seed)})
	c.serveComputed(w, r, route, id, func(ctx context.Context) ([]byte, error) {
		return c.sweepSuite(ctx, req, id)
	})
}

// sweepSuite runs one sweep with the experiment harness local and every
// simulation delegated: the suite enumerates the run matrix, each cell's
// content-addressed spec is consistent-hashed to a backend, and the local
// harness aggregates the returned results into reports. RenderSuiteBody is
// the same renderer a backend uses, so the merged body is byte-identical to
// a single-node sweep.
func (c *Coordinator) sweepSuite(ctx context.Context, req server.SuiteRequest, id string) ([]byte, error) {
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var errMu sync.Mutex
	var dispatchErr error // guarded by errMu
	fail := func(err error) {
		errMu.Lock()
		if dispatchErr == nil {
			dispatchErr = err
		}
		errMu.Unlock()
		cancel() // the sweep cannot complete; stop the whole matrix
	}

	workers := c.cfg.SuiteWorkers
	if workers <= 0 {
		// Adaptive: enough concurrent shards to fill every live backend's
		// window (workers + queue) without tripping 429s.
		for _, s := range c.snapshots() {
			if s.Alive {
				workers += s.Workers + s.Queue
			}
		}
		if workers < 4 {
			workers = 4
		}
	}

	suite := hpe.NewSuite(hpe.SuiteOptions{
		Quick:   req.Quick,
		Seed:    req.Seed,
		Workers: workers,
		Context: runCtx,
		Runner: func(rctx context.Context, sp hpe.RunSpec, rid string) (hpe.Result, error) {
			body, err := c.dispatchRun(rctx, sp, rid)
			if err != nil {
				fail(err)
				return hpe.Result{}, err
			}
			var rr server.RunResponse
			if err := json.Unmarshal(body, &rr); err != nil {
				fail(fmt.Errorf("shard %s: malformed run response: %w", rid, err))
				return hpe.Result{}, err
			}
			return rr.Result, nil
		},
	})
	reports, err := suite.Reports(req.IDs)
	errMu.Lock()
	de := dispatchErr
	errMu.Unlock()
	if de != nil {
		return nil, de
	}
	if err != nil {
		return nil, err
	}
	return server.RenderSuiteBody(id, req, reports)
}

// --- catalog, health, metrics --------------------------------------------

func (c *Coordinator) handlePolicies(w http.ResponseWriter, r *http.Request) {
	// The registry is compiled into the coordinator too: serve the identical
	// bytes locally instead of proxying.
	c.writeBody(w, "policies", http.StatusOK, "", server.PoliciesBody())
}

func (c *Coordinator) handleApps(w http.ResponseWriter, r *http.Request) {
	c.writeBody(w, "apps", http.StatusOK, "", server.AppsBody())
}

func (c *Coordinator) handleScenarios(w http.ResponseWriter, r *http.Request) {
	c.writeBody(w, "scenarios", http.StatusOK, "", server.ScenariosBody())
}

// ClusterHealthBody is the coordinator's /healthz response.
type ClusterHealthBody struct {
	Status   string `json:"status"`
	Backends int    `json:"backends"`
	Live     int    `json:"live"`
	// Workers is the summed simulation capacity of the live backends.
	Workers int `json:"workers"`
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	const route = "healthz"
	if c.isDraining() {
		c.writeError(w, route, http.StatusServiceUnavailable, server.ErrDraining, "draining", "")
		return
	}
	hb := ClusterHealthBody{Status: "ok", Backends: len(c.order)}
	for _, s := range c.snapshots() {
		if s.Alive {
			hb.Live++
			hb.Workers += s.Workers
		}
	}
	if hb.Live == 0 {
		c.writeError(w, route, http.StatusServiceUnavailable, server.ErrBackendUnavailable,
			"no live backends", "")
		return
	}
	body, _ := json.Marshal(hb)
	c.writeBody(w, route, http.StatusOK, "", append(body, '\n'))
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", promtext.ContentType)
	c.met.render(w, c.snapshots(), c.Saturation(), c.cache.Snapshot(), c.co.Coalesced())
	c.met.observeRequest("metrics", http.StatusOK)
}

// decodeJSON reads a bounded request body with unknown fields rejected,
// matching the backend's decoding discipline.
func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

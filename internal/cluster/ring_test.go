package cluster

import (
	"fmt"
	"testing"
)

func TestRingOwnerIsSequenceHead(t *testing.T) {
	r := newRing([]string{"a", "b", "c"}, 64)
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("run-v2-%032x", i)
		seq := r.sequence(key)
		if len(seq) != 3 {
			t.Fatalf("sequence(%q) has %d entries, want 3 distinct", key, len(seq))
		}
		if seq[0] != r.owner(key) {
			t.Fatalf("sequence head %q != owner %q", seq[0], r.owner(key))
		}
		seen := map[string]bool{}
		for _, n := range seq {
			if seen[n] {
				t.Fatalf("sequence(%q) repeats %q", key, n)
			}
			seen[n] = true
		}
	}
}

func TestRingDistribution(t *testing.T) {
	backends := []string{"http://b0", "http://b1", "http://b2"}
	r := newRing(backends, 64)
	counts := map[string]int{}
	const keys = 3000
	for i := 0; i < keys; i++ {
		counts[r.owner(fmt.Sprintf("run-v2-%032x", i*7919))]++
	}
	for _, b := range backends {
		share := float64(counts[b]) / keys
		if share < 0.15 || share > 0.55 {
			t.Errorf("backend %s owns %.1f%% of keys; virtual nodes should keep the spread moderate (counts %v)",
				b, share*100, counts)
		}
	}
}

// TestRingStabilityUnderLoss pins the consistent-hashing property the
// re-dispatch design leans on: when one backend dies, only its own keys
// move — every key owned by a surviving backend keeps its owner, because
// the ring walk just skips the dead entry.
func TestRingStabilityUnderLoss(t *testing.T) {
	r := newRing([]string{"a", "b", "c"}, 64)
	dead := "b"
	moved, kept := 0, 0
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("run-v2-%032x", i)
		seq := r.sequence(key)
		// The effective owner with b dead is the first live entry.
		var effective string
		for _, n := range seq {
			if n != dead {
				effective = n
				break
			}
		}
		if seq[0] == dead {
			moved++
			if effective == dead || effective == "" {
				t.Fatalf("key %q has no live owner", key)
			}
		} else {
			kept++
			if effective != seq[0] {
				t.Fatalf("key %q owned by live %q moved to %q when %q died", key, seq[0], effective, dead)
			}
		}
	}
	if moved == 0 || kept == 0 {
		t.Fatalf("degenerate split moved=%d kept=%d", moved, kept)
	}
}

func TestRingDeterministicAcrossConstruction(t *testing.T) {
	a := newRing([]string{"x", "y", "z"}, 32)
	b := newRing([]string{"x", "y", "z"}, 32)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("suite-%032x", i)
		if a.owner(key) != b.owner(key) {
			t.Fatalf("owner(%q) differs between identically-configured rings", key)
		}
	}
}

package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strconv"

	"hpe/internal/server"
)

// GET /v1/runs on the coordinator: the union of every live backend's
// enumeration plus the coordinator's own cache and in-flight computations
// (merged sweeps live only here — backends see their shards, not the sweep).
// The merged listing speaks the identical wire form and pagination surface
// as a single backend, so a client (or another coordinator) cannot tell the
// difference — reconciliation over the public API, no side channel.

func (c *Coordinator) handleListRuns(w http.ResponseWriter, r *http.Request) {
	const route = "run_list"
	limit, after, err := server.ParseListQuery(r)
	if err != nil {
		c.writeError(w, route, http.StatusBadRequest, server.ErrBadSpec, err.Error(), "")
		return
	}
	resp, err := c.mergedList(r.Context(), limit, after)
	if err != nil {
		c.writeError(w, route, http.StatusServiceUnavailable, server.ErrBackendUnavailable, err.Error(), "")
		return
	}
	body, err := json.Marshal(resp)
	if err != nil {
		c.writeError(w, route, http.StatusInternalServerError, server.ErrInternal, err.Error(), "")
		return
	}
	c.writeBody(w, route, http.StatusOK, "", append(body, '\n'))
}

// mergedList builds the cluster-wide enumeration in canonical ID order.
func (c *Coordinator) mergedList(ctx context.Context, limit int, after string) (server.RunListResponse, error) {
	entries := make(map[string]server.RunListEntry)
	keep := func(e server.RunListEntry) {
		prev, ok := entries[e.ID]
		if !ok {
			entries[e.ID] = e
			return
		}
		// A cached entry wins over a running one (the bytes are final), and
		// any summary beats an empty one.
		if prev.Status != "cached" && e.Status == "cached" {
			prev.Status = "cached"
		}
		if prev.Summary == "" {
			prev.Summary = e.Summary
		}
		entries[e.ID] = prev
	}

	// The coordinator's own state: merged bodies it cached, sweeps in flight.
	for _, id := range c.cache.IDs() {
		keep(c.localEntry(id, "cached"))
	}
	for _, id := range c.co.InflightIDs() {
		keep(c.localEntry(id, "running"))
	}

	// Every live backend's full enumeration, paged through the same public
	// endpoint clients use.
	for _, name := range c.liveBackends() {
		if err := c.collectBackendList(ctx, name, keep); err != nil {
			return server.RunListResponse{}, fmt.Errorf("list %s: %w", name, err)
		}
	}

	ids := make([]string, 0, len(entries))
	for id := range entries {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	var out server.RunListResponse
	for _, id := range ids {
		if after != "" && id <= after {
			continue
		}
		if len(out.Runs) == limit {
			out.Truncated = true
			break
		}
		out.Runs = append(out.Runs, entries[id])
	}
	return out, nil
}

// localEntry renders one coordinator-held ID as a list entry.
func (c *Coordinator) localEntry(id, status string) server.RunListEntry {
	e := server.RunListEntry{ID: id, Status: status, Kind: "run"}
	if len(id) >= 6 && id[:6] == "suite-" {
		e.Kind = "suite"
	}
	if m, ok := c.summaryOf(id); ok {
		e.Kind, e.Summary = m.kind, m.summary
	}
	return e
}

// collectBackendList pages through one backend's GET /v1/runs.
func (c *Coordinator) collectBackendList(ctx context.Context, name string, keep func(server.RunListEntry)) error {
	after := ""
	for {
		path := "/v1/runs?limit=" + strconv.Itoa(backendListPage)
		if after != "" {
			path += "&after=" + url.QueryEscape(after)
		}
		status, body, err := c.proxyGet(ctx, name, path)
		if err != nil {
			return err
		}
		if status != http.StatusOK {
			return fmt.Errorf("status %d", status)
		}
		var page server.RunListResponse
		if err := json.Unmarshal(body, &page); err != nil {
			return err
		}
		for _, e := range page.Runs {
			keep(e)
		}
		if !page.Truncated || len(page.Runs) == 0 {
			return nil
		}
		after = page.Runs[len(page.Runs)-1].ID
	}
}

// backendListPage is the page size used when reconciling a backend's
// enumeration.
const backendListPage = 5000

package uvm

import (
	"testing"

	"hpe/internal/addrspace"
	"hpe/internal/hir"
	"hpe/internal/mem"
	"hpe/internal/policy"
	"hpe/internal/sim"
)

// recordingPolicy wraps LRU and logs the callback sequence.
type recordingPolicy struct {
	*policy.LRU
	calls []string
}

func (r *recordingPolicy) OnFault(p addrspace.PageID, seq int) {
	r.calls = append(r.calls, "fault")
	r.LRU.OnFault(p, seq)
}
func (r *recordingPolicy) OnMapped(p addrspace.PageID, seq int) {
	r.calls = append(r.calls, "mapped")
	r.LRU.OnMapped(p, seq)
}
func (r *recordingPolicy) OnEvicted(p addrspace.PageID) {
	r.calls = append(r.calls, "evicted")
	r.LRU.OnEvicted(p)
}

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.FaultLatency = 100
	return cfg
}

func TestFaultServiceLatency(t *testing.T) {
	eng := sim.NewEngine()
	m := mem.NewDeviceMemory(4)
	d := New(testConfig(), eng, m, policy.NewLRU(), nil, nil)
	woken := sim.Cycle(0)
	d.Fault(1, 0, func() { woken = eng.Now() })
	eng.Run()
	if woken != 100 {
		t.Fatalf("fault completed at %d, want 100", woken)
	}
	if !m.Resident(1) {
		t.Fatal("page not mapped after fault")
	}
	if d.Stats().FaultsServiced != 1 {
		t.Fatalf("stats = %+v", d.Stats())
	}
}

func TestFaultsServiceSerially(t *testing.T) {
	eng := sim.NewEngine()
	m := mem.NewDeviceMemory(4)
	d := New(testConfig(), eng, m, policy.NewLRU(), nil, nil)
	var times []sim.Cycle
	for i := 1; i <= 3; i++ {
		p := addrspace.PageID(i)
		d.Fault(p, i, func() { times = append(times, eng.Now()) })
	}
	eng.Run()
	want := []sim.Cycle{100, 200, 300}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("completion times %v, want %v (single-server queue)", times, want)
		}
	}
}

func TestDuplicateFaultsCoalesce(t *testing.T) {
	eng := sim.NewEngine()
	m := mem.NewDeviceMemory(4)
	d := New(testConfig(), eng, m, policy.NewLRU(), nil, nil)
	woken := 0
	for i := 0; i < 5; i++ {
		d.Fault(7, i, func() { woken++ })
	}
	eng.Run()
	st := d.Stats()
	if st.FaultsServiced != 1 || st.Coalesced != 4 {
		t.Fatalf("serviced=%d coalesced=%d, want 1/4", st.FaultsServiced, st.Coalesced)
	}
	if woken != 5 {
		t.Fatalf("woken = %d, want all 5 waiters", woken)
	}
}

func TestFaultOnResidentPageWakesImmediately(t *testing.T) {
	eng := sim.NewEngine()
	m := mem.NewDeviceMemory(4)
	d := New(testConfig(), eng, m, policy.NewLRU(), nil, nil)
	d.Fault(1, 0, func() {})
	eng.Run()
	woken := false
	d.Fault(1, 1, func() { woken = true })
	if !woken {
		t.Fatal("resident-page fault did not wake synchronously")
	}
	if d.Stats().FaultsServiced != 1 {
		t.Fatal("resident-page fault was queued")
	}
}

func TestEvictionOnFullMemory(t *testing.T) {
	eng := sim.NewEngine()
	m := mem.NewDeviceMemory(2)
	rec := &recordingPolicy{LRU: policy.NewLRU()}
	invalidated := []addrspace.PageID{}
	d := New(testConfig(), eng, m, rec, nil, func(p addrspace.PageID) {
		invalidated = append(invalidated, p)
	})
	for i := 1; i <= 3; i++ {
		d.Fault(addrspace.PageID(i), i, func() {})
	}
	eng.Run()
	st := d.Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	if len(invalidated) != 1 || invalidated[0] != 1 {
		t.Fatalf("invalidated = %v, want [1] (LRU victim)", invalidated)
	}
	if m.Resident(1) || !m.Resident(2) || !m.Resident(3) {
		t.Fatal("wrong residency after eviction")
	}
	// Callback ordering for the third fault: fault, evicted, mapped.
	tail := rec.calls[len(rec.calls)-3:]
	if tail[0] != "fault" || tail[1] != "evicted" || tail[2] != "mapped" {
		t.Fatalf("callback order = %v", tail)
	}
}

func TestWalkHitForwarding(t *testing.T) {
	eng := sim.NewEngine()
	m := mem.NewDeviceMemory(4)
	h := hir.New(hir.DefaultConfig())
	lru := policy.NewLRU()
	d := New(testConfig(), eng, m, lru, h, nil)
	d.Fault(1, 0, func() {})
	eng.Run()
	d.RecordWalkHit(1, 5)
	if h.Touched() != 1 {
		t.Fatal("walk hit not recorded in HIR")
	}
	// LRU also saw the hit (ideal feed): page 1 was refreshed. Map another
	// page and check the victim is still 1 only if the hit did not refresh —
	// it did refresh, so after adding page 2, victim should still be 1
	// (chain: 1 hit-refreshed then 2 mapped → LRU order 1,2). Refresh makes
	// 1 MRU before 2 arrives; order stays 1 then 2, victim 1 either way, so
	// probe differently: map 2, hit 1, victim must be 2.
	d.Fault(2, 1, func() {})
	eng.Run()
	d.RecordWalkHit(1, 6)
	if v := lru.SelectVictim(); v != 2 {
		t.Fatalf("victim = %v, want 2 (page 1 refreshed by walk hit)", v)
	}
}

func TestHIRDrainEveryNthFault(t *testing.T) {
	cfg := testConfig()
	cfg.TransferInterval = 2
	eng := sim.NewEngine()
	m := mem.NewDeviceMemory(64)
	h := hir.New(hir.DefaultConfig())
	d := New(cfg, eng, m, policy.NewLRU(), h, nil)
	d.Fault(1, 0, func() {})
	eng.Run()
	d.RecordWalkHit(1, 1)
	if h.Touched() != 1 {
		t.Fatal("hit not pending")
	}
	d.Fault(2, 2, func() {}) // 2nd serviced fault → drain
	eng.Run()
	if h.Touched() != 0 {
		t.Fatal("HIR not drained on 2nd fault")
	}
	st := d.Stats()
	if st.HIRTransferBytes == 0 || st.HIRTransferCycles == 0 {
		t.Fatalf("transfer not charged: %+v", st)
	}
}

func TestQueueDepthTracking(t *testing.T) {
	eng := sim.NewEngine()
	m := mem.NewDeviceMemory(16)
	d := New(testConfig(), eng, m, policy.NewLRU(), nil, nil)
	for i := 0; i < 10; i++ {
		d.Fault(addrspace.PageID(i), i, func() {})
	}
	// The first fault went straight into service; nine wait.
	if d.Pending() != 9 {
		t.Fatalf("pending = %d, want 9", d.Pending())
	}
	eng.Run()
	if d.Stats().MaxQueueDepth != 9 {
		t.Fatalf("max depth = %d, want 9", d.Stats().MaxQueueDepth)
	}
	if d.Pending() != 0 {
		t.Fatal("queue not drained")
	}
}

func TestChannelsOverlapFaultService(t *testing.T) {
	cfg := testConfig()
	cfg.Channels = 4
	eng := sim.NewEngine()
	m := mem.NewDeviceMemory(16)
	d := New(cfg, eng, m, policy.NewLRU(), nil, nil)
	var times []sim.Cycle
	for i := 0; i < 8; i++ {
		d.Fault(addrspace.PageID(i), i, func() { times = append(times, eng.Now()) })
	}
	eng.Run()
	// Two waves of four: completions at 100 (×4) and 200 (×4).
	want := []sim.Cycle{100, 100, 100, 100, 200, 200, 200, 200}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("completion times %v, want %v", times, want)
		}
	}
	if d.Stats().FaultsServiced != 8 {
		t.Fatalf("serviced = %d", d.Stats().FaultsServiced)
	}
}

func TestZeroChannelsDefaultsToOne(t *testing.T) {
	cfg := testConfig()
	cfg.Channels = 0
	eng := sim.NewEngine()
	d := New(cfg, eng, mem.NewDeviceMemory(4), policy.NewLRU(), nil, nil)
	var times []sim.Cycle
	for i := 0; i < 2; i++ {
		d.Fault(addrspace.PageID(i), i, func() { times = append(times, eng.Now()) })
	}
	eng.Run()
	if times[0] != 100 || times[1] != 200 {
		t.Fatalf("completion times %v, want serial [100 200]", times)
	}
}

func TestBusyCyclesAccumulate(t *testing.T) {
	eng := sim.NewEngine()
	m := mem.NewDeviceMemory(16)
	d := New(testConfig(), eng, m, policy.NewLRU(), nil, nil)
	for i := 0; i < 4; i++ {
		d.Fault(addrspace.PageID(i), i, func() {})
	}
	eng.Run()
	// 4 faults × 100 cycles × the default 0.35 host-busy fraction.
	if got := d.Stats().BusyCycles; got != 140 {
		t.Fatalf("busy cycles = %d, want 140", got)
	}
}

func TestZeroFaultLatencyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero fault latency accepted")
		}
	}()
	New(Config{}, sim.NewEngine(), mem.NewDeviceMemory(1), policy.NewLRU(), nil, nil)
}

func TestPrefetchMigratesBlockNeighbours(t *testing.T) {
	cfg := testConfig()
	cfg.PrefetchPages = 15
	eng := sim.NewEngine()
	m := mem.NewDeviceMemory(64)
	d := New(cfg, eng, m, policy.NewLRU(), nil, nil)
	d.Fault(32, 0, func() {}) // block 32..47
	eng.Run()
	for p := addrspace.PageID(32); p < 48; p++ {
		if !m.Resident(p) {
			t.Fatalf("page %v not prefetched", p)
		}
	}
	st := d.Stats()
	if st.FaultsServiced != 1 || st.Prefetched != 15 {
		t.Fatalf("faults=%d prefetched=%d, want 1/15", st.FaultsServiced, st.Prefetched)
	}
	// A subsequent touch of a prefetched page is not a fault.
	woken := false
	d.Fault(33, 1, func() { woken = true })
	if !woken || d.Stats().FaultsServiced != 1 {
		t.Fatal("prefetched page refaulted")
	}
}

func TestPrefetchEvictsWhenFull(t *testing.T) {
	cfg := testConfig()
	cfg.PrefetchPages = 15
	eng := sim.NewEngine()
	m := mem.NewDeviceMemory(8)
	d := New(cfg, eng, m, policy.NewLRU(), nil, nil)
	d.Fault(0, 0, func() {})
	eng.Run()
	if m.Len() != 8 {
		t.Fatalf("resident = %d, want full memory", m.Len())
	}
	st := d.Stats()
	// 1 fault + 7 prefetches fill memory; the remaining 8 block pages each
	// evict one of the earlier arrivals.
	if st.Prefetched != 15 {
		t.Fatalf("prefetched = %d, want 15", st.Prefetched)
	}
	if st.Evictions != 8 {
		t.Fatalf("evictions = %d, want 8", st.Evictions)
	}
}

func TestPrefetchSkipsPendingFaults(t *testing.T) {
	cfg := testConfig()
	cfg.PrefetchPages = 15
	eng := sim.NewEngine()
	m := mem.NewDeviceMemory(64)
	d := New(cfg, eng, m, policy.NewLRU(), nil, nil)
	woken := 0
	d.Fault(0, 0, func() { woken++ })
	d.Fault(1, 1, func() { woken++ }) // queued behind page 0
	eng.Run()
	if woken != 2 {
		t.Fatalf("woken = %d, want both faults resolved", woken)
	}
	st := d.Stats()
	// Page 1 had its own fault in flight, so page 0's prefetch skipped it:
	// 2 serviced faults, 14 prefetched pages.
	if st.FaultsServiced != 2 || st.Prefetched != 14 {
		t.Fatalf("faults=%d prefetched=%d, want 2/14", st.FaultsServiced, st.Prefetched)
	}
}

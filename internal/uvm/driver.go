// Package uvm models the unified-memory software runtime of Section II: the
// GPU driver on the host CPU that services far-faults. Faults queue at the
// driver and are serviced with the paper's fixed 20 µs latency, which covers
// the page-table lookup, any eviction, and the PCIe page migration.
// Duplicate faults on an in-flight page coalesce. When HPE is active, the
// driver also drains the HIR cache every nth serviced fault and charges the
// PCIe transfer latency of the drained records to simulated time, exactly as
// the paper's evaluation does.
//
// The paper's runtime services faults one at a time (Channels = 1, the
// default). The Channels knob generalises this to a pipelined driver for the
// extension study in internal/experiments: how much of the oversubscription
// wall is queueing delay rather than eviction quality.
package uvm

import (
	"fmt"
	"math"

	"hpe/internal/addrspace"
	"hpe/internal/hir"
	"hpe/internal/mem"
	"hpe/internal/policy"
	"hpe/internal/probe"
	"hpe/internal/sim"
)

// HitBatchReceiver is implemented by policies (HPE) that consume HIR drains.
type HitBatchReceiver interface {
	OnHitBatch([]hir.Record)
}

// Config parameterises the driver.
type Config struct {
	// FaultLatency is the per-fault service time (paper: 20 µs = 28,000
	// cycles at 1.4 GHz).
	FaultLatency sim.Cycle
	// Channels is the number of faults the driver services concurrently.
	// The paper's runtime is serial (1, the default); higher values model a
	// pipelined driver for the extension study.
	Channels int
	// TransferInterval drains the HIR every n serviced faults (paper: 16).
	// Ignored when HIR is nil.
	TransferInterval int
	// PCIeBytesPerCycle converts HIR payload bytes into transfer cycles
	// (16 GB/s at 1.4 GHz ≈ 11.43 bytes/cycle).
	PCIeBytesPerCycle float64
	// HostBusyFraction is the share of the fault-service latency during
	// which the host CPU core is actually busy (page-table lookup, unmap/
	// map, policy update); the remainder is PCIe round trips and GPU-side
	// work. Feeds the §V-C core-load estimate.
	HostBusyFraction float64
	// PrefetchPages makes each serviced fault also migrate up to this many
	// additional non-resident pages from the same 16-page aligned block
	// (NVIDIA's UVM migrates whole 64-KB basic blocks this way). 0 disables
	// prefetching — the paper's configuration. Prefetched pages are mapped
	// (and may trigger evictions) but are not counted as faults.
	PrefetchPages int
}

// DefaultConfig returns the paper's driver parameters at 1.4 GHz.
func DefaultConfig() Config {
	return Config{
		FaultLatency:      sim.CyclesPerMicrosecond(20, 1400),
		Channels:          1,
		TransferInterval:  16,
		PCIeBytesPerCycle: 16e9 / 1.4e9,
		HostBusyFraction:  0.35,
	}
}

// Stats summarises driver activity.
type Stats struct {
	// FaultsServiced counts far-faults completed (after coalescing).
	FaultsServiced uint64
	// Coalesced counts fault requests merged onto an in-flight fault.
	Coalesced uint64
	// Evictions counts pages paged out to host memory.
	Evictions uint64
	// HIRTransferCycles is the total simulated time spent moving HIR
	// payloads over PCIe.
	HIRTransferCycles sim.Cycle
	// HIRTransferBytes is the total HIR payload moved.
	HIRTransferBytes uint64
	// MaxQueueDepth is the deepest the wait queue got (excluding faults in
	// service).
	MaxQueueDepth int
	// BusyCycles approximates host-side fault-handling occupancy (the
	// host-busy share of service time plus HIR transfer time; the paper's
	// core-load metric builds on this).
	BusyCycles sim.Cycle
	// Prefetched counts pages migrated speculatively alongside faults.
	Prefetched uint64
	// Batched counts queued faults satisfied early by a block migration.
	Batched uint64
}

type pendingFault struct {
	page      addrspace.PageID
	seq       int
	enq       sim.Cycle // enqueue time, for fault-latency events
	wakeups   []func()
	inService bool // dispatched to a channel
	done      bool // resolved early by a block prefetch
}

// Driver is the host-side UVM runtime.
type Driver struct {
	cfg    Config
	engine *sim.Engine
	memory *mem.DeviceMemory
	pol    policy.Policy
	hirC   *hir.Cache // nil when the active policy does not use HIR
	sink   HitBatchReceiver

	// invalidate is called for every evicted page so the GPU can shoot down
	// stale TLB entries.
	invalidate func(addrspace.PageID)

	queue    []*pendingFault                    // waiting, FIFO
	inFlight map[addrspace.PageID]*pendingFault // waiting + in service
	busy     int                                // channels in use

	probe probe.Probe // nil unless instrumented
	stats Stats
}

// New wires a driver. invalidate may be nil (no TLB shootdown — used by
// unit tests). If the policy implements HitBatchReceiver and hirCache is
// non-nil, drains are delivered to it.
func New(cfg Config, engine *sim.Engine, memory *mem.DeviceMemory, pol policy.Policy,
	hirCache *hir.Cache, invalidate func(addrspace.PageID)) *Driver {
	if cfg.FaultLatency == 0 {
		panic("uvm: zero fault latency")
	}
	if cfg.Channels <= 0 {
		cfg.Channels = 1
	}
	d := &Driver{
		cfg:        cfg,
		engine:     engine,
		memory:     memory,
		pol:        pol,
		hirC:       hirCache,
		invalidate: invalidate,
		inFlight:   make(map[addrspace.PageID]*pendingFault),
	}
	if sink, ok := pol.(HitBatchReceiver); ok {
		d.sink = sink
	}
	return d
}

// SetProbe attaches an instrumentation probe (nil detaches). Every emission
// site is guarded by a nil check, so the unprobed driver keeps its exact
// fast path.
func (d *Driver) SetProbe(p probe.Probe) { d.probe = p }

// Stats returns a copy of the driver's counters.
func (d *Driver) Stats() Stats { return d.stats }

// Pending returns the number of queued (not yet in service) faults.
func (d *Driver) Pending() int { return len(d.queue) }

// RecordWalkHit forwards a page-walk hit to the policy (the baselines' ideal
// feed and HPE's IdealHitFeed mode) and to the HIR cache when present.
func (d *Driver) RecordWalkHit(p addrspace.PageID, seq int) {
	d.pol.OnWalkHit(p, seq)
	if d.hirC != nil {
		d.hirC.RecordHit(p)
	}
}

// Fault reports a far-fault on page p observed at trace position seq; wake
// runs when the page becomes resident. Duplicate faults coalesce onto the
// in-flight or queued fault for the same page.
func (d *Driver) Fault(p addrspace.PageID, seq int, wake func()) {
	if d.memory.Resident(p) {
		// Raced with a completion: the page is already here.
		wake()
		return
	}
	if f, ok := d.inFlight[p]; ok {
		f.wakeups = append(f.wakeups, wake)
		d.stats.Coalesced++
		if d.probe != nil {
			d.probe.Emit(probe.Coalesce(d.engine.Now(), p, seq))
		}
		return
	}
	f := &pendingFault{page: p, seq: seq, enq: d.engine.Now(), wakeups: []func(){wake}}
	d.queue = append(d.queue, f)
	d.inFlight[p] = f
	if len(d.queue) > d.stats.MaxQueueDepth {
		d.stats.MaxQueueDepth = len(d.queue)
	}
	if d.probe != nil {
		d.probe.Emit(probe.FaultBegin(f.enq, p, seq, len(d.queue)))
	}
	d.pump()
}

// pump dispatches queued faults onto free channels.
func (d *Driver) pump() {
	frac := d.cfg.HostBusyFraction
	if frac <= 0 || frac > 1 {
		frac = 1
	}
	for d.busy < d.cfg.Channels && len(d.queue) > 0 {
		f := d.queue[0]
		d.queue = d.queue[1:]
		if f.done {
			continue // resolved early by a block prefetch
		}
		f.inService = true
		d.busy++
		d.stats.BusyCycles += sim.Cycle(float64(d.cfg.FaultLatency) * frac)
		d.engine.After(d.cfg.FaultLatency, func() { d.complete(f) })
	}
}

// prefetch migrates up to PrefetchPages additional non-resident pages from
// the faulted page's 16-page aligned block, evicting as needed. Prefetched
// pages are reported to the policy via OnMapped only.
func (d *Driver) prefetch(page addrspace.PageID, seq int) {
	if d.cfg.PrefetchPages <= 0 {
		return
	}
	const block = 16
	base := page &^ (block - 1)
	brought := 0
	for off := addrspace.PageID(0); off < block && brought < d.cfg.PrefetchPages; off++ {
		p := base + off
		if p == page || d.memory.Resident(p) {
			continue
		}
		if f, pending := d.inFlight[p]; pending {
			if f.inService {
				// Its service channel owns it; resolving here would race.
				continue
			}
			// A queued fault for the same block: the migration satisfies it
			// now (fault batching, as real UVM runtimes do).
			if d.evictIfFull(p) {
				continue
			}
			if _, err := d.memory.Insert(p); err != nil {
				panic(fmt.Sprintf("uvm: prefetch insert failed: %v", err))
			}
			d.pol.OnFault(p, f.seq)
			d.pol.OnMapped(p, f.seq)
			d.stats.FaultsServiced++
			d.stats.Batched++
			f.done = true
			delete(d.inFlight, p)
			if d.probe != nil {
				now := d.engine.Now()
				d.probe.Emit(probe.FaultEnd(now, p, f.seq, now-f.enq, true))
			}
			for _, wake := range f.wakeups {
				wake()
			}
			brought++
			continue
		}
		if d.evictIfFull(p) {
			continue
		}
		if _, err := d.memory.Insert(p); err != nil {
			panic(fmt.Sprintf("uvm: prefetch insert failed: %v", err))
		}
		d.pol.OnMapped(p, seq)
		d.stats.Prefetched++
		if d.probe != nil {
			d.probe.Emit(probe.Prefetch(d.engine.Now(), p, seq))
		}
		brought++
	}
}

// evictIfFull frees one frame via the policy when memory is full, so that
// `trigger` can be mapped. It returns true when eviction was needed but
// impossible.
func (d *Driver) evictIfFull(trigger addrspace.PageID) bool {
	if !d.memory.Full() {
		return false
	}
	victim := d.pol.SelectVictim()
	if err := d.memory.Evict(victim); err != nil {
		return true
	}
	d.pol.OnEvicted(victim)
	if d.invalidate != nil {
		d.invalidate(victim)
	}
	d.stats.Evictions++
	if d.probe != nil {
		d.probe.Emit(probe.Eviction(d.engine.Now(), victim, trigger))
	}
	return false
}

// complete finishes one fault: evict if full, map the page, notify the
// policy, wake the waiting warps, handle the periodic HIR drain, then free
// the channel.
func (d *Driver) complete(f *pendingFault) {
	d.pol.OnFault(f.page, f.seq)
	if d.memory.Full() {
		victim := d.pol.SelectVictim()
		if err := d.memory.Evict(victim); err != nil {
			panic(fmt.Sprintf("uvm: policy %s chose bad victim %v: %v", d.pol.Name(), victim, err))
		}
		d.pol.OnEvicted(victim)
		if d.invalidate != nil {
			d.invalidate(victim)
		}
		d.stats.Evictions++
		if d.probe != nil {
			d.probe.Emit(probe.Eviction(d.engine.Now(), victim, f.page))
		}
	}
	if _, err := d.memory.Insert(f.page); err != nil {
		panic(fmt.Sprintf("uvm: insert after eviction failed: %v", err))
	}
	d.pol.OnMapped(f.page, f.seq)
	d.stats.FaultsServiced++
	delete(d.inFlight, f.page)
	if d.probe != nil {
		now := d.engine.Now()
		d.probe.Emit(probe.FaultEnd(now, f.page, f.seq, now-f.enq, false))
	}

	d.prefetch(f.page, f.seq)

	for _, wake := range f.wakeups {
		wake()
	}

	// Periodic HIR drain: every TransferInterval-th serviced fault the HIR
	// contents cross PCIe; the transfer occupies this channel before it can
	// take the next fault.
	var transfer sim.Cycle
	if d.hirC != nil && d.cfg.TransferInterval > 0 &&
		d.stats.FaultsServiced%uint64(d.cfg.TransferInterval) == 0 {
		recs := d.hirC.Drain()
		if len(recs) > 0 {
			bytes := d.hirC.TransferBytes(len(recs))
			d.stats.HIRTransferBytes += uint64(bytes)
			transfer = sim.Cycle(math.Ceil(float64(bytes) / d.cfg.PCIeBytesPerCycle))
			d.stats.HIRTransferCycles += transfer
			d.stats.BusyCycles += transfer
			if d.probe != nil {
				d.probe.Emit(probe.HIRDrain(d.engine.Now(), len(recs), bytes, transfer))
			}
			if d.sink != nil {
				sink := d.sink
				d.engine.After(transfer, func() { sink.OnHitBatch(recs) })
			}
		}
	}

	if transfer > 0 {
		d.engine.After(transfer, func() {
			d.busy--
			d.pump()
		})
		return
	}
	d.busy--
	d.pump()
}

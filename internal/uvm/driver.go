// Package uvm models the unified-memory software runtime of Section II: the
// GPU driver on the host CPU that services far-faults. Faults queue at the
// driver and are serviced with the paper's fixed 20 µs latency, which covers
// the page-table lookup, any eviction, and the PCIe page migration.
// Duplicate faults on an in-flight page coalesce. When HPE is active, the
// driver also drains the HIR cache every nth serviced fault and charges the
// PCIe transfer latency of the drained records to simulated time, exactly as
// the paper's evaluation does.
//
// The paper's runtime services faults one at a time (Channels = 1, the
// default). The Channels knob generalises this to a pipelined driver for the
// extension study in internal/experiments: how much of the oversubscription
// wall is queueing delay rather than eviction quality.
package uvm

import (
	"fmt"
	"math"

	"hpe/internal/addrspace"
	"hpe/internal/hir"
	"hpe/internal/mem"
	"hpe/internal/policy"
	"hpe/internal/probe"
	"hpe/internal/sim"
	"hpe/internal/trace"
)

// HitBatchReceiver is implemented by policies (HPE) that consume HIR drains.
type HitBatchReceiver interface {
	OnHitBatch([]hir.Record)
}

// Config parameterises the driver.
type Config struct {
	// FaultLatency is the per-fault service time (paper: 20 µs = 28,000
	// cycles at 1.4 GHz).
	FaultLatency sim.Cycle
	// Channels is the number of faults the driver services concurrently.
	// The paper's runtime is serial (1, the default); higher values model a
	// pipelined driver for the extension study.
	Channels int
	// TransferInterval drains the HIR every n serviced faults (paper: 16).
	// Ignored when HIR is nil.
	TransferInterval int
	// PCIeBytesPerCycle converts HIR payload bytes into transfer cycles
	// (16 GB/s at 1.4 GHz ≈ 11.43 bytes/cycle).
	PCIeBytesPerCycle float64
	// HostBusyFraction is the share of the fault-service latency during
	// which the host CPU core is actually busy (page-table lookup, unmap/
	// map, policy update); the remainder is PCIe round trips and GPU-side
	// work. Feeds the §V-C core-load estimate.
	HostBusyFraction float64
	// PrefetchPages makes each serviced fault also migrate up to this many
	// additional non-resident pages from the same 16-page aligned block
	// (NVIDIA's UVM migrates whole 64-KB basic blocks this way). 0 disables
	// prefetching — the paper's configuration. Prefetched pages are mapped
	// (and may trigger evictions) but are not counted as faults.
	PrefetchPages int
}

// DefaultConfig returns the paper's driver parameters at 1.4 GHz.
func DefaultConfig() Config {
	return Config{
		FaultLatency:      sim.CyclesPerMicrosecond(20, 1400),
		Channels:          1,
		TransferInterval:  16,
		PCIeBytesPerCycle: 16e9 / 1.4e9,
		HostBusyFraction:  0.35,
	}
}

// Stats summarises driver activity.
type Stats struct {
	// FaultsServiced counts far-faults completed (after coalescing).
	FaultsServiced uint64
	// Coalesced counts fault requests merged onto an in-flight fault.
	Coalesced uint64
	// Evictions counts pages paged out to host memory.
	Evictions uint64
	// HIRTransferCycles is the total simulated time spent moving HIR
	// payloads over PCIe.
	HIRTransferCycles sim.Cycle
	// HIRTransferBytes is the total HIR payload moved.
	HIRTransferBytes uint64
	// MaxQueueDepth is the deepest the wait queue got (excluding faults in
	// service).
	MaxQueueDepth int
	// BusyCycles approximates host-side fault-handling occupancy (the
	// host-busy share of service time plus HIR transfer time; the paper's
	// core-load metric builds on this).
	BusyCycles sim.Cycle
	// Prefetched counts pages migrated speculatively alongside faults.
	Prefetched uint64
	// Batched counts queued faults satisfied early by a block migration.
	Batched uint64
	// Tenants carries per-tenant attribution when the run is a colocated
	// workload (SetTenants); nil — and omitted from JSON — otherwise, so
	// single-tenant results keep their exact shape.
	Tenants []TenantStats `json:",omitempty"`
}

// TenantStats attributes driver activity to one tenant of a colocated
// workload, by the tenant page ranges the trace carries.
type TenantStats struct {
	// Name is the tenant token from the trace annotation ("HSD", "NWx2").
	Name string
	// Faults counts far-faults serviced on the tenant's pages.
	Faults uint64
	// Evictions counts the tenant's pages paged out, whoever triggered it.
	Evictions uint64
	// CrossEvictions is the subset of Evictions triggered by another
	// tenant's fault — the contention signal colocation studies read.
	CrossEvictions uint64
}

type pendingFault struct {
	page      addrspace.PageID
	seq       int
	enq       sim.Cycle // enqueue time, for fault-latency events
	wakeups   []func()
	inService bool // dispatched to a channel
	done      bool // resolved early by a block prefetch
}

// serviceDoneEvent fires when a channel finishes servicing a fault:
// a0 = index into Driver.faults. Scheduling by registered handler keeps the
// per-fault event allocation-free (the driver used to allocate one closure
// per serviced fault).
type serviceDoneEvent Driver

func (e *serviceDoneEvent) OnEvent(a0, _ uint64) {
	(*Driver)(e).complete(int32(a0))
}

// Driver is the host-side UVM runtime.
type Driver struct {
	cfg    Config
	engine *sim.Engine
	memory *mem.DeviceMemory
	pol    policy.Policy
	hirC   *hir.Cache // nil when the active policy does not use HIR
	sink   HitBatchReceiver

	// invalidate is called for every evicted page so the GPU can shoot down
	// stale TLB entries.
	invalidate func(addrspace.PageID)

	// Faults live in a slice-backed store with a free list; the queue and
	// the in-flight index refer to them by index. This keeps fault-heavy
	// runs from allocating one node per fault and gives the GC nothing to
	// chase once wakeup closures are recycled through wakePool.
	faults    []pendingFault
	faultFree []int32
	queue     []int32                    // waiting, FIFO
	inFlight  map[addrspace.PageID]int32 // waiting + in service
	wakePool  [][]func()                 // recycled wakeup slices
	hDone     sim.HandlerID              // serviceDoneEvent registration
	busy      int                        // channels in use

	probe probe.Probe // nil unless instrumented
	stats Stats

	// tenants holds the colocated workload's page ranges when attribution is
	// on (SetTenants); nil otherwise. Like the probe, every attribution site
	// is behind one nil check, so single-tenant runs keep the exact fast path.
	tenants []trace.TenantRange
}

// New wires a driver. invalidate may be nil (no TLB shootdown — used by
// unit tests). If the policy implements HitBatchReceiver and hirCache is
// non-nil, drains are delivered to it.
func New(cfg Config, engine *sim.Engine, memory *mem.DeviceMemory, pol policy.Policy,
	hirCache *hir.Cache, invalidate func(addrspace.PageID)) *Driver {
	if cfg.FaultLatency == 0 {
		panic("uvm: zero fault latency")
	}
	if cfg.Channels <= 0 {
		cfg.Channels = 1
	}
	d := &Driver{
		cfg:        cfg,
		engine:     engine,
		memory:     memory,
		pol:        pol,
		hirC:       hirCache,
		invalidate: invalidate,
		inFlight:   make(map[addrspace.PageID]int32),
	}
	d.hDone = engine.Register((*serviceDoneEvent)(d))
	if sink, ok := pol.(HitBatchReceiver); ok {
		d.sink = sink
	}
	return d
}

// SetProbe attaches an instrumentation probe (nil detaches). Every emission
// site is guarded by a nil check, so the unprobed driver keeps its exact
// fast path.
func (d *Driver) SetProbe(p probe.Probe) { d.probe = p }

// SetTenants turns on per-tenant attribution for a colocated workload: every
// serviced fault and eviction is charged to the tenant whose page range
// contains the page. nil (the default) keeps the exact unattributed fast
// path — the same contract as SetProbe.
func (d *Driver) SetTenants(tens []trace.TenantRange) {
	d.tenants = tens
	d.stats.Tenants = nil
	for _, t := range tens {
		d.stats.Tenants = append(d.stats.Tenants, TenantStats{Name: t.Name})
	}
}

// tenantOf returns the index of the tenant owning p, or -1. Linear scan: a
// colocation has at most a handful of tenants.
func (d *Driver) tenantOf(p addrspace.PageID) int {
	for i := range d.tenants {
		if p >= d.tenants[i].Lo && p < d.tenants[i].Hi {
			return i
		}
	}
	return -1
}

// chargeFault attributes one serviced fault; call only when tenants != nil.
func (d *Driver) chargeFault(p addrspace.PageID) {
	if i := d.tenantOf(p); i >= 0 {
		d.stats.Tenants[i].Faults++
	}
}

// chargeEviction attributes one eviction to the victim's tenant, flagging it
// cross-tenant when another tenant's fault triggered it; call only when
// tenants != nil.
func (d *Driver) chargeEviction(victim, trigger addrspace.PageID) {
	vi := d.tenantOf(victim)
	if vi < 0 {
		return
	}
	d.stats.Tenants[vi].Evictions++
	if ti := d.tenantOf(trigger); ti >= 0 && ti != vi {
		d.stats.Tenants[vi].CrossEvictions++
	}
}

// Stats returns a copy of the driver's counters. The per-tenant slice is
// copied too, so callers can hold the snapshot across further simulation.
func (d *Driver) Stats() Stats {
	s := d.stats
	if s.Tenants != nil {
		s.Tenants = append([]TenantStats(nil), s.Tenants...)
	}
	return s
}

// Pending returns the number of queued (not yet in service) faults.
func (d *Driver) Pending() int { return len(d.queue) }

// RecordWalkHit forwards a page-walk hit to the policy (the baselines' ideal
// feed and HPE's IdealHitFeed mode) and to the HIR cache when present.
func (d *Driver) RecordWalkHit(p addrspace.PageID, seq int) {
	d.pol.OnWalkHit(p, seq)
	if d.hirC != nil {
		d.hirC.RecordHit(p)
	}
}

// Fault reports a far-fault on page p observed at trace position seq; wake
// runs when the page becomes resident. Duplicate faults coalesce onto the
// in-flight or queued fault for the same page.
func (d *Driver) Fault(p addrspace.PageID, seq int, wake func()) {
	if d.memory.Resident(p) {
		// Raced with a completion: the page is already here.
		wake()
		return
	}
	if fi, ok := d.inFlight[p]; ok {
		f := &d.faults[fi]
		f.wakeups = append(f.wakeups, wake)
		d.stats.Coalesced++
		if d.probe != nil {
			d.probe.Emit(probe.Coalesce(d.engine.Now(), p, seq))
		}
		return
	}
	fi := d.allocFault()
	f := &d.faults[fi]
	*f = pendingFault{page: p, seq: seq, enq: d.engine.Now(), wakeups: d.allocWakeups(wake)}
	d.queue = append(d.queue, fi)
	d.inFlight[p] = fi
	if len(d.queue) > d.stats.MaxQueueDepth {
		d.stats.MaxQueueDepth = len(d.queue)
	}
	if d.probe != nil {
		d.probe.Emit(probe.FaultBegin(f.enq, p, seq, len(d.queue)))
	}
	d.pump()
}

// allocFault returns a free fault-store index.
func (d *Driver) allocFault() int32 {
	if n := len(d.faultFree); n > 0 {
		fi := d.faultFree[n-1]
		d.faultFree = d.faultFree[:n-1]
		return fi
	}
	d.faults = append(d.faults, pendingFault{})
	return int32(len(d.faults) - 1)
}

// allocWakeups returns a recycled wakeup slice seeded with wake.
func (d *Driver) allocWakeups(wake func()) []func() {
	if n := len(d.wakePool); n > 0 {
		ws := d.wakePool[n-1]
		d.wakePool = d.wakePool[:n-1]
		//lint:ignore hpelint/hotalloc wakeup slices recycle through wakePool, so growth amortizes across faults
		return append(ws, wake)
	}
	//lint:ignore hpelint/hotalloc pool-miss seed only; subsequent faults reuse the slice via wakePool
	return append(make([]func(), 0, 4), wake)
}

// runWakeups fires and recycles a fault's wakeup slice.
func (d *Driver) runWakeups(ws []func()) {
	for i, wake := range ws {
		ws[i] = nil // drop closure refs before pooling
		wake()
	}
	d.wakePool = append(d.wakePool, ws[:0])
}

// pump dispatches queued faults onto free channels.
func (d *Driver) pump() {
	frac := d.cfg.HostBusyFraction
	if frac <= 0 || frac > 1 {
		frac = 1
	}
	for d.busy < d.cfg.Channels && len(d.queue) > 0 {
		fi := d.queue[0]
		d.queue = d.queue[1:]
		f := &d.faults[fi]
		if f.done {
			d.faultFree = append(d.faultFree, fi) // resolved early by a block prefetch
			continue
		}
		f.inService = true
		d.busy++
		d.stats.BusyCycles += sim.Cycle(float64(d.cfg.FaultLatency) * frac)
		d.engine.ScheduleAfter(d.cfg.FaultLatency, d.hDone, uint64(fi), 0)
	}
}

// prefetch migrates up to PrefetchPages additional non-resident pages from
// the faulted page's 16-page aligned block, evicting as needed. Prefetched
// pages are reported to the policy via OnMapped only.
func (d *Driver) prefetch(page addrspace.PageID, seq int) {
	if d.cfg.PrefetchPages <= 0 {
		return
	}
	const block = 16
	base := page &^ (block - 1)
	brought := 0
	for off := addrspace.PageID(0); off < block && brought < d.cfg.PrefetchPages; off++ {
		p := base + off
		if p == page || d.memory.Resident(p) {
			continue
		}
		if fj, pending := d.inFlight[p]; pending {
			f := &d.faults[fj]
			if f.inService {
				// Its service channel owns it; resolving here would race.
				continue
			}
			// A queued fault for the same block: the migration satisfies it
			// now (fault batching, as real UVM runtimes do).
			if d.evictIfFull(p) {
				continue
			}
			if _, err := d.memory.Insert(p); err != nil {
				panic(fmt.Sprintf("uvm: prefetch insert failed: %v", err))
			}
			d.pol.OnFault(p, f.seq)
			d.pol.OnMapped(p, f.seq)
			d.stats.FaultsServiced++
			d.stats.Batched++
			if d.tenants != nil {
				d.chargeFault(p)
			}
			f.done = true
			delete(d.inFlight, p)
			if d.probe != nil {
				now := d.engine.Now()
				d.probe.Emit(probe.FaultEnd(now, p, f.seq, now-f.enq, true))
			}
			ws := f.wakeups
			f.wakeups = nil
			d.runWakeups(ws)
			brought++
			continue
		}
		if d.evictIfFull(p) {
			continue
		}
		if _, err := d.memory.Insert(p); err != nil {
			panic(fmt.Sprintf("uvm: prefetch insert failed: %v", err))
		}
		d.pol.OnMapped(p, seq)
		d.stats.Prefetched++
		if d.probe != nil {
			d.probe.Emit(probe.Prefetch(d.engine.Now(), p, seq))
		}
		brought++
	}
}

// evictIfFull frees one frame via the policy when memory is full, so that
// `trigger` can be mapped. It returns true when eviction was needed but
// impossible.
func (d *Driver) evictIfFull(trigger addrspace.PageID) bool {
	if !d.memory.Full() {
		return false
	}
	victim := d.pol.SelectVictim()
	if err := d.memory.Evict(victim); err != nil {
		return true
	}
	d.pol.OnEvicted(victim)
	if d.invalidate != nil {
		d.invalidate(victim)
	}
	d.stats.Evictions++
	if d.tenants != nil {
		d.chargeEviction(victim, trigger)
	}
	if d.probe != nil {
		d.probe.Emit(probe.Eviction(d.engine.Now(), victim, trigger))
	}
	return false
}

// complete finishes one fault: evict if full, map the page, notify the
// policy, wake the waiting warps, handle the periodic HIR drain, then free
// the channel.
func (d *Driver) complete(fi int32) {
	f := &d.faults[fi]
	d.pol.OnFault(f.page, f.seq)
	if d.memory.Full() {
		victim := d.pol.SelectVictim()
		if err := d.memory.Evict(victim); err != nil {
			panic(fmt.Sprintf("uvm: policy %s chose bad victim %v: %v", d.pol.Name(), victim, err))
		}
		d.pol.OnEvicted(victim)
		if d.invalidate != nil {
			d.invalidate(victim)
		}
		d.stats.Evictions++
		if d.tenants != nil {
			d.chargeEviction(victim, f.page)
		}
		if d.probe != nil {
			d.probe.Emit(probe.Eviction(d.engine.Now(), victim, f.page))
		}
	}
	if _, err := d.memory.Insert(f.page); err != nil {
		panic(fmt.Sprintf("uvm: insert after eviction failed: %v", err))
	}
	d.pol.OnMapped(f.page, f.seq)
	d.stats.FaultsServiced++
	if d.tenants != nil {
		d.chargeFault(f.page)
	}
	delete(d.inFlight, f.page)
	if d.probe != nil {
		now := d.engine.Now()
		d.probe.Emit(probe.FaultEnd(now, f.page, f.seq, now-f.enq, false))
	}

	// Copy out before prefetch/wakeups: both may allocate new faults and
	// grow the store, invalidating f.
	page, seq := f.page, f.seq
	ws := f.wakeups
	f.wakeups = nil
	d.faultFree = append(d.faultFree, fi)

	d.prefetch(page, seq)

	d.runWakeups(ws)

	// Periodic HIR drain: every TransferInterval-th serviced fault the HIR
	// contents cross PCIe; the transfer occupies this channel before it can
	// take the next fault.
	var transfer sim.Cycle
	if d.hirC != nil && d.cfg.TransferInterval > 0 &&
		d.stats.FaultsServiced%uint64(d.cfg.TransferInterval) == 0 {
		recs := d.hirC.Drain()
		if len(recs) > 0 {
			bytes := d.hirC.TransferBytes(len(recs))
			d.stats.HIRTransferBytes += uint64(bytes)
			transfer = sim.Cycle(math.Ceil(float64(bytes) / d.cfg.PCIeBytesPerCycle))
			d.stats.HIRTransferCycles += transfer
			d.stats.BusyCycles += transfer
			if d.probe != nil {
				d.probe.Emit(probe.HIRDrain(d.engine.Now(), len(recs), bytes, transfer))
			}
			if d.sink != nil {
				sink := d.sink
				//lint:ignore hpelint/hotalloc one closure per HIR drain epoch (every TransferInterval faults), not per event
				d.engine.After(transfer, func() { sink.OnHitBatch(recs) })
			}
		}
	}

	if transfer > 0 {
		//lint:ignore hpelint/hotalloc one closure per HIR drain epoch (every TransferInterval faults), not per event
		d.engine.After(transfer, func() {
			d.busy--
			d.pump()
		})
		return
	}
	d.busy--
	d.pump()
}

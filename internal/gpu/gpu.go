// Package gpu is the top of the simulator stack: a discrete-event model of a
// GTX-480-class GPU's memory system running a page-granularity access trace
// under unified memory with demand paging (Table I configuration).
//
// Model summary (see DESIGN.md §3):
//
//   - 15 SMs, each with WarpsPerSM warp slots and a 1-access-per-cycle issue
//     port. Accesses are dispatched from the global trace in canonical order
//     to whichever slot frees up next, approximating a massively parallel
//     grid marching through its input.
//   - Translation: per-SM L1 TLB (1 cycle) → shared L2 TLB (10 cycles) →
//     page-table walk (8 cycles). Concurrent walks for the same page merge
//     (walker MSHRs). Walk hits are reported to the driver (feeding the
//     baselines' ideal model and HPE's HIR); walk misses raise replayable
//     far-faults: the faulting warp blocks, everything else keeps going.
//   - Far-faults queue at the UVM driver (internal/uvm): 20 µs each,
//     serviced in order with duplicate coalescing, evicting via the active
//     policy when device memory is full. Evictions shoot down TLB entries.
//   - IPC: every access counts as 1 memory instruction + ComputeGap compute
//     instructions; IPC = instructions / total cycles.
package gpu

import (
	"context"
	"fmt"

	"hpe/internal/addrspace"
	"hpe/internal/cache"
	"hpe/internal/dram"
	"hpe/internal/hir"
	"hpe/internal/hpe"
	"hpe/internal/mem"
	"hpe/internal/policy"
	"hpe/internal/probe"
	"hpe/internal/ptw"
	"hpe/internal/sim"
	"hpe/internal/tlb"
	"hpe/internal/trace"
	"hpe/internal/uvm"
)

// TranslationDesign selects the address-translation organisation (§II of
// the paper, citing Power et al. and Ausavarungnirun et al.).
type TranslationDesign int

const (
	// DesignL2TLB is the paper's adopted design: per-SM L1 TLBs backed by a
	// shared L2 TLB, with a fixed-latency single-level walk.
	DesignL2TLB TranslationDesign = iota
	// DesignPWC is the alternative: per-SM L1 TLBs backed by a shared
	// page-walk cache inside a radix page-table walker (no L2 TLB). The
	// paper rejects it "due to better performance" of the L2 TLB — the
	// "translation" extension experiment reproduces that comparison.
	DesignPWC
)

// String names the design.
func (d TranslationDesign) String() string {
	if d == DesignPWC {
		return "PWC"
	}
	return "L2TLB"
}

// Config is the full simulated-system configuration (Table I defaults).
type Config struct {
	// SMs is the number of streaming multiprocessors (15).
	SMs int
	// WarpsPerSM is the number of concurrently resident warp slots per SM.
	WarpsPerSM int
	// CoreMHz is the core clock (1400).
	CoreMHz float64

	// L1TLBEntries/Ways: per-SM private L1 TLB (128-entry, fully assoc.).
	L1TLBEntries, L1TLBWays int
	// L2TLBEntries/Ways: shared L2 TLB (512-entry, 16-way).
	L2TLBEntries, L2TLBWays int
	// L1TLBLatency, L2TLBLatency, WalkLatency in cycles (1, 10, 8).
	L1TLBLatency, L2TLBLatency, WalkLatency sim.Cycle

	// Translation selects the address-translation design (default: the
	// paper's shared L2 TLB).
	Translation TranslationDesign
	// PTW configures the radix walker used by DesignPWC.
	PTW ptw.Config

	// MemoryPages is the device-memory capacity in pages; the experiment
	// harness sets it to 75% or 50% of the workload footprint.
	MemoryPages int
	// ComputeGap is the per-access compute-instruction count (workload
	// dependent).
	ComputeGap sim.Cycle

	// Driver is the UVM runtime configuration.
	Driver uvm.Config
	// UseHIR attaches a HIR cache and routes walk hits through it (HPE's
	// production configuration).
	UseHIR bool
	// HIR is the HIR cache geometry (used when UseHIR).
	HIR hir.Config

	// ModelDataPath sends every access through the Table I data hierarchy
	// (per-SM L1D → shared L2 → GDDR5 channels) after translation. Off by
	// default: the paper's results are fault-driven, and the calibrated
	// reproduction numbers are measured without data microtiming. The
	// "datapath" extension study turns it on.
	ModelDataPath bool
	// DataL1 and DataL2 size the data caches (Table I defaults).
	DataL1, DataL2 cache.Config
	// DataL1Latency and DataL2Latency are the hit latencies in cycles.
	DataL1Latency, DataL2Latency sim.Cycle
	// DRAM configures the channel model.
	DRAM dram.Config

	// Prepopulate maps the workload's entire footprint before the first
	// access (requires MemoryPages >= footprint). No demand faults occur, so
	// the run isolates the memory system's translation behaviour — how the
	// §II translation-design study measures the L2-TLB vs page-walk-cache
	// choice.
	Prepopulate bool

	// MaxCycles aborts a runaway simulation; 0 means unlimited.
	MaxCycles sim.Cycle
}

// DefaultConfig returns the Table I system with the given device-memory
// capacity in pages.
func DefaultConfig(memoryPages int) Config {
	return Config{
		SMs:          15,
		WarpsPerSM:   48,
		CoreMHz:      1400,
		L1TLBEntries: 128, L1TLBWays: 128,
		L2TLBEntries: 512, L2TLBWays: 16,
		L1TLBLatency: 1, L2TLBLatency: 10, WalkLatency: 8,
		PTW:           ptw.DefaultConfig(),
		DataL1:        cache.L1Config(),
		DataL2:        cache.L2Config(),
		DataL1Latency: 4, DataL2Latency: 30,
		DRAM:        dram.DefaultConfig(),
		MemoryPages: memoryPages,
		ComputeGap:  4,
		Driver:      uvm.DefaultConfig(),
		HIR:         hir.DefaultConfig(),
	}
}

// Result summarises one simulation run.
type Result struct {
	Workload string
	Policy   string

	Cycles       sim.Cycle
	Accesses     uint64
	Instructions uint64
	IPC          float64

	Faults    uint64
	Evictions uint64
	Coalesced uint64
	WalkHits  uint64
	Walks     uint64
	// WalkMerges counts accesses that joined an already in-flight walk for
	// the same page (walker MSHR hits).
	WalkMerges uint64
	// BarriersCrossed counts kernel boundaries synchronised on.
	BarriersCrossed uint64

	L1Hits, L1Misses uint64
	L2Hits, L2Misses uint64

	Driver uvm.Stats
	HIR    *hir.Stats
	HPE    *hpe.Stats
	// Probe carries the metrics-probe snapshot when a probe.Metrics was
	// attached to the run (directly or inside a probe.Multi); nil otherwise.
	Probe *probe.Snapshot
	// PTW carries the radix-walker statistics when the PWC design is active.
	PTW *ptw.Stats
	// Data-path statistics (ModelDataPath runs only).
	DataL1Hits, DataL1Misses uint64
	DataL2Hits, DataL2Misses uint64
	DRAM                     *dram.Stats

	// TimedOut reports that MaxCycles stopped the run early.
	TimedOut bool
	// Cancelled reports that the run's context (WithContext) was cancelled
	// before the trace drained; counters cover the simulated prefix only.
	Cancelled bool
}

// Runtime returns the simulated wall-clock time in seconds.
func (r Result) Runtime(coreMHz float64) float64 {
	return float64(r.Cycles) / (coreMHz * 1e6)
}

// String renders a one-line summary.
func (r Result) String() string {
	return fmt.Sprintf("%-6s %-10s cycles=%-12d IPC=%-8.3f faults=%-7d evictions=%-7d walkHits=%d",
		r.Workload, r.Policy, r.Cycles, r.IPC, r.Faults, r.Evictions, r.WalkHits)
}

type continuation struct {
	smID int
	seq  int
}

// The three hot-path event kinds are named handler types over the Simulator
// itself — `(*issueEvent)(s)` is a zero-allocation pointer conversion, so
// scheduling an issue, walk-completion, or access-completion event costs no
// heap allocation at all (the payload travels in the event's two integer
// words). Only cold paths (fault service, barrier probes) still use closures.

// issueEvent runs the translation path: a0 = SM id, a1 = access sequence.
type issueEvent Simulator

func (e *issueEvent) OnEvent(a0, a1 uint64) {
	s := (*Simulator)(e)
	s.issue(s.sms[a0], int(a1))
}

// walkDoneEvent resolves a completed page-table walk: a0 = page.
type walkDoneEvent Simulator

func (e *walkDoneEvent) OnEvent(a0, _ uint64) {
	(*Simulator)(e).finishWalk(addrspace.PageID(a0))
}

// completeEvent retires one access and recycles its warp slot: a0 = SM id,
// a1 = the access's compute gap (segment-dependent on annotated traces).
type completeEvent Simulator

func (e *completeEvent) OnEvent(a0, a1 uint64) {
	s := (*Simulator)(e)
	s.completed++
	s.instructions += 1 + a1
	s.dispatch(s.sms[a0])
	s.releaseBarrier()
}

type smState struct {
	id        int
	l1        *tlb.TLB
	l1d       *cache.Cache // nil unless ModelDataPath
	nextIssue sim.Cycle
}

// Simulator runs one (trace, policy, config) combination.
type Simulator struct {
	cfg    Config
	tr     *trace.Trace
	pol    policy.Policy
	engine *sim.Engine
	memory *mem.DeviceMemory
	driver *uvm.Driver
	l2     *tlb.TLB
	pwalk  *ptw.Walker  // non-nil under DesignPWC
	l2d    *cache.Cache // nil unless ModelDataPath
	dramC  *dram.DRAM   // nil unless ModelDataPath
	sms    []*smState
	hirC   *hir.Cache
	probe  probe.Probe // nil unless instrumented (WithProbe)

	hIssue    sim.HandlerID
	hWalk     sim.HandlerID
	hComplete sim.HandlerID

	cursor       int
	walkWaiters  map[addrspace.PageID][]continuation
	contPool     [][]continuation // recycled waiter slices (capacity retained)
	completed    uint64
	instructions uint64
	walkHits     uint64
	walks        uint64
	walkMerges   uint64

	// Per-segment compute gaps, set only for segment-annotated traces
	// (workload v2); nil keeps the uniform cfg.ComputeGap fast path.
	segStarts []int
	segGaps   []sim.Cycle

	// Kernel-boundary handling: slots that reached the next barrier park in
	// stalled until every access before the barrier completes.
	barrierIdx int
	stalled    []*smState
	barriers   uint64 // crossed, for stats
}

// Option customises a Simulator beyond its Config (run-scoped concerns that
// are not part of the simulated system, such as instrumentation).
type Option func(*Simulator)

// WithProbe attaches an instrumentation probe to the run. Every emission
// site is guarded by a nil check, so omitting this option keeps the exact
// uninstrumented fast path. Probes observe only; attaching one never changes
// a simulation result.
func WithProbe(p probe.Probe) Option {
	return func(s *Simulator) {
		s.probe = p
		s.driver.SetProbe(p)
		if s.hirC != nil {
			s.hirC.SetProbe(p, s.engine.Now)
		}
	}
}

// cancelPollEvents is how many engine events fire between context polls
// under WithContext: frequent enough that a cancelled client stops the
// simulation within microseconds of wall time, rare enough that the poll
// cost vanishes against event dispatch.
const cancelPollEvents = 4096

// WithContext ties the run to ctx: the event engine polls ctx.Done() every
// cancelPollEvents events and stops firing when it closes, marking the
// Result Cancelled. A context that can never be cancelled (Background) is a
// no-op, preserving the exact unpolled fast path.
func WithContext(ctx context.Context) Option {
	return func(s *Simulator) {
		if ctx == nil || ctx.Done() == nil {
			return
		}
		s.engine.SetCancel(cancelPollEvents, func() bool {
			select {
			case <-ctx.Done():
				return true
			default:
				return false
			}
		})
	}
}

// New builds a simulator. The policy must be fresh (one policy instance per
// run).
func New(cfg Config, tr *trace.Trace, pol policy.Policy, opts ...Option) *Simulator {
	if cfg.SMs <= 0 || cfg.WarpsPerSM <= 0 {
		panic(fmt.Sprintf("gpu: bad SM configuration %d×%d", cfg.SMs, cfg.WarpsPerSM))
	}
	if cfg.MemoryPages <= 0 {
		panic("gpu: MemoryPages must be positive")
	}
	s := &Simulator{
		cfg:         cfg,
		tr:          tr,
		pol:         pol,
		engine:      sim.NewEngine(),
		memory:      mem.NewDeviceMemory(cfg.MemoryPages),
		l2:          tlb.New("L2", cfg.L2TLBEntries, cfg.L2TLBWays),
		walkWaiters: make(map[addrspace.PageID][]continuation),
	}
	if cfg.UseHIR {
		s.hirC = hir.New(cfg.HIR)
	}
	if cfg.Translation == DesignPWC {
		s.pwalk = ptw.New(cfg.PTW)
	}
	if cfg.ModelDataPath {
		s.l2d = cache.New(cfg.DataL2)
		s.dramC = dram.New(cfg.DRAM)
	}
	s.hIssue = s.engine.Register((*issueEvent)(s))
	s.hWalk = s.engine.Register((*walkDoneEvent)(s))
	s.hComplete = s.engine.Register((*completeEvent)(s))
	s.driver = uvm.New(cfg.Driver, s.engine, s.memory, pol, s.hirC, s.invalidate)
	if len(tr.Segments) > 0 {
		// A segment-annotated trace (phase schedule or colocation) overrides
		// the uniform compute gap per segment.
		s.segStarts = make([]int, len(tr.Segments))
		s.segGaps = make([]sim.Cycle, len(tr.Segments))
		for i, seg := range tr.Segments {
			s.segStarts[i] = seg.Start
			s.segGaps[i] = sim.Cycle(max(0, seg.Gap))
		}
	}
	if len(tr.Tenants) > 0 {
		s.driver.SetTenants(tr.Tenants)
	}
	for i := 0; i < cfg.SMs; i++ {
		sm := &smState{
			id: i,
			l1: tlb.New(fmt.Sprintf("L1-%d", i), cfg.L1TLBEntries, cfg.L1TLBWays),
		}
		if cfg.ModelDataPath {
			sm.l1d = cache.New(cfg.DataL1)
		}
		s.sms = append(s.sms, sm)
	}
	if cfg.MaxCycles > 0 {
		s.engine.SetLimit(cfg.MaxCycles)
	}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// invalidate shoots down TLB entries (and, on the data path, cache lines)
// for an evicted page.
func (s *Simulator) invalidate(p addrspace.PageID) {
	s.l2.Invalidate(p)
	for _, sm := range s.sms {
		sm.l1.Invalidate(p)
		if sm.l1d != nil {
			sm.l1d.InvalidatePage(p)
		}
	}
	if s.l2d != nil {
		s.l2d.InvalidatePage(p)
	}
}

// dataLatency runs one access through the data hierarchy, synthesising a
// line within the page from the access sequence number (a page-granularity
// trace cannot carry line offsets; the 7-stride spread exercises row
// buffers and cache sets representatively).
func (s *Simulator) dataLatency(sm *smState, page addrspace.PageID, seq int) sim.Cycle {
	const linesPerPage = addrspace.PageBytes / cache.LineBytes
	l := cache.LineOf(page.BaseAddr()) + cache.LineID(seq%linesPerPage)
	if sm.l1d.Access(l) {
		return s.cfg.DataL1Latency
	}
	if s.l2d.Access(l) {
		return s.cfg.DataL1Latency + s.cfg.DataL2Latency
	}
	now := s.engine.Now()
	done := s.dramC.Access(now+s.cfg.DataL1Latency+s.cfg.DataL2Latency, l)
	return done - now
}

// dispatch hands the next trace access to a freed warp slot of SM sm. At a
// kernel boundary the slot parks until the preceding kernel drains.
func (s *Simulator) dispatch(sm *smState) {
	if s.cursor >= s.tr.Len() {
		return
	}
	if s.barrierIdx < len(s.tr.Barriers) && s.cursor == s.tr.Barriers[s.barrierIdx] {
		if int(s.completed) < s.cursor {
			s.stalled = append(s.stalled, sm)
			return
		}
		if s.probe != nil {
			s.probe.Emit(probe.KernelBarrier(s.engine.Now(), sm.id, s.barrierIdx, s.cursor))
		}
		s.barrierIdx++
		s.barriers++
	}
	seq := s.cursor
	s.cursor++
	issueAt := s.engine.Now()
	if sm.nextIssue >= issueAt {
		issueAt = sm.nextIssue + 1
	}
	sm.nextIssue = issueAt
	s.engine.Schedule(issueAt, s.hIssue, uint64(sm.id), uint64(seq))
}

// issue runs the translation path for access seq on SM sm.
func (s *Simulator) issue(sm *smState, seq int) {
	page := s.tr.Refs[seq]
	if sm.l1.Lookup(page) {
		s.finish(sm, page, seq, s.cfg.L1TLBLatency)
		return
	}
	if s.probe != nil {
		s.probe.Emit(probe.TLBMiss(s.engine.Now(), sm.id, page, seq, 1))
	}
	if s.pwalk == nil {
		if s.l2.Lookup(page) {
			sm.l1.Fill(page)
			s.finish(sm, page, seq, s.cfg.L1TLBLatency+s.cfg.L2TLBLatency)
			return
		}
		if s.probe != nil {
			s.probe.Emit(probe.TLBMiss(s.engine.Now(), sm.id, page, seq, 2))
		}
	}
	// Page walk, with MSHR-style merging of concurrent walks.
	cont := continuation{smID: sm.id, seq: seq}
	if ws, ok := s.walkWaiters[page]; ok {
		//lint:ignore hpelint/hotalloc waiter slices recycle through contPool, so growth amortizes across walks
		s.walkWaiters[page] = append(ws, cont)
		s.walkMerges++
		if s.probe != nil {
			s.probe.Emit(probe.WalkMerge(s.engine.Now(), sm.id, page, seq))
		}
		return
	}
	var ws []continuation
	if n := len(s.contPool); n > 0 {
		ws = s.contPool[n-1]
		s.contPool = s.contPool[:n-1]
	}
	//lint:ignore hpelint/hotalloc waiter slices recycle through contPool, so growth amortizes across walks
	s.walkWaiters[page] = append(ws, cont)
	s.walks++
	var delay sim.Cycle
	if s.pwalk != nil {
		delay = s.cfg.L1TLBLatency + s.pwalk.WalkLatency(page)
	} else {
		delay = s.cfg.L1TLBLatency + s.cfg.L2TLBLatency + s.cfg.WalkLatency
	}
	s.engine.ScheduleAfter(delay, s.hWalk, uint64(page), 0)
}

// finishWalk resolves a completed page-table walk.
func (s *Simulator) finishWalk(page addrspace.PageID) {
	conts := s.walkWaiters[page]
	delete(s.walkWaiters, page)
	if s.memory.Resident(page) {
		s.walkHits++
		if s.probe != nil {
			s.probe.Emit(probe.WalkHit(s.engine.Now(), conts[0].smID, page, conts[0].seq))
		}
		s.driver.RecordWalkHit(page, conts[0].seq)
		s.fillAndWake(page, conts)
		return
	}
	// Far-fault: the waiting warps block until the driver maps the page.
	//lint:ignore hpelint/hotalloc one continuation per far-fault; faults are the priced slow path, not the per-event path
	s.driver.Fault(page, conts[0].seq, func() { s.fillAndWake(page, conts) })
}

// fillAndWake installs the translation, completes every merged access, and
// returns the waiter slice to the pool (fillAndWake is the single sink for
// waiter slices on both the walk-hit and fault paths).
func (s *Simulator) fillAndWake(page addrspace.PageID, conts []continuation) {
	if s.pwalk == nil {
		s.l2.Fill(page)
	}
	for _, c := range conts {
		sm := s.sms[c.smID]
		sm.l1.Fill(page)
		s.finish(sm, page, c.seq, 1)
	}
	s.contPool = append(s.contPool, conts[:0])
}

// finish completes one access after `extra` cycles (plus the data-path
// latency when modelled) and recycles the slot after the compute gap — the
// uniform cfg.ComputeGap, or the access's segment gap on annotated traces.
func (s *Simulator) finish(sm *smState, page addrspace.PageID, seq int, extra sim.Cycle) {
	if sm.l1d != nil {
		extra += s.dataLatency(sm, page, seq)
	}
	gap := s.cfg.ComputeGap
	if s.segStarts != nil {
		gap = s.gapAt(seq)
	}
	s.engine.ScheduleAfter(extra+gap, s.hComplete, uint64(sm.id), uint64(gap))
}

// gapAt returns the compute gap of the segment containing trace position seq
// (binary search over the sorted segment starts; first segment starts at 0).
func (s *Simulator) gapAt(seq int) sim.Cycle {
	lo, hi := 0, len(s.segStarts)
	for lo+1 < hi {
		if m := (lo + hi) / 2; s.segStarts[m] <= seq {
			lo = m
		} else {
			hi = m
		}
	}
	return s.segGaps[lo]
}

// releaseBarrier re-dispatches parked slots once the kernel before the
// pending barrier has fully drained.
func (s *Simulator) releaseBarrier() {
	if len(s.stalled) == 0 ||
		s.barrierIdx >= len(s.tr.Barriers) ||
		s.cursor != s.tr.Barriers[s.barrierIdx] ||
		int(s.completed) < s.cursor {
		return
	}
	parked := s.stalled
	s.stalled = nil
	for _, sm := range parked {
		s.dispatch(sm)
	}
}

// Run executes the simulation to completion and returns the result.
func (s *Simulator) Run() Result {
	if s.cfg.Prepopulate {
		pages := s.tr.UniquePages()
		if len(pages) > s.cfg.MemoryPages {
			panic(fmt.Sprintf("gpu: Prepopulate needs %d pages, memory holds %d",
				len(pages), s.cfg.MemoryPages))
		}
		for _, p := range pages {
			if _, err := s.memory.Insert(p); err != nil {
				panic(fmt.Sprintf("gpu: prepopulate: %v", err))
			}
			s.pol.OnMapped(p, 0)
		}
	}
	// Prime every warp slot.
	for _, sm := range s.sms {
		for w := 0; w < s.cfg.WarpsPerSM; w++ {
			s.dispatch(sm)
		}
	}
	s.engine.Run()

	res := Result{
		Workload:        s.tr.Name,
		Policy:          s.pol.Name(),
		Cycles:          s.engine.Now(),
		Accesses:        s.completed,
		Instructions:    s.instructions,
		WalkHits:        s.walkHits,
		Walks:           s.walks,
		WalkMerges:      s.walkMerges,
		BarriersCrossed: s.barriers,
		Driver:          s.driver.Stats(),
		Cancelled:       s.engine.Cancelled(),
		TimedOut:        s.cfg.MaxCycles > 0 && s.engine.Pending() > 0 && !s.engine.Cancelled(),
	}
	res.Faults = res.Driver.FaultsServiced
	res.Evictions = res.Driver.Evictions
	res.Coalesced = res.Driver.Coalesced
	if res.Cycles > 0 {
		res.IPC = float64(res.Instructions) / float64(res.Cycles)
	}
	var l1h, l1m uint64
	for _, sm := range s.sms {
		h, m, _, _ := sm.l1.Stats()
		l1h += h
		l1m += m
	}
	res.L1Hits, res.L1Misses = l1h, l1m
	h2, m2, _, _ := s.l2.Stats()
	res.L2Hits, res.L2Misses = h2, m2
	if s.hirC != nil {
		st := s.hirC.Stats()
		res.HIR = &st
	}
	if hp, ok := s.pol.(*hpe.HPE); ok {
		st := hp.Stats()
		res.HPE = &st
	}
	if s.pwalk != nil {
		st := s.pwalk.Stats()
		res.PTW = &st
	}
	if s.l2d != nil {
		for _, sm := range s.sms {
			h, m := sm.l1d.Stats()
			res.DataL1Hits += h
			res.DataL1Misses += m
		}
		res.DataL2Hits, res.DataL2Misses = s.l2d.Stats()
		st := s.dramC.Stats()
		res.DRAM = &st
	}
	if m := probe.FindMetrics(s.probe); m != nil {
		snap := m.Snapshot()
		res.Probe = &snap
	}
	return res
}

// Run is the one-call convenience: build and run a simulation.
func Run(cfg Config, tr *trace.Trace, pol policy.Policy, opts ...Option) Result {
	return New(cfg, tr, pol, opts...).Run()
}

package gpu

import (
	"testing"

	"hpe/internal/policy"
	"hpe/internal/probe"
	"hpe/internal/workload"
)

// TestSegmentComputeGaps runs a phase schedule and checks the per-segment
// compute gaps reach the IPC accounting: every access retires with its
// segment's gap, so the instruction total is the exact per-segment sum.
func TestSegmentComputeGaps(t *testing.T) {
	ps, err := workload.ParsePhases("HOT:16:2,HSD:32:7,HOT:16:2")
	if err != nil {
		t.Fatal(err)
	}
	tr := ps.App().Generate()
	if len(tr.Segments) != 3 {
		t.Fatalf("got %d segments", len(tr.Segments))
	}
	cfg := DefaultConfig(tr.Footprint() * 3 / 4)
	r := Run(cfg, tr, policy.NewLRU())
	if r.Accesses != uint64(tr.Len()) {
		t.Fatalf("completed %d of %d accesses", r.Accesses, tr.Len())
	}
	var want uint64
	for i, seg := range tr.Segments {
		end := tr.Len()
		if i+1 < len(tr.Segments) {
			end = tr.Segments[i+1].Start
		}
		want += uint64(end-seg.Start) * uint64(1+seg.Gap)
	}
	if r.Instructions != want {
		t.Fatalf("instructions = %d, want per-segment sum %d", r.Instructions, want)
	}
	if want == uint64(tr.Len())*uint64(1+cfg.ComputeGap) {
		t.Fatal("test is vacuous: segment gaps coincide with the uniform gap")
	}
}

// TestTenantAttribution runs a colocation and checks the driver's native
// per-tenant counters: complete coverage (every fault and eviction is
// attributed) and agreement with the probe-layer TenantCounts observer.
func TestTenantAttribution(t *testing.T) {
	co, err := workload.ParseTenants("HSD,BFS")
	if err != nil {
		t.Fatal(err)
	}
	tr := co.App(512).Generate()
	cfg := DefaultConfig(tr.Footprint() / 2)
	tc := probe.NewTenantCounts(tr.Tenants)
	r := Run(cfg, tr, policy.NewLRU(), WithProbe(tc))

	tens := r.Driver.Tenants
	if len(tens) != 2 || tens[0].Name != "HSD" || tens[1].Name != "BFS" {
		t.Fatalf("driver tenant stats = %+v", tens)
	}
	var faults, evictions uint64
	for _, ts := range tens {
		if ts.Faults == 0 {
			t.Errorf("tenant %s recorded no faults", ts.Name)
		}
		faults += ts.Faults
		evictions += ts.Evictions
	}
	if faults != r.Faults {
		t.Errorf("attributed faults %d != serviced faults %d", faults, r.Faults)
	}
	if evictions != r.Evictions {
		t.Errorf("attributed evictions %d != total evictions %d", evictions, r.Evictions)
	}
	if evictions > 0 && tens[0].CrossEvictions+tens[1].CrossEvictions == 0 {
		t.Error("colocated run under memory pressure saw no cross-tenant evictions")
	}
	// The probe-layer observer must agree with the driver's native counters.
	for i, c := range tc.Counts() {
		if c.Name != tens[i].Name || c.Faults != tens[i].Faults ||
			c.Evictions != tens[i].Evictions || c.CrossEvictions != tens[i].CrossEvictions {
			t.Errorf("probe attribution %+v disagrees with driver %+v", c, tens[i])
		}
	}
}

// TestStationaryResultUnchanged pins the workload-v1 contract: an
// unannotated trace must produce the exact instruction accounting it always
// had (completed × (1 + uniform gap)), with no tenant block in the stats.
func TestStationaryResultUnchanged(t *testing.T) {
	app, _ := workload.ByAbbr("HOT")
	tr := app.Generate()
	cfg := DefaultConfig(tr.Footprint() * 3 / 4)
	r := Run(cfg, tr, policy.NewLRU())
	if want := r.Accesses * uint64(1+cfg.ComputeGap); r.Instructions != want {
		t.Fatalf("stationary instructions = %d, want %d", r.Instructions, want)
	}
	if r.Driver.Tenants != nil {
		t.Fatalf("stationary run grew tenant stats: %+v", r.Driver.Tenants)
	}
}

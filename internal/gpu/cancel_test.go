package gpu

import (
	"context"
	"reflect"
	"testing"

	"hpe/internal/policy"
	"hpe/internal/workload"
)

// TestWithContextCancelStopsRun cancels a simulation before it starts and
// verifies the engine aborts at its first poll: the run returns quickly with
// Cancelled set and only a prefix of the trace processed.
func TestWithContextCancelStopsRun(t *testing.T) {
	app, ok := workload.ByAbbr("HOT")
	if !ok {
		t.Fatal("catalog missing HOT")
	}
	tr := app.Generate()
	full := Run(DefaultConfig(tr.Footprint()*3/4), tr, policy.NewLRU())
	if full.Cancelled {
		t.Fatal("uncancelled run reported Cancelled")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: the engine stops at the first poll
	r := Run(DefaultConfig(tr.Footprint()*3/4), tr, policy.NewLRU(), WithContext(ctx))
	if !r.Cancelled {
		t.Fatal("cancelled run did not report Cancelled")
	}
	if r.TimedOut {
		t.Fatal("cancelled run also reported TimedOut")
	}
	if r.Accesses >= full.Accesses {
		t.Fatalf("cancelled run completed %d accesses, full run %d — no early stop",
			r.Accesses, full.Accesses)
	}
}

// TestWithContextBackgroundIsDeterministic verifies attaching a Background
// context changes nothing: same Result as the plain run, bit for bit.
func TestWithContextBackgroundIsDeterministic(t *testing.T) {
	app, _ := workload.ByAbbr("HOT")
	tr := app.Generate()
	cfg := DefaultConfig(tr.Footprint() * 3 / 4)
	plain := Run(cfg, tr, policy.NewLRU())
	probed := Run(cfg, tr, policy.NewLRU(), WithContext(context.Background()))
	if !reflect.DeepEqual(plain, probed) {
		t.Fatal("WithContext(Background) changed the simulation result")
	}
}

package gpu

import (
	"testing"

	"hpe/internal/addrspace"
	"hpe/internal/policy"
	"hpe/internal/workload"
)

func defaultGeom() addrspace.Geometry { return addrspace.DefaultGeometry() }

// checkResultInvariants validates the accounting identities that hold for
// every completed simulation regardless of policy or workload:
//   - every trace reference completed,
//   - L1 lookups == accesses,
//   - every access resolved through exactly one path (L1 hit, L2 hit, walk,
//     or walk merge),
//   - faults ≥ footprint (compulsory misses) and evictions = faults − peak
//     residency,
//   - all kernel barriers were crossed.
func checkResultInvariants(t *testing.T, res Result, traceLen, footprint, capacity, barriers int) {
	t.Helper()
	if res.TimedOut {
		t.Fatal("run timed out")
	}
	if res.Accesses != uint64(traceLen) {
		t.Fatalf("completed %d accesses, trace has %d", res.Accesses, traceLen)
	}
	if res.L1Hits+res.L1Misses != res.Accesses {
		t.Fatalf("L1 lookups %d != accesses %d", res.L1Hits+res.L1Misses, res.Accesses)
	}
	if res.L1Hits+res.L2Hits+res.Walks+res.WalkMerges != res.Accesses {
		t.Fatalf("resolution paths don't sum: l1=%d l2=%d walks=%d merges=%d accesses=%d",
			res.L1Hits, res.L2Hits, res.Walks, res.WalkMerges, res.Accesses)
	}
	// A walk resolves as a hit, a new fault, or a merge onto an in-flight
	// fault at the driver.
	if res.WalkHits+res.Faults+res.Coalesced != res.Walks {
		t.Fatalf("walks %d != hits %d + faults %d + coalesced %d",
			res.Walks, res.WalkHits, res.Faults, res.Coalesced)
	}
	if res.Faults < uint64(footprint) {
		t.Fatalf("faults %d below compulsory %d", res.Faults, footprint)
	}
	peak := footprint
	if capacity < peak {
		peak = capacity
	}
	if res.Evictions != res.Faults-uint64(peak) {
		t.Fatalf("evictions %d != faults %d - peak %d", res.Evictions, res.Faults, peak)
	}
	if res.BarriersCrossed != uint64(barriers) {
		t.Fatalf("crossed %d barriers, trace has %d", res.BarriersCrossed, barriers)
	}
}

// TestSimulationInvariantsAcrossCatalog runs a sample of catalog apps under
// several policies and validates the accounting identities.
func TestSimulationInvariantsAcrossCatalog(t *testing.T) {
	if testing.Short() {
		t.Skip("catalog invariants skipped in -short mode")
	}
	for _, abbr := range []string{"STN", "GEM", "B+T", "NW", "SPV"} {
		app, ok := workload.ByAbbr(abbr)
		if !ok {
			t.Fatalf("%s missing", abbr)
		}
		tr := app.Generate()
		for _, rate := range []int{75, 50} {
			capacity := tr.Footprint() * rate / 100
			cfg := DefaultConfig(capacity)
			cfg.ComputeGap = 2
			for _, pol := range []policy.Policy{
				policy.NewLRU(), policy.NewRandom(3),
				policy.NewClockPro(capacity, policy.DefaultColdTarget),
			} {
				res := Run(cfg, tr, pol)
				checkResultInvariants(t, res, tr.Len(), tr.Footprint(), capacity, len(tr.Barriers))
			}
		}
	}
}

// TestBarrierOrderingEnforced: with barriers, no access after a barrier may
// complete before every access before it. We verify via a policy that
// records fault sequence numbers and checks they never cross a barrier
// backwards by more than the in-flight window... simpler and airtight:
// a two-kernel trace where kernel 2 faults must all carry seq >= barrier.
func TestBarrierOrderingEnforced(t *testing.T) {
	b := workload.NewBuilder(defaultGeom(), 0, 1)
	workload.Thrashing(b, 8, 2, 1) // two passes with a barrier between
	tr := b.Build("two-kernel")
	barrier := tr.Barriers[0]

	rec := &seqRecorder{Policy: policy.NewLRU()}
	cfg := smallConfig(64) // tiny memory: both passes fault heavily
	res := Run(cfg, tr, rec)
	if res.BarriersCrossed == 0 {
		t.Fatal("no barriers crossed")
	}
	// Fault seqs must be grouped: all pass-1 faults (seq < barrier) precede
	// all pass-2 faults (seq >= barrier) in service order.
	crossed := false
	for _, seq := range rec.seqs {
		if seq >= barrier {
			crossed = true
		} else if crossed {
			t.Fatalf("pass-1 fault (seq %d) serviced after a pass-2 fault; barrier violated", seq)
		}
	}
}

type seqRecorder struct {
	policy.Policy
	seqs []int
}

func (r *seqRecorder) OnFault(p addrspace.PageID, seq int) {
	r.seqs = append(r.seqs, seq)
	r.Policy.OnFault(p, seq)
}

package gpu

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"hpe/internal/hpe"
	"hpe/internal/policy"
	"hpe/internal/probe"
	"hpe/internal/sim"
)

// orderChecker records the event stream and the largest timestamp seen.
type orderChecker struct {
	t      *testing.T
	events int
	counts map[probe.Kind]uint64
	last   sim.Cycle
}

func newOrderChecker(t *testing.T) *orderChecker {
	return &orderChecker{t: t, counts: map[probe.Kind]uint64{}}
}

func (o *orderChecker) Emit(ev probe.Event) {
	if ev.At < o.last {
		o.t.Errorf("event %v at cycle %d precedes cycle %d (stream must be time-ordered)",
			ev.Kind, ev.At, o.last)
	}
	o.last = ev.At
	o.events++
	o.counts[ev.Kind]++
}

func (o *orderChecker) Flush() error { return nil }

// stripProbe zeroes the probe snapshot so probed and unprobed Results compare
// field-for-field.
func stripProbe(r Result) Result {
	r.Probe = nil
	return r
}

// TestProbeObservesWithoutChanging is the core observability contract:
// attaching probes must not move a single counter, and every event count
// must agree with the corresponding Result counter.
func TestProbeObservesWithoutChanging(t *testing.T) {
	tr := thrashTrace(12, 4) // oversubscribed: faults, evictions, refaults
	cfg := smallConfig(96)
	base := Run(cfg, tr, policy.NewLRU())

	oc := newOrderChecker(t)
	m := probe.NewMetrics()
	probed := Run(cfg, tr, policy.NewLRU(), WithProbe(probe.Multi(oc, m)))

	if probed.Probe == nil {
		t.Fatal("metrics probe did not surface on Result.Probe")
	}
	if !reflect.DeepEqual(stripProbe(probed), stripProbe(base)) {
		t.Fatalf("probed run diverged:\nprobed %+v\nbase   %+v", probed, base)
	}

	snap := *probed.Probe
	checks := []struct {
		kind string
		want uint64
	}{
		{"fault_end", base.Faults},
		{"fault_begin", base.Faults},
		{"eviction", base.Evictions},
		{"coalesce", base.Coalesced},
		{"walk_hit", base.WalkHits},
		{"walk_merge", base.WalkMerges},
		{"kernel_barrier", base.BarriersCrossed},
		{"tlb_miss", base.L1Misses + base.L2Misses},
	}
	for _, c := range checks {
		if got := snap.Count(c.kind); got != c.want {
			t.Errorf("probe count %s = %d, counter says %d", c.kind, got, c.want)
		}
	}
	if oc.events == 0 || uint64(oc.events) != snap.Events {
		t.Errorf("fanned-out probes disagree: checker saw %d, metrics %d", oc.events, snap.Events)
	}
	// Fault latency histogram: every fault takes at least the driver's
	// service latency.
	fe, ok := snap.ByKind("fault_end")
	if !ok || fe.Latency.Count != base.Faults {
		t.Fatalf("fault_end latency count = %d, want %d", fe.Latency.Count, base.Faults)
	}
	if fe.Latency.Min < uint64(cfg.Driver.FaultLatency) {
		t.Errorf("min fault latency %d below service latency %d",
			fe.Latency.Min, cfg.Driver.FaultLatency)
	}
}

// TestProbeHIREvents drives the HPE/HIR configuration and checks the
// HIR-specific kinds appear and agree with the HIR statistics.
func TestProbeHIREvents(t *testing.T) {
	tr := thrashTrace(48, 3) // beyond the L2 TLB reach: walks hit, HIR fills
	cfg := smallConfig(576)  // 75%
	cfg.UseHIR = true
	m := probe.NewMetrics()
	s := New(cfg, tr, hpe.New(hpe.DefaultConfig()), WithProbe(m))
	res := s.Run()
	if res.HIR == nil || res.HIR.HitsRecorded == 0 {
		t.Fatalf("no HIR activity: %+v", res.HIR)
	}
	// One hir_drain event per drain that actually moved entries (empty
	// drains transfer nothing and emit nothing).
	nonEmpty := uint64(0)
	for _, n := range s.hirC.DrainSizes() {
		if n > 0 {
			nonEmpty++
		}
	}
	if nonEmpty == 0 {
		t.Fatal("no non-empty drains; workload does not exercise the path")
	}
	snap := *res.Probe
	if got := snap.Count("hir_drain"); got != nonEmpty {
		t.Errorf("hir_drain events = %d, non-empty drains = %d", got, nonEmpty)
	}
	if got := snap.Count("hir_conflict"); got != res.HIR.Conflicts {
		t.Errorf("hir_conflict events = %d, stats say %d", got, res.HIR.Conflicts)
	}
	// Drains carry a transfer-latency histogram.
	if hd, ok := snap.ByKind("hir_drain"); ok && hd.Latency.Count != nonEmpty {
		t.Errorf("hir_drain latency count = %d, want %d", hd.Latency.Count, nonEmpty)
	}
	// HIR probing must not perturb the run either.
	base := Run(cfg, tr, hpe.New(hpe.DefaultConfig()))
	if !reflect.DeepEqual(stripProbe(res), stripProbe(base)) {
		t.Fatal("HIR probed run diverged from unprobed run")
	}
}

// TestProbePrefetchEvents checks the block-prefetch path emits prefetch and
// batched fault-end events.
func TestProbePrefetchEvents(t *testing.T) {
	tr := streamTrace(8)
	cfg := smallConfig(256)
	cfg.Driver.PrefetchPages = 15
	m := probe.NewMetrics()
	res := Run(cfg, tr, policy.NewLRU(), WithProbe(m))
	snap := *res.Probe
	if got := snap.Count("prefetch"); got != res.Driver.Prefetched {
		t.Errorf("prefetch events = %d, driver says %d", got, res.Driver.Prefetched)
	}
	if snap.Count("fault_end") != res.Faults {
		t.Errorf("fault_end = %d, faults = %d", snap.Count("fault_end"), res.Faults)
	}
}

// TestChromeTraceFromSimulation is the acceptance check in miniature: a real
// run streamed through the Chrome-trace probe yields valid JSON with
// non-decreasing timestamps per lane.
func TestChromeTraceFromSimulation(t *testing.T) {
	tr := thrashTrace(8, 3)
	cfg := smallConfig(64)
	var buf bytes.Buffer
	ct := probe.NewChromeTrace(&buf, probe.ChromeTraceConfig{
		CoreMHz: cfg.CoreMHz, SMs: cfg.SMs, Process: "probe_test",
	})
	Run(cfg, tr, policy.NewLRU(), WithProbe(ct))
	if err := ct.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Tid  int     `json:"tid"`
			Ts   float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) <= cfg.SMs+2 {
		t.Fatalf("trace has only %d events", len(doc.TraceEvents))
	}
	lastTs := map[int]float64{}
	names := map[string]int{}
	for i, ev := range doc.TraceEvents {
		if ev.Ph == "M" {
			continue
		}
		if ev.Tid < 0 || ev.Tid > cfg.SMs {
			t.Fatalf("event %d on lane %d, want [0,%d]", i, ev.Tid, cfg.SMs)
		}
		if prev, ok := lastTs[ev.Tid]; ok && ev.Ts < prev {
			t.Fatalf("event %d (%s): ts %.4f precedes %.4f on lane %d", i, ev.Name, ev.Ts, prev, ev.Tid)
		}
		lastTs[ev.Tid] = ev.Ts
		names[ev.Name]++
	}
	for _, want := range []string{"fault", "evict", "tlb_miss"} {
		if names[want] == 0 {
			t.Errorf("trace has no %s events", want)
		}
	}
}

// TestNilProbeFastPath: the default construction leaves the probe nil so
// every emission site stays on its counter-only path.
func TestNilProbeFastPath(t *testing.T) {
	tr := streamTrace(2)
	s := New(smallConfig(64), tr, policy.NewLRU())
	if s.probe != nil {
		t.Fatal("probe set without WithProbe")
	}
	res := s.Run()
	if res.Probe != nil {
		t.Fatal("Result.Probe set without a metrics probe")
	}
	// WithProbe(nil-composed) also keeps the fast path.
	s2 := New(smallConfig(64), tr, policy.NewLRU(), WithProbe(probe.Multi()))
	if s2.probe != nil {
		t.Fatal("nil Multi should leave probe nil")
	}
}

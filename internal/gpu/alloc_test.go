package gpu

import (
	"testing"

	"hpe/internal/addrspace"
	"hpe/internal/policy"
	"hpe/internal/trace"
)

// TestPrepopulatedRunAllocBound pins the hotalloc guarantee over the whole
// gpu+uvm handler path at runtime: with the footprint prepopulated there
// are no demand faults, so the steady-state issue → TLB → walk → complete
// event chain must not allocate per access. Construction (engine, SMs,
// TLBs, pools) is a fixed cost, so the test asserts a small per-access
// bound rather than zero: with 40k accesses, anything that allocates per
// event blows through it immediately, while setup contributes < 0.05.
func TestPrepopulatedRunAllocBound(t *testing.T) {
	const accesses = 40000
	refs := make([]addrspace.PageID, accesses)
	for i := range refs {
		refs[i] = addrspace.PageID(i % 512)
	}
	tr := trace.New("alloc-bound", refs)
	cfg := smallConfig(1024)
	cfg.Prepopulate = true

	total := testing.AllocsPerRun(1, func() {
		res := Run(cfg, tr, policy.NewLRU())
		if res.Faults != 0 {
			t.Fatalf("prepopulated run took %d faults, want 0", res.Faults)
		}
		if res.Accesses != accesses {
			t.Fatalf("completed %d accesses, want %d", res.Accesses, accesses)
		}
	})
	perAccess := total / accesses
	if perAccess > 0.5 {
		t.Errorf("prepopulated run allocated %.0f objects (%.3f per access), want < 0.5 per access",
			total, perAccess)
	}
}

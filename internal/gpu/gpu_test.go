package gpu

import (
	"testing"

	"hpe/internal/addrspace"
	"hpe/internal/hpe"
	"hpe/internal/policy"
	"hpe/internal/trace"
	"hpe/internal/workload"
)

// smallConfig scales the system down so unit tests run in microseconds of
// simulated time.
func smallConfig(memoryPages int) Config {
	cfg := DefaultConfig(memoryPages)
	cfg.SMs = 4
	cfg.WarpsPerSM = 8
	cfg.Driver.FaultLatency = 1000
	return cfg
}

func streamTrace(sets int) *trace.Trace {
	b := workload.NewBuilder(addrspace.DefaultGeometry(), 0, 1)
	workload.Streaming(b, sets, 2)
	return trace.New("stream", b.Refs())
}

func thrashTrace(sets, passes int) *trace.Trace {
	b := workload.NewBuilder(addrspace.DefaultGeometry(), 0, 1)
	workload.Thrashing(b, sets, passes, 2)
	return trace.New("thrash", b.Refs())
}

func TestCompulsoryFaultsOnly(t *testing.T) {
	tr := streamTrace(8) // 128 pages
	res := Run(smallConfig(256), tr, policy.NewLRU())
	if res.Faults != 128 {
		t.Fatalf("faults = %d, want 128 compulsory", res.Faults)
	}
	if res.Evictions != 0 {
		t.Fatalf("evictions = %d with ample memory", res.Evictions)
	}
	if res.Accesses != uint64(tr.Len()) {
		t.Fatalf("accesses = %d, want %d", res.Accesses, tr.Len())
	}
	if res.TimedOut {
		t.Fatal("unexpected timeout")
	}
}

func TestOversubscriptionEvictions(t *testing.T) {
	tr := streamTrace(8) // 128 pages footprint
	res := Run(smallConfig(96), tr, policy.NewLRU())
	if res.Faults != 128 {
		t.Fatalf("faults = %d (streaming never refaults)", res.Faults)
	}
	if res.Evictions != 128-96 {
		t.Fatalf("evictions = %d, want %d", res.Evictions, 128-96)
	}
}

func TestThrashingHurtsLRUMoreThanIdeal(t *testing.T) {
	tr := thrashTrace(10, 4) // 160 pages, 4 passes
	cfg := smallConfig(120)  // 75% of footprint
	lru := Run(cfg, tr, policy.NewLRU())
	ideal := Run(cfg, tr, policy.NewIdealFactory(tr)(cfg.MemoryPages))
	if lru.Faults <= ideal.Faults {
		t.Fatalf("LRU faults %d <= Ideal %d on thrashing", lru.Faults, ideal.Faults)
	}
	if lru.Cycles <= ideal.Cycles {
		t.Fatalf("LRU cycles %d <= Ideal %d", lru.Cycles, ideal.Cycles)
	}
	if ideal.IPC <= lru.IPC {
		t.Fatalf("Ideal IPC %f <= LRU IPC %f", ideal.IPC, lru.IPC)
	}
}

func TestDeterminism(t *testing.T) {
	tr := thrashTrace(8, 3)
	cfg := smallConfig(100)
	a := Run(cfg, tr, policy.NewLRU())
	b := Run(cfg, tr, policy.NewLRU())
	if a.Cycles != b.Cycles || a.Faults != b.Faults || a.Evictions != b.Evictions {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestTLBAccounting(t *testing.T) {
	tr := streamTrace(8)
	res := Run(smallConfig(256), tr, policy.NewLRU())
	if res.L1Hits+res.L1Misses != res.Accesses {
		t.Fatalf("L1 lookups %d != accesses %d", res.L1Hits+res.L1Misses, res.Accesses)
	}
	// Streaming with 2 adjacent duplicates: the duplicate usually hits (L1,
	// L2, or a merged walk); hits must be non-zero.
	if res.L1Hits+res.L2Hits+res.WalkMerges == 0 {
		t.Fatal("no TLB hits or walk merges on duplicated stream")
	}
}

func TestWalkHitsReachHIR(t *testing.T) {
	// Two passes with memory large enough to keep everything resident; the
	// footprint (640 pages) exceeds the L2 TLB reach (512 entries) so the
	// second pass actually reaches the walker, and those walks are hits.
	tr := thrashTrace(40, 2)
	cfg := smallConfig(1024)
	cfg.UseHIR = true
	h := hpe.New(hpe.DefaultConfig())
	res := Run(cfg, tr, h)
	if res.WalkHits == 0 {
		t.Fatal("no walk hits on a two-pass resident workload")
	}
	if res.HIR == nil || res.HIR.HitsRecorded == 0 {
		t.Fatalf("HIR stats = %+v", res.HIR)
	}
	if res.HPE == nil {
		t.Fatal("HPE stats missing")
	}
}

func TestHPEStatsExposedAndBatchesFlow(t *testing.T) {
	tr := thrashTrace(48, 3) // 768 pages: beyond the L2 TLB reach
	cfg := smallConfig(576)  // 75%
	cfg.UseHIR = true
	res := Run(cfg, tr, hpe.New(hpe.DefaultConfig()))
	if res.HPE == nil || !res.HPE.Classified {
		t.Fatalf("HPE did not classify: %+v", res.HPE)
	}
	if res.HPE.Faults != res.Faults {
		t.Fatalf("HPE saw %d faults, driver serviced %d", res.HPE.Faults, res.Faults)
	}
	if res.Driver.HIRTransferBytes == 0 {
		t.Fatal("no HIR transfers charged")
	}
	if res.HPE.HitBatches == 0 {
		t.Fatal("no hit batches delivered")
	}
}

func TestHPEOutperformsLRUOnThrashingEndToEnd(t *testing.T) {
	tr := thrashTrace(40, 4) // 640 pages
	cfg := smallConfig(480)  // 75%
	lru := Run(cfg, tr, policy.NewLRU())
	cfgH := cfg
	cfgH.UseHIR = true
	hres := Run(cfgH, tr, hpe.New(hpe.DefaultConfig()))
	if hres.Faults >= lru.Faults {
		t.Fatalf("HPE faults %d >= LRU %d on Type II", hres.Faults, lru.Faults)
	}
	if hres.IPC <= lru.IPC {
		t.Fatalf("HPE IPC %f <= LRU IPC %f", hres.IPC, lru.IPC)
	}
}

func TestInstructionAccounting(t *testing.T) {
	tr := streamTrace(4)
	cfg := smallConfig(128)
	cfg.ComputeGap = 7
	res := Run(cfg, tr, policy.NewLRU())
	if res.Instructions != res.Accesses*8 {
		t.Fatalf("instructions = %d, want accesses×8", res.Instructions)
	}
	if res.IPC <= 0 {
		t.Fatal("IPC not computed")
	}
}

func TestMaxCyclesAborts(t *testing.T) {
	tr := thrashTrace(20, 4)
	cfg := smallConfig(200)
	cfg.MaxCycles = 500
	res := Run(cfg, tr, policy.NewLRU())
	if !res.TimedOut {
		t.Fatal("run did not report timeout")
	}
	if res.Cycles > 500 {
		t.Fatalf("clock ran past the limit: %d", res.Cycles)
	}
}

func TestBadConfigPanics(t *testing.T) {
	for _, f := range []func(){
		func() { New(Config{SMs: 0, WarpsPerSM: 1, MemoryPages: 1}, streamTrace(1), policy.NewLRU()) },
		func() {
			cfg := smallConfig(0)
			cfg.MemoryPages = 0
			New(cfg, streamTrace(1), policy.NewLRU())
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad config accepted")
				}
			}()
			f()
		}()
	}
}

func TestWalkCoalescing(t *testing.T) {
	// Many simultaneous accesses to one page: one walk, one fault.
	refs := make([]addrspace.PageID, 64)
	tr := trace.New("samepage", refs) // all page 0
	res := Run(smallConfig(4), tr, policy.NewLRU())
	if res.Faults != 1 {
		t.Fatalf("faults = %d, want 1 for a single page", res.Faults)
	}
	if res.Walks+res.WalkMerges+res.L1Hits+res.L2Hits != 64 {
		t.Fatalf("accesses unaccounted: walks=%d merges=%d l1=%d l2=%d",
			res.Walks, res.WalkMerges, res.L1Hits, res.L2Hits)
	}
}

func TestAllCatalogAppsRunUnderAllPolicies(t *testing.T) {
	if testing.Short() {
		t.Skip("full catalog smoke test skipped in -short mode")
	}
	// Smoke: the three smallest apps under every policy at 75%.
	for _, abbr := range []string{"STN", "CUT", "SGM"} {
		app, ok := workload.ByAbbr(abbr)
		if !ok {
			t.Fatalf("app %s missing", abbr)
		}
		tr := app.Generate()
		capacity := tr.Footprint() * 3 / 4
		cfg := DefaultConfig(capacity)
		cfg.ComputeGap = 2
		pols := map[string]policy.Policy{
			"LRU":       policy.NewLRU(),
			"Random":    policy.NewRandom(1),
			"RRIP":      policy.NewRRIP(policy.DefaultRRIPConfig()),
			"CLOCK-Pro": policy.NewClockProFactory(capacity),
			"Ideal":     policy.NewIdealFactory(tr)(capacity),
		}
		for name, pol := range pols {
			res := Run(cfg, tr, pol)
			if res.Faults == 0 || res.TimedOut {
				t.Errorf("%s/%s: faults=%d timedOut=%v", abbr, name, res.Faults, res.TimedOut)
			}
		}
		cfgH := cfg
		cfgH.UseHIR = true
		res := Run(cfgH, tr, hpe.New(hpe.DefaultConfig()))
		if res.Faults == 0 || res.TimedOut {
			t.Errorf("%s/HPE: faults=%d timedOut=%v", abbr, res.Faults, res.TimedOut)
		}
	}
}

func BenchmarkSimulateThrashingLRU(b *testing.B) {
	tr := thrashTrace(40, 4)
	cfg := smallConfig(480)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(cfg, tr, policy.NewLRU())
	}
}

func BenchmarkSimulateThrashingHPE(b *testing.B) {
	tr := thrashTrace(40, 4)
	cfg := smallConfig(480)
	cfg.UseHIR = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(cfg, tr, hpe.New(hpe.DefaultConfig()))
	}
}

func TestPWCDesignEndToEnd(t *testing.T) {
	tr := streamTrace(16)
	cfg := smallConfig(512)
	cfg.Translation = DesignPWC
	res := Run(cfg, tr, policy.NewLRU())
	if res.PTW == nil || res.PTW.Walks == 0 {
		t.Fatalf("PWC design produced no walker stats: %+v", res.PTW)
	}
	if res.L2Hits != 0 {
		t.Fatalf("PWC design consulted the L2 TLB (%d hits)", res.L2Hits)
	}
	if res.Faults != uint64(tr.Footprint()) {
		t.Fatalf("faults = %d, want compulsory %d", res.Faults, tr.Footprint())
	}
	// The default design reports no walker stats.
	base := Run(smallConfig(512), tr, policy.NewLRU())
	if base.PTW != nil {
		t.Fatal("L2TLB design exposed PTW stats")
	}
}

func TestPrepopulateEliminatesFaults(t *testing.T) {
	tr := thrashTrace(8, 3)
	cfg := smallConfig(256)
	cfg.Prepopulate = true
	res := Run(cfg, tr, policy.NewLRU())
	if res.Faults != 0 || res.Evictions != 0 {
		t.Fatalf("prepopulated run faulted: %d faults, %d evictions", res.Faults, res.Evictions)
	}
	if res.Accesses != uint64(tr.Len()) {
		t.Fatalf("accesses = %d", res.Accesses)
	}
	// Prepopulation requires capacity >= footprint.
	tight := smallConfig(100)
	tight.Prepopulate = true
	defer func() {
		if recover() == nil {
			t.Error("undersized prepopulate accepted")
		}
	}()
	Run(tight, tr, policy.NewLRU())
}

func TestPrefetchEndToEnd(t *testing.T) {
	tr := streamTrace(32) // 512 pages, spatially dense
	cfg := smallConfig(512)
	cfg.Driver.PrefetchPages = 15
	res := Run(cfg, tr, policy.NewLRU())
	if res.Faults+res.Driver.Prefetched < uint64(tr.Footprint()) {
		t.Fatalf("faults %d + prefetched %d below footprint %d",
			res.Faults, res.Driver.Prefetched, tr.Footprint())
	}
	base := Run(smallConfig(512), tr, policy.NewLRU())
	// Most fault events must be satisfied by block migration (batched or
	// prefetched), not individual 20 µs services.
	expensive := res.Faults - res.Driver.Batched
	if expensive*4 > base.Faults {
		t.Fatalf("prefetching left %d individually-serviced faults vs %d baseline; want >4x reduction",
			expensive, base.Faults)
	}
	if res.Cycles*2 > base.Cycles {
		t.Fatalf("prefetching did not speed up enough: %d vs %d cycles", res.Cycles, base.Cycles)
	}
}

func TestDataPathEndToEnd(t *testing.T) {
	tr := thrashTrace(8, 3)
	cfg := smallConfig(256)
	cfg.ModelDataPath = true
	res := Run(cfg, tr, policy.NewLRU())
	if res.DataL1Hits+res.DataL1Misses != res.Accesses {
		t.Fatalf("L1D lookups %d != accesses %d", res.DataL1Hits+res.DataL1Misses, res.Accesses)
	}
	// Every L1D miss probes the L2.
	if res.DataL2Hits+res.DataL2Misses != res.DataL1Misses {
		t.Fatalf("L2D lookups %d != L1D misses %d", res.DataL2Hits+res.DataL2Misses, res.DataL1Misses)
	}
	// Every L2 miss goes to DRAM.
	if res.DRAM == nil || res.DRAM.Accesses != res.DataL2Misses {
		t.Fatalf("DRAM accesses %v != L2D misses %d", res.DRAM, res.DataL2Misses)
	}
	// The data path adds latency: same run without it finishes sooner.
	base := Run(smallConfig(256), tr, policy.NewLRU())
	if res.Cycles <= base.Cycles {
		t.Fatalf("data path added no time: %d vs %d", res.Cycles, base.Cycles)
	}
	if base.DRAM != nil || base.DataL1Hits+base.DataL1Misses != 0 {
		t.Fatal("data-path stats leaked into a run without the data path")
	}
	// Fault behaviour is unaffected by data microtiming.
	if res.Faults != base.Faults || res.Evictions != base.Evictions {
		t.Fatalf("data path changed paging: %d/%d vs %d/%d faults/evictions",
			res.Faults, res.Evictions, base.Faults, base.Evictions)
	}
}

func TestDataPathPageInvalidation(t *testing.T) {
	// Under oversubscription the evicted pages' lines must leave the caches:
	// a refault of a page must miss L1D/L2D for its first line touch. We
	// assert the aggregate: with heavy thrashing, the L2D hit count stays
	// low relative to a fully resident run.
	tr := thrashTrace(40, 3) // 640 pages
	over := smallConfig(480)
	over.ModelDataPath = true
	resident := smallConfig(1024)
	resident.ModelDataPath = true
	a := Run(over, tr, policy.NewLRU())
	b := Run(resident, tr, policy.NewLRU())
	if a.DataL2Hits >= b.DataL2Hits {
		t.Fatalf("thrashing run kept more L2D hits (%d) than resident run (%d); invalidation broken?",
			a.DataL2Hits, b.DataL2Hits)
	}
}

// Package addrspace defines the address-space vocabulary shared by every
// component of the simulator: virtual page identifiers, page-set identifiers
// (the HPE management unit), and the arithmetic between byte addresses,
// pages, and page sets.
//
// The paper uses 4-KB OS pages (the default page size in current GPUs) and a
// default page-set size of 16 pages, i.e. a page set spans 64 KB of virtually
// contiguous address space — the same granularity as the "chunk" in NVIDIA
// Pascal-class GPUs.
package addrspace

import "fmt"

// PageShift is log2 of the OS page size in bytes (4 KB pages).
const PageShift = 12

// PageBytes is the OS page size in bytes.
const PageBytes = 1 << PageShift

// DefaultSetShift is log2 of the default page-set size in pages. The paper's
// sensitivity study (Fig. 7) tests 8, 16 and 32 and settles on 16.
const DefaultSetShift = 4

// DefaultSetSize is the default number of pages per page set.
const DefaultSetSize = 1 << DefaultSetShift

// PageID identifies a virtual page (a virtual byte address shifted right by
// PageShift).
type PageID uint64

// SetID identifies a page set: a group of 2^setShift virtually contiguous
// pages. SetIDs are only meaningful together with the Geometry that produced
// them.
type SetID uint64

// NoPage is a sentinel PageID that never identifies a real page.
const NoPage = PageID(^uint64(0))

// VAddr is a virtual byte address.
type VAddr uint64

// PageOf returns the virtual page containing a byte address.
func PageOf(a VAddr) PageID { return PageID(a >> PageShift) }

// BaseAddr returns the first byte address of a page.
func (p PageID) BaseAddr() VAddr { return VAddr(p) << PageShift }

// String renders a PageID in hex, the way the paper writes page addresses.
func (p PageID) String() string { return fmt.Sprintf("page:%#x", uint64(p)) }

// String renders a SetID in hex.
func (s SetID) String() string { return fmt.Sprintf("set:%#x", uint64(s)) }

// Geometry captures the page-set partitioning of the virtual address space.
// The zero Geometry is not valid; construct one with NewGeometry.
type Geometry struct {
	setShift uint
}

// NewGeometry returns a Geometry for page sets of size 2^setShift pages.
// setShift must be in [0, 16]; the paper evaluates shifts 3, 4 and 5
// (sizes 8, 16 and 32).
func NewGeometry(setShift uint) Geometry {
	if setShift > 16 {
		panic(fmt.Sprintf("addrspace: set shift %d out of range [0,16]", setShift))
	}
	return Geometry{setShift: setShift}
}

// DefaultGeometry returns the paper's default geometry (16-page sets).
func DefaultGeometry() Geometry { return NewGeometry(DefaultSetShift) }

// SetShift returns log2 of the set size in pages.
func (g Geometry) SetShift() uint { return g.setShift }

// SetSize returns the number of pages in a page set.
func (g Geometry) SetSize() int { return 1 << g.setShift }

// SetOf returns the page set containing a page.
func (g Geometry) SetOf(p PageID) SetID { return SetID(uint64(p) >> g.setShift) }

// Offset returns the index of a page within its page set, in [0, SetSize).
func (g Geometry) Offset(p PageID) int {
	return int(uint64(p) & (uint64(g.SetSize()) - 1))
}

// FirstPage returns the first (lowest-addressed) page of a set.
func (g Geometry) FirstPage(s SetID) PageID { return PageID(uint64(s) << g.setShift) }

// PageAt returns the page at a given offset within a set.
func (g Geometry) PageAt(s SetID, offset int) PageID {
	if offset < 0 || offset >= g.SetSize() {
		panic(fmt.Sprintf("addrspace: offset %d out of range for set size %d", offset, g.SetSize()))
	}
	return PageID(uint64(s)<<g.setShift | uint64(offset))
}

// PagesPerMB returns how many pages fit in the given number of mebibytes.
func PagesPerMB(mb int) int { return mb << 20 >> PageShift }

// BytesToPages converts a byte count to a page count, rounding up.
func BytesToPages(b uint64) int { return int((b + PageBytes - 1) >> PageShift) }

package addrspace

import (
	"testing"
	"testing/quick"
)

func TestPageOfAndBaseAddrRoundTrip(t *testing.T) {
	cases := []struct {
		addr VAddr
		page PageID
	}{
		{0x0, 0},
		{0xfff, 0},
		{0x1000, 1},
		{0x80000000, 0x80000},
		{0x80000fff, 0x80000},
	}
	for _, c := range cases {
		if got := PageOf(c.addr); got != c.page {
			t.Errorf("PageOf(%#x) = %v, want %v", c.addr, got, c.page)
		}
	}
	if PageID(5).BaseAddr() != 0x5000 {
		t.Errorf("BaseAddr(5) = %#x, want 0x5000", PageID(5).BaseAddr())
	}
}

func TestGeometrySetArithmetic(t *testing.T) {
	g := DefaultGeometry()
	if g.SetSize() != 16 {
		t.Fatalf("default set size = %d, want 16", g.SetSize())
	}
	// Paper's example: page set 8000 with size 16 covers pages 0x80000..0x8000f.
	s := SetID(0x8000)
	if g.FirstPage(s) != PageID(0x80000) {
		t.Errorf("FirstPage(0x8000) = %v, want page 0x80000", g.FirstPage(s))
	}
	for off := 0; off < 16; off++ {
		p := g.PageAt(s, off)
		if want := PageID(0x80000 + uint64(off)); p != want {
			t.Errorf("PageAt(0x8000,%d) = %v, want %v", off, p, want)
		}
		if g.SetOf(p) != s {
			t.Errorf("SetOf(%v) = %v, want %v", p, g.SetOf(p), s)
		}
		if g.Offset(p) != off {
			t.Errorf("Offset(%v) = %d, want %d", p, g.Offset(p), off)
		}
	}
}

func TestGeometrySizes(t *testing.T) {
	for _, shift := range []uint{3, 4, 5} {
		g := NewGeometry(shift)
		if g.SetSize() != 1<<shift {
			t.Errorf("shift %d: size = %d, want %d", shift, g.SetSize(), 1<<shift)
		}
		if g.SetShift() != shift {
			t.Errorf("shift getter = %d, want %d", g.SetShift(), shift)
		}
	}
}

func TestGeometryInvalidShiftPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewGeometry(17) did not panic")
		}
	}()
	NewGeometry(17)
}

func TestPageAtOutOfRangePanics(t *testing.T) {
	g := DefaultGeometry()
	defer func() {
		if recover() == nil {
			t.Error("PageAt with offset 16 did not panic for 16-page sets")
		}
	}()
	g.PageAt(0, 16)
}

func TestPagesPerMB(t *testing.T) {
	if got := PagesPerMB(1); got != 256 {
		t.Errorf("PagesPerMB(1) = %d, want 256", got)
	}
	// Paper: footprints 3 MB..130 MB.
	if got := PagesPerMB(3); got != 768 {
		t.Errorf("PagesPerMB(3) = %d, want 768", got)
	}
	if got := PagesPerMB(130); got != 33280 {
		t.Errorf("PagesPerMB(130) = %d, want 33280", got)
	}
}

func TestBytesToPagesRoundsUp(t *testing.T) {
	cases := []struct {
		bytes uint64
		pages int
	}{
		{0, 0}, {1, 1}, {4095, 1}, {4096, 1}, {4097, 2}, {8192, 2},
	}
	for _, c := range cases {
		if got := BytesToPages(c.bytes); got != c.pages {
			t.Errorf("BytesToPages(%d) = %d, want %d", c.bytes, got, c.pages)
		}
	}
}

// Property: for every geometry and page, SetOf/Offset decompose the page and
// PageAt recomposes it exactly.
func TestGeometryDecomposeRecomposeProperty(t *testing.T) {
	f := func(raw uint64, shiftSeed uint8) bool {
		shift := uint(shiftSeed % 17)
		g := NewGeometry(shift)
		p := PageID(raw >> 16) // keep headroom so SetID<<shift cannot overflow
		s := g.SetOf(p)
		off := g.Offset(p)
		return g.PageAt(s, off) == p && off >= 0 && off < g.SetSize()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: pages in the same set are within SetSize of each other and share
// every address bit above the set shift.
func TestGeometrySetContiguityProperty(t *testing.T) {
	f := func(raw uint32) bool {
		g := DefaultGeometry()
		s := SetID(raw)
		first := g.FirstPage(s)
		for off := 0; off < g.SetSize(); off++ {
			if g.PageAt(s, off) != first+PageID(off) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

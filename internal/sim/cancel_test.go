package sim

import "testing"

// TestCancelStopsEngine installs a poll that trips after a fixed number of
// checks and verifies the engine stops firing, reports Cancelled, and stays
// stopped on further Step calls.
func TestCancelStopsEngine(t *testing.T) {
	e := NewEngine()
	var fired int
	for i := 0; i < 100; i++ {
		e.At(Cycle(i), func() { fired++ })
	}
	polls := 0
	e.SetCancel(10, func() bool {
		polls++
		return polls >= 3
	})
	e.Run()
	if !e.Cancelled() {
		t.Fatal("engine not cancelled")
	}
	// 10-event poll interval, cancel on the 3rd poll: 29 events fire (the
	// poll precedes the 30th firing).
	if fired != 29 {
		t.Fatalf("fired %d events, want 29", fired)
	}
	if e.Step() {
		t.Fatal("Step fired an event after cancellation")
	}
	if e.Pending() == 0 {
		t.Fatal("cancelled engine should retain unfired events")
	}
}

// TestCancelNeverTripsIsFree runs a polled engine whose poll never trips and
// verifies results are unchanged relative to an unpolled engine.
func TestCancelNeverTripsIsFree(t *testing.T) {
	run := func(poll bool) (Cycle, uint64) {
		e := NewEngine()
		for i := 0; i < 1000; i++ {
			e.At(Cycle(i*3), func() {})
		}
		if poll {
			e.SetCancel(7, func() bool { return false })
		}
		return e.Run(), e.Fired()
	}
	c1, f1 := run(false)
	c2, f2 := run(true)
	if c1 != c2 || f1 != f2 {
		t.Fatalf("polled run differs: (%d, %d) vs (%d, %d)", c1, f1, c2, f2)
	}
}

// TestSetCancelClears verifies a nil poll removes the hook.
func TestSetCancelClears(t *testing.T) {
	e := NewEngine()
	e.SetCancel(1, func() bool { return true })
	e.SetCancel(0, nil)
	done := false
	e.At(0, func() { done = true })
	e.Run()
	if !done || e.Cancelled() {
		t.Fatal("cleared cancel hook still active")
	}
}

package sim

import "testing"

// TestStepSteadyStateZeroAlloc pins the hotalloc root sim.Engine.Step with
// a runtime measurement: once the event store has grown past its floor,
// a Schedule+Step pair must not allocate. The static guard (hpelint's
// hotalloc analyzer) proves no allocation site is reachable; this proves
// the same property end-to-end against the compiler's escape analysis.
func TestStepSteadyStateZeroAlloc(t *testing.T) {
	e := NewEngine()
	h := &noopHandler{}
	hid := e.Register(h)
	// Warm the heap past the 1024-slot floor so Step never grows it.
	for j := 0; j < 2048; j++ {
		e.Schedule(Cycle(j), hid, 0, 0)
	}
	e.Run()

	avg := testing.AllocsPerRun(1000, func() {
		e.Schedule(e.Now()+1, hid, 1, 2)
		if !e.Step() {
			t.Fatal("Step found no event")
		}
	})
	if avg != 0 {
		t.Errorf("Schedule+Step allocated %.2f objects per event in steady state, want 0", avg)
	}
}

package sim

import "testing"

// The engine microbenchmarks mirror the schedule shape `hpebench
// -bench-json` uses (see cmd/hpebench), so BENCH_<n>.json numbers and `go
// test -bench` numbers are directly comparable: 1000 events across 97
// distinct cycles, scheduled up front and drained.

// noopHandler is the zero-payload handler for dispatch-cost benchmarks.
type noopHandler struct{ n int }

func (h *noopHandler) OnEvent(a0, a1 uint64) { h.n++ }

// BenchmarkEngineScheduleAndRun is the historical closure-path benchmark:
// 1000 At closures, drained. The SoA store removes the per-event *Event
// allocation; the closures themselves remain.
func BenchmarkEngineScheduleAndRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 1000; j++ {
			e.At(Cycle(j%97), func() {})
		}
		e.Run()
	}
}

// BenchmarkEngineHandlerScheduleAndRun is the hot-path variant the simulator
// actually uses: Handler events with integer payloads, zero allocations per
// event.
func BenchmarkEngineHandlerScheduleAndRun(b *testing.B) {
	h := &noopHandler{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		hid := e.Register(h)
		for j := 0; j < 1000; j++ {
			e.Schedule(Cycle(j%97), hid, uint64(j), 0)
		}
		e.Run()
	}
}

// BenchmarkReferenceScheduleAndRun runs the identical schedule on the
// pre-rewrite container/heap engine — the bench-trajectory baseline.
func BenchmarkReferenceScheduleAndRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := NewReference()
		for j := 0; j < 1000; j++ {
			e.At(Cycle(j%97), func() {})
		}
		e.Run()
	}
}

// BenchmarkEngineCascade measures the self-rescheduling pattern (each event
// schedules the next, queue depth stays small) that dominates warp-slot
// recycling in the GPU model.
func BenchmarkEngineCascade(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		h := &cascadeHandler{e: e, remaining: 1000}
		h.id = e.Register(h)
		e.Schedule(0, h.id, 0, 0)
		e.Run()
	}
}

type cascadeHandler struct {
	e         *Engine
	id        HandlerID
	remaining int
}

func (h *cascadeHandler) OnEvent(a0, a1 uint64) {
	h.remaining--
	if h.remaining > 0 {
		h.e.ScheduleAfter(3, h.id, 0, 0)
	}
}

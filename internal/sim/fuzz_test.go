package sim

import (
	"testing"
)

// scheduler is the surface FuzzEngineEquivalence drives on both
// implementations. Engine and Reference both satisfy it; the Handler path
// (Engine.Schedule) is exercised through the closure-equivalent op below.
type scheduler interface {
	At(Cycle, func())
	After(Cycle, func())
	Step() bool
	Run() Cycle
	RunUntil(Cycle)
	SetLimit(Cycle)
	SetCancel(uint64, func() bool)
	Cancelled() bool
	Now() Cycle
	Fired() uint64
	Pending() int
}

// fuzzOp is one decoded instruction of the equivalence program.
type fuzzOp struct {
	kind  byte
	param byte
}

// decodeProgram turns the fuzz input into a bounded op list.
func decodeProgram(data []byte) []fuzzOp {
	const maxOps = 256
	var ops []fuzzOp
	for i := 0; i+1 < len(data) && len(ops) < maxOps; i += 2 {
		ops = append(ops, fuzzOp{kind: data[i] % 8, param: data[i+1]})
	}
	return ops
}

// fuzzLogHandler appends its first payload word to the run log — the Handler
// path's analogue of the logging closures.
type fuzzLogHandler struct {
	log *[]uint64
	eng *Engine
}

func (h *fuzzLogHandler) OnEvent(a0, _ uint64) {
	*h.log = append(*h.log, a0<<16|uint64(h.eng.Now())&0xffff)
}

// runProgram executes the decoded program on one engine. schedule is how a
// plain logging event is enqueued (closure for Reference, Handler for
// Engine), so the same program exercises both dispatch paths. It returns the
// fire log (event id ++ low clock bits) and the number of cancellation
// polls.
func runProgram(s scheduler, ops []fuzzOp, schedule func(at Cycle, id uint64, log *[]uint64)) ([]uint64, int) {
	var log []uint64
	nextID := uint64(1)
	budget := 512
	polls := 0
	emit := func(at Cycle) {
		if budget <= 0 {
			return
		}
		budget--
		id := nextID
		nextID++
		schedule(at, id, &log)
	}
	for _, op := range ops {
		d := Cycle(op.param % 64)
		switch op.kind {
		case 0, 1:
			emit(s.Now() + d)
		case 2: // cascade: the fired closure schedules a follow-up
			if budget <= 0 {
				break
			}
			budget--
			id := nextID
			nextID++
			delay := Cycle(op.param%16 + 1)
			s.At(s.Now()+d, func() {
				log = append(log, id<<16|uint64(s.Now())&0xffff)
				emit(s.Now() + delay)
			})
		case 3:
			if op.param == 0 {
				s.SetLimit(0)
			} else {
				s.SetLimit(s.Now() + Cycle(op.param)*8)
			}
		case 4:
			s.RunUntil(s.Now() + Cycle(op.param)*4)
		case 5:
			for i := 0; i < int(op.param%8)+1; i++ {
				if !s.Step() {
					break
				}
			}
		case 6: // cancel at a random event boundary
			every := uint64(op.param%8 + 1)
			trip := int(op.param % 16)
			s.SetCancel(every, func() bool {
				polls++
				return polls > trip
			})
		case 7:
			s.SetCancel(0, nil)
		}
	}
	s.SetLimit(0)
	s.Run()
	return log, polls
}

// FuzzEngineEquivalence drives the struct-of-arrays Engine and the
// container/heap Reference with the same randomized schedule — At/After,
// Handler events, cascades, SetLimit, RunUntil, partial Steps, and
// cancellation at random event boundaries — and requires identical fire
// order, clocks, fired counts, pending counts, poll counts and cancellation
// status. This is the differential proof that the hot-path rewrite preserved
// the determinism contract. The seed corpus runs on every plain `go test`
// (and through `make fuzz-seed`).
func FuzzEngineEquivalence(f *testing.F) {
	f.Add([]byte{0, 10, 0, 5, 0, 5, 1, 20})                       // plain schedules, FIFO ties
	f.Add([]byte{2, 9, 2, 33, 0, 1, 5, 3})                        // cascades + partial steps
	f.Add([]byte{0, 50, 3, 2, 0, 40, 5, 7, 3, 0})                 // limit parks, then released
	f.Add([]byte{0, 8, 6, 19, 0, 9, 0, 11, 0, 13})                // cancellation mid-run
	f.Add([]byte{4, 16, 0, 3, 4, 1, 2, 63, 7, 0, 5, 1})           // RunUntil interleaving
	f.Add([]byte{6, 2, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 3, 1}) // tight cancel + limit
	f.Add([]byte{2, 255, 2, 254, 2, 253, 4, 255, 6, 128, 0, 0})   // deep cascades
	f.Fuzz(func(t *testing.T, data []byte) {
		ops := decodeProgram(data)

		eng := NewEngine()
		h := &fuzzLogHandler{eng: eng}
		hid := eng.Register(h)
		engLog, engPolls := runProgram(eng, ops, func(at Cycle, id uint64, log *[]uint64) {
			h.log = log // same backing log for every call within a run
			eng.Schedule(at, hid, id, 0)
		})

		ref := NewReference()
		refLog, refPolls := runProgram(ref, ops, func(at Cycle, id uint64, log *[]uint64) {
			ref.At(at, func() {
				*log = append(*log, id<<16|uint64(ref.Now())&0xffff)
			})
		})

		if len(engLog) != len(refLog) {
			t.Fatalf("fire counts diverge: engine %d, reference %d", len(engLog), len(refLog))
		}
		for i := range engLog {
			if engLog[i] != refLog[i] {
				t.Fatalf("fire order diverges at event %d: engine (id=%d, t=%d), reference (id=%d, t=%d)",
					i, engLog[i]>>16, engLog[i]&0xffff, refLog[i]>>16, refLog[i]&0xffff)
			}
		}
		if eng.Now() != ref.Now() {
			t.Fatalf("Now diverges: engine %d, reference %d", eng.Now(), ref.Now())
		}
		if eng.Fired() != ref.Fired() {
			t.Fatalf("Fired diverges: engine %d, reference %d", eng.Fired(), ref.Fired())
		}
		if eng.Pending() != ref.Pending() {
			t.Fatalf("Pending diverges: engine %d, reference %d", eng.Pending(), ref.Pending())
		}
		if eng.Cancelled() != ref.Cancelled() {
			t.Fatalf("Cancelled diverges: engine %v, reference %v", eng.Cancelled(), ref.Cancelled())
		}
		if engPolls != refPolls {
			t.Fatalf("poll counts diverge: engine %d, reference %d", engPolls, refPolls)
		}
	})
}

// Package sim provides a small deterministic discrete-event simulation
// engine: a virtual clock measured in GPU core cycles and an event queue
// ordered by (time, sequence). All higher-level components (SMs, the fault
// handler, HIR transfers) schedule work through an Engine.
//
// Determinism: events scheduled for the same cycle fire in scheduling order
// (stable FIFO tie-break), so a simulation with the same inputs always
// produces the same result regardless of map iteration order or host timing.
package sim

import (
	"container/heap"
	"fmt"
)

// Cycle is a point in simulated time, in GPU core clock cycles.
type Cycle uint64

// CyclesPerMicrosecond converts wall-clock microseconds into cycles at the
// given core frequency in MHz (e.g. 1400 MHz for the paper's GTX-480-like
// configuration: 20 µs becomes 28,000 cycles).
func CyclesPerMicrosecond(us float64, coreMHz float64) Cycle {
	return Cycle(us * coreMHz)
}

// Event is a unit of scheduled work.
type Event struct {
	at   Cycle
	seq  uint64
	fire func()
}

// eventHeap implements container/heap ordered by (at, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*Event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulator. The zero value is not usable;
// construct with NewEngine.
type Engine struct {
	now     Cycle
	nextSeq uint64
	queue   eventHeap
	fired   uint64
	limit   Cycle // 0 means no limit

	// Cancellation: poll is consulted once every pollEvery fired events (a
	// single decrement + compare on the hot path), so an external signal —
	// a context, a client disconnect — can stop a run without the engine
	// importing context or the callers paying a per-event check.
	poll      func() bool
	pollEvery uint64
	pollLeft  uint64
	cancelled bool
}

// NewEngine returns an empty engine at cycle 0.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated cycle.
func (e *Engine) Now() Cycle { return e.now }

// Fired returns the total number of events processed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events still queued.
func (e *Engine) Pending() int { return len(e.queue) }

// SetLimit installs a hard ceiling on simulated time; Run stops (without
// firing) events scheduled after the limit. A limit of 0 removes the ceiling.
func (e *Engine) SetLimit(limit Cycle) { e.limit = limit }

// SetCancel installs a cancellation poll, consulted once every `every` fired
// events. When poll returns true the engine stops firing events permanently
// and Cancelled reports true. A nil poll (or every == 0) removes the hook.
// The poll must be cheap and must not mutate simulation state; determinism
// is unaffected for runs that are never cancelled, and a cancelled run stops
// at an event boundary, so partial results remain internally consistent.
func (e *Engine) SetCancel(every uint64, poll func() bool) {
	if poll == nil || every == 0 {
		e.poll, e.pollEvery, e.pollLeft = nil, 0, 0
		return
	}
	e.poll = poll
	e.pollEvery = every
	e.pollLeft = every
}

// Cancelled reports whether a cancellation poll stopped the engine.
func (e *Engine) Cancelled() bool { return e.cancelled }

// At schedules fn to run at the given absolute cycle. Scheduling in the past
// (before Now) is an error and panics: it would silently reorder causality.
func (e *Engine) At(at Cycle, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at cycle %d before now (%d)", at, e.now))
	}
	ev := &Event{at: at, seq: e.nextSeq, fire: fn}
	e.nextSeq++
	heap.Push(&e.queue, ev)
}

// After schedules fn to run delay cycles from now.
func (e *Engine) After(delay Cycle, fn func()) {
	e.At(e.now+delay, fn)
}

// Step fires the next event, advancing the clock to its timestamp. It
// returns false when no events remain or the next event lies past the limit.
func (e *Engine) Step() bool {
	if e.cancelled || len(e.queue) == 0 {
		return false
	}
	if e.poll != nil {
		e.pollLeft--
		if e.pollLeft == 0 {
			e.pollLeft = e.pollEvery
			if e.poll() {
				e.cancelled = true
				return false
			}
		}
	}
	next := e.queue[0]
	if e.limit != 0 && next.at > e.limit {
		return false
	}
	heap.Pop(&e.queue)
	e.now = next.at
	e.fired++
	next.fire()
	return true
}

// Run fires events until the queue drains or the limit is reached, returning
// the final simulated cycle.
func (e *Engine) Run() Cycle {
	for e.Step() {
	}
	return e.now
}

// RunUntil fires events with timestamps <= until, advancing the clock to
// exactly until when the queue drains earlier.
func (e *Engine) RunUntil(until Cycle) {
	for len(e.queue) > 0 && e.queue[0].at <= until {
		if !e.Step() {
			break
		}
	}
	if e.now < until {
		e.now = until
	}
}

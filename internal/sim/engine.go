// Package sim provides a small deterministic discrete-event simulation
// engine: a virtual clock measured in GPU core cycles and an event queue
// ordered by (time, sequence). All higher-level components (SMs, the fault
// handler, HIR transfers) schedule work through an Engine.
//
// Determinism: events scheduled for the same cycle fire in scheduling order
// (stable FIFO tie-break), so a simulation with the same inputs always
// produces the same result regardless of map iteration order or host timing.
//
// # Hot-path layout (DESIGN.md §11)
//
// The queue is a value-typed struct-of-arrays store. Events live in a 4-ary
// heap of all-scalar heapNode values — timestamp, FIFO sequence, and the two
// payload words inline — so heap sifts never chase pointers, never trigger
// write barriers, and the whole queue is invisible to the garbage collector.
// Hot callers register a Handler once (Register) and then schedule by
// HandlerID with two integer payload words (Schedule/ScheduleAfter): zero
// allocations per event. The closure API (At/After) remains for cold paths;
// closures park in a side store of index-based slots reused through a free
// list. The clock always skips directly to the next scheduled event's
// timestamp — there is no per-cycle ticking anywhere in the engine. The
// previous container/heap implementation survives as Reference, the
// differential-testing oracle (FuzzEngineEquivalence) and the
// bench-trajectory baseline (`make bench-json`).
package sim

import "fmt"

// Cycle is a point in simulated time, in GPU core clock cycles.
type Cycle uint64

// CyclesPerMicrosecond converts wall-clock microseconds into cycles at the
// given core frequency in MHz (e.g. 1400 MHz for the paper's GTX-480-like
// configuration: 20 µs becomes 28,000 cycles).
func CyclesPerMicrosecond(us float64, coreMHz float64) Cycle {
	return Cycle(us * coreMHz)
}

// Handler receives typed events. Registering a handler once and scheduling
// by its HandlerID keeps the hot path allocation-free: the two uint64
// payload words carry whatever the component needs (an SM index, a trace
// sequence number, a page number).
type Handler interface {
	OnEvent(a0, a1 uint64)
}

// HandlerID names a registered Handler on its engine.
type HandlerID int32

// heapNode is one 4-ary-heap element: the ordering key (at, seq) with the
// payload inline. kind >= 0 indexes the registered-handler table; kind < 0
// encodes a closure slot as -(slot+1). All fields are scalars, so the heap
// needs no write barriers and is never scanned by the GC.
type heapNode struct {
	at     Cycle
	seq    uint64
	a0, a1 uint64
	kind   int32
}

// Engine is a discrete-event simulator. The zero value is not usable;
// construct with NewEngine.
type Engine struct {
	now      Cycle
	nextSeq  uint64
	heap     []heapNode // 4-ary min-heap ordered by (at, seq)
	handlers []Handler  // Register'd, indexed by HandlerID
	fns      []func()   // closure payloads (At/After), indexed by slot
	fnFree   []int32    // recycled closure slots
	fired    uint64
	limit    Cycle // 0 means no limit

	// Cancellation: poll is consulted once every pollEvery fired events (a
	// single decrement + compare on the hot path), so an external signal —
	// a context, a client disconnect — can stop a run without the engine
	// importing context or the callers paying a per-event check. The poll
	// runs after the queue and limit checks: a drained or limit-parked
	// engine never consumes poll ticks on no-op Steps.
	poll      func() bool
	pollEvery uint64
	pollLeft  uint64
	cancelled bool
}

// NewEngine returns an empty engine at cycle 0.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated cycle.
func (e *Engine) Now() Cycle { return e.now }

// Fired returns the total number of events processed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events still queued.
func (e *Engine) Pending() int { return len(e.heap) }

// SetLimit installs a hard ceiling on simulated time; Run stops (without
// firing) events scheduled after the limit. A limit of 0 removes the ceiling.
func (e *Engine) SetLimit(limit Cycle) { e.limit = limit }

// SetCancel installs a cancellation poll, consulted once every `every` fired
// events. When poll returns true the engine stops firing events permanently
// and Cancelled reports true. A nil poll (or every == 0) removes the hook.
// The poll must be cheap and must not mutate simulation state; determinism
// is unaffected for runs that are never cancelled, and a cancelled run stops
// at an event boundary, so partial results remain internally consistent.
func (e *Engine) SetCancel(every uint64, poll func() bool) {
	if poll == nil || every == 0 {
		e.poll, e.pollEvery, e.pollLeft = nil, 0, 0
		return
	}
	e.poll = poll
	e.pollEvery = every
	e.pollLeft = every
}

// Cancelled reports whether a cancellation poll stopped the engine.
func (e *Engine) Cancelled() bool { return e.cancelled }

// Register interns a handler and returns its id for Schedule. Handlers are
// expected to be a few long-lived values registered at construction time;
// registering is not a hot-path operation.
func (e *Engine) Register(h Handler) HandlerID {
	if h == nil {
		panic("sim: Register(nil) handler")
	}
	e.handlers = append(e.handlers, h)
	return HandlerID(len(e.handlers) - 1)
}

// push appends an ordering node and restores the heap.
func (e *Engine) push(at Cycle, a0, a1 uint64, kind int32) {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at cycle %d before now (%d)", at, e.now))
	}
	if len(e.heap) == cap(e.heap) {
		// Grow straight to a useful size: a simulation's queue depth is at
		// least one event per warp slot, so the doubling ramp from an empty
		// slice (1, 2, 4, ...) would just be ten copies on the way to 1024.
		const minHeapCap = 1024
		newCap := 2 * cap(e.heap)
		if newCap < minHeapCap {
			newCap = minHeapCap
		}
		//lint:ignore hpelint/hotalloc amortized heap growth: capacity doubles from a 1024 floor, so copies are O(log n) overall
		grown := make([]heapNode, len(e.heap), newCap)
		copy(grown, e.heap)
		e.heap = grown
	}
	e.heap = append(e.heap, heapNode{at: at, seq: e.nextSeq, a0: a0, a1: a1, kind: kind})
	e.nextSeq++
	e.siftUp(len(e.heap) - 1)
}

func nodeLess(a, b *heapNode) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// siftUp restores heap order from child i toward the root (4-ary: the parent
// of i is (i-1)/4).
func (e *Engine) siftUp(i int) {
	h := e.heap
	n := h[i]
	for i > 0 {
		p := (i - 1) >> 2
		if !nodeLess(&n, &h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = n
}

// siftDown restores heap order from the root after a pop: children of i are
// 4i+1..4i+4. Four-way fan-out halves the tree depth of a binary heap,
// cutting the cache lines touched per pop. The sift is bottom-up (Wegener):
// the hole walks to the bottom along min-child links without comparing
// against the replacement node, then the replacement bubbles up — the
// replacement came from the heap's last position, so it almost always
// belongs near the bottom, and skipping the per-level replacement compare
// saves a quarter of the comparisons on the dominant down path.
func (e *Engine) siftDown() {
	h := e.heap
	n := h[0]
	i := 0
	size := len(h)
	for {
		c := i<<2 + 1
		if c >= size {
			break
		}
		end := c + 4
		if end > size {
			end = size
		}
		best := c
		for k := c + 1; k < end; k++ {
			if nodeLess(&h[k], &h[best]) {
				best = k
			}
		}
		h[i] = h[best]
		i = best
	}
	for i > 0 {
		p := (i - 1) >> 2
		if !nodeLess(&n, &h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = n
}

// At schedules fn to run at the given absolute cycle. Scheduling in the past
// (before Now) is an error and panics: it would silently reorder causality.
func (e *Engine) At(at Cycle, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at cycle %d before now (%d)", at, e.now))
	}
	var slot int32
	if n := len(e.fnFree); n > 0 {
		slot = e.fnFree[n-1]
		e.fnFree = e.fnFree[:n-1]
	} else {
		e.fns = append(e.fns, nil)
		slot = int32(len(e.fns) - 1)
	}
	e.fns[slot] = fn
	e.push(at, 0, 0, -(slot + 1))
}

// After schedules fn to run delay cycles from now.
func (e *Engine) After(delay Cycle, fn func()) {
	e.At(e.now+delay, fn)
}

// Schedule enqueues an event for a registered handler at the given absolute
// cycle with two payload words. It is the allocation-free analogue of At.
func (e *Engine) Schedule(at Cycle, h HandlerID, a0, a1 uint64) {
	e.push(at, a0, a1, int32(h))
}

// ScheduleAfter enqueues a handler event delay cycles from now.
func (e *Engine) ScheduleAfter(delay Cycle, h HandlerID, a0, a1 uint64) {
	e.push(e.now+delay, a0, a1, int32(h))
}

// Step fires the next event, advancing the clock directly to its timestamp
// (skip-ahead; no intermediate cycles are visited). It returns false when no
// events remain or the next event lies past the limit. The cancellation poll
// is consulted only when a firing is actually about to happen, so no-op
// Steps at the limit or on a drained queue never consume poll ticks.
func (e *Engine) Step() bool {
	if e.cancelled || len(e.heap) == 0 {
		return false
	}
	next := e.heap[0]
	if e.limit != 0 && next.at > e.limit {
		return false
	}
	if e.poll != nil {
		e.pollLeft--
		if e.pollLeft == 0 {
			e.pollLeft = e.pollEvery
			if e.poll() {
				e.cancelled = true
				return false
			}
		}
	}
	last := len(e.heap) - 1
	e.heap[0] = e.heap[last]
	e.heap = e.heap[:last]
	if last > 1 {
		e.siftDown()
	}
	e.now = next.at
	e.fired++
	if next.kind >= 0 {
		e.handlers[next.kind].OnEvent(next.a0, next.a1)
	} else {
		slot := -next.kind - 1
		fn := e.fns[slot]
		e.fns[slot] = nil // drop the closure ref before slot reuse
		e.fnFree = append(e.fnFree, slot)
		fn()
	}
	return true
}

// Run fires events until the queue drains or the limit is reached, returning
// the final simulated cycle.
func (e *Engine) Run() Cycle {
	for e.Step() {
	}
	return e.now
}

// RunUntil fires events with timestamps <= until, advancing the clock to
// exactly until when the queue drains earlier.
func (e *Engine) RunUntil(until Cycle) {
	for len(e.heap) > 0 && e.heap[0].at <= until {
		if !e.Step() {
			break
		}
	}
	if e.now < until {
		e.now = until
	}
}

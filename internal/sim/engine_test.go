package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineFiresInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []Cycle
	for _, at := range []Cycle{50, 10, 30, 20, 40} {
		at := at
		e.At(at, func() { got = append(got, at) })
	}
	end := e.Run()
	if end != 50 {
		t.Fatalf("final cycle = %d, want 50", end)
	}
	want := []Cycle{10, 20, 30, 40, 50}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fire order %v, want %v", got, want)
		}
	}
}

func TestEngineSameCycleFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(100, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-cycle events fired out of order: %v", got)
		}
	}
}

func TestEngineAfterSchedulesRelative(t *testing.T) {
	e := NewEngine()
	var at Cycle
	e.At(7, func() {
		e.After(5, func() { at = e.Now() })
	})
	e.Run()
	if at != 12 {
		t.Fatalf("After(5) at cycle 7 fired at %d, want 12", at)
	}
}

func TestEngineSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestEngineCascadedEvents(t *testing.T) {
	e := NewEngine()
	count := 0
	var schedule func()
	schedule = func() {
		count++
		if count < 100 {
			e.After(3, schedule)
		}
	}
	e.At(0, schedule)
	end := e.Run()
	if count != 100 {
		t.Fatalf("fired %d cascaded events, want 100", count)
	}
	if end != 99*3 {
		t.Fatalf("final cycle = %d, want %d", end, 99*3)
	}
	if e.Fired() != 100 {
		t.Fatalf("Fired() = %d, want 100", e.Fired())
	}
}

func TestEngineLimitStopsRun(t *testing.T) {
	e := NewEngine()
	fired := 0
	for i := Cycle(0); i < 10; i++ {
		e.At(i*10, func() { fired++ })
	}
	e.SetLimit(45)
	e.Run()
	if fired != 5 {
		t.Fatalf("fired %d events under limit 45, want 5 (cycles 0..40)", fired)
	}
	if e.Pending() != 5 {
		t.Fatalf("pending = %d, want 5", e.Pending())
	}
	e.SetLimit(0)
	e.Run()
	if fired != 10 {
		t.Fatalf("fired %d after removing limit, want 10", fired)
	}
}

func TestEngineRunUntilAdvancesClock(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {})
	e.RunUntil(100)
	if e.Now() != 100 {
		t.Fatalf("RunUntil(100) left clock at %d", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("event at 10 not fired")
	}
}

func TestEngineRunUntilLeavesLaterEvents(t *testing.T) {
	e := NewEngine()
	fired := false
	e.At(200, func() { fired = true })
	e.RunUntil(100)
	if fired {
		t.Fatal("event at 200 fired during RunUntil(100)")
	}
	if e.Now() != 100 {
		t.Fatalf("clock = %d, want 100", e.Now())
	}
}

func TestCyclesPerMicrosecond(t *testing.T) {
	// 20 µs at 1.4 GHz (1400 MHz) = 28,000 cycles — the paper's fault penalty.
	if got := CyclesPerMicrosecond(20, 1400); got != 28000 {
		t.Fatalf("20us @ 1400MHz = %d cycles, want 28000", got)
	}
	if got := CyclesPerMicrosecond(0, 1400); got != 0 {
		t.Fatalf("0us = %d cycles, want 0", got)
	}
}

// Property: for any set of event timestamps, the engine fires them in
// non-decreasing time order and ends at the max timestamp.
func TestEngineOrderingProperty(t *testing.T) {
	f := func(times []uint16) bool {
		e := NewEngine()
		var fired []Cycle
		for _, ti := range times {
			at := Cycle(ti)
			e.At(at, func() { fired = append(fired, at) })
		}
		e.Run()
		if len(fired) != len(times) {
			return false
		}
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaving scheduled and cascaded events never loses events.
func TestEngineConservationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		e := NewEngine()
		scheduled, fired := 0, 0
		var cascade func(depth int)
		cascade = func(depth int) {
			fired++
			if depth > 0 {
				scheduled++
				e.After(Cycle(rng.Intn(5)), func() { cascade(depth - 1) })
			}
		}
		n := 1 + rng.Intn(50)
		for i := 0; i < n; i++ {
			scheduled++
			d := rng.Intn(4)
			e.At(Cycle(rng.Intn(1000)), func() { cascade(d) })
		}
		e.Run()
		if fired != scheduled {
			t.Fatalf("trial %d: fired %d of %d scheduled events", trial, fired, scheduled)
		}
	}
}

package sim

import (
	"sync"
	"testing"
)

// TestStepAtLimitConsumesNoPollTicks pins the poll-ordering fix: a run
// parked at its limit (or drained) must not burn cancellation-poll ticks on
// no-op Steps. Before the fix, each no-op Step decremented pollLeft before
// the limit check, so an engine sitting at its limit would eventually invoke
// the poll — and could even cancel — without firing anything.
func TestStepAtLimitConsumesNoPollTicks(t *testing.T) {
	e := NewEngine()
	fired := 0
	for i := 0; i < 10; i++ {
		e.At(Cycle(i*10), func() { fired++ })
	}
	polls := 0
	e.SetCancel(4, func() bool {
		polls++
		return false
	})
	e.SetLimit(45) // events at 0..40 fire; 50..90 park

	e.Run()
	if fired != 5 {
		t.Fatalf("fired %d events under limit 45, want 5", fired)
	}
	// 5 firings at a poll interval of 4: exactly one poll.
	if polls != 1 {
		t.Fatalf("polls after limited Run = %d, want 1", polls)
	}

	// No-op Steps at the limit must not consume poll ticks.
	for i := 0; i < 100; i++ {
		if e.Step() {
			t.Fatal("Step fired an event past the limit")
		}
	}
	if polls != 1 {
		t.Fatalf("no-op Steps at the limit consumed poll ticks: polls = %d, want 1", polls)
	}

	// Releasing the limit resumes exactly where the schedule left off, with
	// the poll cadence intact: 5 more firings → two more polls (ticks 6..10,
	// polls at the 8th and 12th... i.e. fired counts 8 and 12 overall).
	e.SetLimit(0)
	e.Run()
	if fired != 10 {
		t.Fatalf("fired %d after removing limit, want 10", fired)
	}
	if polls != 2 {
		t.Fatalf("polls after full Run = %d, want 2", polls)
	}
}

// TestStepOnDrainedQueueConsumesNoPollTicks is the queue-empty sibling of
// the limit case.
func TestStepOnDrainedQueueConsumesNoPollTicks(t *testing.T) {
	e := NewEngine()
	e.At(0, func() {})
	polls := 0
	e.SetCancel(1, func() bool { polls++; return false })
	e.Run()
	if polls != 1 {
		t.Fatalf("polls after Run = %d, want 1", polls)
	}
	for i := 0; i < 50; i++ {
		e.Step()
	}
	if polls != 1 {
		t.Fatalf("drained-queue Steps consumed poll ticks: polls = %d, want 1", polls)
	}
}

// TestRaceParallelEngines runs independent engines (closure and Handler
// paths) on concurrent goroutines. Engines are documented single-threaded
// per run but must share no hidden global state — a regression here (for
// example a package-level slot pool) would corrupt parallel suite sweeps.
// The name matches the `make race-probe` pattern so it runs under -race.
func TestRaceParallelEngines(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			e := NewEngine()
			count := 0
			hid := e.Register(handlerFunc(func(a0, a1 uint64) { count++ }))
			for i := 0; i < 2000; i++ {
				if i%2 == 0 {
					e.Schedule(Cycle((i*7+seed)%997), hid, uint64(i), 0)
				} else {
					e.At(Cycle((i*7+seed)%997), func() { count++ })
				}
			}
			e.Run()
			if count != 2000 {
				t.Errorf("engine %d fired %d events, want 2000", seed, count)
			}
		}(g)
	}
	wg.Wait()
}

// handlerFunc adapts a func to Handler for tests.
type handlerFunc func(a0, a1 uint64)

func (f handlerFunc) OnEvent(a0, a1 uint64) { f(a0, a1) }

package sim

import (
	"container/heap"
	"fmt"
)

// Reference is the pre-rewrite engine: a container/heap of per-event
// allocated *refEvent pointers. It is kept for two jobs only and is not used
// by the simulator:
//
//   - FuzzEngineEquivalence drives Engine and Reference with identical
//     randomized schedules and asserts identical fire order, Now, Fired,
//     Pending and cancellation behaviour — the differential proof that the
//     struct-of-arrays rewrite preserved the determinism contract.
//   - `hpebench -bench-json` benchmarks both implementations on the same
//     schedule shape, so every BENCH_<n>.json carries the old engine's
//     ns/op next to the new one's.
//
// The cancellation poll follows the fixed semantics (poll after the queue
// and limit checks): the Reference is the oracle for the current contract,
// not a museum copy of the old poll-ordering bug.
type Reference struct {
	now     Cycle
	nextSeq uint64
	queue   refHeap
	fired   uint64
	limit   Cycle

	poll      func() bool
	pollEvery uint64
	pollLeft  uint64
	cancelled bool
}

// refEvent is a unit of scheduled work in the reference implementation.
type refEvent struct {
	at   Cycle
	seq  uint64
	fire func()
}

// refHeap implements container/heap ordered by (at, seq).
type refHeap []*refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)   { *h = append(*h, x.(*refEvent)) }
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// NewReference returns an empty reference engine at cycle 0.
func NewReference() *Reference {
	return &Reference{}
}

// Now returns the current simulated cycle.
func (e *Reference) Now() Cycle { return e.now }

// Fired returns the total number of events processed so far.
func (e *Reference) Fired() uint64 { return e.fired }

// Pending returns the number of events still queued.
func (e *Reference) Pending() int { return len(e.queue) }

// SetLimit installs a hard ceiling on simulated time.
func (e *Reference) SetLimit(limit Cycle) { e.limit = limit }

// SetCancel installs a cancellation poll (see Engine.SetCancel).
func (e *Reference) SetCancel(every uint64, poll func() bool) {
	if poll == nil || every == 0 {
		e.poll, e.pollEvery, e.pollLeft = nil, 0, 0
		return
	}
	e.poll = poll
	e.pollEvery = every
	e.pollLeft = every
}

// Cancelled reports whether a cancellation poll stopped the engine.
func (e *Reference) Cancelled() bool { return e.cancelled }

// At schedules fn to run at the given absolute cycle.
func (e *Reference) At(at Cycle, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at cycle %d before now (%d)", at, e.now))
	}
	ev := &refEvent{at: at, seq: e.nextSeq, fire: fn}
	e.nextSeq++
	heap.Push(&e.queue, ev)
}

// After schedules fn to run delay cycles from now.
func (e *Reference) After(delay Cycle, fn func()) {
	e.At(e.now+delay, fn)
}

// Step fires the next event, advancing the clock to its timestamp.
func (e *Reference) Step() bool {
	if e.cancelled || len(e.queue) == 0 {
		return false
	}
	next := e.queue[0]
	if e.limit != 0 && next.at > e.limit {
		return false
	}
	if e.poll != nil {
		e.pollLeft--
		if e.pollLeft == 0 {
			e.pollLeft = e.pollEvery
			if e.poll() {
				e.cancelled = true
				return false
			}
		}
	}
	heap.Pop(&e.queue)
	e.now = next.at
	e.fired++
	next.fire()
	return true
}

// Run fires events until the queue drains or the limit is reached.
func (e *Reference) Run() Cycle {
	for e.Step() {
	}
	return e.now
}

// RunUntil fires events with timestamps <= until, advancing the clock to
// exactly until when the queue drains earlier.
func (e *Reference) RunUntil(until Cycle) {
	for len(e.queue) > 0 && e.queue[0].at <= until {
		if !e.Step() {
			break
		}
	}
	if e.now < until {
		e.now = until
	}
}

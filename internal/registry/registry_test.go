package registry

import (
	"strings"
	"testing"

	"hpe/internal/addrspace"
	"hpe/internal/policy"
	"hpe/internal/trace"
)

func tinyTrace() *trace.Trace {
	refs := make([]addrspace.PageID, 0, 64)
	for i := 0; i < 8; i++ {
		for p := addrspace.PageID(0); p < 8; p++ {
			refs = append(refs, p)
		}
	}
	return trace.New("tiny", refs)
}

// allOpts is the uniform option set the experiment suite passes: every
// registered policy must build with it.
func allOpts(t *testing.T) []Option {
	t.Helper()
	tr := tinyTrace()
	return []Option{
		WithSeed(7),
		WithCapacity(16),
		WithTrace(tr),
		WithThrashingRRIP(),
	}
}

// TestEveryNameRoundTrips builds every registered policy and checks its
// Name() matches the registry's display string — the contract reports and
// golden outputs depend on.
func TestEveryNameRoundTrips(t *testing.T) {
	names := Names()
	if len(names) == 0 {
		t.Fatal("empty registry")
	}
	for _, name := range names {
		pol, err := New(name, allOpts(t)...)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if got := pol.Name(); got != DisplayName(name) {
			t.Errorf("New(%q).Name() = %q, want display %q", name, got, DisplayName(name))
		}
		// A second build must be a fresh instance.
		pol2, err := New(name, allOpts(t)...)
		if err != nil {
			t.Fatalf("New(%q) second build: %v", name, err)
		}
		if pol == pol2 {
			t.Errorf("New(%q) returned a shared instance", name)
		}
	}
}

func TestDisplayNames(t *testing.T) {
	want := map[string]string{
		"lru": "LRU", "random": "Random", "rrip": "RRIP", "clockpro": "CLOCK-Pro",
		"ideal": "Ideal", "hpe": "HPE", "fifo": "FIFO", "lfu": "LFU",
		"clock": "CLOCK", "nru": "NRU", "arc": "ARC", "setlru": "SetLRU",
	}
	for name, display := range want {
		if got := DisplayName(name); got != display {
			t.Errorf("DisplayName(%q) = %q, want %q", name, got, display)
		}
	}
	if len(want) != len(Names()) {
		t.Errorf("registry has %d policies, test expects %d", len(Names()), len(want))
	}
	if got := DisplayName("not-a-policy"); got != "not-a-policy" {
		t.Errorf("DisplayName of unknown = %q", got)
	}
}

func TestUnknownNameErrors(t *testing.T) {
	_, err := New("not-a-policy")
	if err == nil {
		t.Fatal("unknown policy accepted")
	}
	if !strings.Contains(err.Error(), "not-a-policy") || !strings.Contains(err.Error(), "lru") {
		t.Errorf("error should name the input and known policies: %v", err)
	}
}

func TestRequiredOptions(t *testing.T) {
	for _, name := range []string{"clockpro", "arc"} {
		if _, err := New(name); err == nil {
			t.Errorf("%s without WithCapacity accepted", name)
		}
	}
	if _, err := New("ideal"); err == nil {
		t.Error("ideal without trace accepted")
	}
	if _, err := New("ideal", WithTrace(tinyTrace())); err != nil {
		t.Errorf("ideal with trace: %v", err)
	}
	built := false
	fi := func() *trace.FutureIndex { built = true; return trace.BuildFutureIndex(tinyTrace()) }
	if _, err := New("ideal", WithFutureIndex(fi)); err != nil {
		t.Errorf("ideal with future index: %v", err)
	}
	if !built {
		t.Error("ideal did not consume the future index")
	}
	// The lazy index must NOT be built for policies that don't need it.
	built = false
	if _, err := New("lru", WithFutureIndex(fi)); err != nil || built {
		t.Errorf("lru consumed the future index (built=%v, err=%v)", built, err)
	}
}

func TestAliasesAndCase(t *testing.T) {
	for alias, canonical := range map[string]string{
		"clock-pro": "clockpro", "belady": "ideal", "min": "ideal",
		"set-lru": "setlru", "LRU": "lru", " hpe ": "hpe", "CLOCK-Pro": "clockpro",
	} {
		info, ok := Lookup(alias)
		if !ok || info.Name != canonical {
			t.Errorf("Lookup(%q) = %+v, want canonical %q", alias, info, canonical)
		}
	}
}

func TestRandomSeedDeterminism(t *testing.T) {
	run := func(seed int64) uint64 {
		pol, err := New("random", WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		return policy.Replay(tinyTrace(), pol, 4).Evictions
	}
	if run(1) != run(1) {
		t.Error("same seed, different replay")
	}
}

func TestThrashingRRIPIgnoredByOthers(t *testing.T) {
	// WithThrashingRRIP changes RRIP's configuration but must not break or
	// alter any other policy's construction.
	for _, name := range Names() {
		with, err1 := New(name, allOpts(t)...)
		without, err2 := New(name, WithSeed(7), WithCapacity(16), WithTrace(tinyTrace()))
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: %v / %v", name, err1, err2)
		}
		if with.Name() != without.Name() {
			t.Errorf("%s: name changed by WithThrashingRRIP", name)
		}
	}
	// An explicit RRIP config wins over the thrashing preset.
	cfg := policy.DefaultRRIPConfig()
	pol, err := New("rrip", WithThrashingRRIP(), WithRRIPConfig(cfg))
	if err != nil || pol.Name() != "RRIP" {
		t.Fatalf("explicit RRIP config: %v", err)
	}
}

func TestInfosMatchNames(t *testing.T) {
	infos := Infos()
	names := Names()
	if len(infos) != len(names) {
		t.Fatalf("Infos %d vs Names %d", len(infos), len(names))
	}
	for i, info := range infos {
		if info.Name != names[i] {
			t.Errorf("Infos[%d].Name = %q, want %q", i, info.Name, names[i])
		}
		if info.Display == "" || info.Description == "" {
			t.Errorf("%s: empty display or description", info.Name)
		}
	}
	if !NeedsHIR("hpe") || NeedsHIR("lru") {
		t.Error("NeedsHIR wrong for hpe/lru")
	}
	all := AllNames()
	if len(all) <= len(names) {
		t.Error("AllNames should include aliases")
	}
}

// Package registry is the single name-keyed catalog of eviction policies.
// Every way of naming a policy — the facade's hpe.NewPolicy, a
// runspec.Spec's Policy field, and the CLI tools' -policy flags — resolves
// here, so adding a policy means adding one Register call, not editing
// switch statements across the tree.
//
// Policies are constructed from a name plus functional options. Options are
// uniform: a builder consumes the ones it understands and ignores the rest
// (WithThrashingRRIP, for example, only matters to RRIP), which lets callers
// pass one option set for every policy of a run matrix. Options that a
// builder *requires* (CLOCK-Pro and ARC need WithCapacity; Ideal needs
// WithTrace or WithFutureIndex) produce an error when missing.
package registry

import (
	"fmt"
	"sort"
	"strings"

	"hpe/internal/addrspace"
	"hpe/internal/hpe"
	"hpe/internal/policy"
	"hpe/internal/trace"
)

// Options is the merged option set a builder sees. Builders read the fields
// they understand and ignore the rest.
type Options struct {
	// Seed feeds randomised policies (Random). Default 1.
	Seed int64
	// Capacity is the device-memory capacity in pages, required by the
	// capacity-aware policies (CLOCK-Pro, ARC).
	Capacity int
	// Trace supplies the reference string for offline policies (Ideal).
	Trace *trace.Trace
	// Future lazily supplies a prebuilt Belady future index; when set it
	// takes precedence over Trace. The callback runs only if the policy
	// being built actually needs the index, so callers can pass it
	// unconditionally without paying for the build.
	Future func() *trace.FutureIndex
	// RRIP overrides the RRIP configuration entirely.
	RRIP *policy.RRIPConfig
	// ThrashingRRIP selects the paper's Type-II RRIP setup (distant
	// insertion, delay threshold 128) when no explicit RRIP config is given.
	ThrashingRRIP bool
	// HPE overrides the HPE configuration.
	HPE *hpe.Config
}

// Option customises policy construction.
type Option func(*Options)

// WithSeed seeds randomised policies.
func WithSeed(seed int64) Option { return func(o *Options) { o.Seed = seed } }

// WithCapacity supplies the device-memory capacity in pages.
func WithCapacity(pages int) Option { return func(o *Options) { o.Capacity = pages } }

// WithTrace supplies the reference string offline policies replay.
func WithTrace(tr *trace.Trace) Option { return func(o *Options) { o.Trace = tr } }

// WithFutureIndex lazily supplies a Belady future index; fn is only invoked
// if the policy needs it.
func WithFutureIndex(fn func() *trace.FutureIndex) Option {
	return func(o *Options) { o.Future = fn }
}

// WithRRIPConfig pins the RRIP configuration.
func WithRRIPConfig(cfg policy.RRIPConfig) Option {
	return func(o *Options) { c := cfg; o.RRIP = &c }
}

// WithThrashingRRIP selects the Type-II RRIP setup; ignored by every other
// policy, so it can be applied uniformly across a run matrix.
func WithThrashingRRIP() Option { return func(o *Options) { o.ThrashingRRIP = true } }

// WithHPEConfig pins the HPE configuration.
func WithHPEConfig(cfg hpe.Config) Option {
	return func(o *Options) { c := cfg; o.HPE = &c }
}

// Info describes a registered policy.
type Info struct {
	// Name is the canonical registry key ("clockpro").
	Name string
	// Display is the paper's rendering ("CLOCK-Pro"), used in reports.
	Display string
	// Description is a one-line summary for listings.
	Description string
	// Aliases are additional accepted names ("clock-pro").
	Aliases []string
	// NeedsCapacity, NeedsTrace: the policy errors without that option.
	NeedsCapacity bool
	NeedsTrace    bool
	// NeedsHIR: the policy is driven by the HIR cache, so simulations must
	// attach one (gpu.Config.UseHIR).
	NeedsHIR bool
}

type entry struct {
	info  Info
	build func(Options) (policy.Policy, error)
}

// entries is in paper presentation order (Fig. 12 comparison set first, then
// the extra reference points); byName adds canonical names and aliases,
// lowercased.
var entries []entry
var byName = map[string]*entry{}

func register(info Info, build func(Options) (policy.Policy, error)) {
	entries = append(entries, entry{info: info, build: build})
	e := &entries[len(entries)-1]
	for _, n := range append([]string{info.Name}, info.Aliases...) {
		key := strings.ToLower(n)
		if _, dup := byName[key]; dup {
			panic("registry: duplicate policy name " + key)
		}
		byName[key] = e
	}
}

func lookup(name string) (*entry, error) {
	e, ok := byName[strings.ToLower(strings.TrimSpace(name))]
	if !ok {
		return nil, fmt.Errorf("registry: unknown policy %q (known: %s)",
			name, strings.Join(Names(), ", "))
	}
	return e, nil
}

// New builds a fresh policy instance by name (case-insensitive; aliases
// accepted). It errors on an unknown name or a missing required option.
func New(name string, opts ...Option) (policy.Policy, error) {
	e, err := lookup(name)
	if err != nil {
		return nil, err
	}
	o := Options{Seed: 1}
	for _, opt := range opts {
		opt(&o)
	}
	if e.info.NeedsCapacity && o.Capacity <= 0 {
		return nil, fmt.Errorf("registry: policy %q requires WithCapacity", e.info.Name)
	}
	if e.info.NeedsTrace && o.Trace == nil && o.Future == nil {
		return nil, fmt.Errorf("registry: policy %q requires WithTrace or WithFutureIndex", e.info.Name)
	}
	return e.build(o)
}

// Names lists the canonical policy names in registration (paper) order.
func Names() []string {
	out := make([]string, len(entries))
	for i, e := range entries {
		out[i] = e.info.Name
	}
	return out
}

// Lookup returns the Info for a name (canonical or alias).
func Lookup(name string) (Info, bool) {
	e, err := lookup(name)
	if err != nil {
		return Info{}, false
	}
	return e.info, true
}

// DisplayName returns the paper's rendering of the named policy ("clockpro"
// → "CLOCK-Pro"); unknown names render as themselves.
func DisplayName(name string) string {
	if info, ok := Lookup(name); ok {
		return info.Display
	}
	return name
}

// NeedsHIR reports whether the named policy requires the HIR cache.
func NeedsHIR(name string) bool {
	info, ok := Lookup(name)
	return ok && info.NeedsHIR
}

// Infos returns every registered policy's Info in registration order.
func Infos() []Info {
	out := make([]Info, len(entries))
	for i, e := range entries {
		out[i] = e.info
	}
	return out
}

// AllNames returns canonical names plus aliases, sorted — the full accepted
// vocabulary (for shell completion and tests).
func AllNames() []string {
	out := make([]string, 0, len(byName))
	for n := range byName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func init() {
	register(Info{
		Name: "lru", Display: "LRU",
		Description: "page-level least-recently-used under the ideal feed",
	}, func(o Options) (policy.Policy, error) { return policy.NewLRU(), nil })

	register(Info{
		Name: "random", Display: "Random",
		Description: "uniformly random resident page (deterministic seed)",
	}, func(o Options) (policy.Policy, error) { return policy.NewRandom(o.Seed), nil })

	register(Info{
		Name: "rrip", Display: "RRIP",
		Description: "the paper's enhanced RRIP-FP (delay field; Type-II preset via WithThrashingRRIP)",
	}, func(o Options) (policy.Policy, error) {
		cfg := policy.DefaultRRIPConfig()
		if o.ThrashingRRIP {
			cfg = policy.ThrashingRRIPConfig()
		}
		if o.RRIP != nil {
			cfg = *o.RRIP
		}
		return policy.NewRRIP(cfg), nil
	})

	register(Info{
		Name: "clockpro", Display: "CLOCK-Pro", Aliases: []string{"clock-pro"},
		Description:   "CLOCK-Pro with the paper's fixed cold target m_c = 128",
		NeedsCapacity: true,
	}, func(o Options) (policy.Policy, error) {
		return policy.NewClockPro(o.Capacity, policy.DefaultColdTarget), nil
	})

	register(Info{
		Name: "ideal", Display: "Ideal", Aliases: []string{"belady", "min"},
		Description: "offline Belady-MIN upper bound (needs the trace)",
		NeedsTrace:  true,
	}, func(o Options) (policy.Policy, error) {
		if o.Future != nil {
			return policy.NewIdeal(o.Future()), nil
		}
		return policy.NewIdeal(trace.BuildFutureIndex(o.Trace)), nil
	})

	register(Info{
		Name: "hpe", Display: "HPE",
		Description: "the paper's hierarchical page eviction policy (HIR + dynamic adjustment)",
		NeedsHIR:    true,
	}, func(o Options) (policy.Policy, error) {
		cfg := hpe.DefaultConfig()
		if o.HPE != nil {
			cfg = *o.HPE
		}
		return hpe.New(cfg), nil
	})

	register(Info{
		Name: "fifo", Display: "FIFO",
		Description: "first-in first-out reference baseline",
	}, func(o Options) (policy.Policy, error) { return policy.NewFIFO(), nil })

	register(Info{
		Name: "lfu", Display: "LFU",
		Description: "least-frequently-used reference baseline",
	}, func(o Options) (policy.Policy, error) { return policy.NewLFU(), nil })

	register(Info{
		Name: "clock", Display: "CLOCK",
		Description: "classic CLOCK second-chance (related work)",
	}, func(o Options) (policy.Policy, error) { return policy.NewClock(), nil })

	register(Info{
		Name: "nru", Display: "NRU",
		Description: "not-recently-used (related work)",
	}, func(o Options) (policy.Policy, error) { return policy.NewNRU(), nil })

	register(Info{
		Name: "arc", Display: "ARC",
		Description:   "Adaptive Replacement Cache (related work)",
		NeedsCapacity: true,
	}, func(o Options) (policy.Policy, error) { return policy.NewARC(o.Capacity), nil })

	register(Info{
		Name: "setlru", Display: "SetLRU", Aliases: []string{"set-lru"},
		Description: "set-granularity LRU ablation (HPE's granularity, no classification)",
	}, func(o Options) (policy.Policy, error) {
		return policy.NewSetLRU(addrspace.DefaultGeometry()), nil
	})
}

package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("Mean = %f", got)
	}
}

func TestGeoMean(t *testing.T) {
	if GeoMean(nil) != 0 {
		t.Fatal("GeoMean(nil) != 0")
	}
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Fatalf("GeoMean(1,4) = %f", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("GeoMean of 0 did not panic")
		}
	}()
	GeoMean([]float64{0})
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatalf("Min/Max = %f/%f", Min(xs), Max(xs))
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Fatal("empty extrema not 0")
	}
}

func TestSpeedup(t *testing.T) {
	if Speedup(200, 100) != 2 {
		t.Fatal("Speedup(200,100) != 2")
	}
	if Speedup(1, 0) != 0 {
		t.Fatal("Speedup with zero divisor should be 0")
	}
}

func TestGeoMeanBetweenMinAndMaxProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r) + 1 // positive
		}
		g := GeoMean(xs)
		return g >= Min(xs)-1e-9 && g <= Max(xs)+1e-9 && g <= Mean(xs)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("app", "speedup")
	tb.AddRowf("HSD", 2.81)
	tb.AddRow("HOT", "1.0")
	out := tb.Render()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("rendered %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "app") || !strings.Contains(lines[2], "2.810") {
		t.Fatalf("table content wrong:\n%s", out)
	}
	// All data rows align: same prefix width for second column.
	if strings.Index(lines[2], "2.810") != strings.Index(lines[3], "1.0") {
		t.Fatalf("columns misaligned:\n%s", out)
	}
	if tb.Len() != 2 {
		t.Fatalf("Len = %d", tb.Len())
	}
}

func TestBar(t *testing.T) {
	if got := Bar(5, 10, 10); got != "#####" {
		t.Fatalf("Bar = %q", got)
	}
	if Bar(20, 10, 10) != "##########" {
		t.Fatal("Bar did not clamp")
	}
	if Bar(-1, 10, 10) != "" || Bar(1, 0, 10) != "" {
		t.Fatal("degenerate bars not empty")
	}
}

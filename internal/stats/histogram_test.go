package stats

import (
	"strings"
	"testing"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s.Count != 0 || s.Min != 0 || s.Max != 0 || s.Mean != 0 || s.P50 != 0 || s.P99 != 0 {
		t.Fatalf("empty snapshot = %+v", s)
	}
}

func TestHistogramSingleSample(t *testing.T) {
	var h Histogram
	h.Observe(42)
	s := h.Snapshot()
	if s.Count != 1 || s.Min != 42 || s.Max != 42 || s.Mean != 42 {
		t.Fatalf("single-sample snapshot = %+v", s)
	}
	// With one sample every quantile is that sample (clamped to min/max).
	if s.P50 != 42 || s.P90 != 42 || s.P99 != 42 {
		t.Fatalf("quantiles = %d/%d/%d, want 42", s.P50, s.P90, s.P99)
	}
}

func TestHistogramMinMaxMean(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{10, 0, 1000, 20} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 4 || s.Min != 0 || s.Max != 1000 {
		t.Fatalf("snapshot = %+v", s)
	}
	if want := (10.0 + 0 + 1000 + 20) / 4; s.Mean != want {
		t.Fatalf("mean = %v, want %v", s.Mean, want)
	}
}

func TestHistogramQuantilesBucketResolution(t *testing.T) {
	// 199 samples of 8 and one of 1<<20: P50/P90/P99 land in the 8-bucket
	// (upper bound 15) since 199/200 samples are 8; max stays exact.
	var h Histogram
	for i := 0; i < 199; i++ {
		h.Observe(8)
	}
	h.Observe(1 << 20)
	s := h.Snapshot()
	if s.P50 < 8 || s.P50 > 15 {
		t.Fatalf("P50 = %d, want within [8,15]", s.P50)
	}
	if s.P99 < 8 || s.P99 > 15 {
		t.Fatalf("P99 = %d, want within [8,15] (199/200 samples are 8)", s.P99)
	}
	if s.Max != 1<<20 {
		t.Fatalf("max = %d", s.Max)
	}
	// Quantiles never exceed the observed maximum.
	var h2 Histogram
	h2.Observe(5)
	h2.Observe(6)
	s2 := h2.Snapshot()
	if s2.P99 > s2.Max {
		t.Fatalf("P99 %d exceeds max %d", s2.P99, s2.Max)
	}
}

func TestHistogramZeroSamples(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(0)
	s := h.Snapshot()
	if s.Min != 0 || s.Max != 0 || s.P50 != 0 {
		t.Fatalf("all-zero snapshot = %+v", s)
	}
}

func TestHistogramString(t *testing.T) {
	var h Histogram
	h.Observe(1)
	h.Observe(3)
	out := h.Snapshot().String()
	for _, frag := range []string{"n=2", "min=1", "max=3", "p50=", "mean=2.0"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("String() = %q, missing %q", out, frag)
		}
	}
}

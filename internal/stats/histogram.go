package stats

import (
	"fmt"
	"math/bits"
)

// Histogram is a power-of-two-bucketed histogram of non-negative integer
// samples (cycle latencies, inter-arrival gaps, batch sizes). Bucket b holds
// samples whose bit length is b, i.e. the ranges 0, 1, [2,3], [4,7], …:
// coarse enough to cost two array writes per observation, fine enough for
// order-of-magnitude latency analysis. The zero value is an empty histogram
// ready for use; Histogram is not safe for concurrent use.
type Histogram struct {
	buckets [65]uint64 // index = bits.Len64(sample)
	count   uint64
	sum     uint64
	min     uint64
	max     uint64
}

// Observe adds one sample.
func (h *Histogram) Observe(v uint64) {
	h.buckets[bits.Len64(v)]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
}

// Count returns the number of observed samples.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() uint64 { return h.sum }

// Buckets invokes fn for each nonzero bucket in ascending order with the
// bucket's inclusive upper bound and its count. Bucket b covers samples of
// bit length b, so the upper bounds run 0, 1, 3, 7, 15, …. Exporters (e.g.
// the Prometheus text encoder) accumulate the counts into cumulative form.
func (h *Histogram) Buckets(fn func(upper, count uint64)) {
	for b, n := range h.buckets {
		if n == 0 {
			continue
		}
		upper := uint64(0)
		if b > 0 {
			upper = 1<<uint(b) - 1
		}
		fn(upper, n)
	}
}

// HistogramSnapshot is an immutable summary of a Histogram. Quantiles are
// bucket-resolution upper bounds (exact to within a factor of two), clamped
// to the observed maximum, which keeps them deterministic and cheap.
type HistogramSnapshot struct {
	Count    uint64
	Min, Max uint64
	Mean     float64
	P50      uint64
	P90      uint64
	P99      uint64
}

// Snapshot summarises the histogram.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count, Min: h.min, Max: h.max}
	if h.count == 0 {
		return s
	}
	s.Mean = float64(h.sum) / float64(h.count)
	s.P50 = h.quantile(0.50)
	s.P90 = h.quantile(0.90)
	s.P99 = h.quantile(0.99)
	return s
}

// quantile returns the upper bound of the bucket containing the q-quantile
// sample, clamped to the observed extremes.
func (h *Histogram) quantile(q float64) uint64 {
	rank := uint64(q * float64(h.count))
	if rank >= h.count {
		rank = h.count - 1
	}
	var seen uint64
	for b, n := range h.buckets {
		seen += n
		if n > 0 && seen > rank {
			upper := uint64(0)
			if b > 0 {
				upper = 1<<uint(b) - 1
			}
			if upper > h.max {
				upper = h.max
			}
			if upper < h.min {
				upper = h.min
			}
			return upper
		}
	}
	return h.max
}

// String renders the snapshot as a compact single-line summary.
func (s HistogramSnapshot) String() string {
	if s.Count == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d min=%d p50=%d p90=%d p99=%d max=%d mean=%.1f",
		s.Count, s.Min, s.P50, s.P90, s.P99, s.Max, s.Mean)
}

// Package stats provides the small numeric and text-rendering helpers the
// experiment harness uses: means, geometric means, speedup arithmetic, and
// fixed-width table/bar rendering for figure-shaped terminal output.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of xs (0 for empty input; panics on
// non-positive values, which would make the result meaningless).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: GeoMean of non-positive value %v", x))
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Min and Max return the extrema of xs; both return 0 for empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs (0 for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Speedup returns new/old guarded against division by zero.
func Speedup(baseline, improved float64) float64 {
	if improved == 0 {
		return 0
	}
	return baseline / improved
}

// Table renders fixed-width text tables. Rows are added cell-wise; Render
// pads every column to its widest cell.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable returns a table with the given header.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells beyond the header width are kept as-is.
func (t *Table) AddRow(cells ...string) { t.rows = append(t.rows, cells) }

// AddRowf appends a row of formatted cells: each argument is rendered with
// %v unless it is a float64, which gets %.3f.
func (t *Table) AddRowf(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.AddRow(row...)
}

// Len returns the number of data rows.
func (t *Table) Len() int { return len(t.rows) }

// Render returns the table as aligned text with a separator under the header.
func (t *Table) Render() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i >= len(widths) {
				widths = append(widths, len(c))
			} else if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Bar renders value as a text bar scaled so that maxValue maps to width
// characters — a terminal stand-in for the paper's bar charts.
func Bar(value, maxValue float64, width int) string {
	if maxValue <= 0 || value <= 0 || width <= 0 {
		return ""
	}
	n := int(math.Round(value / maxValue * float64(width)))
	if n > width {
		n = width
	}
	return strings.Repeat("#", n)
}

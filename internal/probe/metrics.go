package probe

import (
	"fmt"
	"strings"

	"hpe/internal/sim"
	"hpe/internal/stats"
)

// Metrics aggregates the event stream into per-kind counters, inter-arrival
// histograms (gap between consecutive events of the same kind, in cycles)
// and — for kinds that carry a duration — latency histograms. It allocates
// nothing per event and its Flush is a no-op, so one Metrics instance can be
// reused across runs to aggregate (histograms keep accumulating).
type Metrics struct {
	events uint64
	counts [numKinds]uint64
	seen   [numKinds]bool
	last   [numKinds]sim.Cycle
	inter  [numKinds]stats.Histogram
	lat    [numKinds]stats.Histogram
}

// NewMetrics returns an empty metrics probe.
func NewMetrics() *Metrics { return &Metrics{} }

// Emit implements Probe.
func (m *Metrics) Emit(ev Event) {
	k := ev.Kind
	if int(k) >= int(numKinds) {
		return
	}
	m.events++
	m.counts[k]++
	if m.seen[k] {
		m.inter[k].Observe(uint64(ev.At - m.last[k]))
	}
	m.seen[k] = true
	m.last[k] = ev.At
	switch k {
	case KindFaultEnd:
		m.lat[k].Observe(ev.A) // enqueue-to-completion latency
	case KindHIRDrain:
		m.lat[k].Observe(ev.C) // PCIe transfer cycles
	}
}

// Flush implements Probe (no buffered state).
func (m *Metrics) Flush() error { return nil }

// KindSnapshot summarises one event kind.
type KindSnapshot struct {
	// Kind is the event-kind name ("fault_end", "eviction", ...).
	Kind string
	// Count is the number of events observed.
	Count uint64
	// InterArrival summarises the cycle gap between consecutive events of
	// this kind (empty until the second event).
	InterArrival stats.HistogramSnapshot
	// Latency summarises per-event durations for kinds that carry one
	// (fault_end: enqueue-to-completion; hir_drain: PCIe transfer cycles).
	// Zero-valued for other kinds.
	Latency stats.HistogramSnapshot
}

// Snapshot is an immutable summary of a Metrics probe, surfaced by the
// simulator as gpu.Result.Probe.
type Snapshot struct {
	// Events is the total event count across all kinds.
	Events uint64
	// Kinds holds the kinds observed at least once, in Kind order.
	Kinds []KindSnapshot
}

// Snapshot summarises the metrics accumulated so far.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{Events: m.events}
	for k := Kind(0); k < numKinds; k++ {
		if m.counts[k] == 0 {
			continue
		}
		s.Kinds = append(s.Kinds, KindSnapshot{
			Kind:         k.String(),
			Count:        m.counts[k],
			InterArrival: m.inter[k].Snapshot(),
			Latency:      m.lat[k].Snapshot(),
		})
	}
	return s
}

// ByKind returns the snapshot of the named kind, if observed.
func (s Snapshot) ByKind(name string) (KindSnapshot, bool) {
	for _, k := range s.Kinds {
		if k.Kind == name {
			return k, true
		}
	}
	return KindSnapshot{}, false
}

// Count returns the event count of the named kind (0 if never observed).
func (s Snapshot) Count(name string) uint64 {
	k, _ := s.ByKind(name)
	return k.Count
}

// String renders a compact multi-line summary: one line per observed kind.
func (s Snapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d events", s.Events)
	for _, k := range s.Kinds {
		fmt.Fprintf(&b, "\n  %-14s n=%-8d", k.Kind, k.Count)
		if k.InterArrival.Count > 0 {
			fmt.Fprintf(&b, " interarrival[p50=%d p99=%d]", k.InterArrival.P50, k.InterArrival.P99)
		}
		if k.Latency.Count > 0 {
			fmt.Fprintf(&b, " latency[p50=%d p99=%d max=%d]", k.Latency.P50, k.Latency.P99, k.Latency.Max)
		}
	}
	return b.String()
}

package probe

import (
	"bufio"
	"fmt"
	"io"

	"hpe/internal/sim"
)

// ChromeTraceConfig parameterises a ChromeTrace probe.
type ChromeTraceConfig struct {
	// CoreMHz converts simulated cycles to trace microseconds (the Chrome
	// trace_event time unit). Default: 1400, the Table I core clock.
	CoreMHz float64
	// SMs is the number of SM lanes to name; the driver lane is tid SMs.
	// Default: 15 (Table I).
	SMs int
	// Process names the trace's single process (shown in the viewer).
	// Default: "hpe".
	Process string
	// CloseOnFlush also closes the underlying writer on Flush when it
	// implements io.Closer (the right setting when streaming to a file).
	CloseOnFlush bool
}

// ChromeTrace streams the event stream as Chrome trace_event JSON (the
// JSON Object Format: {"traceEvents": [...]}), loadable in chrome://tracing
// and Perfetto. Each SM gets a lane (tid 0..SMs-1) carrying its TLB misses,
// walk hits and walker merges; the UVM driver gets one more lane (tid SMs)
// carrying faults (async begin/end pairs keyed by page, so queued faults
// overlap visibly), evictions, coalesces, HIR drains and prefetches.
//
// Events are written in emission order, which is simulated-time order, so
// timestamps are non-decreasing within every lane. Flush terminates the
// JSON document and is idempotent.
type ChromeTrace struct {
	bw     *bufio.Writer
	under  io.Writer
	cfg    ChromeTraceConfig
	events int
	closed bool
	err    error
}

// NewChromeTrace returns a probe streaming to w. The JSON header and lane
// metadata are written immediately.
func NewChromeTrace(w io.Writer, cfg ChromeTraceConfig) *ChromeTrace {
	if cfg.CoreMHz <= 0 {
		cfg.CoreMHz = 1400
	}
	if cfg.SMs <= 0 {
		cfg.SMs = 15
	}
	if cfg.Process == "" {
		cfg.Process = "hpe"
	}
	c := &ChromeTrace{bw: bufio.NewWriterSize(w, 1<<16), under: w, cfg: cfg}
	c.printf(`{"displayTimeUnit":"ms","traceEvents":[`)
	c.meta(`{"name":"process_name","ph":"M","pid":0,"args":{"name":%q}}`, cfg.Process)
	for i := 0; i < cfg.SMs; i++ {
		c.meta(`{"name":"thread_name","ph":"M","pid":0,"tid":%d,"args":{"name":"SM %d"}}`, i, i)
	}
	c.meta(`{"name":"thread_name","ph":"M","pid":0,"tid":%d,"args":{"name":"UVM driver"}}`, cfg.SMs)
	return c
}

// Err returns the first write error, if any (also returned by Flush).
func (c *ChromeTrace) Err() error { return c.err }

// printf appends raw text, capturing the first error.
func (c *ChromeTrace) printf(format string, args ...any) {
	if c.err != nil {
		return
	}
	if _, err := fmt.Fprintf(c.bw, format, args...); err != nil {
		c.err = err
	}
}

// meta writes one event object, prefixing the separator.
func (c *ChromeTrace) meta(format string, args ...any) {
	if c.events > 0 {
		c.printf(",\n")
	} else {
		c.printf("\n")
	}
	c.events++
	c.printf(format, args...)
}

// lane maps an event's SM field to a tid.
func (c *ChromeTrace) lane(sm int32) int {
	if sm < 0 {
		return c.cfg.SMs
	}
	return int(sm)
}

// us converts cycles to trace microseconds.
func (c *ChromeTrace) us(cy sim.Cycle) float64 { return float64(cy) / c.cfg.CoreMHz }

// Emit implements Probe.
func (c *ChromeTrace) Emit(ev Event) {
	if c.closed || c.err != nil {
		return
	}
	ts := c.us(ev.At)
	tid := c.lane(ev.SM)
	switch ev.Kind {
	case KindFaultBegin:
		c.meta(`{"name":"fault","cat":"uvm","ph":"b","id":%d,"pid":0,"tid":%d,"ts":%.4f,"args":{"page":%d,"seq":%d,"queue":%d}}`,
			uint64(ev.Page), tid, ts, uint64(ev.Page), ev.Seq, ev.A)
	case KindFaultEnd:
		c.meta(`{"name":"fault","cat":"uvm","ph":"e","id":%d,"pid":0,"tid":%d,"ts":%.4f,"args":{"latency_cycles":%d,"batched":%d}}`,
			uint64(ev.Page), tid, ts, ev.A, ev.B)
	case KindEviction:
		c.meta(`{"name":"evict","cat":"uvm","ph":"i","s":"t","pid":0,"tid":%d,"ts":%.4f,"args":{"victim":%d,"for":%d}}`,
			tid, ts, uint64(ev.Page), ev.A)
	case KindCoalesce:
		c.meta(`{"name":"coalesce","cat":"uvm","ph":"i","s":"t","pid":0,"tid":%d,"ts":%.4f,"args":{"page":%d,"seq":%d}}`,
			tid, ts, uint64(ev.Page), ev.Seq)
	case KindWalkHit:
		c.meta(`{"name":"walk_hit","cat":"walk","ph":"i","s":"t","pid":0,"tid":%d,"ts":%.4f,"args":{"page":%d,"seq":%d}}`,
			tid, ts, uint64(ev.Page), ev.Seq)
	case KindWalkMerge:
		c.meta(`{"name":"walk_merge","cat":"walk","ph":"i","s":"t","pid":0,"tid":%d,"ts":%.4f,"args":{"page":%d,"seq":%d}}`,
			tid, ts, uint64(ev.Page), ev.Seq)
	case KindHIRDrain:
		c.meta(`{"name":"hir_drain","cat":"hir","ph":"X","pid":0,"tid":%d,"ts":%.4f,"dur":%.4f,"args":{"entries":%d,"bytes":%d}}`,
			tid, ts, c.us(sim.Cycle(ev.C)), ev.A, ev.B)
	case KindHIRConflict:
		c.meta(`{"name":"hir_conflict","cat":"hir","ph":"i","s":"t","pid":0,"tid":%d,"ts":%.4f,"args":{"page":%d}}`,
			tid, ts, uint64(ev.Page))
	case KindKernelBarrier:
		c.meta(`{"name":"kernel_barrier","cat":"sm","ph":"i","s":"g","pid":0,"tid":%d,"ts":%.4f,"args":{"index":%d,"seq":%d}}`,
			tid, ts, ev.A, ev.Seq)
	case KindTLBMiss:
		c.meta(`{"name":"tlb_miss","cat":"tlb","ph":"i","s":"t","pid":0,"tid":%d,"ts":%.4f,"args":{"level":%d,"page":%d,"seq":%d}}`,
			tid, ts, ev.A, uint64(ev.Page), ev.Seq)
	case KindPrefetch:
		c.meta(`{"name":"prefetch","cat":"uvm","ph":"i","s":"t","pid":0,"tid":%d,"ts":%.4f,"args":{"page":%d,"seq":%d}}`,
			tid, ts, uint64(ev.Page), ev.Seq)
	}
}

// Flush implements Probe: it terminates the JSON document, flushes buffers
// and (with CloseOnFlush) closes the writer. Idempotent.
func (c *ChromeTrace) Flush() error {
	if c.closed {
		return c.err
	}
	c.closed = true
	c.printf("\n]}\n")
	if err := c.bw.Flush(); err != nil && c.err == nil {
		c.err = err
	}
	if c.cfg.CloseOnFlush {
		if cl, ok := c.under.(io.Closer); ok {
			if err := cl.Close(); err != nil && c.err == nil {
				c.err = err
			}
		}
	}
	return c.err
}

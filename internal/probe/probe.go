// Package probe is the simulator's instrumentation layer: a typed event
// stream tapped at exactly the points where the simulator increments its
// counters today — fault begin/end, eviction, fault coalescing, walk hits
// and walker-MSHR merges, HIR drains and way conflicts, kernel barriers,
// TLB misses, and block prefetches.
//
// A Probe receives every event by value (no allocation per event) together
// with the simulated cycle at which it occurred. Two production probes ship
// with the package: Metrics (per-event-kind latency and inter-arrival
// histograms, surfaced as gpu.Result.Probe) and ChromeTrace (streaming
// Chrome trace_event JSON, loadable in chrome://tracing or Perfetto).
//
// Overhead contract: a nil probe must cost nothing. Every emission site in
// internal/gpu, internal/uvm and internal/hir is guarded by a single
// `probe != nil` branch, so an unprobed simulation performs no interface
// calls and no allocations on the hot path (BenchmarkNilProbe guards this).
// Probes observe; they must never mutate simulation state, so attaching one
// cannot change any simulation result.
package probe

import (
	"hpe/internal/addrspace"
	"hpe/internal/sim"
)

// Kind enumerates the event taxonomy.
type Kind uint8

const (
	// KindFaultBegin: a far-fault was enqueued at the UVM driver.
	// A = queue depth (faults waiting, excluding those in service).
	KindFaultBegin Kind = iota
	// KindFaultEnd: a far-fault completed and the page is mapped.
	// A = total latency in cycles (enqueue to completion), B = 1 when the
	// fault was satisfied early by a block migration (fault batching).
	KindFaultEnd
	// KindEviction: a resident page was evicted. Page = victim,
	// A = the faulting page whose service triggered the eviction.
	KindEviction
	// KindCoalesce: a fault request merged onto an in-flight fault.
	KindCoalesce
	// KindWalkHit: a page-table walk resolved to a resident page.
	KindWalkHit
	// KindWalkMerge: an access joined an already in-flight walk for the
	// same page (walker MSHR hit).
	KindWalkMerge
	// KindHIRDrain: the HIR cache drained to the driver over PCIe.
	// A = entries drained, B = payload bytes, C = transfer cycles.
	KindHIRDrain
	// KindHIRConflict: a page-walk hit was dropped because its HIR row was
	// full (the paper's "some pages' information may be lost").
	KindHIRConflict
	// KindKernelBarrier: a kernel boundary was crossed. A = barrier index.
	KindKernelBarrier
	// KindTLBMiss: a translation missed a TLB level. A = level (1 or 2).
	KindTLBMiss
	// KindPrefetch: a non-resident page was migrated speculatively
	// alongside a fault (UVM block prefetching).
	KindPrefetch

	numKinds
)

var kindNames = [numKinds]string{
	"fault_begin", "fault_end", "eviction", "coalesce", "walk_hit",
	"walk_merge", "hir_drain", "hir_conflict", "kernel_barrier",
	"tlb_miss", "prefetch",
}

// String names the kind as it appears in metrics snapshots and traces.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// KindNames lists every event-kind name in Kind order.
func KindNames() []string {
	out := make([]string, numKinds)
	copy(out, kindNames[:])
	return out
}

// DriverLane is the SM value of events raised by the host-side driver (or
// any component with no SM attribution).
const DriverLane int32 = -1

// Event is one instrumentation event, passed by value. At is the simulated
// cycle; SM is the raising SM's id or DriverLane; Page and Seq identify the
// page and canonical trace position where meaningful. A, B and C carry
// kind-specific payloads documented on the Kind constants.
type Event struct {
	Kind    Kind
	At      sim.Cycle
	SM      int32
	Page    addrspace.PageID
	Seq     int64
	A, B, C uint64
}

// Probe consumes the event stream of one simulation run. Emit is called
// from the simulator's single-threaded event loop in simulated-time order
// (At is non-decreasing); implementations need no locking against the run
// itself. Flush finalises any buffered output (closing a streamed trace);
// it must be idempotent. Probes must not mutate simulation state.
type Probe interface {
	Emit(ev Event)
	Flush() error
}

// Event constructors — one per kind, so emission sites stay single-line.

// FaultBegin builds a KindFaultBegin event.
func FaultBegin(at sim.Cycle, page addrspace.PageID, seq int, queueDepth int) Event {
	return Event{Kind: KindFaultBegin, At: at, SM: DriverLane, Page: page, Seq: int64(seq), A: uint64(queueDepth)}
}

// FaultEnd builds a KindFaultEnd event.
func FaultEnd(at sim.Cycle, page addrspace.PageID, seq int, latency sim.Cycle, batched bool) Event {
	ev := Event{Kind: KindFaultEnd, At: at, SM: DriverLane, Page: page, Seq: int64(seq), A: uint64(latency)}
	if batched {
		ev.B = 1
	}
	return ev
}

// Eviction builds a KindEviction event.
func Eviction(at sim.Cycle, victim, trigger addrspace.PageID) Event {
	return Event{Kind: KindEviction, At: at, SM: DriverLane, Page: victim, A: uint64(trigger)}
}

// Coalesce builds a KindCoalesce event.
func Coalesce(at sim.Cycle, page addrspace.PageID, seq int) Event {
	return Event{Kind: KindCoalesce, At: at, SM: DriverLane, Page: page, Seq: int64(seq)}
}

// WalkHit builds a KindWalkHit event.
func WalkHit(at sim.Cycle, sm int, page addrspace.PageID, seq int) Event {
	return Event{Kind: KindWalkHit, At: at, SM: int32(sm), Page: page, Seq: int64(seq)}
}

// WalkMerge builds a KindWalkMerge event.
func WalkMerge(at sim.Cycle, sm int, page addrspace.PageID, seq int) Event {
	return Event{Kind: KindWalkMerge, At: at, SM: int32(sm), Page: page, Seq: int64(seq)}
}

// HIRDrain builds a KindHIRDrain event.
func HIRDrain(at sim.Cycle, entries, bytes int, transfer sim.Cycle) Event {
	return Event{Kind: KindHIRDrain, At: at, SM: DriverLane, A: uint64(entries), B: uint64(bytes), C: uint64(transfer)}
}

// HIRConflict builds a KindHIRConflict event.
func HIRConflict(at sim.Cycle, page addrspace.PageID) Event {
	return Event{Kind: KindHIRConflict, At: at, SM: DriverLane, Page: page}
}

// KernelBarrier builds a KindKernelBarrier event.
func KernelBarrier(at sim.Cycle, sm int, index, seq int) Event {
	return Event{Kind: KindKernelBarrier, At: at, SM: int32(sm), Seq: int64(seq), A: uint64(index)}
}

// TLBMiss builds a KindTLBMiss event.
func TLBMiss(at sim.Cycle, sm int, page addrspace.PageID, seq int, level int) Event {
	return Event{Kind: KindTLBMiss, At: at, SM: int32(sm), Page: page, Seq: int64(seq), A: uint64(level)}
}

// Prefetch builds a KindPrefetch event.
func Prefetch(at sim.Cycle, page addrspace.PageID, seq int) Event {
	return Event{Kind: KindPrefetch, At: at, SM: DriverLane, Page: page, Seq: int64(seq)}
}

// multi fans events out to several probes in order.
type multi []Probe

// Multi combines probes into one. Nil members are dropped; Multi returns
// nil for an empty set and the probe itself for a single survivor, so the
// result composes with the simulator's `probe != nil` fast-path guard.
func Multi(ps ...Probe) Probe {
	out := make(multi, 0, len(ps))
	for _, p := range ps {
		if p != nil {
			out = append(out, p)
		}
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	}
	return out
}

// Emit implements Probe.
func (m multi) Emit(ev Event) {
	for _, p := range m {
		//lint:ignore hpelint/probeguard Multi drops nil members at construction, so every element is non-nil by invariant
		p.Emit(ev)
	}
}

// Flush implements Probe, returning the first error.
func (m multi) Flush() error {
	var first error
	for _, p := range m {
		//lint:ignore hpelint/probeguard Multi drops nil members at construction, so every element is non-nil by invariant
		if err := p.Flush(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// FindMetrics unwraps p (through Multi composition) to the first *Metrics
// probe, or nil. The simulator uses it to surface the metrics snapshot on
// gpu.Result without knowing how the caller composed its probes.
func FindMetrics(p Probe) *Metrics {
	switch v := p.(type) {
	case *Metrics:
		return v
	case multi:
		for _, sub := range v {
			if m := FindMetrics(sub); m != nil {
				return m
			}
		}
	}
	return nil
}

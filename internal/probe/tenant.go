package probe

import (
	"hpe/internal/addrspace"
	"hpe/internal/trace"
)

// TenantCount is one tenant's share of a run's demand-paging activity, as
// observed from the probe event stream.
type TenantCount struct {
	// Name is the tenant token from the trace annotation ("HSD", "NWx2").
	Name string
	// Faults counts KindFaultEnd events on the tenant's pages.
	Faults uint64
	// Evictions counts KindEviction events whose victim the tenant owns.
	Evictions uint64
	// CrossEvictions is the subset of Evictions whose triggering fault came
	// from a different tenant — the colocation contention signal.
	CrossEvictions uint64
}

// TenantCounts attributes faults and evictions to the tenant page ranges of
// a colocated workload, purely from the probe event stream — it needs no
// driver support, so it works on any instrumented run (gpu or policy.Replay)
// whose trace carries tenant annotations. It composes with Multi like any
// other probe.
type TenantCounts struct {
	ranges []trace.TenantRange
	counts []TenantCount
}

// NewTenantCounts builds the probe over the trace's tenant ranges.
func NewTenantCounts(tens []trace.TenantRange) *TenantCounts {
	t := &TenantCounts{ranges: tens, counts: make([]TenantCount, len(tens))}
	for i, r := range tens {
		t.counts[i].Name = r.Name
	}
	return t
}

// indexOf returns the tenant owning p, or -1 (linear scan over a handful of
// ranges, same as the driver's attribution).
func (t *TenantCounts) indexOf(p addrspace.PageID) int {
	for i := range t.ranges {
		if p >= t.ranges[i].Lo && p < t.ranges[i].Hi {
			return i
		}
	}
	return -1
}

// Emit implements Probe.
func (t *TenantCounts) Emit(ev Event) {
	switch ev.Kind {
	case KindFaultEnd:
		if i := t.indexOf(ev.Page); i >= 0 {
			t.counts[i].Faults++
		}
	case KindEviction:
		vi := t.indexOf(ev.Page)
		if vi < 0 {
			return
		}
		t.counts[vi].Evictions++
		// The eviction event carries the triggering page in A.
		if ti := t.indexOf(addrspace.PageID(ev.A)); ti >= 0 && ti != vi {
			t.counts[vi].CrossEvictions++
		}
	}
}

// Flush implements Probe.
func (t *TenantCounts) Flush() error { return nil }

// Counts returns a copy of the per-tenant counters, in range order.
func (t *TenantCounts) Counts() []TenantCount {
	return append([]TenantCount(nil), t.counts...)
}

package probe

import (
	"errors"
	"strings"
	"testing"

	"hpe/internal/sim"
)

// recorder keeps every event it receives.
type recorder struct {
	events  []Event
	flushes int
	err     error
}

func (r *recorder) Emit(ev Event) { r.events = append(r.events, ev) }
func (r *recorder) Flush() error  { r.flushes++; return r.err }

func TestKindNames(t *testing.T) {
	names := KindNames()
	if len(names) != int(numKinds) {
		t.Fatalf("KindNames has %d entries, want %d", len(names), numKinds)
	}
	seen := map[string]bool{}
	for k := Kind(0); k < numKinds; k++ {
		name := k.String()
		if name == "" || name == "unknown" || seen[name] {
			t.Fatalf("kind %d name %q invalid or duplicated", k, name)
		}
		seen[name] = true
		if names[k] != name {
			t.Fatalf("KindNames[%d] = %q, want %q", k, names[k], name)
		}
	}
	if Kind(200).String() != "unknown" {
		t.Fatal("out-of-range kind should render unknown")
	}
	// KindNames returns a copy, not the backing array.
	names[0] = "mutated"
	if KindNames()[0] == "mutated" {
		t.Fatal("KindNames aliases internal state")
	}
}

func TestMultiComposition(t *testing.T) {
	if Multi() != nil || Multi(nil, nil) != nil {
		t.Fatal("empty Multi should be nil (preserving the fast-path guard)")
	}
	r := &recorder{}
	if got := Multi(nil, r, nil); got != Probe(r) {
		t.Fatal("single-survivor Multi should return the probe itself")
	}
	a, b := &recorder{}, &recorder{}
	m := Multi(a, nil, b)
	ev := FaultBegin(10, 3, 7, 2)
	m.Emit(ev)
	if len(a.events) != 1 || len(b.events) != 1 || a.events[0] != ev {
		t.Fatal("Multi did not fan out")
	}
	if err := m.Flush(); err != nil || a.flushes != 1 || b.flushes != 1 {
		t.Fatal("Multi did not flush members")
	}
	// First flush error wins, but every member still gets flushed.
	a.err = errors.New("a failed")
	b.err = errors.New("b failed")
	if err := m.Flush(); err == nil || err.Error() != "a failed" || b.flushes != 2 {
		t.Fatalf("Multi flush error = %v", err)
	}
}

func TestFindMetrics(t *testing.T) {
	if FindMetrics(nil) != nil {
		t.Fatal("FindMetrics(nil)")
	}
	m := NewMetrics()
	if FindMetrics(m) != m {
		t.Fatal("FindMetrics(direct)")
	}
	if FindMetrics(&recorder{}) != nil {
		t.Fatal("FindMetrics on a non-metrics probe")
	}
	wrapped := Multi(&recorder{}, Multi(&recorder{}, m))
	if FindMetrics(wrapped) != m {
		t.Fatal("FindMetrics through nested Multi")
	}
}

func TestEventConstructors(t *testing.T) {
	if ev := FaultEnd(100, 5, 2, 40, true); ev.Kind != KindFaultEnd ||
		ev.At != 100 || ev.Page != 5 || ev.Seq != 2 || ev.A != 40 || ev.B != 1 {
		t.Fatalf("FaultEnd = %+v", ev)
	}
	if ev := FaultEnd(100, 5, 2, 40, false); ev.B != 0 {
		t.Fatal("unbatched FaultEnd should carry B=0")
	}
	if ev := Eviction(7, 9, 11); ev.Page != 9 || ev.A != 11 || ev.SM != DriverLane {
		t.Fatalf("Eviction = %+v", ev)
	}
	if ev := WalkHit(1, 3, 4, 5); ev.SM != 3 || ev.Page != 4 || ev.Seq != 5 {
		t.Fatalf("WalkHit = %+v", ev)
	}
	if ev := HIRDrain(9, 6, 384, 120); ev.A != 6 || ev.B != 384 || ev.C != 120 {
		t.Fatalf("HIRDrain = %+v", ev)
	}
	if ev := TLBMiss(2, 1, 8, 3, 2); ev.A != 2 || ev.SM != 1 {
		t.Fatalf("TLBMiss = %+v", ev)
	}
}

func TestMetricsCountsAndLatency(t *testing.T) {
	m := NewMetrics()
	m.Emit(FaultBegin(10, 1, 0, 0))
	m.Emit(FaultBegin(30, 2, 1, 1))
	m.Emit(FaultEnd(40, 1, 0, 30, false))
	m.Emit(FaultEnd(70, 2, 1, 40, true))
	m.Emit(HIRDrain(100, 4, 256, 64))
	s := m.Snapshot()
	if s.Events != 5 {
		t.Fatalf("events = %d", s.Events)
	}
	if s.Count("fault_begin") != 2 || s.Count("fault_end") != 2 || s.Count("hir_drain") != 1 {
		t.Fatalf("counts wrong: %+v", s)
	}
	if s.Count("eviction") != 0 {
		t.Fatal("unobserved kind should count 0")
	}
	fb, ok := s.ByKind("fault_begin")
	if !ok || fb.InterArrival.Count != 1 || fb.InterArrival.Max != 20 {
		t.Fatalf("fault_begin inter-arrival = %+v", fb.InterArrival)
	}
	fe, _ := s.ByKind("fault_end")
	if fe.Latency.Count != 2 || fe.Latency.Min != 30 || fe.Latency.Max != 40 {
		t.Fatalf("fault_end latency = %+v", fe.Latency)
	}
	hd, _ := s.ByKind("hir_drain")
	if hd.Latency.Count != 1 || hd.Latency.Max != 64 {
		t.Fatalf("hir_drain latency = %+v", hd.Latency)
	}
	// Kinds appear in taxonomy order.
	if s.Kinds[0].Kind != "fault_begin" || s.Kinds[1].Kind != "fault_end" {
		t.Fatalf("kind order: %v, %v", s.Kinds[0].Kind, s.Kinds[1].Kind)
	}
	if m.Flush() != nil {
		t.Fatal("Metrics.Flush should be nil")
	}
	// Out-of-range kinds are ignored, not counted.
	m.Emit(Event{Kind: Kind(250), At: sim.Cycle(1)})
	if m.Snapshot().Events != 5 {
		t.Fatal("out-of-range kind was counted")
	}
}

func TestSnapshotString(t *testing.T) {
	m := NewMetrics()
	m.Emit(FaultEnd(10, 1, 0, 30, false))
	m.Emit(FaultEnd(40, 2, 1, 50, false))
	out := m.Snapshot().String()
	for _, frag := range []string{"2 events", "fault_end", "latency[", "interarrival["} {
		if !strings.Contains(out, frag) {
			t.Fatalf("String() = %q, missing %q", out, frag)
		}
	}
}

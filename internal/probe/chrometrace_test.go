package probe

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"hpe/internal/sim"
)

var update = flag.Bool("update", false, "rewrite golden trace fixtures")

// syntheticEvents is a fixed event sequence exercising every kind once
// (twice for the fault pair), in simulated-time order.
func syntheticEvents() []Event {
	return []Event{
		TLBMiss(10, 0, 4, 0, 1),
		TLBMiss(20, 0, 4, 0, 2),
		FaultBegin(30, 4, 0, 0),
		Coalesce(40, 4, 1),
		FaultBegin(50, 5, 2, 1),
		KernelBarrier(60, 1, 0, 2),
		Eviction(70, 9, 4),
		FaultEnd(80, 4, 0, 50, false),
		Prefetch(80, 6, 0),
		FaultEnd(90, 5, 2, 40, true),
		WalkHit(100, 1, 4, 3),
		WalkMerge(110, 0, 4, 4),
		HIRConflict(120, 7),
		HIRDrain(130, 3, 192, 24),
	}
}

func renderTrace(t *testing.T, cfg ChromeTraceConfig, events []Event) []byte {
	t.Helper()
	var buf bytes.Buffer
	c := NewChromeTrace(&buf, cfg)
	for _, ev := range events {
		c.Emit(ev)
	}
	if err := c.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	return buf.Bytes()
}

// traceDoc mirrors the Chrome trace_event JSON Object Format.
type traceDoc struct {
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	TraceEvents     []traceEvent `json:"traceEvents"`
}

type traceEvent struct {
	Name string                     `json:"name"`
	Ph   string                     `json:"ph"`
	Pid  int                        `json:"pid"`
	Tid  int                        `json:"tid"`
	Ts   float64                    `json:"ts"`
	Dur  float64                    `json:"dur"`
	Cat  string                     `json:"cat"`
	Args map[string]json.RawMessage `json:"args"`
}

// checkTrace validates the invariants the acceptance criteria name: the
// document parses, has events, and timestamps are non-decreasing per lane.
func checkTrace(t *testing.T, raw []byte) traceDoc {
	t.Helper()
	var doc traceDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, raw)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	lastTs := map[int]float64{}
	for i, ev := range doc.TraceEvents {
		if ev.Ph == "M" {
			continue
		}
		if prev, ok := lastTs[ev.Tid]; ok && ev.Ts < prev {
			t.Fatalf("event %d (%s): ts %.4f precedes %.4f on lane %d", i, ev.Name, ev.Ts, prev, ev.Tid)
		}
		lastTs[ev.Tid] = ev.Ts
	}
	return doc
}

// TestChromeTraceGolden locks the exact serialisation against a committed
// fixture; regenerate deliberately with `go test ./internal/probe -update`.
func TestChromeTraceGolden(t *testing.T) {
	raw := renderTrace(t, ChromeTraceConfig{CoreMHz: 1000, SMs: 2, Process: "golden"}, syntheticEvents())
	golden := filepath.Join("testdata", "golden.trace.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(raw, want) {
		t.Fatalf("trace differs from golden fixture (rerun with -update if intended)\ngot:\n%s\nwant:\n%s", raw, want)
	}
	checkTrace(t, raw)
}

func TestChromeTraceContent(t *testing.T) {
	raw := renderTrace(t, ChromeTraceConfig{CoreMHz: 1000, SMs: 2, Process: "p"}, syntheticEvents())
	doc := checkTrace(t, raw)
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	byName := map[string][]traceEvent{}
	for _, ev := range doc.TraceEvents {
		byName[ev.Name] = append(byName[ev.Name], ev)
	}
	// Lane metadata: 2 SM lanes + driver lane + process name.
	if n := len(byName["thread_name"]); n != 3 {
		t.Fatalf("thread_name events = %d, want 3", n)
	}
	if n := len(byName["process_name"]); n != 1 {
		t.Fatalf("process_name events = %d", n)
	}
	// Faults are async begin/end pairs on the driver lane (tid = SMs = 2).
	faults := byName["fault"]
	if len(faults) != 4 {
		t.Fatalf("fault events = %d, want 4 (2 b + 2 e)", len(faults))
	}
	phases := map[string]int{}
	for _, f := range faults {
		phases[f.Ph]++
		if f.Tid != 2 {
			t.Fatalf("fault on lane %d, want driver lane 2", f.Tid)
		}
	}
	if phases["b"] != 2 || phases["e"] != 2 {
		t.Fatalf("fault phases = %v", phases)
	}
	// The HIR drain is a complete event with a duration (24 cycles @1000MHz
	// = 0.024us).
	drains := byName["hir_drain"]
	if len(drains) != 1 || drains[0].Ph != "X" || drains[0].Dur != 0.024 {
		t.Fatalf("hir_drain = %+v", drains)
	}
	// SM-attributed events land on their SM's lane.
	if evs := byName["walk_hit"]; len(evs) != 1 || evs[0].Tid != 1 {
		t.Fatalf("walk_hit = %+v", evs)
	}
	// ts scaling: first TLB miss at cycle 10 @1000MHz = 0.01us.
	if evs := byName["tlb_miss"]; len(evs) != 2 || evs[0].Ts != 0.01 {
		t.Fatalf("tlb_miss = %+v", evs)
	}
	// Every emitted kind made it into the document.
	for _, name := range []string{"fault", "evict", "coalesce", "walk_hit", "walk_merge",
		"hir_drain", "hir_conflict", "kernel_barrier", "tlb_miss", "prefetch"} {
		if len(byName[name]) == 0 {
			t.Errorf("kind %s missing from trace", name)
		}
	}
}

func TestChromeTraceDefaults(t *testing.T) {
	raw := renderTrace(t, ChromeTraceConfig{}, nil)
	doc := checkTrace(t, raw)
	// 15 SM lanes + driver.
	lanes := 0
	for _, ev := range doc.TraceEvents {
		if ev.Name == "thread_name" {
			lanes++
		}
	}
	if lanes != 16 {
		t.Fatalf("default lanes = %d, want 16", lanes)
	}
}

func TestChromeTraceFlushIdempotent(t *testing.T) {
	var buf bytes.Buffer
	c := NewChromeTrace(&buf, ChromeTraceConfig{SMs: 1})
	c.Emit(FaultBegin(1, 1, 0, 0))
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	n := buf.Len()
	if err := c.Flush(); err != nil || buf.Len() != n {
		t.Fatal("second Flush wrote more output")
	}
	// Emissions after Flush are dropped.
	c.Emit(FaultEnd(2, 1, 0, 1, false))
	if err := c.Flush(); err != nil || buf.Len() != n {
		t.Fatal("post-flush emission leaked output")
	}
}

// failWriter errors after limit bytes.
type failWriter struct {
	n, limit int
	closed   bool
}

func (w *failWriter) Write(p []byte) (int, error) {
	if w.n+len(p) > w.limit {
		return 0, errors.New("disk full")
	}
	w.n += len(p)
	return len(p), nil
}

func (w *failWriter) Close() error { w.closed = true; return nil }

func TestChromeTraceWriteError(t *testing.T) {
	w := &failWriter{limit: 64}
	c := NewChromeTrace(w, ChromeTraceConfig{SMs: 1, CloseOnFlush: true})
	for i := 0; i < 10000; i++ {
		c.Emit(FaultBegin(sim.Cycle(i), 1, i, 0))
	}
	if err := c.Flush(); err == nil {
		t.Fatal("write error not surfaced by Flush")
	}
	if c.Err() == nil {
		t.Fatal("Err() should report the failure")
	}
	if !w.closed {
		t.Fatal("CloseOnFlush skipped on error path")
	}
}

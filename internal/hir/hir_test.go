package hir

import (
	"testing"

	"hpe/internal/addrspace"
)

func defaultCache() *Cache { return New(DefaultConfig()) }

func TestRecordAndDrain(t *testing.T) {
	c := defaultCache()
	g := addrspace.DefaultGeometry()
	// Two hits to page 0 of set 5, one to page 3 of set 5, one to set 9.
	c.RecordHit(g.PageAt(5, 0))
	c.RecordHit(g.PageAt(5, 0))
	c.RecordHit(g.PageAt(5, 3))
	c.RecordHit(g.PageAt(9, 7))
	if c.Touched() != 2 {
		t.Fatalf("Touched = %d, want 2", c.Touched())
	}
	recs := c.Drain()
	if len(recs) != 2 {
		t.Fatalf("drained %d records, want 2", len(recs))
	}
	// First-touch order: set 5 first.
	if recs[0].Set != 5 || recs[1].Set != 9 {
		t.Fatalf("drain order = %v, %v; want sets 5 then 9", recs[0].Set, recs[1].Set)
	}
	if recs[0].Counts[0] != 2 || recs[0].Counts[3] != 1 {
		t.Fatalf("set 5 counts = %v", recs[0].Counts)
	}
	if recs[1].Counts[7] != 1 {
		t.Fatalf("set 9 counts = %v", recs[1].Counts)
	}
	// Cache flushed.
	if c.Touched() != 0 {
		t.Fatalf("Touched after drain = %d", c.Touched())
	}
	if got := c.Drain(); len(got) != 0 {
		t.Fatalf("second drain returned %d records", len(got))
	}
}

func TestCounterSaturatesAtMax(t *testing.T) {
	c := defaultCache() // 2-bit counters: max 3
	g := addrspace.DefaultGeometry()
	for i := 0; i < 10; i++ {
		c.RecordHit(g.PageAt(1, 0))
	}
	recs := c.Drain()
	if recs[0].Counts[0] != 3 {
		t.Fatalf("saturating counter = %d, want 3", recs[0].Counts[0])
	}
}

func TestWayConflictDropsHit(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Entries, cfg.Ways = 2, 2 // a single row with 2 ways
	c := New(cfg)
	g := cfg.Geometry
	c.RecordHit(g.PageAt(0, 0))
	c.RecordHit(g.PageAt(1, 0))
	c.RecordHit(g.PageAt(2, 0)) // third distinct set: conflict, dropped
	st := c.Stats()
	if st.Conflicts != 1 {
		t.Fatalf("conflicts = %d, want 1", st.Conflicts)
	}
	recs := c.Drain()
	if len(recs) != 2 {
		t.Fatalf("drained %d, want 2 (conflicting set lost)", len(recs))
	}
	for _, r := range recs {
		if r.Set == 2 {
			t.Fatal("conflicting set 2 was recorded")
		}
	}
}

func TestMVTStrideWastesEntrySpace(t *testing.T) {
	// MVT touches pages with stride 4: each entry records only 4 of its 16
	// counters — the waste the paper blames for MVT's HIR conflicts.
	c := defaultCache()
	g := addrspace.DefaultGeometry()
	for s := 0; s < 4; s++ {
		for off := 0; off < 16; off += 4 {
			c.RecordHit(g.PageAt(addrspace.SetID(s), off))
		}
	}
	for _, r := range c.Drain() {
		used := 0
		for _, cnt := range r.Counts {
			if cnt > 0 {
				used++
			}
		}
		if used != 4 {
			t.Fatalf("set %v used %d counters, want 4", r.Set, used)
		}
	}
}

func TestPaperStorageCost(t *testing.T) {
	// Paper §V-C: 48-bit tag + 16×2-bit counters = 80 bits = 10 B per entry;
	// 1024 entries = 10 KB.
	c := defaultCache()
	if got := c.TransferBytes(1); got != 10 {
		t.Fatalf("entry size = %d bytes, want 10", got)
	}
	if got := c.StorageBytes(); got != 10*1024 {
		t.Fatalf("storage = %d bytes, want 10240", got)
	}
}

func TestStatsAccumulate(t *testing.T) {
	c := defaultCache()
	g := addrspace.DefaultGeometry()
	c.RecordHit(g.PageAt(1, 0))
	c.Drain()
	c.RecordHit(g.PageAt(2, 0))
	c.RecordHit(g.PageAt(3, 0))
	c.Drain()
	st := c.Stats()
	if st.Drains != 2 || st.HitsRecorded != 3 {
		t.Fatalf("stats = %+v", st)
	}
	if st.MeanDrained != 1.5 || st.MaxDrained != 2 {
		t.Fatalf("drain stats mean=%f max=%d, want 1.5, 2", st.MeanDrained, st.MaxDrained)
	}
	sizes := c.DrainSizes()
	if len(sizes) != 2 || sizes[0] != 1 || sizes[1] != 2 {
		t.Fatalf("DrainSizes = %v", sizes)
	}
}

func TestEntryReusedAfterDrain(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Entries, cfg.Ways = 2, 2
	c := New(cfg)
	g := cfg.Geometry
	c.RecordHit(g.PageAt(0, 0))
	c.RecordHit(g.PageAt(1, 0))
	c.Drain()
	// After the flush the row must accept new sets again.
	c.RecordHit(g.PageAt(2, 5))
	recs := c.Drain()
	if len(recs) != 1 || recs[0].Set != 2 || recs[0].Counts[5] != 1 {
		t.Fatalf("post-drain record = %+v", recs)
	}
	if c.Stats().Conflicts != 0 {
		t.Fatal("conflict counted after flush freed the row")
	}
}

func TestBadConfigPanics(t *testing.T) {
	for _, cfg := range []Config{
		{Entries: 0, Ways: 1, CounterBits: 2, Geometry: addrspace.DefaultGeometry()},
		{Entries: 8, Ways: 3, CounterBits: 2, Geometry: addrspace.DefaultGeometry()},
		{Entries: 8, Ways: 2, CounterBits: 0, Geometry: addrspace.DefaultGeometry()},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%+v) did not panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestDefaultAvoidsConflictsForModerateWorkingSets(t *testing.T) {
	// The paper chose 1024×8 because it avoids conflicts for most apps.
	// 512 concurrent sets (a large inter-drain working set) must fit.
	c := defaultCache()
	g := addrspace.DefaultGeometry()
	for s := 0; s < 512; s++ {
		c.RecordHit(g.PageAt(addrspace.SetID(s), 0))
	}
	if st := c.Stats(); st.Conflicts != 0 {
		t.Fatalf("conflicts = %d for 512 distinct sets", st.Conflicts)
	}
}

func BenchmarkRecordHit(b *testing.B) {
	c := defaultCache()
	g := addrspace.DefaultGeometry()
	for i := 0; i < b.N; i++ {
		c.RecordHit(g.PageAt(addrspace.SetID(i%64), i%16))
		if i%1000 == 999 {
			c.Drain()
		}
	}
}

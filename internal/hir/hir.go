// Package hir implements the Hit Information Record cache of Section IV-B:
// a small set-associative cache beside the GPU's page-table walker that
// records page-walk *hits* per page set. Its contents are drained to the GPU
// driver every nth page fault (the transfer interval) to update HPE's page
// set chain; between drains it is the only channel through which HPE learns
// about hits, in contrast to the baselines' "ideal model" feed.
//
// Each entry holds the page-set tag plus one small saturating counter per
// page of the set (2 bits in the paper's costing: a 16-page set needs 32
// bits of data, so an entry is 80 bits and the default 1024-entry HIR costs
// 10 KB). A first-touch order vector preserves a relaxed reference order
// across the drain.
package hir

import (
	"fmt"

	"hpe/internal/addrspace"
	"hpe/internal/probe"
	"hpe/internal/sim"
)

// Config sizes the HIR cache.
type Config struct {
	// Entries is the total entry count (paper default: 1024).
	Entries int
	// Ways is the associativity (paper default: 8).
	Ways int
	// CounterBits is the per-page counter width (paper default: 2).
	CounterBits uint
	// Geometry supplies the page-set arithmetic.
	Geometry addrspace.Geometry
}

// DefaultConfig returns the paper's HIR configuration: 1024 entries, 8-way,
// 2-bit counters over 16-page sets.
func DefaultConfig() Config {
	return Config{Entries: 1024, Ways: 8, CounterBits: 2, Geometry: addrspace.DefaultGeometry()}
}

// Record is one drained HIR entry: the page set and the per-page hit counts
// accumulated since the previous drain, in first-touch order.
type Record struct {
	Set    addrspace.SetID
	Counts []uint8 // len == Geometry.SetSize()
}

type hirEntry struct {
	valid  bool
	tag    addrspace.SetID
	counts []uint8
}

// Cache is the HIR cache. Not safe for concurrent use; the simulator is
// single-threaded per run.
type Cache struct {
	cfg     Config
	rows    int
	maxCnt  uint8
	entries []hirEntry

	// touchOrder records (row, way) pairs in first-touch order since the
	// last drain — the paper's order vector.
	touchOrder []int

	// Instrumentation (nil unless SetProbe was called): the cache has no
	// clock of its own, so the simulator also supplies its time source.
	probe probe.Probe
	now   func() sim.Cycle

	// Stats.
	hitsRecorded  uint64
	conflicts     uint64 // hits dropped because the row was full
	drains        uint64
	drainedTotal  uint64 // sum of entries transferred across drains
	nonEmpty      uint64 // drains that moved at least one entry
	drainedMax    int
	drainedCounts []int // per-drain entry counts (Fig. 15 data)
}

// New returns an empty HIR cache.
func New(cfg Config) *Cache {
	if cfg.Entries <= 0 || cfg.Ways <= 0 || cfg.Entries%cfg.Ways != 0 {
		panic(fmt.Sprintf("hir: bad geometry entries=%d ways=%d", cfg.Entries, cfg.Ways))
	}
	if cfg.CounterBits == 0 || cfg.CounterBits > 8 {
		panic(fmt.Sprintf("hir: counter bits %d out of range [1,8]", cfg.CounterBits))
	}
	return &Cache{
		cfg:     cfg,
		rows:    cfg.Entries / cfg.Ways,
		maxCnt:  uint8(1<<cfg.CounterBits - 1),
		entries: make([]hirEntry, cfg.Entries),
	}
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// SetProbe attaches an instrumentation probe with its time source (the
// simulation engine's clock). Passing a nil probe detaches.
func (c *Cache) SetProbe(p probe.Probe, now func() sim.Cycle) {
	c.probe = p
	c.now = now
}

// RecordHit records a page-walk hit for page p. On a way conflict (the row
// is full of other tags) the hit is dropped and counted — the paper's
// "some pages' information may be lost".
func (c *Cache) RecordHit(p addrspace.PageID) {
	set := c.cfg.Geometry.SetOf(p)
	off := c.cfg.Geometry.Offset(p)
	row := int(uint64(set) % uint64(c.rows))
	base := row * c.cfg.Ways
	free := -1
	for w := 0; w < c.cfg.Ways; w++ {
		e := &c.entries[base+w]
		if e.valid && e.tag == set {
			if e.counts[off] < c.maxCnt {
				e.counts[off]++
			}
			c.hitsRecorded++
			return
		}
		if !e.valid && free < 0 {
			free = base + w
		}
	}
	if free < 0 {
		c.conflicts++
		if c.probe != nil {
			c.probe.Emit(probe.HIRConflict(c.now(), p))
		}
		return
	}
	e := &c.entries[free]
	if e.counts == nil {
		//lint:ignore hpelint/hotalloc nil-guarded lazy init: each entry's count slice is allocated once and reused across drains
		e.counts = make([]uint8, c.cfg.Geometry.SetSize())
	}
	e.valid = true
	e.tag = set
	e.counts[off] = 1
	c.touchOrder = append(c.touchOrder, free)
	c.hitsRecorded++
}

// Touched returns the number of touched (valid) entries awaiting drain.
func (c *Cache) Touched() int { return len(c.touchOrder) }

// Drain copies the touched entries — in first-touch order — into fresh
// Records and flushes the cache, modelling the copy-to-buffer + PCIe
// transfer + flush sequence of §IV-B. Only touched entries are transferred.
func (c *Cache) Drain() []Record {
	//lint:ignore hpelint/hotalloc per-drain-epoch transfer buffer modelling the PCIe copy, not a per-event allocation
	out := make([]Record, 0, len(c.touchOrder))
	for _, idx := range c.touchOrder {
		e := &c.entries[idx]
		if !e.valid {
			continue
		}
		//lint:ignore hpelint/hotalloc per-drain-epoch transfer buffer modelling the PCIe copy, not a per-event allocation
		counts := make([]uint8, len(e.counts))
		copy(counts, e.counts)
		out = append(out, Record{Set: e.tag, Counts: counts})
		e.valid = false
		for i := range e.counts {
			e.counts[i] = 0
		}
	}
	c.touchOrder = c.touchOrder[:0]
	c.drains++
	c.drainedTotal += uint64(len(out))
	if len(out) > 0 {
		c.nonEmpty++
	}
	if len(out) > c.drainedMax {
		c.drainedMax = len(out)
	}
	c.drainedCounts = append(c.drainedCounts, len(out))
	return out
}

// TransferBytes returns the PCIe payload size of a drain of n entries. Each
// entry is tag (48 bits in the paper's 64-bit costing) plus the counter
// vector, rounded up to whole bytes.
func (c *Cache) TransferBytes(n int) int {
	entryBits := 48 + c.cfg.Geometry.SetSize()*int(c.cfg.CounterBits)
	return n * ((entryBits + 7) / 8)
}

// StorageBytes returns the on-GPU storage cost of the whole cache — the
// paper's 10 KB for the default configuration.
func (c *Cache) StorageBytes() int { return c.TransferBytes(c.cfg.Entries) }

// Stats reports cumulative behaviour.
type Stats struct {
	HitsRecorded uint64
	Conflicts    uint64
	Drains       uint64
	// MeanDrained is the average number of entries transferred per drain.
	MeanDrained float64
	// MeanNonEmpty averages over drains that actually moved entries — the
	// paper's Fig. 15 "entries transferred each time" metric.
	MeanNonEmpty float64
	MaxDrained   int
}

// Stats returns the cache's cumulative statistics.
func (c *Cache) Stats() Stats {
	s := Stats{
		HitsRecorded: c.hitsRecorded,
		Conflicts:    c.conflicts,
		Drains:       c.drains,
		MaxDrained:   c.drainedMax,
	}
	if c.drains > 0 {
		s.MeanDrained = float64(c.drainedTotal) / float64(c.drains)
	}
	if c.nonEmpty > 0 {
		s.MeanNonEmpty = float64(c.drainedTotal) / float64(c.nonEmpty)
	}
	return s
}

// DrainSizes returns the per-drain transferred-entry counts.
func (c *Cache) DrainSizes() []int { return c.drainedCounts }

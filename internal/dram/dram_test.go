package dram

import (
	"testing"

	"hpe/internal/cache"
)

func cfg() Config {
	c := DefaultConfig()
	c.Channels = 2
	return c
}

func TestRowHitCheaperThanMiss(t *testing.T) {
	d := New(cfg())
	// Two accesses to the same row on channel 0 (lines 0 and 2 with 2
	// channels: line 0 → ch0, line 2 → ch0; both in row 0 of a 2-KB row).
	first := d.Access(0, 0)
	second := d.Access(first, 2)
	if first != DefaultConfig().RowMiss {
		t.Fatalf("cold access done at %d, want %d", first, DefaultConfig().RowMiss)
	}
	if second-first != DefaultConfig().RowHit {
		t.Fatalf("row hit latency = %d, want %d", second-first, DefaultConfig().RowHit)
	}
	st := d.Stats()
	if st.Accesses != 2 || st.RowHits != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestChannelOccupancySerialises(t *testing.T) {
	d := New(cfg())
	// Burst of same-channel accesses at time 0 (lines 0-3 share chunk 0 →
	// channel 0): each waits for the channel.
	var done []int64
	for i := 0; i < 4; i++ {
		done = append(done, int64(d.Access(0, cache.LineID(i))))
	}
	sc := int64(DefaultConfig().ServiceCycles)
	for i := 1; i < len(done); i++ {
		startGap := done[i] - done[i-1]
		if startGap < sc-int64(DefaultConfig().RowMiss) && startGap <= 0 {
			t.Fatalf("accesses %d and %d not serialised: %v", i-1, i, done)
		}
	}
	if d.Stats().MeanQueueWait == 0 {
		t.Fatal("burst produced no queueing")
	}
}

func TestChannelsRunInParallel(t *testing.T) {
	d := New(cfg())
	a := d.Access(0, 0) // chunk 0 → channel 0
	b := d.Access(0, 4) // chunk 1 → channel 1: independent, same completion time
	if a != b {
		t.Fatalf("parallel channels completed at %d vs %d", a, b)
	}
}

func TestDifferentRowForcesActivation(t *testing.T) {
	d := New(cfg())
	d.Access(0, 0)
	// Line 32 on 2 channels → channel 0, byte offset 32×128 = 4096 → row 2.
	start := d.Access(1000, 32)
	if start-1000 != DefaultConfig().RowMiss {
		t.Fatalf("row switch latency = %d, want %d", start-1000, DefaultConfig().RowMiss)
	}
}

func TestBadConfigPanics(t *testing.T) {
	c := DefaultConfig()
	c.Channels = 0
	defer func() {
		if recover() == nil {
			t.Error("bad dram config accepted")
		}
	}()
	New(c)
}

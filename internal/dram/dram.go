// Package dram models Table I's device memory: GDDR5 across 12 channels
// with an FR-FCFS-flavoured row-buffer policy and 177 GB/s aggregate
// bandwidth. The model is deliberately coarse — per-channel service
// occupancy plus open-row state — because the paper's results are driven by
// page faults, not DRAM microtiming; the data path exists to complete the
// Table I configuration for the datapath extension study.
package dram

import (
	"fmt"

	"hpe/internal/cache"
	"hpe/internal/sim"
)

// Config sizes the DRAM model.
type Config struct {
	// Channels is the channel count (Table I: 12).
	Channels int
	// RowHit and RowMiss are the access latencies in core cycles for an
	// open-row hit and a row activation respectively.
	RowHit, RowMiss sim.Cycle
	// ServiceCycles is the per-access channel occupancy (bandwidth):
	// 128 B / (177 GB/s ÷ 12 channels) ≈ 8.7 ns ≈ 12 cycles at 1.4 GHz.
	ServiceCycles sim.Cycle
	// RowBytes is the row-buffer size per channel bank (2 KB typical).
	RowBytes int
	// InterleaveLines is the channel-interleave granularity in cache lines
	// (4 lines = 512 B, a typical GDDR5 stride balancing row locality
	// against channel parallelism).
	InterleaveLines int
}

// DefaultConfig returns the Table I GDDR5 parameters at 1.4 GHz.
func DefaultConfig() Config {
	return Config{
		Channels:        12,
		RowHit:          28, // ~20 ns
		RowMiss:         56, // ~40 ns
		ServiceCycles:   12, // 177 GB/s aggregate across 12 channels
		RowBytes:        2048,
		InterleaveLines: 4,
	}
}

type channel struct {
	freeAt  sim.Cycle
	openRow uint64
	hasRow  bool
}

// DRAM is the channel-level device-memory model.
type DRAM struct {
	cfg      Config
	channels []channel

	accesses uint64
	rowHits  uint64
	waits    sim.Cycle
}

// New builds the DRAM model.
func New(cfg Config) *DRAM {
	if cfg.Channels <= 0 || cfg.RowHit <= 0 || cfg.RowMiss < cfg.RowHit ||
		cfg.ServiceCycles <= 0 || cfg.RowBytes < cache.LineBytes || cfg.InterleaveLines <= 0 {
		panic(fmt.Sprintf("dram: bad config %+v", cfg))
	}
	return &DRAM{cfg: cfg, channels: make([]channel, cfg.Channels)}
}

// Access services one line read beginning no earlier than `now` and returns
// the completion cycle. Channels interleave at InterleaveLines granularity;
// the row buffer covers RowBytes of the channel's own address slice.
func (d *DRAM) Access(now sim.Cycle, l cache.LineID) sim.Cycle {
	d.accesses++
	chunk := uint64(l) / uint64(d.cfg.InterleaveLines)
	ch := &d.channels[chunk%uint64(d.cfg.Channels)]
	// The channel-local address: which of the channel's chunks, plus the
	// offset inside the chunk.
	local := chunk/uint64(d.cfg.Channels)*uint64(d.cfg.InterleaveLines) +
		uint64(l)%uint64(d.cfg.InterleaveLines)
	row := local * cache.LineBytes / uint64(d.cfg.RowBytes)

	start := now
	if ch.freeAt > start {
		d.waits += ch.freeAt - start
		start = ch.freeAt
	}
	lat := d.cfg.RowMiss
	if ch.hasRow && ch.openRow == row {
		lat = d.cfg.RowHit
		d.rowHits++
	}
	ch.openRow, ch.hasRow = row, true
	done := start + lat
	ch.freeAt = start + d.cfg.ServiceCycles
	return done
}

// Stats summarises DRAM behaviour.
type Stats struct {
	Accesses uint64
	RowHits  uint64
	// RowHitRate is the open-row hit fraction.
	RowHitRate float64
	// MeanQueueWait is the average cycles an access waited for its channel.
	MeanQueueWait float64
}

// Stats returns cumulative counters.
func (d *DRAM) Stats() Stats {
	s := Stats{Accesses: d.accesses, RowHits: d.rowHits}
	if d.accesses > 0 {
		s.RowHitRate = float64(d.rowHits) / float64(d.accesses)
		s.MeanQueueWait = float64(d.waits) / float64(d.accesses)
	}
	return s
}

// Package trace represents page-granularity memory reference strings.
//
// A Trace is the canonical, global ordering of page touches produced by a
// workload generator (the post-coalescer access stream of the paper's CUDA
// applications, reduced to virtual page numbers). The GPU simulator carves a
// Trace into per-warp chunks; the Ideal (Belady MIN) policy uses the
// canonical order as its oracle of the future.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"

	"hpe/internal/addrspace"
)

// Trace is an ordered page reference string with a name for reporting.
type Trace struct {
	// Name identifies the workload that produced the trace.
	Name string
	// Refs is the canonical global reference order.
	Refs []addrspace.PageID
	// Barriers holds kernel-boundary positions, ascending: references at or
	// after Barriers[i] may not issue until every reference before it has
	// completed. They model the implicit synchronisation between kernel
	// launches, which bounds how far a GPU can run ahead of its page-fault
	// frontier.
	Barriers []int

	uniq     int  // cached unique-page count; 0 means not computed
	uniqDone bool // distinguishes "not computed" from "trace is empty"
}

// New returns a trace over the given reference string. The slice is retained,
// not copied.
func New(name string, refs []addrspace.PageID) *Trace {
	return &Trace{Name: name, Refs: refs}
}

// NewWithBarriers returns a trace with kernel boundaries. Barriers must be
// ascending and within [0, len(refs)]; duplicates and boundary values are
// dropped.
func NewWithBarriers(name string, refs []addrspace.PageID, barriers []int) *Trace {
	clean := make([]int, 0, len(barriers))
	prev := -1
	for _, b := range barriers {
		if b < prev {
			panic(fmt.Sprintf("trace: barriers not ascending at %d", b))
		}
		if b > 0 && b < len(refs) && b != prev {
			clean = append(clean, b)
		}
		prev = b
	}
	return &Trace{Name: name, Refs: refs, Barriers: clean}
}

// Len returns the number of references.
func (t *Trace) Len() int { return len(t.Refs) }

// Footprint returns the number of unique pages referenced. The result is
// cached; mutating Refs after the first call invalidates it silently, so
// treat traces as immutable once built.
func (t *Trace) Footprint() int {
	if t.uniqDone {
		return t.uniq
	}
	seen := make(map[addrspace.PageID]struct{}, len(t.Refs)/4+1)
	for _, p := range t.Refs {
		seen[p] = struct{}{}
	}
	t.uniq = len(seen)
	t.uniqDone = true
	return t.uniq
}

// FootprintBytes returns the footprint in bytes (unique pages × page size).
func (t *Trace) FootprintBytes() uint64 {
	return uint64(t.Footprint()) * addrspace.PageBytes
}

// UniquePages returns the sorted set of unique pages referenced.
func (t *Trace) UniquePages() []addrspace.PageID {
	seen := make(map[addrspace.PageID]struct{}, len(t.Refs)/4+1)
	for _, p := range t.Refs {
		seen[p] = struct{}{}
	}
	out := make([]addrspace.PageID, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Chunks splits the trace into n contiguous chunks of near-equal length,
// preserving order within each chunk. It mirrors how a grid of thread blocks
// partitions its input: warp w processes the w-th contiguous slice. Chunks
// may be empty when n exceeds the trace length.
func (t *Trace) Chunks(n int) [][]addrspace.PageID {
	if n <= 0 {
		panic(fmt.Sprintf("trace: Chunks(%d): n must be positive", n))
	}
	out := make([][]addrspace.PageID, n)
	total := len(t.Refs)
	base := total / n
	rem := total % n
	start := 0
	for i := 0; i < n; i++ {
		size := base
		if i < rem {
			size++
		}
		out[i] = t.Refs[start : start+size]
		start += size
	}
	return out
}

// Counts returns the reference count of each page.
func (t *Trace) Counts() map[addrspace.PageID]int {
	m := make(map[addrspace.PageID]int, len(t.Refs)/4+1)
	for _, p := range t.Refs {
		m[p]++
	}
	return m
}

// FutureIndex precomputes, for each page, the sorted list of positions at
// which it is referenced in the canonical order. The Ideal policy queries it
// to find each resident page's next use after a given position.
type FutureIndex struct {
	positions map[addrspace.PageID][]int
	length    int
}

// BuildFutureIndex indexes the trace for Belady-MIN queries.
func BuildFutureIndex(t *Trace) *FutureIndex {
	pos := make(map[addrspace.PageID][]int, t.Footprint())
	for i, p := range t.Refs {
		pos[p] = append(pos[p], i)
	}
	return &FutureIndex{positions: pos, length: len(t.Refs)}
}

// Len returns the length of the indexed trace.
func (f *FutureIndex) Len() int { return f.length }

// NextUse returns the first position strictly after `after` at which page p
// is referenced, or (0, false) if p is never referenced again. after = -1
// asks for the first reference.
func (f *FutureIndex) NextUse(p addrspace.PageID, after int) (int, bool) {
	ps := f.positions[p]
	i := sort.SearchInts(ps, after+1)
	if i == len(ps) {
		return 0, false
	}
	return ps[i], true
}

// --- binary codec -----------------------------------------------------------
//
// Format (little-endian varints except the magic):
//   magic "HPET" | version byte | name length uvarint | name bytes |
//   ref count uvarint | refs as delta-zigzag uvarints
// Delta encoding exploits the spatial locality of GPU traces: most deltas are
// tiny, so a multi-million-reference trace compresses to ~1–2 bytes/ref.

var traceMagic = [4]byte{'H', 'P', 'E', 'T'}

const traceVersion = 2

// ErrBadTrace is returned when decoding input that is not a valid trace.
var ErrBadTrace = errors.New("trace: malformed trace stream")

// Write encodes the trace to w in the binary trace format.
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(traceMagic[:]); err != nil {
		return err
	}
	if err := bw.WriteByte(traceVersion); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(len(t.Name)))
	if _, err := bw.Write(buf[:n]); err != nil {
		return err
	}
	if _, err := bw.WriteString(t.Name); err != nil {
		return err
	}
	n = binary.PutUvarint(buf[:], uint64(len(t.Refs)))
	if _, err := bw.Write(buf[:n]); err != nil {
		return err
	}
	prev := uint64(0)
	for _, p := range t.Refs {
		delta := int64(uint64(p)) - int64(prev)
		n = binary.PutVarint(buf[:], delta)
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
		prev = uint64(p)
	}
	n = binary.PutUvarint(buf[:], uint64(len(t.Barriers)))
	if _, err := bw.Write(buf[:n]); err != nil {
		return err
	}
	prevB := 0
	for _, b := range t.Barriers {
		n = binary.PutUvarint(buf[:], uint64(b-prevB))
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
		prevB = b
	}
	return bw.Flush()
}

// Read decodes a trace from r.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	if magic != traceMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadTrace, magic[:])
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	if ver != traceVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadTrace, ver)
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	if nameLen > 1<<20 {
		return nil, fmt.Errorf("%w: name length %d too large", ErrBadTrace, nameLen)
	}
	nameBytes := make([]byte, nameLen)
	if _, err := io.ReadFull(br, nameBytes); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	if count > 1<<32 {
		return nil, fmt.Errorf("%w: ref count %d too large", ErrBadTrace, count)
	}
	// Grow by append with a bounded initial capacity: a forged count must
	// not pre-allocate gigabytes before the stream runs dry.
	refs := make([]addrspace.PageID, 0, min(count, 1<<20))
	prev := int64(0)
	for i := uint64(0); i < count; i++ {
		delta, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: ref %d: %v", ErrBadTrace, i, err)
		}
		prev += delta
		if prev < 0 {
			return nil, fmt.Errorf("%w: negative page at ref %d", ErrBadTrace, i)
		}
		refs = append(refs, addrspace.PageID(prev))
	}
	nBarriers, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: barrier count: %v", ErrBadTrace, err)
	}
	if nBarriers > uint64(len(refs))+1 {
		return nil, fmt.Errorf("%w: %d barriers for %d refs", ErrBadTrace, nBarriers, len(refs))
	}
	barriers := make([]int, 0, min(nBarriers, 1<<16))
	acc := 0
	for i := uint64(0); i < nBarriers; i++ {
		d, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: barrier %d: %v", ErrBadTrace, i, err)
		}
		acc += int(d)
		barriers = append(barriers, acc)
	}
	return NewWithBarriers(string(nameBytes), refs, barriers), nil
}

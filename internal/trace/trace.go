// Package trace represents page-granularity memory reference strings.
//
// A Trace is the canonical, global ordering of page touches produced by a
// workload generator (the post-coalescer access stream of the paper's CUDA
// applications, reduced to virtual page numbers). The GPU simulator carves a
// Trace into per-warp chunks; the Ideal (Belady MIN) policy uses the
// canonical order as its oracle of the future.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"

	"hpe/internal/addrspace"
)

// Trace is an ordered page reference string with a name for reporting.
type Trace struct {
	// Name identifies the workload that produced the trace.
	Name string
	// Refs is the canonical global reference order.
	Refs []addrspace.PageID
	// Barriers holds kernel-boundary positions, ascending: references at or
	// after Barriers[i] may not issue until every reference before it has
	// completed. They model the implicit synchronisation between kernel
	// launches, which bounds how far a GPU can run ahead of its page-fault
	// frontier.
	Barriers []int
	// Segments annotates contiguous reference ranges with the temporal phase
	// (or tenant quantum) that produced them and its compute gap. Empty for
	// stationary single-app traces — the simulator then applies one global
	// compute gap, the exact pre-annotation fast path. When non-empty the
	// segments are sorted ascending by Start and the first Start is 0.
	Segments []Segment
	// Tenants names the disjoint page ranges of co-located applications, for
	// per-tenant fault/eviction attribution. Empty for single-app traces.
	Tenants []TenantRange

	uniq     int  // cached unique-page count; 0 means not computed
	uniqDone bool // distinguishes "not computed" from "trace is empty"
}

// Segment annotates references [Start, nextSegment.Start) — or through the
// end of the trace for the last segment — with the phase that emitted them.
type Segment struct {
	// Start is the index of the segment's first reference.
	Start int
	// Phase identifies which schedule phase (or, for co-located traces, which
	// tenant) produced the segment. Display vocabulary, not identity.
	Phase int
	// Gap is the per-access compute-instruction count in effect during the
	// segment, overriding the run's global ComputeGap.
	Gap int
}

// TenantRange names one co-located application's page range [Lo, Hi).
type TenantRange struct {
	// Name identifies the tenant for reporting (its app abbreviation).
	Name string
	// Lo and Hi bound the tenant's pages: Lo inclusive, Hi exclusive.
	Lo, Hi addrspace.PageID
}

// Annotated reports whether the trace carries v2 phase/tenant annotations
// (and therefore serializes in the versioned v2 wire format).
func (t *Trace) Annotated() bool {
	return len(t.Segments) > 0 || len(t.Tenants) > 0
}

// TenantOf returns the index of the tenant range containing page p, or -1
// when p falls outside every range.
func (t *Trace) TenantOf(p addrspace.PageID) int {
	for i := range t.Tenants {
		if p >= t.Tenants[i].Lo && p < t.Tenants[i].Hi {
			return i
		}
	}
	return -1
}

// validateSegments panics unless segments are sorted, start at 0, stay within
// the reference string, and carry non-negative phases and gaps.
func validateSegments(segs []Segment, refs int) {
	for i, s := range segs {
		if s.Start < 0 || s.Start > refs {
			panic(fmt.Sprintf("trace: segment %d start %d outside [0,%d]", i, s.Start, refs))
		}
		if i == 0 && s.Start != 0 {
			panic(fmt.Sprintf("trace: first segment starts at %d, want 0", s.Start))
		}
		if i > 0 && s.Start <= segs[i-1].Start {
			panic(fmt.Sprintf("trace: segment %d start %d not ascending", i, s.Start))
		}
		if s.Phase < 0 || s.Gap < 0 {
			panic(fmt.Sprintf("trace: segment %d has negative phase/gap", i))
		}
	}
}

// validateTenants panics unless tenant ranges are non-empty, sorted by Lo,
// and pairwise disjoint.
func validateTenants(tens []TenantRange) {
	for i, r := range tens {
		if r.Hi <= r.Lo {
			panic(fmt.Sprintf("trace: tenant %d range [%d,%d) empty", i, r.Lo, r.Hi))
		}
		if i > 0 && r.Lo < tens[i-1].Hi {
			panic(fmt.Sprintf("trace: tenant %d range [%d,%d) overlaps previous", i, r.Lo, r.Hi))
		}
	}
}

// Annotate attaches phase segments and tenant ranges to the trace and
// returns it. Invalid annotations panic: annotations are produced by
// generators, so a bad one is a programming error. The slices are retained.
func (t *Trace) Annotate(segs []Segment, tenants []TenantRange) *Trace {
	validateSegments(segs, len(t.Refs))
	validateTenants(tenants)
	t.Segments = segs
	t.Tenants = tenants
	return t
}

// New returns a trace over the given reference string. The slice is retained,
// not copied.
func New(name string, refs []addrspace.PageID) *Trace {
	return &Trace{Name: name, Refs: refs}
}

// NewWithBarriers returns a trace with kernel boundaries. Barriers must be
// ascending and within [0, len(refs)]; duplicates and boundary values are
// dropped.
func NewWithBarriers(name string, refs []addrspace.PageID, barriers []int) *Trace {
	clean := make([]int, 0, len(barriers))
	prev := -1
	for _, b := range barriers {
		if b < prev {
			panic(fmt.Sprintf("trace: barriers not ascending at %d", b))
		}
		if b > 0 && b < len(refs) && b != prev {
			clean = append(clean, b)
		}
		prev = b
	}
	return &Trace{Name: name, Refs: refs, Barriers: clean}
}

// Len returns the number of references.
func (t *Trace) Len() int { return len(t.Refs) }

// Footprint returns the number of unique pages referenced. The result is
// cached; mutating Refs after the first call invalidates it silently, so
// treat traces as immutable once built.
func (t *Trace) Footprint() int {
	if t.uniqDone {
		return t.uniq
	}
	seen := make(map[addrspace.PageID]struct{}, len(t.Refs)/4+1)
	for _, p := range t.Refs {
		seen[p] = struct{}{}
	}
	t.uniq = len(seen)
	t.uniqDone = true
	return t.uniq
}

// FootprintBytes returns the footprint in bytes (unique pages × page size).
func (t *Trace) FootprintBytes() uint64 {
	return uint64(t.Footprint()) * addrspace.PageBytes
}

// UniquePages returns the sorted set of unique pages referenced.
func (t *Trace) UniquePages() []addrspace.PageID {
	seen := make(map[addrspace.PageID]struct{}, len(t.Refs)/4+1)
	for _, p := range t.Refs {
		seen[p] = struct{}{}
	}
	out := make([]addrspace.PageID, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Chunks splits the trace into n contiguous chunks of near-equal length,
// preserving order within each chunk. It mirrors how a grid of thread blocks
// partitions its input: warp w processes the w-th contiguous slice. Chunks
// may be empty when n exceeds the trace length.
func (t *Trace) Chunks(n int) [][]addrspace.PageID {
	if n <= 0 {
		panic(fmt.Sprintf("trace: Chunks(%d): n must be positive", n))
	}
	out := make([][]addrspace.PageID, n)
	total := len(t.Refs)
	base := total / n
	rem := total % n
	start := 0
	for i := 0; i < n; i++ {
		size := base
		if i < rem {
			size++
		}
		out[i] = t.Refs[start : start+size]
		start += size
	}
	return out
}

// Counts returns the reference count of each page.
func (t *Trace) Counts() map[addrspace.PageID]int {
	m := make(map[addrspace.PageID]int, len(t.Refs)/4+1)
	for _, p := range t.Refs {
		m[p]++
	}
	return m
}

// FutureIndex precomputes, for each page, the sorted list of positions at
// which it is referenced in the canonical order. The Ideal policy queries it
// to find each resident page's next use after a given position.
type FutureIndex struct {
	positions map[addrspace.PageID][]int
	length    int
}

// BuildFutureIndex indexes the trace for Belady-MIN queries.
func BuildFutureIndex(t *Trace) *FutureIndex {
	pos := make(map[addrspace.PageID][]int, t.Footprint())
	for i, p := range t.Refs {
		pos[p] = append(pos[p], i)
	}
	return &FutureIndex{positions: pos, length: len(t.Refs)}
}

// Len returns the length of the indexed trace.
func (f *FutureIndex) Len() int { return f.length }

// NextUse returns the first position strictly after `after` at which page p
// is referenced, or (0, false) if p is never referenced again. after = -1
// asks for the first reference.
func (f *FutureIndex) NextUse(p addrspace.PageID, after int) (int, bool) {
	ps := f.positions[p]
	i := sort.SearchInts(ps, after+1)
	if i == len(ps) {
		return 0, false
	}
	return ps[i], true
}

// --- binary codec -----------------------------------------------------------
//
// Format (little-endian varints except the magic):
//   magic "HPET" | version byte | name length uvarint | name bytes |
//   ref count uvarint | refs as delta-zigzag varints |
//   barrier count uvarint | barriers as delta uvarints
// Delta encoding exploits the spatial locality of GPU traces: most deltas are
// tiny, so a multi-million-reference trace compresses to ~1–2 bytes/ref.
//
// The version byte distinguishes the two on-disk trace formats (DESIGN.md
// §14.3): byte traceVersionV1 is "trace v1", the stationary record layout
// above, and byte traceVersionV2 is "trace v2", which appends the phase and
// tenant annotation tables:
//   segment count uvarint | segments as (start delta, phase, gap) uvarints |
//   tenant count uvarint | tenants as (name len, name, lo delta, hi-lo) uvarints
// Write picks the version from the trace itself — an unannotated trace
// serializes byte-identically to the pre-v2 encoder, so existing .hpet files
// and their byte-level fixtures are unchanged.

var traceMagic = [4]byte{'H', 'P', 'E', 'T'}

const (
	// traceVersionV1 is the stationary trace layout ("trace v1" in the docs;
	// the byte value 2 is historical — version byte 1 predates barriers).
	traceVersionV1 = 2
	// traceVersionV2 appends the phase-segment and tenant-range tables.
	traceVersionV2 = 3
)

// ErrBadTrace is returned when decoding input that is not a valid trace.
var ErrBadTrace = errors.New("trace: malformed trace stream")

// Write encodes the trace to w in the binary trace format: the v1 layout for
// stationary traces (byte-identical to the pre-annotation encoder), the v2
// layout when phase/tenant annotations are present.
func (t *Trace) Write(w io.Writer) error {
	version := byte(traceVersionV1)
	if t.Annotated() {
		version = traceVersionV2
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(traceMagic[:]); err != nil {
		return err
	}
	if err := bw.WriteByte(version); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(len(t.Name)))
	if _, err := bw.Write(buf[:n]); err != nil {
		return err
	}
	if _, err := bw.WriteString(t.Name); err != nil {
		return err
	}
	n = binary.PutUvarint(buf[:], uint64(len(t.Refs)))
	if _, err := bw.Write(buf[:n]); err != nil {
		return err
	}
	prev := uint64(0)
	for _, p := range t.Refs {
		delta := int64(uint64(p)) - int64(prev)
		n = binary.PutVarint(buf[:], delta)
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
		prev = uint64(p)
	}
	n = binary.PutUvarint(buf[:], uint64(len(t.Barriers)))
	if _, err := bw.Write(buf[:n]); err != nil {
		return err
	}
	prevB := 0
	for _, b := range t.Barriers {
		n = binary.PutUvarint(buf[:], uint64(b-prevB))
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
		prevB = b
	}
	if version == traceVersionV2 {
		if err := t.writeAnnotations(bw, buf[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// writeAnnotations appends the v2 segment and tenant tables.
func (t *Trace) writeAnnotations(bw *bufio.Writer, buf []byte) error {
	putU := func(v uint64) error {
		n := binary.PutUvarint(buf, v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putU(uint64(len(t.Segments))); err != nil {
		return err
	}
	prevStart := 0
	for _, seg := range t.Segments {
		if err := putU(uint64(seg.Start - prevStart)); err != nil {
			return err
		}
		if err := putU(uint64(seg.Phase)); err != nil {
			return err
		}
		if err := putU(uint64(seg.Gap)); err != nil {
			return err
		}
		prevStart = seg.Start
	}
	if err := putU(uint64(len(t.Tenants))); err != nil {
		return err
	}
	prevHi := uint64(0)
	for _, ten := range t.Tenants {
		if err := putU(uint64(len(ten.Name))); err != nil {
			return err
		}
		if _, err := bw.WriteString(ten.Name); err != nil {
			return err
		}
		if err := putU(uint64(ten.Lo) - prevHi); err != nil {
			return err
		}
		if err := putU(uint64(ten.Hi - ten.Lo)); err != nil {
			return err
		}
		prevHi = uint64(ten.Hi)
	}
	return nil
}

// Read decodes a trace from r.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	if magic != traceMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadTrace, magic[:])
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	if ver != traceVersionV1 && ver != traceVersionV2 {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadTrace, ver)
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	if nameLen > 1<<20 {
		return nil, fmt.Errorf("%w: name length %d too large", ErrBadTrace, nameLen)
	}
	nameBytes := make([]byte, nameLen)
	if _, err := io.ReadFull(br, nameBytes); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	if count > 1<<32 {
		return nil, fmt.Errorf("%w: ref count %d too large", ErrBadTrace, count)
	}
	// Grow by append with a bounded initial capacity: a forged count must
	// not pre-allocate gigabytes before the stream runs dry.
	refs := make([]addrspace.PageID, 0, min(count, 1<<20))
	prev := int64(0)
	for i := uint64(0); i < count; i++ {
		delta, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: ref %d: %v", ErrBadTrace, i, err)
		}
		prev += delta
		if prev < 0 {
			return nil, fmt.Errorf("%w: negative page at ref %d", ErrBadTrace, i)
		}
		refs = append(refs, addrspace.PageID(prev))
	}
	nBarriers, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: barrier count: %v", ErrBadTrace, err)
	}
	if nBarriers > uint64(len(refs))+1 {
		return nil, fmt.Errorf("%w: %d barriers for %d refs", ErrBadTrace, nBarriers, len(refs))
	}
	barriers := make([]int, 0, min(nBarriers, 1<<16))
	acc := 0
	for i := uint64(0); i < nBarriers; i++ {
		d, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: barrier %d: %v", ErrBadTrace, i, err)
		}
		acc += int(d)
		barriers = append(barriers, acc)
	}
	t := NewWithBarriers(string(nameBytes), refs, barriers)
	if ver == traceVersionV2 {
		if err := readAnnotations(br, t); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// readAnnotations decodes the v2 segment and tenant tables, rejecting (not
// panicking on) malformed annotations: Read handles untrusted input.
func readAnnotations(br *bufio.Reader, t *Trace) error {
	nSegs, err := binary.ReadUvarint(br)
	if err != nil {
		return fmt.Errorf("%w: segment count: %v", ErrBadTrace, err)
	}
	if nSegs > uint64(len(t.Refs)) {
		return fmt.Errorf("%w: %d segments for %d refs", ErrBadTrace, nSegs, len(t.Refs))
	}
	segs := make([]Segment, 0, min(nSegs, 1<<16))
	start := 0
	for i := uint64(0); i < nSegs; i++ {
		d, err := binary.ReadUvarint(br)
		if err != nil {
			return fmt.Errorf("%w: segment %d start: %v", ErrBadTrace, i, err)
		}
		phase, err := binary.ReadUvarint(br)
		if err != nil {
			return fmt.Errorf("%w: segment %d phase: %v", ErrBadTrace, i, err)
		}
		gap, err := binary.ReadUvarint(br)
		if err != nil {
			return fmt.Errorf("%w: segment %d gap: %v", ErrBadTrace, i, err)
		}
		if i > 0 && d == 0 {
			return fmt.Errorf("%w: segment %d start not ascending", ErrBadTrace, i)
		}
		start += int(d)
		if i == 0 && start != 0 {
			return fmt.Errorf("%w: first segment starts at %d", ErrBadTrace, start)
		}
		if start > len(t.Refs) || phase > 1<<20 || gap > 1<<20 {
			return fmt.Errorf("%w: segment %d out of range", ErrBadTrace, i)
		}
		segs = append(segs, Segment{Start: start, Phase: int(phase), Gap: int(gap)})
	}
	nTen, err := binary.ReadUvarint(br)
	if err != nil {
		return fmt.Errorf("%w: tenant count: %v", ErrBadTrace, err)
	}
	if nTen > 1<<10 {
		return fmt.Errorf("%w: tenant count %d too large", ErrBadTrace, nTen)
	}
	tens := make([]TenantRange, 0, nTen)
	prevHi := uint64(0)
	for i := uint64(0); i < nTen; i++ {
		nameLen, err := binary.ReadUvarint(br)
		if err != nil {
			return fmt.Errorf("%w: tenant %d name length: %v", ErrBadTrace, i, err)
		}
		if nameLen > 1<<10 {
			return fmt.Errorf("%w: tenant %d name length %d too large", ErrBadTrace, i, nameLen)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return fmt.Errorf("%w: tenant %d name: %v", ErrBadTrace, i, err)
		}
		loD, err := binary.ReadUvarint(br)
		if err != nil {
			return fmt.Errorf("%w: tenant %d lo: %v", ErrBadTrace, i, err)
		}
		span, err := binary.ReadUvarint(br)
		if err != nil {
			return fmt.Errorf("%w: tenant %d span: %v", ErrBadTrace, i, err)
		}
		lo := prevHi + loD
		if span == 0 || lo+span < lo || lo+span > 1<<62 {
			return fmt.Errorf("%w: tenant %d range invalid", ErrBadTrace, i)
		}
		tens = append(tens, TenantRange{Name: string(name), Lo: addrspace.PageID(lo), Hi: addrspace.PageID(lo + span)})
		prevHi = lo + span
	}
	if len(segs) > 0 || len(tens) > 0 {
		t.Annotate(segs, tens)
	}
	return nil
}

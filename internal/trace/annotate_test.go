package trace

import (
	"bytes"
	"strings"
	"testing"

	"hpe/internal/addrspace"
)

func annotated() *Trace {
	tr := NewWithBarriers("colo", []addrspace.PageID{100, 200, 101, 201, 102, 202}, []int{3})
	return tr.Annotate(
		[]Segment{{Start: 0, Phase: 0, Gap: 2}, {Start: 3, Phase: 1, Gap: 5}},
		[]TenantRange{{Name: "HSD", Lo: 100, Hi: 150}, {Name: "BFS", Lo: 200, Hi: 260}},
	)
}

func TestAnnotatedCodecRoundTrip(t *testing.T) {
	tr := annotated()
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.Bytes()[4]; got != traceVersionV2 {
		t.Fatalf("annotated trace wrote version %d, want %d", got, traceVersionV2)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Annotated() {
		t.Fatal("annotations lost in round trip")
	}
	if len(got.Segments) != len(tr.Segments) {
		t.Fatalf("segments: got %d, want %d", len(got.Segments), len(tr.Segments))
	}
	for i := range tr.Segments {
		if got.Segments[i] != tr.Segments[i] {
			t.Errorf("segment %d: got %+v, want %+v", i, got.Segments[i], tr.Segments[i])
		}
	}
	if len(got.Tenants) != len(tr.Tenants) {
		t.Fatalf("tenants: got %d, want %d", len(got.Tenants), len(tr.Tenants))
	}
	for i := range tr.Tenants {
		if got.Tenants[i] != tr.Tenants[i] {
			t.Errorf("tenant %d: got %+v, want %+v", i, got.Tenants[i], tr.Tenants[i])
		}
	}
}

// TestUnannotatedWritesV1Bytes pins the satellite requirement: a stationary
// trace serializes byte-identically to the pre-annotation encoder (version
// byte 2, no trailing tables), so existing .hpet files never change.
func TestUnannotatedWritesV1Bytes(t *testing.T) {
	tr := NewWithBarriers("plain", []addrspace.PageID{7, 8, 9, 7}, []int{2})
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if b[4] != traceVersionV1 {
		t.Fatalf("unannotated trace wrote version %d, want %d", b[4], traceVersionV1)
	}
	// The v1 header is magic, version, name length, name; the stream ends at
	// the barrier table with no trailing annotation bytes.
	want := append([]byte{'H', 'P', 'E', 'T', traceVersionV1, 5}, "plain"...)
	if !bytes.HasPrefix(b, want) {
		t.Fatalf("v1 prefix changed: % x", b[:len(want)])
	}
	wantLen := len(want) + 1 /*ref count*/ + 4 /*single-byte deltas*/ + 1 /*barrier count*/ + 1 /*barrier delta*/
	if len(b) != wantLen {
		t.Fatalf("v1 stream length %d, want %d (trailing bytes would break old readers)", len(b), wantLen)
	}
	got, err := Read(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	if got.Annotated() {
		t.Fatal("v1 stream decoded with annotations")
	}
}

func TestTenantOf(t *testing.T) {
	tr := annotated()
	cases := []struct {
		p    addrspace.PageID
		want int
	}{{100, 0}, {149, 0}, {150, -1}, {200, 1}, {259, 1}, {260, -1}, {0, -1}}
	for _, c := range cases {
		if got := tr.TenantOf(c.p); got != c.want {
			t.Errorf("TenantOf(%d) = %d, want %d", c.p, got, c.want)
		}
	}
}

func TestAnnotateRejectsBadSegments(t *testing.T) {
	for name, segs := range map[string][]Segment{
		"nonzero-first":  {{Start: 1, Gap: 1}},
		"not-ascending":  {{Start: 0}, {Start: 0}},
		"past-end":       {{Start: 0}, {Start: 99}},
		"negative-gap":   {{Start: 0, Gap: -1}},
		"negative-phase": {{Start: 0, Phase: -1}},
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("Annotate accepted %v", segs)
				}
			}()
			New("x", []addrspace.PageID{1, 2, 3}).Annotate(segs, nil)
		})
	}
}

func TestAnnotateRejectsBadTenants(t *testing.T) {
	for name, tens := range map[string][]TenantRange{
		"empty-range": {{Name: "A", Lo: 5, Hi: 5}},
		"overlap":     {{Name: "A", Lo: 0, Hi: 10}, {Name: "B", Lo: 9, Hi: 20}},
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("Annotate accepted %v", tens)
				}
			}()
			New("x", []addrspace.PageID{1}).Annotate(nil, tens)
		})
	}
}

func TestReadRejectsMalformedAnnotations(t *testing.T) {
	tr := annotated()
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Truncations anywhere inside the annotation tables must error, not panic.
	for cut := len(full) - 1; cut > len(full)-12 && cut > 0; cut-- {
		if _, err := Read(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	// A v2 version byte on a v1 body must error on the missing tables.
	plain := NewWithBarriers("p", []addrspace.PageID{1, 2}, nil)
	buf.Reset()
	if err := plain.Write(&buf); err != nil {
		t.Fatal(err)
	}
	b := append([]byte(nil), buf.Bytes()...)
	b[4] = traceVersionV2
	if _, err := Read(bytes.NewReader(b)); err == nil {
		t.Error("v2 header without annotation tables accepted")
	} else if !strings.Contains(err.Error(), "segment") {
		t.Errorf("unexpected error: %v", err)
	}
}

package trace

import (
	"bytes"
	"testing"

	"hpe/internal/addrspace"
)

// FuzzRead ensures the binary codec never panics or over-allocates on
// arbitrary input, and that anything it accepts round-trips identically.
func FuzzRead(f *testing.F) {
	// Seed corpus: valid traces of several shapes plus truncations.
	seed := func(name string, refs []addrspace.PageID, barriers []int) {
		var buf bytes.Buffer
		if err := NewWithBarriers(name, refs, barriers).Write(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		if buf.Len() > 3 {
			f.Add(buf.Bytes()[:buf.Len()/2])
		}
	}
	seed("", nil, nil)
	seed("one", []addrspace.PageID{42}, nil)
	seed("span", []addrspace.PageID{0, 1 << 40, 7, 7, 3}, []int{2, 4})
	f.Add([]byte("HPET"))
	f.Add([]byte("HPET\x02\x00\x03"))
	f.Add([]byte("HPET\x03\x00\x00\x00\x00")) // v2 header, empty body
	{
		// An annotated (v2) trace plus a truncation inside its tables.
		tr := NewWithBarriers("anno", []addrspace.PageID{10, 20, 11, 21}, []int{2}).Annotate(
			[]Segment{{Start: 0, Phase: 0, Gap: 1}, {Start: 2, Phase: 1, Gap: 3}},
			[]TenantRange{{Name: "A", Lo: 10, Hi: 15}, {Name: "B", Lo: 20, Hi: 25}},
		)
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		f.Add(buf.Bytes()[:buf.Len()-3])
	}

	f.Fuzz(func(t *testing.T, raw []byte) {
		tr, err := Read(bytes.NewReader(raw))
		if err != nil {
			return // malformed input rejected: fine
		}
		// Accepted input must round-trip bit-exact semantics.
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		tr2, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if tr2.Name != tr.Name || tr2.Len() != tr.Len() || len(tr2.Barriers) != len(tr.Barriers) {
			t.Fatalf("round trip mismatch: %q/%d/%d vs %q/%d/%d",
				tr.Name, tr.Len(), len(tr.Barriers), tr2.Name, tr2.Len(), len(tr2.Barriers))
		}
		for i := range tr.Refs {
			if tr.Refs[i] != tr2.Refs[i] {
				t.Fatalf("ref %d mismatch", i)
			}
		}
		for i := range tr.Barriers {
			if tr.Barriers[i] != tr2.Barriers[i] {
				t.Fatalf("barrier %d mismatch", i)
			}
		}
		if len(tr2.Segments) != len(tr.Segments) || len(tr2.Tenants) != len(tr.Tenants) {
			t.Fatalf("annotation round trip mismatch: %d/%d vs %d/%d segments/tenants",
				len(tr.Segments), len(tr.Tenants), len(tr2.Segments), len(tr2.Tenants))
		}
		for i := range tr.Segments {
			if tr2.Segments[i] != tr.Segments[i] {
				t.Fatalf("segment %d mismatch", i)
			}
		}
		for i := range tr.Tenants {
			if tr2.Tenants[i] != tr.Tenants[i] {
				t.Fatalf("tenant %d mismatch", i)
			}
		}
	})
}

package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"hpe/internal/addrspace"
)

func pages(ids ...uint64) []addrspace.PageID {
	out := make([]addrspace.PageID, len(ids))
	for i, id := range ids {
		out[i] = addrspace.PageID(id)
	}
	return out
}

func TestFootprintCountsUniquePages(t *testing.T) {
	tr := New("t", pages(1, 2, 3, 2, 1, 1))
	if tr.Len() != 6 {
		t.Fatalf("Len = %d, want 6", tr.Len())
	}
	if tr.Footprint() != 3 {
		t.Fatalf("Footprint = %d, want 3", tr.Footprint())
	}
	// Cached path.
	if tr.Footprint() != 3 {
		t.Fatalf("cached Footprint = %d, want 3", tr.Footprint())
	}
	if tr.FootprintBytes() != 3*4096 {
		t.Fatalf("FootprintBytes = %d, want %d", tr.FootprintBytes(), 3*4096)
	}
}

func TestFootprintEmptyTrace(t *testing.T) {
	tr := New("empty", nil)
	if tr.Footprint() != 0 {
		t.Fatalf("empty footprint = %d", tr.Footprint())
	}
}

func TestUniquePagesSorted(t *testing.T) {
	tr := New("t", pages(9, 1, 5, 1, 9))
	got := tr.UniquePages()
	want := pages(1, 5, 9)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("UniquePages = %v, want %v", got, want)
	}
}

func TestChunksPartitionWithoutLossOrReorder(t *testing.T) {
	tr := New("t", pages(0, 1, 2, 3, 4, 5, 6))
	chunks := tr.Chunks(3)
	if len(chunks) != 3 {
		t.Fatalf("got %d chunks, want 3", len(chunks))
	}
	var recombined []addrspace.PageID
	for _, c := range chunks {
		recombined = append(recombined, c...)
	}
	if !reflect.DeepEqual(recombined, tr.Refs) {
		t.Fatalf("chunks recombine to %v, want %v", recombined, tr.Refs)
	}
	// Near-equal: lengths 3,2,2.
	if len(chunks[0]) != 3 || len(chunks[1]) != 2 || len(chunks[2]) != 2 {
		t.Fatalf("chunk lengths %d,%d,%d, want 3,2,2", len(chunks[0]), len(chunks[1]), len(chunks[2]))
	}
}

func TestChunksMoreChunksThanRefs(t *testing.T) {
	tr := New("t", pages(1, 2))
	chunks := tr.Chunks(5)
	nonEmpty := 0
	for _, c := range chunks {
		if len(c) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty != 2 {
		t.Fatalf("nonEmpty chunks = %d, want 2", nonEmpty)
	}
}

func TestChunksZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Chunks(0) did not panic")
		}
	}()
	New("t", nil).Chunks(0)
}

func TestCounts(t *testing.T) {
	tr := New("t", pages(7, 7, 8, 7))
	c := tr.Counts()
	if c[7] != 3 || c[8] != 1 {
		t.Fatalf("Counts = %v", c)
	}
}

func TestFutureIndexNextUse(t *testing.T) {
	tr := New("t", pages(10, 20, 10, 30, 20, 10))
	fi := BuildFutureIndex(tr)
	if fi.Len() != 6 {
		t.Fatalf("Len = %d", fi.Len())
	}
	cases := []struct {
		page  uint64
		after int
		want  int
		ok    bool
	}{
		{10, -1, 0, true},
		{10, 0, 2, true},
		{10, 2, 5, true},
		{10, 5, 0, false},
		{20, 1, 4, true},
		{30, 3, 0, false},
		{99, -1, 0, false},
	}
	for _, c := range cases {
		got, ok := fi.NextUse(addrspace.PageID(c.page), c.after)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("NextUse(%d, %d) = (%d,%v), want (%d,%v)", c.page, c.after, got, ok, c.want, c.ok)
		}
	}
}

func TestCodecRoundTrip(t *testing.T) {
	tr := New("myworkload", pages(0, 1, 100, 50, 1<<40, 3))
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name || !reflect.DeepEqual(got.Refs, tr.Refs) {
		t.Fatalf("round trip = %q %v, want %q %v", got.Name, got.Refs, tr.Name, tr.Refs)
	}
}

func TestCodecEmptyTrace(t *testing.T) {
	tr := New("", nil)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 || got.Name != "" {
		t.Fatalf("empty round trip = %q len %d", got.Name, got.Len())
	}
}

func TestCodecRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("XXXX"),
		[]byte("HPET"),         // truncated after magic
		[]byte("HPET\x01"),     // old version
		[]byte("HPET\x03"),     // future version
		[]byte("HPET\x02\x05"), // name length 5 but no name bytes
	}
	for i, raw := range cases {
		if _, err := Read(bytes.NewReader(raw)); err == nil {
			t.Errorf("case %d: Read accepted garbage", i)
		}
	}
}

func TestCodecRoundTripProperty(t *testing.T) {
	f := func(name string, raw []uint32) bool {
		refs := make([]addrspace.PageID, len(raw))
		for i, r := range raw {
			refs[i] = addrspace.PageID(r)
		}
		tr := New(name, refs)
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		if got.Name != name || got.Len() != len(refs) {
			return false
		}
		for i := range refs {
			if got.Refs[i] != refs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestProfilerBasics(t *testing.T) {
	g := addrspace.DefaultGeometry()
	// Pages 0..15 are one set; each referenced once => set counter 16.
	var refs []addrspace.PageID
	for i := 0; i < 16; i++ {
		refs = append(refs, addrspace.PageID(i))
	}
	p := Profiler(New("one-set", refs), g)
	if p.Footprint != 16 || p.SetFootprint != 1 {
		t.Fatalf("footprint=%d sets=%d, want 16 and 1", p.Footprint, p.SetFootprint)
	}
	if p.SetCounterHistogram[16] != 1 {
		t.Fatalf("histogram = %v, want {16:1}", p.SetCounterHistogram)
	}
	if p.MinPageRefs != 1 || p.MaxPageRefs != 1 || p.MeanPageRefs != 1 {
		t.Fatalf("per-page stats = %d/%f/%d", p.MinPageRefs, p.MeanPageRefs, p.MaxPageRefs)
	}
	reg, irr, small, large := p.CounterClasses(16)
	if reg != 1 || irr != 0 || small != 1 || large != 0 {
		t.Fatalf("classes = %d,%d,%d,%d", reg, irr, small, large)
	}
}

func TestProfilerCapsSetCounters(t *testing.T) {
	g := addrspace.DefaultGeometry()
	// One page referenced 1000 times: set counter caps at 64 (=4×16).
	refs := make([]addrspace.PageID, 1000)
	p := Profiler(New("hot", refs), g)
	if p.SetCounterHistogram[64] != 1 {
		t.Fatalf("histogram = %v, want cap at 64", p.SetCounterHistogram)
	}
	reg, irr, _, large := p.CounterClasses(16)
	if reg != 1 || irr != 0 || large != 1 {
		t.Fatalf("classes after cap = %d,%d,large=%d", reg, irr, large)
	}
}

func TestProfilerEmpty(t *testing.T) {
	p := Profiler(New("e", nil), addrspace.DefaultGeometry())
	if p.Footprint != 0 || p.Refs != 0 {
		t.Fatalf("empty profile = %+v", p)
	}
	_ = p.String()
}

func TestCounterClassesIrregular(t *testing.T) {
	g := addrspace.DefaultGeometry()
	// 5 references to one set: irregular (5 % 16 != 0).
	refs := pages(0, 1, 2, 3, 4)
	p := Profiler(New("irr", refs), g)
	reg, irr, _, _ := p.CounterClasses(16)
	if reg != 0 || irr != 1 {
		t.Fatalf("classes = reg %d irr %d, want 0,1", reg, irr)
	}
}

func TestReuseDistances(t *testing.T) {
	// a b c a : reuse distance of the second a is 2 (b and c in between).
	d := ReuseDistances(New("t", pages(1, 2, 3, 1)))
	if len(d) != 1 || d[0] != 2 {
		t.Fatalf("ReuseDistances = %v, want [2]", d)
	}
	// a a : distance 0.
	d = ReuseDistances(New("t", pages(1, 1)))
	if len(d) != 1 || d[0] != 0 {
		t.Fatalf("ReuseDistances = %v, want [0]", d)
	}
	// No reuse.
	d = ReuseDistances(New("t", pages(1, 2, 3)))
	if len(d) != 0 {
		t.Fatalf("ReuseDistances = %v, want empty", d)
	}
}

func TestReuseDistancesCyclic(t *testing.T) {
	// Cyclic pattern over k pages: every reuse distance is k-1.
	k := 20
	var refs []addrspace.PageID
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < k; i++ {
			refs = append(refs, addrspace.PageID(i))
		}
	}
	d := ReuseDistances(New("cyclic", refs))
	if len(d) != 2*k {
		t.Fatalf("got %d distances, want %d", len(d), 2*k)
	}
	for _, v := range d {
		if v != k-1 {
			t.Fatalf("cyclic reuse distance %d, want %d", v, k-1)
		}
	}
}

// Property: reuse-distance count always equals refs - footprint.
func TestReuseDistanceCountProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(500)
		refs := make([]addrspace.PageID, n)
		for i := range refs {
			refs[i] = addrspace.PageID(rng.Intn(50))
		}
		tr := New("rnd", refs)
		d := ReuseDistances(tr)
		if len(d) != tr.Len()-tr.Footprint() {
			t.Fatalf("trial %d: %d distances, want %d", trial, len(d), tr.Len()-tr.Footprint())
		}
		for _, v := range d {
			if v < 0 || v >= tr.Footprint() {
				t.Fatalf("trial %d: distance %d out of range [0,%d)", trial, v, tr.Footprint())
			}
		}
	}
}

func BenchmarkFutureIndexBuild(b *testing.B) {
	refs := make([]addrspace.PageID, 100000)
	rng := rand.New(rand.NewSource(1))
	for i := range refs {
		refs[i] = addrspace.PageID(rng.Intn(4096))
	}
	tr := New("bench", refs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildFutureIndex(tr)
	}
}

func BenchmarkCodecRoundTrip(b *testing.B) {
	refs := make([]addrspace.PageID, 10000)
	for i := range refs {
		refs[i] = addrspace.PageID(i % 1024)
	}
	tr := New("bench", refs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			b.Fatal(err)
		}
		if _, err := Read(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

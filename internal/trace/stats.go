package trace

import (
	"fmt"
	"sort"

	"hpe/internal/addrspace"
)

// Profile summarises a trace: size, footprint, and the distribution of
// per-page and per-page-set reference counts. The experiment harness uses it
// for Table II-style reporting and for validating that generated workloads
// exhibit the statistics the paper attributes to each application.
type Profile struct {
	Name           string
	Refs           int
	Footprint      int // unique pages
	FootprintBytes uint64
	SetFootprint   int // unique page sets (default geometry)

	// MinPageRefs/MaxPageRefs/MeanPageRefs describe the per-page count
	// distribution.
	MinPageRefs  int
	MaxPageRefs  int
	MeanPageRefs float64

	// SetCounterHistogram maps per-set total reference counts (capped the way
	// HPE's saturating counter caps, at 4× the set size) to the number of sets
	// with that count. Used to sanity-check ratio₁/ratio₂ targets.
	SetCounterHistogram map[int]int
}

// Profiler computes a Profile using the given page-set geometry.
func Profiler(t *Trace, g addrspace.Geometry) Profile {
	counts := t.Counts()
	p := Profile{
		Name:                t.Name,
		Refs:                t.Len(),
		Footprint:           len(counts),
		FootprintBytes:      uint64(len(counts)) * addrspace.PageBytes,
		SetCounterHistogram: make(map[int]int),
	}
	if len(counts) == 0 {
		return p
	}
	setCounts := make(map[addrspace.SetID]int)
	min, max, total := int(^uint(0)>>1), 0, 0
	for page, c := range counts {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
		total += c
		setCounts[g.SetOf(page)] += c
	}
	p.MinPageRefs, p.MaxPageRefs = min, max
	p.MeanPageRefs = float64(total) / float64(len(counts))
	p.SetFootprint = len(setCounts)
	cap64 := 4 * g.SetSize()
	for _, c := range setCounts {
		if c > cap64 {
			c = cap64
		}
		p.SetCounterHistogram[c]++
	}
	return p
}

// String renders the profile as a single report line.
func (p Profile) String() string {
	return fmt.Sprintf("%-6s refs=%-8d footprint=%5d pages (%.1f MB) sets=%4d refs/page min=%d mean=%.1f max=%d",
		p.Name, p.Refs, p.Footprint, float64(p.FootprintBytes)/(1<<20),
		p.SetFootprint, p.MinPageRefs, p.MeanPageRefs, p.MaxPageRefs)
}

// CounterClasses buckets the profile's set counters the way HPE's classifier
// does (Section IV-D): regular vs irregular, and small vs large among the
// regular ones. setSize is the page-set size in pages.
func (p Profile) CounterClasses(setSize int) (regular, irregular, smallRegular, largeRegular int) {
	for c, n := range p.SetCounterHistogram {
		if c%setSize == 0 {
			regular += n
			if c == setSize || c == 2*setSize {
				smallRegular += n
			}
			if c == 3*setSize || c == 4*setSize {
				largeRegular += n
			}
		} else {
			irregular += n
		}
	}
	return
}

// ReuseDistances returns the distribution of LRU stack distances (unique
// pages touched between successive references to the same page). Pages'
// first references are excluded. The result is sorted ascending. This is an
// analysis aid for classifying generated patterns; it is O(n log n) using a
// last-seen index plus a balanced count of distinct pages via a Fenwick tree.
func ReuseDistances(t *Trace) []int {
	lastSeen := make(map[addrspace.PageID]int, t.Footprint())
	// Fenwick tree over positions marking "latest occurrence" flags.
	fw := newFenwick(t.Len() + 1)
	var out []int
	for i, p := range t.Refs {
		if j, ok := lastSeen[p]; ok {
			// Distinct pages referenced in (j, i) = count of latest-occurrence
			// flags in that window.
			d := fw.sum(i) - fw.sum(j+1)
			out = append(out, d)
			fw.add(j+1, -1)
		}
		fw.add(i+1, 1)
		lastSeen[p] = i
	}
	sort.Ints(out)
	return out
}

type fenwick struct{ tree []int }

func newFenwick(n int) *fenwick { return &fenwick{tree: make([]int, n+1)} }

func (f *fenwick) add(i, v int) {
	for i++; i < len(f.tree); i += i & (-i) {
		f.tree[i] += v
	}
}

// sum returns the prefix sum over [0, i).
func (f *fenwick) sum(i int) int {
	s := 0
	for ; i > 0; i -= i & (-i) {
		s += f.tree[i]
	}
	return s
}

package ptw

import (
	"testing"

	"hpe/internal/addrspace"
)

func TestColdWalkReadsAllLevels(t *testing.T) {
	w := New(DefaultConfig())
	lat := w.WalkLatency(0x12345)
	if lat != 4*20 {
		t.Fatalf("cold walk latency = %d, want 80 (4 levels × 20)", lat)
	}
	st := w.Stats()
	if st.Walks != 1 || st.LevelsRead != 4 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRepeatWalkFullyCached(t *testing.T) {
	w := New(DefaultConfig())
	w.WalkLatency(0x100)
	lat := w.WalkLatency(0x101) // same level-1 subtree (same 512-page region)
	if lat != 20 {
		t.Fatalf("warm walk latency = %d, want 20 (leaf read only)", lat)
	}
	if st := w.Stats(); st.FullyCached != 1 {
		t.Fatalf("fullyCached = %d, want 1", st.FullyCached)
	}
}

func TestPartialPrefixReuse(t *testing.T) {
	w := New(DefaultConfig())
	w.WalkLatency(0x100)
	// Different level-1 region, same level-2 region (same 2^18-page prefix):
	// must re-read levels 2? No — level 2 is cached, so read level 1 + leaf.
	lat := w.WalkLatency(0x100 + 512)
	if lat != 2*20 {
		t.Fatalf("sibling-region walk latency = %d, want 40", lat)
	}
	// A page in a completely different top-level region: cold again.
	lat = w.WalkLatency(addrspace.PageID(1) << 27)
	if lat != 4*20 {
		t.Fatalf("far walk latency = %d, want 80", lat)
	}
}

func TestPWCCapacityEviction(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PWCEntries, cfg.PWCWays = 8, 8 // one row, easy to overflow
	w := New(cfg)
	// Touch many distinct level-1 regions to churn the row.
	for i := 0; i < 32; i++ {
		w.WalkLatency(addrspace.PageID(i) << bitsPerLevel)
	}
	// The earliest region's level-1 entry must have been evicted: its walk
	// costs more than a leaf read.
	if lat := w.WalkLatency(0); lat <= 20 {
		t.Fatalf("evicted region walk latency = %d, want > 20", lat)
	}
}

func TestMeanLevelsDecreasesWithLocality(t *testing.T) {
	w := New(DefaultConfig())
	for i := 0; i < 1000; i++ {
		w.WalkLatency(addrspace.PageID(i % 512)) // all one subtree
	}
	if st := w.Stats(); st.MeanLevels > 1.1 {
		t.Fatalf("mean levels = %.2f for a local stream, want ~1", st.MeanLevels)
	}
	cold := New(DefaultConfig())
	for i := 0; i < 1000; i++ {
		cold.WalkLatency(addrspace.PageID(i) << 27) // all distinct roots
	}
	if st := cold.Stats(); st.MeanLevels < 3.9 {
		t.Fatalf("mean levels = %.2f for a hostile stream, want ~4", st.MeanLevels)
	}
}

func TestBadConfigPanics(t *testing.T) {
	for _, cfg := range []Config{
		{PWCEntries: 0, PWCWays: 1, MemAccessLatency: 1},
		{PWCEntries: 7, PWCWays: 2, MemAccessLatency: 1},
		{PWCEntries: 8, PWCWays: 2, MemAccessLatency: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v accepted", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

// Package ptw models a hardware page-table walker over a radix page table,
// with a shared page-walk cache (PWC) over the upper levels — the *first* of
// the two address-translation designs the paper describes in §II (citing
// Power et al., HPCA'14). The paper adopts the second design (a shared L2
// TLB) "due to better performance"; this package exists so that claim can be
// reproduced as an experiment rather than taken on faith (see
// internal/experiments' "translation" study).
//
// Geometry follows x86-64 4-KB paging: a 48-bit virtual address walks four
// radix levels of 9 bits each. A walk starts below whatever prefix the PWC
// already holds; each remaining level costs one memory access.
package ptw

import (
	"fmt"

	"hpe/internal/addrspace"
	"hpe/internal/sim"
)

// Levels is the number of radix levels (PML4 → PDP → PD → PT).
const Levels = 4

// bitsPerLevel is the radix width of each level for 4-KB pages.
const bitsPerLevel = 9

// Config sizes the walker.
type Config struct {
	// PWCEntries and PWCWays size the page-walk cache (entries across all
	// cached levels; Power et al. use a small shared structure).
	PWCEntries, PWCWays int
	// MemAccessLatency is the cost in cycles of reading one page-table
	// entry from the memory hierarchy (the paper's baseline charges a fixed
	// 8-cycle walk; a real radix walk pays per level on PWC misses).
	MemAccessLatency sim.Cycle
}

// DefaultConfig returns a Power-et-al-flavoured walker: a 64-entry, 8-way
// PWC and a 20-cycle per-level memory access.
func DefaultConfig() Config {
	return Config{PWCEntries: 64, PWCWays: 8, MemAccessLatency: 20}
}

// pwcKey identifies a page-table subtree: the level and the virtual-address
// prefix that indexes it.
type pwcKey struct {
	level  int // 1..Levels-1 (the leaf PTE itself is what the TLBs cache)
	prefix uint64
}

type pwcEntry struct {
	valid bool
	key   pwcKey
	used  uint64
}

// Walker is the page-table walker with its PWC. The actual translation
// outcome (hit or fault) is decided by residency, exactly as in the
// baseline design; the walker contributes latency.
type Walker struct {
	cfg  Config
	rows int
	pwc  []pwcEntry
	tick uint64

	walks       uint64
	levelsRead  uint64
	pwcHits     uint64
	pwcLookups  uint64
	fullyCached uint64
}

// New returns a walker with an empty PWC.
func New(cfg Config) *Walker {
	if cfg.PWCEntries <= 0 || cfg.PWCWays <= 0 || cfg.PWCEntries%cfg.PWCWays != 0 {
		panic(fmt.Sprintf("ptw: bad PWC geometry %d/%d", cfg.PWCEntries, cfg.PWCWays))
	}
	if cfg.MemAccessLatency == 0 {
		panic("ptw: zero memory access latency")
	}
	return &Walker{
		cfg:  cfg,
		rows: cfg.PWCEntries / cfg.PWCWays,
		pwc:  make([]pwcEntry, cfg.PWCEntries),
	}
}

// prefixFor returns the VA prefix that indexes the page-table subtree at the
// given level for page p. Level Levels-1 is the topmost cached level (the
// PML4 entry covers the widest region).
func prefixFor(p addrspace.PageID, level int) uint64 {
	return uint64(p) >> uint(bitsPerLevel*level)
}

func (w *Walker) row(k pwcKey) []pwcEntry {
	h := k.prefix*uint64(Levels) + uint64(k.level)
	idx := int(h % uint64(w.rows))
	return w.pwc[idx*w.cfg.PWCWays : (idx+1)*w.cfg.PWCWays]
}

func (w *Walker) lookup(k pwcKey) bool {
	w.tick++
	w.pwcLookups++
	row := w.row(k)
	for i := range row {
		if row[i].valid && row[i].key == k {
			row[i].used = w.tick
			w.pwcHits++
			return true
		}
	}
	return false
}

func (w *Walker) fill(k pwcKey) {
	w.tick++
	row := w.row(k)
	victim := 0
	for i := range row {
		if row[i].valid && row[i].key == k {
			row[i].used = w.tick
			return
		}
		if !row[i].valid {
			victim = i
			break
		}
		if row[i].used < row[victim].used {
			victim = i
		}
	}
	row[victim] = pwcEntry{valid: true, key: k, used: w.tick}
}

// WalkLatency performs one radix walk for page p and returns its latency:
// the PWC is probed top-down for the deepest cached subtree, then every
// remaining level costs one memory access. The traversed upper-level entries
// are installed in the PWC.
func (w *Walker) WalkLatency(p addrspace.PageID) sim.Cycle {
	w.walks++
	// Find the deepest cached level: level 1 covers the smallest region
	// (512 pages), level 3 the largest. A hit at level l means levels above
	// l are implicitly covered.
	start := Levels // walk from the root
	for level := 1; level < Levels; level++ {
		if w.lookup(pwcKey{level: level, prefix: prefixFor(p, level)}) {
			start = level
			break
		}
	}
	if start == 1 {
		w.fullyCached++
	}
	// Read the remaining levels: start..1, plus the leaf PTE.
	reads := uint64(start)
	w.levelsRead += reads
	// Install the newly traversed subtree entries.
	for level := start - 1; level >= 1; level-- {
		w.fill(pwcKey{level: level, prefix: prefixFor(p, level)})
	}
	return sim.Cycle(reads) * w.cfg.MemAccessLatency
}

// Invalidate removes the leaf-covering PWC entry for an unmapped page's
// subtree. Upper levels stay valid (the page table structure persists); only
// the level-1 entry (the PT page covering this PTE) could go stale in a real
// system when the PT page itself is freed — we keep it, as drivers do for
// persistently allocated page tables, so this is a no-op retained for
// interface symmetry.
func (w *Walker) Invalidate(p addrspace.PageID) {}

// Stats reports walker behaviour.
type Stats struct {
	Walks       uint64
	LevelsRead  uint64
	PWCLookups  uint64
	PWCHits     uint64
	FullyCached uint64
	// MeanLevels is the average page-table reads per walk (4 = cold radix
	// walk, 1 = perfectly cached).
	MeanLevels float64
}

// Stats returns cumulative counters.
func (w *Walker) Stats() Stats {
	s := Stats{
		Walks:       w.walks,
		LevelsRead:  w.levelsRead,
		PWCLookups:  w.pwcLookups,
		PWCHits:     w.pwcHits,
		FullyCached: w.fullyCached,
	}
	if w.walks > 0 {
		s.MeanLevels = float64(w.levelsRead) / float64(w.walks)
	}
	return s
}

package server

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hpe"
	"hpe/internal/experiments"
	"hpe/internal/probe"
	"hpe/internal/runspec"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return srv, ts
}

func get(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, b
}

// --- catalog, health, validation -----------------------------------------

func TestCatalogEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	code, body := get(t, ts, "/v1/policies")
	if code != http.StatusOK {
		t.Fatalf("/v1/policies: %d: %s", code, body)
	}
	var pols []policyJSON
	if err := json.Unmarshal(body, &pols); err != nil {
		t.Fatalf("decode policies: %v", err)
	}
	found := false
	for _, p := range pols {
		if p.Name == "hpe" {
			found = true
		}
	}
	if !found {
		t.Errorf("policy registry listing lacks hpe: %s", body)
	}

	code, body = get(t, ts, "/v1/apps")
	if code != http.StatusOK {
		t.Fatalf("/v1/apps: %d: %s", code, body)
	}
	var apps []appJSON
	if err := json.Unmarshal(body, &apps); err != nil {
		t.Fatalf("decode apps: %v", err)
	}
	if len(apps) != 23 {
		t.Errorf("catalog lists %d apps, want the paper's 23", len(apps))
	}

	code, body = get(t, ts, "/v1/scenarios")
	if code != http.StatusOK {
		t.Fatalf("/v1/scenarios: %d: %s", code, body)
	}
	var scens []hpe.Scenario
	if err := json.Unmarshal(body, &scens); err != nil {
		t.Fatalf("decode scenarios: %v", err)
	}
	if len(scens) == 0 {
		t.Error("scenario catalog is empty")
	}
	for _, sc := range scens {
		if sc.Name == "" || (sc.Phases == "" && sc.Tenants == "") {
			t.Errorf("malformed scenario preset: %+v", sc)
		}
	}

	code, body = get(t, ts, "/healthz")
	if code != http.StatusOK || !bytes.Contains(body, []byte("ok")) {
		t.Errorf("/healthz: %d: %s", code, body)
	}
}

func TestSubmitRunRejectsBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	cases := []struct{ name, body string }{
		{"unknown app", `{"app":"NOPE","policy":"lru","rate":50}`},
		{"unknown policy", `{"app":"HSD","policy":"magic","rate":50}`},
		{"rate out of range", `{"app":"HSD","policy":"lru","rate":0}`},
		{"unknown field", `{"app":"HSD","policy":"lru","rate":50,"turbo":true}`},
		{"legacy nested options", `{"app":"HSD","policy":"lru","rate":50,"options":{"scale":4}}`},
		{"not json", `not json`},
		{"scale out of range", `{"app":"HSD","policy":"lru","rate":50,"scale":1000}`},
	}
	for _, tc := range cases {
		code, _, body := postRun(t, ts.Client(), ts.URL, tc.body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400: %s", tc.name, code, body)
		}
	}

	resp, err := ts.Client().Post(ts.URL+"/v1/suite", "application/json",
		strings.NewReader(`{"ids":["fig99"]}`))
	if err != nil {
		t.Fatalf("POST /v1/suite: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown experiment: status %d, want 400", resp.StatusCode)
	}
}

// TestSpecIDAgreesAcrossLayers is the cross-layer identity contract: the
// same simulation described three ways — hpesim CLI flags, a POST /v1/runs
// wire body with defaults omitted, and the experiment suite's internal
// enumeration — lands on one Spec.ID(), so all three layers share one cache
// entry. This is the omitted-vs-default hazard test: the wire body spells
// nothing beyond (app, policy, rate), the CLI spells every default
// explicitly, and the suite builds the spec programmatically.
func TestSpecIDAgreesAcrossLayers(t *testing.T) {
	// CLI path: hpesim's flag surface, defaults spelled out explicitly.
	var fl runspec.Flags
	fs := flag.NewFlagSet("hpesim", flag.ContinueOnError)
	fl.Register(fs)
	if err := fs.Parse([]string{
		"-app", "kmn", "-policy", "LRU", "-rate", "50",
		"-seed", "1", "-design", "l2tlb", "-channels", "1", "-scale", "1",
	}); err != nil {
		t.Fatalf("parse flags: %v", err)
	}
	cliID := fl.Spec().ID()

	// Server wire path: the same run with every default omitted.
	sp, err := runspec.Decode(strings.NewReader(`{"app":"KMN","policy":"lru","rate":50}`))
	if err != nil {
		t.Fatalf("decode wire body: %v", err)
	}
	serverID := sp.ID()

	// Suite path: the suite's own spec for (KMN, lru, 50), observed through
	// the probe factory's RunInfo. Options.Seed 0 is the suite's historical
	// seeding offset away from the canonical default seed 1.
	var suiteID string
	suite := experiments.NewSuite(experiments.Options{
		Quick: true,
		Probe: func(info experiments.RunInfo) probe.Probe {
			suiteID = info.ID
			return nil
		},
	})
	app, ok := hpe.WorkloadByAbbr("KMN")
	if !ok {
		t.Fatal("KMN missing from the catalog")
	}
	suite.Run(app, "lru", 50)

	if cliID != serverID || serverID != suiteID {
		t.Errorf("layers disagree on the run identity:\n cli    %s\n server %s\n suite  %s",
			cliID, serverID, suiteID)
	}
}

func TestGetRunStatus(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	srv, ts := newTestServer(t, Config{Workers: 2})

	code, body := get(t, ts, "/v1/runs/run-doesnotexist")
	if code != http.StatusNotFound {
		t.Fatalf("unknown id: %d: %s", code, body)
	}

	id := runspec.Spec{App: "BFS", Policy: "hpe", Rate: 50, Scale: 4}.ID()
	done := make(chan struct{})
	go func() {
		defer close(done)
		postRun(t, ts.Client(), ts.URL, slowRunBody)
	}()
	waitInflight(t, srv, id)

	code, body = get(t, ts, "/v1/runs/"+id)
	if code != http.StatusAccepted {
		t.Errorf("in-flight id: %d, want 202: %s", code, body)
	}
	var status struct {
		ID      string `json:"id"`
		Status  string `json:"status"`
		Waiters int    `json:"waiters"`
	}
	if err := json.Unmarshal(body, &status); err != nil {
		t.Fatalf("decode status: %v", err)
	}
	if status.Status != "running" || status.ID != id || status.Waiters < 1 {
		t.Errorf("status body: %+v", status)
	}
	<-done

	code, body = get(t, ts, "/v1/runs/"+id)
	if code != http.StatusOK {
		t.Errorf("completed id: %d, want 200 from cache: %s", code, body)
	}
	var rr RunResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatalf("decode run response: %v", err)
	}
	if rr.ID != id || rr.Result.Accesses == 0 {
		t.Errorf("run response lacks results: id=%s accesses=%d", rr.ID, rr.Result.Accesses)
	}
}

// waitInflight blocks until id's computation is registered with the
// coalescer (i.e. a leader is inside serveComputed).
func waitInflight(t *testing.T, srv *Server, id string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, running := srv.co.Inflight(id); running {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("computation never became visible to the coalescer")
		}
		time.Sleep(time.Millisecond)
	}
}

// --- cancellation ---------------------------------------------------------

// simEventsTotal sums the merged probe event counts across kinds.
func (m *serverMetrics) simEventsTotal() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var total uint64
	for _, n := range m.simEvents {
		total += n
	}
	return total
}

// TestCancelledRequestStopsSimulation is the disconnect contract: when the
// only client waiting on a run goes away, the simulation's engine stops at
// the next cancellation poll instead of running to completion. Observed via
// the probe event counts ceasing: the cancelled run merges strictly fewer
// simulator events than the same request later run to completion, no
// completion is ever recorded for it, and its partial result is never cached.
func TestCancelledRequestStopsSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	srv, ts := newTestServer(t, Config{Workers: 2})

	id := runspec.Spec{App: "BFS", Policy: "hpe", Rate: 50, Scale: 16}.ID()
	body := `{"app":"BFS","policy":"hpe","rate":50,"scale":16}`

	ctx, cancel := context.WithCancel(context.Background())
	httpReq, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/runs", strings.NewReader(body))
	if err != nil {
		t.Fatalf("build request: %v", err)
	}
	errc := make(chan error, 1)
	go func() {
		resp, err := ts.Client().Do(httpReq)
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	waitInflight(t, srv, id)
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("client Do succeeded despite cancelled context")
	}

	// The leader must classify the run as cancelled, not completed.
	deadline := time.Now().Add(60 * time.Second)
	for {
		_, completed, cancelled, failed := srv.met.runsSnapshot()
		if cancelled == 1 {
			break
		}
		if completed != 0 || failed != 0 {
			t.Fatalf("run finished as completed=%d failed=%d instead of cancelled", completed, failed)
		}
		if time.Now().After(deadline) {
			t.Fatal("run never recorded as cancelled")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Probe events have ceased: totals are stable once the engine stopped.
	partial := srv.met.simEventsTotal()
	time.Sleep(200 * time.Millisecond)
	if after := srv.met.simEventsTotal(); after != partial {
		t.Errorf("probe events still flowing after cancellation: %d -> %d", partial, after)
	}

	// The partial result must not be cached or still in flight.
	if code, b := get(t, ts, "/v1/runs/"+id); code != http.StatusNotFound {
		t.Errorf("cancelled run served from cache: %d: %s", code, b)
	}

	// The same request run to completion merges strictly more events —
	// proof the cancelled engine stopped mid-flight.
	code, _, b := postRun(t, ts.Client(), ts.URL, body)
	if code != http.StatusOK {
		t.Fatalf("re-run after cancel: %d: %s", code, b)
	}
	full := srv.met.simEventsTotal() - partial
	if full <= partial {
		t.Errorf("cancelled run merged %d events, full run %d — cancellation did not stop the engine early",
			partial, full)
	}
}

// --- backpressure ---------------------------------------------------------

func TestQueueFullRejectsWith429(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	srv, ts := newTestServer(t, Config{Workers: 1, QueueDepth: -1}) // queue depth 0

	id := runspec.Spec{App: "BFS", Policy: "hpe", Rate: 50, Scale: 4}.ID()
	done := make(chan struct{})
	go func() {
		defer close(done)
		postRun(t, ts.Client(), ts.URL, slowRunBody)
	}()
	waitInflight(t, srv, id)
	// Wait until the slow run actually holds the only worker slot (admission
	// happens inside the coalescer's computation, just after inflight).
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, running := srv.adm.Depths(); running == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("slow run never occupied the worker slot")
		}
		time.Sleep(time.Millisecond)
	}

	resp, err := ts.Client().Post(ts.URL+"/v1/runs", "application/json",
		strings.NewReader(`{"app":"KMN","policy":"lru","rate":50}`))
	if err != nil {
		t.Fatalf("POST while saturated: %v", err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("saturated server: status %d, want 429: %s", resp.StatusCode, b)
	}
	if eb, ok := DecodeError(b); !ok || eb.Code != ErrQueueFull {
		t.Errorf("429 envelope = %+v (ok=%t), want code %q", eb, ok, ErrQueueFull)
	}
	assertRetryAfter(t, resp.Header)
	if srv.adm.Rejected() == 0 {
		t.Errorf("rejection not counted")
	}
	<-done
}

// --- drain ----------------------------------------------------------------

func TestDrainRefusesNewWork(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1})
	srv.Drain()

	if code, body := get(t, ts, "/healthz"); code != http.StatusServiceUnavailable {
		t.Errorf("draining healthz: %d: %s", code, body)
	}
	code, _, body := postRun(t, ts.Client(), ts.URL, `{"app":"KMN","policy":"lru","rate":50}`)
	if code != http.StatusServiceUnavailable {
		t.Errorf("draining submit: %d, want 503: %s", code, body)
	}
	summary := srv.Close()
	if !strings.Contains(summary, "cache:") {
		t.Errorf("Close summary lacks cache stats: %q", summary)
	}
}

// --- suite sweeps ---------------------------------------------------------

func TestSuiteEndpointCachesAcrossWorkerHints(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	_, ts := newTestServer(t, Config{Workers: 4})

	post := func(body string) (int, string, []byte) {
		resp, err := ts.Client().Post(ts.URL+"/v1/suite", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST /v1/suite: %v", err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, resp.Header.Get("X-Hped-Source"), b
	}

	code, source, first := post(`{"ids":["table2"],"quick":true,"workers":1}`)
	if code != http.StatusOK || source != "simulate" {
		t.Fatalf("first sweep: %d %q: %s", code, source, first)
	}
	var sr suiteResponse
	if err := json.Unmarshal(first, &sr); err != nil {
		t.Fatalf("decode sweep: %v", err)
	}
	if len(sr.Reports) != 1 || sr.Reports[0].ID != "table2" || len(sr.Reports[0].Metrics) == 0 {
		t.Errorf("sweep reports: %+v", sr.Reports)
	}
	if sr.Request.Workers != 0 {
		t.Errorf("workers hint leaked into the cached body: %+v", sr.Request)
	}

	// Same sweep with a different parallelism hint: same content address,
	// so it must come from the cache, byte-identical.
	code, source, second := post(`{"ids":["table2"],"quick":true,"workers":8}`)
	if code != http.StatusOK || source != "cache" {
		t.Errorf("second sweep: %d %q, want 200 from cache", code, source)
	}
	if !bytes.Equal(first, second) {
		t.Errorf("sweep bodies differ across worker hints:\n%s\n%s", first, second)
	}
}

// --- metrics --------------------------------------------------------------

func TestMetricsExposition(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	_, ts := newTestServer(t, Config{Workers: 2})

	body := `{"app":"KMN","policy":"lru","rate":50}`
	if code, _, b := postRun(t, ts.Client(), ts.URL, body); code != http.StatusOK {
		t.Fatalf("seed run: %d: %s", code, b)
	}
	if code, source, _ := postRun(t, ts.Client(), ts.URL, body); code != http.StatusOK || source != "cache" {
		t.Fatalf("cache hit expected, got %d %q", code, source)
	}

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type %q lacks exposition version", ct)
	}
	text, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		`hped_requests_total{route_code="run_submit 200"} 2`,
		"hped_runs_started_total 1",
		"hped_runs_completed_total 1",
		"hped_cache_hits_total 1",
		"hped_cache_misses_total 1",
		"hped_cache_entries 1",
		`hped_cached_hit_latency_seconds_bucket{le="+Inf"} 1`,
		"hped_cached_hit_latency_seconds_count 1",
		`hped_run_latency_seconds_bucket{le="+Inf"} 1`,
		"hped_sim_events_total{kind=",
		"# TYPE hped_run_latency_seconds histogram",
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("/metrics lacks %q", want)
		}
	}
}

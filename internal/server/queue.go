package server

import (
	"context"
	"errors"
	"sync/atomic"
)

// errQueueFull is returned by admit when the bounded queue is at capacity;
// handlers translate it into 429 + Retry-After (backpressure, not failure).
var errQueueFull = errors.New("admission queue full")

// admission is the bounded admission queue in front of the simulation pool:
// at most `workers` computations run concurrently and at most `depth` more
// wait their turn. Anything beyond that is rejected immediately — the
// correct behaviour for a service whose unit of work is minutes of CPU, where
// unbounded queueing just converts overload into timeout storms.
type admission struct {
	tokens   chan struct{} // capacity workers+depth: queued + running
	slots    chan struct{} // capacity workers: running
	rejected atomic.Uint64
}

func newAdmission(workers, depth int) *admission {
	if workers < 1 {
		workers = 1
	}
	if depth < 0 {
		depth = 0
	}
	return &admission{
		tokens: make(chan struct{}, workers+depth),
		slots:  make(chan struct{}, workers),
	}
}

// admit claims a queue position, then blocks for a worker slot. It returns a
// release function on success, errQueueFull when the queue is at capacity,
// or ctx.Err() when the caller gives up while queued.
func (a *admission) admit(ctx context.Context) (release func(), err error) {
	select {
	case a.tokens <- struct{}{}:
	default:
		a.rejected.Add(1)
		return nil, errQueueFull
	}
	select {
	case a.slots <- struct{}{}:
		return func() { <-a.slots; <-a.tokens }, nil
	case <-ctx.Done():
		<-a.tokens
		return nil, ctx.Err()
	}
}

// Depths reports (queued, running) for the /metrics gauges. The two reads
// are not atomic with respect to each other; the gauges are advisory.
func (a *admission) Depths() (queued, running int) {
	running = len(a.slots)
	queued = len(a.tokens) - running
	if queued < 0 {
		queued = 0
	}
	return queued, running
}

// Rejected returns the number of admissions refused with errQueueFull.
func (a *admission) Rejected() uint64 { return a.rejected.Load() }

package server

import (
	"context"
	"errors"
	"io"
	"sync"
	"time"

	"hpe/internal/probe"
	"hpe/internal/promtext"
	"hpe/internal/respcache"
	"hpe/internal/stats"
)

// serverMetrics aggregates the daemon's operational counters and latency
// histograms. Latencies land in internal/stats power-of-two histograms
// (observed in microseconds, exported in seconds); simulation-level event
// counts are merged from each run's probe.Metrics snapshot, so /metrics
// exposes both the serving layer and the simulated machine it fronts.
type serverMetrics struct {
	mu sync.Mutex

	requests map[string]uint64 // guarded by mu; "route code" → count

	runsStarted   uint64 // guarded by mu
	runsCompleted uint64 // guarded by mu
	runsCancelled uint64 // guarded by mu
	runsFailed    uint64 // guarded by mu

	simEvents map[string]uint64 // guarded by mu; probe kind name → total events

	cachedLat stats.Histogram // guarded by mu; cache-hit responses, µs
	simLat    stats.Histogram // guarded by mu; full simulations, µs
	suiteLat  stats.Histogram // guarded by mu; suite sweeps, µs
}

func newServerMetrics() *serverMetrics {
	return &serverMetrics{
		requests:  make(map[string]uint64),
		simEvents: make(map[string]uint64),
	}
}

// observeRequest counts one HTTP response by route and status code.
func (m *serverMetrics) observeRequest(route string, code int) {
	m.mu.Lock()
	m.requests[route+" "+itoa(code)]++
	m.mu.Unlock()
}

func itoa(code int) string {
	// Status codes are three digits; avoid strconv on the request path.
	return string([]byte{byte('0' + code/100), byte('0' + code/10%10), byte('0' + code%10)})
}

// observeCachedHit records a cache-hit response latency.
func (m *serverMetrics) observeCachedHit(d time.Duration) {
	m.mu.Lock()
	m.cachedLat.Observe(uint64(d.Microseconds()))
	m.mu.Unlock()
}

// runStarted/runFinished bracket one leader computation (not coalesced
// waiters). cancelled marks runs stopped by context rather than completed.
func (m *serverMetrics) runStarted() {
	m.mu.Lock()
	m.runsStarted++
	m.mu.Unlock()
}

func (m *serverMetrics) runFinished(d time.Duration, err error, suite bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	switch {
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		m.runsCancelled++
		return
	case err != nil:
		m.runsFailed++
		return
	}
	m.runsCompleted++
	if suite {
		m.suiteLat.Observe(uint64(d.Microseconds()))
	} else {
		m.simLat.Observe(uint64(d.Microseconds()))
	}
}

// meanRunSeconds is the observed mean leader-computation latency across runs
// and sweeps, in seconds; 0 before anything has completed. The Retry-After
// estimate prices the admission backlog with it.
func (m *serverMetrics) meanRunSeconds() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	count := m.simLat.Count() + m.suiteLat.Count()
	if count == 0 {
		return 0
	}
	return float64(m.simLat.Sum()+m.suiteLat.Sum()) / float64(count) * 1e-6
}

// mergeProbe folds one run's probe snapshot into the per-kind event totals.
func (m *serverMetrics) mergeProbe(s *probe.Snapshot) {
	if s == nil {
		return
	}
	m.mu.Lock()
	for _, k := range s.Kinds {
		m.simEvents[k.Kind] += k.Count
	}
	m.mu.Unlock()
}

// simEventTotal returns the merged count for one probe kind (tests).
func (m *serverMetrics) simEventTotal(kind string) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.simEvents[kind]
}

// render writes the full Prometheus exposition, combining the metrics'
// own state with the point-in-time cache, queue, and coalescer figures the
// Server passes in.
func (m *serverMetrics) render(w io.Writer, cs respcache.Stats, queued, running int,
	rejected, coalesced uint64) {
	// Snapshot under the lock, render outside it: w is an HTTP response, and
	// a slow client scraping /metrics must not stall every request-path
	// counter update behind the socket write (hpelint/lockorder).
	m.mu.Lock()
	requests := copyCounts(m.requests)
	simEvents := copyCounts(m.simEvents)
	runsStarted, runsCompleted := m.runsStarted, m.runsCompleted
	runsCancelled, runsFailed := m.runsCancelled, m.runsFailed
	cachedLat, simLat, suiteLat := m.cachedLat, m.simLat, m.suiteLat
	m.mu.Unlock()
	p := promtext.New(w)

	p.LabelledCounter("hped_requests_total",
		"HTTP responses by route and status code.", requests, "route_code")
	p.Counter("hped_runs_started_total",
		"Leader computations started (coalesced waiters excluded).", runsStarted)
	p.Counter("hped_runs_completed_total",
		"Leader computations that ran to completion.", runsCompleted)
	p.Counter("hped_runs_cancelled_total",
		"Leader computations stopped early by cancellation.", runsCancelled)
	p.Counter("hped_runs_failed_total",
		"Leader computations that errored (including recovered panics).", runsFailed)
	p.Counter("hped_runs_coalesced_total",
		"Requests served by joining an identical in-flight computation.", coalesced)

	p.Counter("hped_cache_hits_total", "Result-cache hits.", cs.Hits)
	p.Counter("hped_cache_misses_total", "Result-cache misses.", cs.Misses)
	p.Counter("hped_cache_evictions_total", "Result-cache LRU evictions.", cs.Evictions)
	p.Gauge("hped_cache_bytes", "Bytes of response bodies held by the result cache.", float64(cs.Bytes))
	p.Gauge("hped_cache_entries", "Entries held by the result cache.", float64(cs.Entries))

	p.Gauge("hped_queue_depth", "Admitted computations waiting for a worker slot.", float64(queued))
	p.Gauge("hped_running", "Computations currently holding a worker slot.", float64(running))
	p.Counter("hped_queue_rejected_total",
		"Submissions refused with 429 because the admission queue was full.", rejected)

	p.Histogram("hped_cached_hit_latency_seconds",
		"Latency of responses served from the result cache.", &cachedLat, 1e-6)
	p.Histogram("hped_run_latency_seconds",
		"Latency of single-run simulations (leader computations).", &simLat, 1e-6)
	p.Histogram("hped_suite_latency_seconds",
		"Latency of suite sweeps (leader computations).", &suiteLat, 1e-6)

	p.LabelledCounter("hped_sim_events_total",
		"Simulator probe events aggregated across served runs, by kind.", simEvents, "kind")
}

// copyCounts duplicates a counter map so render can release the metrics
// lock before any byte reaches the response writer.
func copyCounts(src map[string]uint64) map[string]uint64 {
	out := make(map[string]uint64, len(src))
	for k, v := range src {
		out[k] = v
	}
	return out
}

package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"hpe"
	"hpe/internal/experiments"
)

// RunRequest is the wire form of POST /v1/runs: one (app, policy, rate)
// simulation plus run-scoped options. The canonicalized form — fields
// normalized, defaults made explicit — is what the content-addressed run ID
// hashes, so two requests that mean the same simulation always map to the
// same ID regardless of spelling ("clock-pro" vs "clockpro", omitted vs
// explicit defaults).
type RunRequest struct {
	// App is the workload abbreviation ("HSD"); case-insensitive on input,
	// canonicalized to the catalog spelling.
	App string `json:"app"`
	// Policy is a registry policy name or alias; canonicalized to the
	// registry key.
	Policy string `json:"policy"`
	// Rate is the oversubscription rate in percent: memory = rate% of the
	// workload footprint. Must be in (0, 100].
	Rate int `json:"rate"`
	// Options are the run-scoped knobs.
	Options RunOptions `json:"options"`
}

// RunOptions mirrors the hpesim flags that shape a single run.
type RunOptions struct {
	// Seed feeds randomised policies; 0 means the default seed 1.
	Seed int64 `json:"seed"`
	// PrefetchPages is the number of extra pages migrated per fault from
	// the same 64-KB block.
	PrefetchPages int `json:"prefetch_pages"`
	// Channels is the number of parallel fault-service channels; 0 means
	// the paper's default of 1.
	Channels int `json:"channels"`
	// Design selects the translation design: "l2tlb" (default) or "pwc".
	Design string `json:"design"`
	// DataPath turns on the Table I data-hierarchy model.
	DataPath bool `json:"datapath"`
	// MaxCycles aborts a runaway simulation; 0 means unlimited.
	MaxCycles uint64 `json:"max_cycles"`
	// Scale multiplies the workload footprint (page sets) for scale studies
	// beyond the Table II geometries; 0 means the paper's geometry (1).
	Scale int `json:"scale"`
}

// normalizeRun canonicalizes a run request in place and returns its
// content-addressed ID, or a client error describing the first invalid field.
func normalizeRun(req *RunRequest) (string, error) {
	app, ok := hpe.WorkloadByAbbr(strings.ToUpper(strings.TrimSpace(req.App)))
	if !ok {
		return "", fmt.Errorf("unknown workload %q (GET /v1/apps lists the catalog)", req.App)
	}
	req.App = app.Abbr
	info, ok := hpe.LookupPolicy(strings.TrimSpace(req.Policy))
	if !ok {
		return "", fmt.Errorf("unknown policy %q (GET /v1/policies lists the registry)", req.Policy)
	}
	req.Policy = info.Name
	if req.Rate <= 0 || req.Rate > 100 {
		return "", fmt.Errorf("rate %d out of (0,100]", req.Rate)
	}
	if req.Options.Seed == 0 {
		req.Options.Seed = 1
	}
	if req.Options.PrefetchPages < 0 {
		return "", fmt.Errorf("prefetch_pages %d must be non-negative", req.Options.PrefetchPages)
	}
	if req.Options.Channels <= 0 {
		req.Options.Channels = 1
	}
	if req.Options.Scale == 0 {
		req.Options.Scale = 1
	}
	if req.Options.Scale < 1 || req.Options.Scale > 64 {
		return "", fmt.Errorf("scale %d out of [1,64]", req.Options.Scale)
	}
	switch strings.ToLower(strings.TrimSpace(req.Options.Design)) {
	case "", "l2tlb":
		req.Options.Design = "l2tlb"
	case "pwc":
		req.Options.Design = "pwc"
	default:
		return "", fmt.Errorf("unknown translation design %q (l2tlb or pwc)", req.Options.Design)
	}
	return contentID("run", req), nil
}

// SuiteRequest is the wire form of POST /v1/suite: a whole-matrix sweep
// through the experiment harness. Workers is a scheduling hint and is
// excluded from the content address — the PR-1 determinism contract makes
// reports byte-identical at any worker count, so sweeps that differ only in
// parallelism share one cache entry.
type SuiteRequest struct {
	// IDs are the experiment IDs to run; empty means all of them.
	IDs []string `json:"ids"`
	// Quick restricts the sweep to the representative 10-app subset.
	Quick bool `json:"quick"`
	// Seed feeds randomised policies; 0 means the default seed 1.
	Seed int64 `json:"seed"`
	// Workers is a parallelism hint, capped by the server's configured
	// suite worker count. Not part of the request's identity.
	Workers int `json:"workers,omitempty"`
}

// normalizeSuite canonicalizes a suite request and returns its
// content-addressed ID.
func normalizeSuite(req *SuiteRequest) (string, error) {
	known := make(map[string]bool)
	for _, id := range experiments.IDs() {
		known[id] = true
	}
	if len(req.IDs) == 0 {
		req.IDs = experiments.IDs()
	}
	for i, id := range req.IDs {
		id = strings.TrimSpace(id)
		if !known[id] {
			return "", fmt.Errorf("unknown experiment %q", id)
		}
		req.IDs[i] = id
	}
	if req.Seed == 0 {
		req.Seed = 1
	}
	// The hint must not perturb the hash: hash a copy with Workers zeroed.
	hashed := *req
	hashed.Workers = 0
	hashed.IDs = req.IDs
	return contentID("suite", &hashed), nil
}

// contentID derives the deterministic content address of a canonicalized
// request: kind prefix + the first 16 bytes of the SHA-256 of its canonical
// JSON. Struct-field order makes the JSON — and therefore the ID — stable
// across servers and releases that share the request schema.
func contentID(kind string, req any) string {
	canon, err := json.Marshal(req)
	if err != nil {
		panic(fmt.Sprintf("server: canonical request not marshalable: %v", err))
	}
	sum := sha256.Sum256(canon)
	return kind + "-" + hex.EncodeToString(sum[:16])
}

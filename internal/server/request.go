package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"hpe/internal/experiments"
)

// POST /v1/runs takes a runspec.Spec verbatim as its wire form — the server
// has no request type of its own. runspec.Decode rejects unknown fields and
// canonicalizes, and Spec.ID() is the run's cache key, so a run submitted
// over HTTP, built from hpesim flags, or enumerated by the experiment suite
// lands on the same content address. Only the suite sweep below keeps a
// server-local request shape (its identity spans experiment IDs, not runs).

// SuiteRequest is the wire form of POST /v1/suite: a whole-matrix sweep
// through the experiment harness. Workers is a scheduling hint and is
// excluded from the content address — the PR-1 determinism contract makes
// reports byte-identical at any worker count, so sweeps that differ only in
// parallelism share one cache entry.
type SuiteRequest struct {
	// IDs are the experiment IDs to run; empty means all of them.
	IDs []string `json:"ids"`
	// Quick restricts the sweep to the representative 10-app subset.
	Quick bool `json:"quick"`
	// Seed feeds randomised policies; 0 means the default seed 1.
	Seed int64 `json:"seed"`
	// Workers is a parallelism hint, capped by the server's configured
	// suite worker count. Not part of the request's identity.
	Workers int `json:"workers,omitempty"`
}

// NormalizeSuite canonicalizes a suite request in place and returns its
// content-addressed ID. The cluster coordinator normalizes with the same
// function, so a sweep submitted to either layer lands on one ID.
func NormalizeSuite(req *SuiteRequest) (string, error) {
	known := make(map[string]bool)
	for _, id := range experiments.IDs() {
		known[id] = true
	}
	if len(req.IDs) == 0 {
		req.IDs = experiments.IDs()
	}
	for i, id := range req.IDs {
		id = strings.TrimSpace(id)
		if !known[id] {
			return "", fmt.Errorf("unknown experiment %q", id)
		}
		req.IDs[i] = id
	}
	if req.Seed == 0 {
		req.Seed = 1
	}
	// The hint must not perturb the hash: hash a copy with Workers zeroed.
	hashed := *req
	hashed.Workers = 0
	hashed.IDs = req.IDs
	return contentID("suite", &hashed), nil
}

// contentID derives the deterministic content address of a canonicalized
// request: kind prefix + the first 16 bytes of the SHA-256 of its canonical
// JSON. Struct-field order makes the JSON — and therefore the ID — stable
// across servers and releases that share the request schema.
func contentID(kind string, req any) string {
	canon, err := json.Marshal(req)
	if err != nil {
		panic(fmt.Sprintf("server: canonical request not marshalable: %v", err))
	}
	sum := sha256.Sum256(canon)
	return kind + "-" + hex.EncodeToString(sum[:16])
}

package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"

	"hpe/internal/runspec"
)

// GET /v1/runs — run enumeration. Lists every cached and in-flight
// computation ID with a short spec summary, in canonical (lexicographic) ID
// order, paginated with limit/after. The cluster coordinator reconciles
// shard state over this endpoint instead of a side channel: the union of the
// backends' listings is the cluster's run inventory.

// RunListEntry is one enumerated computation.
type RunListEntry struct {
	// ID is the content address (run-v2-… or suite-…).
	ID string `json:"id"`
	// Status is "cached" or "running".
	Status string `json:"status"`
	// Kind is "run" or "suite".
	Kind string `json:"kind"`
	// Summary is a one-line human sketch of the request ("HSD hpe @75%");
	// empty when the entry predates this server's summary index (e.g. a
	// coordinator merging an older backend).
	Summary string `json:"summary,omitempty"`
}

// RunListResponse is the GET /v1/runs body.
type RunListResponse struct {
	Runs []RunListEntry `json:"runs"`
	// Truncated reports that more entries exist past the last one returned;
	// pass after=<last id> to continue.
	Truncated bool `json:"truncated,omitempty"`
}

// listLimits bounds the page size.
const (
	defaultListLimit = 500
	maxListLimit     = 5000
)

// runSummary is the enumeration metadata recorded at submission time.
type runSummary struct {
	Kind    string
	Summary string
}

// recordSummary indexes id for GET /v1/runs. The index is pruned against
// cache + in-flight membership on every listing, so it cannot grow past the
// set of ids the server can actually answer for.
func (s *Server) recordSummary(id string, sum runSummary) {
	s.sumMu.Lock()
	s.summaries[id] = sum
	s.sumMu.Unlock()
}

// specSummary renders a run spec's one-line enumeration sketch.
func specSummary(sp runspec.Spec) string {
	src := sp.App
	switch {
	case sp.Phases != "":
		src = "phases:" + sp.Phases
	case sp.Tenants != "":
		src = "tenants:" + sp.Tenants
	}
	out := fmt.Sprintf("%s %s @%d%%", src, sp.Policy, sp.Rate)
	if v := sp.VariantLabel(); v != "" {
		out += " [" + v + "]"
	}
	return out
}

// ParseListQuery extracts the shared limit/after pagination parameters; the
// coordinator parses the identical query surface.
func ParseListQuery(r *http.Request) (limit int, after string, err error) {
	limit = defaultListLimit
	if raw := r.URL.Query().Get("limit"); raw != "" {
		limit, err = strconv.Atoi(raw)
		if err != nil || limit < 1 {
			return 0, "", fmt.Errorf("limit must be a positive integer, got %q", raw)
		}
		if limit > maxListLimit {
			limit = maxListLimit
		}
	}
	return limit, r.URL.Query().Get("after"), nil
}

// ListRuns enumerates the server's cached and in-flight computations in
// canonical ID order, applying limit/after pagination.
func (s *Server) ListRuns(limit int, after string) RunListResponse {
	cached := s.cache.IDs()
	inflight := s.co.InflightIDs()

	status := make(map[string]string, len(cached)+len(inflight))
	for _, id := range inflight {
		status[id] = "running"
	}
	for _, id := range cached {
		status[id] = "cached" // a cached entry wins: the bytes are final
	}
	ids := make([]string, 0, len(status))
	for id := range status {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	// Prune the summary index down to ids the server can still answer for.
	live := make(map[string]bool, len(ids))
	for _, id := range ids {
		live[id] = true
	}
	s.sumMu.Lock()
	for id := range s.summaries {
		if !live[id] {
			delete(s.summaries, id)
		}
	}
	sums := make(map[string]runSummary, len(ids))
	for id, sum := range s.summaries {
		sums[id] = sum
	}
	s.sumMu.Unlock()

	var out RunListResponse
	for _, id := range ids {
		if after != "" && id <= after {
			continue
		}
		if len(out.Runs) == limit {
			out.Truncated = true
			break
		}
		sum := sums[id]
		if sum.Kind == "" {
			sum.Kind = kindOfID(id)
		}
		out.Runs = append(out.Runs, RunListEntry{ID: id, Status: status[id],
			Kind: sum.Kind, Summary: sum.Summary})
	}
	return out
}

// kindOfID classifies an ID by its content-address prefix when no summary
// was recorded.
func kindOfID(id string) string {
	if len(id) >= 6 && id[:6] == "suite-" {
		return "suite"
	}
	return "run"
}

func (s *Server) handleListRuns(w http.ResponseWriter, r *http.Request) {
	const route = "run_list"
	limit, after, err := ParseListQuery(r)
	if err != nil {
		s.writeError(w, route, http.StatusBadRequest, ErrBadSpec, err.Error(), "")
		return
	}
	body, err := json.Marshal(s.ListRuns(limit, after))
	if err != nil {
		s.writeError(w, route, http.StatusInternalServerError, ErrInternal, err.Error(), "")
		return
	}
	s.writeBody(w, route, http.StatusOK, "", append(body, '\n'))
}

package server

import (
	"container/list"
	"sync"
)

// resultCache is the content-addressed result cache: an LRU over rendered
// response bodies keyed by run ID, bounded by a byte budget rather than an
// entry count (a suite sweep's body is thousands of times larger than a
// single run's). Because IDs are content addresses of canonicalized requests
// and every simulation is deterministic, a hit is byte-identical to what a
// fresh simulation would render — the cache can never serve a stale or
// wrong body, only save the minutes it would take to recompute one.
type resultCache struct {
	mu     sync.Mutex
	budget int64                    // immutable after construction
	bytes  int64                    // guarded by mu
	ll     *list.List               // guarded by mu; front = most recently used
	items  map[string]*list.Element // guarded by mu

	hits, misses, evictions uint64 // guarded by mu
}

type cacheEntry struct {
	id   string
	body []byte
}

// newResultCache builds a cache with the given byte budget. A budget <= 0
// disables caching (every Get misses, Put is a no-op).
func newResultCache(budget int64) *resultCache {
	return &resultCache{
		budget: budget,
		ll:     list.New(),
		items:  make(map[string]*list.Element),
	}
}

// Get returns the cached body for id, marking it most recently used.
func (c *resultCache) Get(id string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[id]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// Put inserts body under id, evicting least-recently-used entries until the
// byte budget holds. A body larger than the whole budget is not cached.
// Callers must not mutate body after handing it over.
func (c *resultCache) Put(id string, body []byte) {
	if int64(len(body)) > c.budget {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[id]; ok {
		// Deterministic results make re-insertion a no-op byte-wise; just
		// refresh recency.
		c.ll.MoveToFront(el)
		return
	}
	c.ll.PushFront(&cacheEntry{id: id, body: body})
	c.items[id] = c.ll.Front()
	c.bytes += int64(len(body))
	for c.bytes > c.budget {
		oldest := c.ll.Back()
		if oldest == nil {
			break
		}
		ent := oldest.Value.(*cacheEntry)
		c.ll.Remove(oldest)
		delete(c.items, ent.id)
		c.bytes -= int64(len(ent.body))
		c.evictions++
	}
}

// cacheStats is a point-in-time snapshot for /metrics and shutdown logging.
type cacheStats struct {
	Entries   int
	Bytes     int64
	Budget    int64
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// Stats snapshots the cache counters.
func (c *resultCache) Stats() cacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return cacheStats{
		Entries:   len(c.items),
		Bytes:     c.bytes,
		Budget:    c.budget,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}

package server

import (
	"strings"
	"sync"
	"testing"
	"time"

	"hpe/internal/respcache"
)

// lockProbeWriter observes, at every Write, whether the metrics mutex is
// held. render must have released it before the first byte heads for the
// response writer — a slow scraper must not stall the request path
// (hpelint/lockorder).
type lockProbeWriter struct {
	mu       *sync.Mutex
	out      strings.Builder
	wrote    bool
	heldLock bool
}

func (p *lockProbeWriter) Write(b []byte) (int, error) {
	p.wrote = true
	if p.mu.TryLock() {
		p.mu.Unlock()
	} else {
		p.heldLock = true
	}
	return p.out.Write(b)
}

func TestRenderReleasesLockBeforeWriting(t *testing.T) {
	m := newServerMetrics()
	m.observeRequest("run_submit", 200)
	m.runStarted()
	m.runFinished(10*time.Millisecond, nil, false)
	m.observeCachedHit(time.Millisecond)

	pw := &lockProbeWriter{mu: &m.mu}
	m.render(pw, respcache.Stats{Hits: 3, Misses: 1}, 2, 1, 0, 0)

	if !pw.wrote {
		t.Fatal("render wrote nothing")
	}
	if pw.heldLock {
		t.Error("render held serverMetrics.mu during a response write; snapshot state and render outside the lock")
	}
	for _, want := range []string{
		`hped_requests_total{route_code="run_submit 200"} 1`,
		"hped_runs_started_total 1",
		"hped_runs_completed_total 1",
		"hped_cache_hits_total 3",
		"hped_queue_depth 2",
	} {
		if !strings.Contains(pw.out.String(), want) {
			t.Errorf("render output missing %q", want)
		}
	}
}

package server

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSoak drives a 4-worker daemon with a saturation burst plus 500 mixed
// requests and checks the serving invariants hold under load: every response
// is an expected status, backpressure produces 429s instead of unbounded
// queueing, the mix is dominated by cache hits, and — after the server shuts
// down — no goroutines have leaked. The p99 cached-hit latency is recovered
// from the /metrics histogram the way an operator would read it.
func TestSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	baseline := runtime.NumGoroutine()

	srv := New(Config{Workers: 4, QueueDepth: 8})
	ts := httptest.NewServer(srv.Handler())
	client := ts.Client()
	client.Transport.(*http.Transport).MaxIdleConnsPerHost = 64

	post := func(path, body string) (int, error) {
		resp, err := client.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			return 0, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode, nil
	}

	// Phase 1 — saturation burst: 32 distinct computations against 4 workers
	// and 8 queue slots. At most 12 can be queued-or-running at once, so with
	// all 32 in flight simultaneously the admission queue must reject some.
	var (
		burstWG  sync.WaitGroup
		rejected atomic.Uint64
		start    = make(chan struct{})
	)
	for i := 0; i < 32; i++ {
		burstWG.Add(1)
		go func(i int) {
			defer burstWG.Done()
			body := fmt.Sprintf(`{"app":"BFS","policy":"lru","rate":%d,"scale":2}`, 40+i)
			<-start
			code, err := post("/v1/runs", body)
			if err != nil {
				t.Errorf("burst %d: %v", i, err)
				return
			}
			switch code {
			case http.StatusOK:
			case http.StatusTooManyRequests:
				rejected.Add(1)
			default:
				t.Errorf("burst %d: unexpected status %d", i, code)
			}
		}(i)
	}
	close(start)
	burstWG.Wait()
	if rejected.Load() == 0 {
		t.Errorf("32 concurrent distinct runs against capacity 12 produced no 429s")
	}
	t.Logf("burst: %d/32 rejected with 429", rejected.Load())

	// Phase 2 — 500 mixed requests from 16 clients: mostly repeats of a
	// small working set (cache hits after first computation), plus status
	// reads, catalog reads, and invalid submissions.
	workingSet := []string{
		`{"app":"KMN","policy":"lru","rate":50}`,
		`{"app":"KMN","policy":"hpe","rate":75}`,
		`{"app":"NW","policy":"lru","rate":50}`,
		`{"app":"MVT","policy":"random","rate":75}`,
		`{"app":"STN","policy":"hpe","rate":50}`,
		`{"app":"B+T","policy":"fifo","rate":75}`,
	}
	const total = 500
	var (
		mixWG sync.WaitGroup
		codes [16]map[int]int
	)
	for w := 0; w < 16; w++ {
		mixWG.Add(1)
		go func(w int) {
			defer mixWG.Done()
			codes[w] = make(map[int]int)
			for i := w; i < total; i += 16 {
				var code int
				var err error
				switch {
				case i%29 == 0: // sprinkle of invalid requests
					code, err = post("/v1/runs", `{"app":"NOPE","policy":"lru","rate":50}`)
				case i%13 == 0: // status / catalog reads
					resp, gerr := client.Get(ts.URL + "/v1/policies")
					if gerr == nil {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
						code = resp.StatusCode
					}
					err = gerr
				default:
					code, err = post("/v1/runs", workingSet[i%len(workingSet)])
				}
				if err != nil {
					t.Errorf("worker %d req %d: %v", w, i, err)
					return
				}
				codes[w][code]++
			}
		}(w)
	}
	mixWG.Wait()

	seen := make(map[int]int)
	for _, m := range codes {
		for code, n := range m {
			seen[code] += n
		}
	}
	for code := range seen {
		switch code {
		case http.StatusOK, http.StatusBadRequest, http.StatusTooManyRequests:
		default:
			t.Errorf("unexpected status %d under load (%d times)", code, seen[code])
		}
	}
	t.Logf("mixed phase codes: %v", seen)

	cs := srv.cache.Snapshot()
	if cs.Hits == 0 {
		t.Errorf("soak produced no cache hits: %+v", cs)
	}

	// p99 cached-hit latency, read from the exposition like an operator.
	resp, err := client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	p99, count := histogramQuantile(t, string(text), "hped_cached_hit_latency_seconds", 0.99)
	if count == 0 {
		t.Errorf("cached-hit latency histogram is empty after a soak full of hits")
	}
	t.Logf("cached-hit latency: p99 <= %gs over %d hits", p99, count)

	// Shutdown, then verify nothing leaked: every handler, waiter, and
	// detached computation goroutine must be gone.
	ts.Close()
	t.Log(srv.Close())
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC() // flush idle connection goroutines promptly
		now := runtime.NumGoroutine()
		if now <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d at start, %d after shutdown\n%s", baseline, now, buf[:n])
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// histogramQuantile recovers an upper bound for the q-quantile from the
// Prometheus text exposition's cumulative buckets of the named histogram.
func histogramQuantile(t *testing.T, text, name string, q float64) (upper float64, count uint64) {
	t.Helper()
	prefix := name + `_bucket{le="`
	type bucket struct {
		le  float64
		cum uint64
	}
	var buckets []bucket
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		rest := line[len(prefix):]
		end := strings.Index(rest, `"} `)
		if end < 0 {
			t.Fatalf("malformed bucket line %q", line)
		}
		leStr, cumStr := rest[:end], rest[end+3:]
		cum, err := strconv.ParseUint(cumStr, 10, 64)
		if err != nil {
			t.Fatalf("bucket count in %q: %v", line, err)
		}
		if leStr == "+Inf" {
			count = cum
			buckets = append(buckets, bucket{le: -1, cum: cum})
			continue
		}
		le, err := strconv.ParseFloat(leStr, 64)
		if err != nil {
			t.Fatalf("bucket bound in %q: %v", line, err)
		}
		buckets = append(buckets, bucket{le: le, cum: cum})
	}
	if count == 0 {
		return 0, 0
	}
	target := uint64(q * float64(count))
	for _, b := range buckets {
		if b.le >= 0 && b.cum > target {
			return b.le, count
		}
	}
	return -1, count // only the +Inf bucket covers the quantile
}

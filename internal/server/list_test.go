package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"testing"
)

// --- v1 error envelope ----------------------------------------------------

// TestErrorEnvelopeCodes pins the typed error vocabulary: every rejection
// carries the machine-readable {"error":{"code",...}} envelope with the code
// a client (or the cluster coordinator) can switch on.
func TestErrorEnvelopeCodes(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1})

	// Invalid spec → bad_spec.
	code, _, body := postRun(t, ts.Client(), ts.URL, `{"app":"NOPE","policy":"lru","rate":75}`)
	if code != http.StatusBadRequest {
		t.Fatalf("bad spec: status %d: %s", code, body)
	}
	eb, ok := DecodeError(body)
	if !ok || eb.Code != ErrBadSpec {
		t.Errorf("bad spec envelope = %+v (ok=%t), want code %q", eb, ok, ErrBadSpec)
	}
	if eb.Message == "" {
		t.Error("bad_spec envelope has no message")
	}

	// Trace-file source → bad_spec: the file lives on the client's disk, not
	// the server's, and its content is outside the spec's content address.
	code, _, body = postRun(t, ts.Client(), ts.URL, `{"app":"trace:runs/colo.hpet","policy":"lru","rate":75}`)
	if code != http.StatusBadRequest {
		t.Fatalf("trace source: status %d: %s", code, body)
	}
	if eb, ok = DecodeError(body); !ok || eb.Code != ErrBadSpec {
		t.Errorf("trace-source envelope = %+v (ok=%t), want code %q", eb, ok, ErrBadSpec)
	} else if !strings.Contains(eb.Message, "trace") {
		t.Errorf("trace-source rejection message unclear: %q", eb.Message)
	}

	// Unknown run ID → not_found, echoing the ID the client asked for.
	code, body = get(t, ts, "/v1/runs/run-v2-00000000000000000000000000000000")
	if code != http.StatusNotFound {
		t.Fatalf("unknown id: status %d: %s", code, body)
	}
	if eb, ok = DecodeError(body); !ok || eb.Code != ErrNotFound {
		t.Errorf("not-found envelope = %+v (ok=%t), want code %q", eb, ok, ErrNotFound)
	}
	if eb.RunID != "run-v2-00000000000000000000000000000000" {
		t.Errorf("not-found envelope run_id = %q, want the requested id", eb.RunID)
	}

	// Bad pagination → bad_spec.
	if code, body = get(t, ts, "/v1/runs?limit=zero"); code != http.StatusBadRequest {
		t.Fatalf("bad limit: status %d: %s", code, body)
	}
	if eb, ok = DecodeError(body); !ok || eb.Code != ErrBadSpec {
		t.Errorf("bad-limit envelope = %+v (ok=%t), want code %q", eb, ok, ErrBadSpec)
	}

	// Draining → draining, with a Retry-After pacing hint.
	srv.Drain()
	resp, err := ts.Client().Post(ts.URL+"/v1/runs", "application/json",
		strings.NewReader(`{"app":"KMN","policy":"lru","rate":50}`))
	if err != nil {
		t.Fatalf("POST while draining: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining: status %d", resp.StatusCode)
	}
	var env ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("decode draining envelope: %v", err)
	}
	if env.Err.Code != ErrDraining {
		t.Errorf("draining envelope code = %q, want %q", env.Err.Code, ErrDraining)
	}
	assertRetryAfter(t, resp.Header)
}

// assertRetryAfter checks the Retry-After header is a usable number of
// seconds — an integer in [1, 300] — not merely present.
func assertRetryAfter(t *testing.T, h http.Header) {
	t.Helper()
	raw := h.Get("Retry-After")
	if raw == "" {
		t.Error("backpressure response lacks Retry-After")
		return
	}
	sec, err := strconv.Atoi(raw)
	if err != nil || sec < 1 || sec > 300 {
		t.Errorf("Retry-After = %q, want an integer in [1, 300]", raw)
	}
}

// --- GET /v1/runs ---------------------------------------------------------

func TestListRunsEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	_, ts := newTestServer(t, Config{Workers: 2})

	// Empty server → empty listing, not an error.
	code, body := get(t, ts, "/v1/runs")
	if code != http.StatusOK {
		t.Fatalf("empty list: status %d: %s", code, body)
	}
	var empty RunListResponse
	if err := json.Unmarshal(body, &empty); err != nil {
		t.Fatal(err)
	}
	if len(empty.Runs) != 0 || empty.Truncated {
		t.Fatalf("empty server lists %+v", empty)
	}

	specs := []string{
		`{"app":"HOT","policy":"lru","rate":75}`,
		`{"app":"STN","policy":"lru","rate":75}`,
		`{"app":"KMN","policy":"lru","rate":50}`,
	}
	ids := make(map[string]bool, len(specs))
	for _, sp := range specs {
		code, _, body := postRun(t, ts.Client(), ts.URL, sp)
		if code != http.StatusOK {
			t.Fatalf("run: status %d: %s", code, body)
		}
		var rr RunResponse
		if err := json.Unmarshal(body, &rr); err != nil {
			t.Fatal(err)
		}
		ids[rr.ID] = true
	}

	code, body = get(t, ts, "/v1/runs")
	if code != http.StatusOK {
		t.Fatalf("list: status %d: %s", code, body)
	}
	var list RunListResponse
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Runs) != len(specs) {
		t.Fatalf("listed %d runs, want %d: %+v", len(list.Runs), len(specs), list.Runs)
	}
	for i, e := range list.Runs {
		if !ids[e.ID] {
			t.Errorf("unexpected entry %+v", e)
		}
		if e.Status != "cached" || e.Kind != "run" {
			t.Errorf("entry %+v: want status cached, kind run", e)
		}
		if e.Summary == "" {
			t.Errorf("entry %s has no spec summary", e.ID)
		}
		if i > 0 && list.Runs[i-1].ID >= e.ID {
			t.Errorf("listing out of canonical order: %q before %q", list.Runs[i-1].ID, e.ID)
		}
	}

	// Pagination: limit=1 pages walk the same set in the same order, the
	// after parameter is exclusive, and Truncated flags every non-final page.
	var walked []string
	after := ""
	pages := 0
	for {
		path := "/v1/runs?limit=1"
		if after != "" {
			path += "&after=" + url.QueryEscape(after)
		}
		code, body := get(t, ts, path)
		if code != http.StatusOK {
			t.Fatalf("page: status %d", code)
		}
		var page RunListResponse
		if err := json.Unmarshal(body, &page); err != nil {
			t.Fatal(err)
		}
		if len(page.Runs) > 1 {
			t.Fatalf("page holds %d entries, limit was 1", len(page.Runs))
		}
		if len(page.Runs) == 0 {
			break
		}
		walked = append(walked, page.Runs[0].ID)
		if pages++; pages > len(specs) {
			t.Fatal("pagination never terminates")
		}
		if !page.Truncated {
			break
		}
		after = page.Runs[0].ID
	}
	if len(walked) != len(list.Runs) {
		t.Fatalf("pagination walked %d entries, full listing has %d", len(walked), len(list.Runs))
	}
	for i, e := range list.Runs {
		if walked[i] != e.ID {
			t.Errorf("pagination order diverges at %d: %q vs %q", i, walked[i], e.ID)
		}
	}

	// after past the end → empty page, no Truncated.
	code, body = get(t, ts, "/v1/runs?after="+url.QueryEscape(walked[len(walked)-1]))
	if code != http.StatusOK {
		t.Fatalf("tail page: status %d", code)
	}
	var tail RunListResponse
	if err := json.Unmarshal(body, &tail); err != nil {
		t.Fatal(err)
	}
	if len(tail.Runs) != 0 || tail.Truncated {
		t.Fatalf("page past the end lists %+v", tail)
	}
}

func TestParseListQuery(t *testing.T) {
	mk := func(query string) *http.Request {
		return httptest.NewRequest(http.MethodGet, "/v1/runs?"+query, nil)
	}
	if limit, after, err := ParseListQuery(mk("")); err != nil || limit != defaultListLimit || after != "" {
		t.Errorf("defaults: limit=%d after=%q err=%v", limit, after, err)
	}
	if limit, _, err := ParseListQuery(mk("limit=7")); err != nil || limit != 7 {
		t.Errorf("explicit limit: %d, %v", limit, err)
	}
	if limit, _, err := ParseListQuery(mk("limit=999999")); err != nil || limit != maxListLimit {
		t.Errorf("oversized limit should clamp to %d, got %d, %v", maxListLimit, limit, err)
	}
	for _, bad := range []string{"limit=0", "limit=-3", "limit=ten"} {
		if _, _, err := ParseListQuery(mk(bad)); err == nil {
			t.Errorf("%s accepted", bad)
		}
	}
	if _, after, err := ParseListQuery(mk("after=run-v2-abc")); err != nil || after != "run-v2-abc" {
		t.Errorf("after: %q, %v", after, err)
	}
}

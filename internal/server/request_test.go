package server

import (
	"strings"
	"testing"

	"hpe/internal/runspec"
)

// TestRunWireFormCanonicalizes checks the POST /v1/runs wire path: bodies
// meaning the same simulation — alias spellings, omitted vs explicit
// defaults — decode to one canonical spec and therefore one content address.
// (The canonicalization rules themselves are tested in internal/runspec;
// this test pins the server's use of them as its wire form.)
func TestRunWireFormCanonicalizes(t *testing.T) {
	bodies := []string{
		`{"app":" hsd ","policy":"clock-pro","rate":75}`,
		`{"app":"HSD","policy":"clockpro","rate":75,"seed":1,"channels":1,"design":"L2TLB","scale":1}`,
		`{"app":"HSD","policy":"clockpro","rate":75,"hir":"auto"}`,
	}
	var want string
	for i, body := range bodies {
		sp, err := runspec.Decode(strings.NewReader(body))
		if err != nil {
			t.Fatalf("decode body %d: %v", i, err)
		}
		if i == 0 {
			want = sp.ID()
			continue
		}
		if got := sp.ID(); got != want {
			t.Errorf("body %d hashed differently: %s vs %s", i, got, want)
		}
	}
	if !strings.HasPrefix(want, "run-"+runspec.IDVersion+"-") {
		t.Errorf("run ID %q lacks versioned kind prefix", want)
	}

	sp, err := runspec.Decode(strings.NewReader(`{"app":"HSD","policy":"clock-pro","rate":50}`))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if sp.ID() == want {
		t.Errorf("different rates share a content address")
	}
}

// TestRunWireFormRejectsInvalid checks that malformed bodies fail decoding
// instead of aliasing onto some valid run's content address.
func TestRunWireFormRejectsInvalid(t *testing.T) {
	cases := []struct {
		name string
		body string
	}{
		{"unknown app", `{"app":"NOPE","policy":"lru","rate":50}`},
		{"unknown policy", `{"app":"HSD","policy":"magic","rate":50}`},
		{"rate zero", `{"app":"HSD","policy":"lru","rate":0}`},
		{"negative prefetch", `{"app":"HSD","policy":"lru","rate":50,"prefetch_pages":-1}`},
		{"bad design", `{"app":"HSD","policy":"lru","rate":50,"design":"tlbless"}`},
		{"scale too large", `{"app":"HSD","policy":"lru","rate":50,"scale":65}`},
		{"unknown field", `{"app":"HSD","policy":"lru","rate":50,"prefetch":2}`},
		{"legacy nested options", `{"app":"HSD","policy":"lru","rate":50,"options":{"scale":4}}`},
	}
	for _, tc := range cases {
		if _, err := runspec.Decode(strings.NewReader(tc.body)); err == nil {
			t.Errorf("%s: accepted %s", tc.name, tc.body)
		}
	}
}

// TestNormalizeSuiteWorkersHintExcluded checks the PR-1 determinism contract
// is reflected in the content address: sweeps differing only in the
// parallelism hint share one ID (and therefore one cache entry).
func TestNormalizeSuiteWorkersHintExcluded(t *testing.T) {
	a := SuiteRequest{IDs: []string{"fig10"}, Quick: true, Workers: 1}
	b := SuiteRequest{IDs: []string{"fig10"}, Quick: true, Workers: 8}
	idA, err := NormalizeSuite(&a)
	if err != nil {
		t.Fatalf("normalize a: %v", err)
	}
	idB, err := NormalizeSuite(&b)
	if err != nil {
		t.Fatalf("normalize b: %v", err)
	}
	if idA != idB {
		t.Errorf("workers hint perturbed the content address: %s vs %s", idA, idB)
	}
	if a.Seed != 1 {
		t.Errorf("default seed not made explicit: %+v", a)
	}

	c := SuiteRequest{IDs: []string{"fig10"}, Quick: false}
	idC, err := NormalizeSuite(&c)
	if err != nil {
		t.Fatalf("normalize c: %v", err)
	}
	if idC == idA {
		t.Errorf("quick and full sweeps share a content address")
	}

	d := SuiteRequest{IDs: []string{"fig99"}}
	if _, err := NormalizeSuite(&d); err == nil {
		t.Errorf("unknown experiment accepted")
	}

	e := SuiteRequest{}
	if _, err := NormalizeSuite(&e); err != nil {
		t.Fatalf("empty IDs (meaning all): %v", err)
	}
	if len(e.IDs) == 0 {
		t.Errorf("empty IDs not expanded to the full catalog")
	}
}

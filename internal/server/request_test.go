package server

import (
	"strings"
	"testing"
)

// TestNormalizeRunCanonicalizes checks that requests meaning the same
// simulation map to the same content address regardless of spelling, and
// that the normalized form has every default made explicit.
func TestNormalizeRunCanonicalizes(t *testing.T) {
	a := RunRequest{App: " hsd ", Policy: "clock-pro", Rate: 75}
	b := RunRequest{App: "HSD", Policy: "clockpro", Rate: 75,
		Options: RunOptions{Seed: 1, Channels: 1, Design: "L2TLB", Scale: 1}}
	idA, err := normalizeRun(&a)
	if err != nil {
		t.Fatalf("normalize a: %v", err)
	}
	idB, err := normalizeRun(&b)
	if err != nil {
		t.Fatalf("normalize b: %v", err)
	}
	if idA != idB {
		t.Errorf("alias spellings hashed differently: %s vs %s", idA, idB)
	}
	if !strings.HasPrefix(idA, "run-") {
		t.Errorf("run ID %q lacks kind prefix", idA)
	}
	if a.App != "HSD" || a.Policy != b.Policy {
		t.Errorf("canonical form not rewritten in place: %+v", a)
	}
	if a.Options.Seed != 1 || a.Options.Channels != 1 || a.Options.Design != "l2tlb" || a.Options.Scale != 1 {
		t.Errorf("defaults not made explicit: %+v", a.Options)
	}

	c := RunRequest{App: "HSD", Policy: "clock-pro", Rate: 50}
	idC, err := normalizeRun(&c)
	if err != nil {
		t.Fatalf("normalize c: %v", err)
	}
	if idC == idA {
		t.Errorf("different rates share a content address")
	}
}

func TestNormalizeRunRejectsInvalid(t *testing.T) {
	cases := []struct {
		name string
		req  RunRequest
	}{
		{"unknown app", RunRequest{App: "NOPE", Policy: "lru", Rate: 50}},
		{"unknown policy", RunRequest{App: "HSD", Policy: "magic", Rate: 50}},
		{"rate zero", RunRequest{App: "HSD", Policy: "lru", Rate: 0}},
		{"rate over 100", RunRequest{App: "HSD", Policy: "lru", Rate: 101}},
		{"negative prefetch", RunRequest{App: "HSD", Policy: "lru", Rate: 50,
			Options: RunOptions{PrefetchPages: -1}}},
		{"bad design", RunRequest{App: "HSD", Policy: "lru", Rate: 50,
			Options: RunOptions{Design: "tlbless"}}},
		{"scale too large", RunRequest{App: "HSD", Policy: "lru", Rate: 50,
			Options: RunOptions{Scale: 65}}},
		{"negative scale", RunRequest{App: "HSD", Policy: "lru", Rate: 50,
			Options: RunOptions{Scale: -2}}},
	}
	for _, tc := range cases {
		req := tc.req
		if _, err := normalizeRun(&req); err == nil {
			t.Errorf("%s: accepted %+v", tc.name, tc.req)
		}
	}
}

// TestNormalizeSuiteWorkersHintExcluded checks the PR-1 determinism contract
// is reflected in the content address: sweeps differing only in the
// parallelism hint share one ID (and therefore one cache entry).
func TestNormalizeSuiteWorkersHintExcluded(t *testing.T) {
	a := SuiteRequest{IDs: []string{"fig10"}, Quick: true, Workers: 1}
	b := SuiteRequest{IDs: []string{"fig10"}, Quick: true, Workers: 8}
	idA, err := normalizeSuite(&a)
	if err != nil {
		t.Fatalf("normalize a: %v", err)
	}
	idB, err := normalizeSuite(&b)
	if err != nil {
		t.Fatalf("normalize b: %v", err)
	}
	if idA != idB {
		t.Errorf("workers hint perturbed the content address: %s vs %s", idA, idB)
	}
	if a.Seed != 1 {
		t.Errorf("default seed not made explicit: %+v", a)
	}

	c := SuiteRequest{IDs: []string{"fig10"}, Quick: false}
	idC, err := normalizeSuite(&c)
	if err != nil {
		t.Fatalf("normalize c: %v", err)
	}
	if idC == idA {
		t.Errorf("quick and full sweeps share a content address")
	}

	d := SuiteRequest{IDs: []string{"fig99"}}
	if _, err := normalizeSuite(&d); err == nil {
		t.Errorf("unknown experiment accepted")
	}

	e := SuiteRequest{}
	if _, err := normalizeSuite(&e); err != nil {
		t.Fatalf("empty IDs (meaning all): %v", err)
	}
	if len(e.IDs) == 0 {
		t.Errorf("empty IDs not expanded to the full catalog")
	}
}

package server

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hpe/internal/runspec"
)

// --- coalescing end-to-end ------------------------------------------------

// runsSnapshot reads the leader-computation counters (test helper).
func (m *serverMetrics) runsSnapshot() (started, completed, cancelled, failed uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.runsStarted, m.runsCompleted, m.runsCancelled, m.runsFailed
}

// slowRunBody is a run spec slow enough (~hundreds of ms, more under
// -race) that a second client reliably arrives while it is in flight.
const slowRunBody = `{"app":"BFS","policy":"hpe","rate":50,"scale":4}`

// postRun submits a run and returns (status, X-Hped-Source, body). Transport
// errors are reported with Errorf (not Fatalf) so it is safe off the test
// goroutine; a zero status signals failure.
func postRun(t *testing.T, client *http.Client, url, body string) (int, string, []byte) {
	t.Helper()
	resp, err := client.Post(url+"/v1/runs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Errorf("POST /v1/runs: %v", err)
		return 0, "", nil
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Errorf("read body: %v", err)
		return 0, "", nil
	}
	return resp.StatusCode, resp.Header.Get("X-Hped-Source"), b
}

// TestConcurrentIdenticalRunsCoalesce is the coalescing contract: two
// concurrent identical submissions yield exactly one simulation, observed
// through the coalesce counter, and both clients receive byte-identical
// bodies. Checked at 1 and 8 workers — worker count must affect neither the
// dedup nor the bytes.
func TestConcurrentIdenticalRunsCoalesce(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-hundred-ms simulations skipped in -short mode")
	}
	bodies := make(map[int][]byte)
	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			srv := New(Config{Workers: workers})
			defer srv.Close()
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()

			id := runspec.Spec{App: "BFS", Policy: "hpe", Rate: 50, Scale: 4}.ID()

			var wg sync.WaitGroup
			results := make([][]byte, 2)
			wg.Add(1)
			go func() {
				defer wg.Done()
				code, _, b := postRun(t, ts.Client(), ts.URL, slowRunBody)
				if code != http.StatusOK {
					t.Errorf("leader: status %d: %s", code, b)
				}
				results[0] = b
			}()
			// Wait until the leader's computation is registered, then join it.
			deadline := time.Now().Add(10 * time.Second)
			for {
				if _, running := srv.co.Inflight(id); running {
					break
				}
				if time.Now().After(deadline) {
					t.Fatal("leader computation never became visible")
				}
				time.Sleep(time.Millisecond)
			}
			code, source, b := postRun(t, ts.Client(), ts.URL, slowRunBody)
			if code != http.StatusOK {
				t.Fatalf("follower: status %d: %s", code, b)
			}
			if source != "coalesce" {
				t.Errorf("follower source = %q, want coalesce", source)
			}
			results[1] = b
			wg.Wait()

			if got := srv.co.Coalesced(); got != 1 {
				t.Errorf("coalesced counter = %d, want 1", got)
			}
			started, completed, _, _ := srv.met.runsSnapshot()
			if started != 1 || completed != 1 {
				t.Errorf("runs started=%d completed=%d, want exactly one simulation", started, completed)
			}
			if !bytes.Equal(results[0], results[1]) {
				t.Errorf("coalesced clients saw different bodies:\n%s\n%s", results[0], results[1])
			}
			bodies[workers] = results[0]

			// A re-POST after completion is a cache hit with the same bytes.
			code, source, b = postRun(t, ts.Client(), ts.URL, slowRunBody)
			if code != http.StatusOK || source != "cache" {
				t.Errorf("re-POST: status %d source %q, want 200 from cache", code, source)
			}
			if !bytes.Equal(b, results[0]) {
				t.Errorf("cached body differs from computed body")
			}
		})
	}
	if len(bodies) == 2 && !bytes.Equal(bodies[1], bodies[8]) {
		t.Errorf("bodies differ between 1-worker and 8-worker servers:\n%s\n%s", bodies[1], bodies[8])
	}
}

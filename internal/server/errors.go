package server

import (
	"encoding/json"
	"net/http"
)

// The /v1 error envelope: every non-2xx JSON response from the hped backend
// and the cluster coordinator carries one typed envelope,
//
//	{"error":{"code":"queue_full","message":"…","run_id":"run-v2-…"}}
//
// with a machine-readable code from the closed vocabulary below — shared
// verbatim by backend and coordinator so clients (and the coordinator acting
// as a client) branch on Code, never on message prose. RunID is present when
// the request resolved to a content address before failing.

// ErrorCode is the machine-readable error vocabulary of the /v1 surface.
type ErrorCode string

const (
	// ErrBadSpec: the request body failed decoding, canonicalization, or
	// validation (HTTP 400).
	ErrBadSpec ErrorCode = "bad_spec"
	// ErrQueueFull: the bounded admission queue was at capacity; retry after
	// the Retry-After hint (HTTP 429).
	ErrQueueFull ErrorCode = "queue_full"
	// ErrDraining: the server is shutting down and refuses new work
	// (HTTP 503).
	ErrDraining ErrorCode = "draining"
	// ErrNotFound: no cached or in-flight computation under that ID
	// (HTTP 404).
	ErrNotFound ErrorCode = "not_found"
	// ErrBackendUnavailable: the coordinator exhausted every live backend
	// for a shard (HTTP 503). Backends never emit it.
	ErrBackendUnavailable ErrorCode = "backend_unavailable"
	// ErrCancelled: the computation was cancelled before completing
	// (HTTP 503).
	ErrCancelled ErrorCode = "cancelled"
	// ErrClientGone: the client disconnected before the response was ready;
	// nobody reads the body, but the metrics stay honest (HTTP 499).
	ErrClientGone ErrorCode = "client_gone"
	// ErrInternal: the computation failed for a reason that is the server's
	// fault (HTTP 500).
	ErrInternal ErrorCode = "internal"
)

// ErrorBody is the envelope's payload.
type ErrorBody struct {
	Code    ErrorCode `json:"code"`
	Message string    `json:"message"`
	RunID   string    `json:"run_id,omitempty"`
}

// ErrorEnvelope is the wire form of every /v1 error response.
type ErrorEnvelope struct {
	Err ErrorBody `json:"error"`
}

// EncodeError renders the envelope body (newline-terminated, like every
// other /v1 body).
func EncodeError(code ErrorCode, msg, runID string) []byte {
	body, _ := json.Marshal(ErrorEnvelope{Err: ErrorBody{Code: code, Message: msg, RunID: runID}})
	return append(body, '\n')
}

// WriteError writes one enveloped error response. It is the single error
// path of the /v1 surface; the coordinator reuses it so the two layers'
// envelopes are byte-compatible.
func WriteError(w http.ResponseWriter, status int, code ErrorCode, msg, runID string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(EncodeError(code, msg, runID))
}

// DecodeError parses an envelope body. ok is false when the body is not an
// envelope (e.g. a non-hped proxy answered) — callers should then fall back
// to the raw body and status code.
func DecodeError(body []byte) (ErrorBody, bool) {
	var env ErrorEnvelope
	if err := json.Unmarshal(body, &env); err != nil || env.Err.Code == "" {
		return ErrorBody{}, false
	}
	return env.Err, true
}

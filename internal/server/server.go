// Package server implements hped's serving core: the paper's simulator
// exposed as a long-running HTTP/JSON service. The serving triad —
// singleflight request coalescing, a content-addressed LRU result cache,
// and a bounded admission queue with backpressure — turns minutes of
// re-simulation into microsecond cache hits for the (app × policy ×
// oversubscription-rate) grids the related oversubscription-management
// literature sweeps, while context plumbing down to the event loop makes
// client disconnects, per-request timeouts, and graceful shutdown actually
// stop simulation work.
//
// Endpoints:
//
//	POST /v1/runs        submit a run spec (runspec.Spec wire form)
//	GET  /v1/runs        enumerate cached + in-flight run IDs (limit/after)
//	GET  /v1/runs/{id}   result (from cache) or in-flight status
//	POST /v1/suite       whole-matrix sweep through the experiment harness
//	GET  /v1/policies    the eviction-policy registry
//	GET  /v1/apps        the Table II workload catalog
//	GET  /v1/scenarios   the workload-v2 scenario presets (phases/tenants)
//	GET  /healthz        liveness (503 while draining; body carries capacity)
//	GET  /metrics        Prometheus text exposition
//
// Run IDs are runspec content addresses (Spec.ID()), so identical requests —
// across clients, across restarts, across replicas, and across the suite and
// CLI layers that speak the same spec — share one ID, one simulation, and one
// cache entry, and byte-identical bodies are guaranteed by the simulator's
// determinism contract. Errors are typed envelopes (errors.go): every non-2xx
// JSON body is {"error":{"code","message","run_id?"}} with a machine-readable
// code shared verbatim with the cluster coordinator.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"hpe"
	"hpe/internal/flight"
	"hpe/internal/respcache"
	"hpe/internal/runspec"
)

// Config sizes the daemon.
type Config struct {
	// Workers is the number of concurrent simulations; defaults to
	// GOMAXPROCS.
	Workers int
	// QueueDepth is how many admitted computations may wait beyond the
	// running ones before submissions get 429; defaults to 4×Workers.
	QueueDepth int
	// CacheBytes is the result cache's byte budget; defaults to 256 MiB.
	// Negative disables caching.
	CacheBytes int64
	// SuiteWorkers caps the parallelism of one /v1/suite sweep; defaults
	// to Workers.
	SuiteWorkers int
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

func (c *Config) fillDefaults() {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.QueueDepth < 0 {
		c.QueueDepth = 0
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 256 << 20
	}
	if c.SuiteWorkers <= 0 {
		c.SuiteWorkers = c.Workers
	}
}

// Server is the serving core. Construct with New; it is safe for concurrent
// use and is wired into an http.Server via Handler.
type Server struct {
	cfg        Config
	baseCtx    context.Context
	baseCancel context.CancelFunc
	cache      *respcache.Cache
	co         *flight.Group
	adm        *admission
	met        *serverMetrics
	mux        *http.ServeMux
	draining   chan struct{} // closed by Drain
	drainOnce  sync.Once

	traceMu sync.Mutex
	traces  map[string]*traceEntry // guarded by traceMu

	sumMu     sync.Mutex
	summaries map[string]runSummary // guarded by sumMu; id → enumeration summary
}

type traceEntry struct {
	once sync.Once
	tr   *hpe.Trace
}

// New builds a Server.
func New(cfg Config) *Server {
	cfg.fillDefaults()
	//lint:ignore hpelint/ctxflow the daemon owns its lifecycle root; Close cancels it, and per-request contexts derive from it
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		baseCtx:    ctx,
		baseCancel: cancel,
		cache:      respcache.New(cfg.CacheBytes),
		co:         flight.NewGroup(),
		adm:        newAdmission(cfg.Workers, cfg.QueueDepth),
		met:        newServerMetrics(),
		draining:   make(chan struct{}),
		traces:     make(map[string]*traceEntry),
		summaries:  make(map[string]runSummary),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", s.handleSubmitRun)
	mux.HandleFunc("GET /v1/runs", s.handleListRuns)
	mux.HandleFunc("GET /v1/runs/{id}", s.handleGetRun)
	mux.HandleFunc("POST /v1/suite", s.handleSuite)
	mux.HandleFunc("GET /v1/policies", s.handlePolicies)
	mux.HandleFunc("GET /v1/apps", s.handleApps)
	mux.HandleFunc("GET /v1/scenarios", s.handleScenarios)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux = mux
	return s
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler { return s.mux }

// Drain puts the server into draining mode: health checks fail (so load
// balancers stop routing here) and new submissions are refused with 503,
// while requests already in flight run to completion.
func (s *Server) Drain() { s.drainOnce.Do(func() { close(s.draining) }) }

// isDraining reports whether Drain has been called.
func (s *Server) isDraining() bool {
	select {
	case <-s.draining:
		return true
	default:
		return false
	}
}

// Close drains the server, cancels every computation still running (their
// engines stop at the next cancellation poll), and returns a final stats
// summary for logging — the flush-on-shutdown line.
func (s *Server) Close() string {
	s.Drain()
	s.baseCancel()
	cs := s.cache.Snapshot()
	queued, running := s.adm.Depths()
	return fmt.Sprintf(
		"cache: %d entries, %d/%d bytes, %d hits, %d misses, %d evictions; coalesced %d, rejected %d, queued %d, running %d",
		cs.Entries, cs.Bytes, cs.Budget, cs.Hits, cs.Misses, cs.Evictions,
		s.co.Coalesced(), s.adm.Rejected(), queued, running)
}

// logf logs through the configured sink.
func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// --- response plumbing ---------------------------------------------------

// statusClientGone is nginx's convention for "client closed request"; the
// client is not listening, but the code keeps the metrics honest.
const statusClientGone = 499

func (s *Server) writeBody(w http.ResponseWriter, route string, code int, source string, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	if source != "" {
		w.Header().Set("X-Hped-Source", source)
	}
	w.WriteHeader(code)
	w.Write(body)
	s.met.observeRequest(route, code)
}

// writeError emits one typed error envelope (errors.go). 429 and 503
// responses carry a Retry-After hint derived from the admission queue's
// depth, so backpressured clients pace themselves instead of guessing.
func (s *Server) writeError(w http.ResponseWriter, route string, status int, code ErrorCode, msg, runID string) {
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
	}
	WriteError(w, status, code, msg, runID)
	s.met.observeRequest(route, status)
}

// retryAfterSeconds estimates how long a rejected client should wait before
// the admission queue plausibly has room: the queued-plus-running backlog,
// divided across the worker pool, priced at the observed mean computation
// latency (1 s before any run has completed). Clamped to [1, 300].
func (s *Server) retryAfterSeconds() int {
	queued, running := s.adm.Depths()
	mean := s.met.meanRunSeconds()
	if mean <= 0 {
		mean = 1
	}
	est := math.Ceil(float64(queued+running+1) * mean / float64(s.cfg.Workers))
	if est < 1 {
		est = 1
	}
	if est > 300 {
		est = 300
	}
	return int(est)
}

// decodeJSON reads a bounded request body with unknown fields rejected —
// a typoed option silently dropped would alias distinct requests onto one
// content address.
func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// --- run submission ------------------------------------------------------

// RunResponse is the body of a completed run: the ID, the canonicalized
// spec it addresses, and the full simulation result. The cluster coordinator
// decodes it when merging remote shards, so it is part of the wire contract.
type RunResponse struct {
	ID      string      `json:"id"`
	Request hpe.RunSpec `json:"request"`
	Result  hpe.Result  `json:"result"`
}

func (s *Server) handleSubmitRun(w http.ResponseWriter, r *http.Request) {
	const route = "run_submit"
	if s.isDraining() {
		s.writeError(w, route, http.StatusServiceUnavailable, ErrDraining, "server draining", "")
		return
	}
	// The wire form IS the canonical run spec: bounded body, unknown fields
	// rejected, canonicalized on decode, content-addressed by Spec.ID().
	sp, err := runspec.Decode(http.MaxBytesReader(nil, r.Body, 1<<20))
	if err != nil {
		s.writeError(w, route, http.StatusBadRequest, ErrBadSpec, "bad request body: "+err.Error(), "")
		return
	}
	// A trace-file source reads the serving host's filesystem, and the file's
	// content is not part of the spec's content address — two backends could
	// cache different results under one ID. Replay trace files locally.
	if strings.HasPrefix(sp.App, "trace:") {
		s.writeError(w, route, http.StatusBadRequest, ErrBadSpec,
			"trace-file workload sources are not servable; replay them with hpesim", "")
		return
	}
	id := sp.ID()
	s.recordSummary(id, runSummary{Kind: "run", Summary: specSummary(sp)})
	s.serveComputed(w, r, route, id, false, func(ctx context.Context) ([]byte, error) {
		return s.simulateRun(ctx, sp, id)
	})
}

// serveComputed is the shared cache → coalesce → admit → compute path for
// runs and suite sweeps.
func (s *Server) serveComputed(w http.ResponseWriter, r *http.Request, route, id string,
	suite bool, compute func(context.Context) ([]byte, error)) {
	start := time.Now()
	if body, ok := s.cache.Get(id); ok {
		s.met.observeCachedHit(time.Since(start))
		s.writeBody(w, route, http.StatusOK, "cache", body)
		return
	}
	body, coalesced, err := s.co.Do(r.Context(), s.baseCtx, id, func(ctx context.Context) ([]byte, error) {
		release, err := s.adm.admit(ctx)
		if err != nil {
			return nil, err
		}
		defer release()
		s.met.runStarted()
		t0 := time.Now()
		body, err := compute(ctx)
		s.met.runFinished(time.Since(t0), err, suite)
		if err != nil {
			return nil, err
		}
		s.cache.Put(id, body)
		return body, nil
	})
	source := "simulate"
	if coalesced {
		source = "coalesce"
	}
	switch {
	case err == nil:
		s.writeBody(w, route, http.StatusOK, source, body)
	case errors.Is(err, errQueueFull):
		s.writeError(w, route, http.StatusTooManyRequests, ErrQueueFull,
			"admission queue full; retry after the Retry-After hint", id)
	case r.Context().Err() != nil:
		// The client went away; nobody reads this, but the metrics do.
		s.writeError(w, route, statusClientGone, ErrClientGone, "client disconnected", id)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		s.writeError(w, route, http.StatusServiceUnavailable, ErrCancelled,
			"computation cancelled: "+err.Error(), id)
	default:
		s.logf("hped: %s %s failed: %v", route, id, err)
		s.writeError(w, route, http.StatusInternalServerError, ErrInternal,
			"computation failed: "+err.Error(), id)
	}
}

// trace returns the app's canonical trace, generated once per server
// lifetime (traces are deterministic and immutable once the lazy footprint
// is primed). Scaled variants of an app get their own entries.
func (s *Server) trace(app hpe.App) *hpe.Trace {
	key := fmt.Sprintf("%s/%d", app.Abbr, app.Sets)
	s.traceMu.Lock()
	e, ok := s.traces[key]
	if !ok {
		e = &traceEntry{}
		s.traces[key] = e
	}
	s.traceMu.Unlock()
	e.once.Do(func() {
		tr := app.Generate()
		tr.Footprint()
		e.tr = tr
	})
	return e.tr
}

// simulateRun executes one canonicalized run spec under ctx and renders its
// response body. The spec → (config, trace, policy) materialization lives in
// runspec; the server only contributes its long-lived trace cache and its
// metrics probe. Cancelled (partial) results are reported as errors and never
// rendered or cached.
func (s *Server) simulateRun(ctx context.Context, sp hpe.RunSpec, id string) ([]byte, error) {
	m := hpe.NewMetricsProbe()
	res, err := hpe.Run(sp,
		hpe.WithContext(ctx),
		hpe.WithProbe(m),
		hpe.WithRunEnv(hpe.RunEnv{Trace: s.trace}))
	if err != nil {
		return nil, err
	}
	s.met.mergeProbe(res.Probe)
	if res.Cancelled {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return nil, context.Canceled
	}
	body, err := json.Marshal(RunResponse{ID: id, Request: sp, Result: res})
	if err != nil {
		return nil, fmt.Errorf("render result: %w", err)
	}
	return append(body, '\n'), nil
}

// --- run status ----------------------------------------------------------

func (s *Server) handleGetRun(w http.ResponseWriter, r *http.Request) {
	const route = "run_get"
	id := r.PathValue("id")
	if body, ok := s.cache.Get(id); ok {
		s.writeBody(w, route, http.StatusOK, "cache", body)
		return
	}
	if waiters, running := s.co.Inflight(id); running {
		body, _ := json.Marshal(map[string]any{"id": id, "status": "running", "waiters": waiters})
		s.writeBody(w, route, http.StatusAccepted, "", append(body, '\n'))
		return
	}
	s.writeError(w, route, http.StatusNotFound, ErrNotFound,
		"unknown run id (results live in an LRU cache; re-POST the request to recompute)", id)
}

// --- suite sweeps --------------------------------------------------------

// suiteReport is one experiment's JSON form. Metrics that JSON cannot carry
// are clamped (±Inf → ±MaxFloat64) or dropped (NaN) with the rewrite
// recorded in Clamped, mirroring hpebench -json.
type suiteReport struct {
	ID      string             `json:"id"`
	Title   string             `json:"title"`
	Text    string             `json:"text"`
	Metrics map[string]float64 `json:"metrics"`
	Clamped map[string]string  `json:"clamped,omitempty"`
}

type suiteResponse struct {
	ID      string        `json:"id"`
	Request SuiteRequest  `json:"request"`
	Reports []suiteReport `json:"reports"`
}

// RenderSuiteBody renders the canonical /v1/suite response body for a
// normalized request and its reports. The cluster coordinator calls the same
// function over remotely merged reports, which is what makes a coordinator
// sweep byte-identical to a single-node one.
func RenderSuiteBody(id string, req SuiteRequest, reports []hpe.Report) ([]byte, error) {
	out := suiteResponse{ID: id, Request: req, Reports: make([]suiteReport, len(reports))}
	for i, rep := range reports {
		metrics, clamped := clampMetrics(rep.Metrics)
		out.Reports[i] = suiteReport{ID: rep.ID, Title: rep.Title, Text: rep.Text,
			Metrics: metrics, Clamped: clamped}
	}
	body, err := json.Marshal(out)
	if err != nil {
		return nil, fmt.Errorf("render reports: %w", err)
	}
	return append(body, '\n'), nil
}

func (s *Server) handleSuite(w http.ResponseWriter, r *http.Request) {
	const route = "suite_submit"
	if s.isDraining() {
		s.writeError(w, route, http.StatusServiceUnavailable, ErrDraining, "server draining", "")
		return
	}
	var req SuiteRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, route, http.StatusBadRequest, ErrBadSpec, "bad request body: "+err.Error(), "")
		return
	}
	id, err := NormalizeSuite(&req)
	if err != nil {
		s.writeError(w, route, http.StatusBadRequest, ErrBadSpec, err.Error(), "")
		return
	}
	workers := req.Workers
	if workers <= 0 || workers > s.cfg.SuiteWorkers {
		workers = s.cfg.SuiteWorkers
	}
	req.Workers = 0 // scheduling hint: kept out of the cached body
	s.recordSummary(id, runSummary{Kind: "suite",
		Summary: fmt.Sprintf("%d experiments, quick=%t, seed=%d", len(req.IDs), req.Quick, req.Seed)})
	s.serveComputed(w, r, route, id, true, func(ctx context.Context) ([]byte, error) {
		return s.sweepSuite(ctx, req, id, workers)
	})
}

// sweepSuite runs a whole-matrix sweep through the experiment harness,
// sharded across the PR-1 worker pool under the request's context.
func (s *Server) sweepSuite(ctx context.Context, req SuiteRequest, id string, workers int) ([]byte, error) {
	suite := hpe.NewSuite(hpe.SuiteOptions{
		Quick:   req.Quick,
		Seed:    req.Seed,
		Workers: workers,
		Context: ctx,
	})
	reports, err := suite.Reports(req.IDs)
	if err != nil {
		return nil, err
	}
	return RenderSuiteBody(id, req, reports)
}

// clampMetrics rewrites values JSON cannot carry, recording every rewrite.
func clampMetrics(in map[string]float64) (map[string]float64, map[string]string) {
	metrics := make(map[string]float64, len(in))
	var clamped map[string]string
	note := func(k, why string) {
		if clamped == nil {
			clamped = make(map[string]string)
		}
		clamped[k] = why
	}
	for k, v := range in {
		switch {
		case math.IsNaN(v):
			note(k, "NaN: dropped")
			continue
		case math.IsInf(v, 1):
			note(k, "+Inf: clamped to +MaxFloat64")
			v = math.MaxFloat64
		case math.IsInf(v, -1):
			note(k, "-Inf: clamped to -MaxFloat64")
			v = -math.MaxFloat64
		}
		metrics[k] = v
	}
	return metrics, clamped
}

// --- catalog endpoints ---------------------------------------------------

type policyJSON struct {
	Name          string   `json:"name"`
	Display       string   `json:"display"`
	Description   string   `json:"description"`
	Aliases       []string `json:"aliases,omitempty"`
	NeedsCapacity bool     `json:"needs_capacity,omitempty"`
	NeedsTrace    bool     `json:"needs_trace,omitempty"`
	NeedsHIR      bool     `json:"needs_hir,omitempty"`
}

// PoliciesBody renders the /v1/policies catalog body. The coordinator serves
// the identical bytes (the registry is compiled into both binaries).
func PoliciesBody() []byte {
	infos := hpe.Policies()
	out := make([]policyJSON, len(infos))
	for i, info := range infos {
		out[i] = policyJSON{Name: info.Name, Display: info.Display,
			Description: info.Description, Aliases: info.Aliases,
			NeedsCapacity: info.NeedsCapacity, NeedsTrace: info.NeedsTrace,
			NeedsHIR: info.NeedsHIR}
	}
	body, _ := json.Marshal(out)
	return append(body, '\n')
}

func (s *Server) handlePolicies(w http.ResponseWriter, r *http.Request) {
	s.writeBody(w, "policies", http.StatusOK, "", PoliciesBody())
}

type appJSON struct {
	Name           string `json:"name"`
	Abbr           string `json:"abbr"`
	Suite          string `json:"suite"`
	Pattern        string `json:"pattern"`
	Pages          int    `json:"pages"`
	FootprintBytes uint64 `json:"footprint_bytes"`
	ComputeGap     int    `json:"compute_gap"`
}

// ScenariosBody renders the /v1/scenarios catalog body: the named
// workload-v2 presets, ready to paste into a run spec's phases/tenants
// fields. Shared with the coordinator (compiled into both binaries).
func ScenariosBody() []byte {
	body, _ := json.Marshal(hpe.Scenarios())
	return append(body, '\n')
}

func (s *Server) handleScenarios(w http.ResponseWriter, r *http.Request) {
	s.writeBody(w, "scenarios", http.StatusOK, "", ScenariosBody())
}

// AppsBody renders the /v1/apps catalog body, shared with the coordinator.
func AppsBody() []byte {
	apps := hpe.Workloads()
	out := make([]appJSON, len(apps))
	for i, a := range apps {
		out[i] = appJSON{Name: a.Name, Abbr: a.Abbr, Suite: a.Suite,
			Pattern: a.Pattern.String(), Pages: a.Pages(),
			FootprintBytes: a.FootprintBytes(), ComputeGap: a.ComputeGap}
	}
	body, _ := json.Marshal(out)
	return append(body, '\n')
}

func (s *Server) handleApps(w http.ResponseWriter, r *http.Request) {
	s.writeBody(w, "apps", http.StatusOK, "", AppsBody())
}

// --- health and metrics --------------------------------------------------

// HealthBody is the /healthz response: liveness plus the capacity figures
// the cluster coordinator sizes its per-backend dispatch window and
// saturation model from.
type HealthBody struct {
	Status  string `json:"status"`
	Workers int    `json:"workers"`
	Queue   int    `json:"queue"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		s.writeError(w, "healthz", http.StatusServiceUnavailable, ErrDraining, "draining", "")
		return
	}
	body, _ := json.Marshal(HealthBody{Status: "ok", Workers: s.cfg.Workers, Queue: s.cfg.QueueDepth})
	s.writeBody(w, "healthz", http.StatusOK, "", append(body, '\n'))
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	queued, running := s.adm.Depths()
	s.met.render(w, s.cache.Snapshot(), queued, running, s.adm.Rejected(), s.co.Coalesced())
	s.met.observeRequest("metrics", http.StatusOK)
}

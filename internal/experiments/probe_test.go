package experiments

import (
	"reflect"
	"sync"
	"testing"

	"hpe/internal/probe"
)

// TestProbedReportsMatchUnprobed is the acceptance contract of the probe
// hook: attaching probes to every simulation — at any worker count — must
// leave the rendered reports byte-identical to an unprobed serial run,
// because probes observe and never steer.
func TestProbedReportsMatchUnprobed(t *testing.T) {
	if testing.Short() {
		t.Skip("three suite passes skipped in -short mode")
	}
	ids := []string{"fig10"}
	baseline := NewSuite(Options{Quick: true, Seed: 1, Workers: 1})
	bReps, err := baseline.Reports(ids)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 4} {
		var mu sync.Mutex
		var made []*probe.Metrics
		calls := map[RunInfo]int{}
		s := NewSuite(Options{Quick: true, Seed: 1, Workers: workers,
			Probe: func(info RunInfo) probe.Probe {
				mu.Lock()
				defer mu.Unlock()
				calls[info]++
				m := probe.NewMetrics()
				made = append(made, m)
				return m
			}})
		reps, err := s.Reports(ids)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ids {
			if reps[i].Text != bReps[i].Text {
				t.Errorf("workers=%d: %s text differs from unprobed baseline", workers, ids[i])
			}
			if !reflect.DeepEqual(reps[i].Metrics, bReps[i].Metrics) {
				t.Errorf("workers=%d: %s metrics differ from unprobed baseline", workers, ids[i])
			}
		}
		// The factory runs exactly once per memoized simulation cell.
		mu.Lock()
		for info, n := range calls {
			if n != 1 {
				t.Errorf("workers=%d: probe factory called %d times for %+v", workers, n, info)
			}
			if info.Spec.App == "" || info.Spec.Policy == "" || info.Spec.Rate == 0 || info.ID == "" {
				t.Errorf("workers=%d: incomplete RunInfo %+v", workers, info)
			}
			if info.ID != info.Spec.ID() {
				t.Errorf("workers=%d: RunInfo.ID %q does not match Spec.ID() %q", workers, info.ID, info.Spec.ID())
			}
		}
		if len(calls) != s.CachedRuns() {
			t.Errorf("workers=%d: %d factory calls vs %d cached runs", workers, len(calls), s.CachedRuns())
		}
		// The probes actually saw the event stream.
		events := uint64(0)
		for _, m := range made {
			events += m.Snapshot().Events
		}
		mu.Unlock()
		if events == 0 {
			t.Errorf("workers=%d: probes observed no events", workers)
		}
	}
}

// TestProbeFactoryMayReturnNil: a factory can decline individual runs; those
// run on the uninstrumented fast path.
func TestProbeFactoryMayReturnNil(t *testing.T) {
	s := NewSuite(Options{Quick: true, Seed: 1,
		Probe: func(RunInfo) probe.Probe { return nil }})
	base := NewSuite(Options{Quick: true, Seed: 1})
	app := s.Apps()[0]
	a := s.Run(app, "lru", 75)
	b := base.Run(app, "lru", 75)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("nil-probe run diverged")
	}
}

// TestProbeSurfacesMetricsSnapshot: a Metrics probe attached through the
// suite surfaces its snapshot on the cached gpu.Result.
func TestProbeSurfacesMetricsSnapshot(t *testing.T) {
	s := NewSuite(Options{Quick: true, Seed: 1,
		Probe: func(RunInfo) probe.Probe { return probe.NewMetrics() }})
	app := s.Apps()[0]
	res := s.Run(app, "lru", 75)
	if res.Probe == nil {
		t.Fatal("Result.Probe nil with a metrics factory attached")
	}
	if res.Probe.Count("fault_end") != res.Faults {
		t.Fatalf("probe fault_end %d vs faults %d", res.Probe.Count("fault_end"), res.Faults)
	}
}

// Package experiments reproduces every table and figure of the paper's
// evaluation (Section V). Each experiment is a function on a Suite; the
// Suite caches generated traces and simulation results so that figures
// sharing runs (e.g. Figs. 10–15 all reuse the HPE runs) pay for them once.
//
// DESIGN.md §5 maps each experiment to its paper counterpart; EXPERIMENTS.md
// records paper-reported vs measured values.
//
// # Concurrency contract
//
// A Suite is safe for concurrent use by multiple goroutines. Every memoized
// cache (traces, Belady future indexes, simulation results) sits behind a
// single mutex with singleflight deduplication: when two goroutines ask for
// the same run, one computes it while the other blocks and receives the same
// value, so each (app, policy, rate, variant) cell is simulated exactly
// once per Suite regardless of interleaving. Cached values are immutable
// once published — traces have their lazy footprint primed before they are
// shared — so readers never observe partial state. Options.Workers sets the
// parallelism of Prewarm and Reports; because every simulation is
// deterministic and aggregation walks the caches in canonical (catalog ×
// paper) order, a parallel run renders byte-identical reports to a serial
// one. The Progress callback is serialized: it is never invoked
// concurrently, though line order under Workers > 1 follows completion
// order, not canonical order.
package experiments

import (
	"context"
	"fmt"
	"math"
	"sync"

	"hpe/internal/gpu"
	"hpe/internal/policy"
	"hpe/internal/probe"
	"hpe/internal/registry"
	"hpe/internal/sim"
	"hpe/internal/trace"
	"hpe/internal/workload"
)

// PolicyKind enumerates the policies the evaluation compares.
type PolicyKind int

const (
	// KindLRU is page-level LRU under the ideal feed.
	KindLRU PolicyKind = iota
	// KindRandom evicts a uniformly random resident page.
	KindRandom
	// KindRRIP is the paper's enhanced RRIP-FP.
	KindRRIP
	// KindClockPro is CLOCK-Pro with fixed m_c = 128.
	KindClockPro
	// KindIdeal is the offline Belady-MIN upper bound.
	KindIdeal
	// KindHPE is the full production HPE: HIR + dynamic adjustment.
	KindHPE
	// KindFIFO and KindLFU are extra reference points (not in the paper's
	// comparison set; used by the ablation benches).
	KindFIFO
	KindLFU
)

// kindNames maps each PolicyKind to its registry name — the suite's only
// policy-kind table; construction and display strings both go through the
// registry from here.
var kindNames = map[PolicyKind]string{
	KindLRU:      "lru",
	KindRandom:   "random",
	KindRRIP:     "rrip",
	KindClockPro: "clockpro",
	KindIdeal:    "ideal",
	KindHPE:      "hpe",
	KindFIFO:     "fifo",
	KindLFU:      "lfu",
	KindClock:    "clock",
	KindNRU:      "nru",
	KindARC:      "arc",
}

// kindName resolves a kind to its registry name.
func kindName(k PolicyKind) string {
	name, ok := kindNames[k]
	if !ok {
		panic(fmt.Sprintf("experiments: unknown policy kind %d", int(k)))
	}
	return name
}

// String names the policy as the paper does.
func (k PolicyKind) String() string {
	if name, ok := kindNames[k]; ok {
		return registry.DisplayName(name)
	}
	return fmt.Sprintf("PolicyKind(%d)", int(k))
}

// ComparisonPolicies is the paper's Fig. 12 policy set.
var ComparisonPolicies = []PolicyKind{KindLRU, KindRandom, KindRRIP, KindClockPro, KindHPE, KindIdeal}

// Options scales the experiment suite.
type Options struct {
	// Quick restricts runs to a representative subset of applications (one
	// or two per pattern type), for smoke runs and benchmarks.
	Quick bool
	// Seed feeds the Random policy.
	Seed int64
	// Progress, when non-nil, receives a line per completed simulation.
	// Invocations are serialized but, under Workers > 1, arrive in
	// completion order.
	Progress func(string)
	// Workers is the number of goroutines Prewarm and Reports spread the
	// run matrix across. 0 and 1 both mean fully serial execution (the
	// debugging path); typical callers pass runtime.GOMAXPROCS(0). Results
	// are byte-identical either way.
	Workers int
	// Probe, when non-nil, is invoked once per simulation (each memoized
	// cell runs exactly once regardless of workers) to build that run's
	// instrumentation probe; returning nil leaves the run unprobed. The
	// probe is flushed when the run completes. Probes observe only, so
	// attaching them never changes a report.
	Probe func(RunInfo) probe.Probe
	// Context, when non-nil, cancels the suite: in-flight simulations stop
	// at their next cancellation poll, the worker pool drains, and Reports
	// returns the context's error. Cancelled (partial) simulation results
	// are never cached. nil means context.Background() — no polling, the
	// exact pre-context fast path.
	Context context.Context
}

// RunInfo identifies one simulation of the run matrix, as handed to the
// Options.Probe factory.
type RunInfo struct {
	// App is the workload abbreviation ("HSD").
	App string
	// Policy is the registry policy name ("lru", "hpe").
	Policy string
	// RatePct is the oversubscription rate (75 means 75% of the footprint
	// fits).
	RatePct int
	// Variant labels customised configurations ("" for the default).
	Variant string
}

// Suite owns the cached traces and results. See the package comment for the
// concurrency contract.
type Suite struct {
	opts Options
	apps []workload.App

	// mu guards every map below, including the in-flight singleflight
	// tables; compute functions run with mu released.
	mu        sync.Mutex
	traces    map[string]*trace.Trace
	traceWIP  map[string]*flight[*trace.Trace]
	futures   map[string]*trace.FutureIndex
	futureWIP map[string]*flight[*trace.FutureIndex]
	results   map[runKey]gpu.Result
	runWIP    map[runKey]*flight[gpu.Result]

	progressMu sync.Mutex
}

type runKey struct {
	app     string
	kind    PolicyKind
	ratePct int
	variant string // "" for the default configuration
}

// NewSuite builds a suite over the full Table II catalog (or the quick
// subset).
func NewSuite(opts Options) *Suite {
	s := &Suite{
		opts:      opts,
		traces:    make(map[string]*trace.Trace),
		traceWIP:  make(map[string]*flight[*trace.Trace]),
		futures:   make(map[string]*trace.FutureIndex),
		futureWIP: make(map[string]*flight[*trace.FutureIndex]),
		results:   make(map[runKey]gpu.Result),
		runWIP:    make(map[runKey]*flight[gpu.Result]),
	}
	if opts.Quick {
		for _, abbr := range []string{"HOT", "GEM", "HSD", "STN", "PAT", "KMN", "NW", "BFS", "SGM", "B+T"} {
			app, ok := workload.ByAbbr(abbr)
			if !ok {
				panic("experiments: quick subset references unknown app " + abbr)
			}
			s.apps = append(s.apps, app)
		}
	} else {
		s.apps = workload.Catalog()
	}
	return s
}

// Apps returns the applications in play.
func (s *Suite) Apps() []workload.App { return s.apps }

// ctx returns the suite's cancellation context (Background when unset).
func (s *Suite) ctx() context.Context {
	if s.opts.Context != nil {
		return s.opts.Context
	}
	//lint:ignore hpelint/ctxflow nil Options.Context means "not cancellable" by documented contract; Background keeps the unpolled fast path
	return context.Background()
}

// Trace returns (and caches) the app's canonical trace. Concurrent callers
// for the same app share one generation.
func (s *Suite) Trace(app workload.App) *trace.Trace {
	tr, _ := dedup(&s.mu, s.traces, s.traceWIP, app.Abbr, func() *trace.Trace {
		tr := app.Generate()
		// Prime the trace's lazily-memoized footprint before publication:
		// Footprint() writes its cache on first call, which would race when
		// workers share the trace.
		tr.Footprint()
		return tr
	})
	return tr
}

func (s *Suite) future(app workload.App) *trace.FutureIndex {
	fi, _ := dedup(&s.mu, s.futures, s.futureWIP, app.Abbr, func() *trace.FutureIndex {
		return trace.BuildFutureIndex(s.Trace(app))
	})
	return fi
}

// CachedRuns reports how many simulation results the Suite has memoized.
func (s *Suite) CachedRuns() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.results)
}

// capacityFor translates an oversubscription rate into a device-memory size:
// a rate of 75% means 75% of the application footprint fits.
func capacityFor(tr *trace.Trace, ratePct int) int {
	c := int(math.Ceil(float64(tr.Footprint()) * float64(ratePct) / 100))
	if c < 1 {
		c = 1
	}
	return c
}

// buildPolicy constructs a fresh policy instance for one run via the
// registry. The option set is uniform across policies: each builder consumes
// what it understands (RRIP takes the thrashing preset on Type II apps — the
// paper's distant insertion with delay threshold 128 — Ideal takes the lazy
// future index, CLOCK-Pro and ARC the capacity) and ignores the rest.
func (s *Suite) buildPolicy(kind PolicyKind, app workload.App, capacity int) policy.Policy {
	opts := []registry.Option{
		registry.WithSeed(s.opts.Seed + 1),
		registry.WithCapacity(capacity),
		registry.WithFutureIndex(func() *trace.FutureIndex { return s.future(app) }),
	}
	if app.Pattern == workload.PatternThrashing {
		opts = append(opts, registry.WithThrashingRRIP())
	}
	pol, err := registry.New(kindName(kind), opts...)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return pol
}

// simConfig builds the Table I system for one run.
func (s *Suite) simConfig(app workload.App, capacity int, kind PolicyKind) gpu.Config {
	cfg := gpu.DefaultConfig(capacity)
	cfg.ComputeGap = sim.Cycle(max(0, app.ComputeGap))
	if registry.NeedsHIR(kindName(kind)) {
		cfg.UseHIR = true
	}
	return cfg
}

// Run returns the cached or freshly simulated result for (app, policy, rate).
// Concurrent callers for the same cell share one simulation.
func (s *Suite) Run(app workload.App, kind PolicyKind, ratePct int) gpu.Result {
	key := runKey{app: app.Abbr, kind: kind, ratePct: ratePct}
	r, computed := dedup(&s.mu, s.results, s.runWIP, key, func() gpu.Result {
		tr := s.Trace(app)
		capacity := capacityFor(tr, ratePct)
		cfg := s.simConfig(app, capacity, kind)
		pol := s.buildPolicy(kind, app, capacity)
		return s.simulate(key, cfg, tr, pol)
	})
	if computed {
		s.uncachePartial(key, r)
		s.progress(fmt.Sprintf("%-5s %-9s @%d%%: %v", app.Abbr, kind, ratePct, r))
	}
	return r
}

// uncachePartial drops a cancelled (partial) result from the memo cache so a
// reused Suite never serves it as if it were complete. The waiters of that
// flight still receive the partial value — they share the cancelled context
// and their aggregation is about to be abandoned anyway.
func (s *Suite) uncachePartial(key runKey, r gpu.Result) {
	if !r.Cancelled {
		return
	}
	s.mu.Lock()
	delete(s.results, key)
	s.mu.Unlock()
}

// RunVariant simulates with a caller-customised configuration, cached under
// the variant label. The mutate callback may adjust both the system config
// and swap the policy; it runs at most once per key across all goroutines.
func (s *Suite) RunVariant(app workload.App, kind PolicyKind, ratePct int, variant string,
	build func(tr *trace.Trace, capacity int) (gpu.Config, policy.Policy)) gpu.Result {
	key := runKey{app: app.Abbr, kind: kind, ratePct: ratePct, variant: variant}
	r, computed := dedup(&s.mu, s.results, s.runWIP, key, func() gpu.Result {
		tr := s.Trace(app)
		capacity := capacityFor(tr, ratePct)
		cfg, pol := build(tr, capacity)
		return s.simulate(key, cfg, tr, pol)
	})
	if computed {
		s.uncachePartial(key, r)
		s.progress(fmt.Sprintf("%-5s %-9s @%d%% [%s]: %v", app.Abbr, kind, ratePct, variant, r))
	}
	return r
}

// simulate runs one configured cell, attaching (and flushing) the caller's
// probe when an Options.Probe factory is set.
func (s *Suite) simulate(key runKey, cfg gpu.Config, tr *trace.Trace, pol policy.Policy) gpu.Result {
	var opts []gpu.Option
	if s.opts.Context != nil {
		opts = append(opts, gpu.WithContext(s.opts.Context))
	}
	var pr probe.Probe
	if s.opts.Probe != nil {
		pr = s.opts.Probe(RunInfo{App: key.app, Policy: kindName(key.kind),
			RatePct: key.ratePct, Variant: key.variant})
		if pr != nil {
			opts = append(opts, gpu.WithProbe(pr))
		}
	}
	r := gpu.Run(cfg, tr, pol, opts...)
	if pr != nil {
		if err := pr.Flush(); err != nil {
			s.progress(fmt.Sprintf("probe flush %s/%s@%d%%: %v", key.app, kindName(key.kind), key.ratePct, err))
		}
	}
	return r
}

// progress emits one line to the Progress callback, serialized.
func (s *Suite) progress(line string) {
	if s.opts.Progress == nil {
		return
	}
	s.progressMu.Lock()
	s.opts.Progress(line)
	s.progressMu.Unlock()
}

// Report is an experiment's rendered output plus its headline numbers for
// programmatic checks (tests, EXPERIMENTS.md generation).
type Report struct {
	ID      string
	Title   string
	Text    string
	Metrics map[string]float64
}

// String renders the report.
func (r Report) String() string {
	return fmt.Sprintf("=== %s: %s ===\n%s", r.ID, r.Title, r.Text)
}

// Package experiments reproduces every table and figure of the paper's
// evaluation (Section V). Each experiment is a function on a Suite; the
// Suite caches generated traces and simulation results so that figures
// sharing runs (e.g. Figs. 10–15 all reuse the HPE runs) pay for them once.
//
// DESIGN.md §5 maps each experiment to its paper counterpart; EXPERIMENTS.md
// records paper-reported vs measured values.
package experiments

import (
	"fmt"
	"math"

	"hpe/internal/gpu"
	"hpe/internal/hpe"
	"hpe/internal/policy"
	"hpe/internal/sim"
	"hpe/internal/trace"
	"hpe/internal/workload"
)

// PolicyKind enumerates the policies the evaluation compares.
type PolicyKind int

const (
	// KindLRU is page-level LRU under the ideal feed.
	KindLRU PolicyKind = iota
	// KindRandom evicts a uniformly random resident page.
	KindRandom
	// KindRRIP is the paper's enhanced RRIP-FP.
	KindRRIP
	// KindClockPro is CLOCK-Pro with fixed m_c = 128.
	KindClockPro
	// KindIdeal is the offline Belady-MIN upper bound.
	KindIdeal
	// KindHPE is the full production HPE: HIR + dynamic adjustment.
	KindHPE
	// KindFIFO and KindLFU are extra reference points (not in the paper's
	// comparison set; used by the ablation benches).
	KindFIFO
	KindLFU
)

// String names the policy as the paper does.
func (k PolicyKind) String() string {
	switch k {
	case KindLRU:
		return "LRU"
	case KindRandom:
		return "Random"
	case KindRRIP:
		return "RRIP"
	case KindClockPro:
		return "CLOCK-Pro"
	case KindIdeal:
		return "Ideal"
	case KindHPE:
		return "HPE"
	case KindFIFO:
		return "FIFO"
	case KindLFU:
		return "LFU"
	default:
		return fmt.Sprintf("PolicyKind(%d)", int(k))
	}
}

// ComparisonPolicies is the paper's Fig. 12 policy set.
var ComparisonPolicies = []PolicyKind{KindLRU, KindRandom, KindRRIP, KindClockPro, KindHPE, KindIdeal}

// Options scales the experiment suite.
type Options struct {
	// Quick restricts runs to a representative subset of applications (one
	// or two per pattern type), for smoke runs and benchmarks.
	Quick bool
	// Seed feeds the Random policy.
	Seed int64
	// Progress, when non-nil, receives a line per completed simulation.
	Progress func(string)
}

// Suite owns the cached traces and results.
type Suite struct {
	opts    Options
	apps    []workload.App
	traces  map[string]*trace.Trace
	futures map[string]*trace.FutureIndex
	results map[runKey]gpu.Result
}

type runKey struct {
	app     string
	kind    PolicyKind
	ratePct int
	variant string // "" for the default configuration
}

// NewSuite builds a suite over the full Table II catalog (or the quick
// subset).
func NewSuite(opts Options) *Suite {
	s := &Suite{
		opts:    opts,
		traces:  make(map[string]*trace.Trace),
		futures: make(map[string]*trace.FutureIndex),
		results: make(map[runKey]gpu.Result),
	}
	if opts.Quick {
		for _, abbr := range []string{"HOT", "GEM", "HSD", "STN", "PAT", "KMN", "NW", "BFS", "SGM", "B+T"} {
			app, ok := workload.ByAbbr(abbr)
			if !ok {
				panic("experiments: quick subset references unknown app " + abbr)
			}
			s.apps = append(s.apps, app)
		}
	} else {
		s.apps = workload.Catalog()
	}
	return s
}

// Apps returns the applications in play.
func (s *Suite) Apps() []workload.App { return s.apps }

// Trace returns (and caches) the app's canonical trace.
func (s *Suite) Trace(app workload.App) *trace.Trace {
	if tr, ok := s.traces[app.Abbr]; ok {
		return tr
	}
	tr := app.Generate()
	s.traces[app.Abbr] = tr
	return tr
}

func (s *Suite) future(app workload.App) *trace.FutureIndex {
	if fi, ok := s.futures[app.Abbr]; ok {
		return fi
	}
	fi := trace.BuildFutureIndex(s.Trace(app))
	s.futures[app.Abbr] = fi
	return fi
}

// capacityFor translates an oversubscription rate into a device-memory size:
// a rate of 75% means 75% of the application footprint fits.
func capacityFor(tr *trace.Trace, ratePct int) int {
	c := int(math.Ceil(float64(tr.Footprint()) * float64(ratePct) / 100))
	if c < 1 {
		c = 1
	}
	return c
}

// buildPolicy constructs a fresh policy instance for one run. RRIP is
// configured per the paper: Type II applications get distant insertion with
// a delay threshold of 128; everything else long insertion with threshold 0.
func (s *Suite) buildPolicy(kind PolicyKind, app workload.App, capacity int) policy.Policy {
	switch kind {
	case KindLRU:
		return policy.NewLRU()
	case KindFIFO:
		return policy.NewFIFO()
	case KindLFU:
		return policy.NewLFU()
	case KindRandom:
		return policy.NewRandom(s.opts.Seed + 1)
	case KindRRIP:
		cfg := policy.DefaultRRIPConfig()
		if app.Pattern == workload.PatternThrashing {
			cfg = policy.ThrashingRRIPConfig()
		}
		return policy.NewRRIP(cfg)
	case KindClockPro:
		return policy.NewClockPro(capacity, policy.DefaultColdTarget)
	case KindIdeal:
		return policy.NewIdeal(s.future(app))
	case KindHPE:
		return hpe.New(hpe.DefaultConfig())
	default:
		panic(fmt.Sprintf("experiments: unknown policy kind %d", int(kind)))
	}
}

// simConfig builds the Table I system for one run.
func (s *Suite) simConfig(app workload.App, capacity int, kind PolicyKind) gpu.Config {
	cfg := gpu.DefaultConfig(capacity)
	cfg.ComputeGap = sim.Cycle(max(0, app.ComputeGap))
	if kind == KindHPE {
		cfg.UseHIR = true
	}
	return cfg
}

// Run returns the cached or freshly simulated result for (app, policy, rate).
func (s *Suite) Run(app workload.App, kind PolicyKind, ratePct int) gpu.Result {
	key := runKey{app: app.Abbr, kind: kind, ratePct: ratePct}
	if r, ok := s.results[key]; ok {
		return r
	}
	tr := s.Trace(app)
	capacity := capacityFor(tr, ratePct)
	cfg := s.simConfig(app, capacity, kind)
	pol := s.buildPolicy(kind, app, capacity)
	r := gpu.Run(cfg, tr, pol)
	s.results[key] = r
	if s.opts.Progress != nil {
		s.opts.Progress(fmt.Sprintf("%-5s %-9s @%d%%: %v", app.Abbr, kind, ratePct, r))
	}
	return r
}

// RunVariant simulates with a caller-customised configuration, cached under
// the variant label. The mutate callback may adjust both the system config
// and swap the policy.
func (s *Suite) RunVariant(app workload.App, kind PolicyKind, ratePct int, variant string,
	build func(tr *trace.Trace, capacity int) (gpu.Config, policy.Policy)) gpu.Result {
	key := runKey{app: app.Abbr, kind: kind, ratePct: ratePct, variant: variant}
	if r, ok := s.results[key]; ok {
		return r
	}
	tr := s.Trace(app)
	capacity := capacityFor(tr, ratePct)
	cfg, pol := build(tr, capacity)
	r := gpu.Run(cfg, tr, pol)
	s.results[key] = r
	if s.opts.Progress != nil {
		s.opts.Progress(fmt.Sprintf("%-5s %-9s @%d%% [%s]: %v", app.Abbr, kind, ratePct, variant, r))
	}
	return r
}

// Report is an experiment's rendered output plus its headline numbers for
// programmatic checks (tests, EXPERIMENTS.md generation).
type Report struct {
	ID      string
	Title   string
	Text    string
	Metrics map[string]float64
}

// String renders the report.
func (r Report) String() string {
	return fmt.Sprintf("=== %s: %s ===\n%s", r.ID, r.Title, r.Text)
}

// Package experiments reproduces every table and figure of the paper's
// evaluation (Section V). Each experiment is a function on a Suite; the
// Suite caches generated traces and simulation results so that figures
// sharing runs (e.g. Figs. 10–15 all reuse the HPE runs) pay for them once.
//
// DESIGN.md §5 maps each experiment to its paper counterpart; EXPERIMENTS.md
// records paper-reported vs measured values.
//
// # Run identity
//
// Every simulation is described by a runspec.Spec and keyed by its
// content-addressed Spec.ID() — the same canonical identity hped and the
// CLIs use, so a run cached here is the same run everywhere. Experiment
// functions build Specs (plain cells via Run, customised cells via RunSpec)
// and never touch gpu.Config directly; the spec materializer owns every
// knob.
//
// # Concurrency contract
//
// A Suite is safe for concurrent use by multiple goroutines. Every memoized
// cache (traces, Belady future indexes, simulation results) sits behind a
// single mutex with singleflight deduplication: when two goroutines ask for
// the same run, one computes it while the other blocks and receives the same
// value, so each spec is simulated exactly once per Suite regardless of
// interleaving. Cached values are immutable once published — traces have
// their lazy footprint primed before they are shared — so readers never
// observe partial state. Options.Workers sets the parallelism of Prewarm and
// Reports; because every simulation is deterministic and aggregation walks
// the caches in canonical (catalog × paper) order, a parallel run renders
// byte-identical reports to a serial one. The Progress callback is
// serialized: it is never invoked concurrently, though line order under
// Workers > 1 follows completion order, not canonical order.
package experiments

import (
	"context"
	"fmt"
	"sync"

	"hpe/internal/gpu"
	"hpe/internal/probe"
	"hpe/internal/registry"
	"hpe/internal/runspec"
	"hpe/internal/trace"
	"hpe/internal/workload"
)

// ComparisonPolicies is the paper's Fig. 12 policy set, by registry name.
var ComparisonPolicies = []string{"lru", "random", "rrip", "clockpro", "hpe", "ideal"}

// Options scales the experiment suite.
type Options struct {
	// Quick restricts runs to a representative subset of applications (one
	// or two per pattern type), for smoke runs and benchmarks.
	Quick bool
	// Seed feeds the Random policy.
	Seed int64
	// Progress, when non-nil, receives a line per completed simulation.
	// Invocations are serialized but, under Workers > 1, arrive in
	// completion order.
	Progress func(string)
	// Workers is the number of goroutines Prewarm and Reports spread the
	// run matrix across. 0 and 1 both mean fully serial execution (the
	// debugging path); typical callers pass runtime.GOMAXPROCS(0). Results
	// are byte-identical either way.
	Workers int
	// Probe, when non-nil, is invoked once per simulation (each memoized
	// cell runs exactly once regardless of workers) to build that run's
	// instrumentation probe; returning nil leaves the run unprobed. The
	// probe is flushed when the run completes. Probes observe only, so
	// attaching them never changes a report.
	Probe func(RunInfo) probe.Probe
	// Context, when non-nil, cancels the suite: in-flight simulations stop
	// at their next cancellation poll, the worker pool drains, and Reports
	// returns the context's error. Cancelled (partial) simulation results
	// are never cached. nil means context.Background() — no polling, the
	// exact pre-context fast path.
	Context context.Context
	// Runner, when non-nil, replaces local simulation: every cell of the run
	// matrix is delegated to it instead of being materialized and simulated
	// in-process. The spec is already canonical and id is its content
	// address, so a Runner can route the cell anywhere that speaks the
	// runspec wire form — the cluster coordinator consistent-hashes id to a
	// backend and POSTs the spec. Determinism makes the substitution exact:
	// a remote result is byte-for-byte the result local simulation would
	// have produced. On error the Runner should cancel Options.Context
	// (Reports then returns that error); the failed cell yields a Cancelled
	// placeholder that is never cached. Options.Probe is not invoked for
	// delegated cells — instrumentation belongs to the executing side.
	Runner func(ctx context.Context, sp runspec.Spec, id string) (gpu.Result, error)
}

// RunInfo identifies one simulation of the run matrix, as handed to the
// Options.Probe factory. It is comparable, so probes may key on it.
type RunInfo struct {
	// Spec is the canonical description of the run.
	Spec runspec.Spec
	// ID is Spec.ID() — the run's cache key here and its content address
	// everywhere else (hped, replay, the CLIs).
	ID string
}

// Suite owns the cached traces and results. See the package comment for the
// concurrency contract.
type Suite struct {
	opts Options
	apps []workload.App

	// mu guards every map below, including the in-flight singleflight
	// tables; compute functions run with mu released.
	mu        sync.Mutex
	traces    map[string]*trace.Trace
	traceWIP  map[string]*flight[*trace.Trace]
	futures   map[string]*trace.FutureIndex
	futureWIP map[string]*flight[*trace.FutureIndex]
	results   map[string]gpu.Result // keyed by Spec.ID()
	runWIP    map[string]*flight[gpu.Result]

	progressMu sync.Mutex
}

// NewSuite builds a suite over the full Table II catalog (or the quick
// subset).
func NewSuite(opts Options) *Suite {
	s := &Suite{
		opts:      opts,
		traces:    make(map[string]*trace.Trace),
		traceWIP:  make(map[string]*flight[*trace.Trace]),
		futures:   make(map[string]*trace.FutureIndex),
		futureWIP: make(map[string]*flight[*trace.FutureIndex]),
		results:   make(map[string]gpu.Result),
		runWIP:    make(map[string]*flight[gpu.Result]),
	}
	if opts.Quick {
		for _, abbr := range []string{"HOT", "GEM", "HSD", "STN", "PAT", "KMN", "NW", "BFS", "SGM", "B+T"} {
			app, ok := workload.ByAbbr(abbr)
			if !ok {
				panic("experiments: quick subset references unknown app " + abbr)
			}
			s.apps = append(s.apps, app)
		}
	} else {
		s.apps = workload.Catalog()
	}
	return s
}

// Apps returns the applications in play.
func (s *Suite) Apps() []workload.App { return s.apps }

// ctx returns the suite's cancellation context (Background when unset).
func (s *Suite) ctx() context.Context {
	if s.opts.Context != nil {
		return s.opts.Context
	}
	//lint:ignore hpelint/ctxflow nil Options.Context means "not cancellable" by documented contract; Background keeps the unpolled fast path
	return context.Background()
}

// Trace returns (and caches) the app's canonical trace. Concurrent callers
// for the same app share one generation. Scaled variants of an app get
// their own entries.
func (s *Suite) Trace(app workload.App) *trace.Trace {
	key := fmt.Sprintf("%s/%d", app.Abbr, app.Sets)
	tr, _ := dedup(&s.mu, s.traces, s.traceWIP, key, func() (*trace.Trace, bool) {
		tr := app.Generate()
		// Prime the trace's lazily-memoized footprint before publication:
		// Footprint() writes its cache on first call, which would race when
		// workers share the trace.
		tr.Footprint()
		return tr, true
	})
	return tr
}

func (s *Suite) future(app workload.App) *trace.FutureIndex {
	key := fmt.Sprintf("%s/%d", app.Abbr, app.Sets)
	fi, _ := dedup(&s.mu, s.futures, s.futureWIP, key, func() (*trace.FutureIndex, bool) {
		return trace.BuildFutureIndex(s.Trace(app)), true
	})
	return fi
}

// env is the suite's materialization environment: traces and future indexes
// flow through the memo caches.
func (s *Suite) env() runspec.Env {
	return runspec.Env{
		Trace:  func(app workload.App) *trace.Trace { return s.Trace(app) },
		Future: func(app workload.App, _ *trace.Trace) *trace.FutureIndex { return s.future(app) },
	}
}

// CachedRuns reports how many simulation results the Suite has memoized.
func (s *Suite) CachedRuns() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.results)
}

// capacityFor translates an oversubscription rate into a device-memory size.
func capacityFor(tr *trace.Trace, ratePct int) int {
	return runspec.CapacityFor(tr, ratePct)
}

// spec builds the suite's base spec for one (app, policy, rate) cell. The
// suite's policy seed is Options.Seed+1 (the historical suite seeding; the
// golden results.json pins it).
func (s *Suite) spec(app workload.App, policy string, ratePct int) runspec.Spec {
	return runspec.Spec{App: app.Abbr, Policy: policy, Rate: ratePct, Seed: s.opts.Seed + 1}
}

// Run returns the cached or freshly simulated result for the plain
// (app, policy, rate) cell. Concurrent callers for the same cell share one
// simulation.
func (s *Suite) Run(app workload.App, policy string, ratePct int) gpu.Result {
	return s.RunSpec(s.spec(app, policy, ratePct))
}

// RunSpec returns the cached or freshly simulated result for an arbitrary
// spec, keyed by its content address: two specs meaning the same run —
// however they were spelled — share one cache cell. Invalid specs panic;
// experiment code builds its specs from the catalog, so an invalid spec is
// a programming error, not input.
func (s *Suite) RunSpec(sp runspec.Spec) gpu.Result {
	c, err := sp.Canonicalize()
	if err != nil {
		panic("experiments: " + err.Error())
	}
	id := c.ID()
	r, computed := dedup(&s.mu, s.results, s.runWIP, id, func() (gpu.Result, bool) {
		r := s.simulate(c, id)
		// A cancelled (partial) result must never be published under the
		// spec's ID: a later identical request would mistake it for the
		// complete run. Waiters of this flight still receive the value —
		// they share the cancelled context and their aggregation is about
		// to be abandoned anyway.
		return r, !r.Cancelled
	})
	if computed {
		disp := registry.DisplayName(c.Policy)
		if v := c.VariantLabel(); v != "" {
			s.progress(fmt.Sprintf("%-5s %-9s @%d%% [%s]: %v", c.App, disp, c.Rate, v, r))
		} else {
			s.progress(fmt.Sprintf("%-5s %-9s @%d%%: %v", c.App, disp, c.Rate, r))
		}
	}
	return r
}

// simulate materializes and runs one spec, attaching (and flushing) the
// caller's probe when an Options.Probe factory is set. When Options.Runner
// is set the cell is delegated instead; a Runner error yields a Cancelled
// placeholder, which RunSpec's cacheable verdict keeps out of the memo.
func (s *Suite) simulate(sp runspec.Spec, id string) gpu.Result {
	if s.opts.Runner != nil {
		r, err := s.opts.Runner(s.ctx(), sp, id)
		if err != nil {
			return gpu.Result{Cancelled: true}
		}
		return r
	}
	m, err := sp.Materialize(s.env())
	if err != nil {
		panic("experiments: " + err.Error())
	}
	var opts []gpu.Option
	if s.opts.Context != nil {
		opts = append(opts, gpu.WithContext(s.opts.Context))
	}
	var pr probe.Probe
	if s.opts.Probe != nil {
		pr = s.opts.Probe(RunInfo{Spec: sp, ID: id})
		if pr != nil {
			opts = append(opts, gpu.WithProbe(pr))
		}
	}
	r := gpu.Run(m.Config, m.Trace, m.Policy, opts...)
	if pr != nil {
		if err := pr.Flush(); err != nil {
			s.progress(fmt.Sprintf("probe flush %s/%s@%d%%: %v", sp.App, sp.Policy, sp.Rate, err))
		}
	}
	return r
}

// display renders a registry policy name the way the paper does.
func display(policy string) string { return registry.DisplayName(policy) }

// progress emits one line to the Progress callback, serialized.
func (s *Suite) progress(line string) {
	if s.opts.Progress == nil {
		return
	}
	s.progressMu.Lock()
	s.opts.Progress(line)
	s.progressMu.Unlock()
}

// Report is an experiment's rendered output plus its headline numbers for
// programmatic checks (tests, EXPERIMENTS.md generation).
type Report struct {
	ID      string
	Title   string
	Text    string
	Metrics map[string]float64
}

// String renders the report.
func (r Report) String() string {
	return fmt.Sprintf("=== %s: %s ===\n%s", r.ID, r.Title, r.Text)
}

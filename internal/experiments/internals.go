package experiments

import (
	"fmt"
	"math"
	"strings"

	"hpe/internal/hpe"
	"hpe/internal/stats"
)

// Fig9 reproduces Fig. 9: ratio₁ and ratio₂ of every application, computed
// by HPE when the GPU memory first fills at 75% oversubscription, together
// with the resulting classification.
func (s *Suite) Fig9() Report {
	tb := stats.NewTable("app", "pattern", "ratio1", "ratio2", "category", "strategy@start")
	metrics := map[string]float64{}
	for _, app := range s.apps {
		r := s.Run(app, "hpe", 75)
		if r.HPE == nil || !r.HPE.Classified {
			tb.AddRow(app.Abbr, app.Pattern.String(), "-", "-", "never full", "-")
			continue
		}
		st := r.HPE
		tb.AddRow(app.Abbr, app.Pattern.String(),
			fmtRatio(st.Ratios.Ratio1), fmtRatio(st.Ratios.Ratio2),
			st.Category.String(), initialStrategyName(st))
		metrics["ratio1/"+app.Abbr] = st.Ratios.Ratio1
		metrics["ratio2/"+app.Abbr] = st.Ratios.Ratio2
		metrics["category/"+app.Abbr] = float64(st.Category)
	}
	text := tb.Render() + "\npaper: Types I–III have small ratios (KMN, SAD outliers with large ratio1);\n" +
		"Types IV–VI have large ratio1 or ratio2 (SGM outlier with small ratio1)\n"
	return Report{ID: "fig9", Title: "ratio1 and ratio2 of selected applications", Text: text, Metrics: metrics}
}

func fmtRatio(v float64) string {
	if math.IsInf(v, 1) {
		return "inf"
	}
	return fmt.Sprintf("%.3f", v)
}

func initialStrategyName(st *hpe.Stats) string {
	if len(st.Timeline) == 0 {
		return "-"
	}
	return st.Timeline[0].Strategy.String()
}

// Fig13 reproduces Fig. 13: the per-application breakdown of which eviction
// strategy HPE used over time, at both oversubscription rates, including
// search-point jumps.
func (s *Suite) Fig13() Report {
	tb := stats.NewTable("app@rate", "category", "LRU share", "MRU-C share", "switches", "jumps", "timeline")
	metrics := map[string]float64{}
	for _, app := range s.apps {
		for _, rate := range Rates {
			r := s.Run(app, "hpe", rate)
			label := fmt.Sprintf("%s@%d%%", app.Abbr, rate)
			if r.HPE == nil || !r.HPE.Classified {
				tb.AddRow(label, "never full", "-", "-", "-", "-", "-")
				continue
			}
			st := r.HPE
			lruShare := st.StrategyShare(hpe.StrategyLRU)
			mrucShare := st.StrategyShare(hpe.StrategyMRUC)
			tb.AddRow(label, st.Category.String(),
				fmt.Sprintf("%.2f", lruShare), fmt.Sprintf("%.2f", mrucShare),
				fmt.Sprint(st.Switches), fmt.Sprint(len(st.Jumps)), timelineString(st))
			metrics[fmt.Sprintf("lruShare%d/%s", rate, app.Abbr)] = lruShare
			metrics[fmt.Sprintf("switches%d/%s", rate, app.Abbr)] = float64(st.Switches)
			metrics[fmt.Sprintf("jumps%d/%s", rate, app.Abbr)] = float64(len(st.Jumps))
		}
	}
	text := tb.Render() + "\npaper: KMN, NW, B+T, HYB, SPV, MVT use LRU throughout; HOT, BKP, PAT, LEU,\n" +
		"CUT, MRQ, STN, 2DC, GEM use MRU-C throughout; SRD, BFS, SAD, HIS adjust at both\n" +
		"rates; DWT, HSD, SGM adjust only at 50%\n"
	return Report{ID: "fig13", Title: "Eviction-strategy adjustment breakdown", Text: text, Metrics: metrics}
}

func timelineString(st *hpe.Stats) string {
	var parts []string
	for _, span := range st.Timeline {
		parts = append(parts, fmt.Sprintf("%s[%d,%d)", span.Strategy, span.FromFault, span.ToFault))
	}
	out := strings.Join(parts, "→")
	if len(out) > 48 {
		out = out[:45] + "..."
	}
	return out
}

// Fig14 reproduces Fig. 14: the average number of chain comparisons per
// MRU-C victim search. Applications that used LRU for their entire
// execution are omitted, as in the paper.
func (s *Suite) Fig14() Report {
	tb := stats.NewTable("app@rate", "searches", "avg comparisons")
	metrics := map[string]float64{}
	var all []float64
	for _, app := range s.apps {
		for _, rate := range Rates {
			r := s.Run(app, "hpe", rate)
			if r.HPE == nil || r.HPE.Searches == 0 {
				continue // pure-LRU app: omitted like the paper
			}
			mc := r.HPE.MeanComparisons
			tb.AddRow(fmt.Sprintf("%s@%d%%", app.Abbr, rate),
				fmt.Sprint(r.HPE.Searches), fmt.Sprintf("%.1f", mc))
			metrics[fmt.Sprintf("cmp%d/%s", rate, app.Abbr)] = mc
			all = append(all, mc)
		}
	}
	metrics["mean"] = stats.Mean(all)
	metrics["max"] = stats.Max(all)
	text := tb.Render() + fmt.Sprintf("\nmean %.1f comparisons/search (max %.1f)\n"+
		"paper: typically < 50 comparisons, with BFS and HIS as outliers\n",
		metrics["mean"], metrics["max"])
	return Report{ID: "fig14", Title: "Average MRU-C search overhead", Text: text, Metrics: metrics}
}

// Fig15 reproduces Fig. 15: the average number of HIR entries transferred
// per drain, per application.
func (s *Suite) Fig15() Report {
	tb := stats.NewTable("app", "drains", "avg entries/transfer", "max entries", "conflicts")
	metrics := map[string]float64{}
	for _, app := range s.apps {
		r := s.Run(app, "hpe", 75)
		if r.HIR == nil {
			continue
		}
		st := r.HIR
		tb.AddRow(app.Abbr, fmt.Sprint(st.Drains), fmt.Sprintf("%.1f", st.MeanNonEmpty),
			fmt.Sprint(st.MaxDrained), fmt.Sprint(st.Conflicts))
		metrics["mean/"+app.Abbr] = st.MeanNonEmpty
		metrics["conflicts/"+app.Abbr] = float64(st.Conflicts)
	}
	text := tb.Render() + "\npaper: typically fewer than ten entries per transfer; MVT the outlier (139)\n"
	return Report{ID: "fig15", Title: "Average HIR entries transferred per drain", Text: text, Metrics: metrics}
}

package experiments

import (
	"context"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hpe/internal/probe"
	"hpe/internal/runspec"
)

// --- singleflight primitive ---------------------------------------------------

func TestDedupComputesOncePerKey(t *testing.T) {
	var mu sync.Mutex
	cache := map[string]int{}
	inflight := map[string]*flight[int]{}
	var computes atomic.Int32

	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				v, _ := dedup(&mu, cache, inflight, "k", func() (int, bool) {
					computes.Add(1)
					return 42, true
				})
				if v != 42 {
					t.Error("dedup returned wrong value")
					return
				}
			}
		}()
	}
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want 1", n)
	}
	if len(inflight) != 0 {
		t.Fatalf("%d inflight entries leaked", len(inflight))
	}
}

func TestDedupRecoversFromPanic(t *testing.T) {
	var mu sync.Mutex
	cache := map[string]int{}
	inflight := map[string]*flight[int]{}

	func() {
		defer func() {
			if recover() == nil {
				t.Error("panic did not propagate")
			}
		}()
		dedup(&mu, cache, inflight, "k", func() (int, bool) { panic("boom") })
	}()
	if len(inflight) != 0 {
		t.Fatal("panicked flight left in the inflight table")
	}
	// The key is reclaimable after the failure.
	v, computed := dedup(&mu, cache, inflight, "k", func() (int, bool) { return 7, true })
	if v != 7 || !computed {
		t.Fatalf("retry after panic = (%d, %v), want (7, true)", v, computed)
	}
}

// TestDedupUncacheableNeverPublished is the cancellation-semantics contract:
// a compute that declares its value uncacheable (a cancelled, partial
// simulation) hands the value to this round's waiters but never publishes it
// — a later caller recomputes. Concurrent readers racing the uncacheable
// flight must never observe the poisoned value in the cache.
func TestDedupUncacheableNeverPublished(t *testing.T) {
	var mu sync.Mutex
	cache := map[string]int{}
	inflight := map[string]*flight[int]{}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				mu.Lock()
				v, cached := cache["k"]
				mu.Unlock()
				if cached && v == -1 {
					t.Error("uncacheable value observed in the cache")
					return
				}
			}
		}()
	}
	v, computed := dedup(&mu, cache, inflight, "k", func() (int, bool) { return -1, false })
	if v != -1 || !computed {
		t.Fatalf("uncacheable compute = (%d, %v), want (-1, true)", v, computed)
	}
	wg.Wait()
	if _, ok := cache["k"]; ok {
		t.Fatal("uncacheable value was published to the cache")
	}
	if len(inflight) != 0 {
		t.Fatal("inflight entry leaked")
	}
	// The key recomputes for the next caller.
	v, computed = dedup(&mu, cache, inflight, "k", func() (int, bool) { return 9, true })
	if v != 9 || !computed {
		t.Fatalf("recompute after uncacheable = (%d, %v), want (9, true)", v, computed)
	}
	if cache["k"] != 9 {
		t.Fatal("cacheable recompute was not published")
	}
}

// --- worker pool ---------------------------------------------------------------

func TestRunPoolCoversAllIndices(t *testing.T) {
	ctx := context.Background()
	for _, workers := range []int{1, 3, 8, 100} {
		const n = 37
		hits := make([]atomic.Int32, n)
		if err := runPool(ctx, workers, n, func(i int) { hits[i].Add(1) }); err != nil {
			t.Fatalf("workers=%d: runPool error: %v", workers, err)
		}
		for i := range hits {
			if c := hits[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d executed %d times", workers, i, c)
			}
		}
	}
	_ = runPool(ctx, 4, 0, func(int) { t.Fatal("fn called for n=0") })
}

// TestRunPoolDrainsOnCancel cancels the pool mid-feed and requires a clean
// teardown: runPool returns context.Canceled, no index past the cancellation
// point runs, and every worker goroutine exits (nothing left blocked on the
// feed channel).
func TestRunPoolDrainsOnCancel(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	err := runPool(ctx, 4, 1000, func(i int) {
		if ran.Add(1) == 8 {
			cancel()
		}
		time.Sleep(100 * time.Microsecond)
	})
	if err != context.Canceled {
		t.Fatalf("runPool error = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n >= 1000 {
		t.Fatalf("pool ran all %d jobs despite cancellation", n)
	}
	waitForGoroutines(t, before)
}

// TestRunPoolDrainsOnPanic covers the early-error teardown: a panicking job
// (the "policy fails on first eviction" scenario — SelectVictim panics inside
// a worker) must not strand the feeder on the feed channel or kill the
// process from a worker goroutine. The panic re-raises on the caller after
// every worker has exited.
func TestRunPoolDrainsOnPanic(t *testing.T) {
	before := runtime.NumGoroutine()
	var ran atomic.Int32
	func() {
		defer func() {
			if p := recover(); p != "policy failed on first eviction" {
				t.Errorf("recovered %v, want the job's panic value", p)
			}
		}()
		_ = runPool(context.Background(), 4, 1000, func(i int) {
			if ran.Add(1) == 5 {
				panic("policy failed on first eviction")
			}
			time.Sleep(100 * time.Microsecond)
		})
		t.Error("runPool returned instead of panicking")
	}()
	if n := ran.Load(); n >= 1000 {
		t.Fatalf("pool ran all %d jobs despite the panic", n)
	}
	waitForGoroutines(t, before)
}

// TestSuitePanickingRunDrains runs real suite cells whose probe factory
// panics under a 4-worker pool: the panic must surface to the caller with
// the pool fully drained, and the poisoned cells must be reclaimable
// afterwards (dedup drops panicked flights).
func TestSuitePanickingRunDrains(t *testing.T) {
	var failing atomic.Bool
	failing.Store(true)
	s := NewSuite(Options{Quick: true, Seed: 1, Workers: 4,
		Probe: func(RunInfo) probe.Probe {
			if failing.Load() {
				panic("probe factory failed")
			}
			return nil
		}})
	app, _ := byAbbr(s.apps, "HOT")
	specs := make([]runspec.Spec, 4)
	for i := range specs {
		specs[i] = s.spec(app, "lru", 75)
		specs[i].Tuning = runspec.Tuning{WalkLatency: 21 + i}
	}
	before := runtime.NumGoroutine()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("panicking run did not propagate out of the pool")
			}
		}()
		_ = runPool(context.Background(), 4, 4, func(i int) {
			s.RunSpec(specs[i])
		})
	}()
	waitForGoroutines(t, before)
	// The cells are reclaimable: a well-behaved retry of the same key works.
	failing.Store(false)
	r := s.RunSpec(specs[0])
	if r.Accesses == 0 {
		t.Fatal("retry after panicked flight produced an empty result")
	}
}

// waitForGoroutines waits for the goroutine count to fall back to (or below)
// the pre-test baseline, tolerating runtime background goroutines.
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d running, baseline %d", runtime.NumGoroutine(), baseline)
}

// cancellingProbe cancels the suite's context after observing `after`
// simulation events, forcing a mid-run cancellation.
type cancellingProbe struct {
	cancel context.CancelFunc
	after  int
	seen   int
}

func (p *cancellingProbe) Emit(probe.Event) {
	p.seen++
	if p.seen == p.after {
		p.cancel()
	}
}

func (p *cancellingProbe) Flush() error { return nil }

// TestCancelledRunNeverCached is the suite half of the cancellation
// regression: a run cancelled partway must never leave its partial result
// cached under the spec's ID — a later identical request must recompute, not
// inherit the truncated simulation.
func TestCancelledRunNeverCached(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	factoryCalls := 0
	s := NewSuite(Options{Quick: true, Seed: 1, Context: ctx,
		Probe: func(RunInfo) probe.Probe {
			factoryCalls++
			return &cancellingProbe{cancel: cancel, after: 100}
		}})
	app, _ := byAbbr(s.apps, "HOT")
	r := s.RunSpec(s.spec(app, "lru", 75))
	if !r.Cancelled {
		t.Fatal("probe-triggered cancel did not mark the result cancelled")
	}
	if n := s.CachedRuns(); n != 0 {
		t.Fatalf("cancelled run left %d cached results", n)
	}
	// The same spec recomputes instead of serving the partial result.
	r2 := s.RunSpec(s.spec(app, "lru", 75))
	if factoryCalls != 2 {
		t.Fatalf("second request ran %d simulations in total, want 2 (no cache hit)", factoryCalls)
	}
	if !r2.Cancelled {
		t.Fatal("recomputation under a cancelled context should cancel again")
	}
	if n := s.CachedRuns(); n != 0 {
		t.Fatalf("recomputed cancelled run left %d cached results", n)
	}
}

// --- suite concurrency ---------------------------------------------------------

// TestConcurrentSuiteRace hammers every shared cache — traces, future
// indexes, plain runs, and variant runs — from many goroutines. Run it under
// `go test -race`; it is cheap enough for -short mode. The atomic counter
// proves singleflight semantics: the variant build closure runs once per key
// no matter how many goroutines request it.
func TestConcurrentSuiteRace(t *testing.T) {
	var simulated atomic.Int32 // probe factory fires once per memoized cell
	s := NewSuite(Options{Quick: true, Seed: 1, Workers: 4,
		Probe: func(RunInfo) probe.Probe { simulated.Add(1); return nil }})
	apps := []string{"HOT", "STN", "SGM"}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < len(apps); i++ {
				app, _ := byAbbr(s.apps, apps[(w+i)%len(apps)])
				s.Trace(app)
				s.Run(app, "lru", 75)
				s.Run(app, "ideal", 75) // exercises the future-index singleflight
				sp := s.spec(app, "lru", 75)
				sp.Tuning = runspec.Tuning{WalkLatency: 20}
				s.RunSpec(sp)
			}
		}(w)
	}
	wg.Wait()

	if n := simulated.Load(); n != int32(3*len(apps)) {
		t.Errorf("simulations ran %d times, want %d (one per cell)", n, 3*len(apps))
	}
	// 3 apps × (LRU + Ideal + walk20 variant) = 9 cached cells.
	if n := s.CachedRuns(); n != 3*len(apps) {
		t.Errorf("cached %d runs, want %d", n, 3*len(apps))
	}
	// All goroutines must have shared one trace instance per app.
	for _, abbr := range apps {
		app, _ := byAbbr(s.apps, abbr)
		if s.Trace(app) != s.Trace(app) {
			t.Errorf("%s: Trace not memoized", abbr)
		}
	}
}

func TestReportsRejectsUnknownID(t *testing.T) {
	s := NewSuite(Options{Quick: true, Seed: 1})
	if _, err := s.Reports([]string{"table1", "nope"}); err == nil {
		t.Fatal("Reports accepted an unknown id")
	}
	if s.CachedRuns() != 0 {
		t.Fatal("Reports ran simulations before validating ids")
	}
}

func TestReportsPreservesRequestOrder(t *testing.T) {
	s := NewSuite(Options{Quick: true, Seed: 1, Workers: 2})
	ids := []string{"table2", "table1"}
	reps, err := s.Reports(ids)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		if reps[i].ID != id {
			t.Fatalf("reports[%d].ID = %q, want %q", i, reps[i].ID, id)
		}
	}
}

// deterministicIDs is every experiment except "overhead", whose report embeds
// host wall-clock measurements (classification/chain-update microseconds)
// that differ run to run even serially — its deterministic metrics are
// checked separately in TestParallelMatchesSerial.
func deterministicIDs() []string {
	var out []string
	for _, id := range IDs() {
		if id != "overhead" {
			out = append(out, id)
		}
	}
	return out
}

// TestParallelMatchesSerial is the determinism contract of the concurrent
// runner: the full quick-subset evaluation through Workers: 1 and Workers: 8
// must produce byte-identical Report renderings, bit-identical metrics, and
// deeply equal gpu.Result values for every cached run. Every future
// parallelism PR leans on this test.
func TestParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("two full quick-suite passes skipped in -short mode")
	}
	serial := NewSuite(Options{Quick: true, Seed: 1, Workers: 1})
	par := NewSuite(Options{Quick: true, Seed: 1, Workers: 8})
	ids := deterministicIDs()

	sReps, err := serial.Reports(ids)
	if err != nil {
		t.Fatal(err)
	}
	pReps, err := par.Reports(ids)
	if err != nil {
		t.Fatal(err)
	}

	for i := range ids {
		sr, pr := sReps[i], pReps[i]
		if sr.ID != pr.ID || sr.Title != pr.Title {
			t.Fatalf("%s: report identity differs", ids[i])
		}
		if sr.Text != pr.Text {
			t.Errorf("%s: rendered text differs between serial and parallel runs", ids[i])
		}
		if !reflect.DeepEqual(sr.Metrics, pr.Metrics) {
			t.Errorf("%s: metrics differ between serial and parallel runs", ids[i])
		}
	}

	// Overheads: the wall-clock fields are excluded, everything simulated is
	// compared bit for bit.
	sOv, pOv := serial.Overheads(), par.Overheads()
	for k, sv := range sOv.Metrics {
		if k == "classifyUS" || k == "updateUS" {
			continue
		}
		if pv, ok := pOv.Metrics[k]; !ok || pv != sv {
			t.Errorf("overhead metric %q: serial %v vs parallel %v", k, sv, pOv.Metrics[k])
		}
	}

	// Every cached simulation result — all fields, including the nested
	// HIR/HPE/driver statistics — must be identical.
	if ns, np := serial.CachedRuns(), par.CachedRuns(); ns != np {
		t.Fatalf("run-cache sizes differ: serial %d vs parallel %d", ns, np)
	}
	for key, sv := range serial.results {
		pv, ok := par.results[key]
		if !ok {
			t.Errorf("parallel run missing cell %+v", key)
			continue
		}
		if !reflect.DeepEqual(sv, pv) {
			t.Errorf("cell %+v: gpu.Result differs between serial and parallel runs", key)
		}
	}
}

package experiments

import (
	"fmt"

	"hpe/internal/addrspace"
	"hpe/internal/gpu"
	"hpe/internal/stats"
	"hpe/internal/trace"
	"hpe/internal/workload"
)

// Table1 renders the simulated-system configuration (Table I).
func (s *Suite) Table1() Report {
	//lint:ignore hpelint/specsource Table I documents the default configuration itself; no simulation runs on this config
	cfg := gpu.DefaultConfig(1)
	tb := stats.NewTable("component", "configuration")
	tb.AddRow("GPU Arch.", "NVIDIA GTX-480 Fermi-like")
	tb.AddRow("GPU Cores", fmt.Sprintf("%d cores, %.1fGHz", cfg.SMs, cfg.CoreMHz/1000))
	tb.AddRow("Warp slots", fmt.Sprintf("%d per SM", cfg.WarpsPerSM))
	tb.AddRow("Private L1 TLB", fmt.Sprintf("%d-entry per SM, %d-cycle latency, LRU, hit under miss",
		cfg.L1TLBEntries, cfg.L1TLBLatency))
	tb.AddRow("Shared L2 TLB", fmt.Sprintf("%d-entry, %d-associative, LRU, %d-cycle latency",
		cfg.L2TLBEntries, cfg.L2TLBWays, cfg.L2TLBLatency))
	tb.AddRow("Page table walk", fmt.Sprintf("single level, %d cycles, MSHR merging", cfg.WalkLatency))
	tb.AddRow("Page size", "4 KB OS pages")
	tb.AddRow("CPU-GPU interconnect", fmt.Sprintf("16GB/s, 20us page fault service time (%d cycles)",
		cfg.Driver.FaultLatency))
	tb.AddRow("HIR cache", fmt.Sprintf("%d-entry, %d-way, %d-bit counters, drain every %d faults",
		cfg.HIR.Entries, cfg.HIR.Ways, cfg.HIR.CounterBits, cfg.Driver.TransferInterval))
	return Report{ID: "table1", Title: "Configuration of the simulated system", Text: tb.Render(),
		Metrics: map[string]float64{"faultCycles": float64(cfg.Driver.FaultLatency)}}
}

// Table2 renders the workload characteristics (Table II), extended with the
// generated traces' measured footprints and lengths.
func (s *Suite) Table2() Report {
	tb := stats.NewTable("pattern", "suite", "app", "abbr", "pages", "MB", "refs", "refs/page")
	metrics := map[string]float64{}
	var totalMB float64
	for _, pt := range workload.PatternTypes() {
		for _, app := range s.apps {
			if app.Pattern != pt {
				continue
			}
			tr := s.Trace(app)
			p := trace.Profiler(tr, addrspace.DefaultGeometry())
			mb := float64(p.FootprintBytes) / (1 << 20)
			totalMB += mb
			tb.AddRow(pt.String(), app.Suite, app.Name, app.Abbr,
				fmt.Sprint(p.Footprint), fmt.Sprintf("%.1f", mb),
				fmt.Sprint(p.Refs), fmt.Sprintf("%.1f", p.MeanPageRefs))
			metrics["pages/"+app.Abbr] = float64(p.Footprint)
			metrics["refs/"+app.Abbr] = float64(p.Refs)
		}
	}
	metrics["meanMB"] = totalMB / float64(len(s.apps))
	text := tb.Render() + fmt.Sprintf("\nmean footprint %.1f MB (paper: 3–130 MB, mean 37 MB, scaled down ~4x for\nsimulation speed per the paper's own practice of limiting instruction counts)\n",
		metrics["meanMB"])
	return Report{ID: "table2", Title: "Workload characteristics", Text: text, Metrics: metrics}
}

package experiments

import (
	"fmt"

	"hpe/internal/runspec"
	"hpe/internal/stats"
	"hpe/internal/workload"
)

// Workload-v2 extension experiments: temporal phase schedules and
// multi-tenant colocation. Both build plain runspec.Specs — the scenario
// fields flow through the same canonicalize/materialize path as every other
// run — so the cells cache and delegate like any catalog cell.

// temporalSchedules are the phase schedules of the "temporal" study. They
// are deliberately small siblings of the named presets (workload.Scenarios):
// same shapes, reduced footprints, so the study stays cheap.
var temporalSchedules = []struct{ name, phases string }{
	{"diurnal", "HOT:16,HOT:32,HOT:48,HOT:32,HOT:16"},
	{"burst", "PAT:24,HSD:48,PAT:24"},
	{"regrow", "STN:32,STN:8,STN:32"},
}

// temporalPolicies are the policies the scenario studies compare: the
// baseline, the strongest classical contender, and the paper's policy.
var temporalPolicies = []string{"lru", "clockpro", "hpe"}

// TemporalStudy measures how the policies weather phase changes (experiment
// id "temporal"): each schedule switches the access pattern mid-run, so a
// policy's learned state is either an asset or a liability at the boundary.
// Evictions are normalised to LRU per schedule.
func (s *Suite) TemporalStudy() Report {
	header := []string{"schedule", "LRU"}
	for _, p := range temporalPolicies[1:] {
		header = append(header, display(p))
	}
	tb := stats.NewTable(header...)
	metrics := map[string]float64{}
	for _, sched := range temporalSchedules {
		lru := s.RunSpec(runspec.Spec{Phases: sched.phases, Policy: "lru", Rate: 75, Seed: s.opts.Seed + 1})
		row := []any{sched.name}
		for _, pol := range temporalPolicies {
			r := s.RunSpec(runspec.Spec{Phases: sched.phases, Policy: pol, Rate: 75, Seed: s.opts.Seed + 1})
			norm := normalise(r.Evictions, lru.Evictions)
			metrics[fmt.Sprintf("%s/%s", sched.name, display(pol))] = norm
			if pol != "lru" {
				row = append(row, norm)
			} else {
				row = append(row, 1.0)
			}
		}
		tb.AddRowf(row...)
	}
	text := tb.Render() +
		"\nevictions vs LRU per schedule; each schedule re-seeds its pattern at every\n" +
		"phase boundary, so policies that classify (HPE) or track reuse epochs\n" +
		"(CLOCK-Pro) must re-learn while the stale state still votes on victims.\n"
	return Report{ID: "temporal", Title: "Temporal phase-schedule study (workload v2)",
		Text: text, Metrics: metrics}
}

// ColocationStudy measures two-tenant contention (experiment id
// "colocation"): tenants "HSD,BFS" interleaved at the default quantum, with
// per-tenant fault/eviction attribution from the driver. CrossEvictions —
// evictions of one tenant's page triggered by the other tenant's fault — is
// the headline contention signal.
func (s *Suite) ColocationStudy() Report {
	tb := stats.NewTable("policy", "tenant", "faults", "evictions", "cross", "cross share")
	metrics := map[string]float64{}
	for _, pol := range temporalPolicies {
		r := s.RunSpec(runspec.Spec{Tenants: "HSD,BFS", Policy: pol, Rate: 75, Seed: s.opts.Seed + 1})
		for _, ts := range r.Driver.Tenants {
			share := 0.0
			if ts.Evictions > 0 {
				share = float64(ts.CrossEvictions) / float64(ts.Evictions)
			}
			metrics[fmt.Sprintf("%s/%s/cross", display(pol), ts.Name)] = float64(ts.CrossEvictions)
			metrics[fmt.Sprintf("%s/%s/faults", display(pol), ts.Name)] = float64(ts.Faults)
			tb.AddRowf(display(pol), ts.Name, ts.Faults, ts.Evictions, ts.CrossEvictions,
				fmt.Sprintf("%.0f%%", share*100))
		}
	}
	// Interleave sensitivity: a finer quantum mixes the tenants' reuse
	// windows more tightly, raising cross-tenant pressure for the same pages.
	tb2 := stats.NewTable("interleave", "evictions", "cross (both tenants)")
	for _, iv := range []int{256, workload.DefaultInterleave, 4096} {
		r := s.RunSpec(runspec.Spec{Tenants: "HSD,BFS", Interleave: iv, Policy: "hpe", Rate: 75, Seed: s.opts.Seed + 1})
		var cross uint64
		for _, ts := range r.Driver.Tenants {
			cross += ts.CrossEvictions
		}
		metrics[fmt.Sprintf("iv%d/cross", iv)] = float64(cross)
		tb2.AddRowf(iv, r.Evictions, cross)
	}
	text := tb.Render() + "\nHPE interleave sensitivity:\n" + tb2.Render() +
		"\nevictions are charged to the victim's owner; \"cross\" counts those whose\n" +
		"triggering fault came from the other tenant. The thrashing tenant (HSD)\n" +
		"exports pressure onto the frontier tenant's working set.\n"
	return Report{ID: "colocation", Title: "Multi-tenant colocation study (workload v2)",
		Text: text, Metrics: metrics}
}

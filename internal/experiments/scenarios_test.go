package experiments

import (
	"strings"
	"testing"
)

func TestTemporalStudyShape(t *testing.T) {
	s := NewSuite(Options{Quick: true, Seed: 1})
	rep := s.TemporalStudy()
	if rep.ID != "temporal" {
		t.Fatalf("report id %q", rep.ID)
	}
	for _, sched := range temporalSchedules {
		if !strings.Contains(rep.Text, sched.name) {
			t.Errorf("report missing schedule %s:\n%s", sched.name, rep.Text)
		}
		if rep.Metrics[sched.name+"/LRU"] != 1.0 {
			t.Errorf("%s: LRU not normalised to 1.0: %v", sched.name, rep.Metrics)
		}
		if rep.Metrics[sched.name+"/HPE"] == 0 {
			t.Errorf("%s: no HPE metric", sched.name)
		}
	}
}

func TestColocationStudyShape(t *testing.T) {
	s := NewSuite(Options{Quick: true, Seed: 1})
	rep := s.ColocationStudy()
	if rep.ID != "colocation" {
		t.Fatalf("report id %q", rep.ID)
	}
	for _, tenant := range []string{"HSD", "BFS"} {
		if !strings.Contains(rep.Text, tenant) {
			t.Errorf("report missing tenant %s", tenant)
		}
		if rep.Metrics["LRU/"+tenant+"/faults"] == 0 {
			t.Errorf("tenant %s recorded no faults under LRU", tenant)
		}
	}
	// The interleave sweep must actually vary contention: at least one
	// quantum's cross-eviction total must differ from another's.
	a, b, c := rep.Metrics["iv256/cross"], rep.Metrics["iv1024/cross"], rep.Metrics["iv4096/cross"]
	if a == b && b == c {
		t.Errorf("interleave sweep flat: %v %v %v", a, b, c)
	}
}

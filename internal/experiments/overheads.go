package experiments

import (
	"fmt"
	"strings"
	"time"

	"hpe/internal/addrspace"
	"hpe/internal/hir"
	"hpe/internal/hpe"
	"hpe/internal/stats"
)

// Overheads reproduces the §V-C overhead analysis: HIR storage cost, the
// wall-clock cost of classification and chain updates (measured on the host
// running this reproduction, mirroring the paper's own wall-clock
// methodology), and the host-CPU core-load estimate per policy.
func (s *Suite) Overheads() Report {
	var b strings.Builder
	metrics := map[string]float64{}

	// --- HIR storage (paper: 80-bit entries, 10 KB total, 4.2% of 240 KB
	// of L1 data cache across SMs).
	h := hir.New(hir.DefaultConfig())
	storage := h.StorageBytes()
	l1DataTotal := 15 * 16 * 1024 // Table I: 16 KB L1 per SM × 15 SMs
	metrics["hirBytes"] = float64(storage)
	fmt.Fprintf(&b, "HIR storage: %d bytes/entry, %d KB total = %.1f%% of all SMs' L1 data cache (%d KB)\n",
		h.TransferBytes(1), storage/1024, float64(storage)/float64(l1DataTotal)*100, l1DataTotal/1024)
	fmt.Fprintf(&b, "  paper: 10 B/entry, 10 KB, 4.2%% of 240 KB\n\n")

	// --- Classification cost: wall-clock time to classify a KMN-sized
	// chain (the largest footprint, as the paper chose).
	classifyUS := measureClassification(8192 / 16)
	metrics["classifyUS"] = classifyUS
	fmt.Fprintf(&b, "classification of a KMN-sized chain: %.1f us (paper: 16.7 us, once per run, vs 20 us fault penalty)\n\n", classifyUS)

	// --- Chain-update cost: wall-clock time to apply a 150-record HIR drain
	// to a 200-entry chain (the paper's worst-case MVT approximation).
	updateUS := measureChainUpdate(200, 150)
	metrics["updateUS"] = updateUS
	fmt.Fprintf(&b, "applying a 150-record drain to a 200-set chain: %.1f us\n", updateUS)
	fmt.Fprintf(&b, "  paper: 16.1 us worst case, amortised over %d faults -> ~5%% of the fault penalty,\n", 16)
	fmt.Fprintf(&b, "  and off the fault-handling critical path\n\n")

	// --- Host core load: driver busy time / total runtime.
	tb := stats.NewTable("policy", "core load @75%", "core load @50%")
	for _, pol := range []string{"lru", "rrip", "clockpro", "hpe"} {
		row := []string{display(pol)}
		for _, rate := range Rates {
			var loads []float64
			for _, app := range s.apps {
				r := s.Run(app, pol, rate)
				if r.Cycles > 0 {
					loads = append(loads, float64(r.Driver.BusyCycles)/float64(r.Cycles))
				}
			}
			load := stats.Mean(loads)
			metrics[fmt.Sprintf("load%d/%s", rate, display(pol))] = load
			row = append(row, fmt.Sprintf("%.1f%%", load*100))
		}
		tb.AddRow(row...)
	}
	b.WriteString(tb.Render())
	b.WriteString("\npaper: LRU 29.9%/39.3%, RRIP 30.3%/39.5%, CLOCK-Pro 29.5%/39.2%, HPE 34.0%/47.2%\n")
	b.WriteString("(HPE's extra load comes from HIR transfers; fewer faults partially repay it)\n")

	return Report{ID: "overhead", Title: "Overhead analysis (§V-C)", Text: b.String(), Metrics: metrics}
}

// measureClassification times HPE's statistics classification over a chain
// of `sets` page sets, in microseconds (median of several trials).
func measureClassification(sets int) float64 {
	best := time.Duration(1 << 62)
	for trial := 0; trial < 5; trial++ {
		h := hpe.New(hpe.DefaultConfig())
		g := addrspace.DefaultGeometry()
		for i := 0; i < sets; i++ {
			// Populate with mixed counters: fault in 3..16 pages per set.
			n := 3 + i%14
			for off := 0; off < n; off++ {
				p := g.PageAt(addrspace.SetID(i), off)
				h.OnFault(p, 0)
				h.OnMapped(p, 0)
			}
		}
		//lint:ignore hpelint/determinism Table VI measures real wall-clock software overhead; the figure is labelled best-of-N and never feeds golden output
		start := time.Now()
		h.SelectVictim() // triggers the one-time classification
		//lint:ignore hpelint/determinism wall-clock pairing for the Table VI overhead measurement above
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return float64(best.Nanoseconds()) / 1e3
}

// measureChainUpdate times the application of an HIR drain of `records`
// records to a chain of `sets` sets, in microseconds.
func measureChainUpdate(sets, records int) float64 {
	h := hpe.New(hpe.DefaultConfig())
	g := addrspace.DefaultGeometry()
	for i := 0; i < sets; i++ {
		for off := 0; off < 4; off++ {
			p := g.PageAt(addrspace.SetID(i), off)
			h.OnFault(p, 0)
			h.OnMapped(p, 0)
		}
	}
	recs := make([]hir.Record, records)
	for i := range recs {
		counts := make([]uint8, 16)
		counts[i%16] = uint8(1 + i%3)
		recs[i] = hir.Record{Set: addrspace.SetID(i % sets), Counts: counts}
	}
	best := time.Duration(1 << 62)
	for trial := 0; trial < 7; trial++ {
		//lint:ignore hpelint/determinism Table VI measures real wall-clock software overhead; the figure is labelled best-of-N and never feeds golden output
		start := time.Now()
		h.OnHitBatch(recs)
		//lint:ignore hpelint/determinism wall-clock pairing for the Table VI overhead measurement above
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return float64(best.Nanoseconds()) / 1e3
}

// paperIDs are the experiments that reproduce the paper's own tables and
// figures, in paper order; extensionIDs are the studies beyond the paper.
var (
	paperIDs = []string{"table1", "table2", "fig3", "fig7", "fig8", "fig9", "fig10",
		"fig11", "fig12", "fig13", "fig14", "fig15", "transfer", "walklat", "overhead"}
	extensionIDs = []string{"ext", "sweep", "division", "channels", "translation",
		"prefetch", "datapath", "hirsize", "temporal", "colocation"}
)

// All runs every paper experiment in paper order (concurrently when
// Options.Workers > 1; output is identical either way).
func (s *Suite) All() []Report {
	reps, err := s.Reports(paperIDs)
	if err != nil {
		panic(err) // paperIDs are all registered; unreachable
	}
	return reps
}

// experiment resolves an ID to its (unexecuted) experiment function.
func (s *Suite) experiment(id string) (func() Report, bool) {
	switch id {
	case "table1":
		return s.Table1, true
	case "table2":
		return s.Table2, true
	case "fig3":
		return s.Fig3, true
	case "fig7":
		return s.Fig7, true
	case "fig8":
		return s.Fig8, true
	case "fig9":
		return s.Fig9, true
	case "fig10":
		return s.Fig10, true
	case "fig11":
		return s.Fig11, true
	case "fig12":
		return s.Fig12, true
	case "fig13":
		return s.Fig13, true
	case "fig14":
		return s.Fig14, true
	case "fig15":
		return s.Fig15, true
	case "transfer":
		return s.TransferInterval, true
	case "walklat":
		return s.WalkLatency, true
	case "overhead":
		return s.Overheads, true
	case "ext":
		return s.ExtendedPolicies, true
	case "sweep":
		return s.OversubscriptionSweep, true
	case "division":
		return s.DivisionStudy, true
	case "channels":
		return s.ChannelStudy, true
	case "translation":
		return s.TranslationStudy, true
	case "prefetch":
		return s.PrefetchStudy, true
	case "datapath":
		return s.DataPathStudy, true
	case "hirsize":
		return s.HIRSizeStudy, true
	case "temporal":
		return s.TemporalStudy, true
	case "colocation":
		return s.ColocationStudy, true
	default:
		return nil, false
	}
}

// ByID returns the experiment with the given ID, or false.
func (s *Suite) ByID(id string) (Report, bool) {
	fn, ok := s.experiment(id)
	if !ok {
		return Report{}, false
	}
	return fn(), true
}

// IDs lists all experiment identifiers: the paper's set in paper order,
// then the extensions.
func IDs() []string {
	out := make([]string, 0, len(paperIDs)+len(extensionIDs))
	out = append(out, paperIDs...)
	return append(out, extensionIDs...)
}

package experiments

// Concurrent suite runner: a worker-pool scheduler that shards the
// (app, policy, rate, variant) run matrix across Options.Workers goroutines,
// plus the singleflight primitive that makes the Suite's memoized caches
// goroutine-safe. Every simulation is deterministic and keyed, and report
// aggregation walks the caches in canonical order, so parallel execution is
// byte-identical to serial execution (TestParallelMatchesSerial is the
// contract). Workers == 1 bypasses every goroutine and channel — the
// debugging path.

import (
	"context"
	"fmt"
	"sync"

	"hpe/internal/runspec"
)

// flight is one in-progress singleflight computation. The goroutine that
// claims a key computes the value; later arrivals block on done and read
// val. ok distinguishes a completed computation from one that panicked;
// cacheable records the compute function's verdict on whether the value may
// be published to the memo cache (a cancelled, partial simulation must not
// be).
type flight[V any] struct {
	done      chan struct{}
	val       V
	ok        bool
	cacheable bool
}

// dedup returns cache[key], computing it at most once across concurrent
// callers: the first goroutine to ask runs compute with mu released, every
// other goroutine blocks until the value is published. compute's second
// return value decides whether the result enters the cache — an uncacheable
// result (e.g. a simulation cut short by cancellation) is still handed to
// this round's waiters but is never visible to later callers, who recompute.
// The publication decision and the cache write happen under one critical
// section, so there is no window in which an uncacheable value can be
// observed in the cache. The returned bool reports whether this caller did
// the computing (callers use it to emit progress exactly once per cell). If
// compute panics, the panic propagates to the computing caller and waiters
// retry the computation themselves.
func dedup[K comparable, V any](mu *sync.Mutex, cache map[K]V, inflight map[K]*flight[V],
	key K, compute func() (V, bool)) (V, bool) {
	mu.Lock()
	for {
		if v, ok := cache[key]; ok {
			mu.Unlock()
			return v, false
		}
		f, ok := inflight[key]
		if !ok {
			break
		}
		mu.Unlock()
		<-f.done
		if f.ok {
			return f.val, false
		}
		mu.Lock() // the computing goroutine panicked: try to claim the key ourselves
	}
	f := &flight[V]{done: make(chan struct{})}
	inflight[key] = f
	mu.Unlock()

	defer func() {
		mu.Lock()
		if f.ok && f.cacheable {
			cache[key] = f.val
		}
		delete(inflight, key)
		mu.Unlock()
		close(f.done)
	}()
	f.val, f.cacheable = compute()
	f.ok = true
	return f.val, true
}

// workers normalizes Options.Workers: anything below 1 means serial.
func (s *Suite) workers() int {
	if s.opts.Workers < 1 {
		return 1
	}
	return s.opts.Workers
}

// runPool executes fn(0..n-1) across at most `workers` goroutines. With one
// worker (or one job) it degenerates to a plain loop on the calling
// goroutine — no channels, no goroutines.
//
// Teardown is deterministic in both failure modes:
//
//   - Cancellation: when ctx is done the feeder stops handing out indices,
//     in-flight fn calls finish (their simulations observe the same ctx and
//     stop at the next poll), every worker exits, and runPool returns
//     ctx.Err(). No goroutine is left blocked on the feed channel.
//   - Panic: a panicking fn no longer kills the process from inside a worker
//     (which would strand the feeder blocked on `next <-` with no receiver
//     during crash unwinding). The first panic value is captured, remaining
//     work is abandoned, all workers drain, and the panic is re-raised on
//     the calling goroutine once the pool is quiescent.
func runPool(ctx context.Context, workers, n int, fn func(int)) error {
	if workers > n {
		workers = n
	}
	done := ctx.Done()
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if done != nil {
				select {
				case <-done:
					return ctx.Err()
				default:
				}
			}
			fn(i)
		}
		return nil
	}
	next := make(chan int)
	stop := make(chan struct{}) // closed by the first panicking worker
	var stopOnce sync.Once
	var panicMu sync.Mutex
	var panicked bool
	var panicVal any
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				func() {
					defer func() {
						if p := recover(); p != nil {
							panicMu.Lock()
							if !panicked {
								panicked, panicVal = true, p
							}
							panicMu.Unlock()
							stopOnce.Do(func() { close(stop) })
						}
					}()
					fn(i)
				}()
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		//lint:ignore hpelint/determinism which worker takes which index never reaches output: results land in canonical-order aggregation (parallel_test.go proves 1-vs-8 worker byte identity)
		select {
		case next <- i:
		case <-stop:
			break feed
		case <-done:
			break feed
		}
	}
	close(next)
	wg.Wait()
	if panicked {
		panic(panicVal)
	}
	return ctx.Err()
}

// grid enumerates the standard matrix every figure draws from: the Fig. 12
// comparison policies at both oversubscription rates, over the suite's
// catalog, in canonical order.
func (s *Suite) grid() []runspec.Spec {
	specs := make([]runspec.Spec, 0, len(s.apps)*len(ComparisonPolicies)*len(Rates))
	for _, app := range s.apps {
		for _, policy := range ComparisonPolicies {
			for _, rate := range Rates {
				specs = append(specs, s.spec(app, policy, rate))
			}
		}
	}
	return specs
}

// Prewarm fills the standard run grid concurrently with the given worker
// count, so subsequent experiment functions hit the cache. Each simulation
// is independent and deterministic and lands in the singleflight-guarded
// cache, so the merged results are identical to a serial run. workers ≤ 1
// is a no-op (the experiments will compute runs on demand instead).
func (s *Suite) Prewarm(workers int) {
	if workers <= 1 {
		return
	}
	specs := s.grid()
	_ = runPool(s.ctx(), workers, len(specs), func(i int) {
		s.RunSpec(specs[i])
	})
}

// Reports runs the experiments with the given IDs and returns their reports
// in the same order. Unknown IDs fail before anything runs. With
// Options.Workers > 1 the standard run matrix is sharded across a worker
// pool first (the bulk of the simulation work), then the experiment
// functions themselves execute concurrently — their variant runs deduplicate
// through the singleflight cache, so shared cells are still simulated once.
// Aggregation order is the ids slice, and each report is assembled from
// cached results in canonical catalog order, so output is byte-identical to
// Workers == 1. When Options.Context is cancelled mid-run the pool drains
// deterministically and Reports returns the context's error with no reports
// (partial aggregates are never surfaced).
func (s *Suite) Reports(ids []string) ([]Report, error) {
	fns := make([]func() Report, len(ids))
	for i, id := range ids {
		fn, ok := s.experiment(id)
		if !ok {
			return nil, fmt.Errorf("experiments: unknown experiment %q", id)
		}
		fns[i] = fn
	}
	if w := s.workers(); w > 1 {
		s.Prewarm(w)
	}
	out := make([]Report, len(ids))
	if err := runPool(s.ctx(), s.workers(), len(ids), func(i int) { out[i] = fns[i]() }); err != nil {
		return nil, err
	}
	return out, nil
}

package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"sync/atomic"
	"testing"

	"hpe/internal/gpu"
	"hpe/internal/runspec"
)

// TestRunnerDelegationByteIdentical is the contract the cluster coordinator
// is built on: a suite whose cells are delegated through Options.Runner —
// including a JSON round-trip of every gpu.Result, exactly what the wire
// path does — renders reports byte-identical to a suite simulating locally.
func TestRunnerDelegationByteIdentical(t *testing.T) {
	local := NewSuite(Options{Quick: true, Seed: 1})

	// The "remote" side: an inner suite standing in for a backend. The outer
	// suite never simulates; every cell flows through the Runner and a JSON
	// round-trip, as it would over HTTP.
	backend := NewSuite(Options{Quick: true, Seed: 1})
	var delegated atomic.Int32
	outer := NewSuite(Options{Quick: true, Seed: 1, Workers: 4,
		Runner: func(ctx context.Context, sp runspec.Spec, id string) (gpu.Result, error) {
			delegated.Add(1)
			if got := mustID(t, sp); got != id {
				return gpu.Result{}, errors.New("runner handed a non-canonical spec: " + got + " != " + id)
			}
			r := backend.RunSpec(sp)
			raw, err := json.Marshal(r)
			if err != nil {
				return gpu.Result{}, err
			}
			var back gpu.Result
			if err := json.Unmarshal(raw, &back); err != nil {
				return gpu.Result{}, err
			}
			return back, nil
		}})

	ids := []string{"fig10", "fig12"}
	want, err := local.Reports(ids)
	if err != nil {
		t.Fatal(err)
	}
	got, err := outer.Reports(ids)
	if err != nil {
		t.Fatal(err)
	}
	if delegated.Load() == 0 {
		t.Fatal("Runner was never invoked")
	}
	for i := range ids {
		if want[i].Text != got[i].Text {
			t.Errorf("%s: delegated report text differs from local", ids[i])
		}
		if !reflect.DeepEqual(want[i].Metrics, got[i].Metrics) {
			t.Errorf("%s: delegated metrics differ from local", ids[i])
		}
	}
	// The round-tripped cached results themselves are deeply equal.
	if nl, no := local.CachedRuns(), outer.CachedRuns(); nl != no {
		t.Fatalf("cache sizes differ: local %d vs delegated %d", nl, no)
	}
	for key, lv := range local.results {
		ov, ok := outer.results[key]
		if !ok {
			t.Errorf("delegated suite missing cell %s", key)
			continue
		}
		if !reflect.DeepEqual(lv, ov) {
			t.Errorf("cell %s: gpu.Result differs after JSON round-trip", key)
		}
	}
}

// TestRunnerErrorNeverCached pins the failure semantics: a Runner error
// yields a Cancelled placeholder that is handed to this round's waiters but
// never published, so a later request recomputes (and can succeed).
func TestRunnerErrorNeverCached(t *testing.T) {
	var fail atomic.Bool
	fail.Store(true)
	inner := NewSuite(Options{Quick: true, Seed: 1})
	s := NewSuite(Options{Quick: true, Seed: 1,
		Runner: func(ctx context.Context, sp runspec.Spec, id string) (gpu.Result, error) {
			if fail.Load() {
				return gpu.Result{}, errors.New("backend unavailable")
			}
			return inner.RunSpec(sp), nil
		}})
	app, _ := byAbbr(s.apps, "HOT")

	r := s.RunSpec(s.spec(app, "lru", 75))
	if !r.Cancelled {
		t.Fatal("runner error did not yield a Cancelled placeholder")
	}
	if n := s.CachedRuns(); n != 0 {
		t.Fatalf("failed delegation left %d cached results", n)
	}

	fail.Store(false)
	r = s.RunSpec(s.spec(app, "lru", 75))
	if r.Cancelled || r.Accesses == 0 {
		t.Fatalf("retry after runner failure did not produce a real result: %+v", r)
	}
	if n := s.CachedRuns(); n != 1 {
		t.Fatalf("successful retry cached %d results, want 1", n)
	}
}

// mustID canonicalizes and hashes a spec for test assertions.
func mustID(t *testing.T, sp runspec.Spec) string {
	t.Helper()
	c, err := sp.Canonicalize()
	if err != nil {
		t.Fatalf("canonicalize: %v", err)
	}
	return c.ID()
}

package experiments

import (
	"strings"
	"testing"

	"hpe/internal/hpe"
	"hpe/internal/runspec"
	"hpe/internal/trace"
	"hpe/internal/workload"
)

func quick(t *testing.T) *Suite {
	t.Helper()
	return NewSuite(Options{Quick: true, Seed: 1})
}

func TestSuiteAppSelection(t *testing.T) {
	full := NewSuite(Options{})
	if len(full.Apps()) != 23 {
		t.Fatalf("full suite has %d apps", len(full.Apps()))
	}
	q := NewSuite(Options{Quick: true})
	if len(q.Apps()) != 10 {
		t.Fatalf("quick suite has %d apps", len(q.Apps()))
	}
	// The quick subset must cover every pattern type.
	seen := map[workload.PatternType]bool{}
	for _, a := range q.Apps() {
		seen[a.Pattern] = true
	}
	if len(seen) != 6 {
		t.Fatalf("quick subset covers %d pattern types, want 6", len(seen))
	}
}

func TestIDsAndByIDRoundTrip(t *testing.T) {
	s := quick(t)
	ids := IDs()
	if len(ids) != 25 {
		t.Fatalf("IDs() = %d entries", len(ids))
	}
	// Cheap experiments resolve; the expensive ones are covered by the
	// shape tests — here we just validate the dispatch table for a couple.
	for _, id := range []string{"table1", "table2"} {
		rep, ok := s.ByID(id)
		if !ok {
			t.Fatalf("ByID(%q) missing", id)
		}
		if rep.ID != id || rep.Text == "" {
			t.Fatalf("ByID(%q) = %+v", id, rep)
		}
	}
	if _, ok := s.ByID("nope"); ok {
		t.Fatal("ByID accepted an unknown id")
	}
	// Every published ID resolves through the dispatch table (identity only;
	// execution happens in the shape tests).
	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate experiment id %q", id)
		}
		seen[id] = true
	}
}

func TestRunCachesResults(t *testing.T) {
	s := quick(t)
	app := s.Apps()[0]
	a := s.Run(app, "lru", 75)
	b := s.Run(app, "lru", 75)
	if a.Cycles != b.Cycles || a.Faults != b.Faults {
		t.Fatal("cached result differs")
	}
	if n := s.CachedRuns(); n != 1 {
		t.Fatalf("cache has %d entries, want 1", n)
	}
	s.Run(app, "lru", 50)
	if n := s.CachedRuns(); n != 2 {
		t.Fatal("different rate did not produce a new cache entry")
	}
}

func TestRunSpecVariantsCacheSeparately(t *testing.T) {
	s := quick(t)
	app := s.Apps()[0]
	s.Run(app, "lru", 75)
	sp := s.spec(app, "lru", 75)
	sp.Tuning = runspec.Tuning{WalkLatency: 20}
	v1 := s.RunSpec(sp)
	v2 := s.RunSpec(sp)
	if v1.Cycles != v2.Cycles {
		t.Fatal("variant cache returned different results")
	}
	if n := s.CachedRuns(); n != 2 {
		t.Fatalf("cache has %d entries, want 2 (base + variant)", n)
	}
	// A spec spelling the defaults explicitly is the same run: no new cell.
	explicit := s.spec(app, "lru", 75)
	explicit.Design = "l2tlb"
	explicit.Channels = 1
	explicit.Scale = 1
	s.RunSpec(explicit)
	if n := s.CachedRuns(); n != 2 {
		t.Fatalf("explicit-default spec created a new cache entry (%d cells)", n)
	}
}

func TestCapacityForRates(t *testing.T) {
	tr := workload.Catalog()[0].Generate()
	fp := tr.Footprint()
	if c := capacityFor(tr, 75); c < fp*3/4 || c > fp*3/4+1 {
		t.Fatalf("capacityFor 75%% = %d for fp %d", c, fp)
	}
	if c := capacityFor(tr, 100); c != fp {
		t.Fatalf("capacityFor 100%% = %d, want %d", c, fp)
	}
	empty := trace.New("empty", nil)
	if c := capacityFor(empty, 50); c != 1 {
		t.Fatalf("capacityFor on empty trace = %d, want floor 1", c)
	}
}

func TestMaterializedPolicyNames(t *testing.T) {
	s := quick(t)
	app := s.Apps()[0]
	for pol, wantName := range map[string]string{
		"lru": "LRU", "fifo": "FIFO", "lfu": "LFU", "random": "Random",
		"rrip": "RRIP", "clockpro": "CLOCK-Pro", "ideal": "Ideal", "hpe": "HPE",
		"clock": "CLOCK", "nru": "NRU", "arc": "ARC",
	} {
		m, err := s.spec(app, pol, 75).Materialize(s.env())
		if err != nil {
			t.Fatalf("materialize %s: %v", pol, err)
		}
		if m.Policy.Name() != wantName {
			t.Errorf("materialize(%s) policy = %s, want %s", pol, m.Policy.Name(), wantName)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown policy accepted")
		}
	}()
	s.Run(app, "no-such-policy", 75)
}

func TestRRIPConfiguredPerPattern(t *testing.T) {
	s := quick(t)
	hsd, _ := workload.ByAbbr("HSD") // Type II → thrashing config
	hot, _ := workload.ByAbbr("HOT") // Type I → default config
	// Both build RRIP; behavioural difference is covered in policy tests.
	// Here: just verify materialization does not fail and names match.
	mh, err1 := s.spec(hsd, "rrip", 75).Materialize(s.env())
	mo, err2 := s.spec(hot, "rrip", 75).Materialize(s.env())
	if err1 != nil || err2 != nil || mh.Policy.Name() != "RRIP" || mo.Policy.Name() != "RRIP" {
		t.Fatal("RRIP construction failed")
	}
}

func TestManualStrategyTable(t *testing.T) {
	cases := map[string]hpe.Strategy{
		"HOT": hpe.StrategyMRUC, // Type I
		"HSD": hpe.StrategyMRUC, // Type II
		"PAT": hpe.StrategyMRUC, // Type III regular
		"KMN": hpe.StrategyLRU,  // Type III outlier
		"SAD": hpe.StrategyLRU,  // Type III outlier
		"NW":  hpe.StrategyLRU,  // Type IV
		"SGM": hpe.StrategyMRUC, // Type V outlier
		"HIS": hpe.StrategyLRU,  // Type V
		"B+T": hpe.StrategyLRU,  // Type VI
	}
	for abbr, want := range cases {
		app, ok := workload.ByAbbr(abbr)
		if !ok {
			t.Fatalf("app %s missing", abbr)
		}
		if got := runspec.ManualStrategy(app); got != want {
			t.Errorf("ManualStrategy(%s) = %v, want %v", abbr, got, want)
		}
	}
}

func TestNormalise(t *testing.T) {
	if normalise(4, 2) != 2 {
		t.Fatal("normalise(4,2)")
	}
	if normalise(0, 0) != 1 {
		t.Fatal("normalise(0,0) should be 1 (both ideal)")
	}
	if normalise(5, 0) != 5 {
		t.Fatal("normalise(5,0) should pass through")
	}
}

func TestDisplayNames(t *testing.T) {
	for _, pol := range append(append([]string{}, ComparisonPolicies...), extendedPolicies...) {
		if d := display(pol); d == "" || d == pol {
			t.Errorf("policy %q has no display rendering (got %q)", pol, d)
		}
	}
}

func TestTable1And2Content(t *testing.T) {
	s := quick(t)
	t1 := s.Table1()
	if !strings.Contains(t1.Text, "GTX-480") || !strings.Contains(t1.Text, "20us") {
		t.Fatalf("Table1 missing key rows:\n%s", t1.Text)
	}
	if t1.Metrics["faultCycles"] != 28000 {
		t.Fatalf("fault cycles = %v", t1.Metrics["faultCycles"])
	}
	t2 := s.Table2()
	for _, abbr := range []string{"HOT", "KMN"} {
		if _, ok := t2.Metrics["pages/"+abbr]; !ok {
			t.Fatalf("Table2 missing %s", abbr)
		}
	}
	// KMN must be the largest footprint (the paper's classification-cost
	// assumption).
	kmn := t2.Metrics["pages/KMN"]
	for k, v := range t2.Metrics {
		if strings.HasPrefix(k, "pages/") && v > kmn {
			t.Fatalf("%s (%v pages) exceeds KMN (%v)", k, v, kmn)
		}
	}
}

func TestReportString(t *testing.T) {
	r := Report{ID: "x", Title: "T", Text: "body\n"}
	out := r.String()
	if !strings.Contains(out, "x") || !strings.Contains(out, "T") || !strings.Contains(out, "body") {
		t.Fatalf("Report.String() = %q", out)
	}
}

func TestProgressCallback(t *testing.T) {
	var lines []string
	s := NewSuite(Options{Quick: true, Progress: func(l string) { lines = append(lines, l) }})
	s.Run(s.Apps()[0], "lru", 75)
	if len(lines) != 1 {
		t.Fatalf("progress lines = %d, want 1", len(lines))
	}
	s.Run(s.Apps()[0], "lru", 75) // cached: no new line
	if len(lines) != 1 {
		t.Fatal("cached run emitted progress")
	}
}

func TestPrewarmMatchesSerial(t *testing.T) {
	serial := NewSuite(Options{Quick: true, Seed: 1})
	warm := NewSuite(Options{Quick: true, Seed: 1})
	warm.Prewarm(4)
	app := warm.Apps()[2]
	for _, pol := range ComparisonPolicies {
		for _, rate := range Rates {
			a := serial.Run(app, pol, rate)
			b := warm.Run(app, pol, rate)
			if a.Cycles != b.Cycles || a.Faults != b.Faults || a.Evictions != b.Evictions {
				t.Fatalf("%s@%d: prewarmed result differs: %v vs %v", pol, rate, a, b)
			}
		}
	}
	// Every grid cell was cached by the prewarm.
	want := len(warm.Apps()) * len(ComparisonPolicies) * len(Rates)
	if n := warm.CachedRuns(); n != want {
		t.Fatalf("prewarm cached %d results, want %d", n, want)
	}
}

func TestPrewarmNoopForOneWorker(t *testing.T) {
	s := NewSuite(Options{Quick: true})
	s.Prewarm(1)
	if len(s.results) != 0 {
		t.Fatal("Prewarm(1) ran simulations")
	}
}

// TestAllExperimentsQuick runs every registered experiment end to end over
// the quick subset and validates report structure. The numeric shape
// assertions live in the repository root's shape_test.go; this test is the
// harness's own smoke coverage.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment pass skipped in -short mode")
	}
	s := NewSuite(Options{Quick: true, Seed: 1})
	s.Prewarm(4)
	for _, id := range IDs() {
		rep, ok := s.ByID(id)
		if !ok {
			t.Fatalf("experiment %q not dispatchable", id)
		}
		if rep.ID != id {
			t.Errorf("%s: report carries id %q", id, rep.ID)
		}
		if rep.Title == "" || rep.Text == "" {
			t.Errorf("%s: empty report", id)
		}
		if id != "table1" && len(rep.Metrics) == 0 {
			t.Errorf("%s: no metrics", id)
		}
	}
}

package experiments

import (
	"runtime"
	"sync"

	"hpe/internal/gpu"
	"hpe/internal/workload"
)

// Prewarm runs the standard (app × policy × rate) grid concurrently and
// fills the result cache, so the subsequent single-threaded experiment
// functions hit the cache. Each simulation is independent and deterministic,
// so the merged results are identical to a serial run. workers ≤ 1 is a
// no-op.
func (s *Suite) Prewarm(workers int) {
	if workers <= 1 {
		return
	}
	if workers > runtime.NumCPU() {
		workers = runtime.NumCPU()
	}

	// Generate traces and future indexes up front, single-threaded: they are
	// shared read-only by the workers.
	for _, app := range s.apps {
		s.Trace(app)
		s.future(app)
	}

	type job struct {
		app  workload.App
		kind PolicyKind
		rate int
	}
	var jobs []job
	for _, app := range s.apps {
		for _, kind := range ComparisonPolicies {
			for _, rate := range Rates {
				key := runKey{app: app.Abbr, kind: kind, ratePct: rate}
				if _, done := s.results[key]; !done {
					jobs = append(jobs, job{app: app, kind: kind, rate: rate})
				}
			}
		}
	}

	results := make([]gpu.Result, len(jobs))
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				j := jobs[i]
				tr := s.traces[j.app.Abbr]
				capacity := capacityFor(tr, j.rate)
				cfg := s.simConfig(j.app, capacity, j.kind)
				pol := s.buildPolicy(j.kind, j.app, capacity)
				results[i] = gpu.Run(cfg, tr, pol)
			}
		}()
	}
	for i := range jobs {
		next <- i
	}
	close(next)
	wg.Wait()

	for i, j := range jobs {
		s.results[runKey{app: j.app.Abbr, kind: j.kind, ratePct: j.rate}] = results[i]
		if s.opts.Progress != nil {
			s.opts.Progress(results[i].String())
		}
	}
}

package experiments

import (
	"fmt"

	"hpe/internal/gpu"
	"hpe/internal/runspec"
	"hpe/internal/stats"
	"hpe/internal/workload"
)

// Extension experiments: studies beyond the paper's figure set, built on the
// same substrate. They cover the related-work policies the paper names but
// does not plot (CLOCK, NRU, ARC, FIFO, LFU), a full oversubscription sweep,
// and the "relaxed division requirement" remark of §V-B.

// extendedPolicies are the extra policies in catalog order of pedigree.
var extendedPolicies = []string{"fifo", "lfu", "clock", "nru", "arc"}

// ExtendedPolicies compares the related-work policies against LRU, HPE and
// Ideal at 75% oversubscription (experiment id "ext"). Every policy —
// including the extension set — builds through the registry, so this is a
// plain matrix over policy names.
func (s *Suite) ExtendedPolicies() Report {
	header := []string{"app", "LRU"}
	for _, p := range extendedPolicies {
		header = append(header, display(p))
	}
	header = append(header, "HPE", "Ideal=1.0")
	tb := stats.NewTable(header...)
	metrics := map[string]float64{}
	sums := map[string][]float64{}
	for _, app := range s.apps {
		ideal := s.Run(app, "ideal", 75)
		row := []any{app.Abbr}
		add := func(name string, r gpu.Result) {
			norm := normalise(r.Evictions, ideal.Evictions)
			row = append(row, norm)
			sums[name] = append(sums[name], norm)
		}
		add("LRU", s.Run(app, "lru", 75))
		for _, p := range extendedPolicies {
			add(display(p), s.Run(app, p, 75))
		}
		add("HPE", s.Run(app, "hpe", 75))
		row = append(row, 1.0)
		tb.AddRowf(row...)
	}
	text := tb.Render() + "\nmean evictions vs Ideal: "
	for _, name := range []string{"LRU", "FIFO", "LFU", "CLOCK", "NRU", "ARC", "HPE"} {
		m := stats.Mean(sums[name])
		metrics["mean/"+name] = m
		text += fmt.Sprintf("%s %.2f  ", name, m)
	}
	text += "\nCLOCK and NRU track LRU (they approximate it); LFU's pure frequency\n" +
		"fails the moving patterns; ARC needs resident hits to bootstrap and cannot\n" +
		"rescue pure cyclic thrash — the gap HPE (and CLOCK-Pro) target.\n"
	return Report{ID: "ext", Title: "Extended policy comparison (related-work policies)",
		Text: text, Metrics: metrics}
}

// SweepRates are the oversubscription points of the extension sweep.
var SweepRates = []int{90, 75, 60, 50, 40}

// OversubscriptionSweep measures LRU, HPE and Ideal across a finer
// oversubscription range than the paper's two points (experiment id
// "sweep"), reporting the geomean slowdown versus the 100% (compulsory-only)
// run of each app.
func (s *Suite) OversubscriptionSweep() Report {
	tb := stats.NewTable("rate", "LRU slowdown", "HPE slowdown", "Ideal slowdown", "HPE/LRU speedup")
	metrics := map[string]float64{}
	base := map[string]float64{}
	for _, app := range s.apps {
		base[app.Abbr] = s.Run(app, "lru", 100).IPC // compulsory-only; policy-independent
	}
	for _, rate := range SweepRates {
		var lruS, hpeS, idealS, sp []float64
		for _, app := range s.apps {
			lru := s.Run(app, "lru", rate)
			hp := s.Run(app, "hpe", rate)
			ideal := s.Run(app, "ideal", rate)
			b := base[app.Abbr]
			lruS = append(lruS, b/lru.IPC)
			hpeS = append(hpeS, b/hp.IPC)
			idealS = append(idealS, b/ideal.IPC)
			sp = append(sp, hp.IPC/lru.IPC)
		}
		l, h, id, v := stats.GeoMean(lruS), stats.GeoMean(hpeS), stats.GeoMean(idealS), stats.GeoMean(sp)
		metrics[fmt.Sprintf("lru/%d", rate)] = l
		metrics[fmt.Sprintf("hpe/%d", rate)] = h
		metrics[fmt.Sprintf("ideal/%d", rate)] = id
		metrics[fmt.Sprintf("speedup/%d", rate)] = v
		tb.AddRow(fmt.Sprintf("%d%%", rate), fmt.Sprintf("%.2fx", l), fmt.Sprintf("%.2fx", h),
			fmt.Sprintf("%.2fx", id), fmt.Sprintf("%.3fx", v))
	}
	text := tb.Render() + "\nslowdowns are geomean vs each app's compulsory-only (100%) run; the gap\n" +
		"between HPE and Ideal is the remaining headroom for online policies.\n"
	return Report{ID: "sweep", Title: "Oversubscription sweep (extension)", Text: text, Metrics: metrics}
}

// DivisionStudy implements §V-B's remark that relaxing the division
// requirement improves NW: it sweeps the division-check threshold on the
// division-sensitive apps (experiment id "division").
func (s *Suite) DivisionStudy() Report {
	thresholds := []int{0 /* cap = 64 */, 48, 32}
	labels := []string{"divide@64 (paper)", "divide@48", "divide@32", "no division"}
	tb := stats.NewTable(append([]string{"app@rate"}, labels...)...)
	metrics := map[string]float64{}
	for _, abbr := range []string{"NW", "MVT"} {
		app, ok := byAbbr(s.apps, abbr)
		if !ok {
			continue
		}
		for _, rate := range Rates {
			row := []any{fmt.Sprintf("%s@%d%%", abbr, rate)}
			for i, th := range thresholds {
				// Threshold 0 means "check at the counter cap" — the paper
				// default, so that spec canonicalizes to the plain HPE run.
				sp := s.spec(app, "hpe", rate)
				sp.Tuning = runspec.Tuning{HPEDivisionThreshold: th}
				r := s.RunSpec(sp)
				row = append(row, fmt.Sprintf("%d", r.Faults))
				metrics[fmt.Sprintf("faults%d/%s/%s", rate, abbr, labels[i])] = float64(r.Faults)
			}
			spOff := s.spec(app, "hpe", rate)
			spOff.Tuning = runspec.Tuning{HPEDisableDivision: true}
			off := s.RunSpec(spOff)
			row = append(row, fmt.Sprintf("%d", off.Faults))
			metrics[fmt.Sprintf("faults%d/%s/off", rate, abbr)] = float64(off.Faults)
			tb.AddRowf(row...)
		}
	}
	text := tb.Render() + "\npaper (§V-B): \"if more page sets are divided by relaxing the division\n" +
		"requirement, the performance of NW can be improved\". Fault counts above\n" +
		"quantify that remark on the division-sensitive workloads.\n"
	return Report{ID: "division", Title: "Page-set division threshold study (§V-B remark)",
		Text: text, Metrics: metrics}
}

func byAbbr(apps []workload.App, abbr string) (workload.App, bool) {
	for _, a := range apps {
		if a.Abbr == abbr {
			return a, true
		}
	}
	return workload.App{}, false
}

// ChannelStudy sweeps the driver's fault-service parallelism (extension,
// experiment id "channels"): how much of the oversubscription wall is
// queueing delay at the serial driver rather than eviction quality. LRU and
// HPE at 75% oversubscription, 1–8 channels, geomean IPC normalised to the
// serial driver.
func (s *Suite) ChannelStudy() Report {
	channels := []int{1, 2, 4, 8}
	tb := stats.NewTable("policy", "1 ch", "2 ch", "4 ch", "8 ch")
	metrics := map[string]float64{}
	for _, pol := range []string{"lru", "hpe"} {
		base := map[string]float64{}
		row := []any{display(pol)}
		for _, ch := range channels {
			var norms []float64
			for _, app := range s.apps {
				sp := s.spec(app, pol, 75)
				sp.Channels = ch // 1 is the default: that spec is the plain run
				r := s.RunSpec(sp)
				if ch == 1 {
					base[app.Abbr] = r.IPC
				}
				norms = append(norms, r.IPC/base[app.Abbr])
			}
			g := stats.GeoMean(norms)
			metrics[fmt.Sprintf("%s/%d", display(pol), ch)] = g
			row = append(row, g)
		}
		tb.AddRowf(row...)
	}
	text := tb.Render() + "\na pipelined driver attacks the queueing half of the fault wall; better\n" +
		"eviction (HPE) attacks the fault-count half — the two compose.\n"
	return Report{ID: "channels", Title: "Driver fault-service parallelism (extension)",
		Text: text, Metrics: metrics}
}

// TranslationStudy reproduces the paper's §II design choice as an
// experiment: the adopted shared-L2-TLB design versus the rejected
// page-walk-cache design (Power et al.). The comparison runs with the
// footprint prepopulated: under demand paging the 20 µs fault wall hides
// nanosecond translation latencies, so the designs only separate when
// translation is on the critical path (experiment id "translation").
func (s *Suite) TranslationStudy() Report {
	tb := stats.NewTable("app", "L2TLB IPC", "PWC IPC", "PWC/L2TLB", "PWC mean levels/walk")
	metrics := map[string]float64{}
	var ratios []float64
	for _, app := range s.apps {
		spL2 := s.spec(app, "lru", 100)
		spL2.Tuning = runspec.Tuning{Prepopulate: true}
		l2 := s.RunSpec(spL2)
		spPWC := s.spec(app, "lru", 100)
		spPWC.Design = "pwc"
		spPWC.Tuning = runspec.Tuning{Prepopulate: true}
		pwc := s.RunSpec(spPWC)
		ratio := pwc.IPC / l2.IPC
		ratios = append(ratios, ratio)
		metrics["ratio/"+app.Abbr] = ratio
		levels := 0.0
		if pwc.PTW != nil {
			levels = pwc.PTW.MeanLevels
		}
		tb.AddRow(app.Abbr, fmt.Sprintf("%.5f", l2.IPC), fmt.Sprintf("%.5f", pwc.IPC),
			fmt.Sprintf("%.3f", ratio), fmt.Sprintf("%.2f", levels))
	}
	g := stats.GeoMean(ratios)
	metrics["geomean"] = g
	text := tb.Render() + fmt.Sprintf("\ngeomean PWC/L2TLB = %.3f\n"+
		"paper (§II): \"we adopt the second design [shared L2 TLB] due to better\n"+
		"performance than the first [shared page-walk cache]\" — the ratio above\n"+
		"quantifies that choice on this substrate.\n", g)
	return Report{ID: "translation", Title: "Address-translation design study (§II)",
		Text: text, Metrics: metrics}
}

// PrefetchStudy measures UVM-style fault-block prefetching (an extension
// beyond the paper; real unified-memory runtimes migrate 64-KB blocks):
// LRU and HPE at 75% with 0/3/7/15 prefetched pages per fault (experiment
// id "prefetch").
func (s *Suite) PrefetchStudy() Report {
	depths := []int{0, 3, 7, 15}
	tb := stats.NewTable("policy", "pf=0", "pf=3", "pf=7", "pf=15")
	metrics := map[string]float64{}
	for _, pol := range []string{"lru", "hpe"} {
		row := []any{display(pol)}
		base := map[string]float64{}
		for _, pf := range depths {
			var norms []float64
			for _, app := range s.apps {
				sp := s.spec(app, pol, 75)
				sp.Prefetch = pf // 0 is the default: that spec is the plain run
				r := s.RunSpec(sp)
				if pf == 0 {
					base[app.Abbr] = r.IPC
				}
				norms = append(norms, r.IPC/base[app.Abbr])
			}
			g := stats.GeoMean(norms)
			metrics[fmt.Sprintf("%s/%d", display(pol), pf)] = g
			row = append(row, g)
		}
		tb.AddRowf(row...)
	}
	text := tb.Render() + "\ngeomean IPC normalised to no prefetching. Block prefetching collapses the\n" +
		"per-page fault storm of spatially dense workloads (most of the catalog);\n" +
		"eviction quality still decides what survives under oversubscription.\n"
	return Report{ID: "prefetch", Title: "Fault-block prefetching study (extension)",
		Text: text, Metrics: metrics}
}

// DataPathStudy turns on the full Table I memory hierarchy (per-SM L1D,
// shared L2, GDDR5 channels with row buffers) and reports its behaviour per
// pattern type, prepopulated so the data path is the critical path
// (experiment id "datapath"). The reproduction's default configuration
// leaves the data path off: the paper's results are fault-driven and data
// microtiming would only add noise there — this study demonstrates the
// substrate is nonetheless complete.
func (s *Suite) DataPathStudy() Report {
	tb := stats.NewTable("app", "L1D hit", "L2D hit", "DRAM row hit", "IPC slowdown vs no-datapath")
	metrics := map[string]float64{}
	var slows []float64
	for _, app := range s.apps {
		spBase := s.spec(app, "lru", 100)
		spBase.Tuning = runspec.Tuning{Prepopulate: true}
		base := s.RunSpec(spBase)
		spDP := s.spec(app, "lru", 100)
		spDP.DataPath = true
		spDP.Tuning = runspec.Tuning{Prepopulate: true}
		dp := s.RunSpec(spDP)
		l1 := rate(dp.DataL1Hits, dp.DataL1Misses)
		l2 := rate(dp.DataL2Hits, dp.DataL2Misses)
		row := 0.0
		if dp.DRAM != nil {
			row = dp.DRAM.RowHitRate
		}
		slow := base.IPC / dp.IPC
		slows = append(slows, slow)
		metrics["slow/"+app.Abbr] = slow
		metrics["l1d/"+app.Abbr] = l1
		tb.AddRow(app.Abbr, pct(l1), pct(l2), pct(row), fmt.Sprintf("%.2fx", slow))
	}
	g := stats.GeoMean(slows)
	metrics["geomean"] = g
	text := tb.Render() + fmt.Sprintf("\ngeomean slowdown from modelling the data hierarchy: %.2fx (prepopulated\n"+
		"runs; under demand paging the 20 µs fault wall dwarfs these latencies,\n"+
		"which is why the calibrated reproduction leaves the data path off).\n", g)
	return Report{ID: "datapath", Title: "Table I data-hierarchy study (extension)",
		Text: text, Metrics: metrics}
}

func rate(h, m uint64) float64 {
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

// HIRSizeStudy reproduces the §IV-B sizing claim: "an 8-way associative HIR
// with 1024 entries avoids way conflicts in the simulations for most
// applications (except MVT)". It sweeps the HIR capacity at fixed 8-way
// associativity and reports dropped hits (conflicts) and the IPC cost
// (experiment id "hirsize").
func (s *Suite) HIRSizeStudy() Report {
	sizes := []int{128, 256, 512, 1024}
	tb := stats.NewTable("app", "conflicts@128", "@256", "@512", "@1024 (paper)", "IPC 128/1024")
	metrics := map[string]float64{}
	for _, app := range s.apps {
		row := []any{app.Abbr}
		var ipc128, ipc1024 float64
		for _, entries := range sizes {
			// 1024 is the paper default: that spec folds to the plain run.
			sp := s.spec(app, "hpe", 75)
			sp.Tuning = runspec.Tuning{HIREntries: entries}
			r := s.RunSpec(sp)
			conflicts := uint64(0)
			if r.HIR != nil {
				conflicts = r.HIR.Conflicts
			}
			metrics[fmt.Sprintf("conflicts%d/%s", entries, app.Abbr)] = float64(conflicts)
			row = append(row, conflicts)
			switch entries {
			case 128:
				ipc128 = r.IPC
			case 1024:
				ipc1024 = r.IPC
			}
		}
		ratio := 1.0
		if ipc1024 > 0 {
			ratio = ipc128 / ipc1024
		}
		metrics["ipcRatio/"+app.Abbr] = ratio
		row = append(row, fmt.Sprintf("%.3f", ratio))
		tb.AddRowf(row...)
	}
	text := tb.Render() + "\npaper (§IV-B): 1024 entries × 8 ways eliminates way conflicts for most\n" +
		"applications — reproduced: zero conflicts across the catalog at 1024.\n" +
		"Undersized HIRs drop hits for the busiest apps (BFS, MVT first); the\n" +
		"lost information perturbs classification and adjustment rather than\n" +
		"costing IPC directly (BFS at 128 entries happens to profit).\n"
	return Report{ID: "hirsize", Title: "HIR capacity sensitivity (§IV-B sizing claim)",
		Text: text, Metrics: metrics}
}

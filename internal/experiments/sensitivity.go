package experiments

import (
	"fmt"
	"strings"

	"hpe/internal/gpu"
	"hpe/internal/runspec"
	"hpe/internal/stats"
	"hpe/internal/workload"
)

// sensitivitySpec builds the Figs. 7–8 HPE variant spec: dynamic adjustment
// off, manual per-app strategy, ideal (HIR-free) hit feed — all expressed as
// Tuning knobs so the runs are content-addressed like everything else.
// Canonicalization folds paper-default knobs away, so e.g. the Fig. 7
// size-16 cell and the Fig. 8 interval-64 cell hash to the same ID and
// share one simulation.
func (s *Suite) sensitivitySpec(app workload.App, shift uint, interval int) runspec.Spec {
	sp := s.spec(app, "hpe", 75)
	sp.Tuning = runspec.Tuning{SensitivityHPE: true, SetSizeShift: shift, HPEInterval: interval}
	return sp
}

// Fig7 reproduces Fig. 7: HPE's sensitivity to the page-set size (8/16/32
// pages) at interval length 64, reported as the average IPC per pattern
// type normalised to size 8, at 75% oversubscription.
func (s *Suite) Fig7() Report {
	sizes := []uint{3, 4, 5} // set-size shifts: 8, 16, 32 pages
	return s.sensitivityReport("fig7", "Sensitivity to page-set size (normalised to size 8)",
		[]string{"size 8", "size 16", "size 32"},
		func(app workload.App, variant int) gpu.Result {
			return s.RunSpec(s.sensitivitySpec(app, sizes[variant], 64))
		})
}

// Fig8 reproduces Fig. 8: sensitivity to the interval length (32/64/128
// faults) at page-set size 16, normalised to interval 32.
func (s *Suite) Fig8() Report {
	intervals := []int{32, 64, 128}
	return s.sensitivityReport("fig8", "Sensitivity to interval length (normalised to 32)",
		[]string{"interval 32", "interval 64", "interval 128"},
		func(app workload.App, variant int) gpu.Result {
			return s.RunSpec(s.sensitivitySpec(app, 4, intervals[variant]))
		})
}

// sensitivityReport runs three configuration variants over every app and
// reports average IPC per pattern type, normalised to the first variant.
func (s *Suite) sensitivityReport(id, title string, labels []string,
	run func(app workload.App, variant int) gpu.Result) Report {
	tb := stats.NewTable(append([]string{"pattern"}, labels...)...)
	metrics := map[string]float64{}
	byType := map[workload.PatternType][][]float64{} // pattern → variant → IPCs
	for _, app := range s.apps {
		for v := range labels {
			r := run(app, v)
			for len(byType[app.Pattern]) <= v {
				byType[app.Pattern] = append(byType[app.Pattern], nil)
			}
			byType[app.Pattern][v] = append(byType[app.Pattern][v], r.IPC)
		}
	}
	var spreadMax float64
	for _, pt := range workload.PatternTypes() {
		variants, ok := byType[pt]
		if !ok {
			continue
		}
		base := stats.Mean(variants[0])
		row := []any{pt.String()}
		for v := range variants {
			norm := stats.Mean(variants[v]) / base
			row = append(row, norm)
			metrics[fmt.Sprintf("%s/v%d", pt, v)] = norm
			if d := absf(norm - 1); d > spreadMax {
				spreadMax = d
			}
		}
		tb.AddRowf(row...)
	}
	metrics["maxSpread"] = spreadMax
	text := tb.Render() + fmt.Sprintf("\nmax deviation from baseline: %.1f%%\n"+
		"paper: variants differ by at most ~10–12%%\n", spreadMax*100)
	return Report{ID: id, Title: title, Text: text, Metrics: metrics}
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// TransferInterval reproduces the §V-A transfer-interval sensitivity test:
// full HPE (HIR + adjustment) with the hit-information transfer every 1, 8,
// 16, 32 and 64 page faults; mean IPC normalised to the paper's choice (16).
func (s *Suite) TransferInterval() Report {
	intervals := []int{1, 8, 16, 32, 64}
	tb := stats.NewTable("transfer interval", "geomean IPC vs t=16", "mean HIR cycles/run")
	metrics := map[string]float64{}
	base := map[string]float64{}
	for _, app := range s.apps {
		r := s.Run(app, "hpe", 75) // default: interval 16
		base[app.Abbr] = r.IPC
	}
	for _, iv := range intervals {
		var norms []float64
		var hirCycles []float64
		for _, app := range s.apps {
			// Interval 16 is the paper default; canonicalization folds it
			// away, so that cell shares the plain HPE run's ID and cache.
			sp := s.spec(app, "hpe", 75)
			sp.Tuning = runspec.Tuning{TransferInterval: iv}
			r := s.RunSpec(sp)
			norms = append(norms, r.IPC/base[app.Abbr])
			hirCycles = append(hirCycles, float64(r.Driver.HIRTransferCycles))
		}
		g := stats.GeoMean(norms)
		metrics[fmt.Sprintf("norm/%d", iv)] = g
		tb.AddRow(fmt.Sprint(iv), fmt.Sprintf("%.4f", g), fmt.Sprintf("%.0f", stats.Mean(hirCycles)))
	}
	text := tb.Render() + "\npaper: 16 makes the best tradeoff between frequency and performance\n"
	return Report{ID: "transfer", Title: "Transfer-interval sensitivity (§V-A)", Text: text, Metrics: metrics}
}

// WalkLatency reproduces the §V-B page-walk-latency study: LRU and HPE at
// walk latencies of 8 and 20 cycles.
func (s *Suite) WalkLatency() Report {
	tb := stats.NewTable("policy", "geomean IPC walk=8", "geomean IPC walk=20", "delta")
	metrics := map[string]float64{}
	var b strings.Builder
	for _, pol := range []string{"lru", "hpe"} {
		var ipc8, ipc20 []float64
		for _, app := range s.apps {
			r8 := s.Run(app, pol, 75)
			sp := s.spec(app, pol, 75)
			sp.Tuning = runspec.Tuning{WalkLatency: 20}
			r20 := s.RunSpec(sp)
			ipc8 = append(ipc8, r8.IPC)
			ipc20 = append(ipc20, r20.IPC)
		}
		g8, g20 := stats.GeoMean(ipc8), stats.GeoMean(ipc20)
		delta := (g20 - g8) / g8
		metrics[fmt.Sprintf("delta/%s", display(pol))] = delta
		tb.AddRow(display(pol), fmt.Sprintf("%.4f", g8), fmt.Sprintf("%.4f", g20),
			fmt.Sprintf("%+.2f%%", delta*100))
	}
	b.WriteString(tb.Render())
	b.WriteString("\npaper: minimal performance difference between 8 and 20 cycles\n")
	return Report{ID: "walklat", Title: "Page-walk-latency sensitivity (§V-B)", Text: b.String(), Metrics: metrics}
}

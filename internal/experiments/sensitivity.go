package experiments

import (
	"fmt"
	"strings"

	"hpe/internal/addrspace"
	"hpe/internal/gpu"
	"hpe/internal/hpe"
	"hpe/internal/policy"
	"hpe/internal/stats"
	"hpe/internal/trace"
	"hpe/internal/workload"
)

// manualStrategy returns the per-application strategy the paper's
// sensitivity methodology assigns manually: MRU-C for the regular
// applications (Types I–III except the KMN/SAD outliers, plus SGM), LRU for
// the rest.
func manualStrategy(app workload.App) hpe.Strategy {
	switch app.Pattern {
	case workload.PatternStreaming, workload.PatternThrashing:
		return hpe.StrategyMRUC
	case workload.PatternPartRepetitive:
		if app.Abbr == "KMN" || app.Abbr == "SAD" {
			return hpe.StrategyLRU
		}
		return hpe.StrategyMRUC
	default:
		if app.Abbr == "SGM" {
			return hpe.StrategyMRUC
		}
		return hpe.StrategyLRU
	}
}

// sensitivityHPE builds the Figs. 7–8 HPE variant: dynamic adjustment off,
// manual strategy, ideal (HIR-free) hit feed.
func sensitivityHPE(app workload.App, g addrspace.Geometry, interval int) *hpe.HPE {
	cfg := hpe.ConfigForGeometry(g, interval)
	cfg.DynamicAdjustment = false
	cfg.IdealHitFeed = true
	strat := manualStrategy(app)
	cfg.ManualStrategy = &strat
	return hpe.New(cfg)
}

// Fig7 reproduces Fig. 7: HPE's sensitivity to the page-set size (8/16/32
// pages) at interval length 64, reported as the average IPC per pattern
// type normalised to size 8, at 75% oversubscription.
func (s *Suite) Fig7() Report {
	sizes := []uint{3, 4, 5} // set-size shifts: 8, 16, 32 pages
	return s.sensitivityReport("fig7", "Sensitivity to page-set size (normalised to size 8)",
		[]string{"size 8", "size 16", "size 32"},
		func(app workload.App, variant int) gpu.Result {
			shift := sizes[variant]
			return s.RunVariant(app, KindHPE, 75, fmt.Sprintf("setsize%d", 1<<shift),
				func(tr *trace.Trace, capacity int) (gpu.Config, policy.Policy) {
					cfg := s.simConfig(app, capacity, KindHPE)
					cfg.UseHIR = false
					return cfg, sensitivityHPE(app, addrspace.NewGeometry(shift), 64)
				})
		})
}

// Fig8 reproduces Fig. 8: sensitivity to the interval length (32/64/128
// faults) at page-set size 16, normalised to interval 32.
func (s *Suite) Fig8() Report {
	intervals := []int{32, 64, 128}
	return s.sensitivityReport("fig8", "Sensitivity to interval length (normalised to 32)",
		[]string{"interval 32", "interval 64", "interval 128"},
		func(app workload.App, variant int) gpu.Result {
			iv := intervals[variant]
			return s.RunVariant(app, KindHPE, 75, fmt.Sprintf("interval%d", iv),
				func(tr *trace.Trace, capacity int) (gpu.Config, policy.Policy) {
					cfg := s.simConfig(app, capacity, KindHPE)
					cfg.UseHIR = false
					return cfg, sensitivityHPE(app, addrspace.DefaultGeometry(), iv)
				})
		})
}

// sensitivityReport runs three configuration variants over every app and
// reports average IPC per pattern type, normalised to the first variant.
func (s *Suite) sensitivityReport(id, title string, labels []string,
	run func(app workload.App, variant int) gpu.Result) Report {
	tb := stats.NewTable(append([]string{"pattern"}, labels...)...)
	metrics := map[string]float64{}
	byType := map[workload.PatternType][][]float64{} // pattern → variant → IPCs
	for _, app := range s.apps {
		for v := range labels {
			r := run(app, v)
			for len(byType[app.Pattern]) <= v {
				byType[app.Pattern] = append(byType[app.Pattern], nil)
			}
			byType[app.Pattern][v] = append(byType[app.Pattern][v], r.IPC)
		}
	}
	var spreadMax float64
	for _, pt := range workload.PatternTypes() {
		variants, ok := byType[pt]
		if !ok {
			continue
		}
		base := stats.Mean(variants[0])
		row := []any{pt.String()}
		for v := range variants {
			norm := stats.Mean(variants[v]) / base
			row = append(row, norm)
			metrics[fmt.Sprintf("%s/v%d", pt, v)] = norm
			if d := absf(norm - 1); d > spreadMax {
				spreadMax = d
			}
		}
		tb.AddRowf(row...)
	}
	metrics["maxSpread"] = spreadMax
	text := tb.Render() + fmt.Sprintf("\nmax deviation from baseline: %.1f%%\n"+
		"paper: variants differ by at most ~10–12%%\n", spreadMax*100)
	return Report{ID: id, Title: title, Text: text, Metrics: metrics}
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// TransferInterval reproduces the §V-A transfer-interval sensitivity test:
// full HPE (HIR + adjustment) with the hit-information transfer every 1, 8,
// 16, 32 and 64 page faults; mean IPC normalised to the paper's choice (16).
func (s *Suite) TransferInterval() Report {
	intervals := []int{1, 8, 16, 32, 64}
	tb := stats.NewTable("transfer interval", "geomean IPC vs t=16", "mean HIR cycles/run")
	metrics := map[string]float64{}
	base := map[string]float64{}
	for _, app := range s.apps {
		r := s.Run(app, KindHPE, 75) // default: interval 16
		base[app.Abbr] = r.IPC
	}
	for _, iv := range intervals {
		var norms []float64
		var hirCycles []float64
		for _, app := range s.apps {
			var r gpu.Result
			if iv == 16 {
				r = s.Run(app, KindHPE, 75)
			} else {
				iv := iv
				r = s.RunVariant(app, KindHPE, 75, fmt.Sprintf("transfer%d", iv),
					func(tr *trace.Trace, capacity int) (gpu.Config, policy.Policy) {
						cfg := s.simConfig(app, capacity, KindHPE)
						cfg.Driver.TransferInterval = iv
						return cfg, hpe.New(hpe.DefaultConfig())
					})
			}
			norms = append(norms, r.IPC/base[app.Abbr])
			hirCycles = append(hirCycles, float64(r.Driver.HIRTransferCycles))
		}
		g := stats.GeoMean(norms)
		metrics[fmt.Sprintf("norm/%d", iv)] = g
		tb.AddRow(fmt.Sprint(iv), fmt.Sprintf("%.4f", g), fmt.Sprintf("%.0f", stats.Mean(hirCycles)))
	}
	text := tb.Render() + "\npaper: 16 makes the best tradeoff between frequency and performance\n"
	return Report{ID: "transfer", Title: "Transfer-interval sensitivity (§V-A)", Text: text, Metrics: metrics}
}

// WalkLatency reproduces the §V-B page-walk-latency study: LRU and HPE at
// walk latencies of 8 and 20 cycles.
func (s *Suite) WalkLatency() Report {
	tb := stats.NewTable("policy", "geomean IPC walk=8", "geomean IPC walk=20", "delta")
	metrics := map[string]float64{}
	var b strings.Builder
	for _, kind := range []PolicyKind{KindLRU, KindHPE} {
		var ipc8, ipc20 []float64
		for _, app := range s.apps {
			r8 := s.Run(app, kind, 75)
			kindC := kind
			r20 := s.RunVariant(app, kind, 75, "walk20",
				func(tr *trace.Trace, capacity int) (gpu.Config, policy.Policy) {
					cfg := s.simConfig(app, capacity, kindC)
					cfg.WalkLatency = 20
					return cfg, s.buildPolicy(kindC, app, capacity)
				})
			ipc8 = append(ipc8, r8.IPC)
			ipc20 = append(ipc20, r20.IPC)
		}
		g8, g20 := stats.GeoMean(ipc8), stats.GeoMean(ipc20)
		delta := (g20 - g8) / g8
		metrics[fmt.Sprintf("delta/%s", kind)] = delta
		tb.AddRow(kind.String(), fmt.Sprintf("%.4f", g8), fmt.Sprintf("%.4f", g20),
			fmt.Sprintf("%+.2f%%", delta*100))
	}
	b.WriteString(tb.Render())
	b.WriteString("\npaper: minimal performance difference between 8 and 20 cycles\n")
	return Report{ID: "walklat", Title: "Page-walk-latency sensitivity (§V-B)", Text: b.String(), Metrics: metrics}
}

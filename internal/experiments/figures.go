package experiments

import (
	"fmt"
	"strings"

	"hpe/internal/stats"
)

// Rates are the paper's two oversubscription rates (Section V).
var Rates = []int{75, 50}

// Fig3 reproduces Fig. 3: evictions of LRU and RRIP normalised to the Ideal
// policy at 75% oversubscription.
func (s *Suite) Fig3() Report {
	tb := stats.NewTable("app", "pattern", "LRU/Ideal", "RRIP/Ideal")
	metrics := map[string]float64{}
	var lruN, rripN []float64
	for _, app := range s.apps {
		ideal := s.Run(app, "ideal", 75)
		lru := s.Run(app, "lru", 75)
		rrip := s.Run(app, "rrip", 75)
		ln := normalise(lru.Evictions, ideal.Evictions)
		rn := normalise(rrip.Evictions, ideal.Evictions)
		lruN = append(lruN, ln)
		rripN = append(rripN, rn)
		tb.AddRowf(app.Abbr, app.Pattern.String(), ln, rn)
		metrics["lru/"+app.Abbr] = ln
		metrics["rrip/"+app.Abbr] = rn
	}
	metrics["lru/mean"] = stats.Mean(lruN)
	metrics["rrip/mean"] = stats.Mean(rripN)
	text := tb.Render() +
		fmt.Sprintf("\nmean LRU/Ideal = %.3f   mean RRIP/Ideal = %.3f\n",
			metrics["lru/mean"], metrics["rrip/mean"])
	return Report{ID: "fig3", Title: "LRU and RRIP evictions normalised to Ideal (75% oversubscription)",
		Text: text, Metrics: metrics}
}

// normalise divides a by b, treating a zero baseline as 1 (both zero) or
// returning the raw count (pathological, flagged by tests).
func normalise(a, b uint64) float64 {
	if b == 0 {
		if a == 0 {
			return 1
		}
		return float64(a)
	}
	return float64(a) / float64(b)
}

// Fig10 reproduces Fig. 10: HPE's IPC speedup over LRU at both
// oversubscription rates, per application and averaged.
func (s *Suite) Fig10() Report {
	tb := stats.NewTable("app", "pattern", "speedup@75%", "speedup@50%")
	metrics := map[string]float64{}
	speedups := map[int][]float64{}
	for _, app := range s.apps {
		row := []any{app.Abbr, app.Pattern.String()}
		for _, rate := range Rates {
			lru := s.Run(app, "lru", rate)
			hpe := s.Run(app, "hpe", rate)
			sp := stats.Speedup(hpe.IPC, lru.IPC) // IPC ratio: HPE over LRU
			speedups[rate] = append(speedups[rate], sp)
			metrics[fmt.Sprintf("speedup%d/%s", rate, app.Abbr)] = sp
			row = append(row, sp)
		}
		tb.AddRowf(row...)
	}
	for _, rate := range Rates {
		metrics[fmt.Sprintf("mean%d", rate)] = stats.GeoMean(speedups[rate])
		metrics[fmt.Sprintf("amean%d", rate)] = stats.Mean(speedups[rate])
		metrics[fmt.Sprintf("max%d", rate)] = stats.Max(speedups[rate])
	}
	text := tb.Render() + fmt.Sprintf(
		"\ngeomean speedup: %.3fx @75%%, %.3fx @50%%   (arith mean %.3fx / %.3fx; max %.2fx)\n"+
			"paper reports:   1.34x @75%%, 1.16x @50%% (max 2.81x, HSD)\n",
		metrics["mean75"], metrics["mean50"], metrics["amean75"], metrics["amean50"], metrics["max75"])
	return Report{ID: "fig10", Title: "HPE performance vs LRU", Text: text, Metrics: metrics}
}

// Fig11 reproduces Fig. 11: HPE's evictions relative to LRU.
func (s *Suite) Fig11() Report {
	tb := stats.NewTable("app", "pattern", "HPE/LRU@75%", "HPE/LRU@50%")
	metrics := map[string]float64{}
	ratios := map[int][]float64{}
	for _, app := range s.apps {
		row := []any{app.Abbr, app.Pattern.String()}
		for _, rate := range Rates {
			lru := s.Run(app, "lru", rate)
			hpe := s.Run(app, "hpe", rate)
			r := normalise(hpe.Evictions, lru.Evictions)
			ratios[rate] = append(ratios[rate], r)
			metrics[fmt.Sprintf("ratio%d/%s", rate, app.Abbr)] = r
			row = append(row, r)
		}
		tb.AddRowf(row...)
	}
	for _, rate := range Rates {
		metrics[fmt.Sprintf("mean%d", rate)] = stats.Mean(ratios[rate])
	}
	text := tb.Render() + fmt.Sprintf(
		"\nmean evictions vs LRU: %.1f%% fewer @75%%, %.1f%% fewer @50%%\n"+
			"paper reports:         18%% fewer @75%%,   12%% fewer @50%%\n",
		(1-metrics["mean75"])*100, (1-metrics["mean50"])*100)
	return Report{ID: "fig11", Title: "HPE evictions vs LRU", Text: text, Metrics: metrics}
}

// Fig12 reproduces Fig. 12: every policy's IPC and evictions normalised to
// Ideal at both rates, plus HPE's speedup over each baseline.
func (s *Suite) Fig12() Report {
	metrics := map[string]float64{}
	var b strings.Builder
	for _, rate := range Rates {
		perfTb := stats.NewTable(append([]string{"app"}, policyNames()...)...)
		evTb := stats.NewTable(append([]string{"app"}, policyNames()...)...)
		perf := map[string][]float64{}
		evs := map[string][]float64{}
		for _, app := range s.apps {
			ideal := s.Run(app, "ideal", rate)
			prow := []any{app.Abbr}
			erow := []any{app.Abbr}
			for _, pol := range comparisonSet() {
				r := s.Run(app, pol, rate)
				p := r.IPC / ideal.IPC
				e := normalise(r.Evictions, ideal.Evictions)
				perf[pol] = append(perf[pol], p)
				evs[pol] = append(evs[pol], e)
				prow = append(prow, p)
				erow = append(erow, e)
			}
			perfTb.AddRowf(prow...)
			evTb.AddRowf(erow...)
		}
		fmt.Fprintf(&b, "--- oversubscription %d%% ---\n", rate)
		b.WriteString("(a) IPC normalised to Ideal\n")
		b.WriteString(perfTb.Render())
		b.WriteString("(b) evictions normalised to Ideal\n")
		b.WriteString(evTb.Render())
		hpeMean := stats.GeoMean(perf["hpe"])
		fmt.Fprintf(&b, "means: ")
		for _, pol := range comparisonSet() {
			pm := stats.GeoMean(perf[pol])
			em := stats.Mean(evs[pol])
			metrics[fmt.Sprintf("perf%d/%s", rate, display(pol))] = pm
			metrics[fmt.Sprintf("ev%d/%s", rate, display(pol))] = em
			fmt.Fprintf(&b, "%s perf %.3f ev %.3f | ", display(pol), pm, em)
			if pol != "hpe" {
				metrics[fmt.Sprintf("hpeSpeedup%d/%s", rate, display(pol))] = hpeMean / pm
			}
		}
		fmt.Fprintf(&b, "\nHPE speedup over: Random %.2fx, RRIP %.2fx, CLOCK-Pro %.2fx, LRU %.2fx\n\n",
			metrics[fmt.Sprintf("hpeSpeedup%d/Random", rate)],
			metrics[fmt.Sprintf("hpeSpeedup%d/RRIP", rate)],
			metrics[fmt.Sprintf("hpeSpeedup%d/CLOCK-Pro", rate)],
			metrics[fmt.Sprintf("hpeSpeedup%d/LRU", rate)])
	}
	b.WriteString("paper reports @75%: HPE within 11% of Ideal, 18% more evictions than Ideal;\n")
	b.WriteString("  speedups 1.16x (random), 1.27x (RRIP), 1.2x (CLOCK-Pro)\n")
	b.WriteString("paper reports @50%: within 11% of Ideal, 16% more evictions;\n")
	b.WriteString("  speedups 1.21x (random), 1.16x (RRIP), 1.15x (CLOCK-Pro)\n")
	return Report{ID: "fig12", Title: "All policies vs Ideal (performance and evictions)",
		Text: b.String(), Metrics: metrics}
}

// comparisonSet returns the policies shown in Fig. 12 (Ideal is the
// normalisation baseline and excluded from its own columns).
func comparisonSet() []string {
	return []string{"lru", "random", "rrip", "clockpro", "hpe"}
}

func policyNames() []string {
	var out []string
	for _, p := range comparisonSet() {
		out = append(out, display(p))
	}
	return out
}

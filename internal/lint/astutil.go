package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// inspectWithStack walks every file, calling fn with each node and the stack
// of its ancestors (outermost first, not including n itself). Returning
// false prunes the subtree.
func inspectWithStack(files []*ast.File, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if !fn(n, stack) {
				return false
			}
			stack = append(stack, n)
			return true
		})
	}
}

// flattenPath renders an expression made only of identifiers and field
// selections ("p", "d.probe", "s.cache.mu") as its textual path. Anything
// else — calls, indexing, dereferences other than implicit ones — is not a
// stable path and returns ok=false.
func flattenPath(e ast.Expr) (string, bool) {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name, true
	case *ast.SelectorExpr:
		base, ok := flattenPath(v.X)
		if !ok {
			return "", false
		}
		return base + "." + v.Sel.Name, true
	case *ast.ParenExpr:
		return flattenPath(v.X)
	}
	return "", false
}

// calleeFunc resolves the called function or method of a call expression,
// or nil for builtins, conversions and indirect calls through variables.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// calleeSignature resolves the signature of any call (including calls
// through variables and fields), or nil for builtins and conversions.
func calleeSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// fullFuncName is like (*types.Func).FullName but empty-safe: "time.Now",
// "(*sync.Mutex).Lock".
func fullFuncName(fn *types.Func) string {
	if fn == nil {
		return ""
	}
	return fn.FullName()
}

// isNilIdent reports whether e is the predeclared nil.
func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil || id.Name == "nil"
}

// condGuaranteesNonNil reports whether cond being true implies the value at
// textual path is non-nil: `path != nil`, any conjunct of a && chain, or a
// negated nil-guarantee.
func condGuaranteesNonNil(info *types.Info, cond ast.Expr, path string) bool {
	switch v := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch v.Op.String() {
		case "!=":
			return binaryMatchesNil(info, v, path)
		case "&&":
			return condGuaranteesNonNil(info, v.X, path) || condGuaranteesNonNil(info, v.Y, path)
		}
	case *ast.UnaryExpr:
		if v.Op.String() == "!" {
			return condGuaranteesNil(info, v.X, path)
		}
	}
	return false
}

// condGuaranteesNil reports whether cond being true implies the value at
// path is nil — so the *else* branch (or an early return) proves non-nil.
// A || chain needs only one disjunct here: if the whole condition is false,
// every disjunct is false.
func condGuaranteesNil(info *types.Info, cond ast.Expr, path string) bool {
	switch v := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch v.Op.String() {
		case "==":
			return binaryMatchesNil(info, v, path)
		case "||":
			return condGuaranteesNil(info, v.X, path) || condGuaranteesNil(info, v.Y, path)
		}
	case *ast.UnaryExpr:
		if v.Op.String() == "!" {
			return condGuaranteesNonNil(info, v.X, path)
		}
	}
	return false
}

// binaryMatchesNil reports whether one side of the comparison is the path
// and the other is nil.
func binaryMatchesNil(info *types.Info, b *ast.BinaryExpr, path string) bool {
	if p, ok := flattenPath(b.X); ok && p == path && isNilIdent(info, b.Y) {
		return true
	}
	if p, ok := flattenPath(b.Y); ok && p == path && isNilIdent(info, b.X) {
		return true
	}
	return false
}

// terminates reports whether stmt unconditionally leaves the enclosing
// block: return, branch statements, panic, or a goroutine-ending call.
func terminates(info *types.Info, stmt ast.Stmt) bool {
	switch v := stmt.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		call, ok := v.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
			return true
		}
		name := fullFuncName(calleeFunc(info, call))
		return name == "os.Exit" || name == "runtime.Goexit"
	case *ast.BlockStmt:
		if len(v.List) == 0 {
			return false
		}
		return terminates(info, v.List[len(v.List)-1])
	}
	return false
}

// blockTerminates reports whether the last statement of body terminates.
func blockTerminates(info *types.Info, body *ast.BlockStmt) bool {
	if body == nil || len(body.List) == 0 {
		return false
	}
	return terminates(info, body.List[len(body.List)-1])
}

// namedTypeIn reports whether t (after pointer indirection) is a defined
// type with the given name declared in a package with the given name. Used
// to match contract types structurally — probe.Probe, context.Context —
// without importing them, so fixture packages can declare lookalikes.
func namedTypeIn(t types.Type, pkgName, typeName string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Name() != typeName || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Name() == pkgName
}

// pathHasSuffixAny reports whether pkgPath ends with any of the given
// "/internal/<name>"-style suffixes or equals one outright (the fixture
// case, where the package path is just the fixture name).
func pathHasSuffixAny(pkgPath string, suffixes []string) bool {
	for _, s := range suffixes {
		if pkgPath == s || strings.HasSuffix(pkgPath, "/"+s) {
			return true
		}
	}
	return false
}

// enclosingFuncBodies returns the bodies of every function literal and
// declaration on the stack, innermost first.
func enclosingFuncBodies(stack []ast.Node) []*ast.BlockStmt {
	var out []*ast.BlockStmt
	for i := len(stack) - 1; i >= 0; i-- {
		switch v := stack[i].(type) {
		case *ast.FuncLit:
			out = append(out, v.Body)
		case *ast.FuncDecl:
			out = append(out, v.Body)
		}
	}
	return out
}

// enclosingFuncName returns the name of the innermost enclosing declared
// function on the stack ("" inside a bare function literal at file scope).
func enclosingFuncName(stack []ast.Node) string {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			return fd.Name.Name
		}
	}
	return ""
}

package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// This file is the analysistest-style harness: fixture packages live under
// testdata/src/<name>/, annotate expected findings with
//
//	code under test // want "regexp" "another regexp"
//
// and runFixture asserts an exact bidirectional match — every produced
// diagnostic must be wanted on its line, every want must be matched. Fixture
// packages import stdlib (resolved through the same go-list export-data
// loader production uses) and sibling fixture packages (type-checked from
// source on demand), so analyzers see real types.Info, not mocks.

// errorfer is the slice of testing.T the harness needs; taking the
// interface keeps harness.go in the main build without importing testing.
type errorfer interface {
	Errorf(format string, args ...any)
}

// fixtureResult carries the diagnostics a fixture produced, for tests that
// assert beyond want-matching.
type fixtureResult struct {
	Diags []Diagnostic
}

var (
	stdExportsOnce sync.Once
	stdExports     map[string]string
	stdExportsErr  error
)

// stdlibExports resolves export data for the stdlib closure the fixtures
// need, once per process. Resolving "std" wholesale costs one `go list`
// over packages that are all prebuilt or cheaply built in the cache.
func stdlibExports(repoRoot string) (map[string]string, error) {
	stdExportsOnce.Do(func() {
		_, stdExports, stdExportsErr = goListExport(repoRoot, []string{"std"})
	})
	return stdExports, stdExportsErr
}

// fixtureLoader type-checks fixture packages rooted at srcRoot, resolving
// fixture-local imports from source and everything else from export data.
type fixtureLoader struct {
	fset    *token.FileSet
	srcRoot string
	std     types.Importer
	cache   map[string]*Package
}

// Import implements types.Importer for dependency resolution during
// fixture type-checking.
func (l *fixtureLoader) Import(path string) (*types.Package, error) {
	if dir := filepath.Join(l.srcRoot, filepath.FromSlash(path)); dirExists(dir) {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

func dirExists(dir string) bool {
	st, err := os.Stat(dir)
	return err == nil && st.IsDir()
}

// load parses and type-checks the fixture package at srcRoot/<path>.
func (l *fixtureLoader) load(path string) (*Package, error) {
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(l.srcRoot, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pkg := &Package{ImportPath: path, Dir: dir}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		file := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(l.fset, file, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing fixture %s: %v", file, err)
		}
		pkg.GoFiles = append(pkg.GoFiles, file)
		pkg.Files = append(pkg.Files, f)
	}
	if len(pkg.Files) == 0 {
		return nil, fmt.Errorf("fixture %s has no Go files", path)
	}
	pkg.Name = pkg.Files[0].Name.Name
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	pkg.Info = newTypesInfo()
	pkg.Types, _ = conf.Check(path, l.fset, pkg.Files, pkg.Info)
	l.cache[path] = pkg
	return pkg, nil
}

// runFixture loads testdata/src/<fixture>, runs the analyzers (Scope
// bypassed — fixtures exercise the check, not its production footprint),
// applies //lint:ignore suppression exactly as the production driver does,
// and asserts the diagnostics against the fixture's want annotations.
func runFixture(t errorfer, fixture string, analyzers ...*Analyzer) fixtureResult {
	repoRoot, err := repoRootDir()
	if err != nil {
		t.Errorf("locating repo root: %v", err)
		return fixtureResult{}
	}
	std, err := stdlibExports(repoRoot)
	if err != nil {
		t.Errorf("resolving stdlib export data: %v", err)
		return fixtureResult{}
	}
	fset := token.NewFileSet()
	loader := &fixtureLoader{
		fset:    fset,
		srcRoot: filepath.Join(repoRoot, "internal", "lint", "testdata", "src"),
		std:     exportImporter(fset, std),
		cache:   map[string]*Package{},
	}
	pkg, err := loader.load(fixture)
	if err != nil {
		t.Errorf("loading fixture %s: %v", fixture, err)
		return fixtureResult{}
	}
	for _, terr := range pkg.TypeErrors {
		t.Errorf("fixture %s does not type-check: %v", fixture, terr)
	}
	if len(pkg.TypeErrors) > 0 {
		return fixtureResult{}
	}

	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	diags := runAnalyzers(pkg, fset, analyzers, false)
	diags = append(diags, runProgramAnalyzers(fset, []*Package{pkg}, analyzers, false)...)
	dirs, dirDiags := collectDirectives(fset, pkg.Files, known)
	diags = append(applyDirectives(diags, dirs), dirDiags...)
	sortDiagnostics(diags)

	wants := collectWants(t, fset, pkg.Files)
	checkWants(t, diags, wants)
	return fixtureResult{Diags: diags}
}

// want is one expected-diagnostic annotation.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRe = regexp.MustCompile(`// want (.*)$`)

// collectWants parses `// want "re" "re"` annotations from fixture
// comments. The annotation may trail other comment content (so a
// //lint:ignore directive can itself carry a want for the unused-directive
// diagnostic).
func collectWants(t errorfer, fset *token.FileSet, files []*ast.File) []*want {
	var out []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatchIndex(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, lit := range splitQuoted(c.Text[m[2]:m[3]]) {
					pat, err := strconv.Unquote(lit)
					if err != nil {
						t.Errorf("%s:%d: malformed want pattern %s: %v", pos.Filename, pos.Line, lit, err)
						continue
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s:%d: want pattern %s: %v", pos.Filename, pos.Line, lit, err)
						continue
					}
					out = append(out, &want{file: pos.Filename, line: pos.Line, re: re, raw: lit})
				}
			}
		}
	}
	return out
}

// splitQuoted extracts the double-quoted or backquoted string literals from
// the tail of a want annotation.
func splitQuoted(s string) []string {
	var out []string
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			j := i + 1
			for j < len(s) && s[j] != '"' {
				if s[j] == '\\' {
					j++
				}
				j++
			}
			if j < len(s) {
				out = append(out, s[i:j+1])
				i = j
			}
		case '`':
			j := i + 1
			for j < len(s) && s[j] != '`' {
				j++
			}
			if j < len(s) {
				out = append(out, s[i:j+1])
				i = j
			}
		}
	}
	return out
}

// checkWants asserts the exact bidirectional match between produced
// diagnostics and want annotations.
func checkWants(t errorfer, diags []Diagnostic, wants []*want) {
	for _, d := range diags {
		found := false
		for _, w := range wants {
			if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic %s:%d: %s (hpelint/%s)",
				d.Pos.Filename, d.Pos.Line, d.Message, d.Analyzer)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %s", w.file, w.line, w.raw)
		}
	}
}

// repoRootDir walks up from the working directory to the go.mod root, so
// the harness runs both from `go test ./internal/lint/` and from the
// package directory.
func repoRootDir() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above working directory")
		}
		dir = parent
	}
}

// countByAnalyzer tallies diagnostics per analyzer name, used by tests that
// assert fixture coverage floors.
func countByAnalyzer(diags []Diagnostic) map[string]int {
	out := map[string]int{}
	for _, d := range diags {
		out[d.Analyzer]++
	}
	return out
}

// sortedKeys returns the map's keys in order (test helper).
func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

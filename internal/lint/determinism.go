package lint

import (
	"go/ast"
	"go/types"
)

// determinismScope lists the simulator packages whose outputs feed golden
// files and the content-addressed result cache. Wall-clock reads, global
// RNG state or racy select choices inside them can silently change results
// between runs — the exact failure mode the cache then freezes as "truth".
var determinismScope = []string{
	"internal/sim", "internal/gpu", "internal/uvm", "internal/hir",
	"internal/tlb", "internal/ptw", "internal/policy", "internal/workload",
	"internal/experiments",
}

// randGlobalExempt lists math/rand package-level functions that construct
// explicitly seeded state rather than consuming the shared global RNG.
var randGlobalExempt = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// AnalyzerDeterminism forbids nondeterminism sources inside the simulator
// core: time.Now/time.Since, math/rand global-state functions (seeded
// *rand.Rand instances are fine), and select statements with two or more
// communication cases (the runtime picks a ready case uniformly at random).
var AnalyzerDeterminism = &Analyzer{
	Name: "determinism",
	Doc: "forbid wall-clock reads, unseeded RNG use and multi-ready selects " +
		"in simulator packages whose outputs must be byte-reproducible",
	Scope: func(pkgPath string) bool { return pathHasSuffixAny(pkgPath, determinismScope) },
	Run:   runDeterminism,
}

func runDeterminism(pass *Pass) {
	inspectWithStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		switch v := n.(type) {
		case *ast.CallExpr:
			checkDeterminismCall(pass, v)
		case *ast.SelectStmt:
			comm := 0
			for _, c := range v.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
					comm++
				}
			}
			if comm >= 2 {
				pass.Reportf(v.Pos(),
					"select with %d communication cases: the runtime chooses a ready case "+
						"pseudo-randomly, so simulator state must not depend on which wins", comm)
			}
		}
		return true
	})
}

func checkDeterminismCall(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	switch fullFuncName(fn) {
	case "time.Now", "time.Since":
		pass.Reportf(call.Pos(),
			"%s reads the wall clock: simulated time must come from the engine's "+
				"cycle counter or results differ run to run", fullFuncName(fn))
		return
	}
	pkgPath := fn.Pkg().Path()
	if pkgPath != "math/rand" && pkgPath != "math/rand/v2" {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		// Methods on *rand.Rand are fine: the instance was necessarily
		// constructed from an explicit source.
		return
	}
	if randGlobalExempt[fn.Name()] {
		return
	}
	pass.Reportf(call.Pos(),
		"%s.%s uses the process-global RNG: construct rand.New(rand.NewSource(seed)) "+
			"so runs replay bit-identically", pkgPath, fn.Name())
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// AnalyzerLockOrder proves the serving layers' mutexes are acquired in one
// global order and never held across blocking operations. It is a
// whole-program analyzer: lock classes are mutex-typed struct fields,
// package-level vars, and locals across internal/server, internal/cluster,
// and internal/flight; acquisition edges (including transitive ones through
// static calls) form a directed graph, and any edge on a cycle — or any
// re-acquisition of a held class — is a potential deadlock. Separately, a
// blocking operation (channel send/receive, select without default,
// WaitGroup/Cond Wait, time.Sleep, outbound HTTP, or I/O to a
// caller-supplied writer) reached while a lock is held turns a mutex into a
// latency amplifier and is flagged.
//
// The held-set tracking is lexical (source order within a function body;
// deferred unlocks pin the lock to function end), which over-approximates
// branches that release early — suppress genuinely impossible interleavings
// with //lint:ignore hpelint/lockorder.
var AnalyzerLockOrder = &Analyzer{
	Name:       "lockorder",
	Doc:        "detect lock-order cycles and blocking operations performed while holding a mutex",
	RunProgram: runLockOrder,
}

// lockPkgScope is the production footprint: the layers that compose mutexes
// across goroutines. Simulator packages are single-threaded by construction
// (ROADMAP invariant) and stay out.
var lockPkgScope = []string{
	"internal/server",
	"internal/cluster",
	"internal/flight",
}

type lockOpKind int

const (
	lockOpNone lockOpKind = iota
	lockOpAcquire
	lockOpRelease
)

// lockCall is one static call site together with the lock classes held at it.
type lockCall struct {
	callee *CGNode
	held   []string
	pos    token.Pos
}

// blockSite is one potentially blocking operation and the held set at it.
type blockSite struct {
	desc string
	held []string
	pos  token.Pos
}

// lockEdge is one "acquired to while holding from" observation.
type lockEdge struct {
	from, to string
	pos      token.Pos
	via      string // callee name for transitive edges, "" for direct
}

// lockSummary is the per-function digest the fixpoint runs on.
type lockSummary struct {
	node     *CGNode
	acquires map[string]token.Pos // classes this body acquires directly
	edges    []lockEdge           // direct nested acquisitions, source order
	calls    []lockCall           // static calls, source order
	blocks   []blockSite          // blocking ops, source order
}

func runLockOrder(pass *ProgramPass) {
	g := pass.Graph()
	classes := collectLockClasses(pass)

	// Phase 1: scan every in-scope function body lexically.
	var sums []*lockSummary
	byNode := map[*CGNode]*lockSummary{}
	for _, n := range g.Nodes {
		if !pass.InScope(n.Pkg.ImportPath, lockPkgScope) || n.Body == nil {
			continue
		}
		s := scanLocks(pass, g, n, classes)
		sums = append(sums, s)
		byNode[n] = s
	}

	// Phase 2: fixpoint over static calls — which classes does a function
	// acquire transitively, and can it block? Propagation order follows the
	// deterministic node order, so the derived facts are stable.
	transAcq := map[*lockSummary]map[string]bool{}
	mayBlock := map[*lockSummary]string{}
	for _, s := range sums {
		acq := map[string]bool{}
		for c := range s.acquires {
			acq[c] = true
		}
		transAcq[s] = acq
		if len(s.blocks) > 0 {
			mayBlock[s] = s.blocks[0].desc
		}
	}
	for changed := true; changed; {
		changed = false
		for _, s := range sums {
			for _, c := range s.calls {
				callee := byNode[c.callee]
				if callee == nil {
					continue
				}
				for cls := range transAcq[callee] {
					if !transAcq[s][cls] {
						transAcq[s][cls] = true
						changed = true
					}
				}
				if _, ok := mayBlock[s]; !ok {
					if d, ok := mayBlock[callee]; ok {
						mayBlock[s] = d
						changed = true
					}
				}
			}
		}
	}

	// Phase 3: assemble the class-order graph (direct edges plus edges
	// induced by calling lock-acquiring functions under a lock), then flag
	// every edge that sits on a cycle.
	var edges []lockEdge
	seen := map[string]bool{}
	addEdge := func(e lockEdge) {
		key := e.from + "\x00" + e.to
		if seen[key] {
			return
		}
		seen[key] = true
		edges = append(edges, e)
	}
	for _, s := range sums {
		for _, e := range s.edges {
			addEdge(e)
		}
		for _, c := range s.calls {
			callee := byNode[c.callee]
			if callee == nil {
				continue
			}
			for _, cls := range sortedClassSet(transAcq[callee]) {
				for _, h := range c.held {
					addEdge(lockEdge{from: h, to: cls, pos: c.pos, via: c.callee.Name})
				}
			}
		}
	}
	adj := map[string]map[string]bool{}
	for _, e := range edges {
		if adj[e.from] == nil {
			adj[e.from] = map[string]bool{}
		}
		adj[e.from][e.to] = true
	}
	for _, e := range edges {
		switch {
		case e.from == e.to && e.via == "":
			pass.Reportf(e.pos, "reacquiring %s while it is already held (self-deadlock)", e.to)
		case e.from == e.to:
			pass.Reportf(e.pos, "call to %s acquires %s while it is already held (self-deadlock)", e.via, e.to)
		case classReaches(adj, e.to, e.from) && e.via == "":
			pass.Reportf(e.pos, "acquiring %s while holding %s is part of a lock-order cycle", e.to, e.from)
		case classReaches(adj, e.to, e.from):
			pass.Reportf(e.pos, "call to %s acquires %s while holding %s — part of a lock-order cycle", e.via, e.to, e.from)
		}
	}

	// Phase 4: blocking operations under a held lock — direct sites, then
	// calls into functions that may block.
	for _, s := range sums {
		for _, b := range s.blocks {
			if len(b.held) > 0 {
				pass.Reportf(b.pos, "potentially blocking %s while holding %s", b.desc, strings.Join(b.held, ", "))
			}
		}
		for _, c := range s.calls {
			callee := byNode[c.callee]
			if callee == nil || len(c.held) == 0 {
				continue
			}
			if d, ok := mayBlock[callee]; ok {
				pass.Reportf(c.pos, "call to %s may block (%s) while holding %s", c.callee.Name, d, strings.Join(c.held, ", "))
			}
		}
	}
}

// sortedClassSet renders a class set in stable order.
func sortedClassSet(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// classReaches reports whether from can reach to in the class-order graph.
func classReaches(adj map[string]map[string]bool, from, to string) bool {
	if from == to {
		return true
	}
	visited := map[string]bool{from: true}
	stack := []string{from}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, next := range sortedClassSet(adj[cur]) {
			if next == to {
				return true
			}
			if !visited[next] {
				visited[next] = true
				stack = append(stack, next)
			}
		}
	}
	return false
}

// collectLockClasses names every mutex-typed struct field declared by an
// in-scope package as "pkg.Type.field". Package-level and local mutexes are
// named lazily at their first acquisition site.
func collectLockClasses(pass *ProgramPass) map[*types.Var]string {
	classes := map[*types.Var]string{}
	for _, pkg := range pass.Packages {
		if pkg.Types == nil {
			continue
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			st, ok := tn.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				f := st.Field(i)
				if isMutexType(f.Type()) {
					classes[f] = pkg.Types.Name() + "." + name + "." + f.Name()
				}
			}
		}
	}
	return classes
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex.
func isMutexType(t types.Type) bool {
	return namedTypeIn(t, "sync", "Mutex") || namedTypeIn(t, "sync", "RWMutex")
}

// lockScanner walks one function body in source order, maintaining the
// lexical held set.
type lockScanner struct {
	pass    *ProgramPass
	g       *CallGraph
	node    *CGNode
	info    *types.Info
	classes map[*types.Var]string
	held    []string
	sticky  map[string]bool // deferred unlocks: held to function end
	sum     *lockSummary
}

func scanLocks(pass *ProgramPass, g *CallGraph, n *CGNode, classes map[*types.Var]string) *lockSummary {
	s := &lockScanner{
		pass:    pass,
		g:       g,
		node:    n,
		info:    n.Pkg.Info,
		classes: classes,
		sticky:  map[string]bool{},
		sum:     &lockSummary{node: n, acquires: map[string]token.Pos{}},
	}
	ast.Inspect(n.Body, s.visit)
	return s.sum
}

func (s *lockScanner) visit(nd ast.Node) bool {
	switch v := nd.(type) {
	case *ast.FuncLit:
		// Nested closures are separate call-graph nodes with their own scan.
		return false
	case *ast.GoStmt:
		// The spawned call runs on another goroutine; the held set here
		// does not constrain it.
		return false
	case *ast.DeferStmt:
		if cls, op := s.lockOp(v.Call); op == lockOpRelease && cls != "" {
			s.sticky[cls] = true
		}
		return false
	case *ast.CallExpr:
		if cls, op := s.lockOp(v); op != lockOpNone {
			if cls != "" {
				s.applyLockOp(cls, op, v.Pos())
			}
			return false
		}
		s.checkCall(v)
		return true
	case *ast.SendStmt:
		s.block("channel send", v.Arrow)
	case *ast.UnaryExpr:
		if v.Op == token.ARROW {
			s.block("channel receive", v.OpPos)
		}
	case *ast.SelectStmt:
		if !selectHasDefault(v) {
			s.block("select without default", v.Select)
		}
	case *ast.RangeStmt:
		if t := s.exprType(v.X); t != nil {
			if _, ok := t.Underlying().(*types.Chan); ok {
				s.block("range over channel", v.For)
			}
		}
	}
	return true
}

// applyLockOp mutates the lexical held set for one Lock/Unlock call.
func (s *lockScanner) applyLockOp(cls string, op lockOpKind, pos token.Pos) {
	switch op {
	case lockOpAcquire:
		if _, ok := s.sum.acquires[cls]; !ok {
			s.sum.acquires[cls] = pos
		}
		for _, h := range s.held {
			s.sum.edges = append(s.sum.edges, lockEdge{from: h, to: cls, pos: pos})
		}
		s.held = append(s.held, cls)
	case lockOpRelease:
		if s.sticky[cls] {
			return
		}
		for i := len(s.held) - 1; i >= 0; i-- {
			if s.held[i] == cls {
				s.held = append(s.held[:i], s.held[i+1:]...)
				return
			}
		}
	}
}

// block records one potentially blocking operation with the held snapshot.
func (s *lockScanner) block(desc string, pos token.Pos) {
	s.sum.blocks = append(s.sum.blocks, blockSite{desc: desc, held: append([]string(nil), s.held...), pos: pos})
}

// checkCall classifies a non-lock call: a known blocking primitive, an I/O
// sink for a caller-supplied writer, or a static call recorded for the
// transitive fixpoint.
func (s *lockScanner) checkCall(call *ast.CallExpr) {
	if desc := blockingCallDesc(s.info, call); desc != "" {
		s.block(desc, call.Pos())
		return
	}
	if s.writesCallerWriter(call) {
		s.block("I/O to a caller-supplied writer", call.Pos())
		return
	}
	fn := calleeFunc(s.info, call)
	if fn == nil {
		return
	}
	callee := s.g.NodeOf(fn)
	if callee == nil {
		return
	}
	s.sum.calls = append(s.sum.calls, lockCall{
		callee: callee,
		held:   append([]string(nil), s.held...),
		pos:    call.Pos(),
	})
}

// blockingCallDesc names the blocking primitive a call performs, or "".
func blockingCallDesc(info *types.Info, call *ast.CallExpr) string {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	sig, _ := fn.Type().(*types.Signature)
	var recv types.Type
	if sig != nil && sig.Recv() != nil {
		recv = sig.Recv().Type()
	}
	switch {
	case fn.Name() == "Wait" && (namedTypeIn(recv, "sync", "WaitGroup") || namedTypeIn(recv, "sync", "Cond")):
		return "sync." + recvShortName(recv) + ".Wait"
	case fn.Pkg().Path() == "time" && fn.Name() == "Sleep":
		return "time.Sleep"
	case namedTypeIn(recv, "http", "Client"):
		return "outbound HTTP request (http.Client." + fn.Name() + ")"
	case fn.Pkg().Path() == "net/http" && (fn.Name() == "Get" || fn.Name() == "Post" || fn.Name() == "Head" || fn.Name() == "PostForm"):
		return "outbound HTTP request (http." + fn.Name() + ")"
	}
	return ""
}

// recvShortName renders a receiver type's bare name for messages.
func recvShortName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}

// writesCallerWriter reports whether the call hands a caller-supplied
// stream — a parameter of the enclosing function typed io.Writer or
// net/http.ResponseWriter — to another function (or invokes a method on
// it). Under a held lock that is I/O of unbounded latency: the writer is
// usually an HTTP response heading for a socket.
func (s *lockScanner) writesCallerWriter(call *ast.CallExpr) bool {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && s.isCallerWriterParam(sel.X) {
		return true
	}
	for _, arg := range call.Args {
		if s.isCallerWriterParam(arg) {
			return true
		}
	}
	return false
}

// isCallerWriterParam reports whether e is an identifier bound to a
// writer-typed parameter of the function being scanned.
func (s *lockScanner) isCallerWriterParam(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	v, ok := s.info.Uses[id].(*types.Var)
	if !ok || !isParamOf(s.node, v) {
		return false
	}
	return namedTypeIn(v.Type(), "io", "Writer") || namedTypeIn(v.Type(), "http", "ResponseWriter")
}

// lockOp classifies a call as a mutex acquire/release and resolves the lock
// class it targets ("" when the mutex identity cannot be named, e.g. a
// mutex passed by pointer).
func (s *lockScanner) lockOp(call *ast.CallExpr) (string, lockOpKind) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", lockOpNone
	}
	fn, ok := s.info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", lockOpNone
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil || !isMutexType(sig.Recv().Type()) {
		return "", lockOpNone
	}
	var op lockOpKind
	switch fn.Name() {
	case "Lock", "RLock":
		op = lockOpAcquire
	case "Unlock", "RUnlock":
		op = lockOpRelease
	default:
		return "", lockOpNone // TryLock and friends do not block
	}
	return s.lockClassOf(sel), op
}

// lockClassOf names the mutex a Lock/Unlock selector targets.
func (s *lockScanner) lockClassOf(sel *ast.SelectorExpr) string {
	// Promoted method on an embedded mutex: walk the selection's field path
	// to the embedded field.
	if msel, ok := s.info.Selections[sel]; ok && len(msel.Index()) > 1 {
		t := s.exprType(sel.X)
		var fld *types.Var
		idx := msel.Index()
		for _, i := range idx[:len(idx)-1] {
			st, ok := derefStruct(t)
			if !ok {
				return ""
			}
			fld = st.Field(i)
			t = fld.Type()
		}
		return s.fieldClassName(fld)
	}
	switch x := unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		if fsel, ok := s.info.Selections[x]; ok && fsel.Kind() == types.FieldVal {
			t := fsel.Recv()
			var fld *types.Var
			for _, i := range fsel.Index() {
				st, ok := derefStruct(t)
				if !ok {
					return ""
				}
				fld = st.Field(i)
				t = fld.Type()
			}
			return s.fieldClassName(fld)
		}
		// Qualified package-level var: pkg.Mu.
		if v, ok := s.info.Uses[x.Sel].(*types.Var); ok {
			return s.varClassName(v)
		}
	case *ast.Ident:
		if v, ok := s.info.Uses[x].(*types.Var); ok {
			return s.varClassName(v)
		}
	}
	return ""
}

// fieldClassName resolves a mutex field to its declared class name.
func (s *lockScanner) fieldClassName(fld *types.Var) string {
	if fld == nil {
		return ""
	}
	if name, ok := s.classes[fld]; ok {
		return name
	}
	if fld.Pkg() != nil {
		return fld.Pkg().Name() + "." + fld.Name()
	}
	return fld.Name()
}

// varClassName names a non-field mutex var: package-level vars by package,
// locals by enclosing function. Parameters have no nameable identity.
func (s *lockScanner) varClassName(v *types.Var) string {
	if v.IsField() {
		return s.fieldClassName(v)
	}
	if isParamOf(s.node, v) {
		return ""
	}
	if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		return v.Pkg().Name() + "." + v.Name()
	}
	return s.node.Name + "." + v.Name()
}

// exprType returns the static type of e, or nil.
func (s *lockScanner) exprType(e ast.Expr) types.Type {
	if tv, ok := s.info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// derefStruct unwraps pointers and named types down to a struct.
func derefStruct(t types.Type) (*types.Struct, bool) {
	if t == nil {
		return nil, false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	return st, ok
}

// unparen strips parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// selectHasDefault reports whether a select statement has a default clause.
func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, parsed and type-checked target package.
type Package struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string // absolute paths, build-constraint filtered, no tests
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	TypeErrors []error
}

// Program is the result of loading a pattern set: a shared FileSet plus the
// matched packages in go-list order.
type Program struct {
	Fset     *token.FileSet
	Packages []*Package
}

// listPackage mirrors the subset of `go list -json` fields the loader needs.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Export     string
	Error      *struct{ Err string }
}

// goListExport shells out to `go list -deps -export -json` for patterns,
// returning the matched target packages and an import-path → export-data
// map covering every transitive dependency. This is the go/packages
// equivalent the module can afford without a dependency: go list applies
// build constraints and produces compiler export data in the build cache;
// go/types then checks only the target sources, importing dependencies from
// that export data.
func goListExport(dir string, patterns []string) ([]*listPackage, map[string]string, error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Name,Dir,GoFiles,Standard,DepOnly,Export,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	// CGO_ENABLED=0 keeps the dependency closure pure Go so every package
	// has loadable export data.
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	exports := make(map[string]string)
	var targets []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.Error != nil {
			return nil, nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			q := p
			targets = append(targets, &q)
		}
	}
	return targets, exports, nil
}

// exportImporter builds a types.Importer that reads gc export data through
// the path → file map produced by goListExport.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// newTypesInfo allocates the full types.Info map set the analyzers rely on.
func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// Load resolves patterns (e.g. "./...") relative to dir, parses each matched
// package's non-test sources, and type-checks them against export data.
// Test files are deliberately excluded: the contracts under check are
// production-code invariants, and external test packages would need their
// own export closure.
func Load(dir string, patterns []string) (*Program, error) {
	targets, exports, err := goListExport(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	prog := &Program{Fset: fset}
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		pkg := &Package{ImportPath: t.ImportPath, Name: t.Name, Dir: t.Dir}
		for _, g := range t.GoFiles {
			path := filepath.Join(t.Dir, g)
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("parsing %s: %v", path, err)
			}
			pkg.GoFiles = append(pkg.GoFiles, path)
			pkg.Files = append(pkg.Files, f)
		}
		conf := types.Config{
			Importer: imp,
			Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
		}
		pkg.Info = newTypesInfo()
		pkg.Types, _ = conf.Check(t.ImportPath, fset, pkg.Files, pkg.Info)
		prog.Packages = append(prog.Packages, pkg)
	}
	return prog, nil
}

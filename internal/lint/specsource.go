package lint

import (
	"go/ast"
)

// specsourceExempt lists the packages allowed to construct gpu.Config
// directly: the spec materializer that owns the Spec → Config mapping, and
// the gpu package that defines the type.
var specsourceExempt = []string{"internal/runspec", "internal/gpu"}

// AnalyzerSpecSource enforces the canonical-run-description contract
// (DESIGN.md §12): a simulation's configuration is described by a
// runspec.Spec and materialized in exactly one place, so every knob exists
// once and every layer lands on the same content-addressed identity. A
// gpu.Config assembled by hand elsewhere silently forks that mapping — the
// per-layer knob-plumbing this rule exists to keep deleted. Sanctioned
// construction sites (the public facade's SystemConfig, documentation
// tables) carry a //lint:ignore hpelint/specsource directive.
var AnalyzerSpecSource = &Analyzer{
	Name: "specsource",
	Doc: "forbid gpu.Config construction outside internal/runspec and " +
		"internal/gpu: describe runs as runspec.Specs and materialize them " +
		"in one place",
	Scope: func(pkgPath string) bool { return !pathHasSuffixAny(pkgPath, specsourceExempt) },
	Run:   runSpecSource,
}

func runSpecSource(pass *Pass) {
	inspectWithStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		switch v := n.(type) {
		case *ast.CallExpr:
			fn := calleeFunc(pass.Info, v)
			if fn != nil && fn.Pkg() != nil && fn.Pkg().Name() == "gpu" && fn.Name() == "DefaultConfig" {
				pass.Reportf(v.Pos(),
					"gpu.DefaultConfig called outside the spec materializer: describe the run "+
						"as a runspec.Spec and let Materialize build the config (DESIGN.md §12)")
			}
		case *ast.CompositeLit:
			if t := pass.Info.TypeOf(v); t != nil && namedTypeIn(t, "gpu", "Config") {
				pass.Reportf(v.Pos(),
					"gpu.Config composite literal outside the spec materializer: describe the run "+
						"as a runspec.Spec and let Materialize build the config (DESIGN.md §12)")
			}
		}
		return true
	})
}

package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the whole-program layer the PR-10 analyzers build on: a
// cross-package call graph over every loaded package, constructed once per
// driver invocation and shared (cached) across analyzers. It is stdlib-only
// like the rest of the suite — no SSA, no golang.org/x/tools — so edges are
// resolved from the AST plus types.Info:
//
//   - static calls resolve to the declared function or method;
//   - interface method calls resolve CHA-style: every named concrete type in
//     the program that implements the interface contributes its method as a
//     candidate callee;
//   - calls through function-typed values (variables, fields, parameters,
//     stored closures) resolve to every address-taken function or function
//     literal in the program with an identical signature — the function-value
//     analogue of class-hierarchy analysis.
//
// All three are deliberate over-approximations: the graph may contain edges
// no execution takes, but never misses one a real execution could take
// (within the loaded package set — calls into packages outside the load,
// stdlib included, have no callee body and therefore no node). Analyzers
// that consume the graph (hotalloc, lockorder) inherit that conservatism.
//
// Determinism: nodes, edges and reachability traversals are kept in slices
// ordered by (package load order, file order, source position), never ranged
// from maps, so hpelint's own output obeys the determinism analyzer's rules.

// CGEdgeKind classifies how a call edge was resolved.
type CGEdgeKind int

const (
	// EdgeStatic is a direct call to a declared function or method.
	EdgeStatic CGEdgeKind = iota
	// EdgeInterface is a CHA-resolved interface method call.
	EdgeInterface
	// EdgeFuncValue is a call through a function-typed value, resolved to
	// every address-taken function with an identical signature.
	EdgeFuncValue
)

func (k CGEdgeKind) String() string {
	switch k {
	case EdgeStatic:
		return "static"
	case EdgeInterface:
		return "interface"
	case EdgeFuncValue:
		return "funcvalue"
	}
	return "unknown"
}

// CGEdge is one resolved call: the syntactic site and the candidate callee.
// An interface or function-value site contributes one edge per candidate.
type CGEdge struct {
	Site   *ast.CallExpr
	Callee *CGNode
	Kind   CGEdgeKind
}

// CGNode is one function in the graph: a declared function/method (Fn set)
// or a function literal (Lit set). Nodes exist only for functions whose body
// was loaded from source; calls into export-data-only dependencies have no
// node.
type CGNode struct {
	Fn   *types.Func  // declared function or method; nil for literals
	Lit  *ast.FuncLit // function literal; nil for declarations
	Pkg  *Package     // the package the body lives in
	Body *ast.BlockStmt
	Pos  token.Pos
	// Name is the node's stable display name: "pkg.Func",
	// "pkg.(*Type).Method", or "pkg.Parent$1" for the Nth literal inside
	// Parent (source order).
	Name string
	// Calls are the node's outgoing edges in source-position order.
	Calls []CGEdge
	// AddressTaken reports the function was referenced outside call
	// position (assigned, passed, stored) and is therefore a candidate
	// callee for function-value calls. Literals not called in place are
	// always address-taken.
	AddressTaken bool
}

// CallGraph is the whole-program graph plus the indexes analyzers query.
type CallGraph struct {
	Fset *token.FileSet
	// Nodes in deterministic order: package load order, then file order,
	// then source position.
	Nodes []*CGNode

	byFunc map[*types.Func]*CGNode
	bySym  map[string]*CGNode
	byLit  map[*ast.FuncLit]*CGNode
}

// NodeOf returns the node for a declared function, or nil. Because the
// loader type-checks each target package against gc export data, the same
// declaration is represented by distinct types.Func objects in its defining
// package (source) and in importers' views (export data); the symbol-string
// fallback bridges the two, so cross-package edges resolve.
func (g *CallGraph) NodeOf(fn *types.Func) *CGNode {
	if n := g.byFunc[fn]; n != nil {
		return n
	}
	return g.bySym[funcSymbol(fn)]
}

// funcSymbol renders a universe-independent key for a declared function:
// "path.(ptr Recv).Name" or "path.Name".
func funcSymbol(fn *types.Func) string {
	pkgPath := ""
	if fn.Pkg() != nil {
		pkgPath = fn.Pkg().Path()
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		ptr := ""
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			ptr = "*"
		}
		name := "?"
		if named, ok := t.(*types.Named); ok {
			name = named.Obj().Name()
		}
		return pkgPath + ".(" + ptr + name + ")." + fn.Name()
	}
	return pkgPath + "." + fn.Name()
}

// NodeOfLit returns the node for a function literal, or nil.
func (g *CallGraph) NodeOfLit(lit *ast.FuncLit) *CGNode { return g.byLit[lit] }

// Reachable walks the graph breadth-first from roots, in deterministic
// order, and returns every node reached. via[n] is the edge-predecessor
// root's name — the first root (in root order) from which n was reached —
// so analyzers can attribute findings. keep filters traversal: a node for
// which keep returns false is neither visited nor traversed through (keep
// nil means no filter).
func (g *CallGraph) Reachable(roots []*CGNode, keep func(*CGNode) bool) (reached map[*CGNode]bool, via map[*CGNode]string) {
	reached = make(map[*CGNode]bool)
	via = make(map[*CGNode]string)
	queue := make([]*CGNode, 0, len(roots))
	for _, r := range roots {
		if r == nil || reached[r] || (keep != nil && !keep(r)) {
			continue
		}
		reached[r] = true
		via[r] = r.Name
		queue = append(queue, r)
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.Calls {
			c := e.Callee
			if c == nil || reached[c] || (keep != nil && !keep(c)) {
				continue
			}
			reached[c] = true
			via[c] = via[n]
			queue = append(queue, c)
		}
	}
	return reached, via
}

// DebugString renders the graph as a deterministic textual dump — one line
// per edge, sorted — used by the determinism tests and available for
// debugging analyzer scope questions.
func (g *CallGraph) DebugString() string {
	var lines []string
	for _, n := range g.Nodes {
		if len(n.Calls) == 0 {
			lines = append(lines, n.Name)
			continue
		}
		for _, e := range n.Calls {
			pos := g.Fset.Position(e.Site.Pos())
			lines = append(lines, fmt.Sprintf("%s -> %s [%s] at %s:%d",
				n.Name, e.Callee.Name, e.Kind, pos.Filename, pos.Line))
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// buildCallGraph constructs the graph over the given packages. The package
// slice order (go-list order in production, fixture order in tests) anchors
// node determinism.
func buildCallGraph(fset *token.FileSet, pkgs []*Package) *CallGraph {
	g := &CallGraph{
		Fset:   fset,
		byFunc: make(map[*types.Func]*CGNode),
		bySym:  make(map[string]*CGNode),
		byLit:  make(map[*ast.FuncLit]*CGNode),
	}
	b := &graphBuilder{g: g, pkgs: pkgs}
	b.collectNodes()
	b.collectTypes()
	b.collectAddressTaken()
	b.resolveCalls()
	return g
}

type graphBuilder struct {
	g    *CallGraph
	pkgs []*Package
	// concreteTypes are the named non-interface types declared across the
	// program, in deterministic order — the CHA candidate universe.
	concreteTypes []types.Type
	// taken are the address-taken candidate callees in deterministic order.
	taken []*CGNode
}

// collectNodes creates a node per declared function and per function
// literal, in deterministic order.
func (b *graphBuilder) collectNodes() {
	for _, pkg := range b.pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &CGNode{
					Fn:   fn,
					Pkg:  pkg,
					Body: fd.Body,
					Pos:  fd.Pos(),
					Name: nodeName(pkg, fn),
				}
				b.g.Nodes = append(b.g.Nodes, n)
				b.g.byFunc[fn] = n
				b.g.bySym[funcSymbol(fn)] = n
				b.collectLits(pkg, n.Name, fd.Body)
			}
		}
	}
}

// collectLits adds a node per function literal nested (at any depth) inside
// body, named parent$1, parent$2... in source order. Literals inside other
// literals nest the counter naturally because the outer literal's walk sees
// them first in source order.
func (b *graphBuilder) collectLits(pkg *Package, parent string, body *ast.BlockStmt) {
	i := 0
	ast.Inspect(body, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		i++
		node := &CGNode{
			Lit:  lit,
			Pkg:  pkg,
			Body: lit.Body,
			Pos:  lit.Pos(),
			Name: fmt.Sprintf("%s$%d", parent, i),
		}
		b.g.Nodes = append(b.g.Nodes, node)
		b.g.byLit[lit] = node
		return true
	})
}

// nodeName renders a declared function's stable name.
func nodeName(pkg *Package, fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		ptr := ""
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			ptr = "*"
		}
		name := "?"
		if named, ok := t.(*types.Named); ok {
			name = named.Obj().Name()
		}
		if ptr != "" {
			return fmt.Sprintf("%s.(*%s).%s", pkg.Types.Name(), name, fn.Name())
		}
		return fmt.Sprintf("%s.%s.%s", pkg.Types.Name(), name, fn.Name())
	}
	return pkg.Types.Name() + "." + fn.Name()
}

// collectTypes gathers every named non-interface type declared in the
// program — the CHA candidate universe — in deterministic order.
func (b *graphBuilder) collectTypes() {
	for _, pkg := range b.pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				ts, ok := n.(*ast.TypeSpec)
				if !ok {
					return true
				}
				tn, ok := pkg.Info.Defs[ts.Name].(*types.TypeName)
				if !ok || tn.IsAlias() {
					return true
				}
				t := tn.Type()
				if _, isIface := t.Underlying().(*types.Interface); isIface {
					return true
				}
				b.concreteTypes = append(b.concreteTypes, t)
				return true
			})
		}
	}
}

// collectAddressTaken marks every declared function referenced outside call
// position and every function literal not called in place — the candidate
// callees for function-value calls.
func (b *graphBuilder) collectAddressTaken() {
	for _, pkg := range b.pkgs {
		for _, file := range pkg.Files {
			inspectWithStack([]*ast.File{file}, func(n ast.Node, stack []ast.Node) bool {
				switch v := n.(type) {
				case *ast.Ident:
					fn, ok := pkg.Info.Uses[v].(*types.Func)
					if !ok {
						return true
					}
					if node := b.g.NodeOf(fn); node != nil && !isCallee(v, stack) {
						node.AddressTaken = true
					}
				case *ast.FuncLit:
					if node := b.g.byLit[v]; node != nil && !isCallee(v, stack) {
						node.AddressTaken = true
					}
				}
				return true
			})
		}
	}
	for _, n := range b.g.Nodes {
		if n.AddressTaken {
			b.taken = append(b.taken, n)
		}
	}
}

// isCallee reports whether expr is (possibly through selectors/parens) the
// function operand of a call — i.e. referenced in call position, which is
// not an address-taking use.
func isCallee(expr ast.Node, stack []ast.Node) bool {
	child := expr
	for i := len(stack) - 1; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.SelectorExpr, *ast.ParenExpr:
			child = p.(ast.Node)
			continue
		case *ast.CallExpr:
			return ast.Unparen(p.Fun) == child || p.Fun == child
		}
		return false
	}
	return false
}

// resolveCalls walks every node's body (excluding nested literal bodies,
// which belong to their own nodes) and resolves each call site to edges.
func (b *graphBuilder) resolveCalls() {
	for _, n := range b.g.Nodes {
		b.resolveNodeCalls(n)
	}
}

func (b *graphBuilder) resolveNodeCalls(n *CGNode) {
	ast.Inspect(n.Body, func(x ast.Node) bool {
		if lit, ok := x.(*ast.FuncLit); ok && lit.Body != n.Body {
			return false // nested literal: its calls belong to its own node
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		n.Calls = append(n.Calls, b.resolveSite(n.Pkg, call)...)
		return true
	})
}

// resolveSite resolves one call site to zero or more edges.
func (b *graphBuilder) resolveSite(pkg *Package, call *ast.CallExpr) []CGEdge {
	fun := ast.Unparen(call.Fun)

	// A literal called in place: one static edge, no dynamic fan-out.
	if lit, ok := fun.(*ast.FuncLit); ok {
		if node := b.g.byLit[lit]; node != nil {
			return []CGEdge{{Site: call, Callee: node, Kind: EdgeStatic}}
		}
		return nil
	}

	if fn := calleeFunc(pkg.Info, call); fn != nil {
		if iface := interfaceRecv(fn); iface != nil {
			return b.resolveInterfaceCall(call, fn, iface)
		}
		if node := b.g.NodeOf(fn); node != nil {
			return []CGEdge{{Site: call, Callee: node, Kind: EdgeStatic}}
		}
		return nil // body outside the loaded program (stdlib, export data)
	}

	// Not a named callee: conversion, builtin, or a call through a
	// function-typed value. Only the last gets (dynamic) edges.
	if tv, ok := pkg.Info.Types[call.Fun]; !ok || tv.IsType() {
		return nil
	}
	sig := calleeSignature(pkg.Info, call)
	if sig == nil {
		return nil
	}
	var edges []CGEdge
	for _, cand := range b.taken {
		if identicalSignatures(candidateSignature(cand), sig) {
			edges = append(edges, CGEdge{Site: call, Callee: cand, Kind: EdgeFuncValue})
		}
	}
	return edges
}

// interfaceRecv returns the interface type fn is declared on, or nil for
// concrete methods and plain functions.
func interfaceRecv(fn *types.Func) *types.Interface {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	iface, _ := t.Underlying().(*types.Interface)
	return iface
}

// resolveInterfaceCall resolves x.M() on an interface receiver CHA-style:
// every named concrete program type implementing the interface contributes
// its M.
func (b *graphBuilder) resolveInterfaceCall(call *ast.CallExpr, fn *types.Func, iface *types.Interface) []CGEdge {
	var edges []CGEdge
	for _, t := range b.concreteTypes {
		var impl types.Type
		switch {
		case types.Implements(t, iface):
			impl = t
		case types.Implements(types.NewPointer(t), iface):
			impl = types.NewPointer(t)
		default:
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(impl, true, fn.Pkg(), fn.Name())
		m, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		if node := b.g.NodeOf(m); node != nil {
			edges = append(edges, CGEdge{Site: call, Callee: node, Kind: EdgeInterface})
		}
	}
	return edges
}

// candidateSignature returns a callee candidate's signature.
func candidateSignature(n *CGNode) *types.Signature {
	if n.Fn != nil {
		sig, _ := n.Fn.Type().(*types.Signature)
		return sig
	}
	if n.Lit != nil {
		if tv, ok := n.Pkg.Info.Types[n.Lit]; ok {
			sig, _ := tv.Type.(*types.Signature)
			return sig
		}
	}
	return nil
}

// identicalSignatures compares two signatures ignoring receivers (a method
// value's type has no receiver; a stored method expression does).
func identicalSignatures(a, b *types.Signature) bool {
	if a == nil || b == nil {
		return false
	}
	ar := types.NewSignatureType(nil, nil, nil, a.Params(), a.Results(), a.Variadic())
	br := types.NewSignatureType(nil, nil, nil, b.Params(), b.Results(), b.Variadic())
	return types.Identical(ar, br)
}

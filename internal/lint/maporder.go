package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AnalyzerMapOrder flags `range` over a map whose body leaks the iteration
// order into observable output — the classic byte-identity killer behind
// non-reproducible results.json files and cache-vs-fresh mismatches.
//
// Two shapes are reported:
//
//  1. the body appends to a slice declared outside the loop and no
//     sort call over that slice follows the loop in the same block;
//  2. the body writes directly to an order-sensitive sink: fmt print
//     functions, Write/WriteString/WriteByte/WriteRune methods (io.Writer
//     and hash.Hash share this surface) or an Encode method (encoding/json
//     streams) — there is no way to sort after the fact.
//
// Populating another map, counting, or reducing with a commutative fold are
// all order-insensitive and stay silent.
var AnalyzerMapOrder = &Analyzer{
	Name: "maporder",
	Doc: "flag map iteration whose order reaches output (unsorted slice " +
		"accumulation, direct writes, hashing, JSON encoding)",
	Run: runMapOrder,
}

// sinkMethods are method names through which iteration order becomes bytes.
var sinkMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true,
	"WriteRune": true, "Encode": true,
}

// fmtSinks are fmt package-level functions that emit output. The pure
// formatting functions (Sprintf etc.) are excluded: a string built per key
// is only hazardous if it then escapes unsorted, which shape 1 catches.
var fmtSinks = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

func runMapOrder(pass *Pass) {
	inspectWithStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.Info.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRange(pass, rs, stack)
		return true
	})
}

func checkMapRange(pass *Pass, rs *ast.RangeStmt, stack []ast.Node) {
	// Shape 2: order-sensitive sinks anywhere in the body.
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.Info, call)
		if fn == nil {
			return true
		}
		sig, _ := fn.Type().(*types.Signature)
		if sig != nil && sig.Recv() == nil {
			if fn.Pkg() != nil && fn.Pkg().Name() == "fmt" && fmtSinks[fn.Name()] {
				pass.Reportf(call.Pos(),
					"map iteration order reaches output through fmt.%s: collect and "+
						"sort keys first", fn.Name())
			}
			return true
		}
		if sinkMethods[fn.Name()] {
			pass.Reportf(call.Pos(),
				"map iteration order reaches an order-sensitive sink (%s): collect "+
					"and sort keys before emitting", fn.Name())
		}
		return true
	})

	// Shape 1: unsorted accumulation into an outer slice.
	appends := mapRangeAppends(pass, rs)
	for _, ap := range appends {
		if sortFollows(pass, rs, stack, ap.path) {
			continue
		}
		pass.Reportf(ap.pos,
			"append to %s inside map iteration with no subsequent sort: element "+
				"order is nondeterministic", ap.path)
	}
}

type outerAppend struct {
	path string
	pos  token.Pos
}

// mapRangeAppends finds `x = append(x, ...)` statements in the loop body
// where x is rooted outside the loop (a pre-declared slice or a field).
func mapRangeAppends(pass *Pass, rs *ast.RangeStmt) []outerAppend {
	var out []outerAppend
	seen := map[string]bool{}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				continue
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || id.Name != "append" {
				continue
			}
			if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); !isBuiltin {
				continue
			}
			path, ok := flattenPath(call.Args[0])
			if !ok || i >= len(as.Lhs) {
				continue
			}
			if lhs, ok := flattenPath(as.Lhs[i]); !ok || lhs != path {
				continue
			}
			if !rootedOutside(pass, call.Args[0], rs) || seen[path] {
				continue
			}
			seen[path] = true
			out = append(out, outerAppend{path: path, pos: as.Pos()})
		}
		return true
	})
	return out
}

// rootedOutside reports whether the root identifier of e was declared
// before the range statement (or is a field selection, necessarily outer).
func rootedOutside(pass *Pass, e ast.Expr, rs *ast.RangeStmt) bool {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := pass.Info.ObjectOf(v)
		return obj != nil && obj.Pos() < rs.Pos()
	case *ast.SelectorExpr:
		return true
	}
	return false
}

// sortFollows reports whether, after the range statement in its enclosing
// block, some statement calls a sort.* function or a slices.Sort* variant
// with the accumulated slice among its arguments.
func sortFollows(pass *Pass, rs *ast.RangeStmt, stack []ast.Node, path string) bool {
	var block *ast.BlockStmt
	for i := len(stack) - 1; i >= 0; i-- {
		if b, ok := stack[i].(*ast.BlockStmt); ok {
			block = b
			break
		}
	}
	if block == nil {
		return false
	}
	after := false
	for _, stmt := range block.List {
		if stmt == ast.Stmt(rs) {
			after = true
			continue
		}
		if !after {
			continue
		}
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			isSort := fn.Pkg().Path() == "sort" ||
				(fn.Pkg().Path() == "slices" && strings.HasPrefix(fn.Name(), "Sort"))
			if !isSort {
				return true
			}
			for _, arg := range call.Args {
				ast.Inspect(arg, func(a ast.Node) bool {
					if expr, ok := a.(ast.Expr); ok {
						if p, ok := flattenPath(expr); ok && p == path {
							found = true
						}
					}
					return !found
				})
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AnalyzerHotAlloc machine-guards the PR-6 zero-allocation win: every
// function reachable (over the whole-program call graph) from the simulation
// hot-path roots — sim.Engine.Step, the gpu/uvm event handlers (OnEvent),
// and the TLB lookup entry point — is flagged for constructs that allocate
// per event:
//
//   - &composite literals and slice/map composite literals;
//   - make and new calls;
//   - function literals that capture enclosing variables (closure alloc);
//   - interface boxing: a concrete non-pointer value converted to an
//     interface argument, assignment or return;
//   - fmt calls and string concatenation;
//   - un-presized append: appending to a function-local slice that was not
//     created by make (field- and parameter-backed slices amortize across
//     events by the free-list idiom and stay silent).
//
// The root set extends structurally (package/type/method match, so the check
// follows renames of files but not of the entry points themselves) and by
// annotation: a function whose doc comment contains a `//hpelint:hotpath`
// line is an additional root — fixtures use it, and so can future subsystems
// that join the per-event path.
//
// The reachability walk is bounded to the simulator-core packages
// (hotPkgScope) plus any package that declares a root: probe implementations
// and the stats histograms, for example, are deliberately outside — their
// allocations are the priced cost of *probed* runs, while this analyzer
// guards the nil-probe fast path.
var AnalyzerHotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: "forbid per-event heap allocation (composite literals, closures, " +
		"boxing, fmt/string concat, un-presized append) in functions " +
		"reachable from the simulation hot-path roots",
	RunProgram: runHotAlloc,
}

// hotPkgScope bounds the reachability walk: the per-event simulator core.
var hotPkgScope = []string{
	"internal/sim", "internal/gpu", "internal/uvm", "internal/tlb",
	"internal/hir", "internal/mem", "internal/dram", "internal/ptw",
	"internal/addrspace", "internal/policy", "internal/trace",
}

// hotRoots are the structural hot-path entry points: (package name,
// receiver type or "" for any, method name).
var hotRoots = []struct{ pkg, typ, method string }{
	{"sim", "Engine", "Step"},
	{"gpu", "", "OnEvent"},
	{"uvm", "", "OnEvent"},
	{"tlb", "TLB", "Lookup"},
}

// hotpathMarker is the doc-comment line that declares an additional root.
const hotpathMarker = "//hpelint:hotpath"

func runHotAlloc(pass *ProgramPass) {
	g := pass.Graph()
	roots, rootPkgs := hotallocRoots(pass, g)
	if len(roots) == 0 {
		return
	}
	keep := func(n *CGNode) bool {
		return rootPkgs[n.Pkg] || pass.InScope(n.Pkg.ImportPath, hotPkgScope)
	}
	reached, via := g.Reachable(roots, keep)
	for _, n := range g.Nodes { // slice order keeps reports deterministic
		if reached[n] {
			checkHotNode(pass, n, via[n])
		}
	}
}

// hotallocRoots resolves the root set: the structural entry points plus
// every //hpelint:hotpath-annotated declaration.
func hotallocRoots(pass *ProgramPass, g *CallGraph) ([]*CGNode, map[*Package]bool) {
	var roots []*CGNode
	rootPkgs := make(map[*Package]bool)
	add := func(n *CGNode) {
		roots = append(roots, n)
		rootPkgs[n.Pkg] = true
	}
	for _, n := range g.Nodes {
		if n.Fn == nil {
			continue
		}
		if markedHotpath(n) {
			add(n)
			continue
		}
		for _, r := range hotRoots {
			if n.Pkg.Types.Name() != r.pkg || n.Fn.Name() != r.method {
				continue
			}
			if r.typ != "" && receiverTypeName(n.Fn) != r.typ {
				continue
			}
			add(n)
			break
		}
	}
	return roots, rootPkgs
}

// markedHotpath reports whether the node's declaration doc comment carries
// the //hpelint:hotpath marker.
func markedHotpath(n *CGNode) bool {
	if n.Fn == nil {
		return false
	}
	for _, file := range n.Pkg.Files {
		if n.Pos < file.Pos() || n.Pos > file.End() {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Pos() != n.Pos || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				if strings.HasPrefix(c.Text, hotpathMarker) {
					return true
				}
			}
		}
	}
	return false
}

// receiverTypeName returns the name of fn's receiver type ("" for plain
// functions), pointer receivers unwrapped.
func receiverTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// checkHotNode scans one hot function body for allocating constructs.
// Nested literal bodies are skipped — each literal is its own (possibly
// reachable) node.
func checkHotNode(pass *ProgramPass, n *CGNode, root string) {
	info := n.Pkg.Info
	ast.Inspect(n.Body, func(x ast.Node) bool {
		if lit, ok := x.(*ast.FuncLit); ok && lit.Body != n.Body {
			// The literal's own body is checked under its own node; here only
			// the closure-capture cost of *creating* it is charged.
			checkClosureCapture(pass, info, lit, n, root)
			return false
		}
		switch v := x.(type) {
		case *ast.UnaryExpr:
			if v.Op == token.AND {
				if cl, ok := ast.Unparen(v.X).(*ast.CompositeLit); ok {
					pass.Reportf(cl.Pos(),
						"hot path: &composite literal escapes to the heap "+
							"(reachable from %s); reuse pooled state or restructure", root)
				}
			}
		case *ast.CompositeLit:
			if allocatingLiteralType(info, v) {
				pass.Reportf(v.Pos(),
					"hot path: slice/map composite literal allocates per event "+
						"(reachable from %s); hoist to setup or reuse a buffer", root)
			}
		case *ast.CallExpr:
			if isPanicCall(info, v) {
				// A panic argument allocates exactly once, on a path that
				// ends the run; pricing it would just push the message
				// formatting out of the panic.
				return false
			}
			checkHotCall(pass, info, v, n, root)
		case *ast.BinaryExpr:
			if v.Op == token.ADD && isStringType(info, v.X) && !isConstExpr(info, v) {
				pass.Reportf(v.Pos(),
					"hot path: string concatenation allocates "+
						"(reachable from %s); precompute or use fixed identifiers", root)
			}
		case *ast.AssignStmt:
			checkBoxingAssign(pass, info, v, root)
		case *ast.ReturnStmt:
			checkBoxingReturn(pass, info, v, n, root)
		}
		return true
	})
}

// allocatingLiteralType reports whether a (non-address-taken) composite
// literal's type allocates: slices and maps always do; value structs and
// arrays do not.
func allocatingLiteralType(info *types.Info, cl *ast.CompositeLit) bool {
	tv, ok := info.Types[cl]
	if !ok || tv.Type == nil {
		return false
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice, *types.Map:
		return true
	}
	return false
}

// checkClosureCapture flags function literals that capture enclosing
// variables: each creation allocates the closure (and often moves captures
// to the heap). Capture-free literals compile to static funcs and are fine.
func checkClosureCapture(pass *ProgramPass, info *types.Info, lit *ast.FuncLit, n *CGNode, root string) {
	captured := ""
	ast.Inspect(lit.Body, func(x ast.Node) bool {
		if captured != "" {
			return false
		}
		id, ok := x.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Captured: declared in an enclosing function — i.e. outside the
		// literal's own span but not at package scope.
		if v.Parent() != nil && v.Parent().Parent() == types.Universe {
			return true // package-level
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			captured = v.Name()
			return false
		}
		return true
	})
	if captured != "" {
		pass.Reportf(lit.Pos(),
			"hot path: closure captures %q and allocates per event "+
				"(reachable from %s); use Register/Schedule handler IDs or a pooled continuation", captured, root)
	}
}

// checkHotCall flags allocating calls: make/new, fmt, and un-presized
// append; and boxes concrete arguments passed to interface parameters.
func checkHotCall(pass *ProgramPass, info *types.Info, call *ast.CallExpr, n *CGNode, root string) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				pass.Reportf(call.Pos(),
					"hot path: make allocates per event (reachable from %s); "+
						"hoist to setup or reuse pooled storage", root)
			case "new":
				pass.Reportf(call.Pos(),
					"hot path: new allocates per event (reachable from %s); "+
						"reuse pooled state", root)
			case "append":
				checkHotAppend(pass, info, call, n, root)
			}
			return
		}
	}
	if fn := calleeFunc(info, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		pass.Reportf(call.Pos(),
			"hot path: fmt.%s allocates and reflects per event (reachable from %s); "+
				"move formatting off the event path", fn.Name(), root)
		return
	}
	checkBoxingArgs(pass, info, call, root)
}

// checkHotAppend flags append calls whose appendee is a function-local
// slice not created by make. Fields and parameters stay silent: the PR-6
// idiom pre-sizes or free-lists them, and growth amortizes across events.
func checkHotAppend(pass *ProgramPass, info *types.Info, call *ast.CallExpr, n *CGNode, root string) {
	if len(call.Args) == 0 {
		return
	}
	base, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return // field paths (x.buf) and complex expressions: reuse idiom
	}
	v, ok := info.Uses[base].(*types.Var)
	if !ok || v.IsField() {
		return
	}
	// Package-level and parameter slices are presumed presized by setup.
	if v.Parent() != nil && v.Parent().Parent() == types.Universe {
		return
	}
	if isParamOf(n, v) {
		return
	}
	if localMadeWithMake(info, n.Body, v) {
		return
	}
	pass.Reportf(call.Pos(),
		"hot path: append to un-presized local %q allocates on growth "+
			"(reachable from %s); presize with make or reuse a field", v.Name(), root)
}

// isParamOf reports whether v is a parameter (or named result, or receiver)
// of the node's function.
func isParamOf(n *CGNode, v *types.Var) bool {
	var sig *types.Signature
	if n.Fn != nil {
		sig, _ = n.Fn.Type().(*types.Signature)
	} else if n.Lit != nil {
		if tv, ok := n.Pkg.Info.Types[n.Lit]; ok {
			sig, _ = tv.Type.(*types.Signature)
		}
	}
	if sig == nil {
		return false
	}
	if sig.Recv() == v {
		return true
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i) == v {
			return true
		}
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if sig.Results().At(i) == v {
			return true
		}
	}
	return false
}

// localMadeWithMake reports whether v's defining assignment inside body is a
// make call (any make presizes; the lexical approximation documented in
// DESIGN.md §10).
func localMadeWithMake(info *types.Info, body *ast.BlockStmt, v *types.Var) bool {
	made := false
	ast.Inspect(body, func(x ast.Node) bool {
		if made {
			return false
		}
		as, ok := x.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok || i >= len(as.Rhs) {
				continue
			}
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id]
			}
			if obj != v {
				continue
			}
			if c, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr); ok {
				if fid, ok := ast.Unparen(c.Fun).(*ast.Ident); ok && fid.Name == "make" {
					made = true
					return false
				}
			}
		}
		return true
	})
	return made
}

// checkBoxingArgs flags concrete non-pointer values passed to interface
// parameters — each such pass allocates the interface's data word.
func checkBoxingArgs(pass *ProgramPass, info *types.Info, call *ast.CallExpr, root string) {
	sig := calleeSignature(info, call)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			slice, ok := params.At(params.Len() - 1).Type().(*types.Slice)
			if !ok {
				continue
			}
			pt = slice.Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		reportBoxing(pass, info, arg, pt, root, "argument")
	}
}

// checkBoxingAssign flags concrete values assigned into interface-typed
// destinations.
func checkBoxingAssign(pass *ProgramPass, info *types.Info, as *ast.AssignStmt, root string) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i := range as.Lhs {
		lt, ok := info.Types[as.Lhs[i]]
		if !ok || lt.Type == nil {
			continue
		}
		reportBoxing(pass, info, as.Rhs[i], lt.Type, root, "assignment")
	}
}

// checkBoxingReturn flags concrete values returned as interface results.
func checkBoxingReturn(pass *ProgramPass, info *types.Info, ret *ast.ReturnStmt, n *CGNode, root string) {
	var sig *types.Signature
	if n.Fn != nil {
		sig, _ = n.Fn.Type().(*types.Signature)
	} else if n.Lit != nil {
		if tv, ok := n.Pkg.Info.Types[n.Lit]; ok {
			sig, _ = tv.Type.(*types.Signature)
		}
	}
	if sig == nil || sig.Results().Len() != len(ret.Results) {
		return
	}
	for i, res := range ret.Results {
		reportBoxing(pass, info, res, sig.Results().At(i).Type(), root, "return")
	}
}

// reportBoxing reports expr if converting it to dst boxes: dst is a
// non-error interface and expr's static type is a concrete non-pointer-like
// non-constant value. Pointers, channels, maps, funcs and unsafe pointers
// fit the interface data word without allocating; untyped constants are
// folded or interned by the compiler; error is exempt because hot-path
// error returns are nil on the fast path and already off it when non-nil.
func reportBoxing(pass *ProgramPass, info *types.Info, expr ast.Expr, dst types.Type, root, context string) {
	if _, ok := dst.Underlying().(*types.Interface); !ok || isErrorType(dst) {
		return
	}
	tv, ok := info.Types[expr]
	if !ok || tv.Type == nil || tv.Value != nil || tv.IsNil() {
		return
	}
	if _, isIface := tv.Type.Underlying().(*types.Interface); isIface {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return
	}
	pass.Reportf(expr.Pos(),
		"hot path: %s boxes a concrete %s into an interface and allocates "+
			"(reachable from %s); pass a pointer or keep the call monomorphic",
		context, tv.Type.String(), root)
}

// isErrorType reports whether t is the predeclared error interface.
func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "error" && obj.Pkg() == nil
}

// isPanicCall reports whether call invokes the panic builtin.
func isPanicCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}

// isConstExpr reports whether e folded to a compile-time constant.
func isConstExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

// isStringType reports whether e's static type is (underlying) string.
func isStringType(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}

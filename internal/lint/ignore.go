package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// A directive is one parsed `//lint:ignore hpelint/<name> reason` comment.
// It suppresses diagnostics from exactly the named analyzer on exactly the
// next source line of the same file — narrow on purpose, so a suppression
// can never quietly swallow a new, unrelated finding added nearby.
type directive struct {
	analyzer string // analyzer name without the hpelint/ prefix
	pos      token.Position
	used     bool
}

const directivePrefix = "//lint:ignore "

// ignoreAnalyzerName is the pseudo-analyzer under which directive problems
// (malformed, unknown analyzer, unused) are reported. It is not itself
// suppressible: a broken suppression must always surface.
const ignoreAnalyzerName = "ignore"

// collectDirectives parses suppression directives from a package's files.
// Malformed directives are reported immediately as diagnostics.
func collectDirectives(fset *token.FileSet, files []*ast.File, known map[string]bool) ([]*directive, []Diagnostic) {
	var dirs []*directive
	var diags []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				text := c.Text
				// Harness affordance: a fixture directive may carry its own
				// `// want ...` annotation; that tail is not part of the reason.
				if i := strings.Index(text, "// want "); i > 0 {
					text = strings.TrimSpace(text[:i])
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, directivePrefix))
				name, reason, _ := strings.Cut(rest, " ")
				switch {
				case !strings.HasPrefix(name, "hpelint/"):
					diags = append(diags, Diagnostic{
						Analyzer: ignoreAnalyzerName, Pos: pos,
						Message: "malformed //lint:ignore: analyzer must be named hpelint/<name>",
					})
					continue
				case strings.TrimSpace(reason) == "":
					diags = append(diags, Diagnostic{
						Analyzer: ignoreAnalyzerName, Pos: pos,
						Message: "//lint:ignore " + name + " needs a reason: say why the invariant does not apply here",
					})
					continue
				}
				short := strings.TrimPrefix(name, "hpelint/")
				if !known[short] {
					diags = append(diags, Diagnostic{
						Analyzer: ignoreAnalyzerName, Pos: pos,
						Message: "//lint:ignore names unknown analyzer " + name,
					})
					continue
				}
				dirs = append(dirs, &directive{analyzer: short, pos: pos})
			}
		}
	}
	return dirs, diags
}

// applyDirectives drops diagnostics suppressed by a directive (same file,
// directive line + 1, matching analyzer) and reports every directive that
// suppressed nothing — an unused ignore is stale documentation at best and
// a silently disarmed check at worst.
func applyDirectives(diags []Diagnostic, dirs []*directive) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		suppressed := false
		for _, dir := range dirs {
			if dir.analyzer == d.Analyzer &&
				dir.pos.Filename == d.Pos.Filename &&
				dir.pos.Line+1 == d.Pos.Line {
				dir.used = true
				suppressed = true
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}
	for _, dir := range dirs {
		if !dir.used {
			out = append(out, Diagnostic{
				Analyzer: ignoreAnalyzerName, Pos: dir.pos,
				Message: "unused //lint:ignore directive for hpelint/" + dir.analyzer +
					": nothing on the next line triggers it",
			})
		}
	}
	return out
}

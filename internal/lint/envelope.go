package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// AnalyzerEnvelope enforces the /v1 error-envelope contract on the HTTP
// serving layers: every error a handler emits must go through the typed
// envelope (server.WriteError / EncodeError) with a code from the closed
// ErrorCode vocabulary. Concretely:
//
//   - net/http.Error bypasses the envelope entirely and is always flagged;
//   - w.WriteHeader(<constant >= 400>) is a raw, envelope-less error status;
//   - an ErrorCode-typed argument must be a declared constant of the package
//     that declares the ErrorCode type, or an ErrorCode-typed variable
//     threading an existing code — string literals and cross-package
//     conversions mint vocabulary the clients never agreed to;
//   - a return statement in a ResponseWriter-bearing function whose
//     preceding statements (in the innermost block) never touch the writer
//     is a path that silently drops the response.
//
// The return-path rule is lexical per innermost block; a path that responds
// through a helper invisible to it earns a //lint:ignore hpelint/envelope
// with the reason.
var AnalyzerEnvelope = &Analyzer{
	Name:       "envelope",
	Doc:        "require /v1 error paths to end in the typed error envelope with a vocabulary code",
	RunProgram: runEnvelope,
}

// envelopePkgScope is where the /v1 surface lives: the backend daemon and
// the cluster coordinator.
var envelopePkgScope = []string{
	"internal/server",
	"internal/cluster",
}

func runEnvelope(pass *ProgramPass) {
	for _, pkg := range pass.Packages {
		if !pass.InScope(pkg.ImportPath, envelopePkgScope) || pkg.Info == nil {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkEnvelopeCalls(pass, pkg, fd)
				checkEnvelopeReturns(pass, pkg, fd.Type, fd.Body)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if lit, ok := n.(*ast.FuncLit); ok {
						checkEnvelopeReturns(pass, pkg, lit.Type, lit.Body)
					}
					return true
				})
			}
		}
	}
}

// checkEnvelopeCalls applies the call-shaped rules (http.Error, raw
// WriteHeader, ErrorCode provenance) to the whole declaration subtree,
// nested literals included.
func checkEnvelopeCalls(pass *ProgramPass, pkg *Package, fd *ast.FuncDecl) {
	info := pkg.Info
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
			checkCodeConversion(pass, pkg, call, tv.Type)
			return true
		}
		fn := calleeFunc(info, call)
		if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "net/http" && fn.Name() == "Error" {
			pass.Reportf(call.Pos(), "http.Error bypasses the /v1 error envelope; use WriteError with a vocabulary code")
			return true
		}
		checkRawWriteHeader(pass, info, call)
		checkCodeArgs(pass, pkg, info, call)
		return true
	})
}

// checkRawWriteHeader flags w.WriteHeader with a constant error status —
// an enveloped response would carry the status through WriteError instead.
func checkRawWriteHeader(pass *ProgramPass, info *types.Info, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "WriteHeader" || len(call.Args) != 1 {
		return
	}
	if tv, ok := info.Types[sel.X]; !ok || !namedTypeIn(tv.Type, "http", "ResponseWriter") {
		return
	}
	tv, ok := info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return
	}
	status, ok := constant.Int64Val(tv.Value)
	if ok && status >= 400 {
		pass.Reportf(call.Pos(), "raw WriteHeader(%d) bypasses the /v1 error envelope; use WriteError", status)
	}
}

// errorCodeNamed returns t as the named ErrorCode type (underlying string,
// name "ErrorCode"), or nil.
func errorCodeNamed(t types.Type) *types.Named {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "ErrorCode" {
		return nil
	}
	if basic, ok := named.Underlying().(*types.Basic); !ok || basic.Kind() != types.String {
		return nil
	}
	return named
}

// checkCodeConversion flags ErrorCode conversions outside the package that
// declares the type: minting codes the closed vocabulary does not contain.
func checkCodeConversion(pass *ProgramPass, pkg *Package, call *ast.CallExpr, target types.Type) {
	named := errorCodeNamed(target)
	if named == nil || named.Obj().Pkg() == nil {
		return
	}
	if pkg.Types != nil && named.Obj().Pkg() == pkg.Types {
		return // the declaring package may construct its own codes
	}
	pass.Reportf(call.Pos(), "conversion to %s.ErrorCode mints an error code outside its declaring package; use a declared vocabulary constant",
		named.Obj().Pkg().Name())
}

// checkCodeArgs verifies every ErrorCode-typed argument resolves to a
// declared constant of the vocabulary's package, or threads an existing
// ErrorCode-typed value.
func checkCodeArgs(pass *ProgramPass, pkg *Package, info *types.Info, call *ast.CallExpr) {
	sig := calleeSignature(info, call)
	if sig == nil {
		return
	}
	for i, arg := range call.Args {
		if i >= sig.Params().Len() && !sig.Variadic() {
			break
		}
		pi := i
		if pi >= sig.Params().Len() {
			pi = sig.Params().Len() - 1
		}
		named := errorCodeNamed(sig.Params().At(pi).Type())
		if named == nil || named.Obj().Pkg() == nil {
			continue
		}
		if !vocabularyCode(pkg, info, arg, named) {
			pass.Reportf(arg.Pos(), "error code %s is not a declared constant of the closed /v1 vocabulary (%s.ErrorCode)",
				describeExpr(arg), named.Obj().Pkg().Name())
		}
	}
}

// vocabularyCode reports whether an ErrorCode argument is legitimate: a
// constant declared next to the type, any ErrorCode-typed variable or field
// (threading), or a construction inside the declaring package itself.
func vocabularyCode(pkg *Package, info *types.Info, arg ast.Expr, named *types.Named) bool {
	if pkg.Types != nil && named.Obj().Pkg() == pkg.Types {
		return true
	}
	switch e := unparen(arg).(type) {
	case *ast.Ident:
		return declaredCodeObj(info.Uses[e], named)
	case *ast.SelectorExpr:
		return declaredCodeObj(info.Uses[e.Sel], named)
	}
	return false
}

// declaredCodeObj accepts constants from the vocabulary's declaring package
// and any ErrorCode-typed variable (parameters, struct fields, locals that
// themselves passed this check at assignment-conversion time).
func declaredCodeObj(obj types.Object, named *types.Named) bool {
	switch o := obj.(type) {
	case *types.Const:
		return o.Pkg() == named.Obj().Pkg()
	case *types.Var:
		return true
	}
	return false
}

// describeExpr renders a short label for the offending argument.
func describeExpr(e ast.Expr) string {
	switch v := unparen(e).(type) {
	case *ast.BasicLit:
		return v.Value
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		if id, ok := v.X.(*ast.Ident); ok {
			return id.Name + "." + v.Sel.Name
		}
		return v.Sel.Name
	}
	return "expression"
}

// checkEnvelopeReturns applies the response-dropping rule to one function
// body: a return whose innermost enclosing block never touched the
// function's ResponseWriter parameter before it is a path with no response.
func checkEnvelopeReturns(pass *ProgramPass, pkg *Package, ftype *ast.FuncType, body *ast.BlockStmt) {
	w := responseWriterParam(pkg.Info, ftype)
	if w == nil {
		return
	}
	var walk func(stmts []ast.Stmt)
	seenWriter := func(stmts []ast.Stmt, before ast.Stmt) bool {
		for _, st := range stmts {
			if st == before {
				return false
			}
			if stmtTouchesWriter(pkg.Info, st, w) {
				return true
			}
		}
		return false
	}
	var inspectStmt func(st ast.Stmt, siblings []ast.Stmt)
	inspectStmt = func(st ast.Stmt, siblings []ast.Stmt) {
		switch v := st.(type) {
		case *ast.ReturnStmt:
			if !seenWriter(siblings, st) {
				pass.Reportf(v.Pos(), "handler returns without writing a response on this path; error paths must end in the /v1 envelope (WriteError)")
			}
		case *ast.BlockStmt:
			walk(v.List)
		case *ast.IfStmt:
			walk(v.Body.List)
			if v.Else != nil {
				inspectStmt(v.Else, nil)
			}
		case *ast.ForStmt:
			walk(v.Body.List)
		case *ast.RangeStmt:
			walk(v.Body.List)
		case *ast.SwitchStmt:
			for _, c := range v.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					walk(cc.Body)
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range v.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					walk(cc.Body)
				}
			}
		case *ast.SelectStmt:
			for _, c := range v.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					walk(cc.Body)
				}
			}
		case *ast.LabeledStmt:
			inspectStmt(v.Stmt, siblings)
		}
	}
	walk = func(stmts []ast.Stmt) {
		for _, st := range stmts {
			inspectStmt(st, stmts)
		}
	}
	walk(body.List)
}

// responseWriterParam returns the function's http.ResponseWriter parameter
// object, or nil.
func responseWriterParam(info *types.Info, ftype *ast.FuncType) *types.Var {
	if ftype.Params == nil {
		return nil
	}
	for _, field := range ftype.Params.List {
		for _, name := range field.Names {
			if v, ok := info.Defs[name].(*types.Var); ok && namedTypeIn(v.Type(), "http", "ResponseWriter") {
				return v
			}
		}
	}
	return nil
}

// stmtTouchesWriter reports whether the statement contains a call involving
// the writer parameter (as argument or method receiver) — i.e. this path
// plausibly responded. Nested function literals are part of the lexical
// path only if invoked, which the lexical rule cannot see; they count.
func stmtTouchesWriter(info *types.Info, st ast.Stmt, w *types.Var) bool {
	found := false
	ast.Inspect(st, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		ast.Inspect(call, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok && info.Uses[id] == w {
				found = true
				return false
			}
			return !found
		})
		return !found
	})
	return found
}

// Package lint is hpelint's analyzer framework: a hand-rolled, stdlib-only
// (go/ast + go/parser + go/types, no golang.org/x/tools) static-analysis
// suite that machine-checks the invariants this repository's serving and
// caching layers lean on.
//
// The contracts under check are the ones nothing else enforces mechanically:
//
//   - results must be byte-identical across worker counts and cache hits —
//     the content-addressed result cache (internal/server) serves old bytes
//     as truth, so any wall-clock read, unseeded RNG or map-iteration-order
//     leak into output invalidates every golden figure (determinism,
//     maporder);
//   - probe emission sites must stay nil-guarded so unprobed runs keep the
//     exact fast path promised by BenchmarkNilProbe (probeguard);
//   - contexts must be threaded end-to-end or cancellation silently stops
//     working (ctxflow);
//   - mutex-protected state must be touched with the documented lock held
//     (locked).
//
// Each contract is an Analyzer. The driver (Run, used by cmd/hpelint) loads
// packages with go-list-based loading, runs every applicable analyzer, and
// filters the diagnostics through //lint:ignore suppressions. Diagnostics
// carry file/line/column positions and are reported in a deterministic
// order, so the tool itself honors the invariant it enforces.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named invariant check. Run inspects a fully type-checked
// package through the Pass and reports findings via Pass.Reportf.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// `//lint:ignore hpelint/<Name> reason` suppression directives.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Scope, when non-nil, restricts the analyzer to packages for which it
	// returns true (keyed by import path). A nil Scope means every package.
	// The fixture harness bypasses Scope so testdata packages exercise
	// analyzers regardless of their production footprint.
	Scope func(pkgPath string) bool
	// Run performs a per-package analysis. Exactly one of Run and
	// RunProgram is set.
	Run func(*Pass)
	// RunProgram performs a whole-program analysis over every loaded
	// package at once, with access to the shared cross-package call graph
	// (ProgramPass.Graph). Program analyzers apply their own package scoping
	// through ProgramPass.InScope, since one invocation spans packages both
	// in and out of their footprint.
	RunProgram func(*ProgramPass)
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	PkgPath  string

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding: which analyzer, where, and what.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the conventional file:line:col form used by the CLI.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (hpelint/%s)",
		d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// sortDiagnostics orders findings by file, line, column, analyzer, message —
// a total order, so hpelint's own output is reproducible.
func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// runAnalyzers applies each per-package analyzer to pkg (honoring Scope when
// useScope is set) and returns the raw, unsuppressed diagnostics. Program
// analyzers (RunProgram) are driven separately by runProgramAnalyzers.
func runAnalyzers(pkg *Package, fset *token.FileSet, analyzers []*Analyzer, useScope bool) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		if a.Run == nil {
			continue
		}
		if useScope && a.Scope != nil && !a.Scope(pkg.ImportPath) {
			continue
		}
		pass := &Pass{
			Analyzer: a,
			Fset:     fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			PkgPath:  pkg.ImportPath,
			diags:    &diags,
		}
		a.Run(pass)
	}
	return diags
}

package lint

import (
	"bytes"
	"encoding/json"
	"go/token"
	"path/filepath"
	"testing"
)

// loadFixtureGraph type-checks testdata/src/<name> with a fresh loader and
// file set and builds its call graph, so repeated calls are fully
// independent builds (the determinism test depends on that).
func loadFixtureGraph(t *testing.T, name string) *CallGraph {
	t.Helper()
	repoRoot, err := repoRootDir()
	if err != nil {
		t.Fatalf("locating repo root: %v", err)
	}
	std, err := stdlibExports(repoRoot)
	if err != nil {
		t.Fatalf("resolving stdlib export data: %v", err)
	}
	fset := token.NewFileSet()
	loader := &fixtureLoader{
		fset:    fset,
		srcRoot: filepath.Join(repoRoot, "internal", "lint", "testdata", "src"),
		std:     exportImporter(fset, std),
		cache:   map[string]*Package{},
	}
	pkg, err := loader.load(name)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	for _, terr := range pkg.TypeErrors {
		t.Fatalf("fixture %s does not type-check: %v", name, terr)
	}
	return buildCallGraph(fset, []*Package{pkg})
}

// node finds a graph node by display name.
func node(t *testing.T, g *CallGraph, name string) *CGNode {
	t.Helper()
	for _, n := range g.Nodes {
		if n.Name == name {
			return n
		}
	}
	t.Fatalf("graph has no node %q; have %v", name, nodeNames(g))
	return nil
}

func nodeNames(g *CallGraph) []string {
	out := make([]string, 0, len(g.Nodes))
	for _, n := range g.Nodes {
		out = append(out, n.Name)
	}
	return out
}

// edgeTo reports whether n has an edge of the given kind to callee.
func edgeTo(n *CGNode, callee string, kind CGEdgeKind) bool {
	for _, e := range n.Calls {
		if e.Callee.Name == callee && e.Kind == kind {
			return true
		}
	}
	return false
}

// TestCallGraphInterfaceResolution pins CHA fan-out: an interface method
// call contributes one edge per implementing concrete type, covering both
// pointer-receiver and value-receiver implementations.
func TestCallGraphInterfaceResolution(t *testing.T) {
	g := loadFixtureGraph(t, "callgraph")
	dispatch := node(t, g, "callgraph.dispatch")
	for _, callee := range []string{"callgraph.(*alpha).Step", "callgraph.beta.Step"} {
		if !edgeTo(dispatch, callee, EdgeInterface) {
			t.Errorf("dispatch has no interface edge to %s; edges: %s", callee, edgeDump(dispatch))
		}
	}
	if edgeTo(dispatch, "callgraph.direct", EdgeInterface) {
		t.Error("dispatch gained a bogus interface edge to a plain function")
	}
}

// TestCallGraphFuncValueAndClosureEdges pins the function-value analogue of
// CHA: a call through a func-typed variable resolves to every address-taken
// function or stored literal with an identical signature, and in-place
// literal calls stay static.
func TestCallGraphFuncValueAndClosureEdges(t *testing.T) {
	g := loadFixtureGraph(t, "callgraph")
	driver := node(t, g, "callgraph.driver")

	if !edgeTo(driver, "callgraph.dispatch", EdgeStatic) || !edgeTo(driver, "callgraph.direct", EdgeStatic) {
		t.Errorf("driver is missing a static edge; edges: %s", edgeDump(driver))
	}
	// f() and g() are func() int calls through values: both must fan out to
	// the address-taken candidates of that signature — taken and driver$1 —
	// and must not reach direct, which is never referenced as a value.
	for _, callee := range []string{"callgraph.taken", "callgraph.driver$1"} {
		if !edgeTo(driver, callee, EdgeFuncValue) {
			t.Errorf("driver has no func-value edge to %s; edges: %s", callee, edgeDump(driver))
		}
	}
	if edgeTo(driver, "callgraph.direct", EdgeFuncValue) {
		t.Error("driver func-value call resolved to direct, which is not address-taken")
	}
	if !edgeTo(driver, "callgraph.driver$2", EdgeStatic) {
		t.Errorf("in-place literal call is not a static edge; edges: %s", edgeDump(driver))
	}

	if !node(t, g, "callgraph.taken").AddressTaken {
		t.Error("taken is assigned to a variable but not marked address-taken")
	}
	if node(t, g, "callgraph.direct").AddressTaken {
		t.Error("direct is only ever called but marked address-taken")
	}
	if !node(t, g, "callgraph.driver$1").AddressTaken {
		t.Error("stored closure driver$1 not marked address-taken")
	}
	if node(t, g, "callgraph.driver$2").AddressTaken {
		t.Error("in-place literal driver$2 marked address-taken")
	}
}

func edgeDump(n *CGNode) string {
	var b bytes.Buffer
	for _, e := range n.Calls {
		if b.Len() > 0 {
			b.WriteString(", ")
		}
		b.WriteString(e.Callee.Name + "[" + e.Kind.String() + "]")
	}
	return b.String()
}

// TestFuncSymbolBridgesUniverses pins the symbol-string index that repairs
// cross-universe *types.Func identity (source vs export-data views of the
// same declaration): every declared node is reachable through bySym under
// its funcSymbol key, and the rendered symbols are the documented shapes.
func TestFuncSymbolBridgesUniverses(t *testing.T) {
	g := loadFixtureGraph(t, "callgraph")
	for _, n := range g.Nodes {
		if n.Fn == nil {
			continue
		}
		sym := funcSymbol(n.Fn)
		if got := g.bySym[sym]; got != n {
			t.Errorf("bySym[%q] = %v, want node %s", sym, got, n.Name)
		}
		if got := g.NodeOf(n.Fn); got != n {
			t.Errorf("NodeOf(%s) = %v, want the node itself", n.Name, got)
		}
	}
	for name, wantSym := range map[string]string{
		"callgraph.(*alpha).Step": "callgraph.(*alpha).Step",
		"callgraph.beta.Step":     "callgraph.(beta).Step",
		"callgraph.direct":        "callgraph.direct",
	} {
		if got := funcSymbol(node(t, g, name).Fn); got != wantSym {
			t.Errorf("funcSymbol(%s) = %q, want %q", name, got, wantSym)
		}
	}
}

// TestCallGraphDeterministic builds the graph twice from fully independent
// loads and requires byte-identical debug dumps: node order, edge order and
// CHA candidate order must not depend on map iteration.
func TestCallGraphDeterministic(t *testing.T) {
	a := loadFixtureGraph(t, "callgraph").DebugString()
	b := loadFixtureGraph(t, "callgraph").DebugString()
	if a != b {
		t.Errorf("two independent graph builds differ:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
	if a == "" {
		t.Error("graph dump is empty")
	}
}

// TestRunJSONByteIdentical runs the production driver twice over the same
// packages and requires the -json rendering of the results to be
// byte-identical — the repo-health endpoint diffs these reports, so any
// map-order nondeterminism in the suite is a regression.
func TestRunJSONByteIdentical(t *testing.T) {
	repoRoot, err := repoRootDir()
	if err != nil {
		t.Fatalf("locating repo root: %v", err)
	}
	render := func() []byte {
		diags, err := Run(repoRoot, []string{"./internal/probe/", "./internal/promtext/"}, All())
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		b, err := json.Marshal(diags)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return b
	}
	if a, b := render(), render(); !bytes.Equal(a, b) {
		t.Errorf("two driver runs rendered different JSON:\n%s\n%s", a, b)
	}
}

// TestFixtureDiagnosticsByteIdentical covers the same property where
// findings actually exist: two independent fixture runs of the program
// analyzers must serialize identically.
func TestFixtureDiagnosticsByteIdentical(t *testing.T) {
	render := func() []byte {
		res := runFixture(t, "lockorder", AnalyzerLockOrder)
		b, err := json.Marshal(res.Diags)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return b
	}
	if a, b := render(), render(); !bytes.Equal(a, b) {
		t.Errorf("two fixture runs rendered different JSON:\n%s\n%s", a, b)
	}
	if bytes.Equal(render(), []byte("[]")) {
		t.Error("lockorder fixture produced no findings; determinism test is vacuous")
	}
}

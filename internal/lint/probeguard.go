package lint

import (
	"go/ast"
)

// AnalyzerProbeGuard enforces the probe overhead contract (internal/probe
// package doc): a nil probe must cost nothing, so every call through a
// probe.Probe-typed value must be dominated by a nil check on that exact
// receiver. An unguarded emission site either panics on unprobed runs or —
// worse — forces callers to always attach a probe, destroying the
// BenchmarkNilProbe fast path the simulator's hot loop is priced against.
//
// Accepted dominators, checked lexically within the enclosing function:
//
//	if p != nil { p.Emit(...) }            // guard branch (&& chains too)
//	if p == nil { ... } else { p.Emit() }  // else of a nil test (|| chains)
//	if p == nil { return }; p.Emit(...)    // early exit before the call
var AnalyzerProbeGuard = &Analyzer{
	Name: "probeguard",
	Doc: "require every call on a probe.Probe value to be dominated by a " +
		"nil check on that receiver",
	Run: runProbeGuard,
}

func runProbeGuard(pass *Pass) {
	inspectWithStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if pass.Info.Selections[sel] == nil {
			return true // qualified identifier (pkg.Func), not a method call
		}
		recv := pass.Info.TypeOf(sel.X)
		if recv == nil || !namedTypeIn(recv, "probe", "Probe") {
			return true
		}
		path, ok := flattenPath(sel.X)
		if !ok {
			pass.Reportf(call.Pos(),
				"call of %s on a probe.Probe value that is not a checkable variable: "+
					"bind it to a variable and nil-check before calling", sel.Sel.Name)
			return true
		}
		if !nilCheckDominates(pass, call, stack, path) {
			pass.Reportf(call.Pos(),
				"%s.%s called without a dominating `%s != nil` check: unprobed runs "+
					"must keep the zero-cost fast path", path, sel.Sel.Name, path)
		}
		return true
	})
}

// nilCheckDominates reports whether the call node (whose ancestors are
// stack) is dominated by a nil check on path.
func nilCheckDominates(pass *Pass, call *ast.CallExpr, stack []ast.Node, path string) bool {
	// Enclosing if-branches: inside the body of `if path != nil`, or the
	// else of `if path == nil`.
	for i := len(stack) - 1; i >= 0; i-- {
		ifs, ok := stack[i].(*ast.IfStmt)
		if !ok {
			continue
		}
		inBody := i+1 < len(stack) && stack[i+1] == ast.Node(ifs.Body)
		inElse := i+1 < len(stack) && ifs.Else != nil && stack[i+1] == ast.Node(ifs.Else)
		if inBody && condGuaranteesNonNil(pass.Info, ifs.Cond, path) {
			return true
		}
		if inElse && condGuaranteesNil(pass.Info, ifs.Cond, path) {
			return true
		}
	}
	// Early exits: a preceding `if path == nil { return/panic/... }` in any
	// enclosing block of the same function.
	for i := len(stack) - 1; i >= 0; i-- {
		switch v := stack[i].(type) {
		case *ast.FuncLit, *ast.FuncDecl:
			return false // don't look past the function boundary
		case *ast.BlockStmt:
			for _, stmt := range v.List {
				if stmt.Pos() >= call.Pos() {
					break
				}
				ifs, ok := stmt.(*ast.IfStmt)
				if !ok {
					continue
				}
				if condGuaranteesNil(pass.Info, ifs.Cond, path) && blockTerminates(pass.Info, ifs.Body) {
					return true
				}
			}
		}
	}
	return false
}

package lint

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// AnalyzerLocked checks `// guarded by <mu>` field annotations: a struct
// field carrying that comment may only be read or written in a function
// that demonstrably holds the named mutex on the same receiver path —
// a lexically preceding `x.mu.Lock()` / `x.mu.RLock()`, where `x` is the
// base of the field access. Helper
// functions that run entirely under a caller's lock opt out by convention:
// a name ending in "Locked" asserts the precondition instead of proving it.
//
// The check is lexical, not path-sensitive: it proves "this function locks
// before it touches", which is exactly the discipline the server's result
// cache and the suite's shared caches document and the race subset only
// samples.
var AnalyzerLocked = &Analyzer{
	Name: "locked",
	Doc: "fields annotated `// guarded by mu` must be accessed with the " +
		"named mutex held (or from a *Locked helper)",
	Run: runLocked,
}

var guardedByRe = regexp.MustCompile(`guarded by (\w+)`)

func runLocked(pass *Pass) {
	guarded := collectGuardedFields(pass)
	if len(guarded) == 0 {
		return
	}
	inspectWithStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection := pass.Info.Selections[sel]
		if selection == nil || selection.Kind() != types.FieldVal {
			return true
		}
		fieldVar, ok := selection.Obj().(*types.Var)
		if !ok {
			return true
		}
		mu, isGuarded := guarded[fieldVar]
		if !isGuarded {
			return true
		}
		base, ok := flattenPath(sel.X)
		if !ok {
			pass.Reportf(sel.Pos(),
				"field %s is guarded by %s but accessed through an expression that "+
					"cannot be matched to a lock", fieldVar.Name(), mu)
			return true
		}
		if fname := enclosingFuncName(stack); strings.HasSuffix(fname, "Locked") {
			return true
		}
		if holdsLock(pass, stack, sel, base, mu) {
			return true
		}
		pass.Reportf(sel.Pos(),
			"field %s is guarded by %s but accessed without %s.%s held",
			fieldVar.Name(), mu, base, mu)
		return true
	})
}

// collectGuardedFields maps annotated field objects to their mutex name.
func collectGuardedFields(pass *Pass) map[*types.Var]string {
	out := map[*types.Var]string{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu := guardAnnotation(field)
				if mu == "" {
					continue
				}
				for _, name := range field.Names {
					if v, ok := pass.Info.Defs[name].(*types.Var); ok {
						out[v] = mu
					}
				}
			}
			return true
		})
	}
	return out
}

// guardAnnotation extracts the mutex name from a field's doc or trailing
// comment, or "".
func guardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// holdsLock reports whether some enclosing function body contains a call to
// <base>.<mu>.Lock or RLock lexically before the access (which the
// canonical `mu.Lock(); defer mu.Unlock()` pair always satisfies).
func holdsLock(pass *Pass, stack []ast.Node, access *ast.SelectorExpr, base, mu string) bool {
	lockPath := base + "." + mu
	for _, body := range enclosingFuncBodies(stack) {
		if body == nil {
			continue
		}
		held := false
		ast.Inspect(body, func(n ast.Node) bool {
			if held {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			recvPath, ok := flattenPath(sel.X)
			if !ok || recvPath != lockPath {
				return true
			}
			switch sel.Sel.Name {
			case "Lock", "RLock":
				if call.Pos() < access.Pos() {
					held = true
				}
			}
			return true
		})
		if held {
			return true
		}
	}
	return false
}

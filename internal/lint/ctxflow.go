package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AnalyzerCtxFlow enforces end-to-end context threading, the contract the
// daemon's cancellation path (hpe.WithContext → gpu → sim.Engine polling)
// depends on. Two rules:
//
//  1. context.Background()/context.TODO() may appear only in package main
//     and in tests — everywhere else a fresh root context severs the
//     caller's cancellation chain;
//  2. a function that receives a context.Context must thread it: calling a
//     context-accepting callee with a fresh Background()/TODO() instead of
//     the in-scope ctx is reported even in main, because there the caller's
//     ctx demonstrably exists and is being dropped.
var AnalyzerCtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc: "require contexts to be threaded end-to-end; no context.Background/" +
		"TODO outside main and tests",
	Run: runCtxFlow,
}

func runCtxFlow(pass *Pass) {
	reported := map[token.Pos]bool{}
	inspectWithStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// Rule 2: dropping an in-scope ctx on the floor.
		if enclosingHasCtx(pass, stack) {
			sig := calleeSignature(pass.Info, call)
			if sig != nil && sig.Params().Len() > 0 && isContextType(sig.Params().At(0).Type()) &&
				len(call.Args) > 0 && isFreshContext(pass.Info, call.Args[0]) {
				pass.Reportf(call.Args[0].Pos(),
					"%s receives a context but passes a fresh %s to %s: thread the "+
						"caller's ctx or cancellation silently stops here",
					enclosingFuncName(stack), freshContextName(pass.Info, call.Args[0]), calleeLabel(pass.Info, call))
				reported[freshContextPos(call.Args[0])] = true
			}
		}
		// Rule 1: fresh root contexts outside main/tests.
		if isFreshContext(pass.Info, ast.Expr(call)) && !reported[call.Pos()] {
			if pass.Pkg != nil && pass.Pkg.Name() == "main" {
				return true
			}
			file := pass.Fset.Position(call.Pos()).Filename
			if strings.HasSuffix(file, "_test.go") {
				return true
			}
			pass.Reportf(call.Pos(),
				"%s outside package main or tests: accept a ctx parameter so "+
					"callers control cancellation", freshContextName(pass.Info, ast.Expr(call)))
		}
		return true
	})
}

// isContextType matches the context.Context interface type.
func isContextType(t types.Type) bool { return namedTypeIn(t, "context", "Context") }

// isFreshContext reports whether e is a direct call to context.Background
// or context.TODO.
func isFreshContext(info *types.Info, e ast.Expr) bool {
	return freshContextName(info, e) != ""
}

// freshContextName returns "context.Background()"/"context.TODO()" when e
// is such a call, else "".
func freshContextName(info *types.Info, e ast.Expr) string {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return ""
	}
	switch fullFuncName(calleeFunc(info, call)) {
	case "context.Background":
		return "context.Background()"
	case "context.TODO":
		return "context.TODO()"
	}
	return ""
}

// freshContextPos returns the position of the underlying Background/TODO
// call inside e (which may be parenthesized).
func freshContextPos(e ast.Expr) token.Pos {
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
		return call.Pos()
	}
	return e.Pos()
}

// enclosingHasCtx reports whether any enclosing function on the stack
// declares a parameter of type context.Context (closures inherit their
// enclosing function's ctx by capture).
func enclosingHasCtx(pass *Pass, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		var ft *ast.FuncType
		switch v := stack[i].(type) {
		case *ast.FuncLit:
			ft = v.Type
		case *ast.FuncDecl:
			ft = v.Type
		default:
			continue
		}
		if ft.Params == nil {
			continue
		}
		for _, field := range ft.Params.List {
			if t := pass.Info.TypeOf(field.Type); t != nil && isContextType(t) {
				return true
			}
		}
	}
	return false
}

// calleeLabel names the called function for diagnostics: "pkg.Func",
// "recv.Method" or the expression text fallback.
func calleeLabel(info *types.Info, call *ast.CallExpr) string {
	if fn := calleeFunc(info, call); fn != nil {
		return fn.Name()
	}
	if path, ok := flattenPath(call.Fun); ok {
		return path
	}
	return "callee"
}

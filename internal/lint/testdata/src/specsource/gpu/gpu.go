// Package gpu mirrors the production simulator-config surface for the
// specsource fixture: the analyzer matches the Config type and the
// DefaultConfig constructor structurally by package and identifier name.
package gpu

// Config is the simulated-system configuration.
type Config struct {
	MemoryPages int
	UseHIR      bool
}

// DefaultConfig returns the paper's Table I defaults.
func DefaultConfig(pages int) Config { return Config{MemoryPages: pages} }

// Package specsource is the hpelint/specsource fixture: gpu.Config
// constructed by hand (DefaultConfig calls, composite literals) must be
// flagged; mutating an already-materialized config and sanctioned
// //lint:ignore sites must stay silent.
package specsource

import "specsource/gpu"

// BadDefault calls the config constructor directly.
func BadDefault() gpu.Config {
	return gpu.DefaultConfig(4096) // want `gpu\.DefaultConfig called outside the spec materializer`
}

// BadLiteral assembles a config by hand.
func BadLiteral() gpu.Config {
	return gpu.Config{MemoryPages: 64} // want `gpu\.Config composite literal outside the spec materializer`
}

// BadPointerLiteral is flagged through the address operator too.
func BadPointerLiteral() *gpu.Config {
	return &gpu.Config{UseHIR: true} // want `gpu\.Config composite literal outside the spec materializer`
}

// GoodMutation tweaks an existing config: copies and field writes are how
// run-scoped adjustments ride on a materialized config.
func GoodMutation(cfg gpu.Config) gpu.Config {
	cfg.UseHIR = true
	return cfg
}

// GoodIgnored is a sanctioned construction site.
func GoodIgnored() gpu.Config {
	//lint:ignore hpelint/specsource fixture-sanctioned construction site
	return gpu.DefaultConfig(1)
}

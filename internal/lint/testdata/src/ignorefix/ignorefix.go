// Package ignorefix is the suppression-mechanism fixture: a
// //lint:ignore directive silences exactly the named analyzer on exactly
// the next line; anything else — wrong analyzer, wrong line, no
// violation, malformed syntax, missing reason — is itself reported.
package ignorefix

import "time"

// Suppressed is the approved shape: right analyzer, next line, a reason.
func Suppressed() time.Time {
	//lint:ignore hpelint/determinism fixture proves the suppression mechanism silences exactly this line
	return time.Now()
}

// WrongName names a different analyzer: the finding still fires and the
// directive is reported unused.
func WrongName() time.Time {
	//lint:ignore hpelint/maporder wrong analyzer on purpose // want `unused //lint:ignore directive for hpelint/maporder`
	return time.Now() // want `time\.Now reads the wall clock`
}

// WrongLine has a blank line between directive and violation: suppression
// does not stretch.
func WrongLine() time.Time {
	//lint:ignore hpelint/determinism wrong line on purpose // want `unused //lint:ignore directive for hpelint/determinism`

	return time.Now() // want `time\.Now reads the wall clock`
}

// Unused suppresses a line that triggers nothing.
//
//lint:ignore hpelint/determinism nothing to suppress // want `unused //lint:ignore directive for hpelint/determinism`
func Unused() {}

// Malformed lacks the hpelint/ prefix.
func Malformed() time.Time {
	//lint:ignore determinism missing prefix // want `malformed //lint:ignore: analyzer must be named hpelint/<name>`
	return time.Now() // want `time\.Now reads the wall clock`
}

// Unknown names an analyzer that does not exist.
func Unknown() time.Time {
	//lint:ignore hpelint/nonexistent no such analyzer // want `names unknown analyzer hpelint/nonexistent`
	return time.Now() // want `time\.Now reads the wall clock`
}

// NoReason omits the mandatory reason.
func NoReason() time.Time {
	//lint:ignore hpelint/determinism // want `needs a reason`
	return time.Now() // want `time\.Now reads the wall clock`
}

// Package maporder is the hpelint/maporder fixture: map iteration whose
// order reaches output (unsorted accumulation, prints, hashing) must be
// flagged; sorted accumulation and order-insensitive folds must stay
// silent.
package maporder

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// BadCollect appends map keys and never sorts them.
func BadCollect(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to keys inside map iteration with no subsequent sort`
	}
	return keys
}

// GoodCollect sorts after accumulating — canonical order restored.
func GoodCollect(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// BadPrint emits one line per key in iteration order.
func BadPrint(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `map iteration order reaches output through fmt\.Println`
	}
}

// BadHash feeds iteration order into a hash — the cache-key poisoner.
func BadHash(m map[string]string) uint64 {
	h := fnv.New64a()
	for k := range m {
		h.Write([]byte(k)) // want `order-sensitive sink \(Write\)`
	}
	return h.Sum64()
}

// BadField accumulates into a struct field without sorting.
type report struct {
	lines []string
}

// Fill appends to a field: the receiver outlives the loop unsorted.
func (r *report) Fill(m map[string]bool) {
	for k := range m {
		r.lines = append(r.lines, k) // want `append to r\.lines inside map iteration with no subsequent sort`
	}
}

// GoodCount is an order-insensitive fold.
func GoodCount(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// GoodSortSlice restores order with sort.Slice after the loop.
func GoodSortSlice(m map[int]int) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// GoodInvert populates another map — maps have no order to corrupt.
func GoodInvert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

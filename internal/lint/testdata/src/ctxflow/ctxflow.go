// Package ctxflow is the hpelint/ctxflow fixture: fresh root contexts
// outside main/tests must be flagged, as must a ctx-receiving function
// minting a new root for a context-accepting callee; proper threading
// must stay silent.
package ctxflow

import "context"

// fetch accepts a context like any well-behaved callee.
func fetch(ctx context.Context, key string) string {
	_ = ctx
	return key
}

// Lookup threads its ctx — the approved shape.
func Lookup(ctx context.Context, key string) string {
	return fetch(ctx, key)
}

// Derive wraps the caller's ctx rather than minting a root — approved.
func Derive(ctx context.Context, key string) string {
	sub, cancel := context.WithCancel(ctx)
	defer cancel()
	return fetch(sub, key)
}

// BadRoot mints a fresh root outside main and tests.
func BadRoot(key string) string {
	return fetch(context.Background(), key) // want `context\.Background\(\) outside package main`
}

// BadDrop receives a ctx and hands the callee a fresh one instead.
func BadDrop(ctx context.Context, key string) string {
	return fetch(context.TODO(), key) // want `BadDrop receives a context but passes a fresh context\.TODO\(\)`
}

// BadClosure drops the captured ctx inside a closure.
func BadClosure(ctx context.Context) func() string {
	return func() string {
		return fetch(context.Background(), "k") // want `BadClosure receives a context but passes a fresh context\.Background\(\)`
	}
}

// BadPackageRoot severs cancellation at package scope.
var root = context.TODO() // want `context\.TODO\(\) outside package main`

// Package envelope exercises the error-envelope analyzer: raw error
// responses, minted error codes, and response-less return paths are
// flagged; enveloped errors with vocabulary codes stay silent.
package envelope

import (
	"net/http"

	"envelopecodes"
)

// handleGood responds through the envelope with a declared code: silent.
func handleGood(w http.ResponseWriter, r *http.Request) {
	if r.ContentLength > 1024 {
		envelopecodes.WriteError(w, http.StatusBadRequest, envelopecodes.ErrBad, "body too large")
		return
	}
	w.Write([]byte("ok\n"))
}

// handleRaw bypasses the envelope twice: http.Error and a bare error status.
func handleRaw(w http.ResponseWriter, r *http.Request) {
	if r.ContentLength > 1024 {
		http.Error(w, "too big", http.StatusBadRequest) // want `http.Error bypasses the /v1 error envelope`
		return
	}
	w.WriteHeader(http.StatusBadGateway) // want `raw WriteHeader\(502\) bypasses the /v1 error envelope`
}

// handleMint invents vocabulary the clients never agreed to.
func handleMint(w http.ResponseWriter, r *http.Request) {
	envelopecodes.WriteError(w, http.StatusInternalServerError, "boom", "exploded") // want `error code "boom" is not a declared constant of the closed /v1 vocabulary`
	code := envelopecodes.ErrorCode("oops")                                         // want `conversion to envelopecodes.ErrorCode mints an error code outside its declaring package`
	envelopecodes.WriteError(w, http.StatusInternalServerError, code, "threaded-after-mint")
}

// handleForgot has a path that returns without ever touching the writer.
func handleForgot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		return // want `handler returns without writing a response on this path`
	}
	w.Write([]byte("done\n"))
}

// relay threads an existing ErrorCode value: silent.
func relay(w http.ResponseWriter, status int, code envelopecodes.ErrorCode) {
	envelopecodes.WriteError(w, status, code, "relayed")
}

// classify returns vocabulary constants; no writer in sight, so the
// return-path rule does not apply.
func classify(n int) envelopecodes.ErrorCode {
	if n >= 500 {
		return envelopecodes.ErrInternal
	}
	return envelopecodes.ErrBad
}

// Package determinism is the hpelint/determinism fixture: wall-clock
// reads, global-RNG use and multi-ready selects must be flagged; seeded
// RNGs and single-case polling selects must stay silent.
package determinism

import (
	"math/rand"
	"time"
)

// Elapsed reads the wall clock twice.
func Elapsed() time.Duration {
	start := time.Now() // want `time\.Now reads the wall clock`
	work()
	return time.Since(start) // want `time\.Since reads the wall clock`
}

func work() {}

// Pick consumes the process-global RNG.
func Pick(n int) int {
	return rand.Intn(n) // want `math/rand\.Intn uses the process-global RNG`
}

// Shuffle also hits the global RNG.
func Shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `math/rand\.Shuffle uses the process-global RNG`
}

// SeededPick is the approved pattern: explicit source, replayable.
func SeededPick(seed int64, n int) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(n)
}

// Merge drains whichever channel is ready first — the runtime picks.
func Merge(a, b <-chan int) int {
	select { // want `select with 2 communication cases`
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// Poll is the approved shape: one communication case plus default.
func Poll(done <-chan struct{}) bool {
	select {
	case <-done:
		return true
	default:
		return false
	}
}

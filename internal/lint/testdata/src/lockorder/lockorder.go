// Package lockorder exercises the lock-order analyzer: cyclic acquisition
// orders (direct and through static calls) and blocking operations while a
// mutex is held are flagged; consistent nesting and sequential locking stay
// silent.
package lockorder

import (
	"net/http"
	"sync"
	"time"
)

type registry struct {
	mu    sync.Mutex
	items map[string]int
}

type journal struct {
	mu   sync.Mutex
	rows []string
}

type cache struct {
	mu   sync.Mutex
	data map[string]int
}

type stats struct {
	mu   sync.Mutex
	hits int
}

var (
	reg registry
	jnl journal
	c   cache
	st  stats
)

// record nests jnl.mu inside reg.mu; replay nests the other way — a cycle.
func record(k string) {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	jnl.mu.Lock() // want `acquiring lockorder.journal.mu while holding lockorder.registry.mu is part of a lock-order cycle`
	jnl.rows = append(jnl.rows, k)
	jnl.mu.Unlock()
}

func replay() int {
	jnl.mu.Lock()
	defer jnl.mu.Unlock()
	reg.mu.Lock() // want `acquiring lockorder.registry.mu while holding lockorder.journal.mu is part of a lock-order cycle`
	n := len(reg.items)
	reg.mu.Unlock()
	return n
}

// fill acquires reg.mu transitively through touchReg while holding c.mu;
// lookup nests c.mu inside reg.mu — a cycle visible only via the call graph.
func fill() {
	c.mu.Lock()
	defer c.mu.Unlock()
	touchReg() // want `call to lockorder.touchReg acquires lockorder.registry.mu while holding lockorder.cache.mu — part of a lock-order cycle`
}

func lookup(k string) int {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	c.mu.Lock() // want `acquiring lockorder.cache.mu while holding lockorder.registry.mu is part of a lock-order cycle`
	v := c.data[k]
	c.mu.Unlock()
	return v
}

func touchReg() {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	reg.items["touched"]++
}

// consistent nesting (reg.mu before st.mu, never the reverse) is silent.
func bump() {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	st.mu.Lock()
	st.hits++
	st.mu.Unlock()
}

// sequential (not nested) acquisition is silent: reg.mu is released before
// jnl.mu is taken.
func rotate() {
	reg.mu.Lock()
	n := len(reg.items)
	reg.mu.Unlock()
	jnl.mu.Lock()
	if n > 0 {
		jnl.rows = jnl.rows[:0]
	}
	jnl.mu.Unlock()
}

// publish performs network I/O while holding st.mu: the response write can
// stall on a slow client with the mutex held.
func publish(w http.ResponseWriter) {
	st.mu.Lock()
	defer st.mu.Unlock()
	w.Write([]byte("hits")) // want `potentially blocking I/O to a caller-supplied writer while holding lockorder.stats.mu`
}

// wait blocks on a channel receive with jnl.mu held; the later sleep happens
// after release and is silent.
func wait(ch chan int) {
	jnl.mu.Lock()
	<-ch // want `potentially blocking channel receive while holding lockorder.journal.mu`
	jnl.mu.Unlock()
	time.Sleep(time.Millisecond)
}

// drain blocks but holds nothing — silent here, flagged at call sites that
// hold a lock.
func drain(ch chan int) {
	for range ch {
	}
}

func flush(ch chan int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	drain(ch) // want `call to lockorder.drain may block \(range over channel\) while holding lockorder.stats.mu`
}

// relock re-acquires a mutex already held on the same goroutine:
// sync.Mutex is not reentrant, so this self-deadlocks.
func relock() {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.mu.Lock() // want `reacquiring lockorder.stats.mu while it is already held \(self-deadlock\)`
	st.mu.Unlock()
}

// Package probe mirrors the production probe contract for the probeguard
// fixture: a typed event sink where nil means "not instrumented" and the
// nil case must stay free.
package probe

// Event is one instrumentation event.
type Event struct{ Kind int }

// Probe consumes an event stream.
type Probe interface {
	Emit(ev Event)
	Flush() error
}

// Package probeguard is the hpelint/probeguard fixture: calls through a
// probe.Probe value must be dominated by a nil check on that exact
// receiver; every accepted guard shape must stay silent.
package probeguard

import "probeguard/probe"

// Driver models a component with an optional probe attached.
type Driver struct {
	probe probe.Probe
}

// BadEmit calls the probe with no guard at all.
func (d *Driver) BadEmit() {
	d.probe.Emit(probe.Event{}) // want `d\.probe\.Emit called without a dominating`
}

// BadWrongGuard nil-checks a different probe than the one it calls.
func (d *Driver) BadWrongGuard(other probe.Probe) error {
	if other != nil {
		return d.probe.Flush() // want `d\.probe\.Flush called without a dominating`
	}
	return nil
}

// BadAfterGuardedBlock: a guard over one call does not dominate the next.
func (d *Driver) BadAfterGuardedBlock() error {
	if d.probe != nil {
		d.probe.Emit(probe.Event{})
	}
	return d.probe.Flush() // want `d\.probe\.Flush called without a dominating`
}

// GoodBranch is the canonical guarded emission site.
func (d *Driver) GoodBranch() {
	if d.probe != nil {
		d.probe.Emit(probe.Event{})
	}
}

// GoodEarlyReturn guards with an early exit.
func (d *Driver) GoodEarlyReturn() {
	if d.probe == nil {
		return
	}
	d.probe.Emit(probe.Event{})
}

// GoodElse reaches the call through the else of a nil test.
func (d *Driver) GoodElse(fallback func()) {
	if d.probe == nil {
		fallback()
	} else {
		d.probe.Emit(probe.Event{})
	}
}

// GoodConjunction guards inside a compound condition.
func (d *Driver) GoodConjunction(ready bool) {
	if ready && d.probe != nil {
		d.probe.Emit(probe.Event{})
	}
}

// GoodLocal binds the probe to a local and guards that.
func (d *Driver) GoodLocal() error {
	p := d.probe
	if p == nil {
		return nil
	}
	return p.Flush()
}

// Package callgraph is a graph-shape fixture: the call-graph unit tests
// assert these exact nodes, edges and address-taken flags, so every
// declaration here is load-bearing. It carries no want annotations — it is
// consumed by buildCallGraph directly, not by the want harness.
package callgraph

type stepper interface{ Step(n int) int }

type alpha struct{ v int }

func (a *alpha) Step(n int) int { return a.v + n }

type beta struct{}

func (beta) Step(n int) int { return n * 2 }

// dispatch calls through the interface; CHA must fan out to both impls.
func dispatch(s stepper) int { return s.Step(1) }

// direct is only ever called, never referenced: not address-taken.
func direct() int { return 7 }

// taken is assigned to a variable below: address-taken, so it is a
// candidate callee for every func() int call through a value.
func taken() int { return 9 }

func driver() int {
	total := dispatch(&alpha{})
	total += direct()
	f := taken
	total += f()
	g := func() int { return total } // driver$1: stored closure
	total += g()
	func() { total++ }() // driver$2: called in place, not address-taken
	return total
}

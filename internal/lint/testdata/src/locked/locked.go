// Package locked is the hpelint/locked fixture: fields annotated
// `// guarded by <mu>` must be touched with the named mutex held on the
// same receiver; *Locked helpers assert the precondition by convention.
package locked

import "sync"

// counter models the documented lock discipline.
type counter struct {
	mu sync.Mutex
	n  int      // guarded by mu
	s  []string // guarded by mu

	hint int // unannotated: out of scope for the analyzer
}

// Inc holds the lock — approved.
func (c *counter) Inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// BadPeek reads n with no lock at all.
func (c *counter) BadPeek() int {
	return c.n // want `field n is guarded by mu but accessed without c\.mu held`
}

// BadAppend touches s twice on one unlocked line.
func (c *counter) BadAppend(v string) {
	c.s = append(c.s, v) // want `field s is guarded by mu` `field s is guarded by mu`
}

// BadEarly reads before taking the lock; the read after Lock is fine.
func (c *counter) BadEarly() int {
	v := c.n // want `field n is guarded by mu but accessed without c\.mu held`
	c.mu.Lock()
	defer c.mu.Unlock()
	return v + c.n
}

// Hint touches the unannotated field freely.
func (c *counter) Hint() int { return c.hint }

// snapshotLocked asserts the caller holds the lock by naming convention.
func (c *counter) snapshotLocked() []string {
	return c.s
}

// Snapshot locks, then delegates to the *Locked helper.
func (c *counter) Snapshot() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.snapshotLocked()
}

// gauge exercises RWMutex read-locking.
type gauge struct {
	mu sync.RWMutex
	v  float64 // guarded by mu
}

// Read holds the read lock — approved.
func (g *gauge) Read() float64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.v
}

// BadRead skips the read lock.
func (g *gauge) BadRead() float64 {
	return g.v // want `field v is guarded by mu but accessed without g\.mu held`
}

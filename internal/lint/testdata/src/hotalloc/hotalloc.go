// Package hotalloc exercises the hot-path allocation guard: functions
// reachable from a //hpelint:hotpath root are flagged for per-event
// allocation; unreachable (cold) functions stay silent.
package hotalloc

import "fmt"

type event struct {
	at   uint64
	kind int32
}

type engine struct {
	heap  []event
	names map[int32]string
	sink  any
	buf   []byte
}

// emit is an interface-accepting sink reached from the hot path.
func emit(v any) { _ = v }

// handler is resolved CHA-style from the Step interface call below.
type handler interface{ OnEvent(a0, a1 uint64) }

type faultHandler struct {
	count uint64
	name  string
}

func (h *faultHandler) OnEvent(a0, a1 uint64) {
	h.count++
	why := h.name + "-page" // want `string concatenation allocates`
	_ = why
}

//hpelint:hotpath fixture root standing in for sim.Engine.Step
func (e *engine) Step(h handler) bool {
	h.OnEvent(1, 2) // interface call: pulls every OnEvent impl into the hot set
	e.fire()
	return len(e.heap) > 0
}

// fire is hot by reachability from Step.
func (e *engine) fire() {
	ev := &event{at: 1} // want `&composite literal escapes to the heap`
	_ = ev
	ids := []int32{1, 2} // want `slice/map composite literal allocates`
	_ = ids
	m := make(map[int32]string) // want `make allocates per event`
	_ = m
	p := new(event) // want `new allocates per event`
	_ = p
	fmt.Sprintf("event %d", 1) // want `fmt.Sprintf allocates and reflects per event`
	at := uint64(7)
	if e.names == nil {
		// A panic argument prices its allocation exactly once: silent.
		panic(fmt.Sprintf("engine misconfigured at %d", at))
	}
	cb := func() uint64 { return at } // want `closure captures "at" and allocates per event`
	_ = cb()
	var local []event
	local = append(local, event{}) // want `append to un-presized local "local" allocates on growth`
	_ = local
	sized := make([]event, 0, 8)   // want `make allocates per event`
	sized = append(sized, event{}) // append to make-presized local: silent
	_ = sized
	e.heap = append(e.heap, event{}) // field-backed: amortized, silent
	emit(event{})                    // want `argument boxes a concrete hotalloc.event into an interface`
	emit(&event{})                   // want `&composite literal escapes to the heap`
	e.sink = event{at: 2} // want `assignment boxes a concrete hotalloc.event into an interface`
	e.quiet()
}

// capturefree closures compile to static funcs and stay silent.
func (e *engine) quiet() {
	f := func() uint64 { return 42 }
	_ = f()
	e.buf = e.buf[:0]
}

// cold is NOT reachable from any root: allocation is fine here.
func cold() *event {
	m := map[string]int{"setup": 1}
	_ = m
	return &event{at: fmtSize()}
}

func fmtSize() uint64 {
	s := fmt.Sprintf("%d", 1)
	return uint64(len(s))
}

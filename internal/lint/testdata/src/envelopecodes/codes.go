// Package envelopecodes is the fixture stand-in for hpe/internal/server's
// error vocabulary: it declares the closed ErrorCode set and the single
// envelope writer the envelope analyzer anchors on.
package envelopecodes

import "net/http"

// ErrorCode is the closed error vocabulary of the fixture /v1 surface.
type ErrorCode string

const (
	ErrBad      ErrorCode = "bad_spec"
	ErrInternal ErrorCode = "internal"
)

// WriteError is the fixture envelope writer.
func WriteError(w http.ResponseWriter, status int, code ErrorCode, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write([]byte(`{"error":{"code":"` + string(code) + `","message":"` + msg + `"}}`))
}

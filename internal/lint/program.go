package lint

import (
	"fmt"
	"go/token"
)

// ProgramPass carries one whole-program analyzer's view of the full loaded
// program. Unlike the per-package Pass, it sees every package at once and
// shares one lazily-built, cached call graph with every other program
// analyzer in the same driver invocation — the graph is built at most once
// per `hpelint` run however many analyzers consume it.
type ProgramPass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Packages []*Package
	// UseScope reports whether package-scope filters apply (the production
	// driver) or are bypassed (the fixture harness, where the package under
	// test is a testdata fixture, not a production path). Analyzers consult
	// it through InScope.
	UseScope bool

	cache *programCache
	diags *[]Diagnostic
}

// programCache holds per-invocation state shared across program analyzers.
type programCache struct {
	graph *CallGraph
}

// Graph returns the whole-program call graph, building it on first use and
// reusing it for every subsequent analyzer in this invocation.
func (p *ProgramPass) Graph() *CallGraph {
	if p.cache.graph == nil {
		p.cache.graph = buildCallGraph(p.Fset, p.Packages)
	}
	return p.cache.graph
}

// Reportf records a diagnostic at pos under the running analyzer's name.
func (p *ProgramPass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// InScope reports whether a package participates in an analyzer's scoped
// footprint: always true under the fixture harness, a path-suffix match in
// production.
func (p *ProgramPass) InScope(pkgPath string, suffixes []string) bool {
	if !p.UseScope {
		return true
	}
	return pathHasSuffixAny(pkgPath, suffixes)
}

// runProgramAnalyzers applies each whole-program analyzer (Analyzer with
// RunProgram set) once over the full package set, sharing one cache.
func runProgramAnalyzers(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer, useScope bool) []Diagnostic {
	var diags []Diagnostic
	cache := &programCache{}
	for _, a := range analyzers {
		if a.RunProgram == nil {
			continue
		}
		pass := &ProgramPass{
			Analyzer: a,
			Fset:     fset,
			Packages: pkgs,
			UseScope: useScope,
			cache:    cache,
			diags:    &diags,
		}
		a.RunProgram(pass)
	}
	return diags
}

package lint

import (
	"strings"
	"testing"
)

// requireMin asserts the fixture produced at least min diagnostics from the
// named analyzer — the acceptance floor: every analyzer demonstrates at
// least two want-annotated findings in its fixture package.
func requireMin(t *testing.T, res fixtureResult, name string, min int) {
	t.Helper()
	if n := countByAnalyzer(res.Diags)[name]; n < min {
		t.Errorf("fixture produced %d %s diagnostics (by analyzer: %v), want >= %d",
			n, name, sortedKeys(countByAnalyzer(res.Diags)), min)
	}
}

func TestDeterminismFixture(t *testing.T) {
	res := runFixture(t, "determinism", AnalyzerDeterminism)
	requireMin(t, res, "determinism", 2)
}

func TestMapOrderFixture(t *testing.T) {
	res := runFixture(t, "maporder", AnalyzerMapOrder)
	requireMin(t, res, "maporder", 2)
}

func TestProbeGuardFixture(t *testing.T) {
	res := runFixture(t, "probeguard", AnalyzerProbeGuard)
	requireMin(t, res, "probeguard", 2)
}

func TestCtxFlowFixture(t *testing.T) {
	res := runFixture(t, "ctxflow", AnalyzerCtxFlow)
	requireMin(t, res, "ctxflow", 2)
}

func TestLockedFixture(t *testing.T) {
	res := runFixture(t, "locked", AnalyzerLocked)
	requireMin(t, res, "locked", 2)
}

func TestSpecSourceFixture(t *testing.T) {
	res := runFixture(t, "specsource", AnalyzerSpecSource)
	requireMin(t, res, "specsource", 2)
}

func TestEnvelopeFixture(t *testing.T) {
	res := runFixture(t, "envelope", AnalyzerEnvelope)
	requireMin(t, res, "envelope", 2)
}

func TestHotAllocFixture(t *testing.T) {
	res := runFixture(t, "hotalloc", AnalyzerHotAlloc)
	requireMin(t, res, "hotalloc", 2)
}

func TestLockOrderFixture(t *testing.T) {
	res := runFixture(t, "lockorder", AnalyzerLockOrder)
	requireMin(t, res, "lockorder", 2)
}

// TestIgnoreFixture proves the suppression contract: a directive silences
// exactly the named analyzer on exactly the next line, and every other
// directive shape (wrong analyzer, wrong line, no violation, malformed,
// unknown analyzer, missing reason) is itself reported.
func TestIgnoreFixture(t *testing.T) {
	res := runFixture(t, "ignorefix", AnalyzerDeterminism, AnalyzerMapOrder)
	counts := countByAnalyzer(res.Diags)
	// Five unsuppressed determinism findings (WrongName, WrongLine,
	// Malformed, Unknown, NoReason) — the Suppressed one must be absent.
	if counts["determinism"] != 5 {
		t.Errorf("ignore fixture: %d determinism diagnostics escaped suppression, want 5", counts["determinism"])
	}
	// Six directive problems: unused (wrong analyzer), unused (wrong
	// line), unused (no violation), malformed, unknown, missing reason.
	if counts[ignoreAnalyzerName] != 6 {
		t.Errorf("ignore fixture: %d directive diagnostics, want 6", counts[ignoreAnalyzerName])
	}
	for _, d := range res.Diags {
		if strings.Contains(d.Message, "suppression mechanism silences") {
			t.Errorf("suppressed diagnostic leaked: %s", d.Message)
		}
	}
}

// TestRunOnProductionPackages is the self-hosting smoke test: the
// production driver (go-list loading, scoped analyzers, directive
// filtering) must report a clean bill for packages the burn-down already
// cleared, through the same path cmd/hpelint uses.
func TestRunOnProductionPackages(t *testing.T) {
	root, err := repoRootDir()
	if err != nil {
		t.Fatalf("repo root: %v", err)
	}
	diags, err := Run(root, []string{"./internal/probe/", "./internal/server/", "./internal/lint/"}, All())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("unexpected finding: %s", d.String())
	}
}

// TestAnalyzerNamesStable pins the registry order the -json schema and
// //lint:ignore directives key on.
func TestAnalyzerNamesStable(t *testing.T) {
	got := strings.Join(AnalyzerNames(), ",")
	want := "ctxflow,determinism,envelope,hotalloc,locked,lockorder,maporder,probeguard,specsource"
	if got != want {
		t.Errorf("AnalyzerNames() = %s, want %s", got, want)
	}
	if _, err := ByName([]string{"probeguard", "ctxflow"}); err != nil {
		t.Errorf("ByName on known analyzers: %v", err)
	}
	if _, err := ByName([]string{"bogus"}); err == nil {
		t.Errorf("ByName(bogus) should error")
	}
}

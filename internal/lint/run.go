package lint

import (
	"fmt"
	"path/filepath"
)

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		AnalyzerCtxFlow,
		AnalyzerDeterminism,
		AnalyzerEnvelope,
		AnalyzerHotAlloc,
		AnalyzerLocked,
		AnalyzerLockOrder,
		AnalyzerMapOrder,
		AnalyzerProbeGuard,
		AnalyzerSpecSource,
	}
}

// ByName resolves a comma-separated analyzer selection against All.
func ByName(names []string) ([]*Analyzer, error) {
	index := map[string]*Analyzer{}
	for _, a := range All() {
		index[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range names {
		a, ok := index[n]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (have %v)", n, AnalyzerNames())
		}
		out = append(out, a)
	}
	return out, nil
}

// AnalyzerNames lists the suite's analyzer names in stable order.
func AnalyzerNames() []string {
	var out []string
	for _, a := range All() {
		out = append(out, a.Name)
	}
	return out
}

// Run is the multichecker driver: load the packages matched by patterns
// (relative to dir), run every applicable analyzer, filter through
// //lint:ignore directives, and return the findings in deterministic order.
// A package that fails to type-check is an error — analysis over broken
// type information produces unreliable findings.
func Run(dir string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	prog, err := Load(dir, patterns)
	if err != nil {
		return nil, err
	}
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	// Per-package analyzers first, then the whole-program ones (which see
	// every loaded package at once and share one cached call graph).
	// Directives are collected program-wide and applied to the combined
	// diagnostic set: a //lint:ignore suppresses by (file, line, analyzer)
	// regardless of which kind of analyzer produced the finding.
	var all []Diagnostic
	var dirs []*directive
	for _, pkg := range prog.Packages {
		if len(pkg.TypeErrors) > 0 {
			return nil, fmt.Errorf("%s does not type-check: %v", pkg.ImportPath, pkg.TypeErrors[0])
		}
		all = append(all, runAnalyzers(pkg, prog.Fset, analyzers, true)...)
		pkgDirs, dirDiags := collectDirectives(prog.Fset, pkg.Files, known)
		dirs = append(dirs, pkgDirs...)
		all = append(all, dirDiags...)
	}
	all = append(all, runProgramAnalyzers(prog.Fset, prog.Packages, analyzers, true)...)
	all = applyDirectives(all, dirs)
	for i := range all {
		if rel, err := filepath.Rel(dir, all[i].Pos.Filename); err == nil && !filepath.IsAbs(rel) && rel != "" && !isParentEscape(rel) {
			all[i].Pos.Filename = rel
		}
	}
	sortDiagnostics(all)
	return all, nil
}

// isParentEscape reports whether a relative path climbs out of the root.
func isParentEscape(rel string) bool {
	return rel == ".." || len(rel) >= 3 && rel[:3] == ".."+string(filepath.Separator)
}

// Package cache implements the set-associative data caches of Table I: the
// per-SM 16-KB 4-way L1 data cache and the shared 1.5-MB 8-way L2, both
// LRU-replaced, at 128-byte line granularity. The simulator's data path
// (optional — the paper's results are fault-driven) sends every completed
// translation through L1 → L2 → DRAM.
package cache

import (
	"fmt"

	"hpe/internal/addrspace"
)

// LineShift is log2 of the cache line size (128-byte lines, the GPU
// coalescing granularity).
const LineShift = 7

// LineBytes is the cache line size.
const LineBytes = 1 << LineShift

// LineID identifies a cache line (byte address >> LineShift).
type LineID uint64

// LineOf returns the line containing a byte address.
func LineOf(a addrspace.VAddr) LineID { return LineID(a >> LineShift) }

// Config sizes a cache.
type Config struct {
	// SizeBytes is the total capacity.
	SizeBytes int
	// Ways is the associativity.
	Ways int
}

// L1Config returns Table I's per-SM L1 data cache: 16 KB, 4-way.
func L1Config() Config { return Config{SizeBytes: 16 << 10, Ways: 4} }

// L2Config returns Table I's shared L2: 1.5 MB, 8-way.
func L2Config() Config { return Config{SizeBytes: 1536 << 10, Ways: 8} }

type line struct {
	valid bool
	id    LineID
	used  uint64
}

// Cache is a set-associative LRU cache over line IDs. Tags only — the
// simulator needs hit/miss behaviour, not data.
type Cache struct {
	sets  int
	ways  int
	lines []line
	tick  uint64

	hits, misses uint64
}

// New builds a cache from a config.
func New(cfg Config) *Cache {
	total := cfg.SizeBytes / LineBytes
	if cfg.SizeBytes <= 0 || cfg.Ways <= 0 || total < cfg.Ways || total%cfg.Ways != 0 {
		panic(fmt.Sprintf("cache: bad geometry %d bytes / %d ways", cfg.SizeBytes, cfg.Ways))
	}
	return &Cache{
		sets:  total / cfg.Ways,
		ways:  cfg.Ways,
		lines: make([]line, total),
	}
}

// Lines returns the total line capacity.
func (c *Cache) Lines() int { return len(c.lines) }

func (c *Cache) row(id LineID) []line {
	idx := int(uint64(id) % uint64(c.sets))
	return c.lines[idx*c.ways : (idx+1)*c.ways]
}

// Access probes the cache for a line, filling on miss (allocate-on-miss,
// LRU victim). It reports whether the access hit.
func (c *Cache) Access(id LineID) bool {
	c.tick++
	row := c.row(id)
	victim := 0
	for i := range row {
		if row[i].valid && row[i].id == id {
			row[i].used = c.tick
			c.hits++
			return true
		}
		if !row[i].valid {
			victim = i
		} else if row[victim].valid && row[i].used < row[victim].used {
			victim = i
		}
	}
	row[victim] = line{valid: true, id: id, used: c.tick}
	c.misses++
	return false
}

// InvalidatePage drops every line of a 4-KB page (called on page eviction).
func (c *Cache) InvalidatePage(p addrspace.PageID) {
	base := LineOf(p.BaseAddr())
	for l := base; l < base+(addrspace.PageBytes/LineBytes); l++ {
		row := c.row(l)
		for i := range row {
			if row[i].valid && row[i].id == l {
				row[i].valid = false
			}
		}
	}
}

// Stats returns (hits, misses).
func (c *Cache) Stats() (hits, misses uint64) { return c.hits, c.misses }

// HitRate returns hits/(hits+misses), 0 when unused.
func (c *Cache) HitRate() float64 {
	t := c.hits + c.misses
	if t == 0 {
		return 0
	}
	return float64(c.hits) / float64(t)
}

package cache

import (
	"testing"

	"hpe/internal/addrspace"
)

func TestLineOf(t *testing.T) {
	if LineOf(0) != 0 || LineOf(127) != 0 || LineOf(128) != 1 {
		t.Fatal("LineOf arithmetic wrong")
	}
}

func TestAccessMissThenHit(t *testing.T) {
	c := New(Config{SizeBytes: 1024, Ways: 2}) // 8 lines, 4 sets
	if c.Access(5) {
		t.Fatal("hit on empty cache")
	}
	if !c.Access(5) {
		t.Fatal("miss after fill")
	}
	h, m := c.Stats()
	if h != 1 || m != 1 || c.HitRate() != 0.5 {
		t.Fatalf("stats %d/%d rate %f", h, m, c.HitRate())
	}
}

func TestLRUWithinSet(t *testing.T) {
	c := New(Config{SizeBytes: 512, Ways: 2}) // 4 lines, 2 sets
	// Lines 0, 2, 4 map to set 0.
	c.Access(0)
	c.Access(2)
	c.Access(0) // refresh 0
	c.Access(4) // evicts 2
	if !c.Access(0) {
		t.Fatal("MRU line evicted")
	}
	if c.Access(2) {
		t.Fatal("LRU line survived")
	}
}

func TestInvalidatePage(t *testing.T) {
	c := New(L1Config())
	p := addrspace.PageID(3)
	base := LineOf(p.BaseAddr())
	for i := LineID(0); i < 4; i++ {
		c.Access(base + i)
	}
	c.InvalidatePage(p)
	for i := LineID(0); i < 4; i++ {
		if c.Access(base + i) {
			t.Fatalf("line %d survived page invalidation", i)
		}
	}
}

func TestTableIGeometries(t *testing.T) {
	l1 := New(L1Config())
	if l1.Lines() != 16<<10/LineBytes {
		t.Fatalf("L1 lines = %d", l1.Lines())
	}
	l2 := New(L2Config())
	if l2.Lines() != 1536<<10/LineBytes {
		t.Fatalf("L2 lines = %d", l2.Lines())
	}
}

func TestBadConfigPanics(t *testing.T) {
	for _, cfg := range []Config{{0, 1}, {1024, 0}, {100, 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v accepted", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestStreamingEvictsEverything(t *testing.T) {
	c := New(Config{SizeBytes: 1024, Ways: 2}) // 8 lines
	for i := LineID(0); i < 100; i++ {
		c.Access(i)
	}
	// A second sweep over the first 8 lines: all misses (capacity).
	for i := LineID(0); i < 8; i++ {
		if c.Access(i) {
			t.Fatalf("line %d survived a 100-line stream through an 8-line cache", i)
		}
	}
}
